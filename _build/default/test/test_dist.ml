open Ssta_prob
open Helpers

let test_gaussian () =
  let p = Dist.gaussian ~n:300 ~mu:2.0 ~sigma:0.5 () in
  check_close ~tol:1e-6 "mean" 2.0 (Pdf.mean p);
  check_close ~tol:1e-3 "std" 0.5 (Pdf.std p);
  check_raises_invalid "sigma<=0" (fun () ->
      ignore (Dist.gaussian ~mu:0.0 ~sigma:0.0 ()))

let test_truncated_gaussian_support () =
  let p = Dist.truncated_gaussian ~bound:3.0 ~mu:1.0 ~sigma:2.0 () in
  check_close ~tol:1e-9 "lo at mu - 3 sigma" (-5.0) p.Pdf.lo;
  check_close ~tol:1e-9 "hi at mu + 3 sigma" 7.0 (Pdf.hi p);
  (* Tight truncation shrinks the variance below sigma^2. *)
  check_true "variance reduced by truncation" (Pdf.std p < 2.0)

let test_truncated_gaussian_6sigma_is_nearly_exact () =
  let p = Dist.truncated_gaussian ~n:400 ~bound:6.0 ~mu:0.0 ~sigma:1.0 () in
  (* At the paper's 6-sigma truncation the clipped mass is ~2e-9, so the
     moments are essentially the untruncated ones. *)
  check_close_abs ~tol:1e-6 "mean" 0.0 (Pdf.mean p);
  check_close_abs ~tol:1e-3 "std" 1.0 (Pdf.std p)

let test_truncated_invalid () =
  check_raises_invalid "bound<=0" (fun () ->
      ignore (Dist.truncated_gaussian ~bound:0.0 ~mu:0.0 ~sigma:1.0 ()));
  check_raises_invalid "sigma<=0" (fun () ->
      ignore (Dist.truncated_gaussian ~mu:0.0 ~sigma:(-2.0) ()))

let test_uniform () =
  let p = Dist.uniform ~lo:(-1.0) ~hi:3.0 () in
  check_close ~tol:1e-9 "mean" 1.0 (Pdf.mean p);
  check_close ~tol:1e-9 "flat density" 0.25 (Pdf.density_at p 0.0);
  check_raises_invalid "hi<=lo" (fun () ->
      ignore (Dist.uniform ~lo:1.0 ~hi:1.0 ()))

let test_triangular () =
  let p = Dist.triangular ~n:500 ~lo:0.0 ~mode:1.0 ~hi:4.0 () in
  (* mean of a triangular = (lo + mode + hi)/3 *)
  check_close ~tol:2e-3 "mean" (5.0 /. 3.0) (Pdf.mean p);
  check_raises_invalid "bad ordering" (fun () ->
      ignore (Dist.triangular ~lo:0.0 ~mode:5.0 ~hi:4.0 ()))

let test_triangular_degenerate_edges () =
  let left = Dist.triangular ~lo:0.0 ~mode:0.0 ~hi:2.0 () in
  check_close ~tol:5e-3 "left-mode mean" (2.0 /. 3.0) (Pdf.mean left);
  let right = Dist.triangular ~lo:0.0 ~mode:2.0 ~hi:2.0 () in
  check_close ~tol:5e-3 "right-mode mean" (4.0 /. 3.0) (Pdf.mean right)

let test_exponential () =
  let p = Dist.exponential ~n:2000 ~rate:2.0 () in
  check_close ~tol:2e-3 "mean 1/rate" 0.5 (Pdf.mean p);
  check_close ~tol:2e-2 "std 1/rate" 0.5 (Pdf.std p);
  check_raises_invalid "rate<=0" (fun () ->
      ignore (Dist.exponential ~rate:0.0 ()));
  check_raises_invalid "bad tail" (fun () ->
      ignore (Dist.exponential ~tail:2.0 ~rate:1.0 ()))

let prop_gaussian_mean_matches =
  qcheck "gaussian grid mean equals mu"
    QCheck.(pair (float_range (-10.0) 10.0) (float_range 0.1 5.0))
    (fun (mu, sigma) ->
      let p = Dist.truncated_gaussian ~mu ~sigma () in
      Float.abs (Pdf.mean p -. mu) < 1e-6 *. (1.0 +. Float.abs mu))

let suite =
  ( "dist",
    [ case "gaussian constructor" test_gaussian;
      case "truncated gaussian support" test_truncated_gaussian_support;
      case "6-sigma truncation nearly exact"
        test_truncated_gaussian_6sigma_is_nearly_exact;
      case "truncated gaussian invalid args" test_truncated_invalid;
      case "uniform" test_uniform;
      case "triangular" test_triangular;
      case "triangular edge modes" test_triangular_degenerate_edges;
      case "exponential" test_exponential;
      prop_gaussian_mean_matches ] )
