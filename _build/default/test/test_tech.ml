open Ssta_tech
open Helpers

(* ---------------- Params ---------------- *)

let test_rv_roundtrip () =
  check_int "five RVs" 5 (List.length Params.all_rvs);
  List.iteri
    (fun i rv -> check_int (Params.rv_name rv) i (Params.rv_index rv))
    Params.all_rvs

let test_get_set () =
  let p = Params.nominal in
  List.iter
    (fun rv ->
      let p' = Params.set p rv 0.123 in
      check_close ~tol:0.0 "set/get" 0.123 (Params.get p' rv);
      (* other fields untouched *)
      List.iter
        (fun other ->
          if other <> rv then
            check_close ~tol:0.0 "others unchanged" (Params.get p other)
              (Params.get p' other))
        Params.all_rvs)
    Params.all_rvs

let test_add_zero () =
  let p = Params.add Params.nominal Params.zero in
  List.iter
    (fun rv ->
      check_close ~tol:0.0 "zero is neutral" (Params.get Params.nominal rv)
        (Params.get p rv))
    Params.all_rvs

let test_nominal_physical () =
  check_true "nominal is physical" (Params.is_physical Params.nominal);
  check_true "vdd below vtn is not physical"
    (not (Params.is_physical (Params.set Params.nominal Params.Vdd 0.2)))

let test_sigmas_positive () =
  List.iter
    (fun rv -> check_true (Params.rv_name rv) (Params.sigma rv > 0.0))
    Params.all_rvs;
  (* the paper's Table 1 caption values *)
  check_close ~tol:1e-12 "sigma tox" 0.15e-9 (Params.sigma Params.Tox);
  check_close ~tol:1e-12 "sigma leff" 15e-9 (Params.sigma Params.Leff);
  check_close ~tol:1e-12 "sigma vdd" 0.040 (Params.sigma Params.Vdd)

(* ---------------- Gate ---------------- *)

let all_kinds =
  [ Gate.Inv; Gate.Buf; Gate.Nand 2; Gate.Nand 3; Gate.Nor 2; Gate.Nor 4;
    Gate.And 2; Gate.Or 2; Gate.Xor2; Gate.Xnor2 ]

let test_fan_in () =
  check_int "inv" 1 (Gate.fan_in Gate.Inv);
  check_int "nand3" 3 (Gate.fan_in (Gate.Nand 3));
  check_int "xor" 2 (Gate.fan_in Gate.Xor2)

let test_name_of_name_roundtrip () =
  List.iter
    (fun kind ->
      match Gate.of_name (Gate.name kind) (Gate.fan_in kind) with
      | Some k -> check_true "roundtrip" (k = kind)
      | None -> Alcotest.failf "of_name failed for %s" (Gate.name kind))
    all_kinds

let test_of_name_rejects () =
  check_true "unknown gate" (Gate.of_name "MAJ" 3 = None);
  check_true "xor arity" (Gate.of_name "XOR" 3 = None);
  check_true "not arity" (Gate.of_name "NOT" 2 = None);
  check_true "nand arity" (Gate.of_name "NAND" 1 = None)

let test_eval_truth_tables () =
  check_true "nand2 00" (Gate.eval (Gate.Nand 2) [ false; false ]);
  check_true "nand2 11" (not (Gate.eval (Gate.Nand 2) [ true; true ]));
  check_true "nor2 00" (Gate.eval (Gate.Nor 2) [ false; false ]);
  check_true "nor2 01" (not (Gate.eval (Gate.Nor 2) [ false; true ]));
  check_true "xor 01" (Gate.eval Gate.Xor2 [ false; true ]);
  check_true "xnor 11" (Gate.eval Gate.Xnor2 [ true; true ]);
  check_true "inv" (Gate.eval Gate.Inv [ false ]);
  check_true "buf" (Gate.eval Gate.Buf [ true ]);
  check_true "and3" (Gate.eval (Gate.And 3) [ true; true; true ]);
  check_true "or3" (Gate.eval (Gate.Or 3) [ false; false; true ]);
  check_raises_invalid "arity mismatch" (fun () ->
      ignore (Gate.eval Gate.Xor2 [ true ]))

let test_electrical_positive () =
  List.iter
    (fun kind ->
      let e = Gate.electrical kind in
      check_true "alpha > 0" (e.Gate.alpha > 0.0);
      check_true "beta > 0" (e.Gate.beta > 0.0);
      check_true "c_out > 0" (e.Gate.c_out > 0.0))
    all_kinds

let test_electrical_fanout_grows_load () =
  let light = Gate.electrical ~fanout:1 (Gate.Nand 2) in
  let heavy = Gate.electrical ~fanout:8 (Gate.Nand 2) in
  check_true "load grows with fanout" (heavy.Gate.c_out > light.Gate.c_out);
  check_true "alpha grows with load" (heavy.Gate.alpha > light.Gate.alpha)

let test_electrical_rejects_negative_fanout () =
  check_raises_invalid "fanout<0" (fun () ->
      ignore (Gate.electrical ~fanout:(-1) Gate.Inv))

(* ---------------- Elmore ---------------- *)

let test_voltage_factor_nominal () =
  (* V(1.3, 0.33) = 1.3/0.97^1.3 + 1/1.29 *)
  let expected = (1.3 /. (0.97 ** 1.3)) +. (1.0 /. 1.29) in
  check_close ~tol:1e-12 "voltage factor" expected
    (Elmore.voltage_factor ~vdd:1.3 ~vt:0.33)

let test_voltage_factor_domain () =
  check_raises_invalid "vt >= vdd" (fun () ->
      ignore (Elmore.voltage_factor ~vdd:0.3 ~vt:0.4));
  check_raises_invalid "linear term domain" (fun () ->
      ignore (Elmore.voltage_factor ~vdd:1.0 ~vt:0.8))

let test_gate_delay_ordering () =
  (* Table 1 ordering: NAND2 slowest, then XNOR2, NOR2, INV fastest. *)
  let d kind = Elmore.nominal_delay (Gate.electrical kind) in
  let nand = d (Gate.Nand 2) and xnor = d Gate.Xnor2 in
  let nor = d (Gate.Nor 2) and inv = d Gate.Inv in
  check_true "nand > xnor" (nand > xnor);
  check_true "xnor > nor" (xnor > nor);
  check_true "nor > inv" (nor > inv);
  check_true "delays in the tens of ps"
    (Elmore.ps nand > 5.0 && Elmore.ps nand < 100.0)

let test_delay_monotonicity () =
  let e = Gate.electrical (Gate.Nand 2) in
  let base = Elmore.gate_delay e Params.nominal in
  let longer =
    Elmore.gate_delay e (Params.set Params.nominal Params.Leff 150e-9)
  in
  check_true "longer channel is slower" (longer > base);
  let lower_vdd =
    Elmore.gate_delay e (Params.set Params.nominal Params.Vdd 1.1)
  in
  check_true "lower vdd is slower" (lower_vdd > base);
  let higher_vt =
    Elmore.gate_delay e (Params.set Params.nominal Params.Vtn 0.4)
  in
  check_true "higher threshold is slower" (higher_vt > base)

let test_path_delay_sums () =
  let gates = [ Gate.electrical Gate.Inv; Gate.electrical (Gate.Nand 2) ] in
  let total = Elmore.path_delay gates Params.nominal in
  let by_hand =
    List.fold_left
      (fun acc e -> acc +. Elmore.gate_delay e Params.nominal)
      0.0 gates
  in
  check_close ~tol:1e-15 "path = sum of gates" by_hand total

(* ---------------- Derivatives ---------------- *)

let test_analytic_matches_numeric_first () =
  List.iter
    (fun kind ->
      let e = Gate.electrical kind in
      List.iter
        (fun rv ->
          let a = Derivatives.first e Params.nominal rv in
          let n = Derivatives.first_numeric e Params.nominal rv in
          check_close ~tol:1e-5
            (Printf.sprintf "d(%s)/d%s" (Gate.name kind) (Params.rv_name rv))
            n a)
        Params.all_rvs)
    [ Gate.Inv; Gate.Nand 2; Gate.Nor 2; Gate.Xnor2 ]

let test_analytic_matches_numeric_second () =
  let e = Gate.electrical (Gate.Nand 2) in
  List.iter
    (fun rv ->
      let a = Derivatives.second e Params.nominal rv in
      let n = Derivatives.second_numeric ~relative_step:1e-4 e Params.nominal rv in
      (* second derivatives of the voltage terms; geometric ones are 0 *)
      match rv with
      | Params.Tox | Params.Leff ->
          check_close ~tol:0.0 "geometric second derivative is exactly 0" 0.0 a
      | Params.Vdd | Params.Vtn | Params.Vtp ->
          check_close ~tol:1e-3
            (Printf.sprintf "d2/d%s2" (Params.rv_name rv))
            n a)
    Params.all_rvs

let test_gradient_signs () =
  let e = Gate.electrical (Gate.Nand 2) in
  let g = Derivatives.gradient e Params.nominal in
  check_true "d/dtox > 0" (g.Params.tox > 0.0);
  check_true "d/dleff > 0" (g.Params.leff > 0.0);
  check_true "d/dvdd < 0" (g.Params.vdd < 0.0);
  check_true "d/dvtn > 0" (g.Params.vtn > 0.0);
  check_true "d/dvtp > 0" (g.Params.vtp > 0.0)

(* ---------------- Sensitivity ---------------- *)

let test_table1_shape () =
  let rows = Sensitivity.table1 () in
  check_int "four gates" 4 (List.length rows);
  List.iter
    (fun row ->
      check_int "five entries" 5 (List.length row.Sensitivity.entries);
      check_true "L_eff dominates"
        (Sensitivity.dominant row = Params.Leff);
      List.iter
        (fun e -> check_true "impacts non-negative" (e.Sensitivity.impact >= 0.0))
        row.Sensitivity.entries)
    rows

let test_table1_magnitudes () =
  (* The paper's 2-NAND column: L_eff ~ 2 ps, thresholds < 0.3 ps. *)
  let row = Sensitivity.analyze (Gate.Nand 2) in
  let impact rv =
    let e = List.find (fun e -> e.Sensitivity.rv = rv) row.Sensitivity.entries in
    Elmore.ps e.Sensitivity.impact
  in
  check_true "L_eff impact 1.5-3 ps"
    (impact Params.Leff > 1.5 && impact Params.Leff < 3.0);
  check_true "V_Tn impact < 0.5 ps" (impact Params.Vtn < 0.5);
  check_true "t_ox impact 0.3-1.0 ps"
    (impact Params.Tox > 0.3 && impact Params.Tox < 1.0)

(* ---------------- Convexity ---------------- *)

let test_convexity_claim () =
  List.iter
    (fun kind ->
      let row = Convexity.analyze kind in
      check_true "approximation acceptable" (Convexity.acceptable row);
      check_true "max ratio well below 1" (Convexity.max_ratio row < 0.2))
    Sensitivity.table1_gates

(* ---------------- Corner ---------------- *)

let test_corner_ordering () =
  let e = Gate.electrical (Gate.Nand 2) in
  let best = Corner.gate_delay Corner.Best e in
  let nominal = Corner.gate_delay Corner.Nominal e in
  let worst = Corner.gate_delay Corner.Worst e in
  check_true "best < nominal" (best < nominal);
  check_true "nominal < worst" (nominal < worst);
  check_close ~tol:1e-15 "nominal corner = nominal delay"
    (Elmore.nominal_delay e) nominal

let test_corner_ratio_matches_paper () =
  (* The paper's Table 2 worst/nominal ratio is ~2.0. *)
  let e = Gate.electrical (Gate.Nand 2) in
  let ratio =
    Corner.gate_delay Corner.Worst e /. Corner.gate_delay Corner.Nominal e
  in
  check_true "worst/nominal ~ 2" (ratio > 1.6 && ratio < 2.4)

let test_corner_k_scales () =
  let e = Gate.electrical Gate.Inv in
  let mild = Corner.gate_delay ~k:1.0 Corner.Worst e in
  let harsh = Corner.gate_delay ~k:5.0 Corner.Worst e in
  check_true "larger corner is slower" (harsh > mild)

let suite =
  ( "tech",
    [ case "rv enumeration" test_rv_roundtrip;
      case "params get/set" test_get_set;
      case "params add zero" test_add_zero;
      case "nominal is physical" test_nominal_physical;
      case "paper sigma values" test_sigmas_positive;
      case "gate fan-in" test_fan_in;
      case "gate name roundtrip" test_name_of_name_roundtrip;
      case "gate of_name rejects" test_of_name_rejects;
      case "gate truth tables" test_eval_truth_tables;
      case "electrical coefficients positive" test_electrical_positive;
      case "fanout grows the load" test_electrical_fanout_grows_load;
      case "electrical rejects bad fanout"
        test_electrical_rejects_negative_fanout;
      case "voltage factor value" test_voltage_factor_nominal;
      case "voltage factor domain" test_voltage_factor_domain;
      case "gate delay ordering (Table 1)" test_gate_delay_ordering;
      case "delay monotonic in parameters" test_delay_monotonicity;
      case "path delay sums gates" test_path_delay_sums;
      case "first derivatives match finite differences"
        test_analytic_matches_numeric_first;
      case "second derivatives match finite differences"
        test_analytic_matches_numeric_second;
      case "gradient signs" test_gradient_signs;
      case "Table 1 shape" test_table1_shape;
      case "Table 1 magnitudes" test_table1_magnitudes;
      case "convexity claim (Section 2.5)" test_convexity_claim;
      case "corner ordering" test_corner_ordering;
      case "worst/nominal ratio ~ paper" test_corner_ratio_matches_paper;
      case "corner k scales" test_corner_k_scales ] )
