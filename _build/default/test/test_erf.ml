open Ssta_prob
open Helpers

let known_erf_values =
  (* (x, erf x) reference values. *)
  [ (0.0, 0.0); (0.1, 0.1124629160); (0.5, 0.5204998778);
    (1.0, 0.8427007929); (1.5, 0.9661051465); (2.0, 0.9953222650);
    (3.0, 0.9999779095) ]

let test_erf_table () =
  List.iter
    (fun (x, expected) ->
      check_close_abs ~tol:2e-7 (Printf.sprintf "erf(%g)" x) expected
        (Erf.erf x))
    known_erf_values

let test_erf_odd () =
  List.iter
    (fun x ->
      check_close_abs ~tol:1e-12 "erf is odd" (-.Erf.erf x) (Erf.erf (-.x)))
    [ 0.1; 0.7; 1.3; 2.5 ]

let test_erfc_complement () =
  List.iter
    (fun x ->
      check_close_abs ~tol:1e-7 "erf + erfc = 1" 1.0 (Erf.erf x +. Erf.erfc x))
    [ -2.0; -0.5; 0.0; 0.3; 1.7; 4.0 ]

let test_normal_cdf_standard () =
  check_close_abs ~tol:1e-7 "Phi(0)" 0.5 (Erf.normal_cdf 0.0);
  check_close_abs ~tol:1e-7 "Phi(1.96)" 0.9750021049 (Erf.normal_cdf 1.96);
  check_close_abs ~tol:1e-7 "Phi(-1)" 0.1586552539 (Erf.normal_cdf (-1.0))

let test_normal_cdf_scaled () =
  check_close_abs ~tol:1e-7 "Phi((x-mu)/sigma)"
    (Erf.normal_cdf 1.0)
    (Erf.normal_cdf ~mu:5.0 ~sigma:2.0 7.0)

let test_normal_pdf () =
  check_close ~tol:1e-9 "pdf(0)" 0.3989422804 (Erf.normal_pdf 0.0);
  check_close ~tol:1e-9 "pdf symmetric" (Erf.normal_pdf 1.2)
    (Erf.normal_pdf (-1.2));
  (* integrates to ~1 *)
  let n = 4000 in
  let h = 16.0 /. float_of_int n in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (Erf.normal_pdf (-8.0 +. ((float_of_int i +. 0.5) *. h)) *. h)
  done;
  check_close ~tol:1e-6 "pdf integrates to 1" 1.0 !total

let test_inverse_roundtrip () =
  List.iter
    (fun p ->
      check_close_abs ~tol:2e-7 (Printf.sprintf "Phi(Phi^-1(%g))" p) p
        (Erf.normal_cdf (Erf.inverse_normal_cdf p)))
    [ 1e-6; 0.001; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999; 1.0 -. 1e-6 ]

let test_inverse_known () =
  check_close_abs ~tol:1e-6 "Phi^-1(0.975)" 1.9599639845
    (Erf.inverse_normal_cdf 0.975);
  check_close_abs ~tol:2e-7 "Phi^-1(0.5)" 0.0 (Erf.inverse_normal_cdf 0.5)

let test_invalid_args () =
  check_raises_invalid "p=0" (fun () -> Erf.inverse_normal_cdf 0.0);
  check_raises_invalid "p=1" (fun () -> Erf.inverse_normal_cdf 1.0);
  check_raises_invalid "sigma<=0" (fun () -> Erf.normal_cdf ~sigma:0.0 1.0);
  check_raises_invalid "pdf sigma<=0" (fun () ->
      Erf.normal_pdf ~sigma:(-1.0) 1.0)

let prop_cdf_monotone =
  qcheck "normal_cdf is monotone"
    QCheck.(pair (float_bound_exclusive 8.0) (float_bound_exclusive 8.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Erf.normal_cdf lo <= Erf.normal_cdf hi +. 1e-12)

let suite =
  ( "erf",
    [ case "erf against reference table" test_erf_table;
      case "erf is odd" test_erf_odd;
      case "erfc complements erf" test_erfc_complement;
      case "standard normal CDF values" test_normal_cdf_standard;
      case "scaled normal CDF" test_normal_cdf_scaled;
      case "normal PDF values and normalization" test_normal_pdf;
      case "inverse CDF round trip" test_inverse_roundtrip;
      case "inverse CDF known quantiles" test_inverse_known;
      case "invalid arguments rejected" test_invalid_args;
      prop_cdf_monotone ] )
