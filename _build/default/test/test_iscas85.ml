open Ssta_circuit
open Helpers

let test_suite_composition () =
  check_int "ten circuits" 10 (List.length Iscas85.all);
  check_true "names unique"
    (List.sort_uniq compare Iscas85.names = List.sort compare Iscas85.names)

let test_by_name () =
  check_true "known" (Iscas85.by_name "c432" <> None);
  check_true "unknown" (Iscas85.by_name "c9999" = None)

let test_gate_counts_near_paper () =
  (* Substituted circuits must stay within 20% of the real gate counts
     (the multiplier and the ECC pair are structural, the rest exact). *)
  List.iter
    (fun (spec : Iscas85.spec) ->
      let c = Iscas85.build spec in
      let actual = Netlist.num_gates c in
      let target = spec.Iscas85.gates in
      let deviation =
        Float.abs (float_of_int (actual - target)) /. float_of_int target
      in
      if deviation > 0.20 then
        Alcotest.failf "%s: %d gates vs target %d" spec.Iscas85.name actual
          target)
    Iscas85.all

let test_depth_tracks_critical_path_gates () =
  (* For the random circuits the depth is pinned to the paper's
     critical-path gate count. *)
  List.iter
    (fun (spec : Iscas85.spec) ->
      match spec.Iscas85.style with
      | Iscas85.Random depth ->
          let c = Iscas85.build spec in
          check_int
            (spec.Iscas85.name ^ " depth")
            depth (Netlist.depth c)
      | Iscas85.Ecc | Iscas85.Ecc_expanded | Iscas85.Multiplier _ -> ())
    Iscas85.all

let test_builds_are_deterministic () =
  let spec =
    match Iscas85.by_name "c880" with Some s -> s | None -> assert false
  in
  let a = Iscas85.build spec and b = Iscas85.build spec in
  check_true "identical rebuilds"
    (Bench_format.to_string a = Bench_format.to_string b)

let test_c1355_is_expanded_c499 () =
  let c499 =
    match Iscas85.by_name "c499" with Some s -> Iscas85.build s | None -> assert false
  in
  let c1355 =
    match Iscas85.by_name "c1355" with Some s -> Iscas85.build s | None -> assert false
  in
  check_int "same inputs" c499.Netlist.num_inputs c1355.Netlist.num_inputs;
  check_int "same outputs"
    (Array.length c499.Netlist.outputs)
    (Array.length c1355.Netlist.outputs);
  (* equivalent logic *)
  let rng = Ssta_prob.Rng.create 2 in
  for _ = 1 to 100 do
    let inputs =
      Array.init c499.Netlist.num_inputs (fun _ ->
          Ssta_prob.Rng.float rng < 0.5)
    in
    check_true "c1355 = expand_xor(c499)"
      (Netlist.output_values c499 inputs = Netlist.output_values c1355 inputs)
  done;
  check_true "c1355 has no XOR gates"
    (List.for_all
       (fun (kind, _) ->
         match kind with
         | Ssta_tech.Gate.Xor2 | Ssta_tech.Gate.Xnor2 -> false
         | _ -> true)
       (Netlist.gate_kind_histogram c1355))

let test_c6288_multiplies () =
  let spec =
    match Iscas85.by_name "c6288" with Some s -> s | None -> assert false
  in
  let c = Iscas85.build spec in
  let to_bits v n = Array.init n (fun i -> Int64.to_int (Int64.logand (Int64.shift_right_logical (Int64.of_int v) i) 1L) = 1) in
  let of_bits a =
    Array.to_list a
    |> List.mapi (fun i b -> if b then Int64.shift_left 1L i else 0L)
    |> List.fold_left Int64.add 0L
  in
  List.iter
    (fun (a, b) ->
      let inputs = Array.append (to_bits a 16) (to_bits b 16) in
      let p = of_bits (Netlist.output_values c inputs) in
      if p <> Int64.of_int (a * b) then
        Alcotest.failf "c6288: %d*%d = %d, got %Ld" a b (a * b) p)
    [ (0, 0); (1, 1); (3, 5); (65535, 65535); (12345, 54321); (40000, 40000) ]

let test_build_placed () =
  let spec =
    match Iscas85.by_name "c432" with Some s -> s | None -> assert false
  in
  let c, pl = Iscas85.build_placed spec in
  check_int "placement covers all nodes" (Netlist.num_nodes c)
    (Array.length pl.Placement.coords)

let suite =
  ( "iscas85",
    [ case "ten benchmarks, unique names" test_suite_composition;
      case "lookup by name" test_by_name;
      case "gate counts near the paper" test_gate_counts_near_paper;
      case "random depths = paper critical-path gates"
        test_depth_tracks_critical_path_gates;
      case "deterministic builds" test_builds_are_deterministic;
      case "c1355 is the NAND expansion of c499" test_c1355_is_expanded_c499;
      slow_case "c6288 multiplies 16x16" test_c6288_multiplies;
      case "build_placed covers all nodes" test_build_placed ] )
