(* Monte-Carlo golden baseline and block-based (Clark) SSTA tests. *)

open Ssta_circuit
open Ssta_timing
open Ssta_prob
open Ssta_core
open Helpers

let setup ?(config = fast_config) circuit =
  let sta = Sta.analyze circuit in
  let pl = Placement.place circuit in
  let sampler = Monte_carlo.sampler config sta.Sta.graph pl in
  (sta, pl, sampler)

(* ---------------- Monte-Carlo ---------------- *)

let test_gate_delays_shape () =
  let circuit = small_random () in
  let sta, _, sampler = setup circuit in
  let rng = Rng.create 1 in
  let delays = Monte_carlo.sample_gate_delays sampler rng in
  check_int "delay per node" (Graph.num_nodes sta.Sta.graph)
    (Array.length delays);
  Array.iteri
    (fun id d ->
      if Graph.is_input sta.Sta.graph id then
        check_close ~tol:0.0 "inputs have no delay" 0.0 d
      else check_true "gates have positive sampled delay" (d > 0.0))
    delays

let test_gate_delays_vary_across_dies () =
  let circuit = tiny_chain () in
  let _, _, sampler = setup circuit in
  let rng = Rng.create 5 in
  let a = Monte_carlo.sample_gate_delays sampler rng in
  let b = Monte_carlo.sample_gate_delays sampler rng in
  check_true "independent dies differ" (a <> b)

let test_path_samples_mean_near_nominal () =
  let circuit = small_random () in
  let sta, _, sampler = setup circuit in
  let rng = Rng.create 9 in
  let samples =
    Monte_carlo.path_delay_samples sampler ~n:4000 rng sta.Sta.critical_path
  in
  let s = Stats.summarize samples in
  let nominal = sta.Sta.critical_path.Paths.delay in
  check_true "sampled mean within 2% of nominal"
    (Float.abs (s.Stats.mean -. nominal) < 0.02 *. nominal);
  check_true "sampled spread plausible"
    (s.Stats.std > 0.01 *. nominal && s.Stats.std < 0.3 *. nominal)

let test_validate_path_agreement () =
  (* The central claim: the analytic (Taylor + grid) PDF matches exact
     sampling of the nonlinear correlated model.  Full paper quality
     (100/50): the coarse test config under-resolves the inter PDF. *)
  let circuit = small_random () in
  let sta, pl, sampler = setup ~config:Config.default circuit in
  let ctx = Path_analysis.context Config.default sta.Sta.graph pl in
  let a = Path_analysis.analyze ctx sta.Sta.critical_path in
  let rng = Rng.create 31337 in
  let v = Monte_carlo.validate_path ~n:8000 sampler rng a in
  check_true "mean error below 0.5%"
    (v.Monte_carlo.mean_err < 0.005 *. a.Path_analysis.mean);
  check_true "std error below 10%"
    (v.Monte_carlo.std_err < 0.1 *. a.Path_analysis.std);
  check_true "KS below 0.05" (v.Monte_carlo.ks < 0.05)

let test_circuit_samples_dominate_paths () =
  (* The circuit delay (max over all paths) stochastically dominates any
     single path's delay. *)
  let circuit = small_random () in
  let sta, _, sampler = setup circuit in
  let rng = Rng.create 12 in
  let circuit_samples =
    Monte_carlo.circuit_delay_samples sampler ~n:600 rng
  in
  let path_samples =
    Monte_carlo.path_delay_samples sampler ~n:600 rng sta.Sta.critical_path
  in
  check_true "mean(max) >= mean(single path)"
    (Stats.mean circuit_samples >= Stats.mean path_samples -. 1e-15);
  check_true "circuit delay at least the nominal critical delay on average"
    (Stats.mean circuit_samples > 0.97 *. sta.Sta.critical_delay)

let test_mc_determinism () =
  let circuit = tiny_chain () in
  let sta, _, sampler = setup circuit in
  let a =
    Monte_carlo.path_delay_samples sampler ~n:50 (Rng.create 3)
      sta.Sta.critical_path
  in
  let b =
    Monte_carlo.path_delay_samples sampler ~n:50 (Rng.create 3)
      sta.Sta.critical_path
  in
  check_true "same seed, same samples" (a = b)

let test_mc_input_validation () =
  let circuit = tiny_chain () in
  let sta, _, sampler = setup circuit in
  check_raises_invalid "n=0 path samples" (fun () ->
      ignore
        (Monte_carlo.path_delay_samples sampler ~n:0 (Rng.create 1)
           sta.Sta.critical_path));
  check_raises_invalid "n=0 circuit samples" (fun () ->
      ignore (Monte_carlo.circuit_delay_samples sampler ~n:0 (Rng.create 1)))

(* ---------------- Block-based ---------------- *)

let test_block_based_matches_mc () =
  let circuit = small_random () in
  let _, pl, sampler = setup ~config:Config.default circuit in
  let bb = Block_based.analyze ~placement:pl circuit in
  let rng = Rng.create 8 in
  let mc = Monte_carlo.circuit_delay_samples sampler ~n:1500 rng in
  let s = Stats.summarize mc in
  check_true "mean within 2%"
    (Float.abs (bb.Block_based.mean -. s.Stats.mean) < 0.02 *. s.Stats.mean);
  check_true "std within 25%"
    (Float.abs (bb.Block_based.std -. s.Stats.std) < 0.25 *. s.Stats.std)

let test_block_based_vs_sta_mean () =
  (* With max-of-Gaussians, the statistical arrival mean must be at least
     the deterministic critical delay. *)
  let circuit = small_random () in
  let sta = Sta.analyze circuit in
  let bb = Block_based.analyze circuit in
  check_true "mean >= deterministic critical"
    (bb.Block_based.mean >= sta.Sta.critical_delay -. 1e-15);
  check_true "3-sigma above mean"
    (bb.Block_based.confidence_point > bb.Block_based.mean)

let test_canonical_algebra () =
  let circuit = tiny_chain () in
  let bb = Block_based.analyze circuit in
  let a = bb.Block_based.arrival in
  let doubled = Block_based.add a a in
  check_close ~tol:1e-12 "add means" (2.0 *. a.Block_based.mean)
    doubled.Block_based.mean;
  check_close ~tol:1e-9 "fully correlated sum doubles the std"
    (2.0 *. Block_based.std Config.default a)
    (Block_based.std Config.default doubled);
  (* covariance with itself = variance *)
  check_close ~tol:1e-9 "cov(X,X) = var(X) (shared terms)"
    (Block_based.variance Config.default a -. a.Block_based.indep)
    (Block_based.covariance Config.default a a)

let test_clark_max_dominates () =
  let circuit = small_adder () in
  let bb = Block_based.analyze circuit in
  let a = bb.Block_based.arrival in
  let shifted = { a with Block_based.mean = a.Block_based.mean *. 0.5 } in
  let m = Block_based.clark_max Config.default a shifted in
  check_true "max mean >= both inputs"
    (m.Block_based.mean >= a.Block_based.mean -. 1e-15
    && m.Block_based.mean >= shifted.Block_based.mean -. 1e-15)

let test_clark_max_far_apart_picks_larger () =
  let circuit = tiny_chain () in
  let bb = Block_based.analyze circuit in
  let a = bb.Block_based.arrival in
  let tiny = { a with Block_based.mean = a.Block_based.mean /. 100.0 } in
  let m = Block_based.clark_max Config.default a tiny in
  check_close ~tol:1e-12 "distant max = larger operand" a.Block_based.mean
    m.Block_based.mean

(* ---------------- Quality sweep ---------------- *)

let test_quality_sweep_converges () =
  let circuit = small_random () in
  let grid = [ (10, 5); (30, 15); (60, 30) ] in
  let sweep = Quality_sweep.run ~config:fast_config ~grid circuit in
  check_int "three points" 3 (List.length sweep.Quality_sweep.points);
  check_true "reference positive" (sweep.Quality_sweep.reference_sigma3 > 0.0);
  (* error at the finest grid point is the smallest *)
  let errs =
    List.map (fun p -> p.Quality_sweep.error_pct) sweep.Quality_sweep.points
  in
  (match (errs, List.rev errs) with
  | coarse :: _, fine :: _ ->
      check_true "finer grid is at least as accurate" (fine <= coarse)
  | _ -> Alcotest.fail "missing points");
  let k = Quality_sweep.knee sweep in
  check_true "knee is one of the points"
    (List.exists
       (fun p ->
         p.Quality_sweep.quality_intra = k.Quality_sweep.quality_intra
         && p.Quality_sweep.quality_inter = k.Quality_sweep.quality_inter)
       sweep.Quality_sweep.points)

let test_quality_sweep_empty_grid () =
  check_raises_invalid "empty grid" (fun () ->
      ignore (Quality_sweep.run ~grid:[] (tiny_chain ())))

let suite =
  ( "baselines",
    [ case "sampled gate delays shape" test_gate_delays_shape;
      case "independent dies differ" test_gate_delays_vary_across_dies;
      case "path sample mean near nominal" test_path_samples_mean_near_nominal;
      case "analytic PDF matches exact sampling" test_validate_path_agreement;
      case "circuit delay dominates path delay"
        test_circuit_samples_dominate_paths;
      case "monte-carlo determinism" test_mc_determinism;
      case "monte-carlo input validation" test_mc_input_validation;
      case "block-based matches monte-carlo" test_block_based_matches_mc;
      case "block-based above deterministic" test_block_based_vs_sta_mean;
      case "canonical algebra" test_canonical_algebra;
      case "clark max dominates operands" test_clark_max_dominates;
      case "clark max with distant operands"
        test_clark_max_far_apart_picks_larger;
      case "quality sweep converges" test_quality_sweep_converges;
      case "quality sweep rejects empty grid" test_quality_sweep_empty_grid ]
  )
