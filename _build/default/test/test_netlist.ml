open Ssta_circuit
open Ssta_tech
open Helpers
module B = Netlist.Builder

let build_simple () =
  let b = B.create "simple" in
  let a = B.add_input b "a" in
  let c = B.add_input b "b" in
  let g1 = B.add_gate b (Gate.Nand 2) [ a; c ] in
  let g2 = B.add_gate b Gate.Inv [ g1 ] in
  B.mark_output b g2;
  B.finish b

let test_builder_basic () =
  let c = build_simple () in
  check_int "nodes" 4 (Netlist.num_nodes c);
  check_int "gates" 2 (Netlist.num_gates c);
  check_int "inputs" 2 c.Netlist.num_inputs;
  check_int "outputs" 1 (Array.length c.Netlist.outputs);
  check_true "input check" (Netlist.is_input c 0);
  check_true "gate check" (not (Netlist.is_input c 2))

let test_builder_names () =
  let c = build_simple () in
  check_true "input name" (String.equal (Netlist.node_name c 0) "a");
  check_true "find by name" (Netlist.find_node c "b" = Some 1);
  check_true "missing name" (Netlist.find_node c "zzz" = None)

let test_builder_rejections () =
  check_raises_invalid "duplicate input name" (fun () ->
      let b = B.create "x" in
      ignore (B.add_input b "a");
      ignore (B.add_input b "a"));
  check_raises_invalid "input after gate" (fun () ->
      let b = B.create "x" in
      let a = B.add_input b "a" in
      ignore (B.add_gate b Gate.Inv [ a ]);
      ignore (B.add_input b "late"));
  check_raises_invalid "arity mismatch" (fun () ->
      let b = B.create "x" in
      let a = B.add_input b "a" in
      ignore (B.add_gate b (Gate.Nand 2) [ a ]));
  check_raises_invalid "forward reference" (fun () ->
      let b = B.create "x" in
      let a = B.add_input b "a" in
      ignore (B.add_gate b (Gate.Nand 2) [ a; 99 ]));
  check_raises_invalid "no outputs" (fun () ->
      let b = B.create "x" in
      let a = B.add_input b "a" in
      ignore (B.add_gate b Gate.Inv [ a ]);
      ignore (B.finish b));
  check_raises_invalid "no gates" (fun () ->
      let b = B.create "x" in
      let a = B.add_input b "a" in
      B.mark_output b a;
      ignore (B.finish b))

let test_fanouts () =
  let c = build_simple () in
  let fo = Netlist.fanouts c in
  check_int "input 0 feeds the nand" 1 (Array.length fo.(0));
  check_int "nand feeds the inverter" 1 (Array.length fo.(2));
  check_int "inverter feeds nothing internally" 0 (Array.length fo.(3));
  let counts = Netlist.fanout_counts c in
  (* primary output adds one sink *)
  check_int "output counted as consumer" 1 counts.(3)

let test_levels_depth () =
  let c = build_simple () in
  let lv = Netlist.levels c in
  check_int "input level" 0 lv.(0);
  check_int "first gate level" 1 lv.(2);
  check_int "second gate level" 2 lv.(3);
  check_int "depth" 2 (Netlist.depth c)

let test_histogram () =
  let c = build_simple () in
  let h = Netlist.gate_kind_histogram c in
  check_int "two kinds" 2 (List.length h);
  check_true "one nand" (List.mem (Gate.Nand 2, 1) h);
  check_true "one inv" (List.mem (Gate.Inv, 1) h)

let test_simulate () =
  let c = build_simple () in
  (* out = NOT(NAND(a,b)) = AND(a,b) *)
  let out inputs = (Netlist.output_values c inputs).(0) in
  check_true "0,0 -> 0" (not (out [| false; false |]));
  check_true "1,0 -> 0" (not (out [| true; false |]));
  check_true "1,1 -> 1" (out [| true; true |]);
  check_raises_invalid "wrong input width" (fun () ->
      ignore (Netlist.simulate c [| true |]))

let test_gate_of () =
  let c = build_simple () in
  let g = Netlist.gate_of c 2 in
  check_true "kind" (g.Netlist.kind = Gate.Nand 2);
  check_raises_invalid "gate_of on input" (fun () ->
      ignore (Netlist.gate_of c 0))

let test_mark_output_idempotent () =
  let b = B.create "x" in
  let a = B.add_input b "a" in
  let g = B.add_gate b Gate.Inv [ a ] in
  B.mark_output b g;
  B.mark_output b g;
  let c = B.finish b in
  check_int "single output" 1 (Array.length c.Netlist.outputs)

let prop_builder_topological =
  qcheck ~count:30 "generated netlists are topological by construction"
    QCheck.(int_range 1 200)
    (fun seed ->
      let c =
        Generators.random_layered ~name:"p" ~inputs:6 ~outputs:3 ~gates:40
          ~depth:6 ~seed ()
      in
      Array.for_all
        (fun (g : Netlist.gate) ->
          Array.for_all (fun f -> f < g.Netlist.id) g.Netlist.fanins)
        c.Netlist.gates)

let suite =
  ( "netlist",
    [ case "builder basics" test_builder_basic;
      case "node names" test_builder_names;
      case "builder rejects malformed input" test_builder_rejections;
      case "fanout computation" test_fanouts;
      case "levels and depth" test_levels_depth;
      case "gate histogram" test_histogram;
      case "logic simulation" test_simulate;
      case "gate_of" test_gate_of;
      case "mark_output idempotent" test_mark_output_idempotent;
      prop_builder_topological ] )
