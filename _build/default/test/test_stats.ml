open Ssta_prob
open Helpers

let data = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_mean () = check_close ~tol:1e-12 "mean" 5.0 (Stats.mean data)

let test_variance_unbiased () =
  (* sum of squared deviations = 32, n-1 = 7 *)
  check_close ~tol:1e-12 "variance" (32.0 /. 7.0) (Stats.variance data)

let test_summarize () =
  let s = Stats.summarize data in
  check_int "count" 8 s.Stats.count;
  check_close ~tol:1e-12 "mean" 5.0 s.Stats.mean;
  check_close ~tol:1e-12 "min" 2.0 s.Stats.min;
  check_close ~tol:1e-12 "max" 9.0 s.Stats.max;
  check_true "positive skew" (s.Stats.skewness > 0.0)

let test_empty_rejected () =
  check_raises_invalid "mean of empty" (fun () -> ignore (Stats.mean [||]));
  check_raises_invalid "variance of singleton" (fun () ->
      ignore (Stats.variance [| 1.0 |]));
  check_raises_invalid "summarize of singleton" (fun () ->
      ignore (Stats.summarize [| 1.0 |]))

let test_percentile () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_close ~tol:1e-12 "median" 3.0 (Stats.percentile xs 0.5);
  check_close ~tol:1e-12 "min" 1.0 (Stats.percentile xs 0.0);
  check_close ~tol:1e-12 "max" 5.0 (Stats.percentile xs 1.0);
  check_close ~tol:1e-12 "interpolated" 1.4 (Stats.percentile xs 0.1);
  check_raises_invalid "bad q" (fun () -> ignore (Stats.percentile xs 1.5))

let test_sigma_point () =
  check_close ~tol:1e-9 "mean + 2 std"
    (5.0 +. (2.0 *. sqrt (32.0 /. 7.0)))
    (Stats.sigma_point data 2.0)

let test_ks_against_pdf () =
  let p = Dist.truncated_gaussian ~n:200 ~mu:0.0 ~sigma:1.0 () in
  let rng = Rng.create 4 in
  let matching =
    Array.init 5_000 (fun _ ->
        Rng.truncated_gaussian rng ~mu:0.0 ~sigma:1.0 ~bound:6.0)
  in
  check_true "matching sample: small KS" (Stats.ks_against_pdf matching p < 0.03);
  let shifted = Array.map (fun x -> x +. 2.0) matching in
  check_true "shifted sample: large KS" (Stats.ks_against_pdf shifted p > 0.5)

let test_correlation () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let ys = Array.map (fun x -> (2.0 *. x) +. 1.0) xs in
  check_close ~tol:1e-12 "perfect positive" 1.0 (Stats.correlation xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_close ~tol:1e-12 "perfect negative" (-1.0) (Stats.correlation xs zs);
  check_raises_invalid "length mismatch" (fun () ->
      ignore (Stats.correlation xs [| 1.0 |]))

let test_correlation_degenerate () =
  let xs = [| 1.0; 1.0; 1.0 |] and ys = [| 1.0; 2.0; 3.0 |] in
  check_close ~tol:1e-12 "constant series" 0.0 (Stats.correlation xs ys)

let test_spearman () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  let ys = [| 1.0; 8.0; 27.0; 64.0 |] in
  (* monotone transform: perfect rank correlation *)
  check_close ~tol:1e-12 "monotone data" 1.0 (Stats.spearman xs ys);
  let zs = [| 64.0; 27.0; 8.0; 1.0 |] in
  check_close ~tol:1e-12 "reversed" (-1.0) (Stats.spearman xs zs)

let prop_percentile_monotone =
  qcheck "percentiles are monotone in q"
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.0 1.0))
    (fun (a, b) ->
      let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
      let lo = Float.min a b and hi = Float.max a b in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-12)

let suite =
  ( "stats",
    [ case "mean" test_mean;
      case "unbiased variance" test_variance_unbiased;
      case "summarize" test_summarize;
      case "degenerate inputs rejected" test_empty_rejected;
      case "percentile" test_percentile;
      case "sigma point" test_sigma_point;
      case "ks against pdf" test_ks_against_pdf;
      case "pearson correlation" test_correlation;
      case "correlation of constant series" test_correlation_degenerate;
      case "spearman rank correlation" test_spearman;
      prop_percentile_monotone ] )
