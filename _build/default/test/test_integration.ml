(* Cross-module integration tests: the paper's headline claims, end to
   end, on the substituted benchmark circuits (reduced PDF quality for
   speed; the bench harness runs the full-quality versions). *)

open Ssta_circuit
open Ssta_core
open Helpers

let run ?(confidence = 0.05) ?(max_paths = 500) name =
  let spec =
    match Iscas85.by_name name with
    | Some s -> s
    | None -> Alcotest.failf "missing benchmark %s" name
  in
  let circuit, placement = Iscas85.build_placed spec in
  let config = Config.with_confidence fast_config confidence in
  let config = { config with Config.max_paths } in
  (spec, Methodology.run ~config ~placement circuit)

let test_c432_overestimation () =
  (* Headline: worst-case analysis overestimates the 3-sigma point by
     tens of percent (paper: 48-62% across the suite). *)
  let _, m = run "c432" in
  let over = Methodology.overestimation_pct m in
  check_true
    (Printf.sprintf "overestimation %.1f%% in [30, 90]" over)
    (over > 30.0 && over < 90.0)

let test_c432_mean_shift () =
  (* "The expected value of the delay is not the delay of the expected
     values" — a small positive shift. *)
  let _, m = run "c432" in
  let d = m.Methodology.det_critical in
  let shift = d.Path_analysis.mean -. d.Path_analysis.det_delay in
  check_true "positive" (shift > 0.0);
  check_true "small" (shift < 0.005 *. d.Path_analysis.det_delay)

let test_c432_sigma_fraction () =
  (* Path sigma is 5-15% of the mean in the paper's Table 2. *)
  let _, m = run "c432" in
  let d = m.Methodology.det_critical in
  let frac = d.Path_analysis.std /. d.Path_analysis.mean in
  check_true
    (Printf.sprintf "sigma/mean = %.3f in [0.03, 0.2]" frac)
    (frac > 0.03 && frac < 0.2)

let test_bushy_circuits_have_many_near_critical_paths () =
  let _, m499 = run "c499" in
  let _, m880 = run "c880" in
  check_true "c499 (bushy ECC) has far more near-critical paths than c880"
    (Methodology.num_critical_paths m499
    > 5 * Methodology.num_critical_paths m880)

let test_rank_churn_contrast () =
  (* Fig. 5 vs Fig. 6: rank churn is large for c1355, small for c7552. *)
  let _, m1355 = run ~max_paths:400 "c1355" in
  let _, m7552 = run ~max_paths:400 "c7552" in
  let change1355 = Ranking.max_rank_change m1355.Methodology.ranked in
  let change7552 = Ranking.max_rank_change m7552.Methodology.ranked in
  check_true
    (Printf.sprintf "c1355 churn (%d) >> c7552 churn (%d)" change1355
       change7552)
    (change1355 > 4 * change7552)

let test_table3_sigma_grows_with_inter_share () =
  let spec =
    match Iscas85.by_name "c432" with Some s -> s | None -> assert false
  in
  let circuit, placement = Iscas85.build_placed spec in
  let sigma_at inter_fraction =
    let config = Config.with_budget_split fast_config ~inter_fraction in
    let m = Methodology.run ~config ~placement circuit in
    m.Methodology.det_critical.Path_analysis.std
  in
  let s0 = sigma_at 0.0 and s50 = sigma_at 0.5 and s75 = sigma_at 0.75 in
  check_true "sigma grows with inter share" (s0 < s50 && s50 < s75)

let test_near_critical_threshold_semantics () =
  (* Every analyzed path's nominal delay is within C * sigma_C of the
     critical delay — the paper's Section 3.2 definition. *)
  let _, m = run ~confidence:1.0 "c432" in
  let d = m.Methodology.sta.Ssta_timing.Sta.critical_delay in
  Array.iter
    (fun r ->
      check_true "path within the threshold"
        (r.Ranking.analysis.Path_analysis.det_delay
        >= d -. m.Methodology.slack -. 1e-12))
    m.Methodology.ranked

let test_full_flow_from_bench_file () =
  (* Export c432 to .bench + DEF, re-read both, and get the same
     deterministic critical delay — the paper's program I/O path. *)
  let spec =
    match Iscas85.by_name "c432" with Some s -> s | None -> assert false
  in
  let circuit, placement = Iscas85.build_placed spec in
  let bench_path = Filename.temp_file "c432" ".bench" in
  let def_path = Filename.temp_file "c432" ".def" in
  Bench_format.write_file bench_path circuit;
  Def_format.write_file def_path
    (Def_format.of_placement ~design:"c432" circuit placement);
  let circuit' = Bench_format.parse_file bench_path in
  let placement' =
    Def_format.placement_of (Def_format.parse_file def_path) circuit'
  in
  Sys.remove bench_path;
  Sys.remove def_path;
  let m = Methodology.run ~config:fast_config ~placement circuit in
  let m' = Methodology.run ~config:fast_config ~placement:placement' circuit' in
  check_close ~tol:1e-9 "same critical delay through the file formats"
    m.Methodology.sta.Ssta_timing.Sta.critical_delay
    m'.Methodology.sta.Ssta_timing.Sta.critical_delay;
  check_int "same number of near-critical paths"
    (Methodology.num_critical_paths m)
    (Methodology.num_critical_paths m')

let test_determinism_of_the_whole_flow () =
  let _, m1 = run "c880" in
  let _, m2 = run "c880" in
  check_close ~tol:0.0 "identical sigma_c" m1.Methodology.sigma_c
    m2.Methodology.sigma_c;
  check_int "identical path counts"
    (Methodology.num_critical_paths m1)
    (Methodology.num_critical_paths m2);
  check_int "identical prob-critical det rank"
    (Ranking.det_rank_of_prob_critical m1.Methodology.ranked)
    (Ranking.det_rank_of_prob_critical m2.Methodology.ranked)

let suite =
  ( "integration",
    [ case "c432 worst-case overestimation (headline)"
        test_c432_overestimation;
      case "c432 probabilistic mean shift" test_c432_mean_shift;
      case "c432 sigma fraction" test_c432_sigma_fraction;
      case "bushy circuits explode the near-critical set"
        test_bushy_circuits_have_many_near_critical_paths;
      slow_case "rank churn: c1355 vs c7552" test_rank_churn_contrast;
      case "Table 3: sigma grows with inter share"
        test_table3_sigma_grows_with_inter_share;
      case "near-critical threshold semantics"
        test_near_critical_threshold_semantics;
      case "full flow through .bench and DEF files"
        test_full_flow_from_bench_file;
      case "whole flow is deterministic" test_determinism_of_the_whole_flow ]
  )
