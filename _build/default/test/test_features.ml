(* Tests for the production-timer features layered on the paper's core:
   hold (min-delay) analysis, required-time/slack, structural Verilog,
   analytic path correlation, drive strengths and the sizing optimizer,
   and the additional arithmetic generators. *)

open Ssta_circuit
open Ssta_timing
open Ssta_correlation
open Ssta_prob
open Helpers

(* ---------------- Shortest path / hold ---------------- *)

let test_min_labels_chain () =
  let g = Graph.of_netlist (tiny_chain ()) in
  let min_labels = Shortest_path.labels g in
  let max_labels = Longest_path.bellman_ford g in
  (* a chain has a single path: min = max *)
  Array.iteri
    (fun i x -> check_close ~tol:1e-15 "chain: min = max" max_labels.(i) x)
    min_labels

let test_min_below_max () =
  let g = Graph.of_netlist (small_random ()) in
  let min_labels = Shortest_path.labels g in
  let max_labels = Longest_path.bellman_ford g in
  Array.iteri
    (fun i x -> check_true "min <= max" (x <= max_labels.(i) +. 1e-18))
    min_labels;
  check_true "min delay below critical delay"
    (Shortest_path.min_delay g min_labels
    <= Longest_path.critical_delay g max_labels)

let test_min_path_consistency () =
  List.iter
    (fun c ->
      let g = Graph.of_netlist c in
      let labels = Shortest_path.labels g in
      let path = Shortest_path.min_path g labels in
      check_true "valid path" (Paths.is_path g path);
      check_close ~tol:1e-12 "path delay = min delay"
        (Shortest_path.min_delay g labels)
        (Paths.recompute_delay g path))
    [ tiny_chain (); small_adder (); small_random () ]

let test_near_min_enumeration () =
  let g = Graph.of_netlist (small_adder ()) in
  let labels = Shortest_path.labels g in
  let fastest = Shortest_path.min_delay g labels in
  let e = Shortest_path.enumerate_near_min g ~labels ~slack:(0.2 *. fastest) in
  check_true "found at least the fastest path"
    (List.length e.Paths.paths >= 1);
  (* sorted ascending and all within slack *)
  let rec walk last = function
    | [] -> ()
    | (p : Paths.path) :: rest ->
        check_true "ascending" (p.Paths.delay >= last -. 1e-15);
        check_true "within slack"
          (p.Paths.delay <= fastest +. (0.2 *. fastest) +. 1e-12);
        walk p.Paths.delay rest
  in
  walk 0.0 e.Paths.paths;
  check_raises_invalid "negative slack" (fun () ->
      ignore (Shortest_path.enumerate_near_min g ~labels ~slack:(-1.0)))

let test_near_min_vs_near_max_disjoint_ends () =
  (* For a circuit with unequal path lengths, the fastest path should be
     shorter (in gates) than the critical one. *)
  let g = Graph.of_netlist (small_random ()) in
  let minl = Shortest_path.labels g in
  let maxl = Longest_path.bellman_ford g in
  let fast = Shortest_path.min_path g minl in
  let slow = Longest_path.critical_path g maxl in
  check_true "fastest path has fewer or equal gates"
    (Array.length fast <= Array.length slow)

(* ---------------- Slack ---------------- *)

let test_slack_default_clock () =
  let g = Graph.of_netlist (small_random ()) in
  let s = Slack.compute g in
  check_close ~tol:1e-15 "clock = critical delay"
    (Longest_path.critical_delay g s.Slack.arrival)
    s.Slack.clock;
  check_close_abs ~tol:1e-18 "worst slack is zero at the default clock" 0.0
    (Slack.worst s);
  check_true "no violations" (Slack.violations s = [])

let test_slack_tight_clock () =
  let g = Graph.of_netlist (small_random ()) in
  let labels = Longest_path.bellman_ford g in
  let critical = Longest_path.critical_delay g labels in
  let s = Slack.compute ~clock:(0.9 *. critical) g in
  check_close ~tol:1e-9 "worst slack = clock - critical"
    ((0.9 *. critical) -. critical)
    (Slack.worst s);
  check_true "violations exist" (Slack.violations s <> []);
  let worst_node = Slack.worst_node s in
  check_close ~tol:1e-9 "worst node carries the worst slack" (Slack.worst s)
    s.Slack.slack.(worst_node)

let test_slack_critical_nodes_cover_critical_path () =
  let g = Graph.of_netlist (small_random ()) in
  let labels = Longest_path.bellman_ford g in
  let path = Longest_path.critical_path g labels in
  let s = Slack.compute g in
  let critical = Slack.critical_nodes s in
  Array.iter
    (fun id ->
      check_true "critical-path node has zero slack" (List.mem id critical))
    path

let test_slack_generous_clock () =
  let g = Graph.of_netlist (tiny_chain ()) in
  let s = Slack.compute ~clock:1.0 g in
  check_true "everything has huge slack" (Slack.worst s > 0.9)

(* ---------------- Verilog ---------------- *)

let verilog_sample =
  {|// a comment
module test (a, b, sel, y);
  input a, b, sel;
  output y;
  wire na, ta, tb, nsel;
  /* 2:1 mux */
  not (nsel, sel);
  and g1 (ta, a, nsel);
  and g2 (tb, b, sel);
  or  g3 (y, ta, tb);
endmodule
|}

let test_verilog_parse () =
  let c = Verilog.parse_string verilog_sample in
  check_int "inputs" 3 c.Netlist.num_inputs;
  check_int "gates" 4 (Netlist.num_gates c);
  check_int "outputs" 1 (Array.length c.Netlist.outputs);
  (* mux semantics *)
  let out a b sel = (Netlist.output_values c [| a; b; sel |]).(0) in
  check_true "sel=0 picks a" (out true false false);
  check_true "sel=1 picks b" (not (out true false true));
  check_true "sel=1 picks b (true)" (out false true true)

let test_verilog_forward_refs_and_unnamed_instances () =
  let text =
    "module m (a, y);\n input a;\n output y;\n wire w;\n not (y, w);\n \
     not (w, a);\nendmodule\n"
  in
  let c = Verilog.parse_string text in
  check_int "two gates" 2 (Netlist.num_gates c);
  check_true "double inversion" ((Netlist.output_values c [| true |]).(0))

let test_verilog_errors () =
  let expect text =
    match Verilog.parse_string text with
    | exception Verilog.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error for %S" text
  in
  expect "module m (a); input a; endmodule";
  (* no outputs -> builder failure is Invalid_argument; catch both *)
  expect "module m (a, y);\ninput a;\noutput y;\nfrob g (y, a);\nendmodule\n";
  expect "module m (a, y);\ninput a;\noutput y;\nnot (y, w);\nendmodule\n";
  expect "module m (a, y);\ninput a;\noutput y;\nnot (y, y);\nendmodule\n";
  expect "module m (a, y);\ninput a;\noutput y;\nnot (y, a;\nendmodule\n";
  expect "module m (a, y);\ninput a;\noutput y;\nnot (y, a);\n"

let test_verilog_roundtrip_suite () =
  List.iter
    (fun c ->
      let c' = Verilog.parse_string (Verilog.to_string c) in
      check_int "nodes" (Netlist.num_nodes c) (Netlist.num_nodes c');
      let rng = Rng.create 5 in
      for _ = 1 to 60 do
        let inputs =
          Array.init c.Netlist.num_inputs (fun _ -> Rng.float rng < 0.5)
        in
        check_true "logic preserved"
          (Netlist.output_values c inputs = Netlist.output_values c' inputs)
      done)
    [ small_adder ();
      Generators.ecc ~name:"e" ~data_bits:8 ~check_bits:4 ();
      small_random () ]

let test_verilog_and_bench_agree () =
  let c = small_random () in
  let via_verilog = Verilog.parse_string (Verilog.to_string c) in
  let via_bench = Bench_format.parse_string (Bench_format.to_string c) in
  let rng = Rng.create 9 in
  for _ = 1 to 40 do
    let inputs =
      Array.init c.Netlist.num_inputs (fun _ -> Rng.float rng < 0.5)
    in
    check_true "both formats preserve the function"
      (Netlist.output_values via_verilog inputs
      = Netlist.output_values via_bench inputs)
  done

(* ---------------- Path correlation ---------------- *)

let correlated_context () =
  let c = small_random () in
  let g = Graph.of_netlist c in
  let pl = Placement.place c in
  let layers = Layers.of_placement pl in
  let labels = Longest_path.bellman_ford g in
  let enum =
    Paths.enumerate g ~labels
      ~slack:(0.3 *. Longest_path.critical_delay g labels)
  in
  let coeffs =
    List.map (fun p -> Path_coeffs.of_path g pl layers p) enum.Paths.paths
  in
  (g, pl, enum.Paths.paths, coeffs)

let budget = Ssta_correlation.Budget.equal ~layers:5

let test_self_correlation_is_one () =
  let _, _, _, coeffs = correlated_context () in
  List.iter
    (fun pc ->
      check_close ~tol:1e-12 "corr(p, p) = 1" 1.0
        (Path_correlation.correlation budget pc pc))
    coeffs

let test_correlation_bounds_and_symmetry () =
  let _, _, _, coeffs = correlated_context () in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if j > i then begin
            let r = Path_correlation.correlation budget a b in
            check_true "within [-1, 1]" (r >= -1.0 -. 1e-12 && r <= 1.0 +. 1e-12);
            check_close ~tol:1e-12 "symmetric"
              (Path_correlation.covariance budget a b)
              (Path_correlation.covariance budget b a)
          end)
        coeffs)
    coeffs

let test_all_paths_positively_correlated () =
  (* every pair shares the inter-die RVs, so correlations are strictly
     positive *)
  let _, _, _, coeffs = correlated_context () in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if j > i then
            check_true "positive correlation"
              (Path_correlation.correlation budget a b > 0.0))
        coeffs)
    coeffs

let test_correlation_matches_monte_carlo () =
  let g, pl, paths, coeffs = correlated_context () in
  match paths, coeffs with
  | pa :: pb :: _, ca :: cb :: _ ->
      let analytic = Path_correlation.correlation budget ca cb in
      let sampler =
        Ssta_core.Monte_carlo.sampler Ssta_core.Config.default g pl
      in
      let rng = Rng.create 77 in
      let n = 3000 in
      let da = Array.make n 0.0 and db = Array.make n 0.0 in
      for i = 0 to n - 1 do
        let delays = Ssta_core.Monte_carlo.sample_gate_delays sampler rng in
        let sum (p : Paths.path) =
          Array.fold_left (fun acc id -> acc +. delays.(id)) 0.0 p.Paths.nodes
        in
        da.(i) <- sum pa;
        db.(i) <- sum pb
      done;
      let sampled = Stats.correlation da db in
      check_close_abs ~tol:0.08 "analytic vs sampled correlation" sampled
        analytic
  | _ -> Alcotest.fail "need at least two near-critical paths"

let test_shared_keys () =
  let _, _, _, coeffs = correlated_context () in
  match coeffs with
  | a :: _ ->
      check_int "a path shares all its keys with itself"
        (Hashtbl.length a.Path_coeffs.coeffs)
        (Path_correlation.shared_keys a a)
  | [] -> Alcotest.fail "no paths"

let test_linearized_variance_close_to_pdf_variance () =
  let c = small_random () in
  let g = Graph.of_netlist c in
  let pl = Placement.place c in
  let layers = Layers.of_placement pl in
  let labels = Longest_path.bellman_ford g in
  let nodes = Longest_path.critical_path g labels in
  let path = { Paths.nodes; delay = Paths.recompute_delay g nodes } in
  let pc = Path_coeffs.of_path g pl layers path in
  let ctx = Ssta_core.Path_analysis.context Ssta_core.Config.default g pl in
  let a = Ssta_core.Path_analysis.analyze ctx path in
  let linearized = sqrt (Path_correlation.variance budget pc) in
  check_close ~tol:0.05 "linearized sigma ~ numeric sigma" a.Ssta_core.Path_analysis.std
    linearized

(* ---------------- Drives and sizing ---------------- *)

let test_with_drives_uniform_matches_default () =
  let c = small_random () in
  let n = Netlist.num_nodes c in
  let g1 = Graph.of_netlist c in
  let g2 = Graph.with_drives c (Array.make n 1.0) in
  (* same drive, but with_drives computes exact consumer loads instead of
     fanout * default cap; delays agree within the PO-pin modelling *)
  let l1 = Longest_path.bellman_ford g1 in
  let l2 = Longest_path.bellman_ford g2 in
  check_close ~tol:0.08 "critical delays close"
    (Longest_path.critical_delay g1 l1)
    (Longest_path.critical_delay g2 l2)

let test_with_drives_speedup () =
  let c = tiny_chain () in
  let n = Netlist.num_nodes c in
  let base = Graph.with_drives c (Array.make n 1.0) in
  let fast = Graph.with_drives c (Array.make n 3.0) in
  let d g = Longest_path.critical_delay g (Longest_path.bellman_ford g) in
  check_true "upsizing everything speeds up the chain" (d fast < d base)

let test_with_drives_loading_effect () =
  (* Upsizing ONLY a consumer slows its driver. *)
  let c = tiny_chain () in
  let n = Netlist.num_nodes c in
  let drives = Array.make n 1.0 in
  drives.(3) <- 4.0;
  let g = Graph.with_drives c drives in
  let base = Graph.with_drives c (Array.make n 1.0) in
  check_true "driver of the upsized gate got slower"
    (g.Graph.delay.(2) > base.Graph.delay.(2));
  check_true "the upsized gate itself got faster"
    (g.Graph.delay.(3) < base.Graph.delay.(3))

let test_with_drives_validation () =
  let c = tiny_chain () in
  check_raises_invalid "wrong length" (fun () ->
      ignore (Graph.with_drives c [| 1.0 |]));
  let n = Netlist.num_nodes c in
  let drives = Array.make n 1.0 in
  drives.(n - 1) <- 0.0;
  check_raises_invalid "non-positive drive" (fun () ->
      ignore (Graph.with_drives c drives))

let test_sizing_meets_target () =
  let c = small_random () in
  let config = fast_config in
  let m = Ssta_core.Methodology.run ~config c in
  let before =
    m.Ssta_core.Methodology.det_critical.Ssta_core.Path_analysis
    .confidence_point
  in
  let target = 0.9 *. before in
  let r = Ssta_core.Sizing.optimize ~config ~target c in
  check_true "target met" r.Ssta_core.Sizing.met;
  check_true "3-sigma improved"
    (r.Ssta_core.Sizing.final_sigma3 <= target +. 1e-15);
  check_true "area grew"
    (r.Ssta_core.Sizing.area > r.Ssta_core.Sizing.initial_area);
  check_true "history recorded"
    (List.length r.Ssta_core.Sizing.history = r.Ssta_core.Sizing.iterations)

let test_sizing_gives_up_gracefully () =
  let c = tiny_chain () in
  (* an impossible target: drives cap out, met = false *)
  let r =
    Ssta_core.Sizing.optimize ~config:fast_config ~max_iterations:12
      ~target:1e-15 c
  in
  check_true "not met" (not r.Ssta_core.Sizing.met);
  check_true "still improved"
    (r.Ssta_core.Sizing.final_sigma3 < r.Ssta_core.Sizing.initial_sigma3)

let test_sizing_validation () =
  let c = tiny_chain () in
  check_raises_invalid "bad target" (fun () ->
      ignore (Ssta_core.Sizing.optimize ~target:0.0 c));
  check_raises_invalid "bad step" (fun () ->
      ignore (Ssta_core.Sizing.optimize ~step_factor:1.0 ~target:1.0 c))

(* ---------------- New generators ---------------- *)

let test_decoder () =
  let c = Generators.decoder ~name:"dec3" ~bits:3 () in
  check_int "8 outputs" 8 (Array.length c.Netlist.outputs);
  for word = 0 to 7 do
    let inputs = Array.init 3 (fun i -> (word lsr i) land 1 = 1) in
    let out = Netlist.output_values c inputs in
    Array.iteri
      (fun i v -> check_true "one-hot" (v = (i = word)))
      out
  done;
  check_raises_invalid "bits too big" (fun () ->
      ignore (Generators.decoder ~name:"d" ~bits:7 ()))

let test_mux_tree () =
  let c = Generators.mux_tree ~name:"mux4" ~select_bits:2 () in
  check_int "6 inputs" 6 c.Netlist.num_inputs;
  for sel = 0 to 3 do
    for data = 0 to 15 do
      let inputs =
        Array.append
          (Array.init 4 (fun i -> (data lsr i) land 1 = 1))
          (Array.init 2 (fun i -> (sel lsr i) land 1 = 1))
      in
      let expected = (data lsr sel) land 1 = 1 in
      check_true "mux selects the right input"
        ((Netlist.output_values c inputs).(0) = expected)
    done
  done

let test_parity_chain () =
  let c = Generators.parity_chain ~name:"par5" ~width:5 () in
  check_int "deep as its width" 4 (Netlist.depth c);
  for v = 0 to 31 do
    let inputs = Array.init 5 (fun i -> (v lsr i) land 1 = 1) in
    let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inputs in
    check_true "parity"
      ((Netlist.output_values c inputs).(0) = (ones mod 2 = 1))
  done

let test_comparator () =
  let c = Generators.comparator ~name:"cmp3" ~bits:3 () in
  for a = 0 to 7 do
    for b = 0 to 7 do
      let inputs =
        Array.append
          (Array.init 3 (fun i -> (a lsr i) land 1 = 1))
          (Array.init 3 (fun i -> (b lsr i) land 1 = 1))
      in
      check_true "equality" ((Netlist.output_values c inputs).(0) = (a = b))
    done
  done

(* ---------------- Path report ---------------- *)

let test_path_report_renders () =
  let c = small_random () in
  let sta = Sta.analyze c in
  let pl = Placement.place c in
  let ctx = Ssta_core.Path_analysis.context fast_config sta.Sta.graph pl in
  let a = Ssta_core.Path_analysis.analyze ctx sta.Sta.critical_path in
  let text =
    Format.asprintf "%a" (fun fmt () ->
        Ssta_core.Report.pp_path_report fmt sta.Sta.graph a) ()
  in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
    at 0
  in
  check_true "mentions the statistical summary"
    (String.length text > 100 && contains text "statistical");
  check_true "mentions the corner" (contains text "worst-case corner")

let suite =
  ( "features",
    [ case "min labels on a chain" test_min_labels_chain;
      case "min labels below max labels" test_min_below_max;
      case "min path consistency" test_min_path_consistency;
      case "near-min enumeration" test_near_min_enumeration;
      case "fastest vs slowest path" test_near_min_vs_near_max_disjoint_ends;
      case "slack at the default clock" test_slack_default_clock;
      case "slack under a tight clock" test_slack_tight_clock;
      case "critical nodes cover the critical path"
        test_slack_critical_nodes_cover_critical_path;
      case "slack under a generous clock" test_slack_generous_clock;
      case "verilog parse + mux semantics" test_verilog_parse;
      case "verilog forward refs" test_verilog_forward_refs_and_unnamed_instances;
      case "verilog parse errors" test_verilog_errors;
      case "verilog roundtrip preserves logic" test_verilog_roundtrip_suite;
      case "verilog and bench agree" test_verilog_and_bench_agree;
      case "self correlation is 1" test_self_correlation_is_one;
      case "correlation bounds and symmetry"
        test_correlation_bounds_and_symmetry;
      case "all paths positively correlated"
        test_all_paths_positively_correlated;
      slow_case "analytic correlation matches Monte-Carlo"
        test_correlation_matches_monte_carlo;
      case "shared key counting" test_shared_keys;
      case "linearized variance ~ numeric variance"
        test_linearized_variance_close_to_pdf_variance;
      case "uniform drives ~ default graph" test_with_drives_uniform_matches_default;
      case "global upsizing speeds up" test_with_drives_speedup;
      case "upsizing a consumer loads its driver"
        test_with_drives_loading_effect;
      case "with_drives validation" test_with_drives_validation;
      case "sizing meets a feasible target" test_sizing_meets_target;
      case "sizing gives up gracefully" test_sizing_gives_up_gracefully;
      case "sizing validation" test_sizing_validation;
      case "decoder one-hot" test_decoder;
      case "mux tree selects" test_mux_tree;
      case "parity chain" test_parity_chain;
      case "comparator equality" test_comparator;
      case "path report renders" test_path_report_renders ] )
