open Ssta_circuit
open Ssta_timing
open Helpers

(* ---------------- Graph ---------------- *)

let test_graph_of_netlist () =
  let c = small_adder () in
  let g = Graph.of_netlist c in
  check_int "nodes" (Netlist.num_nodes c) (Graph.num_nodes g);
  for id = 0 to Graph.num_nodes g - 1 do
    if Graph.is_input g id then begin
      check_close ~tol:0.0 "input delay 0" 0.0 g.Graph.delay.(id);
      check_true "no electrical model" (g.Graph.electrical.(id) = None)
    end
    else begin
      check_true "positive gate delay" (g.Graph.delay.(id) > 0.0);
      check_true "has electrical model" (g.Graph.electrical.(id) <> None)
    end
  done

let test_graph_fanout_loading () =
  (* A gate with more fanout must carry a larger delay. *)
  let b = Netlist.Builder.create "fo" in
  let a = Netlist.Builder.add_input b "a" in
  let shared = Netlist.Builder.add_gate b Ssta_tech.Gate.Inv [ a ] in
  let single = Netlist.Builder.add_gate b Ssta_tech.Gate.Inv [ a ] in
  (* give [shared] three consumers, [single] one *)
  let c1 = Netlist.Builder.add_gate b Ssta_tech.Gate.Inv [ shared ] in
  let c2 = Netlist.Builder.add_gate b Ssta_tech.Gate.Inv [ shared ] in
  let c3 = Netlist.Builder.add_gate b Ssta_tech.Gate.Inv [ shared ] in
  let c4 = Netlist.Builder.add_gate b Ssta_tech.Gate.Inv [ single ] in
  List.iter (Netlist.Builder.mark_output b) [ c1; c2; c3; c4 ];
  let g = Graph.of_netlist (Netlist.Builder.finish b) in
  check_true "fanout 3 slower than fanout 1"
    (g.Graph.delay.(shared) > g.Graph.delay.(single))

let test_electrical_exn () =
  let g = Graph.of_netlist (tiny_chain ()) in
  check_raises_invalid "on input" (fun () -> ignore (Graph.electrical_exn g 0))

(* ---------------- Longest path ---------------- *)

let test_chain_labels () =
  let g = Graph.of_netlist (tiny_chain ()) in
  let labels = Longest_path.bellman_ford g in
  check_close ~tol:0.0 "input label" 0.0 labels.(0);
  (* labels strictly increase along the chain *)
  for id = 1 to Graph.num_nodes g - 1 do
    check_true "monotone labels" (labels.(id) > labels.(id - 1))
  done

let test_bellman_ford_equals_topological () =
  List.iter
    (fun c ->
      let g = Graph.of_netlist c in
      let bf = Longest_path.bellman_ford g in
      let topo = Longest_path.topological g in
      Array.iteri
        (fun i x -> check_close ~tol:1e-12 "labels agree" topo.(i) x)
        bf)
    [ tiny_chain (); small_adder (); small_random () ]

let test_critical_delay_positive () =
  let g = Graph.of_netlist (small_adder ()) in
  let labels = Longest_path.bellman_ford g in
  let d = Longest_path.critical_delay g labels in
  check_true "positive critical delay" (d > 0.0);
  let o = Longest_path.critical_output g labels in
  check_close ~tol:1e-15 "critical output realizes the delay" d labels.(o)

let test_critical_path_consistency () =
  List.iter
    (fun c ->
      let g = Graph.of_netlist c in
      let labels = Longest_path.bellman_ford g in
      let path = Longest_path.critical_path g labels in
      check_true "starts at an input" (Graph.is_input g path.(0));
      check_true "is a connected path" (Paths.is_path g path);
      check_close ~tol:1e-12 "path delay equals critical delay"
        (Longest_path.critical_delay g labels)
        (Paths.recompute_delay g path))
    [ tiny_chain (); small_adder (); small_random () ]

(* ---------------- Near-critical enumeration ---------------- *)

let enumerate_all g =
  let labels = Longest_path.bellman_ford g in
  (* a slack larger than total delay enumerates every input-output path *)
  Paths.enumerate g ~labels ~slack:(Graph.total_nominal_delay g +. 1.0)

let test_enumerate_chain () =
  let g = Graph.of_netlist (tiny_chain ()) in
  let e = enumerate_all g in
  check_int "single path in a chain" 1 (List.length e.Paths.paths)

let test_enumerate_finds_critical () =
  let g = Graph.of_netlist (small_random ()) in
  let labels = Longest_path.bellman_ford g in
  let e = Paths.enumerate g ~labels ~slack:0.0 in
  check_true "at least one path at zero slack" (List.length e.Paths.paths >= 1);
  match e.Paths.paths with
  | [] -> Alcotest.fail "no critical path"
  | first :: _ ->
      check_close ~tol:1e-9 "zero-slack paths are critical"
        e.Paths.critical_delay first.Paths.delay

let test_enumerate_slack_monotone () =
  let g = Graph.of_netlist (small_random ()) in
  let labels = Longest_path.bellman_ford g in
  let count slack =
    List.length (Paths.enumerate g ~labels ~slack).Paths.paths
  in
  let d = Longest_path.critical_delay g labels in
  let c1 = count 0.0 in
  let c2 = count (0.02 *. d) in
  let c3 = count (0.2 *. d) in
  check_true "path count grows with slack" (c1 <= c2 && c2 <= c3)

let test_enumerate_all_within_slack () =
  let g = Graph.of_netlist (small_random ()) in
  let labels = Longest_path.bellman_ford g in
  let d = Longest_path.critical_delay g labels in
  let slack = 0.1 *. d in
  let e = Paths.enumerate g ~labels ~slack in
  List.iter
    (fun (p : Paths.path) ->
      check_true "path within slack" (p.Paths.delay >= d -. slack -. 1e-12);
      check_true "valid path" (Paths.is_path g p.Paths.nodes);
      check_close ~tol:1e-12 "stored delay correct"
        (Paths.recompute_delay g p.Paths.nodes)
        p.Paths.delay)
    e.Paths.paths

let test_enumerate_sorted_descending () =
  let g = Graph.of_netlist (small_adder ()) in
  let e = enumerate_all g in
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        check_true "sorted by decreasing delay"
          (a.Paths.delay >= b.Paths.delay -. 1e-15);
        check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted e.Paths.paths

let test_enumerate_max_paths_cap () =
  let g = Graph.of_netlist (small_adder ()) in
  let labels = Longest_path.bellman_ford g in
  let full = enumerate_all g in
  let total = List.length full.Paths.paths in
  check_true "adder has multiple paths" (total > 3);
  let capped =
    Paths.enumerate ~max_paths:2 g ~labels
      ~slack:(Graph.total_nominal_delay g +. 1.0)
  in
  check_true "truncation flagged" capped.Paths.truncated;
  check_int "capped count" 2 (List.length capped.Paths.paths)

let test_enumerate_exhaustive_small () =
  (* Enumerate all paths of the 4-bit adder and cross-check the count by
     independent DFS over the DAG. *)
  let c = small_adder () in
  let g = Graph.of_netlist c in
  let e = enumerate_all g in
  let memo = Hashtbl.create 64 in
  let rec count_paths id =
    if Graph.is_input g id then 1
    else
      match Hashtbl.find_opt memo id with
      | Some n -> n
      | None ->
          let n =
            Array.fold_left
              (fun acc f -> acc + count_paths f)
              0 (Graph.fanins g id)
          in
          Hashtbl.add memo id n;
          n
  in
  let expected =
    Array.fold_left
      (fun acc o -> acc + count_paths o)
      0 c.Netlist.outputs
  in
  check_int "every input-output path enumerated" expected
    (List.length e.Paths.paths)

let test_enumerate_invalid () =
  let g = Graph.of_netlist (tiny_chain ()) in
  let labels = Longest_path.bellman_ford g in
  check_raises_invalid "negative slack" (fun () ->
      ignore (Paths.enumerate g ~labels ~slack:(-1.0)));
  check_raises_invalid "bad cap" (fun () ->
      ignore (Paths.enumerate ~max_paths:0 g ~labels ~slack:0.0))

(* ---------------- STA driver ---------------- *)

let test_sta_analyze () =
  let sta = Sta.analyze (small_random ()) in
  check_true "critical delay positive" (sta.Sta.critical_delay > 0.0);
  check_close ~tol:1e-12 "critical path delay matches"
    sta.Sta.critical_delay sta.Sta.critical_path.Paths.delay

let test_sta_worst_case_exceeds_nominal () =
  let sta = Sta.analyze (small_random ()) in
  let wc = Sta.worst_case_delay sta sta.Sta.critical_path in
  check_true "corner slower than nominal" (wc > sta.Sta.critical_delay);
  check_true "corner ratio plausible" (wc < 3.0 *. sta.Sta.critical_delay)

let test_path_gates () =
  let sta = Sta.analyze (tiny_chain ()) in
  let gates = Paths.path_gates sta.Sta.graph sta.Sta.critical_path in
  check_int "five gates on the chain" 5 (List.length gates);
  check_int "gate count helper" 5
    (Paths.path_gate_count sta.Sta.graph sta.Sta.critical_path)

let prop_critical_is_max =
  qcheck ~count:15 "no enumerated path exceeds the critical delay"
    QCheck.(int_range 1 300)
    (fun seed ->
      let c =
        Generators.random_layered ~name:"p" ~inputs:6 ~outputs:3 ~gates:50
          ~depth:7 ~seed ()
      in
      let g = Graph.of_netlist c in
      let labels = Longest_path.bellman_ford g in
      let d = Longest_path.critical_delay g labels in
      let e = Paths.enumerate g ~labels ~slack:(0.3 *. d) in
      List.for_all
        (fun (p : Paths.path) -> p.Paths.delay <= d +. 1e-12)
        e.Paths.paths)

let suite =
  ( "timing",
    [ case "graph construction" test_graph_of_netlist;
      case "fanout increases loading" test_graph_fanout_loading;
      case "electrical_exn on inputs" test_electrical_exn;
      case "chain labels monotone" test_chain_labels;
      case "bellman-ford = topological sweep"
        test_bellman_ford_equals_topological;
      case "critical delay and output" test_critical_delay_positive;
      case "critical path consistency" test_critical_path_consistency;
      case "chain has one path" test_enumerate_chain;
      case "zero slack finds critical paths" test_enumerate_finds_critical;
      case "path count monotone in slack" test_enumerate_slack_monotone;
      case "all enumerated paths within slack"
        test_enumerate_all_within_slack;
      case "enumeration sorted by delay" test_enumerate_sorted_descending;
      case "max_paths cap and truncation flag" test_enumerate_max_paths_cap;
      case "exhaustive enumeration matches DFS count"
        test_enumerate_exhaustive_small;
      case "enumeration input validation" test_enumerate_invalid;
      case "sta driver" test_sta_analyze;
      case "worst case exceeds nominal" test_sta_worst_case_exceeds_nominal;
      case "path gate extraction" test_path_gates;
      prop_critical_is_max ] )
