open Ssta_circuit
open Helpers

(* ---------------- .bench ---------------- *)

let sample_bench =
  {|# small test circuit
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G10)
OUTPUT(G11)
G8 = NAND(G1, G2)
G9 = NOT(G3)
G10 = NOR(G8, G9)
G11 = XOR(G8, G3)
|}

let test_parse_basic () =
  let c = Bench_format.parse_string ~name:"t" sample_bench in
  check_int "inputs" 3 c.Netlist.num_inputs;
  check_int "gates" 4 (Netlist.num_gates c);
  check_int "outputs" 2 (Array.length c.Netlist.outputs)

let test_parse_forward_reference () =
  (* G5 referenced before its definition. *)
  let text = "INPUT(A)\nOUTPUT(Y)\nY = NOT(G5)\nG5 = NOT(A)\n" in
  let c = Bench_format.parse_string text in
  check_int "two gates" 2 (Netlist.num_gates c);
  (* logic: Y = NOT(NOT(A)) = A *)
  check_true "semantics" ((Netlist.output_values c [| true |]).(0) = true)

let test_parse_comments_and_blanks () =
  let text = "\n# header\nINPUT(A)  # trailing comment\n\nOUTPUT(B)\nB = BUF(A)\n" in
  let c = Bench_format.parse_string text in
  check_int "one gate" 1 (Netlist.num_gates c)

let test_parse_errors () =
  let expect_error text =
    match Bench_format.parse_string text with
    | exception Bench_format.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error for %S" text
  in
  expect_error "INPUT(A)\nOUTPUT(B)\nB = FROB(A)\n";
  expect_error "INPUT(A)\nOUTPUT(B)\nB = NOT(C)\n";
  (* undefined *)
  expect_error "INPUT(A)\nOUTPUT(B)\nB = NOT(B)\n";
  (* self-cycle *)
  expect_error "INPUT(A)\nOUTPUT(B)\nB = NOT(A\n";
  (* unbalanced *)
  expect_error "INPUT(A)\nOUTPUT(B)\nB = NOT(A)\nB = NOT(A)\n";
  (* double definition *)
  expect_error "INPUT(A)\nWIBBLE(A)\nOUTPUT(A)\nX = NOT(A)\n"

let test_roundtrip_preserves_structure () =
  let c = small_adder () in
  let c' = Bench_format.parse_string ~name:"rca4" (Bench_format.to_string c) in
  check_int "node count" (Netlist.num_nodes c) (Netlist.num_nodes c');
  check_int "output count"
    (Array.length c.Netlist.outputs)
    (Array.length c'.Netlist.outputs);
  (* logic equivalence on a few vectors *)
  let rng = Ssta_prob.Rng.create 4 in
  for _ = 1 to 50 do
    let inputs =
      Array.init c.Netlist.num_inputs (fun _ -> Ssta_prob.Rng.float rng < 0.5)
    in
    check_true "same outputs"
      (Netlist.output_values c inputs = Netlist.output_values c' inputs)
  done

let test_file_roundtrip () =
  let c = tiny_chain () in
  let path = Filename.temp_file "ssta" ".bench" in
  Bench_format.write_file path c;
  let c' = Bench_format.parse_file path in
  Sys.remove path;
  check_int "nodes preserved" (Netlist.num_nodes c) (Netlist.num_nodes c')

let prop_roundtrip_random_circuits =
  qcheck ~count:20 ".bench roundtrip on random circuits"
    QCheck.(int_range 1 500)
    (fun seed ->
      let c =
        Generators.random_layered ~name:"r" ~inputs:5 ~outputs:3 ~gates:30
          ~depth:5 ~seed ()
      in
      let c' = Bench_format.parse_string ~name:"r" (Bench_format.to_string c) in
      Netlist.num_nodes c = Netlist.num_nodes c'
      && Array.length c.Netlist.outputs = Array.length c'.Netlist.outputs)

(* ---------------- DEF ---------------- *)

let test_def_roundtrip () =
  let c = small_adder () in
  let pl = Placement.place c in
  let def = Def_format.of_placement ~design:"rca4" c pl in
  let def' = Def_format.parse_string (Def_format.to_string def) in
  check_true "design name" (String.equal def'.Def_format.design "rca4");
  check_int "component count"
    (List.length def.Def_format.components)
    (List.length def'.Def_format.components);
  check_close ~tol:1e-9 "die width" def.Def_format.die_width
    def'.Def_format.die_width;
  let pl' = Def_format.placement_of def' c in
  (* every gate's coordinates survive the round trip *)
  Array.iter
    (fun (g : Netlist.gate) ->
      let x, y = Placement.coord pl g.Netlist.id in
      let x', y' = Placement.coord pl' g.Netlist.id in
      check_close_abs ~tol:1e-2 "x" x x';
      check_close_abs ~tol:1e-2 "y" y y')
    c.Netlist.gates

let test_def_parse_error () =
  (match Def_format.parse_string "COMPONENTS 1 ;\nEND COMPONENTS\n" with
  | exception Def_format.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error on missing DESIGN")

let test_def_component_without_placed () =
  let text = "DESIGN x ;\nCOMPONENTS 1 ;\n- g1 INV ;\nEND COMPONENTS\n" in
  match Def_format.parse_string text with
  | exception Def_format.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error on unplaced component"

let test_def_mismatch_rejected () =
  let c = small_adder () in
  let other = tiny_chain () in
  let def =
    Def_format.of_placement ~design:"rca4" c (Placement.place c)
  in
  check_raises_invalid "wrong netlist for DEF" (fun () ->
      ignore (Def_format.placement_of def other))

let test_def_units () =
  let c = tiny_chain () in
  let pl = Placement.place c in
  let def = Def_format.of_placement ~design:"t" c pl in
  check_int "microns convention" 1000 def.Def_format.units_per_micron

(* ---------------- Placement ---------------- *)

let test_place_levelized () =
  let c = tiny_chain () in
  let pl = Placement.place c in
  check_int "coords for every node" (Netlist.num_nodes c)
    (Array.length pl.Placement.coords);
  (* chain: each gate one level deeper -> strictly increasing x *)
  let x_of id = fst (Placement.coord pl id) in
  check_true "x grows along the chain" (x_of 1 < x_of 2 && x_of 2 < x_of 3)

let test_place_strategies_cover_die () =
  let c = small_random () in
  List.iter
    (fun strategy ->
      let pl = Placement.place ~strategy c in
      Array.iter
        (fun (x, y) ->
          check_true "inside die"
            (x >= 0.0 && y >= 0.0 && x <= pl.Placement.die_width
            && y <= pl.Placement.die_height))
        pl.Placement.coords)
    [ Placement.Levelized; Placement.Row_major; Placement.Scattered 5 ]

let test_place_invalid_pitch () =
  check_raises_invalid "pitch<=0" (fun () ->
      ignore (Placement.place ~pitch:0.0 (tiny_chain ())))

let test_with_coords_validation () =
  check_raises_invalid "outside die" (fun () ->
      ignore
        (Placement.with_coords ~die_width:10.0 ~die_height:10.0
           [| (5.0, 20.0) |]))

(* ---------------- SPEF ---------------- *)

let test_spef_roundtrip () =
  let c = small_adder () in
  let pl = Placement.place c in
  let spef = Spef.of_placement ~design:"rca4" c pl in
  let spef' = Spef.parse_string (Spef.to_string spef) in
  check_true "design preserved" (String.equal spef'.Spef.design "rca4");
  check_int "one record per gate" (Netlist.num_gates c)
    (List.length spef'.Spef.caps);
  List.iter2
    (fun (n, cap) (n', cap') ->
      check_true "net name" (String.equal n n');
      check_close_abs ~tol:1e-18 "capacitance" cap cap')
    spef.Spef.caps spef'.Spef.caps

let test_spef_apply_and_graph () =
  let c = small_adder () in
  let pl = Placement.place c in
  let spef = Spef.of_placement ~design:"rca4" c pl in
  let caps = Spef.apply spef c in
  check_int "cap per node" (Netlist.num_nodes c) (Array.length caps);
  (* SPEF-annotated timing equals the placement-aware construction *)
  let g_spef = Ssta_timing.Graph.with_wire_caps c caps in
  let g_placed = Ssta_timing.Graph.of_placed c pl in
  Array.iteri
    (fun id d ->
      check_close ~tol:1e-9 "delays agree" g_placed.Ssta_timing.Graph.delay.(id) d)
    g_spef.Ssta_timing.Graph.delay

let test_spef_errors () =
  (match Spef.parse_string "*D_NET n1 0.5\n" with
  | exception Spef.Parse_error _ -> ()
  | _ -> Alcotest.fail "missing *DESIGN accepted");
  (match Spef.parse_string "*DESIGN x\n*D_NET n1 frog\n" with
  | exception Spef.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad value accepted");
  (match Spef.parse_string "*DESIGN x\n*D_NET n1 -0.5\n" with
  | exception Spef.Parse_error _ -> ()
  | _ -> Alcotest.fail "negative cap accepted")

let test_spef_mismatch () =
  let c = small_adder () in
  let other = tiny_chain () in
  let spef =
    Spef.of_placement ~design:"rca4" c (Placement.place c)
  in
  check_raises_invalid "wrong netlist" (fun () ->
      ignore (Spef.apply spef other))

let suite =
  ( "formats",
    [ case "bench parse basic" test_parse_basic;
      case "bench forward references" test_parse_forward_reference;
      case "bench comments and blanks" test_parse_comments_and_blanks;
      case "bench parse errors" test_parse_errors;
      case "bench roundtrip preserves logic" test_roundtrip_preserves_structure;
      case "bench file roundtrip" test_file_roundtrip;
      prop_roundtrip_random_circuits;
      case "def roundtrip preserves coordinates" test_def_roundtrip;
      case "def requires DESIGN" test_def_parse_error;
      case "def requires PLACED" test_def_component_without_placed;
      case "def/netlist mismatch rejected" test_def_mismatch_rejected;
      case "def units convention" test_def_units;
      case "levelized placement" test_place_levelized;
      case "all strategies stay on the die" test_place_strategies_cover_die;
      case "placement rejects bad pitch" test_place_invalid_pitch;
      case "with_coords validates" test_with_coords_validation;
      case "spef roundtrip" test_spef_roundtrip;
      case "spef apply = placement-aware graph" test_spef_apply_and_graph;
      case "spef parse errors" test_spef_errors;
      case "spef/netlist mismatch rejected" test_spef_mismatch ] )
