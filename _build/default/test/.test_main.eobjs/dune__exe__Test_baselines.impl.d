test/test_baselines.ml: Alcotest Array Block_based Config Float Graph Helpers List Monte_carlo Path_analysis Paths Placement Quality_sweep Rng Ssta_circuit Ssta_core Ssta_prob Ssta_timing Sta Stats
