test/test_erf.ml: Erf Float Helpers List Printf QCheck Ssta_prob
