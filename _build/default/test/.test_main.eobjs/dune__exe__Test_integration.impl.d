test/test_integration.ml: Alcotest Array Bench_format Config Def_format Filename Helpers Iscas85 Methodology Path_analysis Printf Ranking Ssta_circuit Ssta_core Ssta_timing Sys
