test/test_combine.ml: Combine Dist Float Helpers Pdf QCheck Ssta_prob
