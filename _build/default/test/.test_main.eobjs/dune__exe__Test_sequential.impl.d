test/test_sequential.ml: Alcotest Array Bench_format Clocking Config Generators Helpers List Netlist Printf Rng Sequential Ssta_circuit Ssta_core Ssta_prob Ssta_timing
