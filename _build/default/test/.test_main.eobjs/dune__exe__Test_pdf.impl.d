test/test_pdf.ml: Array Dist Float Helpers List Pdf Printf QCheck Rng Ssta_prob Stats
