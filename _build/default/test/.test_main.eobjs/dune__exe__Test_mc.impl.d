test/test_mc.ml: Dist Helpers Mc Pdf Rng Ssta_prob Stats
