test/test_timing.ml: Alcotest Array Generators Graph Hashtbl Helpers List Longest_path Netlist Paths QCheck Ssta_circuit Ssta_tech Ssta_timing Sta
