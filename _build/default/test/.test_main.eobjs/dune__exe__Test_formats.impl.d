test/test_formats.ml: Alcotest Array Bench_format Def_format Filename Generators Helpers List Netlist Placement QCheck Spef Ssta_circuit Ssta_prob Ssta_timing String Sys
