test/test_generators.ml: Alcotest Array Bench_format Generators Helpers List Netlist QCheck Ssta_circuit Ssta_prob Ssta_tech
