test/helpers.ml: Alcotest Config Float QCheck QCheck_alcotest Ssta_circuit Ssta_core
