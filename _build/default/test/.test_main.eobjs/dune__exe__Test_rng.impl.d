test/test_rng.ml: Array Float Helpers Int64 Printf QCheck Rng Ssta_prob Stats
