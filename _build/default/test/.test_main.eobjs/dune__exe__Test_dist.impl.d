test/test_dist.ml: Dist Float Helpers Pdf QCheck Ssta_prob
