test/test_netlist.ml: Array Gate Generators Helpers List Netlist QCheck Ssta_circuit Ssta_tech String
