test/test_tech.ml: Alcotest Convexity Corner Derivatives Elmore Gate Helpers List Params Printf Sensitivity Ssta_tech
