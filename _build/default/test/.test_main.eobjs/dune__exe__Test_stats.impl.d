test/test_stats.ml: Array Dist Float Helpers QCheck Rng Ssta_prob Stats
