test/test_iscas85.ml: Alcotest Array Bench_format Float Helpers Int64 Iscas85 List Netlist Placement Ssta_circuit Ssta_prob Ssta_tech
