test/test_correlation.ml: Array Budget Float Generators Graph Hashtbl Helpers Layers List Longest_path Netlist Path_coeffs Paths Placement QCheck Ssta_circuit Ssta_correlation Ssta_tech Ssta_timing
