open Ssta_circuit
open Ssta_timing
open Ssta_prob
open Ssta_core
open Helpers

(* ---------------- Config ---------------- *)

let test_default_config_is_the_papers () =
  let c = Config.default in
  check_int "Qintra" 100 c.Config.quality_intra;
  check_int "Qinter" 50 c.Config.quality_inter;
  check_close ~tol:0.0 "C" 0.05 c.Config.confidence;
  check_int "5 layers" 5 (Config.num_layers c);
  check_close ~tol:0.0 "6-sigma truncation" 6.0 c.Config.truncation;
  check_close ~tol:0.0 "3-sigma ranking point" 3.0 c.Config.confidence_sigma;
  check_true "valid" (Config.validate c = Ok ())

let test_config_updates () =
  let c = Config.with_quality Config.default ~intra:30 ~inter:10 in
  check_int "intra updated" 30 c.Config.quality_intra;
  let c = Config.with_confidence c 0.7 in
  check_close ~tol:0.0 "confidence updated" 0.7 c.Config.confidence;
  let c = Config.with_budget_split c ~inter_fraction:0.5 in
  check_close ~tol:1e-12 "split applied" 0.5
    (Ssta_correlation.Budget.inter_fraction c.Config.budget);
  check_true "still valid" (Config.validate c = Ok ())

let test_config_validation () =
  let bad = { Config.default with Config.quality_intra = 1 } in
  check_true "rejects Q=1" (Config.validate bad <> Ok ());
  let bad = { Config.default with Config.confidence = -0.5 } in
  check_true "rejects negative C" (Config.validate bad <> Ok ());
  let bad =
    { Config.default with
      Config.budget = Ssta_correlation.Budget.equal ~layers:3 }
  in
  check_true "rejects budget/layer mismatch" (Config.validate bad <> Ok ())

(* ---------------- Intra ---------------- *)

let analysis_context ?(config = fast_config) circuit =
  let sta = Sta.analyze circuit in
  let pl = Placement.place circuit in
  let ctx = Path_analysis.context config sta.Sta.graph pl in
  (sta, pl, ctx)

let test_intra_pdf_zero_mean_gaussian () =
  let circuit = small_random () in
  let sta = Sta.analyze circuit in
  let pl = Placement.place circuit in
  let layers = Config.layers_for fast_config pl in
  let pc =
    Ssta_correlation.Path_coeffs.of_path sta.Sta.graph pl layers
      sta.Sta.critical_path
  in
  let p = Intra.pdf fast_config pc in
  check_close_abs ~tol:1e-15 "zero mean" 0.0 (Pdf.mean p);
  check_close ~tol:2e-2 "std = sqrt of Eq.14 variance"
    (Intra.sigma fast_config pc)
    (Pdf.std p);
  check_int "discretized at Qintra" fast_config.Config.quality_intra
    (Pdf.size p)

let test_intra_pdf_of_zero_variance () =
  let p = Intra.pdf_of_variance fast_config 0.0 in
  check_close_abs ~tol:1e-12 "point mass at 0" 0.0 (Pdf.mean p);
  check_raises_invalid "negative variance" (fun () ->
      ignore (Intra.pdf_of_variance fast_config (-1.0)))

(* ---------------- Inter ---------------- *)

let test_inter_pdf_properties () =
  let circuit = small_random () in
  let sta, pl, _ = analysis_context circuit in
  let layers = Config.layers_for fast_config pl in
  let pc =
    Ssta_correlation.Path_coeffs.of_path sta.Sta.graph pl layers
      sta.Sta.critical_path
  in
  let tables = Inter.tables fast_config in
  let p = Inter.of_coeffs tables pc in
  check_close ~tol:1e-9 "mass 1" 1.0 (Pdf.total_mass p);
  (* inter mean close to the nominal path delay (small Jensen shift) *)
  let nominal = pc.Ssta_correlation.Path_coeffs.nominal_delay in
  let shift = Inter.mean_is_shifted p ~nominal in
  check_true "mean near nominal" (Float.abs shift < 0.01 *. nominal);
  check_true "positive spread" (Pdf.std p > 0.0)

let test_inter_mean_shift_is_positive () =
  (* The delay is convex in V_dd/V_t around nominal, so the expected delay
     exceeds the delay of the expected values — the paper's "mean is not
     the nominal" observation, with a sign we can predict. *)
  let circuit = small_adder () in
  let sta, pl, _ = analysis_context circuit in
  let layers = Config.layers_for Config.default pl in
  let pc =
    Ssta_correlation.Path_coeffs.of_path sta.Sta.graph pl layers
      sta.Sta.critical_path
  in
  let tables = Inter.tables Config.default in
  let p = Inter.of_coeffs tables pc in
  let shift =
    Inter.mean_is_shifted p
      ~nominal:pc.Ssta_correlation.Path_coeffs.nominal_delay
  in
  check_true "positive convexity shift" (shift > 0.0)

let test_inter_scales_with_alpha () =
  let tables = Inter.tables fast_config in
  let small = Inter.pdf tables ~alpha_sum:1e-6 ~beta_sum:1e-6 in
  let large = Inter.pdf tables ~alpha_sum:2e-6 ~beta_sum:2e-6 in
  check_close ~tol:2e-2 "doubling coefficients doubles the mean"
    (2.0 *. Pdf.mean small) (Pdf.mean large);
  check_raises_invalid "rejects non-positive sums" (fun () ->
      ignore (Inter.pdf tables ~alpha_sum:0.0 ~beta_sum:1.0))

let test_inter_pure_intra_budget_degenerates () =
  let config = Config.with_budget_split fast_config ~inter_fraction:0.0 in
  let tables = Inter.tables config in
  let p = Inter.pdf tables ~alpha_sum:1e-6 ~beta_sum:1e-6 in
  check_true "no inter variability -> (near) point mass"
    (Pdf.std p < 1e-4 *. Pdf.mean p)

(* ---------------- Path_analysis ---------------- *)

let test_path_analysis_consistency () =
  let circuit = small_random () in
  let sta, _, ctx = analysis_context circuit in
  let a = Path_analysis.analyze ctx sta.Sta.critical_path in
  check_close ~tol:1e-12 "det delay = path delay"
    sta.Sta.critical_path.Paths.delay a.Path_analysis.det_delay;
  check_true "mean close to nominal"
    (Float.abs (a.Path_analysis.mean -. a.Path_analysis.det_delay)
    < 0.02 *. a.Path_analysis.det_delay);
  (* total variance ~ inter^2 + intra^2 (independent parts) *)
  let expect =
    sqrt
      ((a.Path_analysis.inter_sigma ** 2.0)
      +. (a.Path_analysis.intra_sigma ** 2.0))
  in
  check_close ~tol:5e-2 "variances add" expect a.Path_analysis.std;
  check_close ~tol:1e-12 "confidence point definition"
    (a.Path_analysis.mean +. (3.0 *. a.Path_analysis.std))
    a.Path_analysis.confidence_point;
  check_true "worst case above 3-sigma"
    (a.Path_analysis.worst_case > a.Path_analysis.confidence_point);
  let over = Path_analysis.overestimation_pct a in
  check_true "overestimation in the paper's ballpark"
    (over > 20.0 && over < 120.0)

let test_longer_path_larger_sigma () =
  let short = Generators.chain ~name:"s" ~length:3 () in
  let long_ = Generators.chain ~name:"l" ~length:30 () in
  let sigma circuit =
    let sta, _, ctx = analysis_context circuit in
    (Path_analysis.analyze ctx sta.Sta.critical_path).Path_analysis.std
  in
  check_true "longer path has larger absolute sigma"
    (sigma long_ > sigma short)

(* ---------------- Ranking ---------------- *)

let fake_analysis ctx path = Path_analysis.analyze ctx path

let test_ranking_orders_by_confidence_point () =
  let circuit = small_adder () in
  let sta, _, ctx = analysis_context circuit in
  let e =
    Sta.near_critical sta ~slack:(0.5 *. sta.Sta.critical_delay)
  in
  let analyses = List.map (fake_analysis ctx) e.Paths.paths in
  let ranked = Ranking.rank analyses in
  check_int "all paths ranked" (List.length analyses) (Array.length ranked);
  Array.iteri
    (fun i r ->
      check_int "prob_rank is the array position" (i + 1) r.Ranking.prob_rank;
      if i > 0 then
        check_true "descending confidence points"
          (ranked.(i - 1).Ranking.analysis.Path_analysis.confidence_point
           >= r.Ranking.analysis.Path_analysis.confidence_point -. 1e-15))
    ranked;
  (* det ranks are a permutation of 1..n *)
  let det = Array.map (fun r -> r.Ranking.det_rank) ranked in
  Array.sort compare det;
  Array.iteri (fun i d -> check_int "det rank permutation" (i + 1) d) det

let test_ranking_helpers () =
  let circuit = small_adder () in
  let sta, _, ctx = analysis_context circuit in
  let e = Sta.near_critical sta ~slack:(0.3 *. sta.Sta.critical_delay) in
  let ranked = Ranking.rank (List.map (fake_analysis ctx) e.Paths.paths) in
  let pc = Ranking.probabilistic_critical ranked in
  check_int "critical has rank 1" 1 pc.Ranking.prob_rank;
  check_int "det_rank helper" pc.Ranking.det_rank
    (Ranking.det_rank_of_prob_critical ranked);
  let pairs = Ranking.rank_pairs ~first:3 ranked in
  check_int "first 3 pairs" (Int.min 3 (Array.length ranked))
    (Array.length pairs);
  let rho = Ranking.rank_correlation ranked in
  check_true "correlation in [-1,1]" (rho >= -1.0 && rho <= 1.0);
  check_true "max change bounded"
    (Ranking.max_rank_change ranked < Array.length ranked);
  check_raises_invalid "empty ranking" (fun () ->
      ignore (Ranking.probabilistic_critical [||]))

(* ---------------- Methodology ---------------- *)

let test_methodology_end_to_end () =
  let circuit = small_random () in
  let m = Methodology.run ~config:fast_config circuit in
  check_true "sigma_c positive" (m.Methodology.sigma_c > 0.0);
  check_close ~tol:1e-12 "slack = C * sigma_C"
    (fast_config.Config.confidence *. m.Methodology.sigma_c)
    m.Methodology.slack;
  check_true "at least the critical path"
    (Methodology.num_critical_paths m >= 1);
  check_true "not truncated on a small circuit" (not m.Methodology.truncated);
  (* the deterministic critical path is among the analyzed paths *)
  let det_nodes = m.Methodology.det_critical.Path_analysis.path.Paths.nodes in
  check_true "det critical analyzed"
    (Array.exists
       (fun r -> r.Ranking.analysis.Path_analysis.path.Paths.nodes = det_nodes)
       m.Methodology.ranked);
  let over = Methodology.overestimation_pct m in
  check_true "overestimation plausible" (over > 10.0 && over < 150.0);
  check_true "runtime recorded" (m.Methodology.runtime_s >= 0.0)

let test_methodology_find_rank () =
  let m = Methodology.run ~config:fast_config (small_adder ()) in
  let r1 = Methodology.find_rank m ~prob_rank:1 in
  check_int "rank 1" 1 r1.Ranking.prob_rank;
  check_raises_invalid "rank 0" (fun () ->
      ignore (Methodology.find_rank m ~prob_rank:0));
  check_raises_invalid "rank beyond" (fun () ->
      ignore
        (Methodology.find_rank m
           ~prob_rank:(Methodology.num_critical_paths m + 1)))

let test_methodology_confidence_widens_the_set () =
  let circuit = small_random () in
  let n_of c =
    let config = Config.with_confidence fast_config c in
    Methodology.num_critical_paths (Methodology.run ~config circuit)
  in
  check_true "more confidence, no fewer paths" (n_of 2.0 >= n_of 0.05)

let test_methodology_respects_max_paths () =
  let circuit = small_adder () in
  let config =
    { (Config.with_confidence fast_config 50.0) with Config.max_paths = 3 }
  in
  let m = Methodology.run ~config circuit in
  check_true "truncated" m.Methodology.truncated;
  check_int "capped" 3 (Methodology.num_critical_paths m)

(* ---------------- Report ---------------- *)

let test_report_rows () =
  let m = Methodology.run ~config:fast_config (small_random ()) in
  let row = Report.table2_row m in
  check_true "name" (String.equal row.Report.name "rand");
  check_int "paths" (Methodology.num_critical_paths m)
    row.Report.num_critical_paths;
  check_true "3sig above mean"
    (row.Report.prob_sigma3_ps > row.Report.prob_mean_ps);
  let t3 = Report.table3_row ~scenario:"s" ~inter_fraction:0.5 m in
  check_true "table3 sigma positive" (t3.Report.total_sigma_ps > 0.0)

let test_report_csv_shapes () =
  let p = Dist.truncated_gaussian ~n:10 ~mu:1e-10 ~sigma:1e-11 () in
  let csv = Report.pdf_csv p in
  check_int "pdf csv lines" 11
    (List.length (String.split_on_char '\n' (String.trim csv)));
  let csv2 = Report.pdfs_csv [ ("a", p); ("b", p) ] in
  check_int "pdfs csv lines" 21
    (List.length (String.split_on_char '\n' (String.trim csv2)));
  let csv3 = Report.rank_scatter_csv [| (1, 2); (2, 1) |] in
  check_true "scatter header"
    (String.length csv3 > 0 && String.sub csv3 0 8 = "det_rank")

let suite =
  ( "core",
    [ case "default config is the paper's" test_default_config_is_the_papers;
      case "config updates" test_config_updates;
      case "config validation" test_config_validation;
      case "intra PDF: zero-mean gaussian at Qintra"
        test_intra_pdf_zero_mean_gaussian;
      case "intra PDF of zero variance" test_intra_pdf_of_zero_variance;
      case "inter PDF properties" test_inter_pdf_properties;
      case "inter mean shift is positive (convexity)"
        test_inter_mean_shift_is_positive;
      case "inter PDF scales with coefficient sums" test_inter_scales_with_alpha;
      case "inter PDF degenerates without inter variance"
        test_inter_pure_intra_budget_degenerates;
      case "path analysis consistency" test_path_analysis_consistency;
      case "longer paths have larger sigma" test_longer_path_larger_sigma;
      case "ranking orders by confidence point"
        test_ranking_orders_by_confidence_point;
      case "ranking helpers" test_ranking_helpers;
      case "methodology end to end" test_methodology_end_to_end;
      case "methodology find_rank" test_methodology_find_rank;
      case "confidence widens the near-critical set"
        test_methodology_confidence_widens_the_set;
      case "max_paths cap respected" test_methodology_respects_max_paths;
      case "report rows" test_report_rows;
      case "report CSV shapes" test_report_csv_shapes ] )
