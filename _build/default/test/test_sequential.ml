(* Sequential circuits: ISCAS89-style DFF parsing, cycle-accurate
   simulation, the pipelining transform and clock-period analysis. *)

open Ssta_circuit
open Ssta_prob
open Ssta_core
open Helpers

let s27_text =
  {|INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOT(G5)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
|}

let s27 () = Sequential.parse_bench ~name:"s27" s27_text

(* ---------------- parsing ---------------- *)

let test_parse_s27 () =
  let s = s27 () in
  check_int "real inputs" 4 s.Sequential.real_inputs;
  check_int "registers" 3 (Sequential.num_registers s);
  check_int "core gates" 10 (Netlist.num_gates s.Sequential.core);
  check_int "real outputs" 1 (Array.length s.Sequential.real_output_ids);
  (* register Q pins are the trailing core PIs *)
  Array.iter
    (fun (r : Sequential.register) ->
      check_true "q is a pseudo input" (Sequential.is_register_q s r.Sequential.q);
      check_true "d is tracked" (Sequential.is_register_d s r.Sequential.d))
    s.Sequential.registers

let test_parse_rejections () =
  let expect text =
    match Sequential.parse_bench text with
    | exception Bench_format.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error for %S" text
  in
  (* doubly driven: DFF target also a gate target *)
  expect "INPUT(A)\nOUTPUT(B)\nQ = DFF(A)\nQ = NOT(A)\nB = NOT(Q)\n";
  (* DFF referencing an unknown signal *)
  expect "INPUT(A)\nOUTPUT(B)\nQ = DFF(ZZZ)\nB = NOT(Q)\n"

let test_bench_roundtrip () =
  let s = s27 () in
  let rt = Sequential.parse_bench ~name:"s27" (Sequential.to_bench s) in
  check_int "registers preserved" (Sequential.num_registers s)
    (Sequential.num_registers rt);
  check_int "gates preserved"
    (Netlist.num_gates s.Sequential.core)
    (Netlist.num_gates rt.Sequential.core);
  (* behavioural equivalence over a few cycles *)
  let rng = Rng.create 11 in
  let st_a = ref (Array.make 3 false) and st_b = ref (Array.make 3 false) in
  for _ = 1 to 40 do
    let inputs = Array.init 4 (fun _ -> Rng.float rng < 0.5) in
    let oa, na = Sequential.simulate s ~state:!st_a ~inputs in
    let ob, nb = Sequential.simulate rt ~state:!st_b ~inputs in
    check_true "same outputs" (oa = ob);
    check_true "same next state" (na = nb);
    st_a := na;
    st_b := nb
  done

let test_of_netlist_wraps () =
  let c = small_adder () in
  let s = Sequential.of_netlist c in
  check_int "no registers" 0 (Sequential.num_registers s);
  check_int "outputs preserved"
    (Array.length c.Netlist.outputs)
    (Array.length s.Sequential.real_output_ids)

let test_simulate_validation () =
  let s = s27 () in
  check_raises_invalid "state width" (fun () ->
      ignore (Sequential.simulate s ~state:[| true |] ~inputs:(Array.make 4 false)));
  check_raises_invalid "input width" (fun () ->
      ignore
        (Sequential.simulate s ~state:(Array.make 3 false) ~inputs:[| true |]))

(* ---------------- pipelining ---------------- *)

let to_bits v n = Array.init n (fun i -> (v lsr i) land 1 = 1)

let of_bits a =
  Array.to_list a
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let run_pipelined p ~stages ~inputs =
  let state = ref (Array.make (Sequential.num_registers p) false) in
  let out = ref [||] in
  for _ = 1 to stages do
    let o, st = Sequential.simulate p ~state:!state ~inputs in
    out := o;
    state := st
  done;
  !out

let test_pipeline_preserves_logic () =
  let comb = Generators.array_multiplier ~name:"m4" ~bits:4 () in
  List.iter
    (fun stages ->
      let p = Sequential.pipeline ~stages comb in
      let rng = Rng.create (100 + stages) in
      for _ = 1 to 40 do
        let a = Rng.int rng 16 and b = Rng.int rng 16 in
        let inputs = Array.append (to_bits a 4) (to_bits b 4) in
        let out = run_pipelined p ~stages ~inputs in
        check_int
          (Printf.sprintf "%d-stage pipeline computes %d*%d" stages a b)
          (a * b) (of_bits out)
      done)
    [ 2; 3; 5 ]

let test_pipeline_reduces_depth () =
  let comb = Generators.array_multiplier ~name:"m4" ~bits:4 () in
  let d1 = Netlist.depth comb in
  let p = Sequential.pipeline ~stages:4 comb in
  let d4 = Netlist.depth p.Sequential.core in
  check_true "core depth shrinks" (d4 < d1);
  check_true "roughly by the stage count" (d4 <= (d1 / 3) + 2);
  check_true "registers inserted" (Sequential.num_registers p > 0)

let test_pipeline_single_stage_identity () =
  let comb = small_adder () in
  let p = Sequential.pipeline ~stages:1 comb in
  check_int "no registers" 0 (Sequential.num_registers p);
  check_int "same gates" (Netlist.num_gates comb)
    (Netlist.num_gates p.Sequential.core)

let test_pipeline_validation () =
  check_raises_invalid "stages >= 1" (fun () ->
      ignore (Sequential.pipeline ~stages:0 (small_adder ())))

(* ---------------- clocking ---------------- *)

let test_clocking_combinational () =
  let comb = small_random () in
  let s = Sequential.of_netlist comb in
  let c = Clocking.analyze ~config:fast_config s in
  let sta = Ssta_timing.Sta.analyze comb in
  check_close ~tol:1e-9 "det clock = critical + setup"
    (sta.Ssta_timing.Sta.critical_delay +. 5e-12)
    c.Clocking.det_min_clock;
  check_true "stat clock above det"
    (c.Clocking.stat_min_clock > c.Clocking.det_min_clock);
  check_true "worst-case clock above stat"
    (c.Clocking.worst_case_clock > c.Clocking.stat_min_clock);
  check_true "no registers: infinite reg-to-reg"
    (c.Clocking.fastest_reg_to_reg = infinity)

let test_clocking_pipeline_speedup () =
  let comb = Generators.array_multiplier ~name:"m4" ~bits:4 () in
  let config = { fast_config with Config.max_paths = 200 } in
  let base = Clocking.analyze ~config (Sequential.of_netlist comb) in
  let p2 = Clocking.analyze ~config (Sequential.pipeline ~stages:2 comb) in
  let sp = Clocking.speedup ~baseline:base p2 in
  check_true
    (Printf.sprintf "2 stages speed up 1.4-2.2x (got %.2f)" sp)
    (sp > 1.4 && sp < 2.2)

let test_hold_fix () =
  let comb = Generators.array_multiplier ~name:"m4" ~bits:4 () in
  let config = { fast_config with Config.max_paths = 100 } in
  let p = Sequential.pipeline ~stages:4 comb in
  let before = Clocking.analyze ~config p in
  check_true "register chains violate hold" (before.Clocking.hold_margin < 0.0);
  let fixed, buffers = Clocking.fix_hold p in
  check_true "buffers inserted" (buffers > 0);
  let after = Clocking.analyze ~config fixed in
  check_true "hold repaired" (after.Clocking.hold_margin >= 0.0);
  (* logic unchanged *)
  let rng = Rng.create 9 in
  for _ = 1 to 30 do
    let a = Rng.int rng 16 and b = Rng.int rng 16 in
    let inputs = Array.append (to_bits a 4) (to_bits b 4) in
    check_int "buffered pipeline still multiplies" (a * b)
      (of_bits (run_pipelined fixed ~stages:4 ~inputs))
  done

let test_clocking_statistical_vs_corner () =
  (* The headline applies to sequential sign-off too: the corner clock
     overestimates the 3-sigma clock by tens of percent. *)
  let comb = small_random () in
  let c = Clocking.analyze ~config:fast_config (Sequential.of_netlist comb) in
  let over =
    (c.Clocking.worst_case_clock -. c.Clocking.stat_min_clock)
    /. c.Clocking.stat_min_clock
  in
  check_true
    (Printf.sprintf "corner clock overdesign %.2f in [0.2, 1.0]" over)
    (over > 0.2 && over < 1.0)

let suite =
  ( "sequential",
    [ case "parse s27" test_parse_s27;
      case "parse rejections" test_parse_rejections;
      case "bench roundtrip (with DFF) is behaviourally equal"
        test_bench_roundtrip;
      case "wrap a combinational netlist" test_of_netlist_wraps;
      case "simulate validation" test_simulate_validation;
      slow_case "pipelining preserves logic" test_pipeline_preserves_logic;
      case "pipelining reduces core depth" test_pipeline_reduces_depth;
      case "single stage is the identity" test_pipeline_single_stage_identity;
      case "pipeline validation" test_pipeline_validation;
      case "clocking of a combinational circuit" test_clocking_combinational;
      case "pipeline speedup" test_clocking_pipeline_speedup;
      case "hold violations found and fixed" test_hold_fix;
      case "corner overdesign on sequential sign-off"
        test_clocking_statistical_vs_corner ] )
