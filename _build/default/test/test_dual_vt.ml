(* Dual-threshold machinery: Vt classes, the mixed-class inter engine,
   class-aware path analysis validated against Monte-Carlo, and the
   leakage optimizer. *)

open Ssta_circuit
open Ssta_timing
open Ssta_prob
open Ssta_tech
open Ssta_core
open Helpers

(* ---------------- Vt_class ---------------- *)

let test_params_for () =
  let low = Vt_class.params_for Vt_class.Low in
  check_close ~tol:0.0 "low = nominal" Params.nominal.Params.vtn
    low.Params.vtn;
  let high = Vt_class.params_for Vt_class.High in
  check_close ~tol:1e-12 "high vtn shifted"
    (Params.nominal.Params.vtn +. Vt_class.default_shift)
    high.Params.vtn;
  check_close ~tol:1e-12 "high vtp shifted"
    (Params.nominal.Params.vtp +. Vt_class.default_shift)
    high.Params.vtp;
  let custom = Vt_class.params_for ~shift:0.1 Vt_class.High in
  check_close ~tol:1e-12 "custom shift" (Params.nominal.Params.vtn +. 0.1)
    custom.Params.vtn

let test_high_vt_slower_and_leaks_less () =
  let e = Gate.electrical (Gate.Nand 2) in
  let d cls = Elmore.gate_delay e (Vt_class.params_for cls) in
  check_true "high-Vt gate is slower" (d Vt_class.High > d Vt_class.Low);
  check_true "delay penalty below 30%"
    (d Vt_class.High < 1.3 *. d Vt_class.Low);
  let l cls = Vt_class.leakage e cls in
  check_true "high-Vt leaks less" (l Vt_class.High < l Vt_class.Low);
  (* 60 mV at ~90 mV/decade: about 4-5x *)
  check_true "leakage ratio in the expected range"
    (l Vt_class.Low /. l Vt_class.High > 3.0
    && l Vt_class.Low /. l Vt_class.High < 8.0)

let test_corner_for () =
  let wc = Vt_class.corner_for Corner.Worst Vt_class.High in
  let base = Corner.point Corner.Worst in
  check_close ~tol:1e-12 "corner + class shift"
    (base.Params.vtn +. Vt_class.default_shift)
    wc.Params.vtn

(* ---------------- Inter.pdf_dual ---------------- *)

let test_pdf_dual_reduces_to_pdf () =
  let tables = Inter.tables fast_config in
  let a = 1e-6 and b = 1.2e-6 in
  let p1 = Inter.pdf tables ~alpha_sum:a ~beta_sum:b in
  let p2 =
    Inter.pdf_dual tables ~alpha_low:a ~alpha_high:0.0 ~beta_low:b
      ~beta_high:0.0
  in
  check_close ~tol:1e-12 "all-low dual = plain" (Pdf.mean p1) (Pdf.mean p2);
  check_close ~tol:1e-12 "same std" (Pdf.std p1) (Pdf.std p2)

let test_pdf_dual_high_is_slower () =
  let tables = Inter.tables fast_config in
  let a = 1e-6 and b = 1.2e-6 in
  let low = Inter.pdf_dual tables ~alpha_low:a ~alpha_high:0.0 ~beta_low:b
      ~beta_high:0.0 in
  let high = Inter.pdf_dual tables ~alpha_low:0.0 ~alpha_high:a ~beta_low:0.0
      ~beta_high:b in
  check_true "all-high mean above all-low" (Pdf.mean high > Pdf.mean low);
  let mixed = Inter.pdf_dual tables ~alpha_low:(a /. 2.0)
      ~alpha_high:(a /. 2.0) ~beta_low:(b /. 2.0) ~beta_high:(b /. 2.0) in
  check_true "mixed in between"
    (Pdf.mean mixed > Pdf.mean low && Pdf.mean mixed < Pdf.mean high)

let test_pdf_dual_validation () =
  let tables = Inter.tables fast_config in
  check_raises_invalid "negative sum" (fun () ->
      ignore
        (Inter.pdf_dual tables ~alpha_low:(-1.0) ~alpha_high:0.0
           ~beta_low:1.0 ~beta_high:0.0));
  check_raises_invalid "zero NMOS side" (fun () ->
      ignore
        (Inter.pdf_dual tables ~alpha_low:0.0 ~alpha_high:0.0 ~beta_low:1.0
           ~beta_high:0.0))

(* ---------------- Class-aware analysis ---------------- *)

let setup () =
  let c = small_random () in
  let pl = Placement.place c in
  (c, pl)

let all_of cls c = Array.make (Netlist.num_nodes c) cls

let test_graph_for_classes () =
  let c, _ = setup () in
  let g_low = Dual_vt.graph_for c (all_of Vt_class.Low c) in
  let g_high = Dual_vt.graph_for c (all_of Vt_class.High c) in
  let d g = Longest_path.critical_delay g (Longest_path.bellman_ford g) in
  check_true "all-high circuit is slower" (d g_high > d g_low);
  (* all-low graph matches the plain construction *)
  let g_plain = Graph.of_netlist c in
  Array.iteri
    (fun id delay ->
      check_close ~tol:1e-12 "all-low = plain" g_plain.Graph.delay.(id) delay)
    g_low.Graph.delay

let test_analyze_path_all_low_matches_path_analysis () =
  let c, pl = setup () in
  let assignment = all_of Vt_class.Low c in
  let g = Dual_vt.graph_for c assignment in
  let sta = Sta.of_graph g in
  let tables = Inter.tables fast_config in
  let stats =
    Dual_vt.analyze_path fast_config tables g pl assignment
      sta.Sta.critical_path
  in
  let ctx = Path_analysis.context fast_config g pl in
  let a = Path_analysis.analyze ctx sta.Sta.critical_path in
  check_close ~tol:1e-9 "same mean" a.Path_analysis.mean stats.Dual_vt.mean;
  check_close ~tol:1e-9 "same std" a.Path_analysis.std stats.Dual_vt.std;
  check_close ~tol:1e-9 "same worst case" a.Path_analysis.worst_case
    stats.Dual_vt.worst_case

let test_analyze_path_matches_monte_carlo_mixed () =
  (* alternate classes along the ids: a genuinely mixed assignment *)
  let c, pl = setup () in
  let assignment =
    Array.init (Netlist.num_nodes c) (fun id ->
        if id mod 2 = 0 then Vt_class.Low else Vt_class.High)
  in
  let g = Dual_vt.graph_for c assignment in
  let sta = Sta.of_graph g in
  let tables = Inter.tables Config.default in
  let stats =
    Dual_vt.analyze_path Config.default tables g pl assignment
      sta.Sta.critical_path
  in
  let sampler =
    Monte_carlo.sampler
      ~nominal_of:(fun id -> Vt_class.params_for assignment.(id))
      Config.default g pl
  in
  let samples =
    Monte_carlo.path_delay_samples sampler ~n:8000 (Rng.create 77)
      sta.Sta.critical_path
  in
  let s = Stats.summarize samples in
  check_close ~tol:0.01 "mixed-class mean matches MC" s.Stats.mean
    stats.Dual_vt.mean;
  check_close ~tol:0.12 "mixed-class std matches MC" s.Stats.std
    stats.Dual_vt.std

let test_leakage_monotone () =
  let c, _ = setup () in
  let g = Graph.of_netlist c in
  let low = Dual_vt.leakage g (all_of Vt_class.Low c) in
  let high = Dual_vt.leakage g (all_of Vt_class.High c) in
  check_true "positive" (high > 0.0);
  check_true "all-high leaks least" (high < low)

(* ---------------- Optimizer ---------------- *)

let test_optimize_meets_target_and_saves_leakage () =
  let c, pl = setup () in
  let m = Methodology.run ~config:fast_config ~placement:pl c in
  let base3 =
    m.Methodology.prob_critical.Ranking.analysis.Path_analysis
    .confidence_point
  in
  let target = 1.05 *. base3 in
  let r = Dual_vt.optimize ~config:fast_config ~placement:pl ~target c in
  check_true "met" r.Dual_vt.met;
  check_true "3-sigma within target" (r.Dual_vt.sigma3_final <= target +. 1e-15);
  check_true "some gates went high" (r.Dual_vt.high_count > 0);
  check_true "leakage saved"
    (r.Dual_vt.leakage_final < r.Dual_vt.leakage_all_low);
  check_int "assignment covers all nodes" (Netlist.num_nodes c)
    (Array.length r.Dual_vt.assignment)

let test_optimize_impossible_target () =
  let c, pl = setup () in
  (* a target below the all-low 3-sigma point can never be met *)
  let r =
    Dual_vt.optimize ~config:fast_config ~placement:pl ~target:1e-13 c
  in
  check_true "not met" (not r.Dual_vt.met);
  check_true "falls back towards all-low"
    (r.Dual_vt.high_count < r.Dual_vt.gate_count)

let test_optimize_validation () =
  let c, _ = setup () in
  check_raises_invalid "bad target" (fun () ->
      ignore (Dual_vt.optimize ~target:0.0 c));
  check_raises_invalid "bad slack factor" (fun () ->
      ignore (Dual_vt.optimize ~slack_factor:(-1.0) ~target:1.0 c))

let test_optimize_monte_carlo_check () =
  let c, pl = setup () in
  let config = fast_config in
  let m = Methodology.run ~config ~placement:pl c in
  let base3 =
    m.Methodology.prob_critical.Ranking.analysis.Path_analysis
    .confidence_point
  in
  let target = 1.08 *. base3 in
  let r = Dual_vt.optimize ~config ~placement:pl ~target c in
  let g = Dual_vt.graph_for c r.Dual_vt.assignment in
  let sta = Sta.of_graph g in
  let sampler =
    Monte_carlo.sampler
      ~nominal_of:(fun id -> Vt_class.params_for r.Dual_vt.assignment.(id))
      config g pl
  in
  let samples =
    Monte_carlo.path_delay_samples sampler ~n:6000 (Rng.create 3)
      sta.Sta.critical_path
  in
  let mc3 = Stats.sigma_point samples 3.0 in
  check_true "MC confirms the timing target (2% tolerance)"
    (mc3 <= 1.02 *. target)

let suite =
  ( "dual-vt",
    [ case "class operating points" test_params_for;
      case "high-Vt slower, leaks less" test_high_vt_slower_and_leaks_less;
      case "class-aware corners" test_corner_for;
      case "pdf_dual reduces to pdf" test_pdf_dual_reduces_to_pdf;
      case "pdf_dual orders the classes" test_pdf_dual_high_is_slower;
      case "pdf_dual validation" test_pdf_dual_validation;
      case "class-aware graphs" test_graph_for_classes;
      case "all-low analysis = standard analysis"
        test_analyze_path_all_low_matches_path_analysis;
      slow_case "mixed-class analysis matches Monte-Carlo"
        test_analyze_path_matches_monte_carlo_mixed;
      case "leakage monotone in the class" test_leakage_monotone;
      case "optimizer meets target and saves leakage"
        test_optimize_meets_target_and_saves_leakage;
      case "optimizer on an impossible target" test_optimize_impossible_target;
      case "optimizer validation" test_optimize_validation;
      slow_case "Monte-Carlo confirms the optimized timing"
        test_optimize_monte_carlo_check ] )
