(* Advanced analysis engines: independence-assuming full-chip
   propagation, the correlated statistical path-max, second-order intra
   corrections, the incremental timer, and parser robustness (fuzz). *)

open Ssta_circuit
open Ssta_timing
open Ssta_prob
open Ssta_core
open Helpers

(* ---------------- Full-chip (independence) ---------------- *)

let test_full_chip_gate_pdf () =
  let e = Ssta_tech.Gate.electrical (Ssta_tech.Gate.Nand 2) in
  let p = Full_chip.gate_delay_pdf Config.default e in
  check_close ~tol:1e-6 "centered on the nominal delay"
    (Ssta_tech.Elmore.nominal_delay e)
    (Pdf.mean p);
  check_true "positive spread" (Pdf.std p > 0.0)

let test_full_chip_chain_equals_convolution () =
  (* On a chain there is no max: the arrival is the plain convolution of
     the gate PDFs, so mean = sum of means. *)
  let c = tiny_chain () in
  let r = Full_chip.analyze c in
  let g = Graph.of_netlist c in
  check_close ~tol:1e-3 "chain mean = nominal critical delay"
    (Longest_path.critical_delay g (Longest_path.bellman_ford g))
    r.Full_chip.mean

let test_full_chip_mean_at_least_critical () =
  (* E[max] >= max of means. *)
  let c = small_random () in
  let sta = Sta.analyze c in
  let r = Full_chip.analyze c in
  check_true "mean(max) >= nominal critical"
    (r.Full_chip.mean >= sta.Sta.critical_delay -. 1e-13)

let test_full_chip_underestimates_spread () =
  (* The paper's critique quantified: ignoring the shared RVs makes the
     circuit-delay spread collapse relative to the correlated truth. *)
  let c = small_random () in
  let r = Full_chip.analyze c in
  let sta = Sta.analyze c in
  let pl = Placement.place c in
  let sampler = Monte_carlo.sampler Config.default sta.Sta.graph pl in
  let mc =
    Monte_carlo.circuit_delay_samples sampler ~n:800 (Rng.create 4)
  in
  let true_std = Stats.std mc in
  check_true "independent sigma well below the correlated sigma"
    (r.Full_chip.std < 0.7 *. true_std)

(* ---------------- Path max ---------------- *)

let methodology () =
  let c = small_random () in
  let pl = Placement.place c in
  (c, pl, Methodology.run ~config:Config.default ~placement:pl c)

let test_path_max_dominates_single_path () =
  let _, _, m = methodology () in
  let pm = Path_max.statistical_max m in
  let proxy =
    m.Methodology.prob_critical.Ranking.analysis.Path_analysis.mean
  in
  check_true "mean(max) >= mean of the best path" (pm.Path_max.mean >= proxy -. 1e-13);
  check_true "uses at least one path" (pm.Path_max.paths_used >= 1)

let test_path_max_matches_monte_carlo () =
  let _, pl, m = methodology () in
  let pm = Path_max.statistical_max m in
  let sampler =
    Monte_carlo.sampler Config.default m.Methodology.sta.Sta.graph pl
  in
  let mc =
    Monte_carlo.circuit_delay_samples sampler ~n:1200 (Rng.create 12)
  in
  let s = Stats.summarize mc in
  check_close ~tol:0.03 "mean within 3% of MC" s.Stats.mean pm.Path_max.mean;
  check_close ~tol:0.3 "std within 30% of MC" s.Stats.std pm.Path_max.std

let test_path_max_yield_brackets () =
  let _, _, m = methodology () in
  let d = m.Methodology.det_critical in
  let clock = d.Path_analysis.mean +. (2.0 *. d.Path_analysis.std) in
  let y = Path_max.yield_at m ~clock in
  check_true "a probability" (y >= 0.0 && y <= 1.0);
  (* the max-based yield cannot exceed the single-path proxy *)
  check_true "below the optimistic proxy"
    (y <= Yield.of_methodology m ~clock +. 0.02)

(* ---------------- Second order ---------------- *)

let second_order_setup () =
  let c = small_random () in
  let pl = Placement.place c in
  let sta = Sta.analyze c in
  let ctx = Path_analysis.context Config.default sta.Sta.graph pl in
  let a = Path_analysis.analyze ctx sta.Sta.critical_path in
  let corr =
    Second_order.of_path Config.default sta.Sta.graph pl
      sta.Sta.critical_path
  in
  (sta, pl, a, corr)

let test_second_order_shift_positive_and_small () =
  let _, _, a, corr = second_order_setup () in
  (* the delay is convex in the voltage RVs around nominal *)
  check_true "positive intra Jensen shift" (corr.Second_order.mean_shift > 0.0);
  check_true "small relative to the mean"
    (corr.Second_order.mean_shift < 0.01 *. a.Path_analysis.mean);
  check_true "extra variance negligible"
    (corr.Second_order.extra_variance
    < 0.01 *. a.Path_analysis.std *. a.Path_analysis.std);
  check_true "skewness tiny (convexity claim)"
    (Float.abs corr.Second_order.skewness < 0.05)

let test_second_order_improves_mc_mean () =
  let sta, pl, a, corr = second_order_setup () in
  let sampler = Monte_carlo.sampler Config.default sta.Sta.graph pl in
  let samples =
    Monte_carlo.path_delay_samples sampler ~n:60_000 (Rng.create 123)
      sta.Sta.critical_path
  in
  let mc_mean = Stats.mean samples in
  let err_first = Float.abs (mc_mean -. a.Path_analysis.mean) in
  let err_second =
    Float.abs (mc_mean -. Second_order.corrected_mean a corr)
  in
  check_true
    (Printf.sprintf "correction reduces the mean error (%.4f -> %.4f ps)"
       (err_first *. 1e12) (err_second *. 1e12))
    (err_second < err_first)

let test_corrected_std_formula () =
  let _, _, a, corr = second_order_setup () in
  let expect =
    sqrt
      ((a.Path_analysis.std *. a.Path_analysis.std)
      +. corr.Second_order.extra_variance)
  in
  check_close ~tol:1e-12 "corrected std" expect
    (Second_order.corrected_std a corr)

(* ---------------- Incremental timing ---------------- *)

let test_incremental_initial_state () =
  let c = small_random () in
  let t = Incremental.create c in
  let g = Graph.of_netlist c in
  (* Loads differ slightly (exact consumer caps vs fanout * default), so
     compare against the drive-aware reference, which is exact. *)
  let reference = Incremental.labels_reference t in
  Array.iteri
    (fun id r ->
      check_close ~tol:1e-12 "initial labels match reference" r
        (Incremental.arrival t id))
    reference;
  ignore g

let test_incremental_single_edit () =
  let c = small_random () in
  let t = Incremental.create c in
  let before = Incremental.critical_delay t in
  (* pick a gate on the critical path and upsize it *)
  let g = Incremental.to_graph t in
  let labels = Longest_path.bellman_ford g in
  let path = Longest_path.critical_path g labels in
  let victim = path.(Array.length path - 1) in
  let changed = Incremental.set_drive t victim 3.0 in
  check_true "some arrivals changed" (changed > 0);
  check_close ~tol:1e-12 "drive recorded" 3.0 (Incremental.drive t victim);
  (* upsizing trades the victim's delay against its fan-in's load, so
     the critical delay moves but its direction is circuit-dependent *)
  check_true "critical delay moved"
    (Float.abs (Incremental.critical_delay t -. before) > 0.0);
  let reference = Incremental.labels_reference t in
  let g2 = Incremental.to_graph t in
  check_close ~tol:1e-12 "matches from-scratch critical delay"
    (Longest_path.critical_delay g2 reference)
    (Incremental.critical_delay t)

let test_incremental_validation () =
  let c = small_random () in
  let t = Incremental.create c in
  check_raises_invalid "input node" (fun () ->
      ignore (Incremental.set_drive t 0 2.0));
  check_raises_invalid "bad drive" (fun () ->
      ignore (Incremental.set_drive t (Netlist.num_nodes c - 1) 0.0))

let prop_incremental_equals_scratch =
  qcheck ~count:12 "incremental == from-scratch over random edit bursts"
    QCheck.(int_range 1 5000)
    (fun seed ->
      let c =
        Generators.random_layered ~name:"p" ~inputs:8 ~outputs:4 ~gates:80
          ~depth:9 ~seed ()
      in
      let t = Incremental.create c in
      let rng = Rng.create (seed * 7) in
      let ok = ref true in
      for _ = 1 to 12 do
        let id = c.Netlist.num_inputs + Rng.int rng (Netlist.num_gates c) in
        let d = 0.5 +. (3.5 *. Rng.float rng) in
        ignore (Incremental.set_drive t id d);
        let reference = Incremental.labels_reference t in
        Array.iteri
          (fun i r ->
            if Float.abs (r -. Incremental.arrival t i)
               > 1e-18 +. (1e-12 *. Float.abs r)
            then ok := false)
          reference
      done;
      !ok)

let test_incremental_touches_few_nodes () =
  (* Editing a sink-side gate must not disturb the whole circuit. *)
  let c = Generators.chain ~name:"long" ~length:60 () in
  let t = Incremental.create c in
  let last_gate = Netlist.num_nodes c - 1 in
  let changed = Incremental.set_drive t last_gate 2.0 in
  (* only the last gate's arrival (and maybe its fan-in's) can move *)
  check_true "locality" (changed <= 3)

(* ---------------- Parser fuzzing ---------------- *)

let printable rng =
  let n = 1 + Rng.int rng 400 in
  String.init n (fun _ ->
      let c = Rng.int rng 96 in
      if c = 95 then '\n' else Char.chr (32 + c))

let test_bench_fuzz_no_crash () =
  let rng = Rng.create 2024 in
  for _ = 1 to 400 do
    let text = printable rng in
    match Bench_format.parse_string text with
    | (_ : Netlist.t) -> ()
    | exception Bench_format.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "bench parser leaked %s on %S" (Printexc.to_string e)
          text
  done

let test_verilog_fuzz_no_crash () =
  let rng = Rng.create 4048 in
  for _ = 1 to 400 do
    let text = "module m (a);\n" ^ printable rng in
    match Verilog.parse_string text with
    | (_ : Netlist.t) -> ()
    | exception Verilog.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "verilog parser leaked %s on %S" (Printexc.to_string e)
          text
  done

let test_def_fuzz_no_crash () =
  let rng = Rng.create 777 in
  for _ = 1 to 400 do
    let text = "DESIGN x ;\n" ^ printable rng in
    match Def_format.parse_string text with
    | (_ : Def_format.t) -> ()
    | exception Def_format.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "def parser leaked %s on %S" (Printexc.to_string e)
          text
  done

let test_mutated_bench_roundtrip () =
  (* Take a real .bench text and flip random characters: the parser must
     either succeed or fail cleanly. *)
  let base = Bench_format.to_string (small_adder ()) in
  let rng = Rng.create 31 in
  for _ = 1 to 300 do
    let b = Bytes.of_string base in
    for _ = 1 to 3 do
      Bytes.set b
        (Rng.int rng (Bytes.length b))
        (Char.chr (32 + Rng.int rng 96))
    done;
    match Bench_format.parse_string (Bytes.to_string b) with
    | (_ : Netlist.t) -> ()
    | exception Bench_format.Parse_error _ -> ()
    | exception e ->
        Alcotest.failf "mutated bench leaked %s" (Printexc.to_string e)
  done

let suite =
  ( "advanced",
    [ case "full-chip gate pdf" test_full_chip_gate_pdf;
      case "full-chip on a chain = convolution"
        test_full_chip_chain_equals_convolution;
      case "full-chip mean above nominal critical"
        test_full_chip_mean_at_least_critical;
      slow_case "independence underestimates the spread"
        test_full_chip_underestimates_spread;
      case "path-max dominates each path" test_path_max_dominates_single_path;
      slow_case "path-max matches Monte-Carlo" test_path_max_matches_monte_carlo;
      case "path-max yield brackets the proxy" test_path_max_yield_brackets;
      case "second-order shift positive and small"
        test_second_order_shift_positive_and_small;
      slow_case "second-order correction beats first order"
        test_second_order_improves_mc_mean;
      case "corrected std formula" test_corrected_std_formula;
      case "incremental initial state" test_incremental_initial_state;
      case "incremental single edit" test_incremental_single_edit;
      case "incremental validation" test_incremental_validation;
      prop_incremental_equals_scratch;
      case "incremental edit locality" test_incremental_touches_few_nodes;
      case "bench parser fuzz" test_bench_fuzz_no_crash;
      case "verilog parser fuzz" test_verilog_fuzz_no_crash;
      case "def parser fuzz" test_def_fuzz_no_crash;
      case "mutated bench inputs" test_mutated_bench_roundtrip ] )
