open Ssta_circuit
open Helpers

let to_bits v n = Array.init n (fun i -> (v lsr i) land 1 = 1)

let of_bits a =
  Array.to_list a
  |> List.mapi (fun i b -> if b then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

let test_chain () =
  let c = Generators.chain ~name:"c" ~length:7 () in
  check_int "gates" 7 (Netlist.num_gates c);
  check_int "depth" 7 (Netlist.depth c);
  (* 7 inverters: odd chain inverts *)
  check_true "odd inversion"
    ((Netlist.output_values c [| true |]).(0) = false);
  check_raises_invalid "zero length" (fun () ->
      ignore (Generators.chain ~name:"c" ~length:0 ()));
  check_raises_invalid "multi-input kind" (fun () ->
      ignore (Generators.chain ~kind:(Ssta_tech.Gate.Nand 2) ~name:"c"
                ~length:3 ()))

let test_and_or_tree () =
  let c = Generators.and_or_tree ~name:"t" ~width:16 () in
  check_int "one output" 1 (Array.length c.Netlist.outputs);
  check_true "logarithmic depth" (Netlist.depth c <= 5);
  check_raises_invalid "width too small" (fun () ->
      ignore (Generators.and_or_tree ~name:"t" ~width:1 ()))

let test_ripple_carry_adder_exhaustive () =
  let bits = 4 in
  let c = Generators.ripple_carry_adder ~name:"rca" ~bits () in
  check_int "io" (2 * bits + 1) c.Netlist.num_inputs;
  for a = 0 to 15 do
    for b = 0 to 15 do
      for cin = 0 to 1 do
        let inputs =
          Array.concat [ to_bits a bits; to_bits b bits; [| cin = 1 |] ]
        in
        let sum = of_bits (Netlist.output_values c inputs) in
        if sum <> a + b + cin then
          Alcotest.failf "rca: %d+%d+%d = %d, got %d" a b cin (a + b + cin)
            sum
      done
    done
  done

let test_array_multiplier_exhaustive () =
  let bits = 4 in
  let c = Generators.array_multiplier ~name:"mul" ~bits () in
  check_int "inputs" (2 * bits) c.Netlist.num_inputs;
  check_int "product bits" (2 * bits) (Array.length c.Netlist.outputs);
  for a = 0 to 15 do
    for b = 0 to 15 do
      let inputs = Array.append (to_bits a bits) (to_bits b bits) in
      let p = of_bits (Netlist.output_values c inputs) in
      if p <> a * b then Alcotest.failf "mul: %d*%d = %d, got %d" a b (a * b) p
    done
  done

let test_array_multiplier_structure () =
  let c = Generators.array_multiplier ~name:"m16" ~bits:16 () in
  (* c6288 character: ~2400 gates, very deep, NAND-dominated. *)
  check_true "gate count near c6288"
    (Netlist.num_gates c > 2200 && Netlist.num_gates c < 2600);
  check_true "deep" (Netlist.depth c > 100);
  let nands =
    List.fold_left
      (fun acc (kind, n) ->
        match kind with Ssta_tech.Gate.Nand 2 -> acc + n | _ -> acc)
      0
      (Netlist.gate_kind_histogram c)
  in
  check_true "NAND-dominated" (nands * 10 > Netlist.num_gates c * 8)

let test_ecc_structure () =
  let c = Generators.ecc ~name:"e" ~data_bits:32 ~check_bits:8 () in
  check_int "inputs" 40 c.Netlist.num_inputs;
  check_int "outputs" 32 (Array.length c.Netlist.outputs);
  check_true "c499-scale" (Netlist.num_gates c > 120 && Netlist.num_gates c < 260);
  check_true "shallow and bushy" (Netlist.depth c <= 10)

let test_ecc_corrects_nothing_when_clean () =
  (* With matching check bits (syndrome 0) every data bit passes through. *)
  let c = Generators.ecc ~name:"e" ~data_bits:8 ~check_bits:4 () in
  let member i j = (i * ((2 * j) + 3)) mod 8 < 3 || i mod 4 = j in
  let rng = Ssta_prob.Rng.create 10 in
  for _ = 1 to 100 do
    let data = Array.init 8 (fun _ -> Ssta_prob.Rng.float rng < 0.5) in
    let parity j =
      Array.to_list data
      |> List.filteri (fun i _ -> member i j)
      |> List.fold_left (fun acc b -> acc <> b) false
    in
    let checks = Array.init 4 parity in
    let out = Netlist.output_values c (Array.append data checks) in
    check_true "clean word passes through" (out = data)
  done

let test_expand_xor_equivalence () =
  let c = Generators.ecc ~name:"e" ~data_bits:12 ~check_bits:4 () in
  let ex = Generators.expand_xor c in
  check_true "no xor gates remain"
    (List.for_all
       (fun (kind, _) ->
         match kind with
         | Ssta_tech.Gate.Xor2 | Ssta_tech.Gate.Xnor2 -> false
         | _ -> true)
       (Netlist.gate_kind_histogram ex));
  let rng = Ssta_prob.Rng.create 3 in
  for _ = 1 to 200 do
    let inputs =
      Array.init c.Netlist.num_inputs (fun _ -> Ssta_prob.Rng.float rng < 0.5)
    in
    check_true "logic preserved"
      (Netlist.output_values c inputs = Netlist.output_values ex inputs)
  done

let test_expand_xor_handles_xnor () =
  let b = Netlist.Builder.create "x" in
  let a = Netlist.Builder.add_input b "a" in
  let c = Netlist.Builder.add_input b "b" in
  let g = Netlist.Builder.add_gate b Ssta_tech.Gate.Xnor2 [ a; c ] in
  Netlist.Builder.mark_output b g;
  let circuit = Netlist.Builder.finish b in
  let ex = Generators.expand_xor circuit in
  List.iter
    (fun (x, y) ->
      check_true "xnor truth preserved"
        ((Netlist.output_values circuit [| x; y |])
        = Netlist.output_values ex [| x; y |]))
    [ (false, false); (false, true); (true, false); (true, true) ]

let test_random_layered_determinism () =
  let mk () =
    Generators.random_layered ~name:"r" ~inputs:10 ~outputs:5 ~gates:80
      ~depth:10 ~seed:7 ()
  in
  let a = mk () and b = mk () in
  check_true "same seed, same netlist"
    (Bench_format.to_string a = Bench_format.to_string b);
  let c =
    Generators.random_layered ~name:"r" ~inputs:10 ~outputs:5 ~gates:80
      ~depth:10 ~seed:8 ()
  in
  check_true "different seed differs"
    (Bench_format.to_string a <> Bench_format.to_string c)

let test_random_layered_shape () =
  let c =
    Generators.random_layered ~name:"r" ~inputs:12 ~outputs:6 ~gates:100
      ~depth:12 ~seed:5 ()
  in
  check_int "gates as requested" 100 (Netlist.num_gates c);
  check_int "inputs as requested" 12 c.Netlist.num_inputs;
  check_int "depth equals requested" 12 (Netlist.depth c);
  (* every gate reaches a primary output: no dangling sinks *)
  let counts = Netlist.fanout_counts c in
  Array.iteri
    (fun id n ->
      if not (Netlist.is_input c id) then
        check_true "no dangling gate" (n > 0))
    counts

let test_random_layered_invalid () =
  check_raises_invalid "gates < depth" (fun () ->
      ignore
        (Generators.random_layered ~name:"r" ~inputs:4 ~outputs:2 ~gates:3
           ~depth:5 ~seed:1 ()))

let prop_random_layered_depth =
  qcheck ~count:20 "requested depth is realized"
    QCheck.(pair (int_range 2 15) (int_range 1 1000))
    (fun (depth, seed) ->
      let c =
        Generators.random_layered ~name:"p" ~inputs:6 ~outputs:3
          ~gates:(depth * 8) ~depth ~seed ()
      in
      Netlist.depth c = depth)

let suite =
  ( "generators",
    [ case "chain" test_chain;
      case "and/or tree" test_and_or_tree;
      case "ripple-carry adder exhaustive" test_ripple_carry_adder_exhaustive;
      case "array multiplier exhaustive (4 bits)"
        test_array_multiplier_exhaustive;
      case "array multiplier has c6288 structure"
        test_array_multiplier_structure;
      case "ecc structure matches c499" test_ecc_structure;
      case "ecc passes clean words" test_ecc_corrects_nothing_when_clean;
      case "expand_xor preserves logic" test_expand_xor_equivalence;
      case "expand_xor handles XNOR" test_expand_xor_handles_xnor;
      case "random circuits deterministic in seed"
        test_random_layered_determinism;
      case "random circuit shape" test_random_layered_shape;
      case "random generator input validation" test_random_layered_invalid;
      prop_random_layered_depth ] )
