(* Extension features: distribution shapes, wire-aware loading, timing
   yield and path criticality. *)

open Ssta_prob
open Ssta_circuit
open Ssta_timing
open Ssta_core
open Helpers

(* ---------------- Shape ---------------- *)

let test_shape_names () =
  List.iter
    (fun s ->
      match Shape.of_name (Shape.name s) with
      | Some s' -> check_true "roundtrip" (s = s')
      | None -> Alcotest.failf "of_name failed for %s" (Shape.name s))
    Shape.all;
  check_true "unknown shape" (Shape.of_name "cauchy" = None)

let test_shape_moments_matched () =
  (* All shapes must deliver the requested mean and std. *)
  List.iter
    (fun shape ->
      let p = Shape.pdf shape ~n:400 ~bound:6.0 ~mu:3.0 ~sigma:0.5 in
      check_close ~tol:1e-6 (Shape.name shape ^ " mean") 3.0 (Pdf.mean p);
      check_close ~tol:2e-2 (Shape.name shape ^ " std") 0.5 (Pdf.std p))
    Shape.all

let test_shape_sampling_matches_pdf () =
  List.iter
    (fun shape ->
      let rng = Rng.create 99 in
      let samples =
        Array.init 30_000 (fun _ ->
            Shape.sample shape rng ~bound:6.0 ~mu:(-1.0) ~sigma:2.0)
      in
      let s = Stats.summarize samples in
      check_close_abs ~tol:0.05 (Shape.name shape ^ " sampled mean") (-1.0)
        s.Stats.mean;
      check_close_abs ~tol:0.05 (Shape.name shape ^ " sampled std") 2.0
        s.Stats.std;
      let p = Shape.pdf shape ~n:200 ~bound:6.0 ~mu:(-1.0) ~sigma:2.0 in
      check_true
        (Shape.name shape ^ " KS small")
        (Stats.ks_against_pdf samples p < 0.03))
    Shape.all

let test_shape_invalid () =
  check_raises_invalid "sigma<=0 pdf" (fun () ->
      ignore (Shape.pdf Shape.Uniform ~n:10 ~bound:6.0 ~mu:0.0 ~sigma:0.0));
  check_raises_invalid "sigma<=0 sample" (fun () ->
      ignore
        (Shape.sample Shape.Triangular (Rng.create 1) ~bound:6.0 ~mu:0.0
           ~sigma:(-1.0)))

(* ---------------- Inter shape in the flow ---------------- *)

let test_inter_shape_changes_tails_not_mean () =
  let circuit = small_random () in
  let run shape =
    let config = Config.with_inter_shape fast_config shape in
    let m = Methodology.run ~config circuit in
    m.Methodology.det_critical
  in
  let g = run Shape.Gaussian and u = run Shape.Uniform in
  (* Same variance budget: mean and sigma stay close... *)
  check_close ~tol:5e-3 "means agree across shapes" g.Path_analysis.mean
    u.Path_analysis.mean;
  check_close ~tol:8e-2 "sigmas agree across shapes" g.Path_analysis.std
    u.Path_analysis.std;
  (* ...but the uniform's bounded support cuts the extreme tail. *)
  let q g = Pdf.quantile g.Path_analysis.total_pdf 0.9999 in
  check_true "uniform inter has a shorter extreme tail" (q u < q g)

let test_mc_agrees_for_uniform_shape () =
  (* The Monte-Carlo sampler must follow the configured shape, so the
     analytic/sampled agreement holds for non-Gaussian inputs too. *)
  let circuit = small_random () in
  let config = Config.with_inter_shape Config.default Shape.Uniform in
  let sta = Sta.analyze circuit in
  let pl = Placement.place circuit in
  let ctx = Path_analysis.context config sta.Sta.graph pl in
  let a = Path_analysis.analyze ctx sta.Sta.critical_path in
  let sampler = Monte_carlo.sampler config sta.Sta.graph pl in
  let v = Monte_carlo.validate_path ~n:6000 sampler (Rng.create 55) a in
  check_true "mean within 0.5%"
    (v.Monte_carlo.mean_err < 0.005 *. a.Path_analysis.mean);
  check_true "KS < 0.06" (v.Monte_carlo.ks < 0.06)

(* ---------------- Wire model ---------------- *)

let test_net_length () =
  check_close ~tol:1e-12 "unloaded net" 0.0
    (Ssta_tech.Wire.net_length (3.0, 4.0) []);
  check_close ~tol:1e-12 "single sink manhattan"
    7.0
    (Ssta_tech.Wire.net_length (0.0, 0.0) [ (3.0, 4.0) ]);
  check_close ~tol:1e-12 "half perimeter of the bounding box" 20.0
    (Ssta_tech.Wire.net_length (0.0, 0.0) [ (10.0, 10.0); (5.0, 2.0) ])

let test_net_cap_monotone () =
  let p = Ssta_tech.Wire.default in
  let short = Ssta_tech.Wire.net_cap p (0.0, 0.0) [ (1.0, 0.0) ] in
  let long_ = Ssta_tech.Wire.net_cap p (0.0, 0.0) [ (500.0, 0.0) ] in
  check_true "longer nets have more capacitance" (long_ > short);
  check_true "caps in femtofarad range" (short > 0.0 && long_ < 1e-12)

let test_placed_graph_slower_on_long_nets () =
  (* Spread placement => long nets => bigger loads => larger delays. *)
  let c = small_random () in
  let n = Netlist.num_nodes c in
  let compact =
    Placement.with_coords ~die_width:2000.0 ~die_height:2000.0
      (Array.make n (10.0, 10.0))
  in
  let rng = Rng.create 31 in
  let spread =
    Placement.with_coords ~die_width:2000.0 ~die_height:2000.0
      (Array.init n (fun _ ->
           (Rng.uniform rng ~lo:0.0 ~hi:1900.0,
            Rng.uniform rng ~lo:0.0 ~hi:1900.0)))
  in
  let delay pl =
    (Sta.analyze_placed c pl).Sta.critical_delay
  in
  check_true "spread placement is slower" (delay spread > delay compact)

let test_placed_graph_close_to_default_for_tight_placement () =
  let c = tiny_chain () in
  let pl = Placement.place ~pitch:5.0 c in
  let placed = Sta.analyze_placed c pl in
  let plain = Sta.analyze c in
  (* tight pitch: wire caps are tiny, delays nearly identical *)
  check_close ~tol:0.15 "within 15%" plain.Sta.critical_delay
    placed.Sta.critical_delay

(* ---------------- Yield ---------------- *)

let test_yield_of_pdf () =
  let p = Dist.truncated_gaussian ~n:200 ~mu:100.0 ~sigma:10.0 () in
  check_close_abs ~tol:5e-3 "yield at the mean" 0.5 (Yield.of_pdf p ~clock:100.0);
  check_true "generous clock" (Yield.of_pdf p ~clock:200.0 > 0.999);
  check_true "impossible clock" (Yield.of_pdf p ~clock:0.0 < 1e-6)

let test_clock_for_yield_inverts () =
  let p = Dist.truncated_gaussian ~n:400 ~mu:100.0 ~sigma:10.0 () in
  List.iter
    (fun y ->
      let clock = Yield.clock_for_yield p ~yield:y in
      check_close_abs ~tol:5e-3 "roundtrip" y (Yield.of_pdf p ~clock))
    [ 0.1; 0.5; 0.9; 0.99 ];
  check_raises_invalid "bad yield" (fun () ->
      ignore (Yield.clock_for_yield p ~yield:1.5))

let test_yield_of_samples () =
  let samples = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close ~tol:1e-12 "half below 2.5" 0.5
    (Yield.of_samples samples ~clock:2.5);
  check_raises_invalid "empty" (fun () ->
      ignore (Yield.of_samples [||] ~clock:1.0))

let test_yield_curve_monotone () =
  let p = Dist.truncated_gaussian ~n:100 ~mu:10.0 ~sigma:1.0 () in
  let curve = Yield.curve p ~lo:5.0 ~hi:15.0 ~points:21 in
  check_int "points" 21 (List.length curve);
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
        check_true "yield monotone in clock" (a <= b +. 1e-12);
        monotone rest
    | [ _ ] | [] -> ()
  in
  monotone curve

let test_yield_bounds_from_methodology () =
  let m = Methodology.run ~config:fast_config (small_random ()) in
  let d = m.Methodology.det_critical in
  let clock = d.Path_analysis.mean +. (2.0 *. d.Path_analysis.std) in
  let optimistic = Yield.of_methodology m ~clock in
  let pessimistic = Yield.pessimistic_of_methodology m ~clock in
  check_true "bounds ordered" (pessimistic <= optimistic +. 1e-12);
  check_true "plausible range" (optimistic > 0.8 && optimistic <= 1.0)

let test_yield_vs_monte_carlo () =
  let circuit = small_random () in
  let m = Methodology.run ~config:Config.default circuit in
  let sta = m.Methodology.sta in
  let pl = Placement.place circuit in
  let sampler = Monte_carlo.sampler Config.default sta.Sta.graph pl in
  let samples =
    Monte_carlo.circuit_delay_samples sampler ~n:1500 (Rng.create 41)
  in
  let d = m.Methodology.det_critical in
  let clock = d.Path_analysis.mean +. (3.0 *. d.Path_analysis.std) in
  let mc = Yield.of_samples samples ~clock in
  let analytic = Yield.of_methodology m ~clock in
  (* the prob-critical proxy is optimistic but should be within a few
     points of the exact circuit yield at a 3-sigma clock *)
  check_close_abs ~tol:0.05 "analytic vs MC yield" mc analytic

(* ---------------- Criticality ---------------- *)

let test_criticality_sums_to_one () =
  let circuit = small_random () in
  let sta = Sta.analyze circuit in
  let pl = Placement.place circuit in
  let sampler = Monte_carlo.sampler fast_config sta.Sta.graph pl in
  let enum = Sta.near_critical sta ~slack:(0.05 *. sta.Sta.critical_delay) in
  let c =
    Criticality.estimate sampler ~n:300 (Rng.create 6) enum.Paths.paths
  in
  let total = Array.fold_left ( +. ) 0.0 c.Criticality.probabilities in
  check_close ~tol:1e-12 "probabilities sum to 1" 1.0 total;
  check_int "samples recorded" 300 c.Criticality.samples;
  check_true "entropy non-negative" (c.Criticality.entropy >= 0.0)

let test_criticality_dominant_path_is_plausible () =
  (* With zero slack the enumerated set contains only nominally critical
     paths; the dominant one should carry substantial probability. *)
  let circuit = small_random () in
  let sta = Sta.analyze circuit in
  let pl = Placement.place circuit in
  let sampler = Monte_carlo.sampler fast_config sta.Sta.graph pl in
  let enum = Sta.near_critical sta ~slack:(0.15 *. sta.Sta.critical_delay) in
  let c =
    Criticality.estimate sampler ~n:400 (Rng.create 17) enum.Paths.paths
  in
  let dom = Criticality.dominant c in
  check_true "dominant probability substantial"
    (c.Criticality.probabilities.(dom) > 0.1)

let test_criticality_single_path () =
  let circuit = tiny_chain () in
  let sta = Sta.analyze circuit in
  let pl = Placement.place circuit in
  let sampler = Monte_carlo.sampler fast_config sta.Sta.graph pl in
  let c =
    Criticality.estimate sampler ~n:50 (Rng.create 2)
      [ sta.Sta.critical_path ]
  in
  check_close ~tol:1e-12 "sole path always critical" 1.0
    c.Criticality.probabilities.(0);
  check_close ~tol:1e-12 "entropy zero" 0.0 c.Criticality.entropy

let test_criticality_invalid () =
  let circuit = tiny_chain () in
  let sta = Sta.analyze circuit in
  let pl = Placement.place circuit in
  let sampler = Monte_carlo.sampler fast_config sta.Sta.graph pl in
  check_raises_invalid "no paths" (fun () ->
      ignore (Criticality.estimate sampler ~n:10 (Rng.create 1) []));
  check_raises_invalid "no samples" (fun () ->
      ignore
        (Criticality.estimate sampler ~n:0 (Rng.create 1)
           [ sta.Sta.critical_path ]))

let suite =
  ( "extensions",
    [ case "shape name roundtrip" test_shape_names;
      case "shapes deliver matched moments" test_shape_moments_matched;
      case "shape sampling matches shape pdf" test_shape_sampling_matches_pdf;
      case "shape input validation" test_shape_invalid;
      case "inter shape changes tails, not moments"
        test_inter_shape_changes_tails_not_mean;
      slow_case "MC agreement holds for uniform inputs"
        test_mc_agrees_for_uniform_shape;
      case "net length (half perimeter)" test_net_length;
      case "net capacitance monotone in length" test_net_cap_monotone;
      case "spread placement slows the circuit"
        test_placed_graph_slower_on_long_nets;
      case "tight placement ~ default loading"
        test_placed_graph_close_to_default_for_tight_placement;
      case "yield from a pdf" test_yield_of_pdf;
      case "clock_for_yield inverts the yield" test_clock_for_yield_inverts;
      case "empirical yield" test_yield_of_samples;
      case "yield curve monotone" test_yield_curve_monotone;
      case "optimistic/pessimistic yield bounds"
        test_yield_bounds_from_methodology;
      slow_case "analytic yield near Monte-Carlo" test_yield_vs_monte_carlo;
      case "criticality probabilities sum to 1" test_criticality_sums_to_one;
      case "dominant path carries weight"
        test_criticality_dominant_path_is_plausible;
      case "single-path criticality" test_criticality_single_path;
      case "criticality input validation" test_criticality_invalid ] )
