open Ssta_prob
open Helpers

let gauss ?(n = 200) ?(mu = 0.0) ?(sigma = 1.0) () =
  Dist.truncated_gaussian ~n ~mu ~sigma ()

let test_make_normalizes () =
  let p = Pdf.make ~lo:0.0 ~step:0.5 [| 1.0; 3.0; 2.0; 2.0 |] in
  check_close ~tol:1e-12 "total mass" 1.0 (Pdf.total_mass p)

let test_make_invalid () =
  check_raises_invalid "empty" (fun () -> Pdf.make ~lo:0.0 ~step:1.0 [||]);
  check_raises_invalid "bad step" (fun () ->
      Pdf.make ~lo:0.0 ~step:0.0 [| 1.0 |]);
  check_raises_invalid "negative density" (fun () ->
      Pdf.make ~lo:0.0 ~step:1.0 [| 1.0; -1.0 |]);
  check_raises_invalid "zero mass" (fun () ->
      Pdf.make ~lo:0.0 ~step:1.0 [| 0.0; 0.0 |])

let test_grid_geometry () =
  let p = Pdf.make ~lo:2.0 ~step:0.25 (Array.make 8 1.0) in
  check_int "size" 8 (Pdf.size p);
  check_close ~tol:1e-12 "hi" 4.0 (Pdf.hi p);
  check_close ~tol:1e-12 "x_at 0" 2.125 (Pdf.x_at p 0);
  check_close ~tol:1e-12 "mass_at uniform" 0.125 (Pdf.mass_at p 3)

let test_gaussian_moments () =
  let p = gauss ~mu:5.0 ~sigma:1.5 () in
  check_close ~tol:1e-6 "mean" 5.0 (Pdf.mean p);
  check_close ~tol:2e-3 "std" 1.5 (Pdf.std p);
  check_close_abs ~tol:1e-6 "skewness ~ 0" 0.0 (Pdf.skewness p)

let test_uniform_moments () =
  let p = Dist.uniform ~n:400 ~lo:0.0 ~hi:12.0 () in
  check_close ~tol:1e-9 "mean" 6.0 (Pdf.mean p);
  (* variance of U(0,12) = 144/12 = 12; grid version slightly smaller *)
  check_close ~tol:2e-3 "variance" 12.0 (Pdf.variance p)

let test_cdf_properties () =
  let p = gauss () in
  check_close ~tol:1e-12 "cdf below support" 0.0 (Pdf.cdf p (-100.0));
  check_close ~tol:1e-12 "cdf above support" 1.0 (Pdf.cdf p 100.0);
  check_close_abs ~tol:1e-3 "cdf at mean" 0.5 (Pdf.cdf p 0.0);
  check_close_abs ~tol:2e-3 "cdf at 1 sigma" 0.8413 (Pdf.cdf p 1.0)

let test_quantile_inverts_cdf () =
  let p = gauss ~mu:3.0 ~sigma:0.7 () in
  List.iter
    (fun q ->
      let x = Pdf.quantile p q in
      check_close_abs ~tol:2e-3 (Printf.sprintf "cdf(quantile %g)" q) q
        (Pdf.cdf p x))
    [ 0.01; 0.1; 0.5; 0.9; 0.99 ]

let test_quantile_invalid () =
  let p = gauss () in
  check_raises_invalid "q<0" (fun () -> Pdf.quantile p (-0.1));
  check_raises_invalid "q>1" (fun () -> Pdf.quantile p 1.1)

let test_sigma_point () =
  let p = gauss ~mu:10.0 ~sigma:2.0 () in
  check_close ~tol:5e-3 "3-sigma point" 16.0 (Pdf.sigma_point p 3.0);
  check_close ~tol:5e-3 "-1-sigma point" 8.0 (Pdf.sigma_point p (-1.0))

let test_mode () =
  let p = gauss ~mu:4.0 ~sigma:1.0 () in
  check_close_abs ~tol:0.05 "mode at mean for gaussian" 4.0 (Pdf.mode p)

let test_density_at () =
  let p = Dist.uniform ~n:10 ~lo:0.0 ~hi:1.0 () in
  check_close ~tol:1e-9 "inside" 1.0 (Pdf.density_at p 0.5);
  check_close ~tol:1e-12 "outside" 0.0 (Pdf.density_at p 2.0)

let test_affine () =
  let p = gauss ~mu:2.0 ~sigma:1.0 () in
  let q = Pdf.affine p ~mul:3.0 ~add:1.0 in
  check_close ~tol:1e-6 "affine mean" 7.0 (Pdf.mean q);
  check_close ~tol:3e-3 "affine std" 3.0 (Pdf.std q);
  let r = Pdf.affine p ~mul:(-2.0) ~add:0.0 in
  check_close ~tol:1e-6 "negated mean" (-4.0) (Pdf.mean r);
  check_close ~tol:3e-3 "negated std" 2.0 (Pdf.std r);
  check_close ~tol:1e-9 "mass preserved" 1.0 (Pdf.total_mass r);
  check_raises_invalid "mul=0" (fun () -> Pdf.affine p ~mul:0.0 ~add:1.0)

let test_shift_scale () =
  let p = gauss ~mu:1.0 ~sigma:0.5 () in
  check_close ~tol:1e-6 "shift mean" 4.0 (Pdf.mean (Pdf.shift p 3.0));
  check_close ~tol:1e-6 "scale mean" 2.0 (Pdf.mean (Pdf.scale p 2.0))

let test_resample_conserves () =
  let p = gauss ~n:160 ~mu:0.0 ~sigma:1.0 () in
  let q = Pdf.resample p ~n:37 in
  check_close ~tol:1e-9 "mass" 1.0 (Pdf.total_mass q);
  check_close_abs ~tol:5e-3 "mean preserved" (Pdf.mean p) (Pdf.mean q);
  check_close_abs ~tol:2e-2 "std approximately preserved" (Pdf.std p)
    (Pdf.std q)

let test_restrict () =
  let p = gauss ~mu:0.0 ~sigma:1.0 () in
  let q = Pdf.restrict p ~lo:0.0 ~hi:10.0 in
  check_close ~tol:1e-9 "renormalized" 1.0 (Pdf.total_mass q);
  check_true "mean moved right" (Pdf.mean q > 0.5);
  check_raises_invalid "empty window" (fun () ->
      Pdf.restrict p ~lo:50.0 ~hi:60.0)

let test_point_mass () =
  let p = Pdf.point_mass 42.0 in
  check_close ~tol:1e-9 "point mass mean" 42.0 (Pdf.mean p);
  check_true "tiny std" (Pdf.std p < 1e-9)

let test_of_samples () =
  let rng = Rng.create 8 in
  let samples =
    Array.init 30_000 (fun _ -> Rng.gaussian rng ~mu:7.0 ~sigma:3.0)
  in
  let p = Pdf.of_samples ~n:80 samples in
  check_close_abs ~tol:0.1 "histogram mean" 7.0 (Pdf.mean p);
  check_close_abs ~tol:0.1 "histogram std" 3.0 (Pdf.std p);
  check_raises_invalid "too few samples" (fun () ->
      ignore (Pdf.of_samples [| 1.0 |]))

let test_sample_statistics () =
  let p = gauss ~mu:(-2.0) ~sigma:0.8 () in
  let rng = Rng.create 77 in
  let samples = Array.init 20_000 (fun _ -> Pdf.sample p rng) in
  let s = Stats.summarize samples in
  check_close_abs ~tol:0.03 "inverse-cdf sampling mean" (-2.0) s.Stats.mean;
  check_close_abs ~tol:0.03 "inverse-cdf sampling std" 0.8 s.Stats.std

let test_ks_distance () =
  let p = gauss ~mu:0.0 ~sigma:1.0 () in
  let q = gauss ~mu:0.0 ~sigma:1.0 () in
  check_close_abs ~tol:1e-6 "identical PDFs" 0.0 (Pdf.ks_distance p q);
  let r = gauss ~mu:3.0 ~sigma:1.0 () in
  check_true "separated PDFs have large KS" (Pdf.ks_distance p r > 0.8)

let prop_quantile_in_support =
  qcheck "quantile lies in support"
    QCheck.(pair (float_range 0.0 1.0) (float_range 0.1 5.0))
    (fun (q, sigma) ->
      let p = gauss ~mu:0.0 ~sigma () in
      let x = Pdf.quantile p q in
      x >= p.Pdf.lo -. 1e-9 && x <= Pdf.hi p +. 1e-9)

let prop_cdf_monotone =
  qcheck "cdf monotone on random grids"
    QCheck.(pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (a, b) ->
      let p = gauss () in
      let lo = Float.min a b and hi = Float.max a b in
      Pdf.cdf p lo <= Pdf.cdf p hi +. 1e-12)

let prop_affine_mean =
  qcheck "affine transforms the mean affinely"
    QCheck.(pair (float_range (-3.0) 3.0) (float_range 0.1 4.0))
    (fun (add, mul) ->
      let p = gauss ~mu:1.0 ~sigma:0.5 () in
      let q = Pdf.affine p ~mul ~add in
      Float.abs (Pdf.mean q -. ((Pdf.mean p *. mul) +. add)) < 1e-6)

let suite =
  ( "pdf",
    [ case "make normalizes" test_make_normalizes;
      case "make rejects invalid input" test_make_invalid;
      case "grid geometry" test_grid_geometry;
      case "gaussian moments" test_gaussian_moments;
      case "uniform moments" test_uniform_moments;
      case "cdf properties" test_cdf_properties;
      case "quantile inverts cdf" test_quantile_inverts_cdf;
      case "quantile rejects bad q" test_quantile_invalid;
      case "sigma points" test_sigma_point;
      case "mode" test_mode;
      case "density_at" test_density_at;
      case "affine transform" test_affine;
      case "shift and scale" test_shift_scale;
      case "resample conserves mass and moments" test_resample_conserves;
      case "restrict conditions and renormalizes" test_restrict;
      case "point mass" test_point_mass;
      case "histogram from samples" test_of_samples;
      case "inverse-cdf sampling" test_sample_statistics;
      case "ks distance" test_ks_distance;
      prop_quantile_in_support;
      prop_cdf_monotone;
      prop_affine_mean ] )
