open Ssta_prob
open Helpers

let test_run_summary () =
  let rng = Rng.create 21 in
  let r = Mc.run ~n:20_000 rng (fun rng -> Rng.gaussian rng ~mu:4.0 ~sigma:1.0) in
  check_int "sample count" 20_000 r.Mc.summary.Stats.count;
  check_close_abs ~tol:0.05 "sampled mean" 4.0 r.Mc.summary.Stats.mean;
  check_close_abs ~tol:0.05 "sampled std" 1.0 r.Mc.summary.Stats.std;
  check_close_abs ~tol:0.05 "histogram mean matches" r.Mc.summary.Stats.mean
    (Pdf.mean r.Mc.empirical)

let test_run_rejects_small_n () =
  let rng = Rng.create 1 in
  check_raises_invalid "n=1" (fun () ->
      ignore (Mc.run ~n:1 rng (fun _ -> 0.0)))

let test_compare_to_pdf_agreement () =
  let rng = Rng.create 5 in
  let r =
    Mc.run ~n:20_000 rng (fun rng ->
        Rng.truncated_gaussian rng ~mu:0.0 ~sigma:1.0 ~bound:6.0)
  in
  let p = Dist.truncated_gaussian ~n:200 ~mu:0.0 ~sigma:1.0 () in
  let mean_err, std_err, ks = Mc.compare_to_pdf r p in
  check_true "mean err small" (mean_err < 0.03);
  check_true "std err small" (std_err < 0.03);
  check_true "ks small" (ks < 0.02)

let test_compare_to_pdf_disagreement () =
  let rng = Rng.create 6 in
  let r =
    Mc.run ~n:5_000 rng (fun rng -> Rng.gaussian rng ~mu:10.0 ~sigma:1.0)
  in
  let p = Dist.truncated_gaussian ~n:200 ~mu:0.0 ~sigma:1.0 () in
  let mean_err, _, ks = Mc.compare_to_pdf r p in
  check_true "mean err large" (mean_err > 9.0);
  check_true "ks saturates" (ks > 0.9)

let test_determinism () =
  let draw rng = Rng.gaussian rng ~mu:0.0 ~sigma:1.0 in
  let a = Mc.run ~n:100 (Rng.create 3) draw in
  let b = Mc.run ~n:100 (Rng.create 3) draw in
  check_true "same seed, same samples" (a.Mc.samples = b.Mc.samples)

let suite =
  ( "mc",
    [ case "run summarizes samples" test_run_summary;
      case "run rejects tiny n" test_run_rejects_small_n;
      case "agreement with matching pdf" test_compare_to_pdf_agreement;
      case "disagreement detected" test_compare_to_pdf_disagreement;
      case "deterministic in the seed" test_determinism ] )
