(** Reader/writer for the ISCAS85 [.bench] netlist format.

    The format used to distribute the benchmark circuits the paper
    evaluates on:

    {v
      # comment
      INPUT(G1)
      OUTPUT(G17)
      G10 = NAND(G1, G3)
      G11 = NOT(G5)
    v}

    Signals may be referenced before their defining line; the parser
    resolves definitions in dependency order (the file must still be
    combinational — cyclic definitions are an error). *)

exception Parse_error of int * string
(** [(line number, message)]. *)

val parse_string : ?name:string -> string -> Netlist.t
(** Parse the contents of a .bench file.  [name] overrides the circuit
    name (default ["bench"]). *)

val parse_file : string -> Netlist.t
(** Parse from disk; circuit name is the file's basename without
    extension. *)

val to_string : Netlist.t -> string
(** Render a netlist back to .bench text (a parse/print round trip
    preserves structure and names). *)

val write_file : string -> Netlist.t -> unit
