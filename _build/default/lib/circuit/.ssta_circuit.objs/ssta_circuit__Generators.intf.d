lib/circuit/generators.mli: Netlist Ssta_tech
