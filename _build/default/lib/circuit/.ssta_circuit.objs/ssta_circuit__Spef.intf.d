lib/circuit/spef.mli: Netlist Placement Ssta_tech
