lib/circuit/generators.ml: Array Hashtbl List Netlist Printf Ssta_prob Ssta_tech
