lib/circuit/spef.ml: Array Buffer Hashtbl List Netlist Placement Printf Ssta_tech String
