lib/circuit/def_format.mli: Netlist Placement
