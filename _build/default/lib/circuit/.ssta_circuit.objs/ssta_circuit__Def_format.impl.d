lib/circuit/def_format.ml: Array Buffer Float Hashtbl List Netlist Placement Printf Ssta_tech String
