lib/circuit/sequential.ml: Array Bench_format Buffer Hashtbl Int List Netlist Printf Ssta_tech String
