lib/circuit/netlist.ml: Array Format Hashtbl Int List Printf Ssta_tech String
