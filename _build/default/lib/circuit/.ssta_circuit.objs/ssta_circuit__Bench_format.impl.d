lib/circuit/bench_format.ml: Array Buffer Filename Hashtbl List Netlist Printf Ssta_tech String
