lib/circuit/iscas85.mli: Netlist Placement
