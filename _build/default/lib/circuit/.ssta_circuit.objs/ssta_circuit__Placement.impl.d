lib/circuit/placement.ml: Array Float Int Netlist Ssta_prob
