lib/circuit/netlist.mli: Format Ssta_tech
