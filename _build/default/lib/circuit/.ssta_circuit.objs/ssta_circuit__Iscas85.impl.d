lib/circuit/iscas85.ml: Generators List Placement String
