lib/circuit/verilog.ml: Array Buffer Hashtbl List Netlist Printf Ssta_tech String
