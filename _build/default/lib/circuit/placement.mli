(** Gate placement: (x, y) coordinates for every node.

    The paper extracts gate coordinates from DEF files to evaluate the
    quad-tree spatial-correlation model.  Our placer assigns coordinates
    deterministically; the default strategy places gates column-by-column
    in topological-level order, so logically adjacent gates are also
    physically adjacent — the locality that makes spatial correlation
    matter (the paper attributes c1355's rank churn to exactly this). *)

type t = {
  die_width : float;  (** microns *)
  die_height : float;  (** microns *)
  coords : (float * float) array;  (** per node id, microns *)
}

type strategy =
  | Levelized  (** x from topological level, y from order within level *)
  | Row_major  (** simple raster in node order *)
  | Scattered of int  (** uniform random with the given seed *)

val place : ?strategy:strategy -> ?pitch:float -> Netlist.t -> t
(** [place c] computes coordinates for every node of [c].  [pitch] is the
    site spacing in microns (default 10).  The die is sized to the
    bounding box of the placement (at least one pitch in each
    dimension). *)

val coord : t -> int -> float * float
(** Coordinate of a node id. *)

val with_coords : die_width:float -> die_height:float
  -> (float * float) array -> t
(** Wrap externally obtained coordinates (e.g. parsed from DEF).  Raises
    [Invalid_argument] if any coordinate falls outside the die. *)
