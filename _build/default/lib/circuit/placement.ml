type t = {
  die_width : float;
  die_height : float;
  coords : (float * float) array;
}

type strategy = Levelized | Row_major | Scattered of int

let bounding coords pitch =
  let w =
    Array.fold_left (fun acc (x, _) -> Float.max acc x) 0.0 coords +. pitch
  in
  let h =
    Array.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 coords +. pitch
  in
  (w, h)

let levelized pitch c =
  let lv = Netlist.levels c in
  let n = Netlist.num_nodes c in
  let max_level = Array.fold_left Int.max 0 lv in
  let counters = Array.make (max_level + 1) 0 in
  let coords = Array.make n (0.0, 0.0) in
  for id = 0 to n - 1 do
    let level = lv.(id) in
    let row = counters.(level) in
    counters.(level) <- row + 1;
    coords.(id) <- (float_of_int level *. pitch, float_of_int row *. pitch)
  done;
  coords

let row_major pitch c =
  let n = Netlist.num_nodes c in
  let side = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  Array.init n (fun id ->
      ( float_of_int (id mod side) *. pitch,
        float_of_int (id / side) *. pitch ))

let scattered seed pitch c =
  let n = Netlist.num_nodes c in
  let rng = Ssta_prob.Rng.create seed in
  let side = Float.ceil (sqrt (float_of_int n)) *. pitch in
  Array.init n (fun _ ->
      ( Ssta_prob.Rng.uniform rng ~lo:0.0 ~hi:side,
        Ssta_prob.Rng.uniform rng ~lo:0.0 ~hi:side ))

let place ?(strategy = Levelized) ?(pitch = 10.0) c =
  if pitch <= 0.0 then invalid_arg "Placement.place: pitch must be positive";
  let coords =
    match strategy with
    | Levelized -> levelized pitch c
    | Row_major -> row_major pitch c
    | Scattered seed -> scattered seed pitch c
  in
  let die_width, die_height = bounding coords pitch in
  { die_width; die_height; coords }

let coord t id =
  if id < 0 || id >= Array.length t.coords then
    invalid_arg "Placement.coord: bad node id";
  t.coords.(id)

let with_coords ~die_width ~die_height coords =
  Array.iter
    (fun (x, y) ->
      if x < 0.0 || y < 0.0 || x > die_width || y > die_height then
        invalid_arg "Placement.with_coords: coordinate outside die")
    coords;
  { die_width; die_height; coords }
