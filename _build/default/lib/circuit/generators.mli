(** Deterministic circuit generators.

    The ISCAS85 distribution files are not available in this sealed
    environment, so the benchmark circuits are substituted by generated
    ones with matching size and topological character (see DESIGN.md,
    "Substitutions").  Real arithmetic structures are used where the
    original is one: c6288 is a 16x16 array multiplier and c499/c1355 are
    a 32-bit error-correcting-code circuit (c1355 being its XOR-to-NAND
    expansion, exactly as for the originals). *)

val chain : ?kind:Ssta_tech.Gate.kind -> name:string -> length:int -> unit
  -> Netlist.t
(** A linear chain of [length] identical 1-input gates (default [Inv])
    behind a single input — the simplest timing testbench. *)

val and_or_tree : name:string -> width:int -> unit -> Netlist.t
(** Balanced tree of alternating NAND/NOR levels over [width] inputs
    (width >= 2). *)

val ripple_carry_adder : name:string -> bits:int -> unit -> Netlist.t
(** [bits]-bit ripple-carry adder (inputs a0..a(n-1), b0..b(n-1), cin;
    outputs sum bits and carry-out) built from XOR/AND/OR gates. *)

val array_multiplier : name:string -> bits:int -> unit -> Netlist.t
(** [bits] x [bits] array multiplier in NAND-only logic (AND matrix via
    NAND+INV, 9-NAND full adders, 6-NAND half adders).  At [bits = 16]
    this is the c6288 substitute: ~2400 gates, very deep, and with an
    enormous population of near-equal critical paths. *)

val ecc : name:string -> data_bits:int -> check_bits:int -> unit -> Netlist.t
(** Single-error-correcting circuit: [check_bits] parity trees (XOR) over
    overlapping subsets of [data_bits] data inputs plus one check input
    each, followed by a syndrome decoder (NAND/INV) and output correctors
    (XOR).  With 32/8 this is the c499 substitute: XOR-dominated, bushy,
    with many near-identical path delays. *)

val expand_xor : Netlist.t -> Netlist.t
(** Replace every XOR2 by the classic 4-NAND2 realization and every XNOR2
    by 4 NAND2 + INV, preserving the logic function (tested by
    simulation).  Applying this to the c499 substitute yields the c1355
    substitute, mirroring the real benchmark pair. *)

val decoder : name:string -> bits:int -> unit -> Netlist.t
(** [bits]-to-2^[bits] one-hot decoder (inverters + AND trees); a wide,
    shallow circuit with heavy input fan-out (bits in 1..6). *)

val mux_tree : name:string -> select_bits:int -> unit -> Netlist.t
(** 2^[select_bits]-to-1 multiplexer tree built from AND/OR/INV
    (select_bits in 1..6): data inputs d0.., selects s0.., one output. *)

val parity_chain : name:string -> width:int -> unit -> Netlist.t
(** Linear XOR chain computing the parity of [width] inputs — maximum
    depth for its size (the anti-c499). *)

val comparator : name:string -> bits:int -> unit -> Netlist.t
(** [bits]-bit equality comparator: XNOR per bit + AND tree, output 1
    when a = b. *)

type mix = (Ssta_tech.Gate.kind * float) list
(** Weighted gate-kind mix for random circuits. *)

val default_mix : mix
(** NAND2-heavy mix resembling the ISCAS85 profiles. *)

val random_layered :
  ?mix:mix ->
  name:string ->
  inputs:int ->
  outputs:int ->
  gates:int ->
  depth:int ->
  seed:int ->
  unit ->
  Netlist.t
(** Layered random DAG: [gates] gates distributed over [depth] layers;
    each gate draws its kind from [mix] and its fan-ins from earlier
    layers with a strong bias to the immediately preceding layer (so the
    logic depth is close to [depth]).  Deterministic in [seed]. *)
