type style = Random of int | Ecc | Ecc_expanded | Multiplier of int

type paper_row = {
  det_delay_ps : float;
  worst_case_ps : float;
  overestimation_pct : float;
  confidence : float;
  num_critical_paths : int;
  prob_mean_ps : float;
  prob_sigma3_ps : float;
  critical_path_gates : int;
  det_rank_of_prob_critical : int;
  runtime_s : float;
}

type spec = {
  name : string;
  inputs : int;
  outputs : int;
  gates : int;
  style : style;
  seed : int;
  paper : paper_row;
}

let row det wc pct c n mean s3 cg rank rt =
  { det_delay_ps = det; worst_case_ps = wc; overestimation_pct = pct;
    confidence = c; num_critical_paths = n; prob_mean_ps = mean;
    prob_sigma3_ps = s3; critical_path_gates = cg;
    det_rank_of_prob_critical = rank; runtime_s = rt }

(* Depths for the random circuits follow Table 2's critical-path gate
   counts (column 10). *)
let all =
  [ { name = "c432"; inputs = 36; outputs = 7; gates = 160;
      style = Random 16; seed = 432;
      paper = row 266.771 545.009 56.61 0.05 32 266.640 347.996 16 1 0.2 };
    { name = "c499"; inputs = 41; outputs = 32; gates = 202; style = Ecc;
      seed = 499;
      paper = row 180.004 358.336 49.94 0.05 58 179.183 238.979 11 40 0.6 };
    { name = "c880"; inputs = 60; outputs = 26; gates = 383;
      style = Random 23; seed = 880;
      paper = row 205.999 421.535 58.68 0.05 3 206.036 265.655 23 1 0.05 };
    { name = "c1355"; inputs = 41; outputs = 32; gates = 546;
      style = Ecc_expanded; seed = 1355;
      paper = row 241.245 486.283 52.46 0.05 1596 240.180 318.963 24 902 27.0 };
    { name = "c1908"; inputs = 33; outputs = 25; gates = 880;
      style = Random 40; seed = 1908;
      paper = row 326.109 675.068 58.07 0.05 5 324.403 427.082 40 5 0.05 };
    { name = "c2670"; inputs = 233; outputs = 140; gates = 1269;
      style = Random 32; seed = 2670;
      paper = row 375.465 762.627 57.26 0.1 74 373.216 484.960 32 18 1.5 };
    { name = "c3540"; inputs = 50; outputs = 22; gates = 1669;
      style = Random 41; seed = 3540;
      paper = row 459.501 903.289 48.32 0.05 32 458.431 609.015 41 8 0.5 };
    { name = "c5315"; inputs = 178; outputs = 123; gates = 2307;
      style = Random 48; seed = 5315;
      paper = row 381.292 775.375 50.69 0.05 5 381.177 514.552 48 1 0.4 };
    { name = "c6288"; inputs = 32; outputs = 32; gates = 2416;
      style = Multiplier 16; seed = 6288;
      paper = row 1033.433 2163.213 62.22 0.001 896 1033.531 1333.470 124 1 15.0 };
    { name = "c7552"; inputs = 207; outputs = 108; gates = 3513;
      style = Random 21; seed = 7552;
      paper = row 383.688 754.628 51.57 0.05 5 383.557 497.886 21 1 0.4 } ]

let names = List.map (fun s -> s.name) all
let by_name n = List.find_opt (fun s -> String.equal s.name n) all

let build spec =
  match spec.style with
  | Ecc -> Generators.ecc ~name:spec.name ~data_bits:32 ~check_bits:8 ()
  | Ecc_expanded ->
      let base = Generators.ecc ~name:spec.name ~data_bits:32 ~check_bits:8 () in
      Generators.expand_xor base
  | Multiplier bits -> Generators.array_multiplier ~name:spec.name ~bits ()
  | Random depth ->
      Generators.random_layered ~name:spec.name ~inputs:spec.inputs
        ~outputs:spec.outputs ~gates:spec.gates ~depth ~seed:spec.seed ()

let build_placed spec =
  let c = build spec in
  (c, Placement.place c)
