(** Sequential (clocked) circuits.

    The ISCAS85 suite the paper uses is combinational, but its sequential
    sibling (ISCAS89, same .bench format plus [G7 = DFF(G14)] lines) is
    what real designs look like.  A sequential circuit is represented in
    the standard way: a combinational core in which every register
    contributes a pseudo primary input (its Q pin) and a pseudo primary
    output (its D pin).  All the timing machinery then applies unchanged
    to the core, and the minimum clock period is the core's critical
    delay plus the setup time. *)

type register = {
  q : int;  (** core node id of the register output (a primary input) *)
  d : int;  (** core node id of the register data input (marked output) *)
  reg_name : string;
}

type t = {
  name : string;
  core : Netlist.t;  (** combinational core with pseudo PI/PO *)
  registers : register array;
  real_inputs : int;  (** the first [real_inputs] PIs are true inputs;
                          the rest are register Q pins *)
  real_output_ids : int array;  (** the circuit's true primary outputs *)
}

val num_registers : t -> int

val is_register_q : t -> int -> bool
(** Whether a core PI is a register output. *)

val is_register_d : t -> int -> bool
(** Whether a core node is some register's data input. *)

val of_netlist : Netlist.t -> t
(** Wrap a purely combinational netlist (no registers). *)

val parse_bench : ?name:string -> string -> t
(** Parse .bench text that may contain [DFF(...)] definitions (ISCAS89
    dialect).  Raises {!Bench_format.Parse_error} on malformed input. *)

val to_bench : t -> string
(** Render back to .bench with DFF lines (round-trips). *)

val simulate :
  t -> state:bool array -> inputs:bool array -> bool array * bool array
(** One clock cycle: [(outputs, next_state)] for the given register
    state and primary-input values.  [state] has {!num_registers}
    entries; [inputs] the circuit's true inputs. *)

val pipeline : ?stages:int -> Netlist.t -> t
(** Insert register ranks into a combinational circuit, cutting its
    topological levels into [stages] (default 2) roughly equal bands; a
    signal crossing several cuts goes through a register chain.  Stage
    count 1 returns the wrapped original.  Logic is preserved with a
    latency of [stages - 1] cycles (tested by simulation). *)
