(** The ISCAS85 benchmark suite, as substituted circuits.

    Each spec records the real benchmark's vital statistics (I/O counts,
    gate count, critical-path gate count) together with the paper's
    Table 2 reference values, and builds a deterministic substitute
    circuit of the same size and topological character (see DESIGN.md,
    "Substitutions").  [c6288] is a real 16x16 array multiplier and
    [c1355] is the XOR-to-NAND expansion of the [c499] ECC circuit —
    mirroring what the actual benchmarks are. *)

type style =
  | Random of int  (** layered random DAG with the given depth *)
  | Ecc  (** 32-data/8-check error-correcting circuit (c499) *)
  | Ecc_expanded  (** the same with XORs expanded to NANDs (c1355) *)
  | Multiplier of int  (** n x n array multiplier (c6288) *)

type paper_row = {
  det_delay_ps : float;  (** Table 2 col. 3: critical path delay *)
  worst_case_ps : float;  (** col. 4 *)
  overestimation_pct : float;  (** col. 5 *)
  confidence : float;  (** col. 6: the C constant used *)
  num_critical_paths : int;  (** col. 7 *)
  prob_mean_ps : float;  (** col. 8 *)
  prob_sigma3_ps : float;  (** col. 9: 3-sigma point *)
  critical_path_gates : int;  (** col. 10 *)
  det_rank_of_prob_critical : int;  (** col. 11 *)
  runtime_s : float;  (** col. 12 *)
}
(** The row the paper reports for this circuit — kept as ground truth for
    EXPERIMENTS.md comparisons. *)

type spec = {
  name : string;
  inputs : int;
  outputs : int;
  gates : int;  (** real benchmark gate count (= Table 2 col. 2) *)
  style : style;
  seed : int;
  paper : paper_row;
}

val all : spec list
(** The ten circuits of Table 2, in the paper's order. *)

val by_name : string -> spec option
val names : string list

val build : spec -> Netlist.t
(** Construct the substitute circuit (deterministic in [spec.seed]). *)

val build_placed : spec -> Netlist.t * Placement.t
(** Circuit plus its default placement. *)
