module Gate = Ssta_tech.Gate
module Rng = Ssta_prob.Rng
module B = Netlist.Builder

let chain ?(kind = Gate.Inv) ~name ~length () =
  if length < 1 then invalid_arg "Generators.chain: length must be >= 1";
  if Gate.fan_in kind <> 1 then
    invalid_arg "Generators.chain: kind must be a 1-input gate";
  let b = B.create name in
  let input = B.add_input b "in" in
  let rec extend prev i =
    if i >= length then prev
    else extend (B.add_gate b kind [ prev ]) (i + 1)
  in
  let last = extend input 0 in
  B.mark_output b last;
  B.finish b

let and_or_tree ~name ~width () =
  if width < 2 then invalid_arg "Generators.and_or_tree: width must be >= 2";
  let b = B.create name in
  let leaves =
    List.init width (fun i -> B.add_input b (Printf.sprintf "in%d" i))
  in
  let rec reduce level nodes =
    match nodes with
    | [] -> invalid_arg "Generators.and_or_tree: empty"
    | [ last ] -> last
    | _ ->
        let kind = if level mod 2 = 0 then Gate.Nand 2 else Gate.Nor 2 in
        let rec pair = function
          | a :: c :: rest -> B.add_gate b kind [ a; c ] :: pair rest
          | [ a ] -> [ B.add_gate b Gate.Inv [ a ] ]
          | [] -> []
        in
        reduce (level + 1) (pair nodes)
  in
  let root = reduce 0 leaves in
  B.mark_output b root;
  B.finish b

(* Full adder from XOR/AND/OR: 5 gates. *)
let full_adder_xag b a c cin =
  let x1 = B.add_gate b Gate.Xor2 [ a; c ] in
  let s = B.add_gate b Gate.Xor2 [ x1; cin ] in
  let a1 = B.add_gate b (Gate.And 2) [ a; c ] in
  let a2 = B.add_gate b (Gate.And 2) [ x1; cin ] in
  let cout = B.add_gate b (Gate.Or 2) [ a1; a2 ] in
  (s, cout)

let ripple_carry_adder ~name ~bits () =
  if bits < 1 then invalid_arg "Generators.ripple_carry_adder: bits >= 1";
  let b = B.create name in
  let a = Array.init bits (fun i -> B.add_input b (Printf.sprintf "a%d" i)) in
  let bb = Array.init bits (fun i -> B.add_input b (Printf.sprintf "b%d" i)) in
  let cin = B.add_input b "cin" in
  let carry = ref cin in
  for i = 0 to bits - 1 do
    let s, cout = full_adder_xag b a.(i) bb.(i) !carry in
    B.mark_output b s;
    carry := cout
  done;
  B.mark_output b !carry;
  B.finish b

(* NAND-only adders, as in the real c6288 cell style.
   4-NAND XOR; 9-NAND full adder; 6-NAND half adder. *)
let nand2 b x y = B.add_gate b (Gate.Nand 2) [ x; y ]

let xor_nand b x y =
  let m1 = nand2 b x y in
  let m2 = nand2 b x m1 in
  let m3 = nand2 b y m1 in
  (nand2 b m2 m3, m1)

let full_adder_nand b a c cin =
  let x, m1 = xor_nand b a c in
  let s, m4 = xor_nand b x cin in
  let cout = nand2 b m1 m4 in
  (s, cout)

let half_adder_nand b a c =
  let s, m1 = xor_nand b a c in
  let cout = B.add_gate b Gate.Inv [ m1 ] in
  (s, cout)

let array_multiplier ~name ~bits () =
  if bits < 2 then invalid_arg "Generators.array_multiplier: bits >= 2";
  let b = B.create name in
  let a = Array.init bits (fun i -> B.add_input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init bits (fun i -> B.add_input b (Printf.sprintf "b%d" i)) in
  let pp i j = B.add_gate b (Gate.And 2) [ a.(j); bv.(i) ] in
  (* acc.(j) holds the running sum bit of weight row+j. *)
  let acc = Array.init bits (fun j -> pp 0 j) in
  let row_carry = ref None in
  B.mark_output b acc.(0);
  for i = 1 to bits - 1 do
    let carry = ref None in
    let next = Array.make bits 0 in
    for j = 0 to bits - 1 do
      let top = if j < bits - 1 then Some acc.(j + 1) else !row_carry in
      let p = pp i j in
      let s, cout =
        match top, !carry with
        | Some t, Some c ->
            let s, cout = full_adder_nand b t p c in
            (s, Some cout)
        | Some t, None ->
            let s, cout = half_adder_nand b t p in
            (s, Some cout)
        | None, Some c ->
            let s, cout = half_adder_nand b p c in
            (s, Some cout)
        | None, None -> (p, None)
      in
      next.(j) <- s;
      carry := cout
    done;
    row_carry := !carry;
    Array.blit next 0 acc 0 bits;
    B.mark_output b acc.(0)
  done;
  for j = 1 to bits - 1 do
    B.mark_output b acc.(j)
  done;
  (match !row_carry with Some c -> B.mark_output b c | None -> ());
  B.finish b

let ecc ~name ~data_bits ~check_bits () =
  if data_bits < 4 || check_bits < 2 then
    invalid_arg "Generators.ecc: need data_bits >= 4 and check_bits >= 2";
  let b = B.create name in
  let data =
    Array.init data_bits (fun i -> B.add_input b (Printf.sprintf "d%d" i))
  in
  let check =
    Array.init check_bits (fun j -> B.add_input b (Printf.sprintf "p%d" j))
  in
  (* Overlapping parity subsets: data bit i participates in check j when
     (i * (2j + 3)) mod 8 < 3, and additionally when i = j (mod
     check_bits) so that every data bit is covered by at least one check
     (an uncovered bit would be "corrected" spuriously on clean words).
     The exact code is irrelevant to timing; the bushy XOR trees with
     near-equal depths are what matters. *)
  let member i j = (i * ((2 * j) + 3)) mod 8 < 3 || i mod check_bits = j in
  let membership j =
    Array.to_list (Array.mapi (fun i d -> (i, d)) data)
    |> List.filter (fun (i, _) -> member i j)
    |> List.map snd
  in
  (* Balanced XOR tree. *)
  let rec xor_tree nodes =
    match nodes with
    | [] -> invalid_arg "Generators.ecc: empty parity subset"
    | [ last ] -> last
    | _ ->
        let rec pair = function
          | a :: c :: rest -> B.add_gate b Gate.Xor2 [ a; c ] :: pair rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        xor_tree (pair nodes)
  in
  let syndrome =
    Array.init check_bits (fun j ->
        let parity = xor_tree (membership j) in
        B.add_gate b Gate.Xor2 [ parity; check.(j) ])
  in
  let syndrome_not =
    Array.map (fun s -> B.add_gate b Gate.Inv [ s ]) syndrome
  in
  (* Corrector per data bit: AND of the syndrome literals matching the
     bit's membership pattern, then XOR into the data bit. *)
  Array.iteri
    (fun i d ->
      let literals =
        List.init check_bits (fun j ->
            if member i j then syndrome.(j) else syndrome_not.(j))
      in
      let hit = B.add_gate b (Gate.And check_bits) literals in
      let corrected = B.add_gate b Gate.Xor2 [ d; hit ] in
      B.mark_output b corrected)
    data;
  B.finish b

let expand_xor (c : Netlist.t) =
  let b = B.create c.Netlist.name in
  let remap = Array.make (Netlist.num_nodes c) (-1) in
  for i = 0 to c.Netlist.num_inputs - 1 do
    remap.(i) <- B.add_input b (Netlist.node_name c i)
  done;
  Array.iter
    (fun (g : Netlist.gate) ->
      let ins = Array.map (fun f -> remap.(f)) g.Netlist.fanins in
      let out =
        match g.Netlist.kind, Array.to_list ins with
        | Gate.Xor2, [ x; y ] ->
            let out, _ = xor_nand b x y in
            out
        | Gate.Xnor2, [ x; y ] ->
            let out, _ = xor_nand b x y in
            B.add_gate b Gate.Inv [ out ]
        | kind, ins -> B.add_gate b kind ins
      in
      remap.(g.Netlist.id) <- out)
    c.Netlist.gates;
  Array.iter (fun o -> B.mark_output b remap.(o)) c.Netlist.outputs;
  B.finish b

let decoder ~name ~bits () =
  if bits < 1 || bits > 6 then
    invalid_arg "Generators.decoder: bits must be in 1..6";
  let b = B.create name in
  let sel = Array.init bits (fun i -> B.add_input b (Printf.sprintf "s%d" i)) in
  let inv = Array.map (fun s -> B.add_gate b Gate.Inv [ s ]) sel in
  for word = 0 to (1 lsl bits) - 1 do
    let literals =
      List.init bits (fun i ->
          if (word lsr i) land 1 = 1 then sel.(i) else inv.(i))
    in
    let out =
      if bits = 1 then B.add_gate b Gate.Buf literals
      else B.add_gate b (Gate.And bits) literals
    in
    B.mark_output b out
  done;
  B.finish b

let mux_tree ~name ~select_bits () =
  if select_bits < 1 || select_bits > 6 then
    invalid_arg "Generators.mux_tree: select_bits must be in 1..6";
  let b = B.create name in
  let n = 1 lsl select_bits in
  let data = Array.init n (fun i -> B.add_input b (Printf.sprintf "d%d" i)) in
  let sel =
    Array.init select_bits (fun i -> B.add_input b (Printf.sprintf "s%d" i))
  in
  (* level l merges pairs under select bit l: out = (not s & a) | (s & b) *)
  let rec reduce level nodes =
    match nodes with
    | [ root ] -> root
    | _ ->
        let s = sel.(level) in
        let ns = B.add_gate b Gate.Inv [ s ] in
        let rec pair = function
          | a :: c :: rest ->
              let ta = B.add_gate b (Gate.And 2) [ ns; a ] in
              let tc = B.add_gate b (Gate.And 2) [ s; c ] in
              B.add_gate b (Gate.Or 2) [ ta; tc ] :: pair rest
          | [ a ] -> [ a ]
          | [] -> []
        in
        reduce (level + 1) (pair nodes)
  in
  let root = reduce 0 (Array.to_list data) in
  B.mark_output b root;
  B.finish b

let parity_chain ~name ~width () =
  if width < 2 then invalid_arg "Generators.parity_chain: width must be >= 2";
  let b = B.create name in
  let inputs =
    Array.init width (fun i -> B.add_input b (Printf.sprintf "i%d" i))
  in
  let acc = ref inputs.(0) in
  for i = 1 to width - 1 do
    acc := B.add_gate b Gate.Xor2 [ !acc; inputs.(i) ]
  done;
  B.mark_output b !acc;
  B.finish b

let comparator ~name ~bits () =
  if bits < 1 then invalid_arg "Generators.comparator: bits must be >= 1";
  let b = B.create name in
  let a = Array.init bits (fun i -> B.add_input b (Printf.sprintf "a%d" i)) in
  let bv = Array.init bits (fun i -> B.add_input b (Printf.sprintf "b%d" i)) in
  let eq =
    Array.to_list (Array.mapi (fun i x -> B.add_gate b Gate.Xnor2 [ x; bv.(i) ]) a)
  in
  let rec and_tree nodes =
    match nodes with
    | [] -> invalid_arg "Generators.comparator: empty"
    | [ root ] -> root
    | _ ->
        let rec pair = function
          | x :: y :: rest -> B.add_gate b (Gate.And 2) [ x; y ] :: pair rest
          | [ x ] -> [ x ]
          | [] -> []
        in
        and_tree (pair nodes)
  in
  let root =
    if bits = 1 then B.add_gate b Gate.Buf eq else and_tree eq
  in
  B.mark_output b root;
  B.finish b

type mix = (Gate.kind * float) list

let default_mix =
  [ (Gate.Nand 2, 0.35); (Gate.Nor 2, 0.15); (Gate.Inv, 0.18);
    (Gate.And 2, 0.08); (Gate.Or 2, 0.06); (Gate.Nand 3, 0.06);
    (Gate.Nor 3, 0.03); (Gate.Xor2, 0.04); (Gate.Xnor2, 0.02);
    (Gate.Buf, 0.03) ]

let pick_kind rng mix =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  let target = Rng.float rng *. total in
  let rec walk acc = function
    | [] -> invalid_arg "Generators.pick_kind: empty mix"
    | [ (k, _) ] -> k
    | (k, w) :: rest -> if acc +. w >= target then k else walk (acc +. w) rest
  in
  walk 0.0 mix

let random_layered ?(mix = default_mix) ~name ~inputs ~outputs ~gates ~depth
    ~seed () =
  if inputs < 2 then invalid_arg "Generators.random_layered: inputs >= 2";
  if outputs < 1 then invalid_arg "Generators.random_layered: outputs >= 1";
  if depth < 1 then invalid_arg "Generators.random_layered: depth >= 1";
  if gates < depth then
    invalid_arg "Generators.random_layered: gates must be >= depth";
  let rng = Rng.create seed in
  let b = B.create name in
  let input_ids =
    Array.init inputs (fun i -> B.add_input b (Printf.sprintf "i%d" i))
  in
  (* Layer sizes: front-loaded so early layers are wide (cone shape). *)
  let sizes = Array.make depth (gates / depth) in
  let remainder = gates - (depth * (gates / depth)) in
  for i = 0 to remainder - 1 do
    sizes.(i mod depth) <- sizes.(i mod depth) + 1
  done;
  (* layers.(0) = primary inputs; layers.(l) for l >= 1 = gate layers. *)
  let layers = Array.make (depth + 1) [||] in
  layers.(0) <- input_ids;
  let pick_source_layer current =
    (* Geometric bias towards the immediately preceding layer. *)
    let rec back l =
      if l <= 0 then 0
      else if Rng.float rng < 0.55 then l
      else back (l - 1)
    in
    back (current - 1)
  in
  let pick_node layer_index =
    let layer = layers.(layer_index) in
    layer.(Rng.int rng (Array.length layer))
  in
  for l = 1 to depth do
    let size = sizes.(l - 1) in
    let ids =
      Array.init size (fun _ ->
          let kind = pick_kind rng mix in
          let arity = Gate.fan_in kind in
          (* First fan-in from the previous layer keeps depth tight. *)
          let first = pick_node (l - 1) in
          let rest =
            List.init (arity - 1) (fun _ -> pick_node (pick_source_layer l))
          in
          B.add_gate b kind (first :: rest))
    in
    layers.(l) <- ids
  done;
  (* Primary outputs: the whole last layer, then earlier-layer gates up to
     the requested count; true sinks are promoted in a second pass below. *)
  let marked = Hashtbl.create 64 in
  let mark id =
    if not (Hashtbl.mem marked id) then begin
      Hashtbl.add marked id ();
      B.mark_output b id
    end
  in
  Array.iter mark layers.(depth);
  let l = ref (depth - 1) in
  while Hashtbl.length marked < outputs && !l >= 1 do
    let layer = layers.(!l) in
    let i = ref 0 in
    while Hashtbl.length marked < outputs && !i < Array.length layer do
      mark layer.(!i);
      i := !i + 2
    done;
    decr l
  done;
  let c = B.finish b in
  (* Any remaining sink (fanout-0 gate not marked) is promoted to an
     output so that every gate lies on some PI->PO path. *)
  let fc = Netlist.fanout_counts c in
  let extra = ref [] in
  Array.iteri
    (fun id n -> if n = 0 && not (Netlist.is_input c id) then extra := id :: !extra)
    fc;
  if !extra = [] then c
  else begin
    (* Rebuild with the extra outputs included. *)
    let b2 = B.create name in
    let remap = Array.make (Netlist.num_nodes c) (-1) in
    for i = 0 to c.Netlist.num_inputs - 1 do
      remap.(i) <- B.add_input b2 (Netlist.node_name c i)
    done;
    Array.iter
      (fun (g : Netlist.gate) ->
        let ins = Array.to_list (Array.map (fun f -> remap.(f)) g.Netlist.fanins) in
        remap.(g.Netlist.id) <-
          B.add_gate b2 ~name:(Netlist.node_name c g.Netlist.id) g.Netlist.kind ins)
      c.Netlist.gates;
    Array.iter (fun o -> B.mark_output b2 remap.(o)) c.Netlist.outputs;
    List.iter (fun o -> B.mark_output b2 remap.(o)) !extra;
    B.finish b2
  end
