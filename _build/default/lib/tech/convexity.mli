(** Convexity analysis — Section 2.5 of the paper.

    The zeroth-order freezing of delay derivatives at nominal (Eq. 11) is
    justified when the change of the derivative over a few sigma is small
    relative to the derivative itself:
    [|d2 t_p / d x^2 * sigma_x| << |d t_p / d x|].  This module computes
    both sides so the claim can be checked per gate and per RV. *)

type entry = {
  rv : Params.rv;
  first : float;  (** |d t_p / d x| at nominal *)
  curvature_step : float;  (** |d2 t_p / d x^2 * sigma_x| *)
  ratio : float;  (** curvature_step / first; 0 when first is 0 *)
}

type row = { gate : Gate.kind; entries : entry list }

val analyze : ?fanout:int -> Gate.kind -> row

val max_ratio : row -> float
(** Worst ratio across the five RVs; the paper argues this stays well
    below 1 (an order of magnitude, even for 3-sigma excursions). *)

val acceptable : ?threshold:float -> row -> bool
(** [acceptable row] is true when a 3-sigma excursion changes every
    derivative by less than [threshold] (default 0.5) of its value,
    i.e. [3 * max_ratio < threshold]. *)

val pp_table : Format.formatter -> row list -> unit
