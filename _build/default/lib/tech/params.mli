(** Process and environment parameters.

    The paper models five random variables (Section 2.2): oxide thickness
    [t_ox], effective channel length [L_eff], supply voltage [V_dd], and
    the NMOS/PMOS threshold voltages [V_Tn], [|V_Tp|].  This module fixes
    the 130 nm nominal operating point and the typical standard
    deviations taken from Nassif, "Delay Variability: Sources, Impacts and
    Trends" (ISSCC 2000), as the paper does. *)

type rv = Tox | Leff | Vdd | Vtn | Vtp
(** The five random variables.  [Vtp] stands for the magnitude
    [|V_Tp|]. *)

val all_rvs : rv list
(** The five RVs in the paper's order: t_ox, L_eff, V_dd, V_Tn, |V_Tp|. *)

val rv_name : rv -> string
(** Display name, e.g. ["L_eff"]. *)

val rv_index : rv -> int
(** Position of the RV in {!all_rvs} (0..4). *)

type t = {
  tox : float;  (** oxide thickness, m *)
  leff : float;  (** effective channel length, m *)
  vdd : float;  (** supply voltage, V *)
  vtn : float;  (** NMOS threshold voltage, V *)
  vtp : float;  (** PMOS threshold magnitude |V_Tp|, V *)
}
(** A full assignment of the five parameters. *)

val get : t -> rv -> float
val set : t -> rv -> float -> t

val add : t -> t -> t
(** Component-wise sum (used to add intra-die deviations to an inter-die
    operating point). *)

val map2 : (float -> float -> float) -> t -> t -> t
val zero : t

val nominal : t
(** 130 nm nominal operating point. *)

val sigma : rv -> float
(** Typical total standard deviation of each RV (Nassif ISSCC'00 values as
    quoted in the paper's Table 1 caption: sigma_tox = 0.15 nm,
    sigma_Leff = 15 nm, sigma_Vdd = 40 mV, sigma_Vtn = 13 mV,
    sigma_Vtp = 14 mV). *)

val sigmas : t
(** All five sigmas as a parameter record. *)

val truncation_bound : float
(** The paper truncates all parameter PDFs at their 6-sigma points. *)

val is_physical : t -> bool
(** Sanity check that a parameter assignment keeps the delay model in its
    valid domain: positive geometry and [V_dd - V_t > 0],
    [1.5 V_dd - 2 V_t > 0] for both thresholds. *)

val pp : Format.formatter -> t -> unit
