type entry = {
  rv : Params.rv;
  first : float;
  curvature_step : float;
  ratio : float;
}

type row = { gate : Gate.kind; entries : entry list }

let analyze ?(fanout = 2) kind =
  let e = Gate.electrical ~fanout kind in
  let entries =
    List.map
      (fun rv ->
        let first = Float.abs (Derivatives.first e Params.nominal rv) in
        let curvature_step =
          Float.abs (Derivatives.second e Params.nominal rv *. Params.sigma rv)
        in
        let ratio = if first > 0.0 then curvature_step /. first else 0.0 in
        { rv; first; curvature_step; ratio })
      Params.all_rvs
  in
  { gate = kind; entries }

let max_ratio row =
  List.fold_left (fun acc e -> Float.max acc e.ratio) 0.0 row.entries

let acceptable ?(threshold = 0.5) row = 3.0 *. max_ratio row < threshold

let pp_table fmt rows =
  List.iter
    (fun row ->
      Format.fprintf fmt "gate %-6s max ratio %.4f%s@."
        (Gate.name row.gate) (max_ratio row)
        (if acceptable row then " (ok)" else " (VIOLATES approximation)"))
    rows
