type rv = Tox | Leff | Vdd | Vtn | Vtp

let all_rvs = [ Tox; Leff; Vdd; Vtn; Vtp ]

let rv_name = function
  | Tox -> "t_ox"
  | Leff -> "L_eff"
  | Vdd -> "V_dd"
  | Vtn -> "V_Tn"
  | Vtp -> "|V_Tp|"

let rv_index = function Tox -> 0 | Leff -> 1 | Vdd -> 2 | Vtn -> 3 | Vtp -> 4

type t = { tox : float; leff : float; vdd : float; vtn : float; vtp : float }

let get p = function
  | Tox -> p.tox
  | Leff -> p.leff
  | Vdd -> p.vdd
  | Vtn -> p.vtn
  | Vtp -> p.vtp

let set p rv v =
  match rv with
  | Tox -> { p with tox = v }
  | Leff -> { p with leff = v }
  | Vdd -> { p with vdd = v }
  | Vtn -> { p with vtn = v }
  | Vtp -> { p with vtp = v }

let map2 f a b =
  { tox = f a.tox b.tox;
    leff = f a.leff b.leff;
    vdd = f a.vdd b.vdd;
    vtn = f a.vtn b.vtn;
    vtp = f a.vtp b.vtp }

let add = map2 ( +. )
let zero = { tox = 0.0; leff = 0.0; vdd = 0.0; vtn = 0.0; vtp = 0.0 }

(* 130 nm operating point.  t_ox is calibrated so that the sensitivity
   ratios of the paper's Table 1 are reproduced (the quoted
   sigma_tox / t_ox and sigma_Leff / L_eff relative spreads imply
   t_ox ~ 4.5 nm for their delay model; see DESIGN.md section 3). *)
let nominal =
  { tox = 4.5e-9; leff = 130e-9; vdd = 1.3; vtn = 0.33; vtp = 0.33 }

let sigma = function
  | Tox -> 0.15e-9
  | Leff -> 15e-9
  | Vdd -> 40e-3
  | Vtn -> 13e-3
  | Vtp -> 14e-3

let sigmas =
  { tox = sigma Tox;
    leff = sigma Leff;
    vdd = sigma Vdd;
    vtn = sigma Vtn;
    vtp = sigma Vtp }

let truncation_bound = 6.0

let is_physical p =
  p.tox > 0.0 && p.leff > 0.0 && p.vdd > 0.0 && p.vtn >= 0.0 && p.vtp >= 0.0
  && p.vdd -. p.vtn > 0.0
  && p.vdd -. p.vtp > 0.0
  && (1.5 *. p.vdd) -. (2.0 *. p.vtn) > 0.0
  && (1.5 *. p.vdd) -. (2.0 *. p.vtp) > 0.0

let pp fmt p =
  Format.fprintf fmt
    "{tox=%.3gnm leff=%.3gnm vdd=%.3gV vtn=%.3gV vtp=%.3gV}" (p.tox *. 1e9)
    (p.leff *. 1e9) p.vdd p.vtn p.vtp
