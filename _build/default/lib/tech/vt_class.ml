type t = Low | High

let default_shift = 0.060

let params_for ?(shift = default_shift) = function
  | Low -> Params.nominal
  | High ->
      { Params.nominal with
        Params.vtn = Params.nominal.Params.vtn +. shift;
        vtp = Params.nominal.Params.vtp +. shift }

let corner_for ?(shift = default_shift) ?k case cls =
  let base = Corner.point ?k case in
  match cls with
  | Low -> base
  | High ->
      { base with
        Params.vtn = base.Params.vtn +. shift;
        vtp = base.Params.vtp +. shift }

(* ~90 mV/decade subthreshold slope -> s = 0.09 / ln 10. *)
let subthreshold_s = 0.09 /. log 10.0

let leakage ?(shift = default_shift) (e : Gate.electrical) cls =
  let p = params_for ~shift cls in
  let width = e.Gate.wn +. e.Gate.wp in
  width *. exp (-.p.Params.vtn /. subthreshold_s) /. 1e-6

let pp fmt = function
  | Low -> Format.pp_print_string fmt "low-vt"
  | High -> Format.pp_print_string fmt "high-vt"
