(** Corner (best/nominal/worst-case) parameter assignments.

    Traditional deterministic timing analysis evaluates delay with every
    parameter pushed to a corner.  Delay increases with t_ox and L_eff
    and decreases with V_dd; it increases with both threshold magnitudes,
    so the worst-case corner is
    (t_ox + k s, L_eff + k s, V_dd - k s, V_Tn + k s, |V_Tp| + k s).

    The paper never states its corner multiplier; its Table 2
    worst-case vs. 3-sigma-point overestimations (~55%) imply k ~ 3.5
    for this calibration, the default (see DESIGN.md).  The headline claim — corner
    analysis overestimates the probabilistic 3-sigma point by tens of
    percent — holds for any k >= 3. *)

type case = Best | Nominal | Worst

val point : ?k:float -> case -> Params.t
(** Parameter assignment for a corner; [k] is the sigma multiplier
    (default 3.5, ignored for [Nominal]). *)

val gate_delay : ?k:float -> case -> Gate.electrical -> float
(** Gate delay at a corner. *)

val path_delay : ?k:float -> case -> Gate.electrical list -> float
(** Path delay with all gates at the same corner — the classical
    fully-correlated worst-case analysis the paper compares against. *)

val default_k : float
(** The default corner multiplier (3.5). *)
