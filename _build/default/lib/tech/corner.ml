type case = Best | Nominal | Worst

let default_k = 3.5

let point ?(k = default_k) case =
  let sign =
    match case with Best -> -1.0 | Nominal -> 0.0 | Worst -> 1.0
  in
  let shift rv base direction =
    base +. (direction *. sign *. k *. Params.sigma rv)
  in
  let open Params in
  let p =
    { tox = shift Tox nominal.tox 1.0;
      leff = shift Leff nominal.leff 1.0;
      vdd = shift Vdd nominal.vdd (-1.0);
      vtn = shift Vtn nominal.vtn 1.0;
      vtp = shift Vtp nominal.vtp 1.0 }
  in
  if not (is_physical p) then
    invalid_arg "Corner.point: corner leaves the model validity domain";
  p

let gate_delay ?k case e = Elmore.gate_delay e (point ?k case)
let path_delay ?k case gates = Elmore.path_delay gates (point ?k case)
