(** First-degree sensitivity analysis — reproduces Table 1.

    For each gate type and each RV [x], the impact of a one-sigma
    variation on delay is [|d t_p / d x|_nominal * sigma_x|]
    (Section 2.2; parameters independent, capacitances constant). *)

type entry = {
  rv : Params.rv;
  derivative : float;  (** d t_p / d x at nominal, SI units *)
  sigma : float;  (** total standard deviation of the RV *)
  impact : float;  (** |derivative * sigma|, seconds *)
}

type row = { gate : Gate.kind; entries : entry list }

val analyze : ?fanout:int -> Gate.kind -> row
(** Sensitivity of one gate type (default fan-out 2, as in Table 1). *)

val table1_gates : Gate.kind list
(** The four gate types of Table 1: 2-NAND, 2-NOR, INV, 2-XNOR. *)

val table1 : unit -> row list
(** The full Table 1 reproduction. *)

val dominant : row -> Params.rv
(** The RV with the largest impact (the paper finds L_eff). *)

val pp_table : Format.formatter -> row list -> unit
(** Render rows in the layout of the paper's Table 1 (picoseconds). *)
