(** Interconnect loading model.

    The paper's path-based approach "allows for more complex delay and
    interconnect models" (citing Gattiker et al.).  This module provides
    the placement-aware refinement: instead of a fixed 1 fF wire cap per
    net, the output load of a gate includes a capacitance proportional to
    the Manhattan length of its fan-out net, estimated from gate
    coordinates.  Capacitances stay deterministic, as the paper
    assumes. *)

type params = {
  cap_per_micron : float;  (** F/um of routed wire *)
  via_cap : float;  (** fixed cap per sink pin, F *)
}

val default : params
(** 0.2 fF/um and 0.1 fF per sink — typical 130 nm global-layer values. *)

val net_length : (float * float) -> (float * float) list -> float
(** [net_length driver sinks] is the half-perimeter wire-length estimate
    (microns) of the net: half the perimeter of the bounding box of
    driver and sinks; 0 for an unloaded net. *)

val net_cap : params -> (float * float) -> (float * float) list -> float
(** Wire capacitance of the net in farads. *)
