(** Short-channel Elmore gate-delay model — Eq. (2) of the paper.

    The propagation delay of a gate with coefficients [alpha], [beta]
    (from {!Gate.electrical}) at parameter point X is

    {v
      t_p = 0.345 * (t_ox * L_eff / eps_ox)
            * ( alpha * F(V_dd, V_Tn) + beta * F(V_dd, |V_Tp|) )
      F(v, vt) = v / (v - vt)^1.3 + 1 / (1.5 v - 2 vt)
    v}

    All delays are in seconds; helpers convert to picoseconds. *)

val eps_ox : float
(** Oxide permittivity, F/m (3.9 * eps_0). *)

val elmore_constant : float
(** The 0.345 prefactor of Eq. (1). *)

val voltage_factor : vdd:float -> vt:float -> float
(** The function F above.  Raises [Invalid_argument] outside the model's
    validity domain ([vdd - vt <= 0] or [1.5 vdd - 2 vt <= 0]). *)

val gate_delay : Gate.electrical -> Params.t -> float
(** Full nonlinear delay of one gate at a parameter point (Eq. 2). *)

val nominal_delay : Gate.electrical -> float
(** Delay at {!Params.nominal}. *)

val path_delay : Gate.electrical list -> Params.t -> float
(** Sum of gate delays with {e shared} parameters — the fully correlated
    evaluation used for corner analysis (Eq. 5 with all gates at the same
    point). *)

val ps : float -> float
(** Seconds to picoseconds. *)
