type params = { cap_per_micron : float; via_cap : float }

let default = { cap_per_micron = 0.2e-15; via_cap = 0.1e-15 }

let net_length (dx, dy) sinks =
  match sinks with
  | [] -> 0.0
  | _ ->
      let lo_x, hi_x, lo_y, hi_y =
        List.fold_left
          (fun (lx, hx, ly, hy) (x, y) ->
            (Float.min lx x, Float.max hx x, Float.min ly y, Float.max hy y))
          (dx, dx, dy, dy) sinks
      in
      (* half-perimeter wire length *)
      hi_x -. lo_x +. (hi_y -. lo_y)

let net_cap p driver sinks =
  if p.cap_per_micron < 0.0 || p.via_cap < 0.0 then
    invalid_arg "Wire.net_cap: negative parameters";
  (p.cap_per_micron *. net_length driver sinks)
  +. (float_of_int (List.length sinks) *. p.via_cap)
