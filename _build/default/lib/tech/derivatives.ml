(* Closed-form partials of
     t_p = K * tox * leff * (alpha * F(vdd, vtn) + beta * F(vdd, vtp))
   with F(v, vt) = v (v - vt)^-1.3 + (1.5 v - 2 vt)^-1 and
   K = 0.345 / eps_ox. *)

let f_dv ~vdd ~vt =
  (* dF/dvdd *)
  let h = vdd -. vt in
  let l = (1.5 *. vdd) -. (2.0 *. vt) in
  (h ** -1.3) -. (1.3 *. vdd *. (h ** -2.3)) -. (1.5 /. (l *. l))

let f_dvt ~vdd ~vt =
  (* dF/dvt *)
  let h = vdd -. vt in
  let l = (1.5 *. vdd) -. (2.0 *. vt) in
  (1.3 *. vdd *. (h ** -2.3)) +. (2.0 /. (l *. l))

let f_dv2 ~vdd ~vt =
  (* d2F/dvdd2 *)
  let h = vdd -. vt in
  let l = (1.5 *. vdd) -. (2.0 *. vt) in
  (-2.6 *. (h ** -2.3))
  +. (1.3 *. 2.3 *. vdd *. (h ** -3.3))
  +. (2.0 *. 1.5 *. 1.5 /. (l *. l *. l))

let f_dvt2 ~vdd ~vt =
  (* d2F/dvt2 *)
  let h = vdd -. vt in
  let l = (1.5 *. vdd) -. (2.0 *. vt) in
  (1.3 *. 2.3 *. vdd *. (h ** -3.3)) +. (8.0 /. (l *. l *. l))

let geometry p =
  Elmore.elmore_constant *. p.Params.tox *. p.Params.leff /. Elmore.eps_ox

let voltage_sum (e : Gate.electrical) (p : Params.t) =
  (e.Gate.alpha *. Elmore.voltage_factor ~vdd:p.Params.vdd ~vt:p.Params.vtn)
  +. (e.Gate.beta *. Elmore.voltage_factor ~vdd:p.Params.vdd ~vt:p.Params.vtp)

let first e p rv =
  let open Params in
  match rv with
  | Tox ->
      Elmore.elmore_constant *. p.leff /. Elmore.eps_ox *. voltage_sum e p
  | Leff ->
      Elmore.elmore_constant *. p.tox /. Elmore.eps_ox *. voltage_sum e p
  | Vdd ->
      geometry p
      *. ((e.Gate.alpha *. f_dv ~vdd:p.vdd ~vt:p.vtn)
         +. (e.Gate.beta *. f_dv ~vdd:p.vdd ~vt:p.vtp))
  | Vtn -> geometry p *. e.Gate.alpha *. f_dvt ~vdd:p.vdd ~vt:p.vtn
  | Vtp -> geometry p *. e.Gate.beta *. f_dvt ~vdd:p.vdd ~vt:p.vtp

let gradient e p =
  { Params.tox = first e p Params.Tox;
    leff = first e p Params.Leff;
    vdd = first e p Params.Vdd;
    vtn = first e p Params.Vtn;
    vtp = first e p Params.Vtp }

let second e p rv =
  let open Params in
  match rv with
  | Tox | Leff -> 0.0
  | Vdd ->
      geometry p
      *. ((e.Gate.alpha *. f_dv2 ~vdd:p.vdd ~vt:p.vtn)
         +. (e.Gate.beta *. f_dv2 ~vdd:p.vdd ~vt:p.vtp))
  | Vtn -> geometry p *. e.Gate.alpha *. f_dvt2 ~vdd:p.vdd ~vt:p.vtn
  | Vtp -> geometry p *. e.Gate.beta *. f_dvt2 ~vdd:p.vdd ~vt:p.vtp

let step_of ?(relative_step = 1e-5) p rv =
  let x = Params.get p rv in
  relative_step *. (Float.abs x +. 1e-12)

let first_numeric ?relative_step e p rv =
  let h = step_of ?relative_step p rv in
  let x = Params.get p rv in
  let fp = Elmore.gate_delay e (Params.set p rv (x +. h)) in
  let fm = Elmore.gate_delay e (Params.set p rv (x -. h)) in
  (fp -. fm) /. (2.0 *. h)

let second_numeric ?relative_step e p rv =
  let h = step_of ?relative_step p rv in
  let x = Params.get p rv in
  let fp = Elmore.gate_delay e (Params.set p rv (x +. h)) in
  let f0 = Elmore.gate_delay e p in
  let fm = Elmore.gate_delay e (Params.set p rv (x -. h)) in
  (fp -. (2.0 *. f0) +. fm) /. (h *. h)
