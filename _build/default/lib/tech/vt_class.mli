(** Dual-threshold (dual-Vt) gate classes.

    The paper's delay model comes from Wei et al., "Design and
    Optimization of Dual-Threshold Circuits for Low-Voltage Low-Power
    Applications" (its ref [13]): gates off the critical path can use a
    higher threshold voltage, cutting subthreshold leakage exponentially
    at the cost of speed.  This module defines the two classes, the
    parameter shift, and a leakage proxy, so the statistical timer can
    drive the classic timing-constrained leakage optimization. *)

type t = Low | High

val default_shift : float
(** Threshold increase of the High class: +60 mV on both V_Tn and
    |V_Tp|. *)

val params_for : ?shift:float -> t -> Params.t
(** Nominal operating point of the class ([Low] is {!Params.nominal}). *)

val corner_for : ?shift:float -> ?k:float -> Corner.case -> t -> Params.t
(** Corner point of the class (the class shift applies on top of the
    corner excursion). *)

val leakage : ?shift:float -> Gate.electrical -> t -> float
(** Subthreshold leakage proxy of a gate: total transistor width times
    [exp (-Vt / s)] with the usual ~90 mV/decade slope.  Arbitrary
    units; only ratios are meaningful. *)

val pp : Format.formatter -> t -> unit
