(** Analytic first and second partial derivatives of the Elmore gate
    delay with respect to the five RVs.

    The paper's Taylor first-order approximation (Eqs. 9-12) freezes these
    derivatives at the nominal point, turning the intra-die part of a path
    delay into a linear combination of independent layer RVs.  Its
    convexity analysis (Section 2.5) bounds the error via the second
    derivatives.  Both are implemented in closed form and cross-checked
    against finite differences in the test suite. *)

val first : Gate.electrical -> Params.t -> Params.rv -> float
(** [first e p rv] is d t_p / d rv at point [p] (SI units: s/m for
    geometric RVs, s/V for voltages). *)

val gradient : Gate.electrical -> Params.t -> Params.t
(** All five first derivatives as a record (field [tox] holds
    d t_p / d t_ox, etc.). *)

val second : Gate.electrical -> Params.t -> Params.rv -> float
(** [second e p rv] is d^2 t_p / d rv^2 at [p]. *)

val first_numeric :
  ?relative_step:float -> Gate.electrical -> Params.t -> Params.rv -> float
(** Central finite-difference first derivative (for validation). *)

val second_numeric :
  ?relative_step:float -> Gate.electrical -> Params.t -> Params.rv -> float
(** Central finite-difference second derivative (for validation). *)
