lib/tech/convexity.mli: Format Gate Params
