lib/tech/elmore.ml: Gate List Params
