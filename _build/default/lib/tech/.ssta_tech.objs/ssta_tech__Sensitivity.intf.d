lib/tech/sensitivity.mli: Format Gate Params
