lib/tech/params.ml: Format
