lib/tech/convexity.ml: Derivatives Float Format Gate List Params
