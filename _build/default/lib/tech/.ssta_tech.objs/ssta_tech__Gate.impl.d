lib/tech/gate.ml: List String
