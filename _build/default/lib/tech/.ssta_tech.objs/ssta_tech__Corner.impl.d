lib/tech/corner.ml: Elmore Params
