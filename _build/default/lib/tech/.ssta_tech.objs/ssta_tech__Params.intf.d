lib/tech/params.mli: Format
