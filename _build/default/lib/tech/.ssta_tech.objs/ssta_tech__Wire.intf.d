lib/tech/wire.mli:
