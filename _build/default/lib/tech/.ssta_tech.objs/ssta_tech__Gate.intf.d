lib/tech/gate.mli:
