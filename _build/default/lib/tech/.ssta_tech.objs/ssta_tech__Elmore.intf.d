lib/tech/elmore.mli: Gate Params
