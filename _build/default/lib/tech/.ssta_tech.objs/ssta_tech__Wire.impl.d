lib/tech/wire.ml: Float List
