lib/tech/vt_class.mli: Corner Format Gate Params
