lib/tech/derivatives.ml: Elmore Float Gate Params
