lib/tech/vt_class.ml: Corner Format Gate Params
