lib/tech/corner.mli: Gate Params
