lib/tech/sensitivity.ml: Derivatives Elmore Float Format Gate List Params Printf
