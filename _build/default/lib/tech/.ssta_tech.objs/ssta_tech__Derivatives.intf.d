lib/tech/derivatives.mli: Gate Params
