let eps_ox = 3.9 *. 8.854e-12
let elmore_constant = 0.345

let voltage_factor ~vdd ~vt =
  let headroom = vdd -. vt in
  let linear = (1.5 *. vdd) -. (2.0 *. vt) in
  if headroom <= 0.0 || linear <= 0.0 then
    invalid_arg "Elmore.voltage_factor: outside model validity domain";
  (vdd /. (headroom ** 1.3)) +. (1.0 /. linear)

let gate_delay (e : Gate.electrical) (p : Params.t) =
  let geometry = elmore_constant *. p.Params.tox *. p.Params.leff /. eps_ox in
  let vn = voltage_factor ~vdd:p.Params.vdd ~vt:p.Params.vtn in
  let vp = voltage_factor ~vdd:p.Params.vdd ~vt:p.Params.vtp in
  geometry *. ((e.Gate.alpha *. vn) +. (e.Gate.beta *. vp))

let nominal_delay e = gate_delay e Params.nominal

let path_delay gates p =
  List.fold_left (fun acc e -> acc +. gate_delay e p) 0.0 gates

let ps t = t *. 1e12
