type kind =
  | Inv
  | Buf
  | Nand of int
  | Nor of int
  | And of int
  | Or of int
  | Xor2
  | Xnor2

let fan_in = function
  | Inv | Buf -> 1
  | Nand n | Nor n | And n | Or n -> n
  | Xor2 | Xnor2 -> 2

let name = function
  | Inv -> "NOT"
  | Buf -> "BUF"
  | Nand _ -> "NAND"
  | Nor _ -> "NOR"
  | And _ -> "AND"
  | Or _ -> "OR"
  | Xor2 -> "XOR"
  | Xnor2 -> "XNOR"

let of_name s n =
  let valid_multi k = if n >= 2 then Some k else None in
  match String.uppercase_ascii s with
  | "NOT" | "INV" -> if n = 1 then Some Inv else None
  | "BUF" | "BUFF" -> if n = 1 then Some Buf else None
  | "NAND" -> valid_multi (Nand n)
  | "NOR" -> valid_multi (Nor n)
  | "AND" -> valid_multi (And n)
  | "OR" -> valid_multi (Or n)
  | "XOR" -> if n = 2 then Some Xor2 else None
  | "XNOR" -> if n = 2 then Some Xnor2 else None
  | _ -> None

let eval kind inputs =
  let arity = fan_in kind in
  if List.length inputs <> arity then invalid_arg "Gate.eval: arity mismatch";
  let all_true = List.for_all (fun b -> b) inputs in
  let any_true = List.exists (fun b -> b) inputs in
  match kind, inputs with
  | Inv, [ a ] -> not a
  | Buf, [ a ] -> a
  | Nand _, _ -> not all_true
  | And _, _ -> all_true
  | Nor _, _ -> not any_true
  | Or _, _ -> any_true
  | Xor2, [ a; b ] -> a <> b
  | Xnor2, [ a; b ] -> a = b
  | (Inv | Buf | Xor2 | Xnor2), _ -> assert false

type electrical = {
  kind : kind;
  wn : float;
  wp : float;
  cd_n : float;
  cd_p : float;
  c_out : float;
  alpha : float;
  beta : float;
}

let mu_n = 0.040 (* 400 cm^2/Vs *)
let mu_p = 0.015 (* 150 cm^2/Vs *)
let c_gate_input = 2.0e-15
let cd_per_width = 1.0e-9 (* drain junction capacitance per meter of width *)
let w0 = 0.5e-6 (* unit transistor width *)

(* Library sizing.  The ratios are chosen so that nominal FO2 delays
   reproduce the ordering of the paper's Table 1:
   NAND2 slowest, then XNOR2, then NOR2, INV fastest. *)
let widths = function
  | Inv -> (2.0 *. w0, 4.0 *. w0)
  | Buf -> (2.0 *. w0, 4.0 *. w0)
  | Nand n -> (float_of_int n /. 2.0 *. w0, 1.0 *. w0)
  | Nor n -> (1.0 *. w0, float_of_int n *. 2.0 *. w0)
  | And n -> (float_of_int n /. 2.0 *. w0, 1.0 *. w0)
  | Or n -> (1.0 *. w0, float_of_int n *. 2.0 *. w0)
  | Xor2 | Xnor2 -> (2.0 *. w0, 4.0 *. w0)

(* Output-node self-capacitance: drains connected to the output. *)
let self_cap kind cd_n cd_p =
  match kind with
  | Inv | Buf -> cd_n +. cd_p
  | Nand n | And n ->
      (* one NMOS drain (top of stack) + n parallel PMOS drains *)
      cd_n +. (float_of_int n *. cd_p)
  | Nor n | Or n -> (float_of_int n *. cd_n) +. cd_p
  | Xor2 | Xnor2 -> (2.0 *. cd_n) +. (2.0 *. cd_p)

let input_cap ?(drive = 1.0) _kind = c_gate_input *. drive

let electrical ?(fanout = 2) ?(wire_cap = 1.0e-15) ?load_cap ?(drive = 1.0)
    kind =
  if fanout < 0 then invalid_arg "Gate.electrical: negative fanout";
  if drive <= 0.0 then invalid_arg "Gate.electrical: drive must be positive";
  let wn, wp = widths kind in
  let wn = wn *. drive and wp = wp *. drive in
  let cd_n = cd_per_width *. wn and cd_p = cd_per_width *. wp in
  let external_cap =
    match load_cap with
    | Some c -> c
    | None -> float_of_int fanout *. c_gate_input
  in
  let c_out = self_cap kind cd_n cd_p +. external_cap +. wire_cap in
  let fi = float_of_int (fan_in kind) in
  (* Eq. (3)/(4) for NAND-form gates; the stacked network switches sides
     for NOR-form gates, and XOR/XNOR stack both networks.  The internal
     inverter of AND/OR is folded in as an extra c_out term on the
     stacked side. *)
  let alpha, beta =
    match kind with
    | Inv -> (c_out /. (mu_n *. wn), c_out /. (mu_p *. wp))
    | Buf ->
        (* two stages; modelled as doubled effective load *)
        (2.0 *. c_out /. (mu_n *. wn), 2.0 *. c_out /. (mu_p *. wp))
    | Nand _ ->
        ( ((cd_n *. fi *. (fi -. 1.0)) +. (fi *. c_out)) /. (mu_n *. wn),
          c_out /. (mu_p *. wp) )
    | Nor _ ->
        ( c_out /. (mu_n *. wn),
          ((cd_p *. fi *. (fi -. 1.0)) +. (fi *. c_out)) /. (mu_p *. wp) )
    | And _ ->
        ( ((cd_n *. fi *. (fi -. 1.0)) +. (fi *. (c_out +. c_gate_input)))
          /. (mu_n *. wn),
          (c_out +. c_gate_input) /. (mu_p *. wp) )
    | Or _ ->
        ( (c_out +. c_gate_input) /. (mu_n *. wn),
          ((cd_p *. fi *. (fi -. 1.0)) +. (fi *. (c_out +. c_gate_input)))
          /. (mu_p *. wp) )
    | Xor2 | Xnor2 ->
        ( ((cd_n *. 2.0) +. (2.0 *. c_out)) /. (mu_n *. wn),
          ((cd_p *. 2.0) +. (2.0 *. c_out)) /. (mu_p *. wp) )
  in
  { kind; wn; wp; cd_n; cd_p; c_out; alpha; beta }
