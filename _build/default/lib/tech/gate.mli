(** Gate library: logic function, transistor sizing and the Elmore
    coefficients alpha / beta of Eqs. (3)-(4).

    The paper analyzes the gates that make up the ISCAS85 benchmarks:
    inverters, n-input NANDs and NORs, 2-input XNOR (and XOR, which has
    the same electrical structure), plus buffers.  Each gate's delay has
    the common form of Eq. (2) with gate-specific [alpha] and [beta]. *)

type kind =
  | Inv
  | Buf
  | Nand of int  (** n-input NAND, n >= 2 *)
  | Nor of int  (** n-input NOR, n >= 2 *)
  | And of int  (** NAND + internal inverter *)
  | Or of int  (** NOR + internal inverter *)
  | Xor2
  | Xnor2

val fan_in : kind -> int
(** Number of logic inputs ([Inv] and [Buf] have 1). *)

val name : kind -> string
(** Canonical upper-case name as used by the .bench format
    (e.g. ["NAND"], ["XOR"]). *)

val of_name : string -> int -> kind option
(** [of_name s n] parses a .bench gate name with [n] inputs;
    [None] for unknown names or invalid arities. *)

val eval : kind -> bool list -> bool
(** Logic function of the gate (for simulation-based tests).  Raises
    [Invalid_argument] on arity mismatch. *)

type electrical = {
  kind : kind;
  wn : float;  (** effective NMOS width, m *)
  wp : float;  (** effective PMOS width, m *)
  cd_n : float;  (** NMOS drain capacitance C_dN, F *)
  cd_p : float;  (** PMOS drain capacitance C_dP, F *)
  c_out : float;  (** total output-node capacitance C_n, F *)
  alpha : float;  (** Eq. (3) coefficient, F.V.s/m^3 scale *)
  beta : float;  (** Eq. (4) coefficient *)
}
(** Electrical view of a gate instance, including its loading. *)

val electrical :
  ?fanout:int -> ?wire_cap:float -> ?load_cap:float -> ?drive:float ->
  kind -> electrical
(** [electrical ~fanout kind] sizes the gate with the library's default
    widths and computes C_n for the given [fanout] (default 2, the
    fan-out the paper's Table 1 uses) plus [wire_cap] (default 1 fF),
    then derives alpha and beta per Eqs. (3)-(4) and their duals (the
    paper notes all gates share the form of Eq. (2) with different
    alpha, beta).

    [load_cap] overrides the default fan-out loading model with an
    explicit external capacitance (gate-input caps of the consumers);
    when given, [fanout] only contributes drain/wire bookkeeping.

    [drive] (default 1) scales both transistor widths: a gate at drive
    [d] is faster into a fixed load but presents [d] times the input
    capacitance to its fan-ins — the knob used by the statistical
    sizing optimizer. *)

val input_cap : ?drive:float -> kind -> float
(** Capacitance one input pin of the gate presents to its driver. *)

val mu_n : float
(** Electron mobility, m^2/(V.s). *)

val mu_p : float
(** Hole mobility. *)

val c_gate_input : float
(** Input capacitance presented by one gate input, F. *)
