(** Hierarchical quad-tree correlation layers (Section 2.3).

    The die is replicated on several layers; layer [i] divides it into
    [4^i] rectangular regions.  A gate's parameter value is the sum of
    one RV per layer — the RV of the partition the gate falls in — so
    two gates share more summands (and are thus more correlated) the
    closer they are.  Layer 0 is the whole die: the inter-die variation.
    The paper uses a 4-layer quad-tree model plus a fifth "random" layer
    whose RVs are per-gate independent. *)

type t = private {
  quad_levels : int;  (** spatial layers 0 .. quad_levels-1 *)
  random_layer : bool;  (** extra per-gate independent layer *)
  die_width : float;
  die_height : float;
}

val create :
  ?quad_levels:int -> ?random_layer:bool -> die_width:float
  -> die_height:float -> unit -> t
(** Default [quad_levels] 4 and [random_layer] true — the paper's
    "4 layer model along with a fifth random layer".  Requires
    [quad_levels >= 1] and positive die dimensions. *)

val of_placement : ?quad_levels:int -> ?random_layer:bool
  -> Ssta_circuit.Placement.t -> t

val num_layers : t -> int
(** Total layers including the random one (the paper's L). *)

val is_random_layer : t -> int -> bool
(** Whether layer index [u] is the per-gate random layer. *)

val partitions_at : t -> int -> int
(** [4^u] for spatial layers.  Raises [Invalid_argument] for the random
    layer (its partition count is the gate count, known only to the
    caller). *)

val partition_of : t -> level:int -> x:float -> y:float -> int
(** Partition index (row-major over a 2^level x 2^level grid) of a point
    on a spatial layer.  Points outside the die are clamped to the
    nearest border region. *)

val partition_of_gate :
  t -> level:int -> gate_id:int -> x:float -> y:float -> int
(** Like {!partition_of} but resolves the random layer to [gate_id]. *)
