type t = { weights : float array }

let of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Budget.of_weights: empty";
  Array.iter
    (fun w ->
      if w < 0.0 || Float.is_nan w then
        invalid_arg "Budget.of_weights: weights must be non-negative")
    weights;
  let total = Array.fold_left ( +. ) 0.0 weights in
  if not (total > 0.0) then invalid_arg "Budget.of_weights: all-zero weights";
  { weights = Array.map (fun w -> w /. total) weights }

let equal ~layers =
  if layers < 1 then invalid_arg "Budget.equal: layers >= 1";
  of_weights (Array.make layers 1.0)

let inter_intra ~inter_fraction ~layers =
  if layers < 2 then invalid_arg "Budget.inter_intra: layers >= 2";
  if inter_fraction < 0.0 || inter_fraction > 1.0 then
    invalid_arg "Budget.inter_intra: inter_fraction must be in [0, 1]";
  let rest = (1.0 -. inter_fraction) /. float_of_int (layers - 1) in
  of_weights
    (Array.init layers (fun i -> if i = 0 then inter_fraction else rest))

let layers t = Array.length t.weights

let weight t u =
  if u < 0 || u >= layers t then invalid_arg "Budget.weight: bad layer";
  t.weights.(u)

let inter_fraction t = t.weights.(0)

let sigma_of_layer t ~total_sigma u =
  if total_sigma < 0.0 then
    invalid_arg "Budget.sigma_of_layer: negative sigma";
  total_sigma *. sqrt (weight t u)

let variance_check t ~total_sigma =
  Array.fold_left
    (fun acc w -> acc +. (w *. total_sigma *. total_sigma))
    0.0 t.weights
