lib/correlation/layers.mli: Ssta_circuit
