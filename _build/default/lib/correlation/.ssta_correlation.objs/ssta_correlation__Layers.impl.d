lib/correlation/layers.ml: Ssta_circuit
