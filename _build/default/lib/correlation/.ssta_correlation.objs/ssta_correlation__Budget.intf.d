lib/correlation/budget.mli:
