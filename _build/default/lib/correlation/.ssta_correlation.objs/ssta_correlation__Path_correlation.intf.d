lib/correlation/path_correlation.mli: Budget Path_coeffs
