lib/correlation/path_coeffs.ml: Array Budget Hashtbl Layers List Ssta_circuit Ssta_tech Ssta_timing
