lib/correlation/budget.ml: Array Float
