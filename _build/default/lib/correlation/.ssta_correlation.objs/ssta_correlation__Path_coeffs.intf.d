lib/correlation/path_coeffs.mli: Budget Hashtbl Layers Ssta_circuit Ssta_tech Ssta_timing
