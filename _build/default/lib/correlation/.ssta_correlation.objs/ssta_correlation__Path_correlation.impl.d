lib/correlation/path_correlation.ml: Budget Hashtbl List Path_coeffs Ssta_tech
