module Params = Ssta_tech.Params

let inter_covariance budget (a : Path_coeffs.t) (b : Path_coeffs.t) =
  List.fold_left
    (fun acc rv ->
      let s = Budget.sigma_of_layer budget ~total_sigma:(Params.sigma rv) 0 in
      acc
      +. (Params.get a.Path_coeffs.grad_sum rv
         *. Params.get b.Path_coeffs.grad_sum rv
         *. s *. s))
    0.0 Params.all_rvs

let intra_covariance budget (a : Path_coeffs.t) (b : Path_coeffs.t) =
  let small, large =
    if Hashtbl.length a.Path_coeffs.coeffs <= Hashtbl.length b.Path_coeffs.coeffs
    then (a, b)
    else (b, a)
  in
  Hashtbl.fold
    (fun (key : Path_coeffs.key) ca acc ->
      match Hashtbl.find_opt large.Path_coeffs.coeffs key with
      | Some cb ->
          let s =
            Budget.sigma_of_layer budget
              ~total_sigma:(Params.sigma key.Path_coeffs.rv)
              key.Path_coeffs.layer
          in
          acc +. (ca *. cb *. s *. s)
      | None -> acc)
    small.Path_coeffs.coeffs 0.0

let covariance budget a b =
  inter_covariance budget a b +. intra_covariance budget a b

let variance budget a = covariance budget a a

let correlation budget a b =
  let va = variance budget a and vb = variance budget b in
  if va <= 0.0 || vb <= 0.0 then 0.0
  else covariance budget a b /. sqrt (va *. vb)

let shared_keys (a : Path_coeffs.t) (b : Path_coeffs.t) =
  let small, large =
    if Hashtbl.length a.Path_coeffs.coeffs <= Hashtbl.length b.Path_coeffs.coeffs
    then (a, b)
    else (b, a)
  in
  Hashtbl.fold
    (fun key _ acc ->
      if Hashtbl.mem large.Path_coeffs.coeffs key then acc + 1 else acc)
    small.Path_coeffs.coeffs 0
