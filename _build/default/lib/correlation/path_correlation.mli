(** Analytic delay correlation between two paths.

    Two paths of the same die are correlated through the RVs they share:
    all paths share the five inter-die RVs, and paths whose gates fall in
    common quad-tree partitions additionally share intra-die layer RVs.
    With the paper's linearization, the covariance between path delays is

    {v
      cov = sum_rv Da(rv) Db(rv) sigma_0(rv)^2       (inter, always shared)
          + sum_{shared (rv,u,w)} ca cb sigma_u(rv)^2 (intra, if co-located)
    v}

    where D is a path's summed delay derivative.  This is the quantity
    behind the paper's observation that spatial correlation inflates rank
    churn on c1355: highly correlated near-equal paths reorder easily.
    Validated against Monte-Carlo sampling in the test suite. *)

val variance : Budget.t -> Path_coeffs.t -> float
(** Linearized total delay variance of a path (inter part linearized too,
    unlike the numeric PDF engine — small difference, see tests). *)

val covariance : Budget.t -> Path_coeffs.t -> Path_coeffs.t -> float

val correlation : Budget.t -> Path_coeffs.t -> Path_coeffs.t -> float
(** In [-1, 1]; 1.0 when the paths are identical. *)

val shared_keys : Path_coeffs.t -> Path_coeffs.t -> int
(** Number of intra layer-RVs the two paths share (the "number of common
    RVs" of Section 2.3). *)
