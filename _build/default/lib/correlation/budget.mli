(** Variance budgeting across correlation layers (Eq. 6).

    Each parameter's total variance sigma^2 is split over the L layers:
    sigma^2 = sum_i sigma_i^2, with sigma_i^2 = w_i * sigma^2 for a
    weight vector w summing to 1.  Layer 0's share is the inter-die
    variability; the remaining layers are intra-die.  The paper's default
    divides the variance equally over all layers; its Table 3 studies
    explicit inter/intra splits on c432. *)

type t = private { weights : float array }

val equal : layers:int -> t
(** The paper's default: [1/L] per layer. *)

val inter_intra : inter_fraction:float -> layers:int -> t
(** Layer 0 gets [inter_fraction] of the variance; the remaining layers
    split the rest equally.  [inter_fraction] in [0, 1].  (A zero weight
    is allowed: "only intra-die variations" is [inter_fraction = 0].) *)

val of_weights : float array -> t
(** Explicit non-negative weights; normalized to sum to 1.  Raises
    [Invalid_argument] on an empty or all-zero vector. *)

val layers : t -> int
val weight : t -> int -> float

val inter_fraction : t -> float
(** Weight of layer 0. *)

val sigma_of_layer : t -> total_sigma:float -> int -> float
(** [sigma_of_layer b ~total_sigma u] = total_sigma * sqrt w_u — the
    standard deviation assigned to each RV of layer [u]. *)

val variance_check : t -> total_sigma:float -> float
(** Sum of per-layer variances (= total_sigma^2; exposed for tests). *)
