type t = {
  quad_levels : int;
  random_layer : bool;
  die_width : float;
  die_height : float;
}

let create ?(quad_levels = 4) ?(random_layer = true) ~die_width ~die_height ()
    =
  if quad_levels < 1 then invalid_arg "Layers.create: quad_levels >= 1";
  if die_width <= 0.0 || die_height <= 0.0 then
    invalid_arg "Layers.create: die dimensions must be positive";
  { quad_levels; random_layer; die_width; die_height }

let of_placement ?quad_levels ?random_layer (pl : Ssta_circuit.Placement.t) =
  create ?quad_levels ?random_layer ~die_width:pl.Ssta_circuit.Placement.die_width
    ~die_height:pl.Ssta_circuit.Placement.die_height ()

let num_layers t = t.quad_levels + if t.random_layer then 1 else 0
let is_random_layer t u = t.random_layer && u = t.quad_levels

let partitions_at t level =
  if level < 0 || level >= num_layers t then
    invalid_arg "Layers.partitions_at: bad level";
  if is_random_layer t level then
    invalid_arg "Layers.partitions_at: random layer has per-gate partitions";
  1 lsl (2 * level)

let clamp_cell cells v = if v < 0 then 0 else if v >= cells then cells - 1 else v

let partition_of t ~level ~x ~y =
  if level < 0 || level >= t.quad_levels then
    invalid_arg "Layers.partition_of: bad spatial level";
  let cells = 1 lsl level in
  let col =
    clamp_cell cells (int_of_float (x /. t.die_width *. float_of_int cells))
  in
  let row =
    clamp_cell cells (int_of_float (y /. t.die_height *. float_of_int cells))
  in
  (row * cells) + col

let partition_of_gate t ~level ~gate_id ~x ~y =
  if is_random_layer t level then gate_id else partition_of t ~level ~x ~y
