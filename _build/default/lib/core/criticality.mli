(** Path criticality probabilities.

    The paper ranks near-critical paths by a confidence point; a natural
    refinement (standard in later SSTA literature) is each path's
    {e criticality}: the probability that it is the slowest of the set.
    Because the paths share layer RVs, this needs the joint
    distribution, which the Monte-Carlo sampler provides exactly: one
    process draw gives every gate's delay, hence every candidate path's
    delay, and the argmax is tallied. *)

type t = {
  probabilities : float array;  (** per path, same order as the input *)
  samples : int;
  entropy : float;  (** Shannon entropy (nats) of the criticality
                        distribution: ~0 when one path dominates, large
                        when criticality is diffuse (the c1355 case) *)
}

val estimate :
  Monte_carlo.sampler ->
  n:int ->
  Ssta_prob.Rng.t ->
  Ssta_timing.Paths.path list ->
  t
(** [estimate sampler ~n rng paths] tallies, over [n] correlated process
    draws, how often each path of [paths] is the slowest (ties split
    towards the earliest).  [paths] must be non-empty and [n >= 1]. *)

val dominant : t -> int
(** Index of the most-often-critical path. *)
