(** Intra-die path-delay PDF (Eqs. 12-14).

    After linearization, the intra part of a path delay is a zero-mean
    linear combination of independent Gaussian layer RVs, so its PDF is
    a Gaussian whose variance is Eq. (14):
    [sum over (rv, layer >= 1, partition) of coeff^2 * sigma_layer^2].
    The PDF is discretized at QUALITY_intra points, truncated like the
    input distributions. *)

val variance : Config.t -> Ssta_correlation.Path_coeffs.t -> float
(** Eq. (14) under the config's variance budget. *)

val sigma : Config.t -> Ssta_correlation.Path_coeffs.t -> float

val pdf : Config.t -> Ssta_correlation.Path_coeffs.t -> Ssta_prob.Pdf.t
(** Zero-mean truncated Gaussian with the Eq. (14) variance; a point
    mass at 0 when the variance vanishes (e.g. a pure-inter budget). *)

val pdf_of_variance : Config.t -> float -> Ssta_prob.Pdf.t
(** Same construction from an explicit variance (used by sweeps). *)
