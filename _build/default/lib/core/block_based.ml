module Params = Ssta_tech.Params
module Derivatives = Ssta_tech.Derivatives
module Erf = Ssta_prob.Erf
module Graph = Ssta_timing.Graph
module Layers = Ssta_correlation.Layers
module Budget = Ssta_correlation.Budget
module Path_coeffs = Ssta_correlation.Path_coeffs
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist

type canonical = {
  mean : float;
  terms : (Path_coeffs.key, float) Hashtbl.t;
  indep : float;
}

let zero () = { mean = 0.0; terms = Hashtbl.create 8; indep = 0.0 }

let sigma_of_key (config : Config.t) (key : Path_coeffs.key) =
  Budget.sigma_of_layer config.Config.budget
    ~total_sigma:(Params.sigma key.Path_coeffs.rv)
    key.Path_coeffs.layer

let variance config c =
  Hashtbl.fold
    (fun key a acc ->
      let s = sigma_of_key config key in
      acc +. (a *. a *. s *. s))
    c.terms c.indep

let std config c = sqrt (Float.max 0.0 (variance config c))

let covariance config a b =
  (* Iterate the smaller table. *)
  let small, large =
    if Hashtbl.length a.terms <= Hashtbl.length b.terms then (a, b)
    else (b, a)
  in
  Hashtbl.fold
    (fun key ca acc ->
      match Hashtbl.find_opt large.terms key with
      | Some cb ->
          let s = sigma_of_key config key in
          acc +. (ca *. cb *. s *. s)
      | None -> acc)
    small.terms 0.0

let merge_terms ~wa ~wb a b =
  let terms = Hashtbl.create (Hashtbl.length a + Hashtbl.length b) in
  Hashtbl.iter (fun key v -> Hashtbl.replace terms key (wa *. v)) a;
  Hashtbl.iter
    (fun key v ->
      let prev = try Hashtbl.find terms key with Not_found -> 0.0 in
      Hashtbl.replace terms key (prev +. (wb *. v)))
    b;
  terms

let add a b =
  { mean = a.mean +. b.mean;
    terms = merge_terms ~wa:1.0 ~wb:1.0 a.terms b.terms;
    indep = a.indep +. b.indep }

(* Clark's max of two correlated Gaussians, with linear sensitivities
   blended by the tightness probability phi = P(A > B). *)
let clark_max config a b =
  let va = variance config a and vb = variance config b in
  let cov = covariance config a b in
  let theta2 = Float.max 1e-300 (va +. vb -. (2.0 *. cov)) in
  let theta = sqrt theta2 in
  let d = (a.mean -. b.mean) /. theta in
  if d > 8.0 then a
  else if d < -8.0 then b
  else begin
    let phi = Erf.normal_cdf d in
    let dens = Erf.normal_pdf d in
    let mean = (a.mean *. phi) +. (b.mean *. (1.0 -. phi)) +. (theta *. dens) in
    let second_moment =
      ((va +. (a.mean *. a.mean)) *. phi)
      +. ((vb +. (b.mean *. b.mean)) *. (1.0 -. phi))
      +. ((a.mean +. b.mean) *. theta *. dens)
    in
    let var = Float.max 0.0 (second_moment -. (mean *. mean)) in
    let terms = merge_terms ~wa:phi ~wb:(1.0 -. phi) a.terms b.terms in
    (* Match the total variance by assigning the remainder (not explained
       by the blended shared terms) to the independent residual. *)
    let blended = { mean; terms; indep = 0.0 } in
    let shared_var = variance config blended in
    { mean; terms; indep = Float.max 0.0 (var -. shared_var) }
  end

type result = {
  arrival : canonical;
  mean : float;
  std : float;
  confidence_point : float;
  runtime_s : float;
}

let gate_canonical layers placement graph id =
  let e = Graph.electrical_exn graph id in
  let grad = Derivatives.gradient e Params.nominal in
  let x, y = Placement.coord placement id in
  let terms = Hashtbl.create 16 in
  List.iter
    (fun rv ->
      let d = Params.get grad rv in
      for layer = 0 to Layers.num_layers layers - 1 do
        let partition =
          Layers.partition_of_gate layers ~level:layer ~gate_id:id ~x ~y
        in
        Hashtbl.replace terms
          { Path_coeffs.rv; layer; partition }
          d
      done)
    Params.all_rvs;
  { mean = graph.Graph.delay.(id); terms; indep = 0.0 }

let analyze ?(config = Config.default) ?placement circuit =
  let started = Unix.gettimeofday () in
  let graph = Graph.of_netlist circuit in
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  let layers = Config.layers_for config placement in
  let n = Graph.num_nodes graph in
  let arrivals = Array.make n (zero ()) in
  for id = 0 to n - 1 do
    if not (Graph.is_input graph id) then begin
      let fanins = Graph.fanins graph id in
      let merged =
        Array.fold_left
          (fun acc f ->
            match acc with
            | None -> Some arrivals.(f)
            | Some m -> Some (clark_max config m arrivals.(f)))
          None fanins
      in
      let input_arrival = match merged with Some m -> m | None -> zero () in
      arrivals.(id) <-
        add input_arrival (gate_canonical layers placement graph id)
    end
  done;
  let outputs = graph.Graph.circuit.Netlist.outputs in
  let arrival =
    Array.fold_left
      (fun acc o ->
        match acc with
        | None -> Some arrivals.(o)
        | Some m -> Some (clark_max config m arrivals.(o)))
      None outputs
    |> function
    | Some m -> m
    | None -> invalid_arg "Block_based.analyze: circuit has no outputs"
  in
  let mean = arrival.mean and sd = std config arrival in
  { arrival;
    mean;
    std = sd;
    confidence_point = mean +. (config.Config.confidence_sigma *. sd);
    runtime_s = Unix.gettimeofday () -. started }
