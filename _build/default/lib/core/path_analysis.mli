(** Statistical analysis of a single path (Section 3.2).

    Combines the pieces: Eq. (13) coefficient accumulation, the Gaussian
    intra-PDF (Eq. 14), the numeric inter-PDF, and their convolution into
    the total delay PDF, from which the confidence point used for ranking
    is read. *)

type t = {
  path : Ssta_timing.Paths.path;
  gate_count : int;
  coeffs : Ssta_correlation.Path_coeffs.t;
  intra_pdf : Ssta_prob.Pdf.t;
  inter_pdf : Ssta_prob.Pdf.t;
  total_pdf : Ssta_prob.Pdf.t;  (** convolution of inter and intra *)
  det_delay : float;  (** nominal (deterministic) delay, s *)
  mean : float;  (** probabilistic mean — close to but not equal
                     to [det_delay] (nonlinearity) *)
  std : float;
  intra_sigma : float;
  inter_sigma : float;
  confidence_point : float;  (** mean + confidence_sigma * std *)
  worst_case : float;  (** corner analysis of the same path *)
}

type context
(** Shared precomputation (inter tables, layers) for analyzing many paths
    of one placed circuit. *)

val context :
  Config.t -> Ssta_timing.Graph.t -> Ssta_circuit.Placement.t -> context

val analyze : context -> Ssta_timing.Paths.path -> t
(** Full statistical analysis of one path. *)

val overestimation_pct : t -> float
(** [(worst_case - confidence_point) / confidence_point * 100] — the
    paper's Table 2 column 5. *)
