module Pdf = Ssta_prob.Pdf

let of_pdf pdf ~clock = Pdf.cdf pdf clock

let clock_for_yield pdf ~yield =
  if yield < 0.0 || yield > 1.0 then
    invalid_arg "Yield.clock_for_yield: yield must be in [0, 1]";
  Pdf.quantile pdf yield

let of_samples samples ~clock =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Yield.of_samples: empty sample";
  let ok = Array.fold_left (fun acc d -> if d <= clock then acc + 1 else acc) 0 samples in
  float_of_int ok /. float_of_int n

let curve pdf ~lo ~hi ~points =
  if points < 2 then invalid_arg "Yield.curve: need at least 2 points";
  if not (hi > lo) then invalid_arg "Yield.curve: hi must exceed lo";
  List.init points (fun i ->
      let clock =
        lo +. ((hi -. lo) *. float_of_int i /. float_of_int (points - 1))
      in
      (clock, of_pdf pdf ~clock))

let of_methodology (m : Methodology.t) ~clock =
  of_pdf m.Methodology.prob_critical.Ranking.analysis.Path_analysis.total_pdf
    ~clock

let pessimistic_of_methodology (m : Methodology.t) ~clock =
  Array.fold_left
    (fun acc r ->
      acc *. of_pdf r.Ranking.analysis.Path_analysis.total_pdf ~clock)
    1.0 m.Methodology.ranked
