(** Full-chip numeric PDF propagation with the independence assumption.

    The paper's related-work section describes full-chip analyses that
    "strive to propagate and merge the PDFs of the gate delays" while
    some "neglect parameter correlations" (its refs [2], [3], [8]).
    This module implements exactly that baseline: every gate delay is an
    independent discretized PDF (linearized, full per-parameter
    variance), arrival PDFs propagate through the timing graph with
    numeric [max] at merges and convolution along edges.

    It exists to quantify the paper's critique: ignoring the correlation
    induced by shared inter-die and spatial RVs {e underestimates} the
    spread of the circuit delay (positively correlated path delays make
    the true max wider than the independent max is allowed to be) — the
    ablation bench compares it against correlated Monte-Carlo and the
    correlation-aware analyses. *)

type result = {
  arrival_pdf : Ssta_prob.Pdf.t;  (** circuit delay PDF at the merge of
                                      all primary outputs *)
  mean : float;
  std : float;
  confidence_point : float;
  runtime_s : float;
}

val gate_delay_pdf : ?quality:int -> Config.t -> Ssta_tech.Gate.electrical
  -> Ssta_prob.Pdf.t
(** One gate's delay PDF under the independence model: linearized around
    nominal with each RV carrying its {e total} sigma. *)

val analyze :
  ?config:Config.t -> ?quality:int -> Ssta_circuit.Netlist.t -> result
(** Propagate through the whole circuit ([quality] is the grid size of
    the propagated PDFs, default 50). *)
