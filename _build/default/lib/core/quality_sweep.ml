module Sta = Ssta_timing.Sta
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist

type point = {
  quality_intra : int;
  quality_inter : int;
  sigma3 : float;
  error_pct : float;
  runtime_s : float;
}

type t = {
  circuit_name : string;
  reference_sigma3 : float;
  reference_quality : int * int;
  points : point list;
}

let default_grid =
  [ (10, 5); (20, 10); (40, 20); (60, 30); (80, 40); (100, 50); (150, 60);
    (200, 80); (300, 100); (400, 100) ]

let sigma3_at config sta placement =
  let ctx = Path_analysis.context config sta.Sta.graph placement in
  let a = Path_analysis.analyze ctx sta.Sta.critical_path in
  a.Path_analysis.confidence_point

let run ?(config = Config.default) ?(grid = default_grid) circuit =
  if grid = [] then invalid_arg "Quality_sweep.run: empty grid";
  let sta = Sta.analyze circuit in
  let placement = Placement.place circuit in
  let finest_intra =
    List.fold_left (fun acc (i, _) -> Int.max acc i) 0 grid * 2
  in
  let finest_inter =
    List.fold_left (fun acc (_, j) -> Int.max acc j) 0 grid * 2
  in
  let reference_quality = (finest_intra, finest_inter) in
  let reference_sigma3 =
    sigma3_at
      (Config.with_quality config ~intra:finest_intra ~inter:finest_inter)
      sta placement
  in
  let points =
    List.map
      (fun (quality_intra, quality_inter) ->
        let started = Unix.gettimeofday () in
        let sigma3 =
          sigma3_at
            (Config.with_quality config ~intra:quality_intra
               ~inter:quality_inter)
            sta placement
        in
        { quality_intra;
          quality_inter;
          sigma3;
          error_pct =
            Float.abs (sigma3 -. reference_sigma3) /. reference_sigma3 *. 100.0;
          runtime_s = Unix.gettimeofday () -. started })
      grid
  in
  { circuit_name = circuit.Netlist.name;
    reference_sigma3;
    reference_quality;
    points }

let knee t =
  let acceptable = List.filter (fun p -> p.error_pct < 0.3) t.points in
  let pool = if acceptable = [] then t.points else acceptable in
  match pool with
  | [] -> invalid_arg "Quality_sweep.knee: no points"
  | first :: rest ->
      List.fold_left
        (fun acc p -> if p.runtime_s < acc.runtime_s then p else acc)
        first rest

let pp fmt t =
  Format.fprintf fmt "quality sweep on %s (reference 3-sigma %.4f ps at %dx%d)@."
    t.circuit_name
    (Ssta_tech.Elmore.ps t.reference_sigma3)
    (fst t.reference_quality) (snd t.reference_quality);
  List.iter
    (fun p ->
      Format.fprintf fmt "  Qintra=%4d Qinter=%4d 3sigma=%10.4f ps err=%8.5f%% %.4fs@."
        p.quality_intra p.quality_inter
        (Ssta_tech.Elmore.ps p.sigma3)
        p.error_pct p.runtime_s)
    t.points
