(** Clock-period analysis of sequential circuits.

    With registers represented as pseudo PI/PO pairs
    ({!Ssta_circuit.Sequential}), the minimum clock period is the
    combinational core's critical delay plus the register setup time —
    deterministically, statistically (the 3-sigma point of the
    probabilistic critical path, i.e. a 99.87%-per-path-yield clock) and
    at the worst-case corner.  The hold check needs the {e fastest}
    register-to-register path: data launched at an edge must not reach
    the next register before the hold window of the same edge closes. *)

type t = {
  det_min_clock : float;  (** nominal critical delay + setup, seconds *)
  stat_min_clock : float;  (** 3-sigma point + setup *)
  worst_case_clock : float;  (** corner delay + setup *)
  fastest_reg_to_reg : float;
      (** minimum register-to-register path delay (infinite when the
          circuit has fewer than two connected registers) *)
  hold_margin : float;  (** fastest_reg_to_reg - hold *)
  methodology : Methodology.t;  (** the underlying statistical run *)
}

val analyze :
  ?config:Config.t -> ?setup:float -> ?hold:float
  -> Ssta_circuit.Sequential.t -> t
(** [setup] and [hold] default to 5 ps and 2 ps.  The placement is the
    default one of the core. *)

val speedup : baseline:t -> t -> float
(** Statistical clock-frequency ratio between two analyses (e.g. a
    pipelined circuit vs. its combinational baseline). *)

val fix_hold : ?hold:float -> Ssta_circuit.Sequential.t
  -> Ssta_circuit.Sequential.t * int
(** Insert buffer chains in front of register data pins whose fastest
    launch-to-capture delay is below [hold] (default 2 ps) — the
    standard hold fix for shift-register chains, here driven by the
    nominal buffer delay.  Returns the repaired circuit and the number
    of buffers added.  Logic is unchanged (buffers only). *)
