module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist

type t = {
  circuit_name : string;
  num_gates : int;
  config : Config.t;
  sta : Sta.t;
  sigma_c : float;
  slack : float;
  truncated : bool;
  ranked : Ranking.ranked array;
  det_critical : Path_analysis.t;
  prob_critical : Ranking.ranked;
  runtime_s : float;
}

let run ?(config = Config.default) ?placement ?wire ?wire_caps circuit =
  let started = Unix.gettimeofday () in
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  let sta =
    match wire, wire_caps with
    | Some _, Some _ ->
        invalid_arg "Methodology.run: wire and wire_caps are exclusive"
    | None, None -> Sta.analyze circuit
    | Some wire, None -> Sta.analyze_placed ~wire circuit placement
    | None, Some caps ->
        Sta.of_graph (Ssta_timing.Graph.with_wire_caps circuit caps)
  in
  let ctx = Path_analysis.context config sta.Sta.graph placement in
  (* Step 3: sigma_C from the deterministic critical path. *)
  let det_critical = Path_analysis.analyze ctx sta.Sta.critical_path in
  let sigma_c = det_critical.Path_analysis.std in
  let slack = config.Config.confidence *. sigma_c in
  (* Step 4: all near-critical paths, deterministically ranked. *)
  let enumeration =
    Sta.near_critical ~max_paths:config.Config.max_paths sta ~slack
  in
  (* Step 5: statistical analysis of each, then confidence ranking. *)
  let analyses =
    List.map
      (fun p ->
        if p.Paths.nodes = det_critical.Path_analysis.path.Paths.nodes then
          det_critical
        else Path_analysis.analyze ctx p)
      enumeration.Paths.paths
  in
  let ranked = Ranking.rank analyses in
  let prob_critical = Ranking.probabilistic_critical ranked in
  { circuit_name = circuit.Netlist.name;
    num_gates = Netlist.num_gates circuit;
    config;
    sta;
    sigma_c;
    slack;
    truncated = enumeration.Paths.truncated;
    ranked;
    det_critical;
    prob_critical;
    runtime_s = Unix.gettimeofday () -. started }

let num_critical_paths t = Array.length t.ranked

let overestimation_pct t =
  let worst = t.det_critical.Path_analysis.worst_case in
  let cp =
    t.prob_critical.Ranking.analysis.Path_analysis.confidence_point
  in
  if cp <= 0.0 then 0.0 else (worst -. cp) /. cp *. 100.0

let find_rank t ~prob_rank =
  if prob_rank < 1 || prob_rank > Array.length t.ranked then
    invalid_arg "Methodology.find_rank: rank out of range";
  t.ranked.(prob_rank - 1)
