lib/core/report.ml: Array Buffer Config Format List Methodology Path_analysis Printf Ranking Ssta_circuit Ssta_prob Ssta_tech Ssta_timing
