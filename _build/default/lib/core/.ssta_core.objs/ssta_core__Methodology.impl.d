lib/core/methodology.ml: Array Config List Path_analysis Ranking Ssta_circuit Ssta_timing Unix
