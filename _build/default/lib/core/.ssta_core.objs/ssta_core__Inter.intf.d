lib/core/inter.mli: Config Ssta_correlation Ssta_prob
