lib/core/intra.ml: Config Ssta_correlation Ssta_prob
