lib/core/yield.mli: Methodology Ssta_prob
