lib/core/second_order.mli: Config Path_analysis Ssta_circuit Ssta_timing
