lib/core/dual_vt.ml: Array Config Float Hashtbl Int Inter Intra List Ssta_circuit Ssta_correlation Ssta_prob Ssta_tech Ssta_timing
