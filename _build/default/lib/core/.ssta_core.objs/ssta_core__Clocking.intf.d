lib/core/clocking.mli: Config Methodology Ssta_circuit
