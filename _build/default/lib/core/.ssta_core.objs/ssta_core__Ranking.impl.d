lib/core/ranking.ml: Array Int List Path_analysis Ssta_prob
