lib/core/config.mli: Ssta_circuit Ssta_correlation Ssta_prob
