lib/core/second_order.ml: Array Config Hashtbl List Path_analysis Ssta_circuit Ssta_correlation Ssta_tech Ssta_timing
