lib/core/dual_vt.mli: Config Inter Ssta_circuit Ssta_prob Ssta_tech Ssta_timing
