lib/core/full_chip.mli: Config Ssta_circuit Ssta_prob Ssta_tech
