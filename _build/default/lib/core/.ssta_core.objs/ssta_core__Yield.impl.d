lib/core/yield.ml: Array List Methodology Path_analysis Ranking Ssta_prob
