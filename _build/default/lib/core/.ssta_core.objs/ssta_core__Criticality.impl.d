lib/core/criticality.ml: Array Monte_carlo Ssta_timing
