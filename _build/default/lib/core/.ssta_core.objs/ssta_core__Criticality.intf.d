lib/core/criticality.mli: Monte_carlo Ssta_prob Ssta_timing
