lib/core/inter.ml: Array Config Float Ssta_correlation Ssta_prob Ssta_tech
