lib/core/path_max.ml: Array Block_based Config Float Hashtbl Int List Methodology Path_analysis Ranking Ssta_correlation Ssta_prob Ssta_tech
