lib/core/full_chip.ml: Array Config Float List Ssta_circuit Ssta_prob Ssta_tech Ssta_timing Unix
