lib/core/quality_sweep.mli: Config Format Ssta_circuit
