lib/core/block_based.mli: Config Hashtbl Ssta_circuit Ssta_correlation
