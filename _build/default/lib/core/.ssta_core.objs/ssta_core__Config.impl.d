lib/core/config.ml: Ssta_correlation Ssta_prob Ssta_tech
