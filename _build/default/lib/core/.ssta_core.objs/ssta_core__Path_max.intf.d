lib/core/path_max.mli: Block_based Config Methodology Path_analysis
