lib/core/path_analysis.ml: Config Inter Intra Ssta_circuit Ssta_correlation Ssta_prob Ssta_tech Ssta_timing
