lib/core/sizing.ml: Array Config Float List Path_analysis Ssta_circuit Ssta_timing
