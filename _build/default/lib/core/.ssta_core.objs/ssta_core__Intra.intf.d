lib/core/intra.mli: Config Ssta_correlation Ssta_prob
