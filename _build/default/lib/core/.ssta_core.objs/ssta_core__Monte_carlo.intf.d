lib/core/monte_carlo.mli: Config Path_analysis Ssta_circuit Ssta_prob Ssta_tech Ssta_timing
