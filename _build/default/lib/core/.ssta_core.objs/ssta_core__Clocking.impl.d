lib/core/clocking.ml: Array Config Float Methodology Path_analysis Ranking Ssta_circuit Ssta_tech Ssta_timing
