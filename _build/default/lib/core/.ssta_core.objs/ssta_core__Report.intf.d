lib/core/report.mli: Format Methodology Path_analysis Ssta_circuit Ssta_prob Ssta_timing
