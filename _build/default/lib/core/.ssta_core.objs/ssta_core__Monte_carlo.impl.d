lib/core/monte_carlo.ml: Array Config Float Hashtbl Path_analysis Ssta_circuit Ssta_correlation Ssta_prob Ssta_tech Ssta_timing
