lib/core/path_analysis.mli: Config Ssta_circuit Ssta_correlation Ssta_prob Ssta_timing
