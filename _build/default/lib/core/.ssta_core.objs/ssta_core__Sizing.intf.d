lib/core/sizing.mli: Config Ssta_circuit
