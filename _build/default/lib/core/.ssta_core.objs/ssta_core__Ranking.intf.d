lib/core/ranking.mli: Path_analysis
