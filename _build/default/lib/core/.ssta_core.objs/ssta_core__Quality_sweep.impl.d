lib/core/quality_sweep.ml: Config Float Format Int List Path_analysis Ssta_circuit Ssta_tech Ssta_timing Unix
