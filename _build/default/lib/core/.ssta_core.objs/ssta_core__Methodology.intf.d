lib/core/methodology.mli: Config Path_analysis Ranking Ssta_circuit Ssta_tech Ssta_timing
