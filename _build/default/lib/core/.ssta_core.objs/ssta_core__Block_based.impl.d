lib/core/block_based.ml: Array Config Float Hashtbl List Ssta_circuit Ssta_correlation Ssta_prob Ssta_tech Ssta_timing Unix
