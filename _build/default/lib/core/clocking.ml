module Sequential = Ssta_circuit.Sequential
module Netlist = Ssta_circuit.Netlist
module Graph = Ssta_timing.Graph
module Sta = Ssta_timing.Sta

type t = {
  det_min_clock : float;
  stat_min_clock : float;
  worst_case_clock : float;
  fastest_reg_to_reg : float;
  hold_margin : float;
  methodology : Methodology.t;
}

(* Minimum delay from any register Q to any register D: earliest-arrival
   labels with only register outputs as time-zero sources. *)
let fastest_reg_to_reg (s : Sequential.t) graph =
  let n = Graph.num_nodes graph in
  let labels = Array.make n infinity in
  for id = 0 to n - 1 do
    if Graph.is_input graph id then begin
      if Sequential.is_register_q s id then labels.(id) <- 0.0
    end
    else begin
      let best = ref infinity in
      Array.iter
        (fun f -> if labels.(f) < !best then best := labels.(f))
        (Graph.fanins graph id);
      if !best < infinity then labels.(id) <- !best +. graph.Graph.delay.(id)
    end
  done;
  Array.fold_left
    (fun acc (r : Sequential.register) ->
      (* a register capturing directly from another register's Q *)
      Float.min acc labels.(r.Sequential.d))
    infinity s.Sequential.registers

let analyze ?(config = Config.default) ?(setup = 5e-12) ?(hold = 2e-12)
    (s : Sequential.t) =
  let m = Methodology.run ~config s.Sequential.core in
  let det = m.Methodology.sta.Sta.critical_delay in
  let stat =
    m.Methodology.prob_critical.Ranking.analysis.Path_analysis
    .confidence_point
  in
  let worst = m.Methodology.det_critical.Path_analysis.worst_case in
  let fastest = fastest_reg_to_reg s m.Methodology.sta.Sta.graph in
  { det_min_clock = det +. setup;
    stat_min_clock = stat +. setup;
    worst_case_clock = worst +. setup;
    fastest_reg_to_reg = fastest;
    hold_margin = fastest -. hold;
    methodology = m }

let speedup ~baseline t = baseline.stat_min_clock /. t.stat_min_clock

let fix_hold ?(hold = 2e-12) (s : Sequential.t) =
  let module B = Netlist.Builder in
  let module Gate = Ssta_tech.Gate in
  let graph = Graph.of_netlist s.Sequential.core in
  (* per-register fastest launch delay, as in fastest_reg_to_reg but
     per capture pin *)
  let n = Graph.num_nodes graph in
  let labels = Array.make n infinity in
  for id = 0 to n - 1 do
    if Graph.is_input graph id then begin
      if Sequential.is_register_q s id then labels.(id) <- 0.0
    end
    else begin
      let best = ref infinity in
      Array.iter
        (fun f -> if labels.(f) < !best then best := labels.(f))
        (Graph.fanins graph id);
      if !best < infinity then labels.(id) <- !best +. graph.Graph.delay.(id)
    end
  done;
  let buf_delay =
    Ssta_tech.Elmore.nominal_delay (Gate.electrical ~fanout:1 Gate.Buf)
  in
  let deficit d = hold -. labels.(d) in
  let buffers_for d =
    let need = deficit d in
    if need <= 0.0 then 0
    else int_of_float (Float.ceil (need /. buf_delay))
  in
  let total = ref 0 in
  let core = s.Sequential.core in
  let b = B.create core.Netlist.name in
  let remap = Array.make (Netlist.num_nodes core) (-1) in
  for i = 0 to core.Netlist.num_inputs - 1 do
    remap.(i) <- B.add_input b (Netlist.node_name core i)
  done;
  Array.iter
    (fun (g : Netlist.gate) ->
      let ins =
        Array.to_list (Array.map (fun f -> remap.(f)) g.Netlist.fanins)
      in
      remap.(g.Netlist.id) <-
        B.add_gate ~name:(Netlist.node_name core g.Netlist.id) b
          g.Netlist.kind ins)
    core.Netlist.gates;
  (* buffer chains in front of slow-to-capture register D pins *)
  let new_d =
    Array.map
      (fun (r : Sequential.register) ->
        let k = buffers_for r.Sequential.d in
        total := !total + k;
        let rec chain node i =
          if i = 0 then node else chain (B.add_gate b Gate.Buf [ node ]) (i - 1)
        in
        chain remap.(r.Sequential.d) k)
      s.Sequential.registers
  in
  Array.iter (fun o -> B.mark_output b remap.(o)) s.Sequential.real_output_ids;
  Array.iter (fun d -> B.mark_output b d) new_d;
  let core' = B.finish b in
  let registers =
    Array.mapi
      (fun i (r : Sequential.register) ->
        { r with Sequential.q = remap.(r.Sequential.q); d = new_d.(i) })
      s.Sequential.registers
  in
  ( { s with
      Sequential.core = core';
      registers;
      real_output_ids =
        Array.map (fun o -> remap.(o)) s.Sequential.real_output_ids },
    !total )
