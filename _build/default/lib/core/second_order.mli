(** Second-order refinement of the intra-die delay statistics.

    The paper's Taylor expansion stops at first order (Eq. 9), which is
    what makes the intra part an exactly-Gaussian linear combination —
    and which makes the {e intra} contribution to the mean shift vanish
    (only the nonlinear inter part moves the mean).  Keeping the
    diagonal second-order terms,

    {v dt = sum c_k xi_k  +  1/2 sum q_k xi_k^2,   xi_k ~ N(0, s_k^2) v}

    gives closed-form corrections (moments of Gaussians):

    - mean shift:      1/2 sum q_k s_k^2
    - extra variance:  1/2 sum q_k^2 s_k^4
    - third moment:    sum (3 c_k^2 q_k s_k^4 + q_k^3 s_k^6)

    The convexity analysis of Section 2.5 argues these are small; this
    module computes them so the claim is a number, not an adjective, and
    so the residual mean error against Monte-Carlo shrinks (tested). *)

type correction = {
  mean_shift : float;  (** add to the path mean, seconds *)
  extra_variance : float;  (** add to the Eq. (14) variance *)
  third_central : float;  (** third central moment of the intra part *)
  skewness : float;  (** of the corrected intra distribution *)
}

val of_path :
  Config.t ->
  Ssta_timing.Graph.t ->
  Ssta_circuit.Placement.t ->
  Ssta_timing.Paths.path ->
  correction
(** Accumulate the diagonal second-derivative coefficients over the
    path's gates per (RV, layer, partition) — exactly like
    {!Ssta_correlation.Path_coeffs.of_path} but for the Hessian
    diagonal — and evaluate the closed forms above. *)

val corrected_mean : Path_analysis.t -> correction -> float
(** [analysis.mean + correction.mean_shift]. *)

val corrected_std : Path_analysis.t -> correction -> float
