(** Statistical gate sizing.

    The paper's introduction motivates statistical timing through
    optimization ("Statistical Timing Optimization of Combinational
    Logic Circuits", its refs [4] and [6]): a deterministic sizer that
    chases the nominal critical path can waste area on paths that are
    not statistically critical.  This optimizer closes the loop with the
    statistical timer: it repeatedly upsizes the gates of the current
    {e probabilistic} critical path (largest confidence point) until the
    3-sigma target is met, re-evaluating loads — upsizing a gate slows
    its fan-ins — and delays each round. *)

type step = {
  sigma3 : float;  (** confidence point after the round, seconds *)
  area : float;  (** total drive area, in unit-gate equivalents *)
  resized : int;  (** gates touched this round *)
}

type result = {
  drives : float array;  (** final per-node drive strengths *)
  initial_sigma3 : float;
  final_sigma3 : float;
  area : float;  (** final total drive area *)
  initial_area : float;
  iterations : int;
  met : bool;  (** target reached *)
  history : step list;  (** oldest first *)
}

val optimize :
  ?config:Config.t ->
  ?placement:Ssta_circuit.Placement.t ->
  ?max_iterations:int ->
  ?step_factor:float ->
  ?max_drive:float ->
  target:float ->
  Ssta_circuit.Netlist.t ->
  result
(** [optimize ~target circuit] sizes until the probabilistic critical
    path's confidence point is at most [target] (seconds), the drive cap
    is hit on every critical gate, or [max_iterations] (default 50)
    rounds elapse.  [step_factor] (default 1.25) multiplies the drive of
    each gate on the probabilistic critical path per round, clamped to
    [max_drive] (default 6.0). *)
