module Pdf = Ssta_prob.Pdf
module Dist = Ssta_prob.Dist
module Combine = Ssta_prob.Combine
module Params = Ssta_tech.Params
module Derivatives = Ssta_tech.Derivatives
module Elmore = Ssta_tech.Elmore
module Graph = Ssta_timing.Graph
module Netlist = Ssta_circuit.Netlist

type result = {
  arrival_pdf : Pdf.t;
  mean : float;
  std : float;
  confidence_point : float;
  runtime_s : float;
}

let gate_delay_pdf ?(quality = 50) (config : Config.t) e =
  let grad = Derivatives.gradient e Params.nominal in
  let variance =
    List.fold_left
      (fun acc rv ->
        let d = Params.get grad rv and s = Params.sigma rv in
        acc +. (d *. d *. s *. s))
      0.0 Params.all_rvs
  in
  Dist.truncated_gaussian ~n:quality ~bound:config.Config.truncation
    ~mu:(Elmore.nominal_delay e) ~sigma:(sqrt variance) ()

let analyze ?(config = Config.default) ?(quality = 50) circuit =
  let started = Unix.gettimeofday () in
  let graph = Graph.of_netlist circuit in
  let n = Graph.num_nodes graph in
  let arrivals = Array.make n None in
  for id = 0 to n - 1 do
    if not (Graph.is_input graph id) then begin
      let merged =
        Array.fold_left
          (fun acc f ->
            match acc, arrivals.(f) with
            | None, inc -> inc
            | Some m, None -> Some m
            | Some m, Some inc -> Some (Combine.binop ~n:quality Float.max m inc))
          None
          (Graph.fanins graph id)
      in
      let gate =
        gate_delay_pdf ~quality config (Graph.electrical_exn graph id)
      in
      arrivals.(id) <-
        (match merged with
        | None -> Some gate
        | Some m -> Some (Combine.sum ~n:quality m gate))
    end
  done;
  let arrival_pdf =
    Array.fold_left
      (fun acc o ->
        match acc, arrivals.(o) with
        | None, p -> p
        | Some m, None -> Some m
        | Some m, Some p -> Some (Combine.binop ~n:quality Float.max m p))
      None circuit.Netlist.outputs
    |> function
    | Some p -> p
    | None -> invalid_arg "Full_chip.analyze: no driven outputs"
  in
  let mean = Pdf.mean arrival_pdf and std = Pdf.std arrival_pdf in
  { arrival_pdf;
    mean;
    std;
    confidence_point = mean +. (config.Config.confidence_sigma *. std);
    runtime_s = Unix.gettimeofday () -. started }
