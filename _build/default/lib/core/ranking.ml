type ranked = {
  analysis : Path_analysis.t;
  det_rank : int;
  prob_rank : int;
}

let rank analyses =
  let with_det =
    List.mapi (fun i a -> (i + 1, a)) analyses |> Array.of_list
  in
  Array.sort
    (fun (da, a) (db, b) ->
      let c =
        compare b.Path_analysis.confidence_point a.Path_analysis.confidence_point
      in
      if c <> 0 then c else compare da db)
    with_det;
  Array.mapi
    (fun i (det_rank, analysis) -> { analysis; det_rank; prob_rank = i + 1 })
    with_det

let probabilistic_critical ranked =
  if Array.length ranked = 0 then
    invalid_arg "Ranking.probabilistic_critical: no paths";
  ranked.(0)

let det_rank_of_prob_critical ranked =
  (probabilistic_critical ranked).det_rank

let rank_pairs ?first ranked =
  let n =
    match first with
    | None -> Array.length ranked
    | Some f -> Int.min f (Array.length ranked)
  in
  Array.init n (fun i -> (ranked.(i).det_rank, ranked.(i).prob_rank))

let rank_correlation ranked =
  if Array.length ranked < 2 then 1.0
  else
    Ssta_prob.Stats.spearman
      (Array.map (fun r -> float_of_int r.det_rank) ranked)
      (Array.map (fun r -> float_of_int r.prob_rank) ranked)

let max_rank_change ranked =
  Array.fold_left
    (fun acc r -> Int.max acc (abs (r.det_rank - r.prob_rank)))
    0 ranked
