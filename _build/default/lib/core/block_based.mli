(** Block-based (full-chip) SSTA baseline.

    The paper's introduction contrasts its path-based approach with
    full-chip analyses that propagate arrival-time distributions through
    the timing graph [2-9].  This module implements the canonical
    first-order form of that school: every arrival time is

    {v A = mean + sum_i a_i * xi_i + a_r * xi_r v}

    over the same layer RVs as the path-based engine (with the inter-die
    layer linearized too — one of the approximations the paper
    criticizes), an independent residual term, propagated with exact
    addition and Clark's moment-matching approximation for max.

    It is fast (one topological sweep) but approximate: Clark's max is
    exact only for jointly Gaussian inputs and accumulates error through
    reconvergent fan-out — which the ablation bench quantifies against
    the Monte-Carlo reference. *)

type canonical = {
  mean : float;
  terms : (Ssta_correlation.Path_coeffs.key, float) Hashtbl.t;
      (** shared layer-RV sensitivities (layer 0 included) *)
  indep : float;  (** variance of the independent residual *)
}

val variance : Config.t -> canonical -> float
val std : Config.t -> canonical -> float

val covariance : Config.t -> canonical -> canonical -> float
(** Via shared terms only (residuals are independent). *)

val add : canonical -> canonical -> canonical

val clark_max : Config.t -> canonical -> canonical -> canonical
(** Clark (1961) moment matching; sensitivities blended by the tightness
    probability. *)

type result = {
  arrival : canonical;  (** circuit arrival time (max over outputs) *)
  mean : float;
  std : float;
  confidence_point : float;  (** mean + confidence_sigma * std *)
  runtime_s : float;
}

val analyze :
  ?config:Config.t ->
  ?placement:Ssta_circuit.Placement.t ->
  Ssta_circuit.Netlist.t ->
  result
(** One topological sweep over the circuit. *)
