module Params = Ssta_tech.Params
module Derivatives = Ssta_tech.Derivatives
module Graph = Ssta_timing.Graph
module Paths = Ssta_timing.Paths
module Layers = Ssta_correlation.Layers
module Budget = Ssta_correlation.Budget
module Placement = Ssta_circuit.Placement

type correction = {
  mean_shift : float;
  extra_variance : float;
  third_central : float;
  skewness : float;
}

let of_path (config : Config.t) g pl path =
  let layers = Config.layers_for config pl in
  (* first (c) and second (q) derivative sums per (rv, layer, partition) *)
  let firsts = Hashtbl.create 64 in
  let seconds = Hashtbl.create 64 in
  let bump table key v =
    let prev = try Hashtbl.find table key with Not_found -> 0.0 in
    Hashtbl.replace table key (prev +. v)
  in
  Array.iter
    (fun id ->
      if not (Graph.is_input g id) then begin
        let e = Graph.electrical_exn g id in
        let x, y = Placement.coord pl id in
        List.iter
          (fun rv ->
            let c = Derivatives.first e Params.nominal rv in
            let q = Derivatives.second e Params.nominal rv in
            for layer = 1 to Layers.num_layers layers - 1 do
              let partition =
                Layers.partition_of_gate layers ~level:layer ~gate_id:id ~x ~y
              in
              let key = (Params.rv_index rv, layer, partition) in
              bump firsts key c;
              bump seconds key q
            done)
          Params.all_rvs
      end)
    path.Paths.nodes;
  let mean_shift = ref 0.0 in
  let extra_variance = ref 0.0 in
  let third = ref 0.0 in
  Hashtbl.iter
    (fun ((rv_index, layer, _) as key) q ->
      let rv = List.nth Params.all_rvs rv_index in
      let s =
        Budget.sigma_of_layer config.Config.budget
          ~total_sigma:(Params.sigma rv) layer
      in
      let c = try Hashtbl.find firsts key with Not_found -> 0.0 in
      let s2 = s *. s in
      let s4 = s2 *. s2 in
      mean_shift := !mean_shift +. (0.5 *. q *. s2);
      extra_variance := !extra_variance +. (0.5 *. q *. q *. s4);
      third :=
        !third +. ((3.0 *. c *. c *. q *. s4) +. (q *. q *. q *. s4 *. s2)))
    seconds;
  (* total intra variance (first order) for the skewness denominator *)
  let base_variance =
    Hashtbl.fold
      (fun (rv_index, layer, _) c acc ->
        let rv = List.nth Params.all_rvs rv_index in
        let s =
          Budget.sigma_of_layer config.Config.budget
            ~total_sigma:(Params.sigma rv) layer
        in
        acc +. (c *. c *. s *. s))
      firsts 0.0
  in
  let var = base_variance +. !extra_variance in
  let skewness =
    if var > 0.0 then !third /. (var ** 1.5) else 0.0
  in
  { mean_shift = !mean_shift;
    extra_variance = !extra_variance;
    third_central = !third;
    skewness }

let corrected_mean (a : Path_analysis.t) c =
  a.Path_analysis.mean +. c.mean_shift

let corrected_std (a : Path_analysis.t) c =
  sqrt ((a.Path_analysis.std *. a.Path_analysis.std) +. c.extra_variance)
