module Params = Ssta_tech.Params
module Erf = Ssta_prob.Erf
module Path_coeffs = Ssta_correlation.Path_coeffs

type result = {
  mean : float;
  std : float;
  confidence_point : float;
  paths_used : int;
}

let canonical_of_analysis (config : Config.t) (a : Path_analysis.t) =
  let coeffs = a.Path_analysis.coeffs in
  let terms = Hashtbl.create 64 in
  (* Intra layer RVs carry the Eq. (13) coefficients verbatim. *)
  Hashtbl.iter
    (fun key c -> Hashtbl.replace terms key c)
    coeffs.Path_coeffs.coeffs;
  (* The inter part is shared by every path: key it on layer 0. *)
  List.iter
    (fun rv ->
      Hashtbl.replace terms
        { Path_coeffs.rv; layer = 0; partition = 0 }
        (Params.get coeffs.Path_coeffs.grad_sum rv))
    Params.all_rvs;
  let linear = { Block_based.mean = a.Path_analysis.mean; terms; indep = 0.0 } in
  (* Keep the numeric PDF's variance: whatever the linearization misses
     goes into the independent residual. *)
  let linear_var = Block_based.variance config linear in
  let numeric_var = a.Path_analysis.std *. a.Path_analysis.std in
  { linear with
    Block_based.indep = Float.max 0.0 (numeric_var -. linear_var) }

let statistical_max ?config ?(max_paths = 200) (m : Methodology.t) =
  let config =
    match config with Some c -> c | None -> m.Methodology.config
  in
  let ranked = m.Methodology.ranked in
  let used = Int.min max_paths (Array.length ranked) in
  if used = 0 then invalid_arg "Path_max.statistical_max: no paths";
  let folded = ref None in
  for i = 0 to used - 1 do
    let canon =
      canonical_of_analysis config ranked.(i).Ranking.analysis
    in
    folded :=
      (match !folded with
      | None -> Some canon
      | Some acc -> Some (Block_based.clark_max config acc canon))
  done;
  match !folded with
  | None -> assert false
  | Some acc ->
      let std = Block_based.std config acc in
      { mean = acc.Block_based.mean;
        std;
        confidence_point =
          acc.Block_based.mean +. (config.Config.confidence_sigma *. std);
        paths_used = used }

let yield_at ?config m ~clock =
  let r = statistical_max ?config m in
  if r.std <= 0.0 then if clock >= r.mean then 1.0 else 0.0
  else Erf.normal_cdf ~mu:r.mean ~sigma:r.std clock
