(** Accuracy / run-time trade-off over the PDF discretizations.

    Section 4 of the paper sweeps QUALITY_intra and QUALITY_inter on
    c499's critical path, measures the 3-sigma point against the finest
    discretization, and picks (100, 50) as the knee (accuracy within
    0.009% at 0.4 s).  This module regenerates that study for any
    circuit. *)

type point = {
  quality_intra : int;
  quality_inter : int;
  sigma3 : float;  (** 3-sigma point of the critical path, seconds *)
  error_pct : float;  (** |sigma3 - reference| / reference * 100 *)
  runtime_s : float;
}

type t = {
  circuit_name : string;
  reference_sigma3 : float;  (** at the finest grid of the sweep *)
  reference_quality : int * int;
  points : point list;
}

val default_grid : (int * int) list
(** The sweep used by the bench: intra in 10..400, inter in 5..100. *)

val run :
  ?config:Config.t ->
  ?grid:(int * int) list ->
  Ssta_circuit.Netlist.t ->
  t
(** Analyze the deterministic critical path of the circuit at each
    (Q_intra, Q_inter) of [grid] plus one finest reference point. *)

val knee : t -> point
(** The cheapest point with error below 0.3% — how the paper justifies
    (100, 50). *)

val pp : Format.formatter -> t -> unit
