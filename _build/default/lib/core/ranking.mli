(** Confidence-point ranking of analyzed paths and rank-change metrics.

    The paper ranks every near-critical path by a confidence point on its
    total delay PDF (the 3-sigma point) and contrasts the probabilistic
    ranking with the deterministic (nominal-delay) ranking: Figs. 5 and 6
    plot one against the other for c1355 (large churn) and c7552 (almost
    none). *)

type ranked = {
  analysis : Path_analysis.t;
  det_rank : int;  (** 1-based rank by nominal delay *)
  prob_rank : int;  (** 1-based rank by confidence point *)
}

val rank : Path_analysis.t list -> ranked array
(** Input in deterministic order (rank 1 first); output sorted by
    probabilistic rank.  Ties in confidence point are broken by
    deterministic rank for stability. *)

val probabilistic_critical : ranked array -> ranked
(** The path with probabilistic rank 1.  Raises [Invalid_argument] on an
    empty array. *)

val det_rank_of_prob_critical : ranked array -> int
(** The paper's Table 2 column 11. *)

val rank_pairs : ?first:int -> ranked array -> (int * int) array
(** [(det_rank, prob_rank)] for the paths with the [first] smallest
    probabilistic ranks (default all) — the data behind Figs. 5/6. *)

val rank_correlation : ranked array -> float
(** Spearman correlation between the two rankings (1.0 = no churn). *)

val max_rank_change : ranked array -> int
(** Largest |det_rank - prob_rank| over all paths. *)
