module Path_coeffs = Ssta_correlation.Path_coeffs
module Pdf = Ssta_prob.Pdf
module Dist = Ssta_prob.Dist

let variance (config : Config.t) coeffs =
  Path_coeffs.intra_variance coeffs config.Config.budget

let sigma config coeffs = sqrt (variance config coeffs)

let pdf_of_variance (config : Config.t) var =
  if var < 0.0 then invalid_arg "Intra.pdf_of_variance: negative variance";
  if var = 0.0 then Pdf.point_mass 0.0
  else
    Dist.truncated_gaussian ~n:config.Config.quality_intra
      ~bound:config.Config.truncation ~mu:0.0 ~sigma:(sqrt var) ()

let pdf config coeffs = pdf_of_variance config (variance config coeffs)
