(** Timing yield — the fraction of manufactured dies meeting a clock
    target.

    The paper's motivation for statistical analysis is exactly this
    question (its reference [11], Gattiker et al., "Timing Yield
    Estimation from Static Timing Analysis").  The yield at clock period
    T is P(circuit delay <= T); this module computes it from a delay PDF
    (a single path's, or the probabilistic critical path's as the
    paper's proxy for the circuit) and from Monte-Carlo circuit samples
    (the exact reference). *)

val of_pdf : Ssta_prob.Pdf.t -> clock:float -> float
(** P(delay <= clock) under the given delay PDF. *)

val clock_for_yield : Ssta_prob.Pdf.t -> yield:float -> float
(** Smallest clock period achieving the target [yield] (in [0, 1]). *)

val of_samples : float array -> clock:float -> float
(** Empirical yield from Monte-Carlo delay samples. *)

val curve :
  Ssta_prob.Pdf.t -> lo:float -> hi:float -> points:int
  -> (float * float) list
(** [(clock, yield)] pairs over a clock range (for plotting). *)

val of_methodology : Methodology.t -> clock:float -> float
(** Yield estimate from the probabilistic critical path's total PDF —
    optimistic by construction (ignores the other near-critical paths),
    but within the slack window of the exact value; the ablation bench
    compares it against Monte-Carlo. *)

val pessimistic_of_methodology : Methodology.t -> clock:float -> float
(** Product of per-path yields over all analyzed near-critical paths —
    the independence lower bound (paths are positively correlated, so
    the true yield lies between this and {!of_methodology}). *)
