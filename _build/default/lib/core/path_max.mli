(** Statistical maximum over the near-critical path set.

    The methodology ranks paths by a per-path confidence point; the
    circuit's delay, however, is the {e max} of all the path delays,
    which are strongly and heterogeneously correlated (shared inter-die
    RVs, shared gates, shared partitions).  This module folds Clark's
    max over path-level canonical forms whose sensitivities come from
    the Eq. (13) coefficients — so the pairwise correlations are exactly
    the analytic ones of {!Ssta_correlation.Path_correlation} — and
    returns the circuit-delay statistics.

    Compared against the two simple proxies, it closes the gap to
    Monte-Carlo from both sides: the probabilistic-critical-path proxy
    ignores the other paths (slightly optimistic), the independence
    product over-counts them (pessimistic). *)

type result = {
  mean : float;
  std : float;
  confidence_point : float;
  paths_used : int;
}

val canonical_of_analysis :
  Config.t -> Path_analysis.t -> Block_based.canonical
(** Path-level canonical form: mean from the path's numeric total PDF,
    linear terms from its Eq. (13) coefficients (inter RVs keyed on
    layer 0), and the residual numeric-vs-linearized variance as an
    independent term. *)

val statistical_max :
  ?config:Config.t -> ?max_paths:int -> Methodology.t -> result
(** Clark-fold over the analyzed paths in probabilistic rank order
    (up to [max_paths], default 200 — beyond the top ranks the
    contribution to the max is negligible). *)

val yield_at : ?config:Config.t -> Methodology.t -> clock:float -> float
(** Gaussian yield estimate from the statistical max:
    Phi((clock - mean) / std). *)
