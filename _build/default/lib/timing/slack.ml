module Netlist = Ssta_circuit.Netlist

type t = {
  clock : float;
  arrival : float array;
  required : float array;
  slack : float array;
}

let compute ?clock g =
  let arrival = Longest_path.bellman_ford g in
  let clock =
    match clock with
    | Some c -> c
    | None -> Longest_path.critical_delay g arrival
  in
  let n = Graph.num_nodes g in
  let required = Array.make n infinity in
  (* Primary outputs must settle by the clock edge. *)
  Array.iter
    (fun o -> required.(o) <- Float.min required.(o) clock)
    g.Graph.circuit.Netlist.outputs;
  (* Backward sweep (reverse node order is reverse-topological). *)
  for id = n - 1 downto 0 do
    if not (Graph.is_input g id) then begin
      let at_input = required.(id) -. g.Graph.delay.(id) in
      Array.iter
        (fun f -> if at_input < required.(f) then required.(f) <- at_input)
        (Graph.fanins g id)
    end
  done;
  let slack = Array.init n (fun id -> required.(id) -. arrival.(id)) in
  { clock; arrival; required; slack }

(* Nodes with infinite required time drive no primary output; they carry
   no timing obligation and are excluded from the worst-slack scan. *)
let on_a_path t id = t.required.(id) < infinity

let worst t =
  let best = ref infinity in
  Array.iteri
    (fun id s -> if on_a_path t id && s < !best then best := s)
    t.slack;
  !best

let worst_node t =
  let w = worst t in
  let found = ref (-1) in
  (try
     Array.iteri
       (fun id s ->
         if on_a_path t id && s <= w +. 1e-18 then begin
           found := id;
           raise Exit
         end)
       t.slack
   with Exit -> ());
  if !found < 0 then invalid_arg "Slack.worst_node: no timed nodes";
  !found

(* Backward and forward sweeps associate float additions differently, so
   nodes on the defining path can come out at -1e-25 instead of 0. *)
let noise t = 1e-12 *. (Float.abs t.clock +. 1e-18)

let violations t =
  let tol = noise t in
  let acc = ref [] in
  Array.iteri
    (fun id s -> if on_a_path t id && s < -.tol then acc := id :: !acc)
    t.slack;
  List.rev !acc

let critical_nodes ?(tolerance = 1e-15) t =
  let w = worst t in
  let acc = ref [] in
  Array.iteri
    (fun id s -> if on_a_path t id && s <= w +. tolerance then acc := id :: !acc)
    t.slack;
  List.rev !acc
