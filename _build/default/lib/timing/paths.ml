module Netlist = Ssta_circuit.Netlist

type path = { nodes : int array; delay : float }

type enumeration = {
  paths : path list;
  truncated : bool;
  critical_delay : float;
  slack : float;
}

let path_gates g p =
  Array.to_list p.nodes
  |> List.filter_map (fun id ->
         if Graph.is_input g id then None else Some (Graph.electrical_exn g id))

let path_gate_count g p =
  Array.fold_left
    (fun acc id -> if Graph.is_input g id then acc else acc + 1)
    0 p.nodes

let recompute_delay g nodes =
  Array.fold_left (fun acc id -> acc +. g.Graph.delay.(id)) 0.0 nodes

exception Limit

let enumerate ?(max_paths = 200_000) g ~labels ~slack =
  if slack < 0.0 then invalid_arg "Paths.enumerate: slack must be >= 0";
  if max_paths < 1 then invalid_arg "Paths.enumerate: max_paths must be >= 1";
  let critical = Longest_path.critical_delay g labels in
  let eps = 1e-15 +. (1e-12 *. Float.abs critical) in
  let collected = ref [] in
  let count = ref 0 in
  let truncated = ref false in
  (* Walk backwards from [id] with [budget] slack remaining; [suffix] is
     the node list from [id]'s consumer down to the output. *)
  let rec walk id budget suffix =
    let suffix = id :: suffix in
    if Graph.is_input g id then begin
      if !count >= max_paths then raise Limit;
      incr count;
      let nodes = Array.of_list suffix in
      collected := { nodes; delay = recompute_delay g nodes } :: !collected
    end
    else begin
      let arrival_before = labels.(id) -. g.Graph.delay.(id) in
      Array.iter
        (fun u ->
          let local_slack = arrival_before -. labels.(u) in
          if local_slack <= budget +. eps then
            walk u (budget -. local_slack) suffix)
        (Graph.fanins g id)
    end
  in
  (try
     Array.iter
       (fun o ->
         let budget = slack -. (critical -. labels.(o)) in
         if budget >= -.eps then walk o budget [])
       g.Graph.circuit.Netlist.outputs
   with Limit -> truncated := true);
  let paths =
    List.sort (fun a b -> compare b.delay a.delay) !collected
  in
  { paths; truncated = !truncated; critical_delay = critical; slack }

let is_path g nodes =
  let n = Array.length nodes in
  if n = 0 then false
  else if not (Graph.is_input g nodes.(0)) then false
  else if
    not
      (Array.exists
         (fun o -> o = nodes.(n - 1))
         g.Graph.circuit.Netlist.outputs)
  then false
  else begin
    let ok = ref true in
    for i = 1 to n - 1 do
      let fanins = Graph.fanins g nodes.(i) in
      if not (Array.exists (fun f -> f = nodes.(i - 1)) fanins) then ok := false
    done;
    !ok
  end
