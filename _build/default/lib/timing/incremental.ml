module Netlist = Ssta_circuit.Netlist
module Gate = Ssta_tech.Gate
module Elmore = Ssta_tech.Elmore

type t = {
  circuit : Netlist.t;
  wire_cap : float;
  drives : float array;
  delays : float array;
  labels : float array;
  fanouts : int array array;
  is_output : bool array;
}

let gate_delay_at t id =
  let g = Netlist.gate_of t.circuit id in
  let load_cap =
    Array.fold_left
      (fun acc f ->
        let kind = (Netlist.gate_of t.circuit f).Netlist.kind in
        acc +. Gate.input_cap ~drive:t.drives.(f) kind)
      (if t.is_output.(id) then Gate.c_gate_input else 0.0)
      t.fanouts.(id)
  in
  let e =
    Gate.electrical
      ~fanout:(Array.length t.fanouts.(id))
      ~wire_cap:t.wire_cap ~load_cap ~drive:t.drives.(id) g.Netlist.kind
  in
  Elmore.nominal_delay e

let arrival_of t id =
  if Netlist.is_input t.circuit id then 0.0
  else begin
    let best = ref 0.0 in
    Array.iter
      (fun f -> if t.labels.(f) > !best then best := t.labels.(f))
      (Netlist.gate_of t.circuit id).Netlist.fanins;
    !best +. t.delays.(id)
  end

let create ?(wire_cap = 1.0e-15) circuit =
  let n = Netlist.num_nodes circuit in
  let fanouts = Netlist.fanouts circuit in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) circuit.Netlist.outputs;
  let t =
    { circuit;
      wire_cap;
      drives = Array.make n 1.0;
      delays = Array.make n 0.0;
      labels = Array.make n 0.0;
      fanouts;
      is_output }
  in
  Array.iter
    (fun (g : Netlist.gate) ->
      t.delays.(g.Netlist.id) <- gate_delay_at t g.Netlist.id)
    circuit.Netlist.gates;
  (* node order is topological *)
  for id = 0 to n - 1 do
    t.labels.(id) <- arrival_of t id
  done;
  t

let arrival t id = t.labels.(id)
let delay t id = t.delays.(id)
let drive t id = t.drives.(id)

let critical_delay t =
  Array.fold_left
    (fun acc o -> Float.max acc t.labels.(o))
    0.0 t.circuit.Netlist.outputs

(* Worklist propagation in topological (node id) order. *)
module Ids = Set.Make (Int)

let set_drive t id d =
  if Netlist.is_input t.circuit id then
    invalid_arg "Incremental.set_drive: node is a primary input";
  if d <= 0.0 then invalid_arg "Incremental.set_drive: drive must be positive";
  t.drives.(id) <- d;
  (* Delays that depend on the edit: the gate itself (its own width) and
     its gate fan-ins (their output load includes id's input cap). *)
  let delay_dirty =
    Array.fold_left
      (fun acc f ->
        if Netlist.is_input t.circuit f then acc else Ids.add f acc)
      (Ids.singleton id)
      (Netlist.gate_of t.circuit id).Netlist.fanins
  in
  let arrival_dirty = ref Ids.empty in
  Ids.iter
    (fun n ->
      let fresh = gate_delay_at t n in
      if fresh <> t.delays.(n) then begin
        t.delays.(n) <- fresh;
        arrival_dirty := Ids.add n !arrival_dirty
      end)
    delay_dirty;
  let changed = ref 0 in
  let rec drain work =
    match Ids.min_elt_opt work with
    | None -> ()
    | Some n ->
        let work = Ids.remove n work in
        let fresh = arrival_of t n in
        if fresh <> t.labels.(n) then begin
          t.labels.(n) <- fresh;
          incr changed;
          (* consumers have larger ids (topological order), so the
             min-first drain visits each node at most once per wave *)
          drain
            (Array.fold_left (fun acc c -> Ids.add c acc) work t.fanouts.(n))
        end
        else drain work
  in
  drain !arrival_dirty;
  !changed

let to_graph t = Graph.with_drives ~wire_cap:t.wire_cap t.circuit t.drives

let labels_reference t = Longest_path.bellman_ford (to_graph t)
