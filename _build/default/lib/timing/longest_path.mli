(** Longest-path (arrival-time) labels.

    The paper computes the delay label of every node — the maximum
    arrival time from the source — with Bellman-Ford (Section 3.1).
    Because a netlist is a DAG by construction, a single topological
    sweep gives the same labels in O(N + E); both are implemented and
    cross-checked in the tests.  The arrival of a node includes its own
    gate delay (inputs arrive at 0). *)

val bellman_ford : Graph.t -> float array
(** Iterative relaxation exactly as in the paper; O(N * E) worst case,
    terminating early once a sweep changes nothing. *)

val topological : Graph.t -> float array
(** Single forward sweep in node order (which is topological). *)

val critical_delay : Graph.t -> float array -> float
(** Maximum label over the primary outputs. *)

val critical_output : Graph.t -> float array -> int
(** The primary output that realizes {!critical_delay} (smallest id on
    ties). *)

val critical_path : Graph.t -> float array -> int array
(** One maximum-delay path, source input first, critical output last
    (greedy backward trace; ties broken towards smaller node ids). *)
