lib/timing/sta.mli: Format Graph Paths Ssta_circuit Ssta_tech
