lib/timing/slack.ml: Array Float Graph List Longest_path Ssta_circuit
