lib/timing/incremental.ml: Array Float Graph Int Longest_path Set Ssta_circuit Ssta_tech
