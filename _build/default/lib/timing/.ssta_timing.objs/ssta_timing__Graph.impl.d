lib/timing/graph.ml: Array List Ssta_circuit Ssta_tech
