lib/timing/longest_path.mli: Graph
