lib/timing/incremental.mli: Graph Ssta_circuit
