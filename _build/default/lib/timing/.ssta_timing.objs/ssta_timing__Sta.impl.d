lib/timing/sta.ml: Format Graph Longest_path Paths Ssta_circuit Ssta_tech
