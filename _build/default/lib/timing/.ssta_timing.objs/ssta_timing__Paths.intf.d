lib/timing/paths.mli: Graph Ssta_tech
