lib/timing/shortest_path.mli: Graph Paths
