lib/timing/shortest_path.ml: Array Float Graph List Paths Ssta_circuit
