lib/timing/longest_path.ml: Array Float Graph Ssta_circuit
