lib/timing/slack.mli: Graph
