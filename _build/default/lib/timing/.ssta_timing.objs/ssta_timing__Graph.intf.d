lib/timing/graph.mli: Ssta_circuit Ssta_tech
