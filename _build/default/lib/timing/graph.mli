(** Timing graph: a netlist annotated with electrical gate models and
    nominal delays.

    The paper maps the circuit to a timing graph once, evaluating every
    gate's deterministic delay and its delay derivatives at nominal
    ("these are one time calculations", Section 3).  Primary inputs are
    zero-delay source nodes. *)

type t = {
  circuit : Ssta_circuit.Netlist.t;
  electrical : Ssta_tech.Gate.electrical option array;
      (** per node; [None] for primary inputs *)
  delay : float array;  (** nominal gate delay per node (s); 0 for inputs *)
  fanouts : int array array;  (** consumers per node *)
}

val of_netlist : ?wire_cap:float -> Ssta_circuit.Netlist.t -> t
(** Build the graph; each gate's electrical model uses its actual fanout
    count for the output load (default [wire_cap] 1 fF). *)

val with_drives :
  ?wire_cap:float -> Ssta_circuit.Netlist.t -> float array -> t
(** Like {!of_netlist} but with a per-node drive-strength multiplier
    (index = node id; entries for primary inputs are ignored).  A gate's
    output load is the sum of its consumers' input capacitances at
    {e their} drives (upsizing a gate speeds it up but slows its
    fan-ins), plus one pin capacitance per primary-output connection.
    Raises [Invalid_argument] on a length mismatch or non-positive
    drive. *)

val with_params_of :
  ?wire_cap:float ->
  Ssta_circuit.Netlist.t ->
  (int -> Ssta_tech.Params.t) ->
  t
(** Like {!of_netlist} but evaluating each gate's nominal delay at a
    per-gate operating point (e.g. dual-Vt class assignments:
    {!Ssta_tech.Vt_class.params_for}). *)

val with_wire_caps : Ssta_circuit.Netlist.t -> float array -> t
(** Like {!of_netlist} but with an explicit per-node wire capacitance
    (e.g. from a SPEF annotation, {!Ssta_circuit.Spef.apply}).  Raises
    [Invalid_argument] on length mismatch or negative caps. *)

val of_placed :
  ?wire:Ssta_tech.Wire.params ->
  Ssta_circuit.Netlist.t ->
  Ssta_circuit.Placement.t ->
  t
(** Placement-aware construction: each gate's wire capacitance comes from
    the half-perimeter length of its fan-out net (see
    {!Ssta_tech.Wire}), so physically long nets load their drivers —
    the "more complex interconnect models" refinement the paper
    attributes to path-based analysis. *)

val num_nodes : t -> int
val is_input : t -> int -> bool

val electrical_exn : t -> int -> Ssta_tech.Gate.electrical
(** Raises [Invalid_argument] on primary inputs. *)

val fanins : t -> int -> int array
(** Fan-ins of a node ([||] for primary inputs). *)

val total_nominal_delay : t -> float
(** Sum of all gate delays (a sanity metric used in tests). *)
