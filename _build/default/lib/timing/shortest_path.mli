(** Shortest-path (earliest-arrival) labels — the hold-time dual.

    The paper analyzes only the slowest (setup-limiting) paths; a
    production timer also needs the fastest paths, whose delays bound
    hold-time safety and which are checked against the {e best}-case
    corner.  The algorithms mirror {!Longest_path} with min instead of
    max. *)

val labels : Graph.t -> float array
(** Earliest arrival per node (a node's own delay included; inputs 0). *)

val min_delay : Graph.t -> float array -> float
(** Minimum over the primary outputs of the earliest arrival — the
    circuit's shortest input-to-output path delay. *)

val min_output : Graph.t -> float array -> int
(** The output realizing {!min_delay} (smallest id on ties). *)

val min_path : Graph.t -> float array -> int array
(** One minimum-delay path, input first, output last. *)

val enumerate_near_min :
  ?max_paths:int -> Graph.t -> labels:float array -> slack:float
  -> Paths.enumeration
(** All input-to-output paths with delay <= min_delay + slack, sorted by
    {e increasing} delay.  [slack] must be non-negative. *)
