let relax_once g labels =
  let changed = ref false in
  let n = Graph.num_nodes g in
  for id = 0 to n - 1 do
    if not (Graph.is_input g id) then begin
      let best = ref neg_infinity in
      Array.iter
        (fun f -> if labels.(f) > !best then best := labels.(f))
        (Graph.fanins g id);
      let candidate = !best +. g.Graph.delay.(id) in
      if candidate > labels.(id) then begin
        labels.(id) <- candidate;
        changed := true
      end
    end
  done;
  !changed

let bellman_ford g =
  let n = Graph.num_nodes g in
  let labels =
    Array.init n (fun id -> if Graph.is_input g id then 0.0 else neg_infinity)
  in
  (* At most N sweeps are ever needed; the DAG structure means far fewer
     in practice (node order is topological, so one suffices — but we
     keep the paper's fixed-point iteration and stop when stable). *)
  let rec iterate remaining =
    if remaining > 0 && relax_once g labels then iterate (remaining - 1)
  in
  iterate n;
  labels

let topological g =
  let n = Graph.num_nodes g in
  let labels = Array.make n 0.0 in
  for id = 0 to n - 1 do
    if not (Graph.is_input g id) then begin
      let best = ref 0.0 in
      Array.iter
        (fun f -> if labels.(f) > !best then best := labels.(f))
        (Graph.fanins g id);
      labels.(id) <- !best +. g.Graph.delay.(id)
    end
  done;
  labels

let critical_delay g labels =
  Array.fold_left
    (fun acc o -> Float.max acc labels.(o))
    neg_infinity g.Graph.circuit.Ssta_circuit.Netlist.outputs

let critical_output g labels =
  let best = ref (-1) in
  Array.iter
    (fun o ->
      match !best with
      | -1 -> best := o
      | b -> if labels.(o) > labels.(b) then best := o)
    g.Graph.circuit.Ssta_circuit.Netlist.outputs;
  if !best < 0 then invalid_arg "Longest_path.critical_output: no outputs";
  !best

let critical_path g labels =
  let rec trace acc id =
    let acc = id :: acc in
    if Graph.is_input g id then acc
    else begin
      let arrival_before = labels.(id) -. g.Graph.delay.(id) in
      let fanins = Graph.fanins g id in
      let best = ref (-1) in
      Array.iter
        (fun f ->
          if !best < 0
             && Float.abs (labels.(f) -. arrival_before) <= 1e-18 +. (1e-12 *. Float.abs arrival_before)
          then best := f)
        fanins;
      (* Guard against float drift: fall back to the max-label fan-in. *)
      if !best < 0 then begin
        Array.iter
          (fun f ->
            match !best with
            | -1 -> best := f
            | b -> if labels.(f) > labels.(b) then best := f)
          fanins;
        if !best < 0 then invalid_arg "Longest_path.critical_path: dangling gate"
      end;
      trace acc !best
    end
  in
  Array.of_list (trace [] (critical_output g labels))
