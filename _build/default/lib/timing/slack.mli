(** Required times and slacks.

    Given a clock target T, the required time at a primary output is T;
    propagating backwards, a node's required time is the minimum over
    its consumers of (their required time minus their gate delay).  The
    node's slack is (required - arrival): negative slack marks the nodes
    that violate the target, zero slack marks the critical ones. *)

type t = {
  clock : float;
  arrival : float array;  (** Bellman-Ford labels *)
  required : float array;
  slack : float array;
}

val compute : ?clock:float -> Graph.t -> t
(** [compute g] with the default clock equal to the critical delay (so
    the critical path has slack 0 and nothing is negative).  An explicit
    [clock] may produce negative slacks. *)

val worst : t -> float
(** Minimum slack over all nodes on some input-output path. *)

val worst_node : t -> int
(** A node realizing {!worst} (smallest id on ties). *)

val violations : t -> int list
(** Nodes with negative slack (ascending ids; a relative-epsilon guard
    absorbs float noise from the forward/backward sweeps). *)

val critical_nodes : ?tolerance:float -> t -> int list
(** Nodes whose slack is within [tolerance] (default 1e-15 s) of
    {!worst} — the paper's critical path(s) as a node set. *)
