(** Incremental timing: keep arrival labels valid across gate resizes.

    The sizing optimizer re-times the circuit after every round; a
    from-scratch Bellman-Ford is O(N+E) per edit.  This engine maintains
    the arrival labels under drive-strength edits with a worklist that
    only touches the affected fan-out cone (plus the edited gate's
    fan-ins, whose loads change), which is how production timers make
    optimization loops tractable.

    Equivalence with the from-scratch computation is enforced by
    property tests over random edit sequences. *)

type t

val create : ?wire_cap:float -> Ssta_circuit.Netlist.t -> t
(** All drives start at 1.0. *)

val arrival : t -> int -> float
(** Current arrival label of a node. *)

val delay : t -> int -> float
(** Current gate delay of a node (0 for inputs). *)

val drive : t -> int -> float

val critical_delay : t -> float
(** Max arrival over the primary outputs. *)

val set_drive : t -> int -> float -> int
(** [set_drive t id d] changes gate [id]'s drive strength, re-evaluates
    the delays of [id] and of its fan-in gates (their loads changed),
    and repropagates arrivals through the affected cone.  Returns the
    number of nodes whose arrival changed.  Raises [Invalid_argument]
    for primary inputs or non-positive drives. *)

val labels_reference : t -> float array
(** From-scratch labels on an equivalent graph (for validation). *)

val to_graph : t -> Graph.t
(** Snapshot of the current state as an ordinary timing graph. *)
