module Netlist = Ssta_circuit.Netlist
module Gate = Ssta_tech.Gate
module Elmore = Ssta_tech.Elmore

type t = {
  circuit : Netlist.t;
  electrical : Gate.electrical option array;
  delay : float array;
  fanouts : int array array;
}

let of_netlist ?(wire_cap = 1.0e-15) c =
  let n = Netlist.num_nodes c in
  let fanouts = Netlist.fanouts c in
  let electrical = Array.make n None in
  let delay = Array.make n 0.0 in
  Array.iter
    (fun (g : Netlist.gate) ->
      let fanout = Array.length fanouts.(g.Netlist.id) in
      let e = Gate.electrical ~fanout ~wire_cap g.Netlist.kind in
      electrical.(g.Netlist.id) <- Some e;
      delay.(g.Netlist.id) <- Elmore.nominal_delay e)
    c.Netlist.gates;
  { circuit = c; electrical; delay; fanouts }

let with_params_of ?(wire_cap = 1.0e-15) c params_of =
  let n = Netlist.num_nodes c in
  let fanouts = Netlist.fanouts c in
  let electrical = Array.make n None in
  let delay = Array.make n 0.0 in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let fanout = Array.length fanouts.(id) in
      let e = Gate.electrical ~fanout ~wire_cap g.Netlist.kind in
      electrical.(id) <- Some e;
      delay.(id) <- Elmore.gate_delay e (params_of id))
    c.Netlist.gates;
  { circuit = c; electrical; delay; fanouts }

let with_wire_caps c wire_caps =
  let n = Netlist.num_nodes c in
  if Array.length wire_caps <> n then
    invalid_arg "Graph.with_wire_caps: one capacitance per node required";
  Array.iter
    (fun w ->
      if w < 0.0 then invalid_arg "Graph.with_wire_caps: negative capacitance")
    wire_caps;
  let fanouts = Netlist.fanouts c in
  let electrical = Array.make n None in
  let delay = Array.make n 0.0 in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let fanout = Array.length fanouts.(id) in
      let e =
        Gate.electrical ~fanout ~wire_cap:wire_caps.(id) g.Netlist.kind
      in
      electrical.(id) <- Some e;
      delay.(id) <- Elmore.nominal_delay e)
    c.Netlist.gates;
  { circuit = c; electrical; delay; fanouts }

let with_drives ?(wire_cap = 1.0e-15) c drives =
  let n = Netlist.num_nodes c in
  if Array.length drives <> n then
    invalid_arg "Graph.with_drives: one drive per node required";
  Array.iteri
    (fun id d ->
      if (not (Netlist.is_input c id)) && d <= 0.0 then
        invalid_arg "Graph.with_drives: drives must be positive")
    drives;
  let fanouts = Netlist.fanouts c in
  let is_output = Array.make n false in
  Array.iter (fun o -> is_output.(o) <- true) c.Netlist.outputs;
  let electrical = Array.make n None in
  let delay = Array.make n 0.0 in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let load_cap =
        Array.fold_left
          (fun acc f ->
            let kind = (Netlist.gate_of c f).Netlist.kind in
            acc +. Gate.input_cap ~drive:drives.(f) kind)
          (if is_output.(id) then Gate.c_gate_input else 0.0)
          fanouts.(id)
      in
      let fanout = Array.length fanouts.(id) in
      let e =
        Gate.electrical ~fanout ~wire_cap ~load_cap ~drive:drives.(id)
          g.Netlist.kind
      in
      electrical.(id) <- Some e;
      delay.(id) <- Elmore.nominal_delay e)
    c.Netlist.gates;
  { circuit = c; electrical; delay; fanouts }

let of_placed ?(wire = Ssta_tech.Wire.default) c (pl : Ssta_circuit.Placement.t) =
  let n = Netlist.num_nodes c in
  let fanouts = Netlist.fanouts c in
  let electrical = Array.make n None in
  let delay = Array.make n 0.0 in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let sinks =
        Array.to_list fanouts.(id)
        |> List.map (fun f -> Ssta_circuit.Placement.coord pl f)
      in
      let wire_cap =
        Ssta_tech.Wire.net_cap wire (Ssta_circuit.Placement.coord pl id) sinks
      in
      let fanout = Array.length fanouts.(id) in
      let e = Gate.electrical ~fanout ~wire_cap g.Netlist.kind in
      electrical.(id) <- Some e;
      delay.(id) <- Elmore.nominal_delay e)
    c.Netlist.gates;
  { circuit = c; electrical; delay; fanouts }

let num_nodes t = Netlist.num_nodes t.circuit
let is_input t id = Netlist.is_input t.circuit id

let electrical_exn t id =
  match t.electrical.(id) with
  | Some e -> e
  | None -> invalid_arg "Graph.electrical_exn: node is a primary input"

let fanins t id =
  if is_input t id then [||] else (Netlist.gate_of t.circuit id).Netlist.fanins

let total_nominal_delay t = Array.fold_left ( +. ) 0.0 t.delay
