(** Special functions for Gaussian probability computations.

    The sealed build environment has no numerical library, so the error
    function and its relatives are implemented from scratch.  Accuracy is
    more than sufficient for the discretized-PDF engine (absolute error
    below 1.5e-7 for {!erf} and, consequently, for the refined
    {!inverse_normal_cdf} over (0, 1)). *)

val erf : float -> float
(** [erf x] is the Gauss error function
    (2/sqrt pi) * integral of exp(-t^2) for t in [0, x]. *)

val erfc : float -> float
(** [erfc x] is [1 -. erf x], computed without cancellation for large [x]. *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** [normal_cdf ~mu ~sigma x] is the CDF of the normal distribution with
    mean [mu] (default 0) and standard deviation [sigma] (default 1),
    evaluated at [x].  [sigma] must be positive. *)

val normal_pdf : ?mu:float -> ?sigma:float -> float -> float
(** [normal_pdf ~mu ~sigma x] is the density of the normal distribution at
    [x]. *)

val inverse_normal_cdf : float -> float
(** [inverse_normal_cdf p] is the standard-normal quantile function
    Phi^-1(p) for [p] in (0, 1).  Raises [Invalid_argument] outside the
    open interval. *)
