let gaussian ?(n = 200) ~mu ~sigma () =
  if sigma <= 0.0 then invalid_arg "Dist.gaussian: sigma must be positive";
  let span = 8.0 *. sigma in
  Pdf.of_fun ~lo:(mu -. span) ~hi:(mu +. span) ~n (fun x ->
      Erf.normal_pdf ~mu ~sigma x)

let truncated_gaussian ?(n = 200) ?(bound = 6.0) ~mu ~sigma () =
  if sigma <= 0.0 then
    invalid_arg "Dist.truncated_gaussian: sigma must be positive";
  if bound <= 0.0 then
    invalid_arg "Dist.truncated_gaussian: bound must be positive";
  let span = bound *. sigma in
  Pdf.of_fun ~lo:(mu -. span) ~hi:(mu +. span) ~n (fun x ->
      Erf.normal_pdf ~mu ~sigma x)

let uniform ?(n = 100) ~lo ~hi () =
  if not (hi > lo) then invalid_arg "Dist.uniform: hi must exceed lo";
  Pdf.of_fun ~lo ~hi ~n (fun _ -> 1.0)

let triangular ?(n = 200) ~lo ~mode ~hi () =
  if not (lo <= mode && mode <= hi && hi > lo) then
    invalid_arg "Dist.triangular: require lo <= mode <= hi, lo < hi";
  Pdf.of_fun ~lo ~hi ~n (fun x ->
      if x < mode then
        if mode > lo then (x -. lo) /. (mode -. lo) else 0.0
      else if hi > mode then (hi -. x) /. (hi -. mode)
      else 0.0)

let exponential ?(n = 200) ?(tail = 1e-6) ~rate () =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  if not (tail > 0.0 && tail < 1.0) then
    invalid_arg "Dist.exponential: tail must be in (0, 1)";
  let hi = -.log tail /. rate in
  Pdf.of_fun ~lo:0.0 ~hi ~n (fun x -> rate *. exp (-.rate *. x))
