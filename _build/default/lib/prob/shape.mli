(** Parameter distribution shapes.

    The paper notes that a common restriction of contemporary SSTA
    methods is "a certain kind of input PDF (usually Gaussian)" and that
    a numeric path-based engine need not be restricted this way.  This
    module provides interchangeable shapes with {e matched mean and
    variance}, so the inter-die machinery (a numeric push-forward) can
    run on any of them unchanged. *)

type t = Gaussian | Uniform | Triangular

val all : t list
val name : t -> string
val of_name : string -> t option

val pdf : t -> n:int -> bound:float -> mu:float -> sigma:float -> Pdf.t
(** Discretized PDF with mean [mu] and standard deviation [sigma]:
    - [Gaussian]: truncated at [mu +- bound * sigma];
    - [Uniform]: support [mu +- sqrt 3 * sigma];
    - [Triangular]: symmetric, support [mu +- sqrt 6 * sigma].
    [sigma] must be positive. *)

val sample : t -> Rng.t -> bound:float -> mu:float -> sigma:float -> float
(** Draw from the same distribution (for Monte-Carlo consistency). *)
