lib/prob/shape.ml: Dist Rng String
