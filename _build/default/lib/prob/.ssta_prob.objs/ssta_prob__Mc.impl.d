lib/prob/mc.ml: Array Float Pdf Stats
