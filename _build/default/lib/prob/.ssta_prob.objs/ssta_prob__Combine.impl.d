lib/prob/combine.ml: Array Float Int List Pdf
