lib/prob/stats.mli: Pdf
