lib/prob/erf.ml: Array Float
