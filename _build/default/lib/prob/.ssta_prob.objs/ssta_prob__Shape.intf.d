lib/prob/shape.mli: Pdf Rng
