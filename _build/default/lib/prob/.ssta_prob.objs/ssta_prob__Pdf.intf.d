lib/prob/pdf.mli: Format Rng
