lib/prob/rng.mli:
