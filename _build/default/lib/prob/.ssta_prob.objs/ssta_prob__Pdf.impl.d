lib/prob/pdf.ml: Array Float Format Int Rng
