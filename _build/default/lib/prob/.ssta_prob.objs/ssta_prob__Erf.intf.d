lib/prob/erf.mli:
