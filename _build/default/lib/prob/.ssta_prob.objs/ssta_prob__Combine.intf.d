lib/prob/combine.mli: Pdf
