lib/prob/dist.ml: Erf Pdf
