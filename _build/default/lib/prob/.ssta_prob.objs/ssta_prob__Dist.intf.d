lib/prob/dist.mli: Pdf
