lib/prob/mc.mli: Pdf Rng Stats
