(** Generic Monte-Carlo driver.

    The paper validates its analytic PDFs implicitly; this reproduction
    validates them explicitly by sampling the exact nonlinear delay model
    with correlated parameters and comparing summaries. *)

type result = {
  samples : float array;
  summary : Stats.summary;
  empirical : Pdf.t;  (** histogram estimate of the sampled distribution *)
}

val run : ?bins:int -> n:int -> Rng.t -> (Rng.t -> float) -> result
(** [run ~n rng draw] evaluates [draw rng] [n] times ([n >= 2]) and
    summarizes.  [bins] controls the histogram resolution (default 100). *)

val compare_to_pdf : result -> Pdf.t -> float * float * float
(** [compare_to_pdf r pdf] is
    [(mean error, std error, KS distance)] between the sampled population
    and an analytic PDF — the validation triple used by the ablation
    benches. *)
