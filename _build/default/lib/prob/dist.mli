(** Standard distribution constructors on the discretized-PDF grid.

    The paper assumes Gaussian parameter distributions truncated at their
    6-sigma points (Section 4); {!truncated_gaussian} is therefore the
    workhorse constructor. *)

val gaussian : ?n:int -> mu:float -> sigma:float -> unit -> Pdf.t
(** [gaussian ~n ~mu ~sigma ()] discretizes N(mu, sigma^2) over
    [mu - 8 sigma, mu + 8 sigma] with [n] cells (default 200).
    [sigma] must be positive. *)

val truncated_gaussian :
  ?n:int -> ?bound:float -> mu:float -> sigma:float -> unit -> Pdf.t
(** [truncated_gaussian ~n ~bound ~mu ~sigma ()] is N(mu, sigma^2)
    conditioned on [mu +- bound*sigma] (default bound 6.0, the paper's
    truncation), renormalized, with [n] cells (default 200). *)

val uniform : ?n:int -> lo:float -> hi:float -> unit -> Pdf.t
(** Uniform density on [lo, hi). *)

val triangular : ?n:int -> lo:float -> mode:float -> hi:float -> unit -> Pdf.t
(** Triangular density with the given support and mode. *)

val exponential : ?n:int -> ?tail:float -> rate:float -> unit -> Pdf.t
(** Exponential with the given [rate], truncated at quantile
    [1 - tail] (default tail 1e-6). *)
