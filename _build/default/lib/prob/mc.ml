type result = {
  samples : float array;
  summary : Stats.summary;
  empirical : Pdf.t;
}

let run ?(bins = 100) ~n rng draw =
  if n < 2 then invalid_arg "Mc.run: need at least 2 samples";
  let samples = Array.init n (fun _ -> draw rng) in
  { samples;
    summary = Stats.summarize samples;
    empirical = Pdf.of_samples ~n:bins samples }

let compare_to_pdf r pdf =
  let mean_err = Float.abs (r.summary.Stats.mean -. Pdf.mean pdf) in
  let std_err = Float.abs (r.summary.Stats.std -. Pdf.std pdf) in
  let ks = Stats.ks_against_pdf r.samples pdf in
  (mean_err, std_err, ks)
