(** Descriptive statistics over raw float samples.

    Used by the Monte-Carlo golden baseline and by the test suite to
    validate the discretized-PDF engine against sampling. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** unbiased (n-1) estimator *)
  std : float;
  min : float;
  max : float;
  skewness : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on fewer than 2 samples. *)

val mean : float array -> float
val variance : float array -> float
val std : float array -> float

val percentile : float array -> float -> float
(** [percentile xs q] for [q] in [0, 1], linear interpolation between order
    statistics.  Sorts a copy; O(n log n). *)

val sigma_point : float array -> float -> float
(** [sigma_point xs k] = sample mean + k * sample std. *)

val ks_against_pdf : float array -> Pdf.t -> float
(** Kolmogorov-Smirnov statistic between the empirical CDF of the samples
    and a discretized PDF. *)

val correlation : float array -> float array -> float
(** Pearson correlation coefficient; arrays must have equal length >= 2. *)

val spearman : float array -> float array -> float
(** Spearman rank correlation (ties broken by index order). *)
