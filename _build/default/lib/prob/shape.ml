type t = Gaussian | Uniform | Triangular

let all = [ Gaussian; Uniform; Triangular ]

let name = function
  | Gaussian -> "gaussian"
  | Uniform -> "uniform"
  | Triangular -> "triangular"

let of_name s =
  match String.lowercase_ascii s with
  | "gaussian" | "normal" -> Some Gaussian
  | "uniform" -> Some Uniform
  | "triangular" -> Some Triangular
  | _ -> None

let sqrt3 = sqrt 3.0
let sqrt6 = sqrt 6.0

let pdf shape ~n ~bound ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Shape.pdf: sigma must be positive";
  match shape with
  | Gaussian -> Dist.truncated_gaussian ~n ~bound ~mu ~sigma ()
  | Uniform ->
      let h = sqrt3 *. sigma in
      Dist.uniform ~n ~lo:(mu -. h) ~hi:(mu +. h) ()
  | Triangular ->
      let h = sqrt6 *. sigma in
      Dist.triangular ~n ~lo:(mu -. h) ~mode:mu ~hi:(mu +. h) ()

let sample shape rng ~bound ~mu ~sigma =
  if sigma <= 0.0 then invalid_arg "Shape.sample: sigma must be positive";
  match shape with
  | Gaussian -> Rng.truncated_gaussian rng ~mu ~sigma ~bound
  | Uniform ->
      let h = sqrt3 *. sigma in
      Rng.uniform rng ~lo:(mu -. h) ~hi:(mu +. h)
  | Triangular ->
      (* Sum of two uniforms on [-h/2, h/2] is triangular on [-h, h]. *)
      let h = sqrt6 *. sigma in
      let u () = Rng.uniform rng ~lo:(-.h /. 2.0) ~hi:(h /. 2.0) in
      mu +. u () +. u ()
