type summary = {
  count : int;
  mean : float;
  variance : float;
  std : float;
  min : float;
  max : float;
  skewness : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.variance: need at least 2 samples";
  let mu = mean xs in
  let ss = Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.0)) 0.0 xs in
  ss /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let summarize xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.summarize: need at least 2 samples";
  let mu = mean xs in
  let m2 = ref 0.0 and m3 = ref 0.0 in
  let mn = ref xs.(0) and mx = ref xs.(0) in
  Array.iter
    (fun x ->
      let d = x -. mu in
      m2 := !m2 +. (d *. d);
      m3 := !m3 +. (d *. d *. d);
      if x < !mn then mn := x;
      if x > !mx then mx := x)
    xs;
  let var = !m2 /. float_of_int (n - 1) in
  let sd = sqrt var in
  let skew =
    if sd > 0.0 then !m3 /. float_of_int n /. (sd *. sd *. sd) else 0.0
  in
  { count = n; mean = mu; variance = var; std = sd; min = !mn; max = !mx;
    skewness = skew }

let percentile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if q < 0.0 || q > 1.0 then
    invalid_arg "Stats.percentile: q must be in [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let i = int_of_float (Float.floor pos) in
  if i >= n - 1 then sorted.(n - 1)
  else begin
    let frac = pos -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

let sigma_point xs k = mean xs +. (k *. std xs)

let ks_against_pdf xs pdf =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.ks_against_pdf: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let worst = ref 0.0 in
  Array.iteri
    (fun i x ->
      let f = Pdf.cdf pdf x in
      let e_hi = float_of_int (i + 1) /. float_of_int n in
      let e_lo = float_of_int i /. float_of_int n in
      worst := Float.max !worst (Float.max (Float.abs (f -. e_hi))
                                   (Float.abs (f -. e_lo))))
    sorted;
  !worst

let correlation xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then
    invalid_arg "Stats.correlation: length mismatch";
  if n < 2 then invalid_arg "Stats.correlation: need at least 2 samples";
  let mx = mean xs and my = mean ys in
  let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxy := !sxy +. (dx *. dy);
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy)
  done;
  if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let r = Array.make n 0.0 in
  Array.iteri (fun rank idx -> r.(idx) <- float_of_int rank) order;
  r

let spearman xs ys = correlation (ranks xs) (ranks ys)
