(* Statistical dual-Vt leakage optimization — the application the
   paper's delay model was born in (its ref [13], Wei et al.): move
   every gate the statistical timing can spare onto the high-threshold,
   low-leakage class, and prove the 3-sigma timing target still holds
   with correlated Monte-Carlo.

     dune exec examples/dual_vt_leakage.exe *)

module Iscas85 = Ssta_circuit.Iscas85
module Elmore = Ssta_tech.Elmore
module Vt_class = Ssta_tech.Vt_class
module Sta = Ssta_timing.Sta
open Ssta_core

let ps = Elmore.ps

let () =
  let spec =
    match Iscas85.by_name "c880" with
    | Some s -> s
    | None -> failwith "c880 missing"
  in
  let circuit, placement = Iscas85.build_placed spec in
  let config = Config.with_quality Config.default ~intra:60 ~inter:24 in

  (* Baseline: everything low-Vt. *)
  let m = Methodology.run ~config ~placement circuit in
  let base3 =
    m.Methodology.prob_critical.Ranking.analysis.Path_analysis
    .confidence_point
  in
  Format.printf "%s, all gates low-Vt: 3-sigma point %.3f ps@."
    m.Methodology.circuit_name (ps base3);

  (* Allow 5%% timing degradation at 3-sigma confidence. *)
  let target = 1.05 *. base3 in
  Format.printf "target: 3-sigma point <= %.3f ps (+5%%)@." (ps target);
  let r = Dual_vt.optimize ~config ~placement ~target circuit in
  Format.printf "result (%d demotion rounds): %s@." r.Dual_vt.iterations
    (if r.Dual_vt.met then "target met" else "target NOT met");
  Format.printf "  high-Vt gates: %d of %d (%.1f%%)@." r.Dual_vt.high_count
    r.Dual_vt.gate_count
    (float_of_int r.Dual_vt.high_count
    /. float_of_int r.Dual_vt.gate_count *. 100.0);
  Format.printf "  3-sigma point: %.3f -> %.3f ps@."
    (ps r.Dual_vt.sigma3_all_low)
    (ps r.Dual_vt.sigma3_final);
  Format.printf "  leakage proxy: %.4g -> %.4g (%.1f%% saved)@."
    r.Dual_vt.leakage_all_low r.Dual_vt.leakage_final
    ((r.Dual_vt.leakage_all_low -. r.Dual_vt.leakage_final)
    /. r.Dual_vt.leakage_all_low *. 100.0);

  (* Exact validation: correlated Monte-Carlo with per-gate nominals. *)
  let graph = Dual_vt.graph_for circuit r.Dual_vt.assignment in
  let sta = Sta.of_graph graph in
  let sampler =
    Monte_carlo.sampler
      ~nominal_of:(fun id -> Vt_class.params_for r.Dual_vt.assignment.(id))
      config graph placement
  in
  let samples =
    Monte_carlo.path_delay_samples sampler ~n:20_000
      (Ssta_prob.Rng.create 7) sta.Sta.critical_path
  in
  let mc3 = Ssta_prob.Stats.sigma_point samples 3.0 in
  Format.printf
    "@.Monte-Carlo check of the final critical path (20k dies): 3-sigma \
     %.3f ps — %s the target@."
    (ps mc3)
    (if mc3 <= target then "within" else "ABOVE");

  (* Where did the slack come from?  Class histogram by logic depth. *)
  let levels = Ssta_circuit.Netlist.levels circuit in
  let max_level = Array.fold_left Int.max 0 levels in
  Format.printf "@.high-Vt share by logic depth:@.";
  let step = Int.max 1 (max_level / 8) in
  let level = ref 1 in
  while !level <= max_level do
    let hi = Int.min max_level (!level + step - 1) in
    let total = ref 0 and high = ref 0 in
    Array.iteri
      (fun id l ->
        if l >= !level && l <= hi
           && not (Ssta_circuit.Netlist.is_input circuit id)
        then begin
          incr total;
          if r.Dual_vt.assignment.(id) = Vt_class.High then incr high
        end)
      levels;
    if !total > 0 then
      Format.printf "  depth %2d-%2d: %3d/%3d high@." !level hi !high !total;
    level := hi + 1
  done
