(* Table 3: how the inter-/intra-die split of the same total variance
   changes a path's delay statistics (on the c432 substitute), plus a
   finer sweep of the inter fraction.

     dune exec examples/variation_split.exe *)

module Iscas85 = Ssta_circuit.Iscas85
module Elmore = Ssta_tech.Elmore
open Ssta_core

let () =
  let spec =
    match Iscas85.by_name "c432" with
    | Some s -> s
    | None -> failwith "c432 missing from the suite"
  in
  let circuit, placement = Iscas85.build_placed spec in

  (* The paper's three scenarios.  C = 0.2 rather than 0.05: our c432
     substitute has a sparser near-critical population, and 0.2 puts the
     path counts in the paper's range (see EXPERIMENTS.md). *)
  let base = Config.with_confidence Config.default 0.2 in
  Report.pp_table3_header Fmt.stdout ();
  List.iter
    (fun (scenario, inter_fraction) ->
      let config = Config.with_budget_split base ~inter_fraction in
      let m = Methodology.run ~config ~placement circuit in
      Report.pp_table3_row Fmt.stdout
        (Report.table3_row ~scenario ~inter_fraction m))
    [ ("only intra-die", 0.0); ("50% inter, 50% intra", 0.5);
      ("75% inter, 25% intra", 0.75) ];

  (* Finer sweep: the paper's observation is that more inter-die share
     means a larger path sigma (all gates shift together) and more
     near-critical paths. *)
  Fmt.pr "@.inter-fraction sweep (same total per-parameter variance):@.";
  Fmt.pr "%8s %12s %12s@." "inter%" "sigma(ps)" "paths";
  List.iter
    (fun inter_fraction ->
      let config = Config.with_budget_split base ~inter_fraction in
      let m = Methodology.run ~config ~placement circuit in
      Fmt.pr "%8.0f %12.3f %12d@." (inter_fraction *. 100.0)
        (Elmore.ps m.Methodology.det_critical.Path_analysis.std)
        (Methodology.num_critical_paths m))
    [ 0.0; 0.1; 0.2; 0.3; 0.5; 0.7; 0.9 ]
