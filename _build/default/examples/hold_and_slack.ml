(* Setup/hold bookkeeping around the statistical analysis: slacks at a
   chosen clock, violation lists, the fastest (hold-limiting) paths, and
   the incremental what-if loop a designer actually runs.

     dune exec examples/hold_and_slack.exe *)

module Iscas85 = Ssta_circuit.Iscas85
module Netlist = Ssta_circuit.Netlist
module Elmore = Ssta_tech.Elmore
open Ssta_timing

let ps = Elmore.ps

let () =
  let spec =
    match Iscas85.by_name "c880" with
    | Some s -> s
    | None -> failwith "c880 missing"
  in
  let circuit = Iscas85.build spec in
  let graph = Graph.of_netlist circuit in

  (* Setup side: longest paths and slacks at a 5%-tight clock. *)
  let max_labels = Longest_path.bellman_ford graph in
  let critical = Longest_path.critical_delay graph max_labels in
  Format.printf "%s: critical %.3f ps@." circuit.Netlist.name (ps critical);
  let s = Slack.compute ~clock:(0.95 *. critical) graph in
  Format.printf "at a 5%%-tight clock (%.3f ps): worst slack %.3f ps, %d \
                 violating nodes of %d@."
    (ps s.Slack.clock) (ps (Slack.worst s))
    (List.length (Slack.violations s))
    (Netlist.num_nodes circuit);

  (* Hold side: the fastest input-to-output paths. *)
  let min_labels = Shortest_path.labels graph in
  let fastest = Shortest_path.min_delay graph min_labels in
  Format.printf "@.fastest path: %.3f ps (%.1fx faster than critical)@."
    (ps fastest) (critical /. fastest);
  let near_min =
    Shortest_path.enumerate_near_min graph ~labels:min_labels
      ~slack:(0.1 *. fastest)
  in
  Format.printf "paths within 10%% of the fastest: %d@."
    (List.length near_min.Paths.paths);
  (match near_min.Paths.paths with
  | p :: _ ->
      Format.printf "  shortest path nodes:";
      Array.iter
        (fun id -> Format.printf " %s" (Netlist.node_name circuit id))
        p.Paths.nodes;
      Format.printf "@."
  | [] -> ());

  (* What-if loop with the incremental timer: upsize the critical path's
     gates one by one and watch the critical delay respond without any
     from-scratch retiming. *)
  Format.printf "@.incremental what-if (upsizing critical-path gates):@.";
  let t = Incremental.create circuit in
  let path = Longest_path.critical_path graph max_labels in
  Array.iter
    (fun id ->
      if not (Netlist.is_input circuit id) then begin
        let touched = Incremental.set_drive t id 2.0 in
        Format.printf "  upsize %-8s -> critical %.3f ps (%d arrivals \
                       touched)@."
          (Netlist.node_name circuit id)
          (ps (Incremental.critical_delay t))
          touched
      end)
    (Array.sub path 0 (Int.min 6 (Array.length path)));
  Format.printf "  (full retime after %d edits agrees: %.3f ps)@."
    (Int.min 6 (Array.length path) - 1)
    (ps
       (Longest_path.critical_delay
          (Incremental.to_graph t)
          (Incremental.labels_reference t)))
