(* Regenerate the paper's Table 2 over the (substituted) ISCAS85 suite and
   compare against the published rows.

     dune exec examples/benchmark_suite.exe            # fast subset
     dune exec examples/benchmark_suite.exe -- --all   # all ten circuits *)

module Iscas85 = Ssta_circuit.Iscas85
open Ssta_core

let fast_subset = [ "c432"; "c499"; "c880"; "c1908"; "c7552" ]

let () =
  let all = Array.exists (String.equal "--all") Sys.argv in
  let specs =
    if all then Iscas85.all
    else
      List.filter
        (fun (s : Iscas85.spec) -> List.mem s.Iscas85.name fast_subset)
        Iscas85.all
  in
  Report.pp_table2_header Fmt.stdout ();
  let rows =
    List.map
      (fun (spec : Iscas85.spec) ->
        let circuit, placement = Iscas85.build_placed spec in
        (* Use the paper's per-circuit confidence constant (Table 2 col. 6);
           cap enumeration like the paper had to on c6288. *)
        let config =
          Config.with_confidence Config.default
            spec.Iscas85.paper.Iscas85.confidence
        in
        let config = { config with Config.max_paths = 4000 } in
        let m = Methodology.run ~config ~placement circuit in
        let row = Report.table2_row m in
        Report.pp_table2_row Fmt.stdout row;
        (spec, row))
      specs
  in
  Fmt.pr "@.paper comparison (shape, not absolute ps — see EXPERIMENTS.md):@.";
  List.iter
    (fun ((spec : Iscas85.spec), row) ->
      Report.pp_table2_comparison Fmt.stdout ~paper:spec.Iscas85.paper row)
    rows;
  let average =
    let sum =
      List.fold_left
        (fun acc (_, r) -> acc +. r.Report.overestimation_pct)
        0.0 rows
    in
    sum /. float_of_int (List.length rows)
  in
  Fmt.pr "@.average worst-case overestimation: %.1f%% (paper: 55%%)@." average
