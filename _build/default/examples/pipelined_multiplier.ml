(* Pipelining under statistical timing: insert register ranks into the
   16x16 array multiplier (the c6288 substitute) and watch the
   statistically safe clock period respond — including the diminishing
   returns and the hold margins a designer must track.

     dune exec examples/pipelined_multiplier.exe *)

module Generators = Ssta_circuit.Generators
module Sequential = Ssta_circuit.Sequential
module Netlist = Ssta_circuit.Netlist
module Elmore = Ssta_tech.Elmore
open Ssta_core

let ps = Elmore.ps

let () =
  (* an 8x8 multiplier keeps the near-critical sets manageable here; the
     bench harness runs the full 16x16 *)
  let comb = Generators.array_multiplier ~name:"mult8" ~bits:8 () in
  Format.printf "combinational %s: %d gates, depth %d@." comb.Netlist.name
    (Netlist.num_gates comb) (Netlist.depth comb);
  let config =
    { (Config.with_quality Config.default ~intra:60 ~inter:24) with
      Config.max_paths = 400 }
  in
  let baseline =
    Clocking.analyze ~config (Sequential.of_netlist comb)
  in
  Format.printf
    "%8s %10s %12s %12s %14s %12s %10s@." "stages" "registers" "det clk(ps)"
    "3sig clk(ps)" "worst clk(ps)" "hold mgn(ps)" "speedup";
  List.iter
    (fun stages ->
      let s = Sequential.pipeline ~stages comb in
      (* repair hold violations of the register chains with buffers *)
      let s, buffers = Clocking.fix_hold s in
      ignore buffers;
      let c = Clocking.analyze ~config s in
      Format.printf "%8d %10d %12.1f %12.1f %14.1f %12s %9.2fx@." stages
        (Sequential.num_registers s)
        (ps c.Clocking.det_min_clock)
        (ps c.Clocking.stat_min_clock)
        (ps c.Clocking.worst_case_clock)
        (if c.Clocking.fastest_reg_to_reg = infinity then "-"
         else Printf.sprintf "%.1f" (ps c.Clocking.hold_margin))
        (Clocking.speedup ~baseline c))
    [ 1; 2; 4; 8 ];
  Format.printf
    "@.(register-chain hold violations are repaired by buffer insertion \
     before analysis; statistical clocks are 3-sigma per-path-yield \
     targets, and the worst-case column shows how much a corner-based \
     sign-off would overdesign each pipeline)@."
