examples/statistical_sizing.ml: Array Config Float Fmt Format List Methodology Path_analysis Report Sizing Ssta_circuit Ssta_core Ssta_tech Ssta_timing
