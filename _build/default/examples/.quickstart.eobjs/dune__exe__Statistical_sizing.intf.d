examples/statistical_sizing.mli:
