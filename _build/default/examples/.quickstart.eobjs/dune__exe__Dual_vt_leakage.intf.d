examples/dual_vt_leakage.mli:
