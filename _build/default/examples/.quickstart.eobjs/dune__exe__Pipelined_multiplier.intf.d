examples/pipelined_multiplier.mli:
