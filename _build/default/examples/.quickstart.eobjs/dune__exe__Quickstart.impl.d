examples/quickstart.ml: Format Methodology Path_analysis Ranking Ssta_circuit Ssta_core Ssta_tech Ssta_timing
