examples/variation_split.mli:
