examples/hold_and_slack.ml: Array Format Graph Incremental Int List Longest_path Paths Shortest_path Slack Ssta_circuit Ssta_tech Ssta_timing
