examples/dual_vt_leakage.ml: Array Config Dual_vt Format Int Methodology Monte_carlo Path_analysis Ranking Ssta_circuit Ssta_core Ssta_prob Ssta_tech Ssta_timing
