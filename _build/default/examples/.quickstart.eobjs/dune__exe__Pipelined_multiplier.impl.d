examples/pipelined_multiplier.ml: Clocking Config Format List Printf Ssta_circuit Ssta_core Ssta_tech
