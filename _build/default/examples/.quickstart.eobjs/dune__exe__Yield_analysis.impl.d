examples/yield_analysis.ml: Array Config Criticality Format List Methodology Monte_carlo Path_analysis Ranking Ssta_circuit Ssta_core Ssta_prob Ssta_tech Ssta_timing Yield
