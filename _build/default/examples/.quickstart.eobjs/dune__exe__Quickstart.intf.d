examples/quickstart.mli:
