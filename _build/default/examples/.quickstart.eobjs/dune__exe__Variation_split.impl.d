examples/variation_split.ml: Config Fmt List Methodology Path_analysis Report Ssta_circuit Ssta_core Ssta_tech
