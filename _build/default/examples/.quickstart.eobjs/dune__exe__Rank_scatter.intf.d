examples/rank_scatter.mli:
