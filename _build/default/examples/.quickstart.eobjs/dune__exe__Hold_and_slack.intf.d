examples/hold_and_slack.mli:
