examples/custom_flow.ml: Config Format List Monte_carlo Path_analysis Ssta_circuit Ssta_core Ssta_prob Ssta_tech Ssta_timing String
