examples/rank_scatter.ml: Array Config Fmt Int Methodology Ranking Ssta_circuit Ssta_core String
