examples/benchmark_suite.ml: Array Config Fmt List Methodology Report Ssta_circuit Ssta_core String Sys
