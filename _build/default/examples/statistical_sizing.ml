(* Statistical gate sizing: close the loop between the statistical timer
   and an optimizer, as the paper's introduction motivates (its refs [4]
   and [6] are statistical *optimization* papers).

   The optimizer repeatedly upsizes the gates of the current
   *probabilistic* critical path (largest 3-sigma point) until a timing
   target holds at 3-sigma confidence, accounting for the load each
   upsize adds to the fan-in stage.

     dune exec examples/statistical_sizing.exe *)

module Iscas85 = Ssta_circuit.Iscas85
module Netlist = Ssta_circuit.Netlist
module Elmore = Ssta_tech.Elmore
open Ssta_core

let () =
  let spec =
    match Iscas85.by_name "c432" with
    | Some s -> s
    | None -> failwith "c432 missing"
  in
  let circuit, placement = Iscas85.build_placed spec in
  let config = Config.with_quality Config.default ~intra:60 ~inter:24 in
  let m = Methodology.run ~config ~placement circuit in
  let d = m.Methodology.det_critical in
  let ps = Elmore.ps in

  Format.printf "before sizing:@.";
  Report.pp_path_report Fmt.stdout m.Methodology.sta.Ssta_timing.Sta.graph d;

  (* Ask for 12%% faster at 3-sigma confidence. *)
  let target = 0.88 *. d.Path_analysis.confidence_point in
  Format.printf "@.target: 3-sigma point <= %.3f ps@." (ps target);

  let r = Sizing.optimize ~config ~placement ~target circuit in
  Format.printf "result: %s after %d rounds@."
    (if r.Sizing.met then "met" else "NOT met")
    r.Sizing.iterations;
  Format.printf "  3-sigma point: %.3f -> %.3f ps (%.1f%% faster)@."
    (ps r.Sizing.initial_sigma3) (ps r.Sizing.final_sigma3)
    ((r.Sizing.initial_sigma3 -. r.Sizing.final_sigma3)
    /. r.Sizing.initial_sigma3 *. 100.0);
  Format.printf "  area: %.0f -> %.0f unit gates (+%.1f%%)@."
    r.Sizing.initial_area r.Sizing.area
    ((r.Sizing.area -. r.Sizing.initial_area) /. r.Sizing.initial_area
    *. 100.0);
  Format.printf "  per-round trace (3-sigma ps, area, gates touched):@.";
  List.iter
    (fun s ->
      Format.printf "    %.3f  %.0f  %d@." (ps s.Sizing.sigma3) s.Sizing.area
        s.Sizing.resized)
    r.Sizing.history;

  (* How many distinct drive strengths did we end up with? *)
  let resized =
    Array.to_list r.Sizing.drives
    |> List.filteri (fun id _ -> not (Netlist.is_input circuit id))
    |> List.filter (fun d -> d > 1.0)
  in
  Format.printf "  gates upsized: %d of %d (max drive %.2f)@."
    (List.length resized) (Netlist.num_gates circuit)
    (List.fold_left Float.max 1.0 resized)
