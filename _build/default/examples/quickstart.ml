(* Quickstart: build a small circuit with the Builder API, run the full
   statistical timing methodology, and read the headline numbers.

     dune exec examples/quickstart.exe *)

module Gate = Ssta_tech.Gate
module Elmore = Ssta_tech.Elmore
module Netlist = Ssta_circuit.Netlist
module B = Netlist.Builder
open Ssta_core

(* A 1-bit full adder followed by a small decode cone. *)
let build_circuit () =
  let b = B.create "quickstart" in
  let a = B.add_input b "a" in
  let c = B.add_input b "c" in
  let cin = B.add_input b "cin" in
  let x1 = B.add_gate b Gate.Xor2 [ a; c ] in
  let sum = B.add_gate b Gate.Xor2 [ x1; cin ] in
  let g1 = B.add_gate b (Gate.Nand 2) [ a; c ] in
  let g2 = B.add_gate b (Gate.Nand 2) [ x1; cin ] in
  let cout = B.add_gate b (Gate.Nand 2) [ g1; g2 ] in
  let dec0 = B.add_gate b (Gate.Nor 2) [ sum; cout ] in
  let dec1 = B.add_gate b Gate.Inv [ dec0 ] in
  B.mark_output b sum;
  B.mark_output b cout;
  B.mark_output b dec1;
  B.finish b

let () =
  let circuit = build_circuit () in
  Format.printf "circuit: %a@." Netlist.pp_stats circuit;

  (* The paper's default configuration: QUALITY_intra = 100,
     QUALITY_inter = 50, C = 0.05, 4 quad-tree layers + 1 random layer,
     variance split equally, PDFs truncated at 6 sigma. *)
  let m = Methodology.run circuit in

  let ps = Elmore.ps in
  Format.printf "deterministic critical delay: %.3f ps@."
    (ps m.Methodology.sta.Ssta_timing.Sta.critical_delay);

  let d = m.Methodology.det_critical in
  Format.printf "statistical analysis of the critical path:@.";
  Format.printf "  mean %.3f ps (shift %+.4f ps vs. nominal — nonlinearity)@."
    (ps d.Path_analysis.mean)
    (ps (d.Path_analysis.mean -. d.Path_analysis.det_delay));
  Format.printf "  sigma %.3f ps (inter %.3f, intra %.3f)@."
    (ps d.Path_analysis.std)
    (ps d.Path_analysis.inter_sigma)
    (ps d.Path_analysis.intra_sigma);
  Format.printf "  3-sigma confidence point: %.3f ps@."
    (ps d.Path_analysis.confidence_point);
  Format.printf "  worst-case corner analysis: %.3f ps — %.1f%% above the \
                 3-sigma point@."
    (ps d.Path_analysis.worst_case)
    (Path_analysis.overestimation_pct d);

  Format.printf "near-critical paths analyzed: %d (slack C*sigma_C = %.4f ps)@."
    (Methodology.num_critical_paths m)
    (ps m.Methodology.slack);
  let prob = m.Methodology.prob_critical in
  Format.printf "probabilistic critical path: prob rank 1, det rank %d@."
    prob.Ranking.det_rank
