(* Integrating the library into a custom flow:

   - parse a hand-written .bench netlist,
   - place it and round-trip the placement through DEF (the paper's input
     format for coordinates),
   - run deterministic STA and explore the near-critical set manually,
   - analyze chosen paths statistically,
   - cross-check one analytic PDF against exact Monte-Carlo sampling.

     dune exec examples/custom_flow.exe *)

module Bench_format = Ssta_circuit.Bench_format
module Def_format = Ssta_circuit.Def_format
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist
module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Elmore = Ssta_tech.Elmore
open Ssta_core

let bench_text =
  {|# 4-bit priority chain with two reconvergent cones
INPUT(req0)
INPUT(req1)
INPUT(req2)
INPUT(req3)
INPUT(en)
OUTPUT(grant3)
OUTPUT(any)
n0   = NOT(req0)
n1   = NOT(req1)
n2   = NOT(req2)
g0   = NAND(req0, en)
g1   = NAND(req1, n0)
g2   = NAND(req2, n1)
g3   = NAND(req3, n2)
c01  = NAND(g0, g1)
c23  = NAND(g2, g3)
grant3 = NAND(c01, c23)
o1   = OR(req0, req1)
o2   = OR(req2, req3)
any  = OR(o1, o2)
|}

let () =
  let circuit = Bench_format.parse_string ~name:"priority4" bench_text in
  Format.printf "parsed: %a@." Netlist.pp_stats circuit;

  (* Place, export to DEF, and read the coordinates back — exercising the
     same input path as the paper's program. *)
  let placement = Placement.place circuit in
  let def = Def_format.of_placement ~design:"priority4" circuit placement in
  let def_text = Def_format.to_string def in
  Format.printf "DEF (%d components, die %.0fx%.0f um):@.%s@."
    (List.length def.Def_format.components)
    def.Def_format.die_width def.Def_format.die_height
    (String.concat "\n"
       (List.filteri (fun i _ -> i < 6)
          (String.split_on_char '\n' def_text)));
  let placement = Def_format.placement_of (Def_format.parse_string def_text)
      circuit in

  (* Deterministic STA + manual near-critical exploration. *)
  let sta = Sta.analyze circuit in
  Format.printf "@.%a@." Sta.pp_summary sta;
  let slack = 0.2 *. sta.Sta.critical_delay in
  let enum = Sta.near_critical sta ~slack in
  Format.printf "paths within 20%% of critical: %d@."
    (List.length enum.Paths.paths);

  (* Statistical analysis of the top three. *)
  let ctx = Path_analysis.context Config.default sta.Sta.graph placement in
  let top3 =
    List.filteri (fun i _ -> i < 3) enum.Paths.paths
    |> List.map (Path_analysis.analyze ctx)
  in
  List.iteri
    (fun i a ->
      Format.printf
        "path %d: nominal %.3f ps | mean %.3f ps sigma %.3f ps 3s %.3f ps@."
        (i + 1)
        (Elmore.ps a.Path_analysis.det_delay)
        (Elmore.ps a.Path_analysis.mean)
        (Elmore.ps a.Path_analysis.std)
        (Elmore.ps a.Path_analysis.confidence_point))
    top3;

  (* Monte-Carlo cross-check of the first path. *)
  match top3 with
  | [] -> ()
  | a :: _ ->
      let sampler = Monte_carlo.sampler Config.default sta.Sta.graph placement in
      let rng = Ssta_prob.Rng.create 2025 in
      let v = Monte_carlo.validate_path ~n:20_000 sampler rng a in
      Format.printf
        "@.Monte-Carlo check (20k exact samples): mean err %.4f ps, std err \
         %.4f ps, KS %.4f@."
        (Elmore.ps v.Monte_carlo.mean_err)
        (Elmore.ps v.Monte_carlo.std_err)
        v.Monte_carlo.ks
