(* Figs. 5/6: probabilistic vs deterministic path rank for a "bushy"
   circuit (c1355 — ranks churn) and a "distinctive" one (c7552 — ranks
   barely move), printed as an ASCII scatter plus summary metrics.

     dune exec examples/rank_scatter.exe *)

module Iscas85 = Ssta_circuit.Iscas85
open Ssta_core

let scatter ~size pairs =
  (* pairs are (det_rank, prob_rank), both 1-based. *)
  let max_rank =
    Array.fold_left (fun acc (d, p) -> Int.max acc (Int.max d p)) 1 pairs
  in
  let cell rank = Int.min (size - 1) ((rank - 1) * size / max_rank) in
  let grid = Array.make_matrix size size ' ' in
  Array.iter (fun (d, p) -> grid.(cell p).(cell d) <- '*') pairs;
  for row = size - 1 downto 0 do
    Fmt.pr "  |%s|@." (String.init size (fun col -> grid.(row).(col)))
  done;
  Fmt.pr "  prob rank ^ / det rank -> (first %d paths, max rank %d)@."
    (Array.length pairs) max_rank

let study name =
  match Iscas85.by_name name with
  | None -> Fmt.pr "unknown circuit %s@." name
  | Some spec ->
      let circuit, placement = Iscas85.build_placed spec in
      let config = { Config.default with Config.max_paths = 2000 } in
      let m = Methodology.run ~config ~placement circuit in
      let ranked = m.Methodology.ranked in
      Fmt.pr "@.%s: %d near-critical paths analyzed@." name
        (Array.length ranked);
      scatter ~size:24 (Ranking.rank_pairs ~first:100 ranked);
      Fmt.pr "  Spearman rank correlation: %.4f, max rank change: %d@."
        (Ranking.rank_correlation ranked)
        (Ranking.max_rank_change ranked);
      Fmt.pr "  det rank of the probabilistic critical path: %d (paper: %d)@."
        (Ranking.det_rank_of_prob_critical ranked)
        spec.Iscas85.paper.Iscas85.det_rank_of_prob_critical

let () =
  study "c1355";
  study "c7552"
