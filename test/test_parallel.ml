open Ssta_circuit
open Ssta_core
open Helpers
module Pool = Ssta_parallel.Pool

(* ---------------- Pool primitives ---------------- *)

let test_default_jobs_positive () =
  check_true "at least one" (Pool.default_jobs () >= 1)

let test_create_rejects_zero () =
  check_raises_invalid "jobs 0" (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_map_array_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let a = Array.init 1_000 (fun i -> i) in
      let expected = Array.map (fun x -> x * x) a in
      let got = Pool.map_array pool (fun x -> x * x) a in
      check_true "squares" (got = expected);
      (* small chunk forces many claim rounds *)
      let got = Pool.map_array pool ~chunk:1 (fun x -> x * x) a in
      check_true "chunk 1" (got = expected))

let test_map_array_empty () =
  Pool.with_pool ~jobs:2 (fun pool ->
      check_int "empty" 0 (Array.length (Pool.map_array pool succ [||])))

let test_map_reduce_index_order () =
  (* String concatenation is non-commutative: any scheduling leak in the
     reduction order changes the result. *)
  let a = Array.init 257 string_of_int in
  let expected = Array.fold_left ( ^ ) "" a in
  Pool.with_pool ~jobs:4 (fun pool ->
      let got =
        Pool.map_reduce pool ~chunk:3
          ~map:(fun s -> s)
          ~combine:( ^ ) ~init:"" a
      in
      check_true "index-order fold" (got = expected))

let test_run_counts_every_chunk_once () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let hits = Array.make 100 0 in
      Pool.run pool ~chunks:100 (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri (fun i n ->
          if n <> 1 then Alcotest.failf "chunk %d ran %d times" i n)
        hits)

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map_array pool ~chunk:1
          (fun i -> if i = 17 then failwith "boom17" else i)
          (Array.init 64 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check_true "message" (msg = "boom17"))

let test_exception_lowest_index_wins () =
  (* Two failing chunks: the caller must see the lowest index's exception
     no matter which worker hit its failure first. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map_array pool ~chunk:1
          (fun i -> if i = 5 || i = 50 then failwith (string_of_int i) else i)
          (Array.init 64 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check_true "lowest index" (msg = "5"))

let test_map_prefix_no_stop_is_full_map () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let a = Array.init 200 (fun i -> i) in
      let prefix, stopped =
        Pool.map_prefix pool ~should_stop:(fun () -> false) (fun x -> x + 1) a
      in
      check_true "not stopped" (not stopped);
      check_true "full map" (prefix = Array.map (( + ) 1) a))

let test_map_prefix_stop_returns_contiguous_prefix () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 500 in
      let consumed = Atomic.make 0 in
      let a = Array.init n (fun i -> i) in
      let prefix, stopped =
        Pool.map_prefix pool ~chunk:1
          ~should_stop:(fun () -> Atomic.get consumed >= 20)
          (fun x ->
            Atomic.incr consumed;
            x * 3)
          a
      in
      check_true "stopped" stopped;
      check_true "proper prefix" (Array.length prefix < n);
      Array.iteri (fun i v ->
          if v <> i * 3 then
            Alcotest.failf "slot %d holds %d, not a contiguous prefix" i v)
        prefix)

let test_jobs_one_is_inline () =
  let pool = Pool.create ~jobs:1 () in
  let a = Array.init 100 (fun i -> i) in
  check_true "map" (Pool.map_array pool succ a = Array.map succ a);
  let seen = ref 0 in
  let prefix, stopped =
    Pool.map_prefix pool ~chunk:1
      ~should_stop:(fun () -> !seen >= 10)
      (fun x -> incr seen; x)
      a
  in
  check_true "stopped" stopped;
  (* jobs = 1 matches the historical sequential deadline semantics
     exactly: the prefix is precisely the items before the predicate
     fired. *)
  check_int "exact sequential prefix" 10 (Array.length prefix);
  ignore (Pool.shutdown pool)

(* ---------------- Cost-aware scheduling ---------------- *)

let test_map_prefix_weighted_matches_map () =
  (* Weights influence scheduling only: any weight vector — uniform, one
     spike six orders of magnitude up, monotone, or all non-positive —
     must reproduce Array.map exactly. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 300 in
      let a = Array.init n (fun i -> i) in
      let expected = Array.map (fun x -> (x * 7) + 1) a in
      List.iter
        (fun weights ->
          let got, stopped =
            Pool.map_prefix_weighted pool ~weights
              ~should_stop:(fun () -> false)
              (fun x -> (x * 7) + 1)
              a
          in
          check_true "not stopped" (not stopped);
          check_true "weights cannot change results" (got = expected))
        [ Array.make n 1;
          Array.init n (fun i -> if i = n / 2 then 1_000_000 else 1);
          Array.init n (fun i -> i);
          Array.make n 0 ])

let test_map_prefix_weighted_rejects_mismatch () =
  Pool.with_pool ~jobs:2 (fun pool ->
      check_raises_invalid "weights length mismatch" (fun () ->
          ignore
            (Pool.map_prefix_weighted pool ~weights:(Array.make 5 1)
               ~should_stop:(fun () -> false)
               succ
               (Array.init 6 (fun i -> i)))))

let test_map_prefix_weighted_jobs1_exact_prefix () =
  (* jobs = 1 keeps the historical sequential deadline semantics: the
     predicate is polled per item, so the prefix is exactly the items
     processed before it fired — piece boundaries are invisible. *)
  let pool = Pool.create ~jobs:1 () in
  let seen = ref 0 in
  let a = Array.init 100 (fun i -> i) in
  let prefix, stopped =
    Pool.map_prefix_weighted pool ~weights:(Array.make 100 5)
      ~should_stop:(fun () -> !seen >= 10)
      (fun x ->
        incr seen;
        x * 2)
      a
  in
  check_true "stopped" stopped;
  check_int "exact sequential prefix" 10 (Array.length prefix);
  Array.iteri (fun i v -> check_int "prefix slot" (i * 2) v) prefix;
  Pool.shutdown pool

let test_map_prefix_weighted_stop_contiguous () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 400 in
      let consumed = Atomic.make 0 in
      let a = Array.init n (fun i -> i) in
      let weights = Array.init n (fun i -> 1 + (i mod 9)) in
      let prefix, stopped =
        Pool.map_prefix_weighted pool ~pieces:64 ~weights
          ~should_stop:(fun () -> Atomic.get consumed >= 25)
          (fun x ->
            Atomic.incr consumed;
            x * 3)
          a
      in
      check_true "stopped" stopped;
      check_true "proper prefix" (Array.length prefix < n);
      Array.iteri
        (fun i v ->
          if v <> i * 3 then
            Alcotest.failf "slot %d holds %d, not a contiguous prefix" i v)
        prefix)

(* ---------------- Batched claiming ---------------- *)

let test_run_batched_counts_every_chunk_once () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun batch ->
          let hits = Array.make 100 0 in
          Pool.run pool ~batch ~chunks:100 (fun i -> hits.(i) <- hits.(i) + 1);
          Array.iteri
            (fun i n ->
              if n <> 1 then
                Alcotest.failf "batch %d: chunk %d ran %d times" batch i n)
            hits)
        [ 1; 2; 7; 101; 1000 ];
      check_raises_invalid "batch 0" (fun () ->
          Pool.run pool ~batch:0 ~chunks:4 ignore))

let test_map_array_batched_matches () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let a = Array.init 500 (fun i -> i) in
      let expected = Array.map (fun x -> x * x) a in
      List.iter
        (fun batch ->
          check_true "batched map matches"
            (Pool.map_array pool ~chunk:1 ~batch (fun x -> x * x) a = expected))
        [ 1; 3; 64 ])

(* ---------------- Idle parking ---------------- *)

let await ?(deadline_s = 5.0) msg cond =
  let t0 = Unix.gettimeofday () in
  while (not (cond ())) && Unix.gettimeofday () -. t0 < deadline_s do
    Unix.sleepf 0.001
  done;
  check_true msg (cond ())

let test_idle_counters_jobs1 () =
  let pool = Pool.create ~jobs:1 () in
  check_int "no workers to park" 0 (Pool.idle_workers pool);
  check_int "no park sessions" 0 (Pool.park_count pool);
  Pool.shutdown pool

let test_workers_park_between_regions () =
  (* A worker parks on the condition variable right after creation and
     again after each work region — an idle pool burns no CPU. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      await "worker parks after creation" (fun () ->
          Pool.idle_workers pool = 1 && Pool.park_count pool >= 1);
      (* A trivial region can finish on the caller alone while the worker
         sleeps through it — which by design keeps the worker's park
         session open.  Spin in each chunk until the worker has either
         woken (idle 0) or already started a new park session, so the
         region provably ends the first session. *)
      let p0 = Pool.park_count pool in
      Pool.run pool ~chunks:4 (fun _ ->
          let t0 = Unix.gettimeofday () in
          while
            Pool.idle_workers pool = 1
            && Pool.park_count pool = p0
            && Unix.gettimeofday () -. t0 < 5.0
          do
            Unix.sleepf 0.0005
          done);
      await "worker re-parks after the region" (fun () ->
          Pool.idle_workers pool = 1 && Pool.park_count pool >= 2))

(* ---------------- End-to-end determinism ---------------- *)

let quick_config = { fast_config with Config.max_paths = 100 }

let report_with_jobs ~jobs config circuit =
  Pool.with_pool ~jobs (fun pool ->
      Report.json_report (Methodology.run ~config ~pool circuit))

let test_iscas85_reports_byte_identical_across_jobs () =
  List.iter
    (fun (spec : Iscas85.spec) ->
      let circuit = Iscas85.build spec in
      let seq = report_with_jobs ~jobs:1 quick_config circuit in
      let par = report_with_jobs ~jobs:4 quick_config circuit in
      if not (String.equal seq par) then begin
        let n = Int.min (String.length seq) (String.length par) in
        let i = ref 0 in
        while !i < n && seq.[!i] = par.[!i] do incr i done;
        Alcotest.failf "%s: reports diverge at byte %d (lengths %d vs %d)"
          spec.Iscas85.name !i (String.length seq) (String.length par)
      end)
    Iscas85.all

let qcheck_random_circuit_reports_byte_identical =
  qcheck ~count:8 "random circuits: --jobs 1 == --jobs 4 report"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let circuit =
        Generators.random_layered ~name:"qpar" ~inputs:6 ~outputs:3 ~gates:40
          ~depth:6 ~seed ()
      in
      String.equal
        (report_with_jobs ~jobs:1 quick_config circuit)
        (report_with_jobs ~jobs:4 quick_config circuit))

(* ---------------- Deadline degradation under parallelism ---------------- *)

let test_deadline_degraded_parallel_prefix_is_exact () =
  (* A deadline-degraded parallel run must return a subset of the
     complete run's paths with bit-identical per-path analyses — the
     budget machinery may cut the work short but never approximates what
     it did complete. *)
  let spec =
    match Iscas85.by_name "c499" with Some s -> s | None -> assert false
  in
  let circuit = Iscas85.build spec in
  let config = { fast_config with Config.max_paths = 2_000 } in
  let full =
    match Methodology.analyze ~config circuit with
    | Ok m -> m
    | Error e ->
        Alcotest.failf "full run failed: %a" Ssta_runtime.Ssta_error.pp e
  in
  let budget = Ssta_runtime.Budget.make ~deadline_s:0.05 () in
  let degraded =
    Pool.with_pool ~jobs:4 (fun pool ->
        match Methodology.analyze ~config ~budget ~pool circuit with
        | Ok m -> m
        | Error e ->
            Alcotest.failf "degraded run failed: %a" Ssta_runtime.Ssta_error.pp
              e)
  in
  let full_by_nodes = Hashtbl.create 64 in
  Array.iter
    (fun (r : Ranking.ranked) ->
      Hashtbl.replace full_by_nodes
        r.Ranking.analysis.Path_analysis.path.Ssta_timing.Paths.nodes
        r.Ranking.analysis)
    full.Methodology.ranked;
  check_true "degraded analyzed no more paths than the full run"
    (Methodology.num_critical_paths degraded
    <= Methodology.num_critical_paths full);
  Array.iter
    (fun (r : Ranking.ranked) ->
      let a = r.Ranking.analysis in
      match
        Hashtbl.find_opt full_by_nodes
          a.Path_analysis.path.Ssta_timing.Paths.nodes
      with
      | None -> Alcotest.fail "degraded run invented a path"
      | Some f ->
          (* Same code path on the same inputs: exact float equality. *)
          check_true "mean exact" (a.Path_analysis.mean = f.Path_analysis.mean);
          check_true "std exact" (a.Path_analysis.std = f.Path_analysis.std);
          check_true "confidence point exact"
            (a.Path_analysis.confidence_point = f.Path_analysis.confidence_point))
    degraded.Methodology.ranked;
  if
    Methodology.num_critical_paths degraded
    < Methodology.num_critical_paths full
  then check_true "cut run is marked degraded" (Methodology.is_degraded degraded)

let suite =
  ( "parallel",
    [ case "default jobs positive" test_default_jobs_positive;
      case "create rejects jobs 0" test_create_rejects_zero;
      case "map_array matches sequential" test_map_array_matches_sequential;
      case "map_array empty" test_map_array_empty;
      case "map_reduce folds in index order" test_map_reduce_index_order;
      case "run executes every chunk once" test_run_counts_every_chunk_once;
      case "exceptions propagate" test_exception_propagates;
      case "lowest-index exception wins" test_exception_lowest_index_wins;
      case "map_prefix without stop is a full map"
        test_map_prefix_no_stop_is_full_map;
      case "map_prefix stop returns contiguous prefix"
        test_map_prefix_stop_returns_contiguous_prefix;
      case "jobs 1 runs inline with sequential semantics"
        test_jobs_one_is_inline;
      case "weighted map matches Array.map for any weights"
        test_map_prefix_weighted_matches_map;
      case "weighted map rejects length mismatch"
        test_map_prefix_weighted_rejects_mismatch;
      case "weighted map at jobs 1 keeps exact prefix semantics"
        test_map_prefix_weighted_jobs1_exact_prefix;
      case "weighted map stop returns contiguous prefix"
        test_map_prefix_weighted_stop_contiguous;
      case "batched run executes every chunk once"
        test_run_batched_counts_every_chunk_once;
      case "batched map_array matches" test_map_array_batched_matches;
      case "jobs 1 pool has no parked workers" test_idle_counters_jobs1;
      case "workers park between regions" test_workers_park_between_regions;
      slow_case "ISCAS85 reports byte-identical at jobs 1 and 4"
        test_iscas85_reports_byte_identical_across_jobs;
      qcheck_random_circuit_reports_byte_identical;
      slow_case "deadline-degraded parallel prefix is exact"
        test_deadline_degraded_parallel_prefix_is_exact ] )
