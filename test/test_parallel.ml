open Ssta_circuit
open Ssta_core
open Helpers
module Pool = Ssta_parallel.Pool

(* ---------------- Pool primitives ---------------- *)

let test_default_jobs_positive () =
  check_true "at least one" (Pool.default_jobs () >= 1)

let test_create_rejects_zero () =
  check_raises_invalid "jobs 0" (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_map_array_matches_sequential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let a = Array.init 1_000 (fun i -> i) in
      let expected = Array.map (fun x -> x * x) a in
      let got = Pool.map_array pool (fun x -> x * x) a in
      check_true "squares" (got = expected);
      (* small chunk forces many claim rounds *)
      let got = Pool.map_array pool ~chunk:1 (fun x -> x * x) a in
      check_true "chunk 1" (got = expected))

let test_map_array_empty () =
  Pool.with_pool ~jobs:2 (fun pool ->
      check_int "empty" 0 (Array.length (Pool.map_array pool succ [||])))

let test_map_reduce_index_order () =
  (* String concatenation is non-commutative: any scheduling leak in the
     reduction order changes the result. *)
  let a = Array.init 257 string_of_int in
  let expected = Array.fold_left ( ^ ) "" a in
  Pool.with_pool ~jobs:4 (fun pool ->
      let got =
        Pool.map_reduce pool ~chunk:3
          ~map:(fun s -> s)
          ~combine:( ^ ) ~init:"" a
      in
      check_true "index-order fold" (got = expected))

let test_run_counts_every_chunk_once () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let hits = Array.make 100 0 in
      Pool.run pool ~chunks:100 (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri (fun i n ->
          if n <> 1 then Alcotest.failf "chunk %d ran %d times" i n)
        hits)

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map_array pool ~chunk:1
          (fun i -> if i = 17 then failwith "boom17" else i)
          (Array.init 64 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check_true "message" (msg = "boom17"))

let test_exception_lowest_index_wins () =
  (* Two failing chunks: the caller must see the lowest index's exception
     no matter which worker hit its failure first. *)
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map_array pool ~chunk:1
          (fun i -> if i = 5 || i = 50 then failwith (string_of_int i) else i)
          (Array.init 64 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg -> check_true "lowest index" (msg = "5"))

let test_map_prefix_no_stop_is_full_map () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let a = Array.init 200 (fun i -> i) in
      let prefix, stopped =
        Pool.map_prefix pool ~should_stop:(fun () -> false) (fun x -> x + 1) a
      in
      check_true "not stopped" (not stopped);
      check_true "full map" (prefix = Array.map (( + ) 1) a))

let test_map_prefix_stop_returns_contiguous_prefix () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 500 in
      let consumed = Atomic.make 0 in
      let a = Array.init n (fun i -> i) in
      let prefix, stopped =
        Pool.map_prefix pool ~chunk:1
          ~should_stop:(fun () -> Atomic.get consumed >= 20)
          (fun x ->
            Atomic.incr consumed;
            x * 3)
          a
      in
      check_true "stopped" stopped;
      check_true "proper prefix" (Array.length prefix < n);
      Array.iteri (fun i v ->
          if v <> i * 3 then
            Alcotest.failf "slot %d holds %d, not a contiguous prefix" i v)
        prefix)

let test_jobs_one_is_inline () =
  let pool = Pool.create ~jobs:1 () in
  let a = Array.init 100 (fun i -> i) in
  check_true "map" (Pool.map_array pool succ a = Array.map succ a);
  let seen = ref 0 in
  let prefix, stopped =
    Pool.map_prefix pool ~chunk:1
      ~should_stop:(fun () -> !seen >= 10)
      (fun x -> incr seen; x)
      a
  in
  check_true "stopped" stopped;
  (* jobs = 1 matches the historical sequential deadline semantics
     exactly: the prefix is precisely the items before the predicate
     fired. *)
  check_int "exact sequential prefix" 10 (Array.length prefix);
  ignore (Pool.shutdown pool)

(* ---------------- End-to-end determinism ---------------- *)

let quick_config = { fast_config with Config.max_paths = 100 }

let report_with_jobs ~jobs config circuit =
  Pool.with_pool ~jobs (fun pool ->
      Report.json_report (Methodology.run ~config ~pool circuit))

let test_iscas85_reports_byte_identical_across_jobs () =
  List.iter
    (fun (spec : Iscas85.spec) ->
      let circuit = Iscas85.build spec in
      let seq = report_with_jobs ~jobs:1 quick_config circuit in
      let par = report_with_jobs ~jobs:4 quick_config circuit in
      if not (String.equal seq par) then begin
        let n = Int.min (String.length seq) (String.length par) in
        let i = ref 0 in
        while !i < n && seq.[!i] = par.[!i] do incr i done;
        Alcotest.failf "%s: reports diverge at byte %d (lengths %d vs %d)"
          spec.Iscas85.name !i (String.length seq) (String.length par)
      end)
    Iscas85.all

let qcheck_random_circuit_reports_byte_identical =
  qcheck ~count:8 "random circuits: --jobs 1 == --jobs 4 report"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let circuit =
        Generators.random_layered ~name:"qpar" ~inputs:6 ~outputs:3 ~gates:40
          ~depth:6 ~seed ()
      in
      String.equal
        (report_with_jobs ~jobs:1 quick_config circuit)
        (report_with_jobs ~jobs:4 quick_config circuit))

(* ---------------- Deadline degradation under parallelism ---------------- *)

let test_deadline_degraded_parallel_prefix_is_exact () =
  (* A deadline-degraded parallel run must return a subset of the
     complete run's paths with bit-identical per-path analyses — the
     budget machinery may cut the work short but never approximates what
     it did complete. *)
  let spec =
    match Iscas85.by_name "c499" with Some s -> s | None -> assert false
  in
  let circuit = Iscas85.build spec in
  let config = { fast_config with Config.max_paths = 2_000 } in
  let full =
    match Methodology.analyze ~config circuit with
    | Ok m -> m
    | Error e ->
        Alcotest.failf "full run failed: %a" Ssta_runtime.Ssta_error.pp e
  in
  let budget = Ssta_runtime.Budget.make ~deadline_s:0.05 () in
  let degraded =
    Pool.with_pool ~jobs:4 (fun pool ->
        match Methodology.analyze ~config ~budget ~pool circuit with
        | Ok m -> m
        | Error e ->
            Alcotest.failf "degraded run failed: %a" Ssta_runtime.Ssta_error.pp
              e)
  in
  let full_by_nodes = Hashtbl.create 64 in
  Array.iter
    (fun (r : Ranking.ranked) ->
      Hashtbl.replace full_by_nodes
        r.Ranking.analysis.Path_analysis.path.Ssta_timing.Paths.nodes
        r.Ranking.analysis)
    full.Methodology.ranked;
  check_true "degraded analyzed no more paths than the full run"
    (Methodology.num_critical_paths degraded
    <= Methodology.num_critical_paths full);
  Array.iter
    (fun (r : Ranking.ranked) ->
      let a = r.Ranking.analysis in
      match
        Hashtbl.find_opt full_by_nodes
          a.Path_analysis.path.Ssta_timing.Paths.nodes
      with
      | None -> Alcotest.fail "degraded run invented a path"
      | Some f ->
          (* Same code path on the same inputs: exact float equality. *)
          check_true "mean exact" (a.Path_analysis.mean = f.Path_analysis.mean);
          check_true "std exact" (a.Path_analysis.std = f.Path_analysis.std);
          check_true "confidence point exact"
            (a.Path_analysis.confidence_point = f.Path_analysis.confidence_point))
    degraded.Methodology.ranked;
  if
    Methodology.num_critical_paths degraded
    < Methodology.num_critical_paths full
  then check_true "cut run is marked degraded" (Methodology.is_degraded degraded)

let suite =
  ( "parallel",
    [ case "default jobs positive" test_default_jobs_positive;
      case "create rejects jobs 0" test_create_rejects_zero;
      case "map_array matches sequential" test_map_array_matches_sequential;
      case "map_array empty" test_map_array_empty;
      case "map_reduce folds in index order" test_map_reduce_index_order;
      case "run executes every chunk once" test_run_counts_every_chunk_once;
      case "exceptions propagate" test_exception_propagates;
      case "lowest-index exception wins" test_exception_lowest_index_wins;
      case "map_prefix without stop is a full map"
        test_map_prefix_no_stop_is_full_map;
      case "map_prefix stop returns contiguous prefix"
        test_map_prefix_stop_returns_contiguous_prefix;
      case "jobs 1 runs inline with sequential semantics"
        test_jobs_one_is_inline;
      slow_case "ISCAS85 reports byte-identical at jobs 1 and 4"
        test_iscas85_reports_byte_identical_across_jobs;
      qcheck_random_circuit_reports_byte_identical;
      slow_case "deadline-degraded parallel prefix is exact"
        test_deadline_degraded_parallel_prefix_is_exact ] )
