open Ssta_circuit
open Ssta_correlation
open Ssta_timing
open Helpers

let layers4 () =
  Layers.create ~quad_levels:4 ~random_layer:true ~die_width:100.0
    ~die_height:100.0 ()

(* ---------------- Layers ---------------- *)

let test_layer_counts () =
  let l = layers4 () in
  check_int "5 layers total" 5 (Layers.num_layers l);
  check_int "layer 0 partitions" 1 (Layers.partitions_at l 0);
  check_int "layer 1 partitions" 4 (Layers.partitions_at l 1);
  check_int "layer 3 partitions" 64 (Layers.partitions_at l 3);
  check_true "layer 4 is random" (Layers.is_random_layer l 4);
  check_true "layer 3 is spatial" (not (Layers.is_random_layer l 3))

let test_partitions_at_random_rejected () =
  let l = layers4 () in
  check_raises_invalid "random layer has per-gate partitions" (fun () ->
      ignore (Layers.partitions_at l 4));
  check_raises_invalid "bad level" (fun () ->
      ignore (Layers.partitions_at l 9))

let test_partition_of_quadrants () =
  let l = layers4 () in
  (* level 1 splits the die in 4: row-major quadrants *)
  check_int "bottom-left" 0 (Layers.partition_of l ~level:1 ~x:10.0 ~y:10.0);
  check_int "bottom-right" 1 (Layers.partition_of l ~level:1 ~x:90.0 ~y:10.0);
  check_int "top-left" 2 (Layers.partition_of l ~level:1 ~x:10.0 ~y:90.0);
  check_int "top-right" 3 (Layers.partition_of l ~level:1 ~x:90.0 ~y:90.0)

let test_partition_of_level0 () =
  let l = layers4 () in
  check_int "whole die" 0 (Layers.partition_of l ~level:0 ~x:55.0 ~y:3.0)

let test_partition_clamping () =
  let l = layers4 () in
  check_int "clamped below" 0 (Layers.partition_of l ~level:1 ~x:(-5.0) ~y:0.0);
  check_int "clamped above" 3
    (Layers.partition_of l ~level:1 ~x:200.0 ~y:200.0)

let test_partition_of_gate_random_layer () =
  let l = layers4 () in
  check_int "random partition = gate id" 17
    (Layers.partition_of_gate l ~level:4 ~gate_id:17 ~x:0.0 ~y:0.0)

let test_create_validation () =
  check_raises_invalid "quad_levels >= 1" (fun () ->
      ignore (Layers.create ~quad_levels:0 ~die_width:1.0 ~die_height:1.0 ()));
  check_raises_invalid "positive die" (fun () ->
      ignore (Layers.create ~die_width:0.0 ~die_height:1.0 ()))

let prop_partition_in_range =
  qcheck "partition index within 4^level"
    QCheck.(triple (int_range 0 3) (float_range 0.0 100.0)
              (float_range 0.0 100.0))
    (fun (level, x, y) ->
      let l = layers4 () in
      let p = Layers.partition_of l ~level ~x ~y in
      p >= 0 && p < Layers.partitions_at l level)

let prop_nearby_points_share_partitions =
  qcheck "same point, same partition at every level"
    QCheck.(pair (float_range 0.0 99.0) (float_range 0.0 99.0))
    (fun (x, y) ->
      let l = layers4 () in
      List.for_all
        (fun level ->
          Layers.partition_of l ~level ~x ~y
          = Layers.partition_of l ~level ~x ~y)
        [ 0; 1; 2; 3 ])

(* ---------------- Budget ---------------- *)

let test_equal_budget () =
  let b = Budget.equal ~layers:5 in
  check_int "layers" 5 (Budget.layers b);
  for u = 0 to 4 do
    check_close ~tol:1e-12 "equal weights" 0.2 (Budget.weight b u)
  done;
  check_close ~tol:1e-12 "inter fraction" 0.2 (Budget.inter_fraction b)

let test_inter_intra_budget () =
  let b = Budget.inter_intra ~inter_fraction:0.5 ~layers:5 in
  check_close ~tol:1e-12 "layer 0" 0.5 (Budget.weight b 0);
  check_close ~tol:1e-12 "intra layers split the rest" 0.125
    (Budget.weight b 1);
  let zero = Budget.inter_intra ~inter_fraction:0.0 ~layers:5 in
  check_close ~tol:1e-12 "pure intra" 0.0 (Budget.inter_fraction zero)

let test_budget_normalization () =
  let b = Budget.of_weights [| 2.0; 6.0 |] in
  check_close ~tol:1e-12 "normalized" 0.25 (Budget.weight b 0)

let test_budget_validation () =
  check_raises_invalid "empty" (fun () -> ignore (Budget.of_weights [||]));
  check_raises_invalid "negative" (fun () ->
      ignore (Budget.of_weights [| 1.0; -1.0 |]));
  check_raises_invalid "all zero" (fun () ->
      ignore (Budget.of_weights [| 0.0; 0.0 |]));
  check_raises_invalid "bad fraction" (fun () ->
      ignore (Budget.inter_intra ~inter_fraction:1.5 ~layers:3))

let test_variance_conservation () =
  (* Eq. (6): the per-layer variances must sum to the total variance. *)
  List.iter
    (fun b ->
      let total_sigma = 0.04 in
      let recombined =
        List.init (Budget.layers b) (fun u ->
            let s = Budget.sigma_of_layer b ~total_sigma u in
            s *. s)
        |> List.fold_left ( +. ) 0.0
      in
      check_close ~tol:1e-12 "sum of layer variances = total variance"
        (total_sigma *. total_sigma) recombined)
    [ Budget.equal ~layers:5;
      Budget.inter_intra ~inter_fraction:0.75 ~layers:5;
      Budget.of_weights [| 0.1; 0.2; 0.3; 0.4 |] ]

let prop_variance_check =
  qcheck "variance_check returns sigma^2"
    QCheck.(pair (float_range 0.01 1.0) (int_range 1 8))
    (fun (sigma, layers) ->
      let b = Budget.equal ~layers in
      Float.abs (Budget.variance_check b ~total_sigma:sigma -. (sigma *. sigma))
      < 1e-12)

(* ---------------- Path coefficients ---------------- *)

let context () =
  let c = small_random () in
  let g = Graph.of_netlist c in
  let pl = Placement.place c in
  let layers = Layers.of_placement pl in
  let labels = Longest_path.bellman_ford g in
  let nodes = Longest_path.critical_path g labels in
  let path = { Paths.nodes; delay = Paths.recompute_delay g nodes } in
  (g, pl, layers, path)

let test_coeffs_accumulate () =
  let g, pl, layers, path = context () in
  let pc = Path_coeffs.of_path g pl layers path in
  check_int "gate count matches path" (Paths.path_gate_count g path)
    pc.Path_coeffs.gate_count;
  check_close ~tol:1e-12 "nominal delay matches" path.Paths.delay
    pc.Path_coeffs.nominal_delay;
  check_true "alpha sum positive" (pc.Path_coeffs.alpha_sum > 0.0);
  check_true "beta sum positive" (pc.Path_coeffs.beta_sum > 0.0);
  (* alpha_sum must equal the sum over path gates *)
  let by_hand =
    List.fold_left
      (fun acc (e : Ssta_tech.Gate.electrical) -> acc +. e.Ssta_tech.Gate.alpha)
      0.0 (Paths.path_gates g path)
  in
  check_close ~tol:1e-12 "alpha sum by hand" by_hand pc.Path_coeffs.alpha_sum

let test_coeffs_layer_structure () =
  let g, pl, layers, path = context () in
  let pc = Path_coeffs.of_path g pl layers path in
  check_true "has layer RVs" (Path_coeffs.num_layer_rvs pc > 0);
  (* No layer-0 keys: inter stays nonlinear. *)
  Hashtbl.iter
    (fun (key : Path_coeffs.key) _ ->
      check_true "intra layers only" (key.Path_coeffs.layer >= 1);
      check_true "layer in range"
        (key.Path_coeffs.layer < Layers.num_layers layers))
    pc.Path_coeffs.coeffs

let test_coeffs_level1_sum_equals_gradient_sum () =
  (* On layer 1 the coefficients partition the path's gates, so summing
     them over partitions recovers the total derivative sum. *)
  let g, pl, layers, path = context () in
  let pc = Path_coeffs.of_path g pl layers path in
  List.iter
    (fun rv ->
      let total_by_partition = ref 0.0 in
      Hashtbl.iter
        (fun (key : Path_coeffs.key) c ->
          if key.Path_coeffs.layer = 1 && key.Path_coeffs.rv = rv then
            total_by_partition := !total_by_partition +. c)
        pc.Path_coeffs.coeffs;
      let total_direct =
        Array.fold_left
          (fun acc id ->
            if Graph.is_input g id then acc
            else
              acc
              +. Ssta_tech.Params.get
                   (Ssta_tech.Derivatives.gradient (Graph.electrical_exn g id)
                      Ssta_tech.Params.nominal)
                   rv)
          0.0 path.Paths.nodes
      in
      check_close ~tol:1e-9 "partition sums = derivative total" total_direct
        !total_by_partition)
    Ssta_tech.Params.all_rvs

let test_intra_variance_positive_and_split_sensitivity () =
  let g, pl, layers, path = context () in
  let pc = Path_coeffs.of_path g pl layers path in
  let equal = Budget.equal ~layers:5 in
  let v_equal = Path_coeffs.intra_variance pc equal in
  check_true "variance positive" (v_equal > 0.0);
  let pure_inter = Budget.inter_intra ~inter_fraction:1.0 ~layers:5 in
  check_close ~tol:1e-15 "pure inter-die has zero intra variance" 0.0
    (Path_coeffs.intra_variance pc pure_inter);
  let pure_intra = Budget.inter_intra ~inter_fraction:0.0 ~layers:5 in
  check_true "pure intra has more intra variance"
    (Path_coeffs.intra_variance pc pure_intra > v_equal)

let test_of_path_fast_options_bit_identical () =
  (* [~grads] and [~ws] are pure accelerations: every field of the
     result — including the coefficient hashtable's contents and
     first-touch insertion order, which downstream float sums iterate —
     must match the plain path exactly. *)
  let g, pl, layers, path = context () in
  let reference = Path_coeffs.of_path g pl layers path in
  let grads =
    Array.init (Graph.num_nodes g) (fun id ->
        match g.Graph.electrical.(id) with
        | Some e -> Ssta_tech.Derivatives.gradient e Ssta_tech.Params.nominal
        | None -> Ssta_tech.Params.zero)
  in
  let ws = Path_coeffs.workspace_create () in
  let dump (t : Path_coeffs.t) =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.Path_coeffs.coeffs []
  in
  let same what (fast : Path_coeffs.t) =
    check_true (what ^ ": alpha_sum")
      (fast.Path_coeffs.alpha_sum = reference.Path_coeffs.alpha_sum);
    check_true (what ^ ": beta_sum")
      (fast.Path_coeffs.beta_sum = reference.Path_coeffs.beta_sum);
    check_int (what ^ ": gate_count") reference.Path_coeffs.gate_count
      fast.Path_coeffs.gate_count;
    check_true (what ^ ": nominal_delay")
      (fast.Path_coeffs.nominal_delay = reference.Path_coeffs.nominal_delay);
    List.iter
      (fun rv ->
        check_true (what ^ ": grad_sum")
          (Ssta_tech.Params.get fast.Path_coeffs.grad_sum rv
          = Ssta_tech.Params.get reference.Path_coeffs.grad_sum rv))
      Ssta_tech.Params.all_rvs;
    check_true (what ^ ": coeff table incl. iteration order")
      (dump fast = dump reference)
  in
  same "grads" (Path_coeffs.of_path ~grads g pl layers path);
  same "ws" (Path_coeffs.of_path ~ws g pl layers path);
  same "grads+ws" (Path_coeffs.of_path ~grads ~ws g pl layers path);
  (* second call reuses the workspace's epoch-stamped scratch *)
  same "ws reuse" (Path_coeffs.of_path ~grads ~ws g pl layers path)

let test_correlation_increases_variance () =
  (* Two gates in the same partition add coefficients before squaring:
     a path through co-located gates must have a larger intra variance
     than the same path spread across the die. *)
  let c = Generators.chain ~name:"ch" ~length:8 () in
  let g = Graph.of_netlist c in
  let n = Netlist.num_nodes c in
  let co_located =
    Placement.with_coords ~die_width:100.0 ~die_height:100.0
      (Array.make n (5.0, 5.0))
  in
  let spread =
    Placement.with_coords ~die_width:100.0 ~die_height:100.0
      (Array.init n (fun i ->
           (float_of_int (i * 11) +. 2.0, float_of_int (i * 11) +. 2.0)))
  in
  let labels = Longest_path.bellman_ford g in
  let nodes = Longest_path.critical_path g labels in
  let path = { Paths.nodes; delay = Paths.recompute_delay g nodes } in
  let budget = Budget.equal ~layers:5 in
  let variance pl =
    let layers = Layers.of_placement pl in
    Path_coeffs.intra_variance (Path_coeffs.of_path g pl layers path) budget
  in
  check_true "co-located (correlated) variance is larger"
    (variance co_located > variance spread)

let suite =
  ( "correlation",
    [ case "layer counts" test_layer_counts;
      case "random layer partition queries rejected"
        test_partitions_at_random_rejected;
      case "quadrant partitioning" test_partition_of_quadrants;
      case "level 0 is the whole die" test_partition_of_level0;
      case "partition clamping" test_partition_clamping;
      case "random layer uses gate ids" test_partition_of_gate_random_layer;
      case "layer creation validation" test_create_validation;
      prop_partition_in_range;
      prop_nearby_points_share_partitions;
      case "equal budget" test_equal_budget;
      case "inter/intra budget" test_inter_intra_budget;
      case "budget normalization" test_budget_normalization;
      case "budget validation" test_budget_validation;
      case "Eq. 6 variance conservation" test_variance_conservation;
      prop_variance_check;
      case "coefficient accumulation" test_coeffs_accumulate;
      case "intra layers only in coefficients" test_coeffs_layer_structure;
      case "partition sums recover derivative totals"
        test_coeffs_level1_sum_equals_gradient_sum;
      case "intra variance responds to the split"
        test_intra_variance_positive_and_split_sensitivity;
      case "of_path grads/workspace options are bit-identical"
        test_of_path_fast_options_bit_identical;
      case "spatial correlation increases path variance"
        test_correlation_increases_variance ] )
