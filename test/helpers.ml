(* Shared test utilities. *)

let check_close ?(tol = 1e-9) msg expected actual =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %g)" msg expected
      actual tol

let check_close_abs ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (abs tol %g)" msg expected
      actual tol

let check_true msg cond = Alcotest.(check bool) msg true cond
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

(* Bitwise PDF equality: the arena-backed fast kernels advertise
   bit-identity with their reference paths, so compare raw float bits —
   no tolerance. *)
let pdf_bits_equal (a : Ssta_prob.Pdf.t) (b : Ssta_prob.Pdf.t) =
  let module Pdf = Ssta_prob.Pdf in
  let bits = Int64.bits_of_float in
  Int64.equal (bits a.Pdf.lo) (bits b.Pdf.lo)
  && Int64.equal (bits a.Pdf.step) (bits b.Pdf.step)
  && Array.length a.Pdf.density = Array.length b.Pdf.density
  && Array.for_all2
       (fun x y -> Int64.equal (bits x) (bits y))
       a.Pdf.density b.Pdf.density

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* A small, fast configuration for methodology-level tests. *)
let fast_config =
  let open Ssta_core in
  Config.with_quality Config.default ~intra:40 ~inter:16

(* Deterministic small circuits used across timing tests. *)
let tiny_chain () =
  Ssta_circuit.Generators.chain ~name:"tiny" ~length:5 ()

let small_adder () =
  Ssta_circuit.Generators.ripple_carry_adder ~name:"rca4" ~bits:4 ()

let small_random () =
  Ssta_circuit.Generators.random_layered ~name:"rand" ~inputs:8 ~outputs:4
    ~gates:60 ~depth:8 ~seed:99 ()
