(* Tests for the analysis runtime: typed errors, guarded PDF operations,
   resource budgets and graceful degradation. *)

open Helpers
module Err = Ssta_runtime.Ssta_error
module Health = Ssta_runtime.Health
module Guard = Ssta_runtime.Guard
module Rbudget = Ssta_runtime.Budget
module Pdf = Ssta_prob.Pdf
module Rng = Ssta_prob.Rng
module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Methodology = Ssta_core.Methodology
module Config = Ssta_core.Config

(* ----- typed errors ----- *)

let test_positions () =
  let pos =
    Err.position_of_token ~file:"x.bench" ~line:7
      ~line_text:"g1 = NAND(a, b)" "NAND"
  in
  check_int "line" 7 pos.Err.line;
  check_int "col of NAND" 6 pos.Err.col;
  Alcotest.(check (option string)) "file" (Some "x.bench") pos.Err.file;
  let missing =
    Err.position_of_token ~line:3 ~line_text:"short line" "ABSENT"
  in
  check_int "unknown col is 0" 0 missing.Err.col

let test_exit_codes () =
  check_int "parse is 1" 1 (Err.exit_code (Err.parse ~format:"bench" "x"));
  check_int "structural is 1" 1
    (Err.exit_code (Err.structural ~subject:"s" "x"));
  check_int "numeric is 1" 1 (Err.exit_code (Err.numeric ~op:"o" "x"));
  check_int "budget is 1" 1 (Err.exit_code (Err.budget ~resource:"r" "x"));
  check_int "internal is 4" 4
    (Err.exit_code (Err.internal ~context:"c" "x"))

let test_of_exn () =
  let kind e = Err.kind_name (Err.of_exn ~context:"t" e) in
  Alcotest.(check string) "invalid_arg" "structural"
    (kind (Invalid_argument "x"));
  Alcotest.(check string) "failure" "structural" (kind (Failure "x"));
  Alcotest.(check string) "oom" "budget-exceeded" (kind Out_of_memory);
  Alcotest.(check string) "not_found" "internal" (kind Not_found);
  (* Error payloads pass through unchanged *)
  let e = Err.numeric ~op:"conv" "NaN" in
  check_true "passthrough" (Err.of_exn ~context:"t" (Err.Error e) == e)

let test_protect () =
  (match Err.protect ~context:"t" (fun () -> 42) with
  | Ok v -> check_int "ok" 42 v
  | Error _ -> Alcotest.fail "expected Ok");
  match Err.protect ~context:"t" (fun () -> invalid_arg "boom") with
  | Ok _ -> Alcotest.fail "expected Error"
  | Error e -> Alcotest.(check string) "kind" "structural" (Err.kind_name e)

(* ----- budgets ----- *)

let test_parse_duration () =
  let ok s = match Rbudget.parse_duration s with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: unexpected error %s" s (Err.to_string e)
  in
  check_close "seconds" 10.0 (ok "10s");
  check_close "millis" 0.5 (ok "500ms");
  check_close "minutes" 120.0 (ok "2m");
  check_close "hours" 900.0 (ok "0.25h");
  check_close "bare" 3.5 (ok "3.5");
  List.iter
    (fun s ->
      match Rbudget.parse_duration s with
      | Ok v -> Alcotest.failf "%s: expected error, got %g" s v
      | Error _ -> ())
    [ "abc"; "-5s"; "0"; "1d"; ""; "nan" ]

let test_parse_duration_edges () =
  let reject s =
    match Rbudget.parse_duration s with
    | Ok v -> Alcotest.failf "%s: expected error, got %g" s v
    | Error e ->
        check_true
          (Printf.sprintf "%s: typed" s)
          (Err.kind_name e = "structural" || Err.kind_name e = "parse")
  in
  (* Zero in any unit, overflow to infinity, explicit infinities, bad
     suffixes and embedded whitespace must all be typed rejections. *)
  List.iter reject
    [ "0s"; "0ms"; "0.0"; "-0.5h"; "1e400"; "inf"; "infinity"; "-inf";
      "5x"; "ms"; "1.5.2s"; "5 s" ];
  (* Surrounding whitespace is trimmed by design. *)
  match Rbudget.parse_duration "  5s " with
  | Ok v -> check_close "trimmed" 5.0 v
  | Error e -> Alcotest.failf "trimmed: unexpected error %s" (Err.to_string e)

(* ----- backoff schedules ----- *)

module Backoff = Ssta_runtime.Backoff

let test_backoff_schedule () =
  let b = Backoff.make ~base_s:0.01 ~multiplier:2.0 ~cap_s:0.05 ~max_retries:4 () in
  check_int "retries" 4 (Backoff.max_retries b);
  let d a = match Backoff.delay_s b ~attempt:a with
    | Some v -> v
    | None -> Alcotest.failf "attempt %d: expected a delay" a
  in
  check_close "attempt 1" 0.01 (d 1);
  check_close "attempt 2" 0.02 (d 2);
  check_close "attempt 3" 0.04 (d 3);
  check_close "attempt 4 saturates" 0.05 (d 4);
  check_true "exhausted" (Backoff.delay_s b ~attempt:5 = None);
  check_true "attempt 0 invalid" (Backoff.delay_s b ~attempt:0 = None);
  check_true "negative invalid" (Backoff.delay_s b ~attempt:(-3) = None);
  check_int "schedule length" 4 (List.length (Backoff.schedule b));
  check_close "total" 0.12 (Backoff.total_s b);
  (* Nondecreasing by construction *)
  let rec mono = function
    | a :: (b' :: _ as rest) -> check_true "monotone" (a <= b'); mono rest
    | _ -> ()
  in
  mono (Backoff.schedule b)

let test_backoff_none_and_validation () =
  check_int "none has no retries" 0 (Backoff.max_retries Backoff.none);
  check_true "none exhausted" (Backoff.delay_s Backoff.none ~attempt:1 = None);
  check_close "none total" 0.0 (Backoff.total_s Backoff.none);
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  invalid (fun () -> Backoff.make ~max_retries:(-1) ());
  invalid (fun () -> Backoff.make ~base_s:0.0 ~max_retries:1 ());
  invalid (fun () -> Backoff.make ~multiplier:0.5 ~max_retries:1 ());
  invalid (fun () -> Backoff.make ~base_s:1.0 ~cap_s:0.5 ~max_retries:1 ())

(* ----- health ledger merge algebra ----- *)

let apply_health h (name, add) =
  if add >= 0 then Health.counter_add h name add
  else Health.counter_set h name (-add)

let merged_counters ops =
  (* Build one ledger per op, then merge in the given order. *)
  let into = Health.create () in
  List.iter
    (fun op ->
      let h = Health.create () in
      apply_health h op;
      Health.merge ~into h)
    ops;
  List.sort compare (Health.counters into)

let prop_health_merge_permutation ops =
  (* Counter merging is order-independent when every op is additive
     (counter_add); merge order must not leak into lifetime stats. *)
  let ops = List.map (fun (n, v) -> ("c" ^ string_of_int (n mod 3), abs v)) ops in
  merged_counters ops = merged_counters (List.rev ops)

let test_health_merge_associative () =
  let mk pairs =
    let h = Health.create () in
    List.iter (fun (n, v) -> Health.counter_add h n v) pairs;
    h
  in
  let a () = mk [ ("x", 1); ("y", 2) ]
  and b () = mk [ ("x", 3) ]
  and c () = mk [ ("z", 5); ("y", 1) ] in
  (* (a <- b) <- c  versus  a <- (b <- c) *)
  let left =
    let t = a () in
    Health.merge ~into:t (b ());
    Health.merge ~into:t (c ());
    List.sort compare (Health.counters t)
  in
  let right =
    let t = a () in
    let bc = b () in
    Health.merge ~into:bc (c ());
    Health.merge ~into:t bc;
    List.sort compare (Health.counters t)
  in
  check_true "associative" (left = right);
  check_true "totals" (left = [ ("x", 4); ("y", 3); ("z", 5) ])

let test_budget_basics () =
  check_true "unlimited" (Rbudget.is_unlimited Rbudget.unlimited);
  let b = Rbudget.make ~max_paths:100 () in
  check_true "not unlimited" (not (Rbudget.is_unlimited b));
  check_int "clamped" 100 (Rbudget.effective_max_paths b 5000);
  check_int "config smaller" 7 (Rbudget.effective_max_paths b 7);
  check_int "no cap" 5000
    (Rbudget.effective_max_paths Rbudget.unlimited 5000);
  (match Rbudget.validate (Rbudget.make ~deadline_s:(-1.0) ()) with
  | Ok () -> Alcotest.fail "negative deadline must be invalid"
  | Error _ -> ());
  match Rbudget.clamp_quality (Rbudget.make ~max_cells:20 ()) ~intra:100 ~inter:50 with
  | None -> Alcotest.fail "expected clamping"
  | Some (qi, qe) ->
      check_true "intra clamped" (qi <= 20);
      check_true "inter clamped" (qe <= 20);
      check_true "still usable" (qi >= 2 && qe >= 2)

let test_stop_check () =
  (* no deadline: never stops *)
  let tr = Rbudget.start Rbudget.unlimited in
  let stop = Rbudget.stop_check ~stride:1 tr in
  check_true "never" (not (stop () || stop () || stop ()));
  (* already-expired deadline latches immediately *)
  let tr = Rbudget.start (Rbudget.make ~deadline_s:1e-9 ()) in
  let stop = Rbudget.stop_check ~stride:1 tr in
  ignore (Unix.select [] [] [] 0.01);
  check_true "expired" (stop ());
  check_true "latched" (stop ())

(* ----- guarded PDF operations ----- *)

let well_formed p =
  Array.for_all (fun d -> Float.is_finite d && d >= 0.0) p.Pdf.density
  && Float.abs (Pdf.total_mass p -. 1.0) <= 1e-6

let random_pdf rng =
  let n = 2 + Rng.int rng 40 in
  let lo = -1.0 +. (2.0 *. Rng.float rng) in
  let step = 0.01 +. Rng.float rng in
  let density = Array.init n (fun _ -> Rng.float rng +. 1e-3) in
  Pdf.make ~lo ~step density

let test_guard_rejects_nan () =
  let h = Health.create () in
  (match
     Guard.make_res h ~op:"t" ~lo:0.0 ~step:0.1 [| 1.0; Float.nan; 1.0 |]
   with
  | Ok _ -> Alcotest.fail "NaN density must be rejected"
  | Error e -> Alcotest.(check string) "kind" "numeric" (Err.kind_name e));
  match Guard.make_res h ~op:"t" ~lo:0.0 ~step:0.1 [| 1.0; infinity |] with
  | Ok _ -> Alcotest.fail "Inf density must be rejected"
  | Error _ -> ()

let test_guard_repairs_drift () =
  let h = Health.create () in
  (* mass 2.0: repairable drift, renormalized + recorded *)
  match Guard.make_res h ~op:"drift" ~lo:0.0 ~step:1.0 [| 1.0; 1.0 |] with
  | Error e -> Alcotest.failf "unexpected: %s" (Err.to_string e)
  | Ok p ->
      check_true "well-formed after repair" (well_formed p);
      check_true "recorded" (not (Health.is_clean h));
      check_true "renormalized" (Health.renormalizations h >= 1)

let test_guard_affine_bad_coeffs () =
  let h = Health.create () in
  let p = Pdf.make ~lo:0.0 ~step:0.5 [| 1.0; 2.0; 1.0 |] in
  (match Guard.affine_res h ~mul:Float.nan ~add:0.0 p with
  | Ok _ -> Alcotest.fail "NaN mul must be rejected"
  | Error _ -> ());
  match Guard.affine_res h ~mul:0.0 ~add:1.0 p with
  | Ok _ -> Alcotest.fail "zero mul must be rejected"
  | Error _ -> ()

let prop_guard_closed seed =
  let rng = Rng.create seed in
  let h = Health.create () in
  let p = random_pdf rng in
  let q = random_pdf rng in
  let results =
    [ Guard.sum_res ~n:30 h p q;
      Guard.map_res ~n:30 h (fun x -> (x *. 1.3) +. 0.1) p;
      Guard.affine_res h ~mul:(0.5 +. Rng.float rng) ~add:(Rng.float rng) p;
      Guard.resample_res h ~n:(2 + Rng.int rng 50) p;
      Guard.check_res h ~op:"id" p ]
  in
  List.for_all
    (function
      | Ok r -> well_formed r
      | Error _ -> false (* well-formed inputs must never error *))
    results

(* ----- best-first enumeration: budget = prefix of the ranking ----- *)

let prop_capped_prefix (seed, k) =
  let circuit =
    Ssta_circuit.Generators.random_layered ~name:"pfx"
      ~inputs:(4 + (seed mod 5))
      ~outputs:(2 + (seed mod 3))
      ~gates:(40 + (seed mod 40))
      ~depth:(5 + (seed mod 4))
      ~seed ()
  in
  let sta = Sta.analyze circuit in
  let slack = 0.2 *. sta.Sta.critical_delay in
  let full = Sta.near_critical ~max_paths:100_000 sta ~slack in
  let capped = Sta.near_critical ~max_paths:k sta ~slack in
  let full_arr = Array.of_list full.Paths.paths in
  let capped_arr = Array.of_list capped.Paths.paths in
  let expected = Int.min k (Array.length full_arr) in
  Array.length capped_arr = expected
  && Array.for_all
       (fun (p : Paths.path) ->
         Array.exists (fun (q : Paths.path) -> q.Paths.nodes = p.Paths.nodes)
           full_arr)
       capped_arr
  && Array.for_all
       (fun i ->
         let scale =
           Float.max 1e-30 (Float.abs full_arr.(i).Paths.delay)
         in
         Float.abs (capped_arr.(i).Paths.delay -. full_arr.(i).Paths.delay)
         <= 1e-9 *. scale)
       (Array.init expected (fun i -> i))

let test_enumeration_sorted_and_stopped () =
  let circuit = small_random () in
  let sta = Sta.analyze circuit in
  let slack = 0.3 *. sta.Sta.critical_delay in
  let e = Sta.near_critical sta ~slack in
  check_true "has paths" (e.Paths.paths <> []);
  check_true "explored counted" (e.Paths.explored > 0);
  check_true "no deadline" (not e.Paths.deadline_hit);
  (* a stop callback that fires immediately returns an empty, flagged
     enumeration instead of hanging or raising *)
  let stopped = Sta.near_critical ~should_stop:(fun () -> true) sta ~slack in
  check_true "deadline flagged" stopped.Paths.deadline_hit;
  check_int "no paths" 0 (List.length stopped.Paths.paths)

(* ----- methodology budgets ----- *)

let test_methodology_deadline_degrades () =
  let circuit = small_random () in
  match
    Methodology.analyze ~config:fast_config
      ~budget:(Rbudget.make ~deadline_s:1e-9 ())
      circuit
  with
  | Error e -> Alcotest.failf "must not fail: %s" (Err.to_string e)
  | Ok m ->
      check_true "degraded" (Methodology.is_degraded m);
      check_true "events recorded" (Methodology.degradations m <> []);
      check_true "still has a ranking" (Array.length m.Methodology.ranked >= 1)

let test_methodology_path_cap_degrades () =
  let circuit = small_random () in
  let config = Ssta_core.Config.with_confidence fast_config 3.0 in
  match
    Methodology.analyze ~config ~budget:(Rbudget.make ~max_paths:2 ()) circuit
  with
  | Error e -> Alcotest.failf "must not fail: %s" (Err.to_string e)
  | Ok m ->
      check_true "degraded by cap" (Methodology.is_degraded m);
      check_true "kept the capped subset"
        (Array.length m.Methodology.ranked >= 1
        && Array.length m.Methodology.ranked <= 2);
      check_true "capped event"
        (List.exists
           (function
             | Rbudget.Capped { resource = "paths"; _ } -> true
             | _ -> false)
           (Methodology.degradations m))

let test_methodology_cell_cap_degrades () =
  let circuit = small_random () in
  match
    Methodology.analyze ~config:fast_config
      ~budget:(Rbudget.make ~max_cells:8 ())
      circuit
  with
  | Error e -> Alcotest.failf "must not fail: %s" (Err.to_string e)
  | Ok m ->
      check_true "degraded by cells" (Methodology.is_degraded m);
      check_true "quality tightened"
        (List.exists
           (function
             | Rbudget.Tightened { parameter; _ } ->
                 String.length parameter >= 7
                 && String.sub parameter 0 7 = "quality"
             | _ -> false)
           (Methodology.degradations m));
      check_int "quality actually used" 8 m.Methodology.config.Config.quality_intra

let test_methodology_unlimited_complete () =
  let circuit = small_random () in
  match Methodology.analyze ~config:fast_config circuit with
  | Error e -> Alcotest.failf "must not fail: %s" (Err.to_string e)
  | Ok m ->
      check_true "complete" (not (Methodology.is_degraded m));
      check_true "healthy" (Health.is_clean m.Methodology.health)

let test_methodology_analyze_invalid () =
  let circuit = small_random () in
  let caps = Array.make 3 0.0 (* wrong length *) in
  match
    Methodology.analyze ~config:fast_config ~wire:Ssta_tech.Wire.default
      ~wire_caps:caps circuit
  with
  | Ok _ -> Alcotest.fail "wire + wire_caps must be a typed error"
  | Error e ->
      Alcotest.(check string) "kind" "structural" (Err.kind_name e)

(* ----- health ledger ----- *)

let test_health_ledger () =
  let h = Health.create () in
  check_true "fresh is clean" (Health.is_clean h);
  Health.record h ~op:"conv" ~issue:Health.Mass_defect ~defect:1e-3 "drift";
  Health.record h ~op:"conv" ~issue:Health.Renormalized ~defect:1e-3 "fixed";
  check_int "count" 2 (Health.count h);
  check_close "worst defect" 1e-3 (fst (Health.worst_defect h));
  let h2 = Health.create () in
  Health.record h2 ~op:"aff" ~issue:Health.Negative_density ~defect:5e-2 "neg";
  Health.merge ~into:h h2;
  check_int "merged" 3 (Health.count h);
  check_close "merged worst" 5e-2 (fst (Health.worst_defect h));
  Alcotest.(check string) "worst op" "aff" (snd (Health.worst_defect h))

let suite =
  ( "runtime",
    [ case "error positions from tokens" test_positions;
      case "exit-code convention" test_exit_codes;
      case "exception classification" test_of_exn;
      case "protect" test_protect;
      case "duration parsing" test_parse_duration;
      case "duration parsing edge cases" test_parse_duration_edges;
      case "backoff schedule" test_backoff_schedule;
      case "backoff none and validation" test_backoff_none_and_validation;
      qcheck ~count:80 "health counter merge is order-independent"
        QCheck.(small_list (pair small_int small_int))
        prop_health_merge_permutation;
      case "health merge associativity" test_health_merge_associative;
      case "budget basics" test_budget_basics;
      case "stop-check latching" test_stop_check;
      case "guard rejects non-finite density" test_guard_rejects_nan;
      case "guard repairs mass drift" test_guard_repairs_drift;
      case "guard rejects bad affine coefficients" test_guard_affine_bad_coeffs;
      qcheck ~count:60 "guarded ops closed over well-formed PDFs"
        QCheck.(int_range 1 10_000)
        prop_guard_closed;
      qcheck ~count:30 "capped enumeration is a prefix of the ranking"
        QCheck.(pair (int_range 1 500) (int_range 1 25))
        prop_capped_prefix;
      case "enumeration stop callback" test_enumeration_sorted_and_stopped;
      slow_case "deadline degrades gracefully"
        test_methodology_deadline_degrades;
      slow_case "path cap degrades gracefully"
        test_methodology_path_cap_degrades;
      slow_case "cell cap tightens quality" test_methodology_cell_cap_degrades;
      slow_case "unlimited budget stays complete"
        test_methodology_unlimited_complete;
      case "invalid arguments become typed errors"
        test_methodology_analyze_invalid;
      case "health ledger" test_health_ledger ] )
