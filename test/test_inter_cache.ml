open Ssta_core
open Helpers
module Pdf = Ssta_prob.Pdf
module Pool = Ssta_parallel.Pool

(* The scale-covariant inter-kernel cache: covariance of cached results,
   determinism of the A/B switch and of parallel runs, counter
   accounting, and the single-pass moments helper it leans on. *)

let tables = lazy (Inter.tables fast_config)

let rel a b =
  Float.abs (a -. b) /. Float.max 1e-300 (Float.max (Float.abs a) (Float.abs b))

let stats_close ?(tol = 1e-9) name a b =
  let pairs =
    [ ("mean", Pdf.mean a, Pdf.mean b);
      ("std", Pdf.std a, Pdf.std b);
      ("q0.001", Pdf.quantile a 0.001, Pdf.quantile b 0.001);
      ("q0.5", Pdf.quantile a 0.5, Pdf.quantile b 0.5);
      ("q0.999", Pdf.quantile a 0.999, Pdf.quantile b 0.999) ]
  in
  List.iter
    (fun (what, x, y) ->
      if rel x y > tol then
        Alcotest.failf "%s: %s diverges: %.17g vs %.17g (rel %.3g)" name what
          x y (rel x y))
    pairs

(* ---------------- Pdf.moments ---------------- *)

let qcheck_moments_bit_identical =
  qcheck ~count:100 "Pdf.moments == (mean, variance) bitwise"
    QCheck.(pair (int_range 0 1_000_000) (int_range 8 120))
    (fun (seed, n) ->
      let rng = Ssta_prob.Rng.create seed in
      let cells =
        Array.init n (fun _ -> Ssta_prob.Rng.float rng +. 1e-6)
      in
      let p = Pdf.make ~lo:(-3.0) ~step:0.17 cells in
      let m = Pdf.moments p in
      m.Pdf.m_mean = Pdf.mean p && m.Pdf.m_var = Pdf.variance p)

(* ---------------- Scale covariance ---------------- *)

let coeff_gen =
  QCheck.(
    quad (float_range 0.1 50.0) (float_range 0.0 50.0)
      (float_range 0.1 50.0) (float_range 0.0 50.0))

let qcheck_cached_matches_uncached =
  qcheck ~count:60 "cached pdf_dual == uncached within 1e-9 relative"
    QCheck.(pair coeff_gen (float_range 0.02 40.0))
    (fun ((al, ah, bl, bh), c) ->
      let t = Lazy.force tables in
      let cache = Inter.cache_create t in
      let al = c *. al and ah = c *. ah and bl = c *. bl and bh = c *. bh in
      let cached =
        Inter.pdf_dual ~cache t ~alpha_low:al ~alpha_high:ah ~beta_low:bl
          ~beta_high:bh
      in
      let fresh =
        Inter.pdf_dual t ~alpha_low:al ~alpha_high:ah ~beta_low:bl
          ~beta_high:bh
      in
      stats_close "cached vs fresh" cached fresh;
      true)

let test_hit_is_exact_rescale_of_same_direction () =
  (* Two calls along the same direction: the second is served by
     Pdf.scale from the first's kernel, and must still match its own
     from-scratch computation. *)
  let t = Lazy.force tables in
  let cache = Inter.cache_create t in
  let call ?cache c =
    Inter.pdf_dual ?cache t ~alpha_low:(3.0 *. c) ~alpha_high:(1.0 *. c)
      ~beta_low:(2.0 *. c) ~beta_high:(0.5 *. c)
  in
  ignore (call ~cache 1.0);
  let hit = call ~cache 7.25 in
  stats_close "hit vs fresh" hit (call 7.25);
  let st = Inter.cache_stats cache in
  check_int "lookups" 2 st.Inter.cs_lookups;
  check_int "distinct" 1 st.Inter.cs_distinct;
  check_int "hits" 1 st.Inter.cs_hits

let test_counters_distinguish_directions () =
  let t = Lazy.force tables in
  let cache = Inter.cache_create t in
  let call al bl = ignore (Inter.pdf_dual ~cache t ~alpha_low:al
                             ~alpha_high:0.0 ~beta_low:bl ~beta_high:0.0) in
  call 1.0 1.0;
  call 2.0 1.0;  (* different direction: alpha/beta ratio changed *)
  call 4.0 2.0;  (* scale of the 2.0 call: same direction *)
  let st = Inter.cache_stats cache in
  check_int "lookups" 3 st.Inter.cs_lookups;
  check_int "distinct" 2 st.Inter.cs_distinct;
  check_int "hits" 1 st.Inter.cs_hits

let test_cache_rejects_foreign_tables () =
  let t = Lazy.force tables in
  let other = Inter.tables fast_config in
  let cache = Inter.cache_create other in
  check_raises_invalid "foreign tables" (fun () ->
      ignore
        (Inter.pdf_dual ~cache t ~alpha_low:1.0 ~alpha_high:0.0 ~beta_low:1.0
           ~beta_high:0.0))

(* ---------------- Arena-backed kernel bit-identity ---------------- *)

let qcheck_arena_kernel_bit_identical =
  qcheck ~count:40 "inter kernel with arena == without, bitwise" coeff_gen
    (fun (al, ah, bl, bh) ->
      let t = Lazy.force tables in
      let arena = Ssta_prob.Arena.create () in
      let call ?arena () =
        Inter.pdf_dual ?arena t ~alpha_low:al ~alpha_high:ah ~beta_low:bl
          ~beta_high:bh
      in
      let plain = call () in
      let first = call ~arena () in
      (* second call recycles the released grid/column buffers *)
      let reused = call ~arena () in
      pdf_bits_equal plain first && pdf_bits_equal plain reused)

let test_arena_cached_bit_identical () =
  (* The arena must be invisible through the scale-covariant cache too:
     both the miss (kernel build) and the hit (O(Q) rescale) paths. *)
  let t = Lazy.force tables in
  let arena = Ssta_prob.Arena.create () in
  let run ?arena () =
    let cache = Inter.cache_create t in
    let miss =
      Inter.pdf_dual ~cache ?arena t ~alpha_low:3.0 ~alpha_high:1.0
        ~beta_low:2.0 ~beta_high:0.5
    in
    let hit =
      Inter.pdf_dual ~cache ?arena t ~alpha_low:6.0 ~alpha_high:2.0
        ~beta_low:4.0 ~beta_high:1.0
    in
    (miss, hit)
  in
  let miss_p, hit_p = run () in
  let miss_a, hit_a = run ~arena () in
  check_true "cache miss bit-identical" (pdf_bits_equal miss_p miss_a);
  check_true "cache hit bit-identical" (pdf_bits_equal hit_p hit_a)

(* ---------------- Whole-flow A/B and parallel determinism ---------------- *)

let quick_config = { fast_config with Config.max_paths = 100 }

let report ?(jobs = 1) config circuit =
  Pool.with_pool ~jobs (fun pool ->
      Report.json_report (Methodology.run ~config ~pool circuit))

(* Split a JSON report into string/number/punctuation tokens so the A/B
   comparison can hold structure and text exactly while giving numbers a
   relative tolerance (reports print floats at full precision, so the
   cache's ~1e-12 quantization perturbation is visible in the bytes). *)
type tok = Text of string | Num of float

let tokenize s =
  let is_num c =
    (c >= '0' && c <= '9') || c = '.' || c = '-' || c = '+' || c = 'e'
    || c = 'E'
  in
  let toks = ref [] and i = ref 0 and len = String.length s in
  while !i < len do
    if s.[!i] = '"' then begin
      let j = ref (!i + 1) in
      while !j < len && s.[!j] <> '"' do incr j done;
      toks := Text (String.sub s !i (!j - !i + 1)) :: !toks;
      i := !j + 1
    end
    else if is_num s.[!i] then begin
      let j = ref !i in
      while !j < len && is_num s.[!j] do incr j done;
      let word = String.sub s !i (!j - !i) in
      (* "e" inside barewords like true/false is not a number *)
      (toks :=
         match float_of_string_opt word with
         | Some f -> Num f :: !toks
         | None -> Text word :: !toks);
      i := !j
    end
    else begin
      toks := Text (String.make 1 s.[!i]) :: !toks;
      incr i
    end
  done;
  List.rev !toks

(* Drop the health counters object: the cache ledger is only present
   when the cache is on, and is not part of the statistical results the
   A/B comparison is about. *)
let drop_counters s =
  let marker = "\"counters\":{" in
  match
    let m = String.length marker in
    let rec find i =
      if i + m > String.length s then None
      else if String.sub s i m = marker then Some i
      else find (i + 1)
    in
    find 0
  with
  | None -> s
  | Some i ->
      let j = ref (i + String.length marker) in
      while s.[!j] <> '}' do incr j done;
      String.sub s 0 i ^ String.sub s (!j + 1) (String.length s - !j - 1)

let test_cache_on_off_reports_equal () =
  let circuit = small_random () in
  let drop_flag s =
    List.fold_left
      (fun s sub ->
        let n = String.length sub in
        let rec find i =
          if i + n > String.length s then s
          else if String.sub s i n = sub then
            String.sub s 0 i ^ String.sub s (i + n) (String.length s - i - n)
          else find (i + 1)
        in
        find 0)
      s
      [ "\"inter_cache\":true"; "\"inter_cache\":false" ]
  in
  let toks inter_cache =
    tokenize
      (drop_flag
         (drop_counters (report { quick_config with Config.inter_cache } circuit)))
  in
  let rec cmp = function
    | [], [] -> ()
    | Text x :: a, Text y :: b when String.equal x y -> cmp (a, b)
    | Num x :: a, Num y :: b when rel x y <= 1e-9 -> cmp (a, b)
    | Num x :: _, Num y :: _ ->
        Alcotest.failf "number diverges: %.17g vs %.17g (rel %.3g)" x y
          (rel x y)
    | _ -> Alcotest.fail "reports differ structurally"
  in
  cmp (toks true, toks false)

let test_cache_on_off_stats_within_tol () =
  let circuit = small_adder () in
  let run inter_cache =
    Methodology.run ~config:{ quick_config with Config.inter_cache } circuit
  in
  let m_on = run true and m_off = run false in
  check_int "same path count"
    (Array.length m_on.Methodology.ranked)
    (Array.length m_off.Methodology.ranked);
  let by_det = Hashtbl.create 64 in
  Array.iter
    (fun (r : Ranking.ranked) ->
      Hashtbl.replace by_det r.Ranking.det_rank r.Ranking.analysis)
    m_off.Methodology.ranked;
  Array.iter
    (fun (r : Ranking.ranked) ->
      let a = r.Ranking.analysis in
      match Hashtbl.find_opt by_det r.Ranking.det_rank with
      | None -> Alcotest.fail "path sets differ"
      | Some f ->
          List.iter
            (fun (what, x, y) ->
              if rel x y > 1e-9 then
                Alcotest.failf "%s diverges: rel %.3g" what (rel x y))
            [ ("mean", a.Path_analysis.mean, f.Path_analysis.mean);
              ("std", a.Path_analysis.std, f.Path_analysis.std);
              ("confidence_point", a.Path_analysis.confidence_point,
               f.Path_analysis.confidence_point) ])
    m_on.Methodology.ranked

let test_cached_jobs_byte_identical () =
  let config = { quick_config with Config.inter_cache = true } in
  let circuit = small_random () in
  check_true "jobs 1 == jobs 4 with cache on"
    (String.equal (report ~jobs:1 config circuit)
       (report ~jobs:4 config circuit))

let test_run_surfaces_cache_counters () =
  let m =
    Methodology.run
      ~config:{ quick_config with Config.inter_cache = true }
      (small_adder ())
  in
  let c n = Ssta_runtime.Health.counter m.Methodology.health n in
  let lookups = c "inter-cache-lookups" in
  let distinct = c "inter-cache-distinct" in
  let hits = c "inter-cache-hits" in
  check_true "one lookup per analyzed path"
    (lookups = Array.length m.Methodology.ranked);
  check_int "hits = lookups - distinct" (lookups - distinct) hits;
  check_true "distinct positive" (distinct > 0)

let test_disabled_cache_reports_no_counters () =
  let m =
    Methodology.run
      ~config:{ quick_config with Config.inter_cache = false }
      (small_adder ())
  in
  check_int "no lookups counter" 0
    (Ssta_runtime.Health.counter m.Methodology.health "inter-cache-lookups")

let suite =
  ( "inter-cache",
    [ qcheck_moments_bit_identical;
      qcheck_cached_matches_uncached;
      case "cache hit is an exact rescale" test_hit_is_exact_rescale_of_same_direction;
      case "counters distinguish directions" test_counters_distinguish_directions;
      case "cache rejects foreign tables" test_cache_rejects_foreign_tables;
      qcheck_arena_kernel_bit_identical;
      case "arena invisible through the cache" test_arena_cached_bit_identical;
      case "cache on/off reports equal modulo flag" test_cache_on_off_reports_equal;
      case "cache on/off stats within 1e-9" test_cache_on_off_stats_within_tol;
      slow_case "cached run byte-identical at jobs 1 and 4"
        test_cached_jobs_byte_identical;
      case "run surfaces cache counters" test_run_surfaces_cache_counters;
      case "disabled cache leaves no counters" test_disabled_cache_reports_no_counters ] )
