(* Fault-injection harness: every corruption of every input artifact
   must yield a typed error or a successful (possibly degraded) analysis
   — never an uncaught exception, a hang, or silent garbage. *)

open Helpers
module Err = Ssta_runtime.Ssta_error
module Fault = Ssta_runtime.Fault
module Rbudget = Ssta_runtime.Budget
module Bench_format = Ssta_circuit.Bench_format
module Def_format = Ssta_circuit.Def_format
module Spef = Ssta_circuit.Spef
module Verilog = Ssta_circuit.Verilog
module Placement = Ssta_circuit.Placement
module Methodology = Ssta_core.Methodology
module Config = Ssta_core.Config

let circuit = lazy (small_random ())
let placement = lazy (Placement.place (Lazy.force circuit))

let bench_text = lazy (Bench_format.to_string (Lazy.force circuit))
let verilog_text = lazy (Verilog.to_string (Lazy.force circuit))

let def_text =
  lazy
    (Def_format.to_string
       (Def_format.of_placement ~design:"rand" (Lazy.force circuit)
          (Lazy.force placement)))

let spef_text =
  lazy
    (Spef.to_string
       (Spef.of_placement ~design:"rand" (Lazy.force circuit)
          (Lazy.force placement)))

(* A corrupted netlist that still parses must also survive a budgeted
   end-to-end run. *)
let analyze_netlist c =
  Result.map ignore
    (Methodology.analyze ~config:fast_config
       ~budget:(Rbudget.make ~deadline_s:20.0 ~max_paths:100 ())
       c)

let corpus ~extra = Fault.standard ~seed:42 () @ extra

(* Run every corruption of one artifact through [consume]; return the
   labels that crashed. *)
let crashes_of ~text ~extra consume =
  List.filter_map
    (fun (c : Fault.corruption) ->
      let corrupted = Fault.apply c text in
      match Fault.run (fun () -> consume corrupted) with
      | Fault.Crash msg -> Some (c.Fault.label ^ ": " ^ msg)
      | Fault.Typed _ | Fault.Value _ -> None)
    (corpus ~extra)

let check_no_crashes what crashed =
  if crashed <> [] then
    Alcotest.failf "%s corruptions crashed:\n  %s" what
      (String.concat "\n  " crashed)

let test_bench_faults () =
  check_no_crashes "bench"
    (crashes_of ~text:(Lazy.force bench_text)
       ~extra:
         [ Fault.substitute ~pattern:"NAND" ~by:"FROB";
           Fault.substitute ~pattern:"INPUT" ~by:"OUTPUT";
           Fault.substitute ~pattern:"(" ~by:"" ]
       (fun t -> Result.bind (Bench_format.parse_string_res t) analyze_netlist))

let test_verilog_faults () =
  check_no_crashes "verilog"
    (crashes_of ~text:(Lazy.force verilog_text)
       ~extra:
         [ Fault.substitute ~pattern:"endmodule" ~by:"";
           Fault.substitute ~pattern:";" ~by:"";
           Fault.substitute ~pattern:"wire" ~by:"wired" ]
       (fun t -> Result.bind (Verilog.parse_string_res t) analyze_netlist))

let test_def_faults () =
  let circuit = Lazy.force circuit in
  check_no_crashes "def"
    (crashes_of ~text:(Lazy.force def_text)
       ~extra:
         [ Fault.substitute ~pattern:"PLACED" ~by:"FLOATING";
           Fault.substitute ~pattern:"0" ~by:"nan";
           Fault.substitute ~pattern:"COMPONENTS" ~by:"COMPONENT" ]
       (fun t ->
         Result.bind (Def_format.parse_string_res t) (fun d ->
             Result.map ignore (Def_format.placement_of_res d circuit))))

let test_spef_faults () =
  let circuit = Lazy.force circuit in
  check_no_crashes "spef"
    (crashes_of ~text:(Lazy.force spef_text)
       ~extra:
         [ Fault.substitute ~pattern:"0.0" ~by:"-1.0";
           Fault.substitute ~pattern:"0.0" ~by:"inf";
           Fault.substitute ~pattern:"*D_NET" ~by:"*D_NAT" ]
       (fun t ->
         Result.bind (Spef.parse_string_res t) (fun s ->
             Result.map ignore (Spef.apply_res s circuit))))

(* Config corruption: invalid methodology configurations must come back
   as typed structural errors, not exceptions. *)
let test_config_faults () =
  let circuit = Lazy.force circuit in
  let corrupt =
    [ ("zero quality", { fast_config with Config.quality_intra = 0 });
      ("negative confidence", { fast_config with Config.confidence = -1.0 });
      ("zero truncation", { fast_config with Config.truncation = 0.0 });
      ("zero max paths", { fast_config with Config.max_paths = 0 });
      ("no layers", { fast_config with Config.quad_levels = 0 }) ]
  in
  List.iter
    (fun (what, config) ->
      match Fault.run (fun () -> Methodology.analyze ~config circuit) with
      | Fault.Crash msg -> Alcotest.failf "%s crashed: %s" what msg
      | Fault.Value _ -> Alcotest.failf "%s was accepted" what
      | Fault.Typed e ->
          Alcotest.(check string)
            (what ^ " kind") "structural" (Err.kind_name e))
    corrupt

(* Placement corruption: non-finite and wildly inconsistent coordinates
   must not crash the flow. *)
let test_placement_faults () =
  let circuit = Lazy.force circuit in
  let pl = Lazy.force placement in
  let n = Array.length pl.Placement.coords in
  let corrupt_pl ~label mutate =
    let coords = Array.copy pl.Placement.coords in
    mutate coords;
    let pl' = { pl with Placement.coords } in
    match
      Fault.run (fun () ->
          Methodology.analyze ~config:fast_config ~placement:pl' circuit)
    with
    | Fault.Crash msg -> Alcotest.failf "%s crashed: %s" label msg
    | Fault.Typed _ | Fault.Value _ -> ()
  in
  corrupt_pl ~label:"nan coordinate" (fun c ->
      c.(n / 2) <- (Float.nan, snd c.(n / 2)));
  corrupt_pl ~label:"inf coordinate" (fun c ->
      c.(n / 3) <- (fst c.(n / 3), infinity));
  corrupt_pl ~label:"huge outlier" (fun c -> c.(0) <- (1e30, 1e30));
  corrupt_pl ~label:"all collapsed" (fun c ->
      Array.fill c 0 n (0.0, 0.0))

let suite =
  ( "faults",
    [ slow_case "bench corruptions never crash" test_bench_faults;
      slow_case "verilog corruptions never crash" test_verilog_faults;
      case "def corruptions never crash" test_def_faults;
      case "spef corruptions never crash" test_spef_faults;
      case "config corruptions are typed errors" test_config_faults;
      slow_case "placement corruptions never crash" test_placement_faults ] )
