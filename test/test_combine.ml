open Ssta_prob
open Helpers

let gauss ?(n = 120) mu sigma = Dist.truncated_gaussian ~n ~mu ~sigma ()

let test_accumulator_basic () =
  let a = Combine.accumulator ~lo:0.0 ~hi:10.0 ~n:10 in
  Combine.deposit a ~x:2.5 ~mass:1.0;
  let p = Combine.to_pdf a in
  check_close ~tol:1e-9 "mean of single deposit" 2.5 (Pdf.mean p)

let test_accumulator_clamps () =
  let a = Combine.accumulator ~lo:0.0 ~hi:10.0 ~n:10 in
  Combine.deposit a ~x:(-5.0) ~mass:0.5;
  Combine.deposit a ~x:50.0 ~mass:0.5;
  let p = Combine.to_pdf a in
  check_close ~tol:1e-9 "clamped mass conserved" 1.0 (Pdf.total_mass p)

let test_accumulator_empty () =
  let a = Combine.accumulator ~lo:0.0 ~hi:1.0 ~n:4 in
  check_raises_invalid "no deposits" (fun () -> ignore (Combine.to_pdf a))

let test_sum_gaussians () =
  let x = gauss 3.0 1.0 and y = gauss 5.0 2.0 in
  let z = Combine.sum x y in
  check_close ~tol:1e-6 "sum mean adds" 8.0 (Pdf.mean z);
  check_close ~tol:0.02 "sum std in quadrature" (sqrt 5.0) (Pdf.std z)

let test_sum_list () =
  let parts = [ gauss 1.0 0.5; gauss 2.0 0.5; gauss 3.0 0.5 ] in
  let z = Combine.sum_list parts in
  check_close ~tol:1e-6 "three-way sum mean" 6.0 (Pdf.mean z);
  check_close ~tol:0.02 "three-way sum std" (sqrt 0.75) (Pdf.std z);
  check_raises_invalid "empty list" (fun () -> ignore (Combine.sum_list []))

let test_product_means_multiply () =
  let x = gauss 4.0 0.5 and y = gauss 10.0 1.0 in
  let z = Combine.product x y in
  (* E[XY] = E[X] E[Y] for independent. *)
  check_close ~tol:2e-3 "product mean" 40.0 (Pdf.mean z);
  (* Var(XY) = mx^2 vy + my^2 vx + vx vy = 16 + 25 + 0.25 = 41.25 *)
  check_close ~tol:0.05 "product std" (sqrt 41.25) (Pdf.std z)

let test_map_linear () =
  let x = gauss 2.0 1.0 in
  let z = Combine.map (fun v -> (2.0 *. v) +. 1.0) x in
  check_close ~tol:1e-3 "mapped mean" 5.0 (Pdf.mean z);
  check_close ~tol:0.05 "mapped std" 2.0 (Pdf.std z)

let test_map_nonlinear_jensen () =
  (* E[X^2] = mu^2 + sigma^2 > (E[X])^2: the push-forward must capture
     the Jensen gap — the mechanism behind the paper's mean shift. *)
  let x = gauss 3.0 1.0 in
  let z = Combine.map ~n:300 (fun v -> v *. v) x in
  check_close ~tol:5e-3 "E[X^2] = 10" 10.0 (Pdf.mean z)

let test_push3 () =
  let x = gauss ~n:40 1.0 0.3 in
  let y = gauss ~n:40 2.0 0.4 in
  let w = gauss ~n:40 3.0 0.5 in
  let z = Combine.push3 (fun a b c -> a +. b +. c) x y w in
  check_close ~tol:1e-4 "push3 sum mean" 6.0 (Pdf.mean z);
  check_close ~tol:0.03 "push3 sum std"
    (sqrt ((0.3 ** 2.0) +. (0.4 ** 2.0) +. (0.5 ** 2.0)))
    (Pdf.std z)

let test_push3_product () =
  let x = gauss ~n:40 2.0 0.1 in
  let y = gauss ~n:40 3.0 0.1 in
  let w = gauss ~n:40 4.0 0.1 in
  let z = Combine.push3 (fun a b c -> a *. b *. c) x y w in
  check_close ~tol:1e-3 "independent triple product mean" 24.0 (Pdf.mean z)

let test_binop_with_point_mass () =
  let x = Pdf.point_mass 5.0 in
  let y = gauss 2.0 0.5 in
  let z = Combine.sum x y in
  check_close ~tol:1e-6 "point mass shifts" 7.0 (Pdf.mean z);
  check_close ~tol:0.02 "spread unchanged" 0.5 (Pdf.std z)

let test_mixture () =
  let z = Combine.mixture [ (1.0, gauss 0.0 0.5); (1.0, gauss 10.0 0.5) ] in
  check_close ~tol:5e-3 "bimodal mean" 5.0 (Pdf.mean z);
  check_true "bimodal std ~ 5" (Float.abs (Pdf.std z -. 5.025) < 0.1);
  check_raises_invalid "empty mixture" (fun () ->
      ignore (Combine.mixture []));
  check_raises_invalid "bad weight" (fun () ->
      ignore (Combine.mixture [ (0.0, gauss 0.0 1.0) ]))

let test_mixture_weights () =
  let z = Combine.mixture [ (3.0, gauss 0.0 0.2); (1.0, gauss 8.0 0.2) ] in
  check_close ~tol:2e-2 "weighted mixture mean" 2.0 (Pdf.mean z)

let prop_sum_mean_additive =
  qcheck "convolution adds means"
    QCheck.(
      quad (float_range (-5.0) 5.0) (float_range 0.2 2.0)
        (float_range (-5.0) 5.0) (float_range 0.2 2.0))
    (fun (m1, s1, m2, s2) ->
      let z = Combine.sum (gauss ~n:60 m1 s1) (gauss ~n:60 m2 s2) in
      Float.abs (Pdf.mean z -. (m1 +. m2)) < 1e-4 *. (1.0 +. Float.abs (m1 +. m2)))

let prop_sum_variance_additive =
  qcheck "convolution adds variances"
    QCheck.(pair (float_range 0.2 2.0) (float_range 0.2 2.0))
    (fun (s1, s2) ->
      let z = Combine.sum (gauss ~n:100 0.0 s1) (gauss ~n:100 0.0 s2) in
      let expected = (s1 *. s1) +. (s2 *. s2) in
      Float.abs (Pdf.variance z -. expected) < 0.05 *. expected)

let prop_total_mass_conserved =
  qcheck "binop conserves mass"
    QCheck.(pair (float_range (-3.0) 3.0) (float_range 0.2 2.0))
    (fun (m, s) ->
      let z = Combine.binop ( +. ) (gauss ~n:50 m s) (gauss ~n:50 0.0 1.0) in
      Float.abs (Pdf.total_mass z -. 1.0) < 1e-9)

(* ---------------- Arena kernels: bit-identity certification ------------- *)

(* sum/binop/product are inlined zero-allocation rewrites of
   [to_pdf (binop_into f px py)]; with an [?arena] they additionally
   recycle the accumulation grid.  Both claims are exact: every output
   bit must match the reference, including on a reused arena buffer. *)
let arena_case_gen =
  QCheck.(
    pair
      (quad (float_range (-4.0) 4.0) (float_range 0.2 2.0)
         (float_range (-4.0) 4.0) (float_range 0.2 2.0))
      (triple (int_range 8 100) (int_range 8 100) bool))

let prop_fast_matches_reference name
    (fast : ?n:int -> ?arena:Arena.t -> Pdf.t -> Pdf.t -> Pdf.t) f =
  qcheck ~count:60 (name ^ " == binop_into reference, bitwise") arena_case_gen
    (fun ((m1, s1, m2, s2), (nx, ny, use_n)) ->
      let px = gauss ~n:nx m1 s1 and py = gauss ~n:ny m2 s2 in
      let n = if use_n then Some 80 else None in
      let reference = Combine.to_pdf (Combine.binop_into ?n f px py) in
      let arena = Arena.create () in
      let plain = fast ?n ?arena:None px py in
      let first = fast ?n ~arena px py in
      (* second call recycles the released grid buffer *)
      let reused = fast ?n ~arena px py in
      pdf_bits_equal reference plain
      && pdf_bits_equal reference first
      && pdf_bits_equal reference reused)

let prop_sum_bits =
  prop_fast_matches_reference "sum"
    (fun ?n ?arena px py -> Combine.sum ?n ?arena px py)
    ( +. )

let prop_product_bits =
  prop_fast_matches_reference "product"
    (fun ?n ?arena px py -> Combine.product ?n ?arena px py)
    ( *. )

let prop_binop_bits =
  let f a b = Float.max a b +. (0.5 *. Float.min a b) in
  prop_fast_matches_reference "binop"
    (fun ?n ?arena px py -> Combine.binop ?n ?arena f px py)
    f

let test_arena_shared_across_kernels () =
  (* One arena serving different kernels and grid sizes in sequence —
     the size-classed free lists must hand each call a clean buffer. *)
  let arena = Arena.create () in
  let x = gauss ~n:50 1.0 0.4 and y = gauss ~n:35 2.0 0.7 in
  let check name reference got = check_true name (pdf_bits_equal reference got) in
  check "sum after product"
    (Combine.sum x y)
    (let _ = Combine.product ~arena x y in
     Combine.sum ~arena x y);
  check "n override after defaults"
    (Combine.sum ~n:64 x y)
    (Combine.sum ~n:64 ~arena x y)

let suite =
  ( "combine",
    [ case "accumulator deposits keep the mean" test_accumulator_basic;
      case "accumulator clamps outside mass" test_accumulator_clamps;
      case "accumulator rejects empty" test_accumulator_empty;
      case "sum of gaussians" test_sum_gaussians;
      case "sum_list" test_sum_list;
      case "product of independents" test_product_means_multiply;
      case "map linear" test_map_linear;
      case "map nonlinear captures Jensen gap" test_map_nonlinear_jensen;
      case "push3 sum" test_push3;
      case "push3 product" test_push3_product;
      case "binop with point mass" test_binop_with_point_mass;
      case "mixture" test_mixture;
      case "mixture weights" test_mixture_weights;
      prop_sum_mean_additive;
      prop_sum_variance_additive;
      prop_total_mass_conserved;
      prop_sum_bits;
      prop_product_bits;
      prop_binop_bits;
      case "one arena serves mixed kernels" test_arena_shared_across_kernels ] )
