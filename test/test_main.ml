let () =
  Alcotest.run "ssta"
    [ Test_erf.suite;
      Test_rng.suite;
      Test_pdf.suite;
      Test_dist.suite;
      Test_combine.suite;
      Test_stats.suite;
      Test_mc.suite;
      Test_tech.suite;
      Test_netlist.suite;
      Test_formats.suite;
      Test_generators.suite;
      Test_iscas85.suite;
      Test_timing.suite;
      Test_correlation.suite;
      Test_core.suite;
      Test_baselines.suite;
      Test_integration.suite;
      Test_extensions.suite;
      Test_features.suite;
      Test_advanced.suite;
      Test_dual_vt.suite;
      Test_sequential.suite;
      Test_lint.suite;
      Test_check.suite;
      Test_affine.suite;
      Test_block.suite;
      Test_runtime.suite;
      Test_inter_cache.suite;
      Test_parallel.suite;
      Test_faults.suite;
      Test_server.suite;
      Test_impact.suite ]
