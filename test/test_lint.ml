(* Lint subsystem: clean bills of health for every built-in and
   generated circuit, and one firing fixture per rule family. *)

module Netlist = Ssta_circuit.Netlist
module B = Netlist.Builder
module Generators = Ssta_circuit.Generators
module Iscas85 = Ssta_circuit.Iscas85
module Placement = Ssta_circuit.Placement
module Spef = Ssta_circuit.Spef
module Def_format = Ssta_circuit.Def_format
module Gate = Ssta_tech.Gate
module Pdf = Ssta_prob.Pdf
module Sta = Ssta_timing.Sta
module Config = Ssta_core.Config
module Path_analysis = Ssta_core.Path_analysis
module D = Ssta_lint.Diagnostic
module Lint = Ssta_lint.Engine
module Rules_netlist = Ssta_lint.Rules_netlist
module Rules_timing = Ssta_lint.Rules_timing
module Rules_config = Ssta_lint.Rules_config
open Helpers

let fires ?severity rule ds =
  List.exists
    (fun (d : D.t) ->
      String.equal d.D.rule rule
      && match severity with None -> true | Some s -> d.D.severity = s)
    ds

let assert_fires ?severity rule ds =
  if not (fires ?severity rule ds) then
    Alcotest.failf "expected rule %s to fire; got: %s" rule
      (String.concat "; "
         (List.map (fun (d : D.t) -> Fmt.str "%a" D.pp d) ds))

let assert_clean name ds =
  match List.filter (fun (d : D.t) -> d.D.severity = D.Error) ds with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s: expected no lint errors, got %s" name
        (String.concat "; "
           (List.map (fun (d : D.t) -> Fmt.str "%a" D.pp d) errs))

let assert_rejects ds =
  check_true "defective input must exit nonzero" (Lint.exit_code ds <> 0)

(* --- clean inputs ---------------------------------------------------- *)

let test_builtins_clean () =
  List.iter
    (fun (spec : Iscas85.spec) ->
      let circuit, placement = Iscas85.build_placed spec in
      let ds =
        Lint.run (Lint.input ~placement ~config:fast_config circuit)
      in
      assert_clean spec.Iscas85.name ds;
      check_int (spec.Iscas85.name ^ " exit code") 0 (Lint.exit_code ds))
    Iscas85.all

let test_generators_clean () =
  let circuits =
    [ Generators.chain ~name:"chain" ~length:5 ();
      Generators.and_or_tree ~name:"tree" ~width:16 ();
      Generators.ripple_carry_adder ~name:"rca" ~bits:8 ();
      Generators.array_multiplier ~name:"mul" ~bits:4 ();
      Generators.ecc ~name:"ecc" ~data_bits:32 ~check_bits:8 ();
      Generators.expand_xor
        (Generators.ecc ~name:"ecc_x" ~data_bits:32 ~check_bits:8 ());
      Generators.decoder ~name:"dec" ~bits:4 ();
      Generators.mux_tree ~name:"mux" ~select_bits:3 ();
      Generators.parity_chain ~name:"par" ~width:16 ();
      Generators.comparator ~name:"cmp" ~bits:8 ();
      small_random () ]
  in
  List.iter
    (fun c ->
      let ds = Lint.run (Lint.input ~config:fast_config c) in
      assert_clean c.Netlist.name ds)
    circuits

let test_generated_files_clean () =
  (* The writer/parser round trip must stay lint-clean too. *)
  let spec = Option.get (Iscas85.by_name "c432") in
  let circuit, placement = Iscas85.build_placed spec in
  let spef = Spef.of_placement ~design:"c432" circuit placement in
  let def = Def_format.of_placement ~design:"c432" circuit placement in
  let ds =
    Lint.run (Lint.input ~placement ~spef ~def ~config:fast_config circuit)
  in
  assert_clean "c432 + SPEF + DEF" ds

(* --- netlist rules --------------------------------------------------- *)

let defective_unreachable () =
  (* g1 -> g2 where g2 dangles: g2 is a dangling error, g1 is live-looking
     but unreachable from the single primary output g3. *)
  let b = B.create "unreachable" in
  let a = B.add_input b "a" in
  let bb = B.add_input b "b" in
  let g1 = B.add_gate b (Gate.Nand 2) [ a; bb ] in
  let _g2 = B.add_gate b Gate.Inv [ g1 ] in
  let g3 = B.add_gate b Gate.Inv [ a ] in
  B.mark_output b g3;
  B.finish b

let test_unreachable () =
  let ds = Lint.run (Lint.input ~deep:false (defective_unreachable ())) in
  assert_fires ~severity:D.Error "net-unreachable" ds;
  assert_fires ~severity:D.Error "net-dangling" ds;
  assert_rejects ds

let test_dangling_input () =
  let b = B.create "dangling_in" in
  let a = B.add_input b "a" in
  let _unused = B.add_input b "unused" in
  let g = B.add_gate b Gate.Inv [ a ] in
  B.mark_output b g;
  let ds = Lint.run (Lint.input ~deep:false (B.finish b)) in
  assert_fires ~severity:D.Warning "net-dangling" ds;
  check_int "unused input is only a warning" 0 (Lint.exit_code ds)

let test_duplicate_and_constant () =
  let b = B.create "dup" in
  let a = B.add_input b "a" in
  let bb = B.add_input b "b" in
  let g1 = B.add_gate b (Gate.Nand 2) [ a; bb ] in
  let g2 = B.add_gate b (Gate.Nand 2) [ a; bb ] in
  let g3 = B.add_gate b Gate.Xor2 [ a; a ] in
  List.iter (B.mark_output b) [ g1; g2; g3 ];
  let ds = Lint.run (Lint.input ~deep:false (B.finish b)) in
  assert_fires ~severity:D.Info "net-duplicate-gate" ds;
  assert_fires ~severity:D.Warning "net-constant-gate" ds

let test_fanout_and_depth_outliers () =
  let b = B.create "fan" in
  let a = B.add_input b "a" in
  for _ = 1 to 4 do
    B.mark_output b (B.add_gate b Gate.Inv [ a ])
  done;
  let ds = Rules_netlist.check ~fanout_limit:3 (B.finish b) in
  assert_fires ~severity:D.Info "net-fanout-outlier" ds;
  let chain = Generators.chain ~name:"deep" ~length:40 () in
  assert_fires ~severity:D.Info "net-depth-outlier"
    (Rules_netlist.check chain)

(* --- placement rules ------------------------------------------------- *)

let tiny () = tiny_chain ()

let test_placement_outside_die () =
  let c = tiny () in
  let n = Netlist.num_nodes c in
  let coords = Array.init n (fun i -> (float_of_int i *. 10.0, 10.0)) in
  coords.(n - 1) <- (1000.0, 10.0);
  let placement =
    { Placement.die_width = 100.0; die_height = 50.0; coords }
  in
  let ds = Lint.run (Lint.input ~placement ~deep:false c) in
  assert_fires ~severity:D.Error "place-outside-die" ds;
  assert_rejects ds

let test_placement_overlap_and_mismatch () =
  let c = tiny () in
  let n = Netlist.num_nodes c in
  let coords = Array.make n (5.0, 5.0) in
  let placement =
    { Placement.die_width = 100.0; die_height = 100.0; coords }
  in
  let ds = Lint.run (Lint.input ~placement ~deep:false c) in
  assert_fires ~severity:D.Warning "place-overlap" ds;
  assert_fires ~severity:D.Info "place-empty-partition" ds;
  let short =
    { Placement.die_width = 100.0; die_height = 100.0;
      coords = Array.make (n - 1) (5.0, 5.0) }
  in
  let ds = Lint.run (Lint.input ~placement:short ~deep:false c) in
  assert_fires ~severity:D.Error "place-count-mismatch" ds

let test_placement_degenerate_die () =
  let c = tiny () in
  let placement =
    { Placement.die_width = 0.0; die_height = 100.0;
      coords = Array.make (Netlist.num_nodes c) (0.0, 0.0) }
  in
  let ds = Lint.run (Lint.input ~placement ~deep:false c) in
  assert_fires ~severity:D.Error "place-degenerate-die" ds

(* --- SPEF / DEF cross-checks ----------------------------------------- *)

let test_spef_orphan () =
  let c = tiny () in
  let spef = { Spef.design = "tiny"; caps = [ ("no_such_net", 1e-15) ] } in
  let ds = Lint.run (Lint.input ~spef ~deep:false c) in
  assert_fires ~severity:D.Error "spef-orphan-net" ds;
  assert_fires ~severity:D.Error "spef-low-coverage" ds;
  assert_rejects ds

let test_spef_bad_caps () =
  let c = tiny () in
  let gate_net id = Netlist.node_name c id in
  let caps =
    [ (gate_net 1, -1e-15);  (* negative *)
      (gate_net 2, 1e-9);  (* 1000 pF: absurd *)
      (gate_net 3, 1e-15); (gate_net 3, 2e-15);  (* duplicate *)
      (gate_net 4, 1e-15); (gate_net 5, 1e-15) ]
  in
  let ds = Lint.run (Lint.input ~spef:{ Spef.design = "tiny"; caps } ~deep:false c) in
  assert_fires ~severity:D.Error "spef-negative-cap" ds;
  assert_fires ~severity:D.Warning "spef-cap-outlier" ds;
  assert_fires ~severity:D.Warning "spef-duplicate-net" ds

let test_def_cross_checks () =
  let c = tiny () in
  let comp name x y =
    { Def_format.comp_name = name; master = "INV"; x; y }
  in
  let def =
    { Def_format.design = "tiny"; units_per_micron = 1000;
      die_width = 100.0; die_height = 100.0;
      components =
        [ comp "no_such_gate" 10.0 10.0; comp (Netlist.node_name c 1) 200.0 10.0 ] }
  in
  let ds = Lint.run (Lint.input ~def ~deep:false c) in
  assert_fires ~severity:D.Warning "def-unknown-component" ds;
  assert_fires ~severity:D.Error "def-outside-die" ds;
  assert_fires ~severity:D.Error "def-low-coverage" ds;
  assert_rejects ds

(* --- config / budget rules ------------------------------------------- *)

let test_config_invalid_blocks_deep () =
  let config = { Config.default with Config.quality_intra = 1 } in
  let ds = Lint.run (Lint.input ~config (tiny ())) in
  assert_fires ~severity:D.Error "config-invalid" ds;
  check_true "deep analysis skipped on config errors"
    (not (fires "lint-internal" ds));
  assert_rejects ds

let test_config_quality_and_confidence () =
  let config =
    Config.with_confidence
      (Config.with_quality Config.default ~intra:16 ~inter:40)
      2.0
  in
  let ds = Lint.run (Lint.input ~config ~deep:false (tiny ())) in
  assert_fires ~severity:D.Warning "config-quality" ds;
  assert_fires ~severity:D.Warning "config-confidence" ds;
  check_int "warnings only" 0 (Lint.exit_code ds)

let test_config_jobs_oversubscription () =
  (* Direct rule check with a pinned host core count. *)
  let ds = Rules_config.check ~jobs:4 ~host_cores:1 Config.default in
  assert_fires ~severity:D.Warning "config-jobs" ds;
  let at jobs = Rules_config.check ~jobs ~host_cores:4 Config.default in
  check_true "jobs within cores is clean" (not (fires "config-jobs" (at 4)));
  check_true "jobs 1 never warns" (not (fires "config-jobs" (at 1)));
  (* Engine plumbing: the input record carries the planned worker count
     and cross-checks it against the actual host. *)
  let ds = Lint.run (Lint.input ~deep:false ~jobs:1_000 (tiny ())) in
  assert_fires ~severity:D.Warning "config-jobs" ds;
  check_int "warning only" 0 (Lint.exit_code ds)

let test_budget_shares () =
  let ds =
    Lint.run
      (Lint.input ~deep:false
         ~budget_weights:[| 0.5; 0.2; 0.1; 0.1; 0.05 |]
         (tiny ()))
  in
  assert_fires ~severity:D.Error "budget-shares" ds;
  assert_rejects ds;
  (* wrong layer count *)
  let ds = Rules_config.check_budget_weights ~layers:5 [| 0.5; 0.5 |] in
  assert_fires ~severity:D.Error "budget-shares" ds;
  (* all variance on the inter layer *)
  let ds =
    Rules_config.check_budget_weights ~layers:5 [| 1.0; 0.0; 0.0; 0.0; 0.0 |]
  in
  assert_fires ~severity:D.Warning "budget-degenerate" ds

(* --- timing graph / PDF sanity --------------------------------------- *)

let test_pdf_nan_density () =
  (* inf densities normalize to inf/inf = NaN cells — exactly the
     poisoning the rule exists for. *)
  let p = Pdf.of_fun ~lo:0.0 ~hi:1.0 ~n:8 (fun _ -> Float.infinity) in
  let ds = Rules_timing.check_pdf ~label:"fixture" p in
  assert_fires ~severity:D.Error "pdf-invalid-density" ds;
  assert_rejects ds

let test_pdf_healthy () =
  let p = Pdf.of_fun ~lo:0.0 ~hi:1.0 ~n:64 (fun _ -> 1.0) in
  check_int "no diagnostics on a healthy pdf" 0
    (List.length (Rules_timing.check_pdf ~label:"uniform" p))

let test_zero_intra_sigma () =
  let c = tiny () in
  let sta = Sta.analyze c in
  let ctx =
    Path_analysis.context fast_config sta.Sta.graph (Placement.place c)
  in
  let a = Path_analysis.analyze ctx sta.Sta.critical_path in
  check_int "healthy path analysis is clean" 0
    (List.length (Rules_timing.check_path_analysis a));
  let broken = { a with Path_analysis.intra_sigma = 0.0 } in
  assert_fires ~severity:D.Warning "timing-zero-intra"
    (Rules_timing.check_path_analysis broken)

(* --- engine plumbing ------------------------------------------------- *)

let test_severity_filter_and_summary () =
  let ds = Lint.run (Lint.input ~deep:false (defective_unreachable ())) in
  let s = Lint.summarize ds in
  check_true "summary counts errors" (s.Lint.errors > 0);
  let errors_only = Lint.filter ~min_severity:D.Error ds in
  check_true "filtered list keeps only errors"
    (List.for_all (fun (d : D.t) -> d.D.severity = D.Error) errors_only);
  check_int "filter preserves error count" s.Lint.errors
    (List.length errors_only)

let test_rule_catalogue () =
  let ids = List.map fst Lint.all_rules in
  check_true "at least 10 distinct rules" (List.length ids >= 10);
  let sorted = List.sort_uniq String.compare ids in
  check_int "rule ids are unique" (List.length ids) (List.length sorted)

let test_fanout_caching () =
  let c = small_adder () in
  check_true "fanouts memoized" (Netlist.fanouts c == Netlist.fanouts c);
  check_true "fanout_counts memoized"
    (Netlist.fanout_counts c == Netlist.fanout_counts c)

let suite =
  ( "lint",
    [ slow_case "built-in circuits lint clean" test_builtins_clean;
      case "generator circuits lint clean" test_generators_clean;
      case "SPEF/DEF round trip lints clean" test_generated_files_clean;
      case "unreachable gate rejected" test_unreachable;
      case "unused input warns" test_dangling_input;
      case "duplicate and constant gates flagged" test_duplicate_and_constant;
      case "fanout and depth outliers" test_fanout_and_depth_outliers;
      case "placement outside die rejected" test_placement_outside_die;
      case "placement overlap and mismatch" test_placement_overlap_and_mismatch;
      case "degenerate die rejected" test_placement_degenerate_die;
      case "SPEF orphan rejected" test_spef_orphan;
      case "SPEF bad capacitances" test_spef_bad_caps;
      case "DEF cross-checks" test_def_cross_checks;
      case "invalid config rejected, deep skipped" test_config_invalid_blocks_deep;
      case "quality and confidence warnings" test_config_quality_and_confidence;
      case "oversubscribed worker count warns" test_config_jobs_oversubscription;
      case "bad budget shares rejected" test_budget_shares;
      case "NaN pdf density rejected" test_pdf_nan_density;
      case "healthy pdf is clean" test_pdf_healthy;
      case "zero intra sigma flagged" test_zero_intra_sigma;
      case "severity filter and summary" test_severity_filter_and_summary;
      case "rule catalogue" test_rule_catalogue;
      case "netlist fanout caching" test_fanout_caching ] )
