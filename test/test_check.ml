(* Static verification subsystem: the interval domain, the monotone
   dataflow solver, arrival-time bounds against Monte-Carlo samples, the
   PDF sanitizer, the whole-program checker (clean runs and seeded
   violations), reporter determinism and the check-id registry. *)

module Netlist = Ssta_circuit.Netlist
module Generators = Ssta_circuit.Generators
module Iscas85 = Ssta_circuit.Iscas85
module Placement = Ssta_circuit.Placement
module Params = Ssta_tech.Params
module Elmore = Ssta_tech.Elmore
module Gate = Ssta_tech.Gate
module Pdf = Ssta_prob.Pdf
module Rng = Ssta_prob.Rng
module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Config = Ssta_core.Config
module Monte_carlo = Ssta_core.Monte_carlo
module D = Ssta_lint.Diagnostic
module Lint = Ssta_lint.Engine
module Lint_reporter = Ssta_lint.Reporter
module Interval = Ssta_check.Interval
module Dataflow = Ssta_check.Dataflow
module Arrival_bounds = Ssta_check.Arrival_bounds
module Pdfsan = Ssta_check.Pdfsan
module Checker = Ssta_check.Checker
open Helpers

let fires rule ds =
  List.exists (fun (d : D.t) -> String.equal d.D.rule rule) ds

let errors_of ds = List.filter (fun (d : D.t) -> d.D.severity = D.Error) ds

let assert_no_errors label ds =
  match errors_of ds with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s: expected no errors, got %s" label
        (String.concat "; "
           (List.map (fun (d : D.t) -> Fmt.str "%a" D.pp d) errs))

(* --- interval domain ------------------------------------------------- *)

let test_interval_basics () =
  check_raises_invalid "inverted interval" (fun () ->
      Interval.make ~lo:1.0 ~hi:0.0);
  check_raises_invalid "nan bound" (fun () ->
      Interval.make ~lo:Float.nan ~hi:0.0);
  let a = Interval.make ~lo:1.0 ~hi:3.0 in
  let b = Interval.make ~lo:2.0 ~hi:5.0 in
  check_true "hull" (Interval.equal (Interval.hull a b)
                       (Interval.make ~lo:1.0 ~hi:5.0));
  check_true "sup" (Interval.equal (Interval.sup a b)
                      (Interval.make ~lo:2.0 ~hi:5.0));
  check_true "add" (Interval.equal (Interval.add a b)
                      (Interval.make ~lo:3.0 ~hi:8.0));
  check_true "bottom absorbs add"
    (Interval.is_bottom (Interval.add a Interval.bottom));
  check_true "bottom is sup identity"
    (Interval.equal (Interval.sup Interval.bottom a) a);
  check_true "bottom is hull identity"
    (Interval.equal (Interval.hull Interval.bottom a) a);
  check_true "contains with slack"
    (Interval.contains ~slack:0.5 a 3.4
     && not (Interval.contains a 3.4)
     && not (Interval.contains Interval.bottom 0.0));
  check_true "subset"
    (Interval.subset a ~of_:(Interval.make ~lo:0.0 ~hi:4.0)
    && Interval.subset Interval.bottom ~of_:a
    && not (Interval.subset b ~of_:a))

let test_interval_widen () =
  let prev = Interval.make ~lo:0.0 ~hi:1.0 in
  let grown = Interval.make ~lo:(-1.0) ~hi:2.0 in
  (match Interval.widen ~prev ~next:grown with
  | Interval.Range { lo; hi } ->
      check_true "widen escapes both ways"
        (lo = Float.neg_infinity && hi = Float.infinity)
  | Interval.Bottom -> Alcotest.fail "widen returned bottom");
  (* A stable bound must not be widened away. *)
  (match Interval.widen ~prev ~next:(Interval.make ~lo:0.0 ~hi:2.0) with
  | Interval.Range { lo; hi } ->
      check_true "stable lo kept" (lo = 0.0 && hi = Float.infinity)
  | Interval.Bottom -> Alcotest.fail "widen returned bottom");
  (match Interval.widen_sup ~prev ~next:(Interval.make ~lo:0.5 ~hi:2.0) with
  | Interval.Range { hi; _ } ->
      check_true "widen_sup escapes hi" (hi = Float.infinity)
  | Interval.Bottom -> Alcotest.fail "widen_sup returned bottom")

(* --- dataflow solver ------------------------------------------------- *)

module Hull_domain = struct
  type t = Interval.t

  let bottom = Interval.bottom
  let equal = Interval.equal
  let join = Interval.hull
  let widen = Interval.widen
  let pp = Interval.pp
end

module Solver = Dataflow.Make (Hull_domain)

let depth_transfer c ~node v =
  if Netlist.is_input c node then v
  else Interval.add v (Interval.singleton 1.0)

let test_dataflow_forward_chain () =
  let c = Generators.chain ~name:"chain" ~length:6 () in
  let init id =
    if Netlist.is_input c id then Interval.zero else Interval.bottom
  in
  let r = Solver.fixpoint c ~init ~transfer:(depth_transfer c) in
  check_true "converged" r.Solver.stats.Solver.converged;
  (* Every node's value is its gate depth, exactly. *)
  Array.iter
    (fun o ->
      let depth = ref 0 in
      for id = 0 to Netlist.num_nodes c - 1 do
        if not (Netlist.is_input c id) then incr depth
      done;
      match r.Solver.values.(o) with
      | Interval.Range { lo; hi } ->
          check_close "chain output depth" (float_of_int !depth) lo;
          check_close "chain output depth hi" (float_of_int !depth) hi
      | Interval.Bottom -> Alcotest.fail "output unreached")
    c.Netlist.outputs

let test_dataflow_backward () =
  let c = Generators.chain ~name:"chain" ~length:4 () in
  let init id =
    if Array.exists (fun o -> o = id) c.Netlist.outputs then Interval.zero
    else Interval.bottom
  in
  let r =
    Solver.fixpoint ~direction:Dataflow.Backward c ~init
      ~transfer:(depth_transfer c)
  in
  check_true "backward converged" r.Solver.stats.Solver.converged;
  (* The input sees the whole chain of gates below it. *)
  let gates = ref 0 in
  for id = 0 to Netlist.num_nodes c - 1 do
    if not (Netlist.is_input c id) then incr gates
  done;
  match r.Solver.values.(0) with
  | Interval.Range { hi; _ } ->
      check_close "input suffix depth" (float_of_int !gates) hi
  | Interval.Bottom -> Alcotest.fail "input unreached"

(* Node ids are topological and the worklist is seeded in id order, so a
   monotone transfer converges in exactly one pass — every node popped
   once, no re-visits.  That makes the per-node update cap unreachable
   through netlist cascades; it is a backstop for degenerate
   configurations, exercised below with a zero cap. *)
let test_dataflow_one_pass () =
  let c = small_adder () in
  let init id =
    if Netlist.is_input c id then Interval.zero else Interval.bottom
  in
  let r = Solver.fixpoint c ~init ~transfer:(depth_transfer c) in
  check_true "converged" r.Solver.stats.Solver.converged;
  check_int "one pop per node" (Netlist.num_nodes c)
    r.Solver.stats.Solver.visits;
  check_true "no widening needed" (r.Solver.stats.Solver.widenings = 0)

let test_dataflow_widening_applied () =
  (* With [widen_after:0] every committed update routes through the
     widening operator; the solve must still converge to sound (possibly
     infinite) bounds. *)
  let c = Generators.chain ~name:"chain" ~length:12 () in
  let init id =
    if Netlist.is_input c id then Interval.zero else Interval.bottom
  in
  let r =
    Solver.fixpoint ~widen_after:0 c ~init ~transfer:(depth_transfer c)
  in
  check_true "widening converges" r.Solver.stats.Solver.converged;
  check_true "widening was exercised" (r.Solver.stats.Solver.widenings > 0);
  Array.iter
    (fun o ->
      match r.Solver.values.(o) with
      | Interval.Range _ -> ()
      | Interval.Bottom -> Alcotest.fail "output unreached under widening")
    c.Netlist.outputs

let test_dataflow_cap_backstop () =
  let c = Generators.chain ~name:"chain" ~length:12 () in
  let init id =
    if Netlist.is_input c id then Interval.zero else Interval.bottom
  in
  let r =
    Solver.fixpoint ~widen_after:1_000 ~max_updates_per_node:0 c ~init
      ~transfer:(depth_transfer c)
  in
  check_true "cap reports non-convergence"
    (not r.Solver.stats.Solver.converged)

(* --- Elmore corner bounds -------------------------------------------- *)

let some_gate = Gate.electrical (Gate.Nand 2)

let test_delay_bounds_basic () =
  let lo, hi = Elmore.delay_bounds ~bound:3.0 some_gate in
  let nom = Elmore.nominal_delay some_gate in
  check_true "bounds bracket nominal" (lo < nom && nom < hi);
  let lo0, hi0 = Elmore.delay_bounds ~bound:0.0 some_gate in
  check_close "zero box collapses lo" nom lo0;
  check_close "zero box collapses hi" nom hi0;
  (* A box wide enough to push geometry through zero keeps a sound
     (zero) lower bound instead of failing. *)
  let lo_wide, hi_wide = Elmore.delay_bounds ~bound:12.0 some_gate in
  check_true "wide box lower bound is 0" (lo_wide = 0.0);
  check_true "wide box upper bound grows" (hi_wide > hi);
  check_raises_invalid "negative bound" (fun () ->
      Elmore.delay_bounds ~bound:(-1.0) some_gate)

let test_delay_bounds_contain_samples =
  qcheck ~count:200 "random parameter points stay inside delay_bounds"
    QCheck.(
      quad (float_range (-1.0) 1.0) (float_range (-1.0) 1.0)
        (float_range (-1.0) 1.0) (float_range (-1.0) 1.0))
    (fun (z1, z2, z3, z4) ->
      let bound = 3.0 in
      let lo, hi = Elmore.delay_bounds ~bound some_gate in
      let dev rv z = z *. bound *. Params.sigma rv in
      let p =
        { Params.tox = Params.nominal.Params.tox +. dev Params.Tox z1;
          leff = Params.nominal.Params.leff +. dev Params.Leff z2;
          vdd = Params.nominal.Params.vdd +. dev Params.Vdd z3;
          vtn = Params.nominal.Params.vtn +. dev Params.Vtn z4;
          vtp = Params.nominal.Params.vtp +. dev Params.Vtp z4 }
      in
      let d = Elmore.gate_delay some_gate p in
      let slack = 1e-12 *. Float.abs d in
      d >= lo -. slack && d <= hi +. slack)

(* --- arrival bounds vs Monte-Carlo ----------------------------------- *)

let bounds_fixture =
  lazy
    (let c = small_adder () in
     let placement = Placement.place c in
     let sta = Sta.analyze c in
     let b =
       match Arrival_bounds.compute fast_config sta.Sta.graph with
       | Ok b -> b
       | Error e -> Alcotest.failf "bounds not computable: %s" e
     in
     (c, placement, sta, b))

let test_arrival_bounds_structure () =
  let _, _, sta, b = Lazy.force bounds_fixture in
  (* Nominal labels inside the arrival intervals, and the duality
     arrival + suffix <= circuit. *)
  let hi = function
    | Interval.Range { hi; _ } -> hi
    | Interval.Bottom -> Alcotest.fail "bottom interval"
  in
  let circuit_hi = hi b.Arrival_bounds.circuit in
  Array.iteri
    (fun id label ->
      check_true "label inside arrival"
        (Interval.contains ~slack:(1e-9 *. Float.abs label)
           b.Arrival_bounds.arrival.(id) label);
      let slack = 1e-9 *. circuit_hi in
      check_true "duality arrival + suffix <= circuit"
        (hi b.Arrival_bounds.arrival.(id)
         +. hi b.Arrival_bounds.suffix.(id)
         <= circuit_hi +. slack))
    sta.Sta.labels;
  check_true "critical delay inside circuit interval"
    (Interval.contains
       ~slack:(1e-9 *. sta.Sta.critical_delay)
       b.Arrival_bounds.circuit sta.Sta.critical_delay)

let test_mc_samples_inside_bounds =
  qcheck ~count:20 "MC path-delay samples fall inside static intervals"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let _, placement, sta, b = Lazy.force bounds_fixture in
      let s = Monte_carlo.sampler fast_config sta.Sta.graph placement in
      let rng = Rng.create seed in
      let path = sta.Sta.critical_path in
      let iv = Arrival_bounds.path_total b path in
      let samples = Monte_carlo.path_delay_samples s ~n:50 rng path in
      let slack = 1e-9 *. Interval.magnitude iv in
      Array.for_all (fun d -> Interval.contains ~slack iv d) samples)

let test_mc_circuit_inside_bounds =
  qcheck ~count:10 "MC circuit-delay samples fall inside circuit interval"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let _, placement, sta, b = Lazy.force bounds_fixture in
      let s = Monte_carlo.sampler fast_config sta.Sta.graph placement in
      let rng = Rng.create seed in
      let samples = Monte_carlo.circuit_delay_samples s ~n:50 rng in
      let iv = b.Arrival_bounds.circuit in
      let slack = 1e-9 *. Interval.magnitude iv in
      Array.for_all (fun d -> Interval.contains ~slack iv d) samples)

(* --- PDF sanitizer --------------------------------------------------- *)

let unit_gaussian_pdf () =
  Pdf.of_fun ~lo:(-4.0) ~hi:4.0 ~n:128 (fun x -> exp (-0.5 *. x *. x))

let test_pdfsan_clean_ops () =
  let (), session =
    Pdfsan.with_session (fun () ->
        let p = unit_gaussian_pdf () in
        let q = Pdf.affine p ~mul:2.0 ~add:1.0 in
        ignore (Ssta_prob.Combine.sum p q);
        ignore (Ssta_prob.Combine.mixture [ (0.5, p); (0.5, q) ]))
  in
  check_true "ops audited" (Pdfsan.ops session >= 3);
  check_int "no findings on clean ops" 0
    (List.length (Pdfsan.findings session))

let test_pdfsan_catches_corruption () =
  let bad = Pdf.of_fun ~lo:0.0 ~hi:1.0 ~n:8 (fun _ -> infinity) in
  let session = Pdfsan.create () in
  Pdfsan.audit session
    { Pdf.trace_op = "test.corrupt";
      trace_expected = Some (0.0, 1.0);
      trace_mass_in = Some 1.0;
      trace_clamped = 0.0;
      trace_output = bad };
  check_true "density violation found"
    (fires "check-pdfsan-density" (Pdfsan.findings session))

let test_pdfsan_catches_mass_and_support () =
  let p = unit_gaussian_pdf () in
  let session = Pdfsan.create () in
  Pdfsan.audit session
    { Pdf.trace_op = "test.mass-drift";
      trace_expected = None;
      trace_mass_in = Some 0.5;
      trace_clamped = 0.0;
      trace_output = p };
  check_true "mass drift found"
    (fires "check-pdfsan-mass" (Pdfsan.findings session));
  let session2 = Pdfsan.create () in
  Pdfsan.audit session2
    { Pdf.trace_op = "test.support-escape";
      trace_expected = Some (-1.0, 1.0);
      trace_mass_in = None;
      trace_clamped = 0.0;
      trace_output = p (* support [-4, 4] escapes [-1, 1] *) };
  check_true "support escape found"
    (fires "check-pdfsan-support" (Pdfsan.findings session2));
  let session3 = Pdfsan.create () in
  Pdfsan.audit session3
    { Pdf.trace_op = "test.clamped";
      trace_expected = None;
      trace_mass_in = None;
      trace_clamped = 0.01;
      trace_output = p };
  check_true "clamped mass found"
    (fires "check-pdfsan-clamped" (Pdfsan.findings session3))

let test_pdfsan_uninstall_restores_silence () =
  let (), session =
    Pdfsan.with_session (fun () -> ignore (unit_gaussian_pdf ()))
  in
  let before = Pdfsan.ops session in
  ignore (Pdf.affine (unit_gaussian_pdf ()) ~mul:1.0 ~add:0.0);
  check_int "no audits after uninstall" before (Pdfsan.ops session);
  check_true "hook removed" (not (Pdf.trace_active ()))

(* --- whole-program checker ------------------------------------------- *)

let check_c432 ?inject () =
  let c, placement =
    Iscas85.build_placed (Option.get (Iscas85.by_name "c432"))
  in
  Checker.run
    (Checker.input ~config:fast_config ~placement ~path_limit:8 ?inject c)

let test_checker_clean_run () =
  let r = check_c432 () in
  assert_no_errors "c432" r.Checker.diagnostics;
  check_int "clean exit code" 0 (Lint.exit_code r.Checker.diagnostics);
  check_true "nodes certified" (r.Checker.nodes_certified > 0);
  check_true "paths certified" (r.Checker.paths_certified > 0);
  check_true "ops audited" (r.Checker.ops_audited > 0)

let test_checker_injections () =
  List.iter
    (fun (inject, rule) ->
      let r = check_c432 ~inject () in
      let ds = r.Checker.diagnostics in
      if not (fires rule ds) then
        Alcotest.failf "expected %s to fire; got: %s" rule
          (String.concat "; "
             (List.map (fun (d : D.t) -> Fmt.str "%a" D.pp d) ds));
      check_true "injection exits nonzero" (Lint.exit_code ds <> 0))
    [ (Checker.Bad_budget, "check-var-budget");
      (Checker.Bad_placement, "check-place-bounds");
      (Checker.Corrupt_pdf, "check-pdfsan-density") ]

let test_injection_ids_distinct () =
  let rules =
    List.map
      (fun inject ->
        let r = check_c432 ~inject () in
        match errors_of r.Checker.diagnostics with
        | d :: _ -> d.D.rule
        | [] -> Alcotest.fail "injection produced no error")
      [ Checker.Bad_budget; Checker.Bad_placement; Checker.Corrupt_pdf ]
  in
  check_int "three distinct diagnostic ids" 3
    (List.length (List.sort_uniq String.compare rules))

(* Satellite: the sanitizer stays silent and the verifier certifies all
   built-in benchmarks. *)
let test_builtins_certify_clean () =
  List.iter
    (fun (spec : Iscas85.spec) ->
      let c, placement = Iscas85.build_placed spec in
      let r =
        Checker.run
          (Checker.input ~config:fast_config ~placement ~path_limit:4 c)
      in
      assert_no_errors spec.Iscas85.name r.Checker.diagnostics;
      check_true
        (spec.Iscas85.name ^ ": pdfsan silent")
        (not
           (List.exists
              (fun (d : D.t) ->
                String.length d.D.rule >= 12
                && String.sub d.D.rule 0 12 = "check-pdfsan")
              r.Checker.diagnostics));
      check_true
        (spec.Iscas85.name ^ ": ops audited")
        (r.Checker.ops_audited > 0))
    Iscas85.all

(* --- reporter determinism (satellite) -------------------------------- *)

let scrambled_diags () =
  let mk rule severity location message =
    D.make ~rule ~severity ~location message
  in
  [ mk "zz-last" D.Info (D.File { path = "b.v"; line = 2; col = 0 }) "m1";
    mk "aa-first" D.Error (D.File { path = "b.v"; line = 10; col = 0 }) "m2";
    mk "mid-rule" D.Warning (D.File { path = "a.v"; line = 99; col = 3 }) "m3";
    mk "node-rule" D.Error (D.Node { id = 7; name = "g7" }) "m4";
    mk "pdf-rule" D.Info (D.Pdf "path#1") "m5";
    mk "aa-first" D.Error (D.File { path = "b.v"; line = 2; col = 0 }) "m6" ]

let render_text ds =
  Format.asprintf "%t" (fun fmt ->
      Lint_reporter.text ~circuit_name:"t" fmt ds)

let render_json ds =
  Format.asprintf "%t" (fun fmt ->
      Lint_reporter.json ~circuit_name:"t" fmt ds)

let render_sarif ds =
  Format.asprintf "%t" (fun fmt ->
      Lint_reporter.sarif ~tool:"t" ~rules:[ ("aa-first", "d") ]
        ~circuit_name:"t" fmt ds)

let test_reporters_deterministic () =
  let ds = scrambled_diags () in
  let rev = List.rev ds in
  check_true "text order-independent"
    (String.equal (render_text ds) (render_text rev));
  check_true "json order-independent"
    (String.equal (render_json ds) (render_json rev));
  check_true "sarif order-independent"
    (String.equal (render_sarif ds) (render_sarif rev));
  (* The presentation order itself: by location (path before line),
     then rule id. *)
  let sorted = List.sort D.presentation_compare (scrambled_diags ()) in
  let rules = List.map (fun (d : D.t) -> d.D.rule) sorted in
  Alcotest.(check (list string))
    "presentation order"
    [ "node-rule"; "pdf-rule"; "mid-rule"; "aa-first"; "zz-last"; "aa-first" ]
    rules

let test_sarif_shape () =
  let out = render_sarif (scrambled_diags ()) in
  let has needle =
    let nl = String.length needle and ol = String.length out in
    let rec go i = i + nl <= ol && (String.sub out i nl = needle || go (i + 1)) in
    go 0
  in
  check_true "sarif schema" (has "sarif-2.1.0.json");
  check_true "sarif version" (has "\"version\":\"2.1.0\"");
  check_true "sarif rule catalogue" (has "\"rules\":[{\"id\":\"aa-first\"");
  check_true "sarif physical location" (has "\"startLine\":2");
  check_true "sarif logical location" (has "logicalLocations");
  check_true "sarif levels" (has "\"level\":\"error\"" && has "\"level\":\"note\"")

(* --- registry (satellite): ids unique and stable --------------------- *)

let expected_check_ids =
  [ "check-affine-containment"; "check-affine-screen";
    "check-affine-variance"; "check-block-vs-path";
    "check-bound-arrival"; "check-bound-domain"; "check-bound-nominal";
    "check-bound-quantile"; "check-bound-support"; "check-health";
    "check-impact-equivalence"; "check-inter-cache-consistency";
    "check-internal"; "check-interrupted";
    "check-parallel-determinism"; "check-pdfsan-cdf";
    "check-pdfsan-clamped";
    "check-pdfsan-density"; "check-pdfsan-mass"; "check-pdfsan-support";
    "check-place-bounds"; "check-place-nesting"; "check-place-partition";
    "check-place-sibling"; "check-var-additivity"; "check-var-budget";
    "check-var-conservation"; "check-var-intra-pdf"; "check-var-key" ]

let test_check_registry () =
  let ids = List.map fst Checker.all_checks in
  Alcotest.(check (list string)) "check ids are stable" expected_check_ids ids;
  let combined = List.map fst Lint.all_rules @ ids in
  let uniq = List.sort_uniq String.compare combined in
  check_int "ids unique across lint and check" (List.length combined)
    (List.length uniq);
  List.iter
    (fun id ->
      check_true (id ^ " is namespaced")
        (String.length id > 6 && String.sub id 0 6 = "check-"))
    ids;
  List.iter
    (fun (_, doc) -> check_true "non-empty description" (doc <> ""))
    Checker.all_checks

let suite =
  ( "check",
    [ case "interval basics" test_interval_basics;
      case "interval widening" test_interval_widen;
      case "dataflow forward chain" test_dataflow_forward_chain;
      case "dataflow backward" test_dataflow_backward;
      case "dataflow one-pass on topological DAG" test_dataflow_one_pass;
      case "dataflow widening applied" test_dataflow_widening_applied;
      case "dataflow cap backstop" test_dataflow_cap_backstop;
      case "Elmore corner bounds" test_delay_bounds_basic;
      test_delay_bounds_contain_samples;
      case "arrival bounds structure and duality"
        test_arrival_bounds_structure;
      test_mc_samples_inside_bounds;
      test_mc_circuit_inside_bounds;
      case "pdfsan silent on clean operations" test_pdfsan_clean_ops;
      case "pdfsan catches corrupt density" test_pdfsan_catches_corruption;
      case "pdfsan catches mass drift, support escape, clamping"
        test_pdfsan_catches_mass_and_support;
      case "pdfsan uninstall restores silence"
        test_pdfsan_uninstall_restores_silence;
      case "checker certifies c432 clean" test_checker_clean_run;
      case "seeded violations are caught" test_checker_injections;
      case "injection ids are distinct" test_injection_ids_distinct;
      slow_case "all built-ins certify clean, pdfsan silent"
        test_builtins_certify_clean;
      case "reporters are order-independent" test_reporters_deterministic;
      case "sarif document shape" test_sarif_shape;
      case "check-id registry unique and stable" test_check_registry ] )
