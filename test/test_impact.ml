(* Dependence-cone change-impact analysis: the edit-script parser,
   netlist-edit memo freshness, dirty sets (including the quad-tree
   co-resident widening), forward/backward cones on shared-cone
   circuits, cache-compatibility of parameter deltas, and the certified
   incremental-equals-scratch contract. *)

module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Generators = Ssta_circuit.Generators
module Edit = Ssta_circuit.Edit
module Gate = Ssta_tech.Gate
module Config = Ssta_core.Config
module Path_analysis = Ssta_core.Path_analysis
module Report = Ssta_core.Report
module Rng = Ssta_prob.Rng
module Err = Ssta_runtime.Ssta_error
module D = Ssta_lint.Diagnostic
module Rules_edit = Ssta_lint.Rules_edit
module Dataflow = Ssta_check.Dataflow
module Impact = Ssta_check.Impact
module Checker = Ssta_check.Checker
open Helpers

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Err.to_string e)

let err_exn label = function
  | Ok _ -> Alcotest.failf "%s: expected a typed error" label
  | Error e -> e

(* A small methodology configuration that still enumerates several
   paths, so reuse/reanalysis splits are non-trivial. *)
let impact_config =
  let c = Config.with_quality Config.default ~intra:24 ~inter:12 in
  { c with Config.max_paths = 40 }

(* inputs a, b; g1 = NAND(a, b); g2 = NAND(g1, a); g3 = NAND(g1, b);
   outputs g2, g3 — two outputs sharing the cone of g1. *)
let shared_cone () =
  let b = Netlist.Builder.create "shared" in
  let a = Netlist.Builder.add_input b "a" in
  let bb = Netlist.Builder.add_input b "b" in
  let g1 = Netlist.Builder.add_gate ~name:"g1" b (Gate.Nand 2) [ a; bb ] in
  let g2 = Netlist.Builder.add_gate ~name:"g2" b (Gate.Nand 2) [ g1; a ] in
  let g3 = Netlist.Builder.add_gate ~name:"g3" b (Gate.Nand 2) [ g1; bb ] in
  Netlist.Builder.mark_output b g2;
  Netlist.Builder.mark_output b g3;
  (Netlist.Builder.finish b, a, bb, g1, g2, g3)

(* --- edit-script parser ----------------------------------------------- *)

let test_edit_parse_roundtrip () =
  let src =
    "# a comment\nresize g1 1.5\n\nmove g2 3 4.5\nretype g3 nor\nset \
     confidence 0.1\n"
  in
  let edits = ok_exn (Edit.parse_string_res src) in
  check_int "ops parsed" 4 (List.length edits);
  (match edits with
  | [ e1; e2; e3; e4 ] ->
      check_int "line of op 1" 2 e1.Edit.line;
      check_int "line of op 3" 5 e3.Edit.line;
      (match (e1.Edit.op, e2.Edit.op, e3.Edit.op, e4.Edit.op) with
      | ( Edit.Resize { gate = "g1"; drive = 1.5 },
          Edit.Move { gate = "g2"; x = 3.0; y = 4.5 },
          Edit.Retype { gate = "g3"; kind = "nor" },
          Edit.Set { param = "confidence"; value = 0.1 } ) -> ()
      | _ -> Alcotest.fail "parsed ops do not match the source")
  | _ -> Alcotest.fail "expected 4 ops");
  (* Round-trip: printing and re-parsing yields the same script. *)
  let printed = Edit.to_string edits in
  let again = ok_exn (Edit.parse_string_res printed) in
  Alcotest.(check string) "round-trip" printed (Edit.to_string again)

let test_edit_parse_errors () =
  let expect_parse_line label line src =
    match err_exn label (Edit.parse_string_res src) with
    | Err.Parse { pos; _ } -> check_int (label ^ ": line") line pos.Err.line
    | e ->
        Alcotest.failf "%s: expected a parse error, got %s" label
          (Err.kind_name e)
  in
  expect_parse_line "unknown op" 1 "frobnicate g1 1.2";
  expect_parse_line "missing field" 1 "resize g1";
  expect_parse_line "extra field" 1 "resize g1 1.2 9";
  expect_parse_line "non-numeric" 1 "resize g1 huge";
  expect_parse_line "nan is rejected" 1 "move g1 nan 2";
  expect_parse_line "inf is rejected" 1 "move g1 1 inf";
  expect_parse_line "error names its line" 3 "resize g1 1.2\n# ok\nmove g1"

(* --- netlist edit API (memo freshness) -------------------------------- *)

let test_with_gate_kind_fresh_memo () =
  let c, _, _, g1, g2, _ = shared_cone () in
  (* Populate the original's fan-out memo, then edit: the edited copy
     must not inherit (or corrupt) the memoized arrays. *)
  let fo_before = Netlist.fanouts c in
  let c' = Netlist.with_gate_kind c g1 (Gate.Nor 2) in
  check_true "original kind unchanged"
    ((Netlist.gate_of c g1).Netlist.kind = Gate.Nand 2);
  check_true "edited kind applied"
    ((Netlist.gate_of c' g1).Netlist.kind = Gate.Nor 2);
  let fo_after = Netlist.fanouts c' in
  check_true "memo not shared" (not (fo_before == fo_after));
  (* Connectivity is preserved, so the contents agree. *)
  Array.iteri
    (fun id fos ->
      Alcotest.(check (array int))
        (Printf.sprintf "fanouts of node %d" id)
        fos fo_after.(id))
    fo_before;
  Alcotest.(check (array int))
    "fanout counts agree" (Netlist.fanout_counts c)
    (Netlist.fanout_counts c');
  check_raises_invalid "input node refused" (fun () ->
      Netlist.with_gate_kind c 0 (Gate.Nor 2));
  check_raises_invalid "arity change refused" (fun () ->
      Netlist.with_gate_kind c g2 Gate.Inv)

(* --- backward dataflow on a shared cone -------------------------------- *)

module Reach = Dataflow.Make (struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
  let widen ~prev:_ ~next = next
  let pp = Format.pp_print_bool
end)

let test_dataflow_backward_shared_cone () =
  let c, a, b, g1, g2, g3 = shared_cone () in
  let reach_from seed =
    (Reach.fixpoint ~direction:Dataflow.Backward c
       ~init:(fun id -> id = seed)
       ~transfer:(fun ~node:_ v -> v))
      .Reach.values
  in
  (* Seeding one output slices out exactly its transitive support —
     the shared gate g1 and both inputs, but not the sibling output. *)
  let r = reach_from g2 in
  List.iter
    (fun (label, id, expected) ->
      Alcotest.(check bool) label expected r.(id))
    [ ("a reaches g2", a, true); ("b reaches g2", b, true);
      ("g1 reaches g2", g1, true); ("g2 is its own seed", g2, true);
      ("g3 cannot reach g2", g3, false) ];
  let r3 = reach_from g3 in
  Alcotest.(check bool) "g2 cannot reach g3" false r3.(g2);
  Alcotest.(check bool) "shared gate in both cones" true r3.(g1)

(* --- dirty sets and cones ---------------------------------------------- *)

let test_resize_dirties_fanins () =
  let c, a, b, g1, g2, g3 = shared_cone () in
  let d = Impact.design ~config:impact_config c in
  let edits = ok_exn (Edit.parse_string_res "resize g2 1.4") in
  let changes = ok_exn (Impact.resolve d edits) in
  let cone = Impact.cone_of d changes in
  (* Resize of g2 perturbs g2 and its fan-ins (their output load
     changes): {g2, g1, a}. *)
  List.iter
    (fun (label, id, expected) ->
      Alcotest.(check bool) label expected cone.Impact.dirty.(id))
    [ ("g2 dirty", g2, true); ("g1 (fanin) dirty", g1, true);
      ("a (fanin) dirty", a, true); ("b clean", b, false);
      ("g3 clean", g3, false) ];
  check_int "dirty count" 3 cone.Impact.dirty_count;
  (* Forward: everything reachable from the dirty set; g3 is reachable
     from g1, so both endpoints are affected. *)
  Alcotest.(check (list int))
    "affected endpoints" [ g2; g3 ] cone.Impact.affected_endpoints;
  check_true "not a full invalidation" (not cone.Impact.full);
  (* Backward slice contains the dirty nodes' support. *)
  Alcotest.(check bool) "b in backward slice" true cone.Impact.backward.(b)

let test_move_widens_to_quad_co_residents () =
  let c, _, _, g1, g2, g3 = shared_cone () in
  (* die 100x100, quad_levels 4 -> deepest leaves are 12.5 x 12.5.
     g1 and g2 share the first leaf; g3 sits in the far corner. *)
  let coords = Array.make (Netlist.num_nodes c) (0.0, 0.0) in
  coords.(g1) <- (1.0, 1.0);
  coords.(g2) <- (2.0, 2.0);
  coords.(g3) <- (99.0, 99.0);
  let placement =
    { Placement.die_width = 100.0; die_height = 100.0; coords }
  in
  let d = Impact.design ~placement ~config:impact_config c in
  let edits = ok_exn (Edit.parse_string_res "move g1 40 40") in
  let changes = ok_exn (Impact.resolve d edits) in
  let cone = Impact.cone_of d changes in
  (* The Eq. (14) soundness widening: the moved gate's old leaf
     co-resident g2 is dirty; the far-corner g3 is not. *)
  Alcotest.(check bool) "moved gate dirty" true cone.Impact.dirty.(g1);
  Alcotest.(check bool) "old-leaf co-resident dirty" true
    cone.Impact.dirty.(g2);
  Alcotest.(check bool) "far leaf clean" false cone.Impact.dirty.(g3);
  check_int "dirty count" 2 cone.Impact.dirty_count

let test_param_deltas () =
  let d = Impact.design ~config:impact_config (small_adder ()) in
  let effect_of script =
    match ok_exn (Impact.resolve d (ok_exn (Edit.parse_string_res script))) with
    | [ Impact.Config_set { effect; _ } ] -> effect
    | _ -> Alcotest.fail "expected one parameter delta"
  in
  check_true "confidence is enumeration-only"
    (effect_of "set confidence 0.1" = Config.Enumeration_only);
  check_true "max-paths is enumeration-only"
    (effect_of "set max-paths 30" = Config.Enumeration_only);
  check_true "corner-k is analysis"
    (effect_of "set corner-k 2.5" = Config.Analysis);
  check_true "quality-inter is tables"
    (effect_of "set quality-inter 16" = Config.Tables);
  (* Enumeration-only deltas do not invalidate the cone... *)
  let cone =
    Impact.cone_of d
      (ok_exn (Impact.resolve d (ok_exn (Edit.parse_string_res "set confidence 0.1"))))
  in
  check_true "enumeration delta keeps the cache" (not cone.Impact.full);
  check_int "no dirty nodes" 0 cone.Impact.dirty_count;
  (* ...analysis/table deltas invalidate everything. *)
  let cone =
    Impact.cone_of d
      (ok_exn (Impact.resolve d (ok_exn (Edit.parse_string_res "set corner-k 2.5"))))
  in
  check_true "analysis delta is a full invalidation" cone.Impact.full

let test_warm_compatibility_matrix () =
  let w = Path_analysis.warm impact_config in
  let after script expect_compatible =
    match Config.set_param impact_config (fst script) (snd script) with
    | Error msg -> Alcotest.failf "set_param failed: %s" msg
    | Ok (cfg, _) ->
        Alcotest.(check bool)
          (Printf.sprintf "warm after set %s %g" (fst script) (snd script))
          expect_compatible
          (Path_analysis.warm_compatible w cfg)
  in
  (* Enumeration-only and analysis deltas keep the warm tables... *)
  after ("confidence", 0.1) true;
  after ("max-paths", 30.0) true;
  after ("affine-prune", 0.0) true;
  after ("corner-k", 2.5) true;
  after ("confidence-sigma", 2.0) true;
  after ("quality-intra", 32.0) true;
  (* ...table deltas rebuild them. *)
  after ("quality-inter", 16.0) false;
  after ("truncation", 4.0) false

let test_resolve_errors () =
  let d = Impact.design ~config:impact_config (small_adder ()) in
  let expect label script =
    let e =
      err_exn label
        (Result.bind (Edit.parse_string_res script) (Impact.resolve d))
    in
    check_true (label ^ ": structural")
      (match e with Err.Structural _ -> true | _ -> false)
  in
  let g =
    Netlist.node_name d.Impact.circuit d.Impact.circuit.Netlist.num_inputs
  in
  expect "unknown gate" "resize nope 1.2";
  expect "primary input" "resize a0 1.2";
  expect "off-die move" (Printf.sprintf "move %s 1e9 1e9" g);
  expect "unknown kind" (Printf.sprintf "retype %s frob" g);
  expect "unknown param" "set frobnication 1.0";
  expect "bad param value" "set quality-inter 1.5"

(* --- incremental re-analysis ------------------------------------------- *)

let reanalyze_equals_scratch state script =
  let edits = ok_exn (Edit.parse_string_res script) in
  let o = ok_exn (Impact.reanalyze state edits) in
  let scratch = ok_exn (Impact.scratch (Impact.design_of state)) in
  Alcotest.(check string)
    (Printf.sprintf "byte-identity after %S" script)
    (Report.json_report scratch)
    (Report.json_report o.Impact.report);
  o

let test_incremental_equals_scratch () =
  let circuit = small_adder () in
  let d = Impact.design ~config:impact_config circuit in
  let state, baseline = ok_exn (Impact.init d) in
  check_true "baseline populated the cache" (Impact.cache_size state > 0);
  check_true "baseline analyzed paths"
    (Ssta_core.Methodology.num_critical_paths baseline > 0);
  (* One edit of every kind, applied in sequence to the same image. *)
  let two_input =
    let rec find id =
      if Netlist.is_input circuit id
         || Array.length (Netlist.gate_of circuit id).Netlist.fanins <> 2
      then find (id + 1)
      else Netlist.node_name circuit id
    in
    find 0
  in
  ignore (reanalyze_equals_scratch state (Printf.sprintf "resize %s 1.3" two_input));
  ignore
    (reanalyze_equals_scratch state (Printf.sprintf "retype %s nand" two_input));
  ignore (reanalyze_equals_scratch state (Printf.sprintf "move %s 5 5" two_input));
  let o = reanalyze_equals_scratch state "set confidence 0.08" in
  check_true "enumeration-only delta reuses the cache"
    (o.Impact.reused > 0 || o.Impact.reanalyzed = 0);
  let o = reanalyze_equals_scratch state "set quality-inter 16" in
  check_true "table delta reanalyzes everything" (o.Impact.reused = 0)

let test_what_if_does_not_commit () =
  let circuit = small_adder () in
  let d = Impact.design ~config:impact_config circuit in
  let state, _ = ok_exn (Impact.init d) in
  let before_design = Impact.design_of state in
  let before_cache = Impact.cache_size state in
  let g = Netlist.node_name circuit circuit.Netlist.num_inputs in
  let edits =
    ok_exn (Edit.parse_string_res (Printf.sprintf "resize %s 1.5" g))
  in
  let o = ok_exn (Impact.what_if state edits) in
  check_true "what-if produced a report"
    (Ssta_core.Methodology.num_critical_paths o.Impact.report > 0);
  check_true "design untouched" (Impact.design_of state == before_design);
  check_int "cache untouched" before_cache (Impact.cache_size state);
  (* A failed reanalyze also leaves the state untouched. *)
  let bad = ok_exn (Edit.parse_string_res "resize nope 1.5") in
  (match Impact.reanalyze state bad with
  | Ok _ -> Alcotest.fail "expected reanalyze to fail"
  | Error _ -> ());
  check_true "design untouched after error"
    (Impact.design_of state == before_design);
  check_int "cache untouched after error" before_cache
    (Impact.cache_size state)

let test_random_edits_deterministic () =
  let d = Impact.design ~config:impact_config (small_adder ()) in
  let script seed =
    Edit.to_string (Impact.random_edits ~rng:(Rng.create seed) ~count:5 d)
  in
  Alcotest.(check string) "same seed, same corpus" (script 7) (script 7);
  check_true "different seeds differ" (script 7 <> script 8);
  (* Every generated edit resolves against the design. *)
  let edits = Impact.random_edits ~rng:(Rng.create 3) ~count:8 d in
  check_int "count respected" 8 (List.length edits);
  ignore (ok_exn (Impact.resolve d edits))

(* --- lint rules -------------------------------------------------------- *)

let fires rule ds =
  List.exists (fun (d : D.t) -> String.equal d.D.rule rule) ds

let test_edit_lint_rules () =
  let circuit = small_adder () in
  let config = impact_config in
  let g = Netlist.node_name circuit circuit.Netlist.num_inputs in
  let check_script script = Rules_edit.check ~config circuit script in
  let parse fmt = Printf.ksprintf (fun s -> ok_exn (Edit.parse_string_res s)) fmt in
  check_true "unknown gate fires"
    (fires "edit-unknown-gate" (check_script (parse "resize nope 1.2")));
  check_true "input fires"
    (fires "edit-unknown-gate" (check_script (parse "resize a0 1.2")));
  check_true "off-die fires"
    (fires "edit-outside-die" (check_script (parse "move %s 1e9 1e9" g)));
  check_true "unknown kind fires"
    (fires "edit-unknown-kind" (check_script (parse "retype %s frob" g)));
  check_true "unknown param fires"
    (fires "edit-unknown-param" (check_script (parse "set frob 1.0")));
  check_true "no-op fires"
    (fires "edit-noop" (check_script (parse "resize %s 1.0" g)));
  (* Sequential semantics: a second identical resize is the no-op. *)
  let ds = check_script (parse "resize %s 1.2\nresize %s 1.2" g g) in
  check_int "exactly one diagnostic" 1 (List.length ds);
  check_true "second op is the no-op" (fires "edit-noop" ds);
  (* A clean script yields no diagnostics; the engine registers the
     rules. *)
  check_int "clean script" 0
    (List.length (check_script (parse "resize %s 1.2" g)));
  check_true "rules registered"
    (List.mem_assoc "edit-noop" Ssta_lint.Engine.all_rules)

(* --- the checker phase ------------------------------------------------- *)

let test_check_impact_equivalence () =
  let circuit = small_adder () in
  let input =
    Checker.input ~config:impact_config ~pdfsan:false
      ~only:[ "check-impact-equivalence" ] ~impact_edits:2 ~impact_seed:11
      circuit
  in
  let r = Checker.run input in
  let errors =
    List.filter (fun (d : D.t) -> d.D.severity = D.Error) r.Checker.diagnostics
  in
  (match errors with
  | [] -> ()
  | d :: _ -> Alcotest.failf "unexpected error: %s" d.D.message);
  check_true "equivalence diagnostic reported"
    (fires "check-impact-equivalence" r.Checker.diagnostics);
  check_true "check id registered"
    (List.mem_assoc "check-impact-equivalence" Checker.all_checks)

let suite =
  ( "impact",
    [ case "edit parser round-trip" test_edit_parse_roundtrip;
      case "edit parser errors" test_edit_parse_errors;
      case "with_gate_kind memo freshness" test_with_gate_kind_fresh_memo;
      case "backward dataflow shared cone" test_dataflow_backward_shared_cone;
      case "resize dirties fanins" test_resize_dirties_fanins;
      case "move widens to quad co-residents"
        test_move_widens_to_quad_co_residents;
      case "parameter delta effects" test_param_deltas;
      case "warm compatibility matrix" test_warm_compatibility_matrix;
      case "resolve errors are typed" test_resolve_errors;
      slow_case "incremental equals scratch" test_incremental_equals_scratch;
      case "what-if does not commit" test_what_if_does_not_commit;
      case "random edit corpus deterministic" test_random_edits_deterministic;
      case "edit lint rules" test_edit_lint_rules;
      slow_case "check-impact-equivalence clean" test_check_impact_equivalence
    ] )
