open Ssta_prob
open Helpers

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for i = 0 to 99 do
    check_close ~tol:0.0
      (Printf.sprintf "draw %d identical" i)
      (Rng.float a) (Rng.float b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = Array.init 16 (fun _ -> Rng.float a) in
  let ys = Array.init 16 (fun _ -> Rng.float b) in
  check_true "different seeds diverge" (xs <> ys)

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.float a);
  let b = Rng.copy a in
  check_close ~tol:0.0 "copy continues identically" (Rng.float a) (Rng.float b)

let test_split_diverges () =
  let a = Rng.create 7 in
  let b = (Rng.split a 1).(0) in
  let xs = Array.init 16 (fun _ -> Rng.float a) in
  let ys = Array.init 16 (fun _ -> Rng.float b) in
  check_true "split stream differs" (xs <> ys)

let test_split_deterministic () =
  let mk () = Rng.split (Rng.create 99) 4 in
  let draws shards = Array.map (fun r -> Array.init 8 (fun _ -> Rng.int64 r)) shards in
  check_true "split shards replay identically" (draws (mk ()) = draws (mk ()))

let test_split_invalid () =
  check_raises_invalid "n=0" (fun () -> ignore (Rng.split (Rng.create 1) 0))

(* The MC-sharding soundness property: shard streams never silently
   reuse one another's draws.  10^5 draws from each of 4 shards must be
   globally distinct 64-bit values (a cross-shard repeat would mean two
   shards walking the same state lattice; a chance collision among
   4*10^5 uniform 64-bit draws has probability ~4e-9). *)
let test_split_non_overlapping () =
  let shards = Rng.split (Rng.create 2026) 4 in
  let seen = Hashtbl.create (8 * 100_000) in
  Array.iteri
    (fun si rng ->
      for _ = 1 to 100_000 do
        let v = Rng.int64 rng in
        (match Hashtbl.find_opt seen v with
        | Some sj when sj <> si ->
            Alcotest.failf "shards %d and %d overlap on %Ld" sj si v
        | Some _ | None -> ());
        Hashtbl.replace seen v si
      done)
    shards

let test_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    check_true "float in [0,1)" (x >= 0.0 && x < 1.0)
  done

let test_float_mean () =
  let rng = Rng.create 11 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  check_close_abs ~tol:0.01 "uniform mean ~0.5" 0.5 (!sum /. float_of_int n)

let test_int_range () =
  let rng = Rng.create 5 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 10 in
    check_true "int in range" (v >= 0 && v < 10);
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check_true (Printf.sprintf "bucket %d roughly uniform" i)
        (c > 800 && c < 1200))
    counts

let test_int_invalid () =
  let rng = Rng.create 1 in
  check_raises_invalid "n=0" (fun () -> Rng.int rng 0);
  check_raises_invalid "n<0" (fun () -> Rng.int rng (-3))

let test_gaussian_moments () =
  let rng = Rng.create 17 in
  let n = 60_000 in
  let samples =
    Array.init n (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0)
  in
  let s = Stats.summarize samples in
  check_close_abs ~tol:0.05 "gaussian mean" 3.0 s.Stats.mean;
  check_close_abs ~tol:0.05 "gaussian std" 2.0 s.Stats.std;
  check_close_abs ~tol:0.08 "gaussian skew ~ 0" 0.0 s.Stats.skewness

let test_truncated_gaussian_bounds () =
  let rng = Rng.create 23 in
  for _ = 1 to 20_000 do
    let x = Rng.truncated_gaussian rng ~mu:10.0 ~sigma:2.0 ~bound:2.0 in
    check_true "within truncation" (Float.abs (x -. 10.0) <= 4.0 +. 1e-12)
  done

let test_truncated_gaussian_invalid () =
  let rng = Rng.create 1 in
  check_raises_invalid "bound<=0" (fun () ->
      Rng.truncated_gaussian rng ~mu:0.0 ~sigma:1.0 ~bound:0.0)

let test_uniform_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 5_000 do
    let x = Rng.uniform rng ~lo:(-3.0) ~hi:7.0 in
    check_true "uniform in range" (x >= -3.0 && x < 7.0)
  done

let test_shuffle_permutation () =
  let rng = Rng.create 31 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle rng b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  check_true "shuffle is a permutation" (sorted = a);
  check_true "shuffle moved something" (b <> a)

let prop_int64_nonsticky =
  qcheck "int64 stream has no short cycle" QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let a = Rng.int64 rng and b = Rng.int64 rng and c = Rng.int64 rng in
      not (Int64.equal a b && Int64.equal b c))

let suite =
  ( "rng",
    [ case "same seed, same stream" test_determinism;
      case "different seeds diverge" test_seed_sensitivity;
      case "copy continues identically" test_copy_independent;
      case "split stream diverges" test_split_diverges;
      case "split shards replay identically" test_split_deterministic;
      case "split rejects bad shard count" test_split_invalid;
      case "split shards non-overlapping over 1e5 draws"
        test_split_non_overlapping;
      case "float stays in [0,1)" test_float_range;
      case "uniform mean" test_float_mean;
      case "int uniform buckets" test_int_range;
      case "int rejects bad bounds" test_int_invalid;
      case "gaussian moments" test_gaussian_moments;
      case "truncated gaussian respects bound" test_truncated_gaussian_bounds;
      case "truncated gaussian rejects bad bound"
        test_truncated_gaussian_invalid;
      case "uniform range" test_uniform_range;
      case "shuffle is a permutation" test_shuffle_permutation;
      prop_int64_nonsticky ] )
