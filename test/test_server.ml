(* Tests for the persistent analysis server: the strict JSON layer, the
   wire protocol, the bounded request queue, the serve loop, and the
   chaos acceptance run (>= 100 interleaved requests, two arrival
   orders, byte-identical deterministic responses, zero crashes). *)

open Helpers
module Err = Ssta_runtime.Ssta_error
module Json = Ssta_server.Json
module Protocol = Ssta_server.Protocol
module Supervisor = Ssta_server.Supervisor
module Server = Ssta_server.Server
module Iscas85 = Ssta_circuit.Iscas85
module Netlist = Ssta_circuit.Netlist
module Config = Ssta_core.Config

(* ----- strict JSON ----- *)

let test_json_print_deterministic () =
  let v =
    Json.(
      Obj
        [ ("a", Number 1.5);
          ("b", List [ Null; Bool true; String "x" ]);
          ("n", Number 3.0) ])
  in
  let s = Json.to_string v in
  Alcotest.(check string) "print" {|{"a":1.5,"b":[null,true,"x"],"n":3}|} s;
  (match Json.parse s with
  | Ok v2 -> Alcotest.(check string) "roundtrip" s (Json.to_string v2)
  | Error e -> Alcotest.failf "roundtrip: %s" (Err.to_string e));
  Alcotest.(check string) "nan is null" "null"
    (Json.to_string (Json.Number Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Number Float.infinity))

let test_json_accessors () =
  let v = Json.(Obj [ ("i", Number 3.0); ("f", Number 1.5); ("s", String "x") ]) in
  check_true "exact int" (Json.member "i" v |> Option.get |> Json.to_int = Some 3);
  check_true "not int" (Json.member "f" v |> Option.get |> Json.to_int = None);
  check_true "float" (Json.member "f" v |> Option.get |> Json.to_float = Some 1.5);
  check_true "str" (Json.member "s" v |> Option.get |> Json.to_str = Some "x");
  check_true "missing" (Json.member "z" v = None);
  check_true "keys" (Json.keys v = [ "i"; "f"; "s" ])

let parse_err s =
  match Json.parse s with
  | Ok _ -> Alcotest.failf "%S: expected parse error" (String.escaped s)
  | Error e ->
      Alcotest.(check string)
        (Printf.sprintf "%s: kind" (String.escaped s))
        "parse" (Err.kind_name e)

let test_json_rejections () =
  List.iter parse_err
    [ "";
      "{";
      "[1] x";                         (* trailing garbage *)
      {|{"a":1,"a":2}|};               (* duplicate key *)
      {|{"a"}|};
      {|"\ud800"|};                    (* lone surrogate *)
      "\"a\x01b\"";                    (* raw control character *)
      "\"\xff\"";                      (* invalid UTF-8 *)
      "+1";
      ".5";
      "\"unterminated";
      String.make 70 '[' ^ "0" ^ String.make 70 ']' (* depth cap *) ]

let test_json_surrogate_pair () =
  match Json.parse {|"😀"|} with
  | Ok (Json.String s) ->
      Alcotest.(check string) "decoded UTF-8" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "surrogate pair: %s" (Err.to_string e)

(* ----- wire protocol ----- *)

let decode = Protocol.decode ~max_bytes:4096

let decode_ok line =
  match decode line with
  | Ok env -> env
  | Error e -> Alcotest.failf "%s: %s" line (Err.to_string e)

let decode_err ~kind line =
  match decode line with
  | Ok _ -> Alcotest.failf "%s: expected a decode error" line
  | Error e ->
      Alcotest.(check string) (line ^ ": kind") kind (Err.kind_name e)

let test_protocol_decode_ok () =
  (match decode_ok {|{"op":"run","id":"r1","quality_intra":8,"deadline":"500ms"}|} with
  | { id = Some (Json.String "r1"); request = Protocol.Run p } ->
      check_true "quality" (p.Protocol.p_quality_intra = Some 8);
      (match p.Protocol.p_deadline_s with
      | Some d -> check_close "deadline" 0.5 d
      | None -> Alcotest.fail "expected a deadline")
  | _ -> Alcotest.fail "run decode");
  (match decode_ok {|{"op":"query","id":7,"endpoint":"n62"}|} with
  | { id = Some (Json.Number 7.0); request = Protocol.Query { endpoint; _ } } ->
      Alcotest.(check string) "endpoint" "n62" endpoint
  | _ -> Alcotest.fail "query decode");
  (match decode_ok {|{"op":"check","only":["check-health"],"path_limit":3}|} with
  | { id = None; request = Protocol.Check { only; path_limit } } ->
      check_true "only" (only = [ "check-health" ]);
      check_true "limit" (path_limit = Some 3)
  | _ -> Alcotest.fail "check decode");
  (match decode_ok {|{"op":"criticality","top":5}|} with
  | { request = Protocol.Criticality { top = Some 5 }; _ } -> ()
  | _ -> Alcotest.fail "criticality decode");
  (match decode_ok {|{"op":"health"}|} with
  | { request = Protocol.Health; _ } -> ()
  | _ -> Alcotest.fail "health decode");
  (match decode_ok {|{"op":"shutdown"}|} with
  | { request = Protocol.Shutdown; _ } -> ()
  | _ -> Alcotest.fail "shutdown decode")

let test_protocol_decode_errors () =
  decode_err ~kind:"structural" {|{"op":"nope"}|};
  decode_err ~kind:"structural" {|{"quality_intra":8}|};
  decode_err ~kind:"structural" {|{"op":"run","bogus":1}|};
  decode_err ~kind:"structural" {|{"op":"run","quality_intra":-3}|};
  decode_err ~kind:"structural" {|{"op":"run","quality_intra":1000000}|};
  decode_err ~kind:"structural" {|{"op":"run","deadline":0}|};
  decode_err ~kind:"structural" {|{"op":"run","deadline":-2}|};
  decode_err ~kind:"structural" {|{"op":"run","id":true}|};
  decode_err ~kind:"structural" {|{"op":"query"}|};
  decode_err ~kind:"structural" {|{"op":"criticality","top":0}|};
  decode_err ~kind:"structural" {|[1,2]|};
  decode_err ~kind:"parse" {|{"op":"run"|};
  decode_err ~kind:"parse" {|{"op":"run","id":"x","id":"y"}|};
  decode_err ~kind:"budget-exceeded"
    ({|{"op":"run","id":"big"|} ^ String.make 8192 ' ' ^ "}")

let test_protocol_render () =
  Alcotest.(check string) "render"
    {|{"id":"x","status":"ok","k":true}|}
    (Protocol.render ~id:(Json.String "x") ~status:Protocol.Ok_
       [ ("k", Json.Bool true) ]);
  Alcotest.(check string) "no id"
    {|{"status":"degraded"}|}
    (Protocol.render ~status:Protocol.Degraded []);
  let err = Protocol.render_error (Err.parse ~format:"json" "boom") in
  match Json.parse err with
  | Ok v ->
      check_true "status error"
        (Json.member "status" v |> Option.get |> Json.to_str = Some "error");
      check_true "kind"
        (Json.member "kind" v |> Option.get |> Json.to_str = Some "parse");
      check_true "code"
        (Json.member "code" v |> Option.get |> Json.to_int = Some 1)
  | Error e -> Alcotest.failf "error response unparsable: %s" (Err.to_string e)

(* ----- bounded request queue ----- *)

let test_supervisor () =
  let q = Supervisor.create ~max_queue:2 () in
  check_true "accept 1" (Supervisor.submit q 1 = Supervisor.Accepted);
  check_true "accept 2" (Supervisor.submit q 2 = Supervisor.Accepted);
  check_true "overflow" (Supervisor.submit q 3 = Supervisor.Overloaded);
  check_true "fifo 1" (Supervisor.try_take q = Some 1);
  check_true "accept 4" (Supervisor.submit q 4 = Supervisor.Accepted);
  Supervisor.begin_shutdown q;
  check_true "rejected after shutdown"
    (Supervisor.submit q 5 = Supervisor.Shutting_down);
  check_true "not yet drained" (not (Supervisor.drained q));
  check_true "fifo 2" (Supervisor.try_take q = Some 2);
  check_true "fifo 4" (Supervisor.try_take q = Some 4);
  check_true "empty" (Supervisor.try_take q = None);
  check_true "drained" (Supervisor.drained q);
  let s = Supervisor.stats q in
  check_int "accepted" 3 s.Supervisor.accepted;
  check_int "overloaded" 1 s.Supervisor.overloaded;
  check_int "rejected" 1 s.Supervisor.rejected_shutdown

(* ----- the server itself ----- *)

let make_server () =
  let spec =
    match Iscas85.by_name "c432" with Some s -> s | None -> assert false
  in
  let circuit, placement = Iscas85.build_placed spec in
  let config =
    { (Config.with_quality Config.default ~intra:16 ~inter:8) with
      Config.max_paths = 8 }
  in
  let reload () = Ok (Iscas85.build_placed spec) in
  (Server.create ~config ~reload circuit placement, circuit)

let ask t line =
  match Protocol.decode ~max_bytes:1_048_576 line with
  | Ok env -> Server.dispatch t env
  | Error e -> Protocol.render_error e

let status_of resp =
  match Json.parse resp with
  | Ok v -> (
      match Json.member "status" v with
      | Some s -> Option.value ~default:"?" (Json.to_str s)
      | None -> "?")
  | Error e ->
      Alcotest.failf "response is not valid JSON (%s): %s" (Err.to_string e)
        resp

let test_server_basic_requests () =
  let t, circuit = make_server () in
  let run = {|{"op":"run","id":"r","max_paths":4,"full":false}|} in
  let a = ask t run and b = ask t run in
  Alcotest.(check string) "identical requests, identical bytes" a b;
  Alcotest.(check string) "run ok" "ok" (status_of a);
  let endpoint = Netlist.node_name circuit circuit.Netlist.outputs.(0) in
  let q =
    ask t (Printf.sprintf {|{"op":"query","id":"q","endpoint":"%s"}|} endpoint)
  in
  Alcotest.(check string) "query ok" "ok" (status_of q);
  (match Json.parse q with
  | Ok v ->
      check_true "query echoes endpoint"
        (Json.member "endpoint" v |> Option.get |> Json.to_str = Some endpoint);
      check_true "mean present" (Json.member "mean_s" v <> None)
  | Error _ -> Alcotest.fail "query response unparsable");
  let bad = ask t {|{"op":"query","id":"qb","endpoint":"no_such_node"}|} in
  Alcotest.(check string) "unknown endpoint" "error" (status_of bad);
  let badck = ask t {|{"op":"check","id":"cb","only":["no-such-check"]}|} in
  Alcotest.(check string) "unknown check id" "error" (status_of badck);
  let crit = ask t {|{"op":"criticality","id":"c","top":3}|} in
  Alcotest.(check string) "criticality ok" "ok" (status_of crit);
  check_true "criticality single line" (not (String.contains crit '\n'));
  let rel = ask t {|{"op":"reload","id":"rl"}|} in
  Alcotest.(check string) "reload ok" "ok" (status_of rel);
  let h = ask t {|{"op":"health","id":"h"}|} in
  Alcotest.(check string) "health ok" "ok" (status_of h);
  match Json.parse h with
  | Ok v ->
      let counters = Json.member "counters" v |> Option.get in
      let c name = Json.member name counters |> Option.get |> Json.to_int in
      check_true "total counted" (c "requests-total" = Some 8);
      check_true "errors counted" (c "requests-error" = Some 2)
  | Error _ -> Alcotest.fail "health response unparsable"

let test_server_health_reports_pool_parking () =
  (* An idle server's worker domains sit parked on the pool's condition
     variable; the health answer exposes the park ledger. *)
  let spec =
    match Iscas85.by_name "c432" with Some s -> s | None -> assert false
  in
  let circuit, placement = Iscas85.build_placed spec in
  let config =
    { (Config.with_quality Config.default ~intra:16 ~inter:8) with
      Config.max_paths = 8 }
  in
  let pool_member h name =
    match Json.parse h with
    | Error _ -> Alcotest.fail "health response unparsable"
    | Ok v ->
        let pool = Json.member "pool" v |> Option.get in
        Json.member name pool |> Option.get |> Json.to_int |> Option.get
  in
  Ssta_parallel.Pool.with_pool ~jobs:2 (fun pool ->
      let t =
        Server.create ~config ~pool
          ~reload:(fun () -> Ok (Iscas85.build_placed spec))
          circuit placement
      in
      ignore (ask t {|{"op":"run","id":"r","max_paths":4,"full":false}|});
      (* The worker parks on creation and re-parks whenever a work
         region actually woke it (a tiny region can finish on the caller
         alone, which by design leaves the original session open) — so
         between requests the worker is always parked. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let parked () =
        let h = ask t {|{"op":"health","id":"h"}|} in
        pool_member h "idle_workers" = 1 && pool_member h "park_count" >= 1
      in
      while (not (parked ())) && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.001
      done;
      let h = ask t {|{"op":"health","id":"h"}|} in
      check_int "jobs" 2 (pool_member h "jobs");
      check_int "idle server has its worker parked" 1
        (pool_member h "idle_workers");
      check_true "park ledger visible" (pool_member h "park_count" >= 1));
  (* without a pool the field stays null *)
  let t, _ = make_server () in
  let h = ask t {|{"op":"health","id":"h"}|} in
  match Json.parse h with
  | Error _ -> Alcotest.fail "health response unparsable"
  | Ok v ->
      check_true "pool null without a pool"
        (Json.member "pool" v = Some Json.Null)

let test_server_deadline_degrades_then_recovers () =
  let t, _ = make_server () in
  let slow =
    ask t
      {|{"op":"run","id":"dl","deadline":1e-6,"quality_intra":64,"quality_inter":32,"max_paths":200,"full":false}|}
  in
  Alcotest.(check string) "deadline degrades" "degraded" (status_of slow);
  (* The server survives the breach: the next request is untouched. *)
  let ok = ask t {|{"op":"run","id":"after","max_paths":4,"full":false}|} in
  Alcotest.(check string) "server alive" "ok" (status_of ok)

(* ----- the serve loop over real channels ----- *)

let with_serve_session lines f =
  let req_path = Filename.temp_file "ssta_serve" ".req" in
  let resp_path = Filename.temp_file "ssta_serve" ".resp" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove req_path;
      Sys.remove resp_path)
    (fun () ->
      let oc = open_out req_path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      let t, circuit = make_server () in
      let ic = open_in req_path in
      let out = open_out resp_path in
      let outcome =
        Fun.protect
          ~finally:(fun () ->
            close_in ic;
            close_out out)
          (fun () -> Server.serve t ic out)
      in
      let ic = open_in resp_path in
      let rec read acc =
        match input_line ic with
        | l -> read (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      let responses = read [] in
      close_in ic;
      f ~outcome ~responses ~circuit t)

let test_serve_loop () =
  let lines =
    [ {|{"op":"health","id":"h1"}|};
      {|{"op":"run","id":"r1","max_paths":4,"full":false}|};
      "this is not json";
      "";
      {|{"op":"run","id":"r2","max_paths":4,"full":false}|};
      {|{"op":"shutdown","id":"bye"}|};
      {|{"op":"run","id":"late","max_paths":4}|} ]
  in
  with_serve_session lines
    (fun ~outcome ~responses ~circuit:_ _t ->
      check_true "shutdown outcome" (outcome = `Shutdown);
      (* 6 non-blank lines, each answered exactly once. *)
      check_int "one response per request" 6 (List.length responses);
      List.iter
        (fun r -> check_true "parses" (Result.is_ok (Json.parse r)))
        responses;
      let statuses = List.map status_of responses in
      check_int "malformed line answered" 1
        (List.length (List.filter (( = ) "error") statuses));
      (* The line after "shutdown" is answered exactly once, either in
         the drain (the reader enqueued it before the dispatcher began
         shutting down — the usual case with a pre-written file) or as
         a "shutting-down" refusal; deterministic rejection is covered
         by the Supervisor unit test. *)
      check_true "late request answered"
        (List.for_all
           (fun s ->
             List.mem s [ "ok"; "degraded"; "error"; "shutting-down" ])
           statuses))

(* ----- chaos acceptance ----- *)

(* >= 100 interleaved requests — valid, malformed, and over-budget —
   fed to one server in two arrival orders.  Every request must be
   answered with typed JSON (zero crashes), and every response whose
   content is deterministic (everything except health, whose answer is
   lifetime-dependent by design, and tiny-deadline runs, which truncate
   at a wall-clock boundary) must be byte-identical across the two
   orders. *)

let chaos_corpus circuit =
  let items = ref [] in
  let add ?(det = true) line = items := (line, det) :: !items in
  for i = 1 to 40 do
    add
      (Printf.sprintf
         {|{"op":"run","id":"run%d","quality_intra":%d,"quality_inter":8,"max_paths":%d,"full":false}|}
         i
         (8 + (4 * (i mod 3)))
         (1 + (i mod 5)))
  done;
  let outs = circuit.Netlist.outputs in
  for i = 1 to 20 do
    let name = Netlist.node_name circuit outs.(i mod Array.length outs) in
    add
      (Printf.sprintf {|{"op":"query","id":"q%d","endpoint":"%s"}|} i name)
  done;
  add {|{"op":"query","id":"qbad1","endpoint":"no_such_node"}|};
  add {|{"op":"query","id":"qbad2","endpoint":"also_missing"}|};
  for i = 1 to 12 do
    add (Printf.sprintf {|{"op":"criticality","id":"cr%d","top":%d}|} i
           (1 + (i mod 6)))
  done;
  for i = 1 to 4 do
    add
      (Printf.sprintf
         {|{"op":"check","id":"chk%d","path_limit":%d,"only":["check-health","check-pdfsan-mass"]}|}
         i (1 + i))
  done;
  (* Malformed protocol lines: answered with deterministic typed errors. *)
  List.iter (fun l -> add l)
    [ {|{"op":"nope"}|};
      {|{"quality_intra":8}|};
      {|{"op":"run","bogus":1}|};
      {|{"op":"run","quality_intra":-3}|};
      {|{"op":"run","deadline":0}|};
      {|{"op":"run","id":true}|};
      {|[1,2]|};
      {|{"op":"run"|};
      {|{"op":"run","id":"x","id":"y"}|};
      {|"\ud800"|};
      "\"a\x01b\"";
      "\"\xff\"";
      {|{"op":"query"}|};
      {|{"op":"criticality","top":0}|};
      "not json at all";
      "{}" ];
  (* Over-budget: wall-clock truncation point is timing-dependent, so
     only the status contract is asserted. *)
  for i = 1 to 5 do
    add ~det:false
      (Printf.sprintf
         {|{"op":"run","id":"dl%d","deadline":1e-6,"quality_intra":64,"max_paths":200,"full":false}|}
         i)
  done;
  add ~det:false {|{"op":"health","id":"h1"}|};
  add ~det:false {|{"op":"health","id":"h2"}|};
  add {|{"op":"reload","id":"rel1"}|};
  add {|{"op":"reload","id":"rel2"}|};
  (* Two byte-identical requests at different queue positions: the warm
     cache state differs (first builds, second reuses) but the answer
     must not. *)
  add {|{"op":"run","id":"dup","max_paths":3,"full":false}|};
  add {|{"op":"run","id":"dup","max_paths":3,"full":false}|};
  List.rev !items

let run_order server items =
  List.map
    (fun (line, det) ->
      let resp =
        try ask server line
        with e ->
          Alcotest.failf "request crashed the dispatcher: %s (%s)"
            (Printexc.to_string e) line
      in
      (line, det, resp))
    items

let test_chaos_acceptance () =
  let t_a, circuit = make_server () in
  let items = chaos_corpus circuit in
  check_true "corpus size" (List.length items >= 100);
  let order_a = run_order t_a items in
  let t_b, _ = make_server () in
  let order_b = List.rev (run_order t_b (List.rev items)) in
  (* Every request answered with typed JSON carrying a status. *)
  List.iter
    (fun (line, _, resp) ->
      match Json.parse resp with
      | Ok v ->
          check_true
            (Printf.sprintf "typed status (%s)" (String.escaped line))
            (Json.member "status" v <> None);
          check_true "single line" (not (String.contains resp '\n'))
      | Error e ->
          Alcotest.failf "untyped response for %s: %s" (String.escaped line)
            (Err.to_string e))
    order_a;
  (* Deterministic responses are byte-identical across arrival orders. *)
  List.iter2
    (fun (line, det, ra) (line_b, _, rb) ->
      check_true "corpus aligned" (line = line_b);
      if det then
        Alcotest.(check string)
          (Printf.sprintf "order-independent (%s)" (String.escaped line))
          ra rb
      else
        check_true
          (Printf.sprintf "status contract (%s)" (String.escaped line))
          (List.mem (status_of ra) [ "ok"; "degraded" ]
          && List.mem (status_of rb) [ "ok"; "degraded" ]))
    order_a order_b;
  (* The two byte-identical "dup" requests agree within one order. *)
  let dups order =
    List.filter_map
      (fun (line, _, resp) ->
        if line = {|{"op":"run","id":"dup","max_paths":3,"full":false}|} then
          Some resp
        else None)
      order
  in
  (match dups order_a with
  | [ a; b ] -> Alcotest.(check string) "dup agree (order A)" a b
  | _ -> Alcotest.fail "expected two dup responses");
  match dups order_b with
  | [ a; b ] -> Alcotest.(check string) "dup agree (order B)" a b
  | _ -> Alcotest.fail "expected two dup responses"

let suite =
  ( "server",
    [ case "json printing is deterministic" test_json_print_deterministic;
      case "json accessors" test_json_accessors;
      case "json strictness" test_json_rejections;
      case "json surrogate pairs" test_json_surrogate_pair;
      case "protocol decodes every op" test_protocol_decode_ok;
      case "protocol rejects malformed requests" test_protocol_decode_errors;
      case "protocol rendering" test_protocol_render;
      case "bounded request queue" test_supervisor;
      slow_case "server answers the basic request set"
        test_server_basic_requests;
      slow_case "health exposes pool parking"
        test_server_health_reports_pool_parking;
      slow_case "deadline breach degrades, server survives"
        test_server_deadline_degrades_then_recovers;
      slow_case "serve loop drains and shuts down" test_serve_loop;
      slow_case "chaos acceptance: two arrival orders"
        test_chaos_acceptance ] )
