(* The block-based engine: the statistical sum/max operator algebra
   (Clark moments against closed forms, the grid-exact independent max
   against closed forms and Monte Carlo), correlation preservation
   through reconvergent fan-out, containment of the block answer in the
   affine envelope on random circuits, and byte-identity of the JSON
   report across worker counts. *)

module Pdf = Ssta_prob.Pdf
module Dist = Ssta_prob.Dist
module Rng = Ssta_prob.Rng
module Params = Ssta_tech.Params
module Gate = Ssta_tech.Gate
module Netlist = Ssta_circuit.Netlist
module Generators = Ssta_circuit.Generators
module Placement = Ssta_circuit.Placement
module Sta = Ssta_timing.Sta
module Config = Ssta_core.Config
module Block_based = Ssta_core.Block_based
module Monte_carlo = Ssta_core.Monte_carlo
module Path_coeffs = Ssta_correlation.Path_coeffs
module Interval = Ssta_check.Interval
module Affine = Ssta_check.Affine
module Arrival = Ssta_block.Arrival
module Engine = Ssta_block.Engine
open Helpers

let grid_config = { Config.default with Config.block_max = Config.Grid_max }

(* Synthetic arrivals: a zero-mean grid residual plus optional shared
   terms, with the indep invariant taken from the grid. *)
let arrival ?(mean = 0.0) ?(terms = []) resid =
  let tbl = Hashtbl.create 4 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) terms;
  let indep = match resid with None -> 0.0 | Some p -> Pdf.variance p in
  { Arrival.canon = { Block_based.mean; terms = tbl; indep }; resid }

let std_normal_resid () =
  Some (Dist.truncated_gaussian ~n:400 ~bound:6.0 ~mu:0.0 ~sigma:1.0 ())

(* A layer-0 key, and the coefficient that gives it unit variance under
   the default budget (so tests can speak in unit-variance terms). *)
let key =
  { Path_coeffs.rv = List.hd Params.all_rvs; layer = 0; partition = 0 }

let unit_coeff =
  let tbl = Hashtbl.create 1 in
  Hashtbl.replace tbl key 1.0;
  let v =
    Block_based.variance Config.default
      { Block_based.mean = 0.0; terms = tbl; indep = 0.0 }
  in
  1.0 /. sqrt v

(* --- operator algebra -------------------------------------------------- *)

let test_sum_moments () =
  let config = Config.default in
  let half_var_resid sigma =
    Some (Dist.truncated_gaussian ~n:400 ~bound:6.0 ~mu:0.0 ~sigma ())
  in
  let a =
    arrival ~mean:1.0 ~terms:[ (key, unit_coeff) ] (half_var_resid 0.5)
  in
  let b =
    arrival ~mean:2.0 ~terms:[ (key, 0.5 *. unit_coeff) ] (half_var_resid 0.5)
  in
  let s = Arrival.sum config a b in
  check_close "sum of means" 3.0 (Arrival.mean s);
  (* Var(A+B) = va + vb + 2 cov: shared coefficients add exactly. *)
  check_close ~tol:5e-3 "sum variance includes the covariance" 2.75
    (Arrival.variance config s);
  let m = Pdf.moments (Arrival.total_pdf config s) in
  check_close ~tol:5e-3 "total-pdf mean matches" 3.0 m.Pdf.m_mean;
  check_close ~tol:2e-2 "total-pdf variance matches" 2.75 m.Pdf.m_var

let test_clark_independent_normals () =
  let config = Config.default in
  let a = arrival (std_normal_resid ()) in
  let b = arrival (std_normal_resid ()) in
  let m = Arrival.max config a b in
  (* X, Y iid N(0,1): E[max] = 1/sqrt(pi), Var[max] = 1 - 1/pi, and
     Clark's moment matching is exact for jointly Gaussian inputs. *)
  check_close ~tol:2e-3 "Clark mean = 1/sqrt(pi)"
    (1.0 /. sqrt Float.pi) (Arrival.mean m);
  check_close ~tol:5e-3 "Clark variance = 1 - 1/pi"
    (1.0 -. (1.0 /. Float.pi))
    (Arrival.variance config m)

let test_clark_correlated_shared_term () =
  let config = Config.default in
  let rho = 0.6 in
  let a = arrival ~terms:[ (key, unit_coeff) ] None in
  let b =
    arrival
      ~terms:[ (key, rho *. unit_coeff) ]
      (Some
         (Dist.truncated_gaussian ~n:400 ~bound:6.0 ~mu:0.0
            ~sigma:(sqrt (1.0 -. (rho *. rho)))
            ()))
  in
  let m = Arrival.max config a b in
  (* Both std normal with correlation rho: E[max] = theta * phi(0) with
     theta = sqrt(2 - 2 rho). *)
  let theta = sqrt (2.0 -. (2.0 *. rho)) in
  check_close ~tol:2e-3 "Clark mean with correlation"
    (theta /. sqrt (2.0 *. Float.pi))
    (Arrival.mean m);
  check_close ~tol:5e-3 "Clark variance with correlation"
    (1.0 -. (theta *. theta /. (2.0 *. Float.pi)))
    (Arrival.variance config m)

let test_grid_max_uniforms () =
  let u () =
    (* zero-mean uniform residual, shifted to U(0,1) via the mean *)
    arrival ~mean:0.5 (Some (Dist.uniform ~n:400 ~lo:(-0.5) ~hi:0.5 ()))
  in
  let m = Arrival.max grid_config (u ()) (u ()) in
  (* X, Y iid U(0,1): max has CDF x^2, mean 2/3, variance 1/18 — a
     shape no Gaussian moment matching can represent exactly. *)
  check_close ~tol:5e-3 "grid max mean = 2/3" (2.0 /. 3.0) (Arrival.mean m);
  check_close ~tol:2e-2 "grid max variance = 1/18" (1.0 /. 18.0)
    (Arrival.variance grid_config m)

let test_grid_max_vs_mc () =
  let a = arrival ~mean:0.2 (std_normal_resid ()) in
  let b = arrival ~mean:0.0 (Some (Dist.uniform ~n:400 ~lo:(-1.5) ~hi:1.5 ())) in
  let pa = Arrival.total_pdf grid_config a
  and pb = Arrival.total_pdf grid_config b in
  let m = Arrival.max grid_config a b in
  let n = 4000 in
  let rng = Rng.create 7 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Float.max (Pdf.sample pa rng) (Pdf.sample pb rng)
  done;
  let mc_mean = !acc /. float_of_int n in
  (* 4 standard errors of the n-sample mean, plus grid slack. *)
  let se = sqrt (Arrival.variance grid_config m /. float_of_int n) in
  check_close_abs
    ~tol:((4.0 *. se) +. 0.01)
    "grid max mean within the MC confidence band" mc_mean (Arrival.mean m)

(* --- correlation preservation ------------------------------------------ *)

let test_correlation_preserved_at_merge () =
  (* A = S + Xa, B = S + Xb with a dominant shared S: the true max is
     S + max(Xa, Xb), so E[max] barely exceeds the means.  Clark sees
     the covariance through the shared term; the grid-exact policy
     assumes independence and inflates the mean by an order of
     magnitude. *)
  let branch_sigma = 0.1 in
  let branch () =
    arrival
      ~terms:[ (key, unit_coeff) ]
      (Some
         (Dist.truncated_gaussian ~n:400 ~bound:6.0 ~mu:0.0
            ~sigma:branch_sigma ()))
  in
  let truth = branch_sigma /. sqrt Float.pi in
  let clark = Arrival.max Config.default (branch ()) (branch ()) in
  let grid = Arrival.max grid_config (branch ()) (branch ()) in
  check_close ~tol:3e-3 "Clark mean matches the correlated closed form"
    truth (Arrival.mean clark);
  check_true "independent grid max overestimates the correlated mean"
    (Arrival.mean grid -. truth > 5.0 *. Float.abs (Arrival.mean clark -. truth));
  (* Both policies preserve the shared sensitivity itself: the merged
     arrival still carries the full unit coefficient on the shared key. *)
  List.iter
    (fun (name, m) ->
      match Hashtbl.find_opt m.Arrival.canon.Block_based.terms key with
      | None -> Alcotest.failf "%s max dropped the shared term" name
      | Some c ->
          check_close ~tol:1e-9
            (name ^ " max blends the shared coefficient to unity")
            unit_coeff c)
    [ ("clark", clark); ("grid", grid) ]

let diamond () =
  let b = Netlist.Builder.create "diamond" in
  let i1 = Netlist.Builder.add_input b "a" in
  let i2 = Netlist.Builder.add_input b "b" in
  let g1 = Netlist.Builder.add_gate b (Gate.Nand 2) [ i1; i2 ] in
  let g2 = Netlist.Builder.add_gate b Gate.Inv [ g1 ] in
  let g3 = Netlist.Builder.add_gate b Gate.Inv [ g1 ] in
  let g4 = Netlist.Builder.add_gate b (Gate.Nand 2) [ g2; g3 ] in
  Netlist.Builder.mark_output b g4;
  Netlist.Builder.finish b

let test_diamond_vs_mc () =
  let c = diamond () in
  let pl = Placement.place c in
  let r = Engine.analyze ~config:Config.default ~placement:pl c in
  let s = Monte_carlo.sampler Config.default r.Engine.sta.Sta.graph pl in
  let samples =
    Monte_carlo.circuit_delay_samples s ~n:4000 (Rng.create 1234)
  in
  let n = float_of_int (Array.length samples) in
  let mc_mean = Array.fold_left ( +. ) 0.0 samples /. n in
  let mc_var =
    Array.fold_left
      (fun acc d -> acc +. ((d -. mc_mean) *. (d -. mc_mean)))
      0.0 samples
    /. (n -. 1.0)
  in
  let mc_std = sqrt mc_var in
  (* Through the reconvergent diamond the two merge operands share
     every layer term of g1 and of the common partitions; Clark's max
     must stay on the MC answer. *)
  check_close ~tol:0.02 "diamond block mean tracks MC" mc_mean r.Engine.mean;
  check_close ~tol:0.25 "diamond block sigma tracks MC" mc_std r.Engine.std;
  check_true "variance splits into inter + intra (Eq. 14)"
    (Float.abs
       ((r.Engine.inter_sigma *. r.Engine.inter_sigma)
       +. (r.Engine.intra_sigma *. r.Engine.intra_sigma)
       -. (r.Engine.std *. r.Engine.std))
    <= 1e-9 *. r.Engine.std *. r.Engine.std);
  (* The grid policy still runs the diamond; ignoring the merge
     correlation can only push the max mean up. *)
  let g = Engine.analyze ~config:grid_config ~placement:pl c in
  check_true "independent-max mean is not below Clark's"
    (g.Engine.mean >= r.Engine.mean -. (1e-6 *. r.Engine.mean))

(* --- containment in the affine envelope -------------------------------- *)

let test_block_within_affine_envelope =
  qcheck ~count:8 "block answer falls inside the affine envelope"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let c =
        Generators.random_layered ~name:"blockenv" ~inputs:6 ~outputs:3
          ~gates:40 ~depth:6 ~seed ()
      in
      let sta = Sta.analyze c in
      match Affine.compute fast_config sta.Sta.graph with
      | Error _ -> false
      | Ok aff ->
          let env =
            Affine.concretize ~trunc:aff.Affine.trunc aff.Affine.circuit
          in
          let slack = 1e-6 *. Interval.magnitude env in
          let r = Engine.analyze ~config:fast_config c in
          Interval.contains ~slack env r.Engine.mean
          && Interval.contains ~slack env r.Engine.confidence_point)

(* --- determinism ------------------------------------------------------- *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json_byte_identity () =
  let c = small_adder () in
  let pl = Placement.place c in
  List.iter
    (fun (name, config) ->
      let r1 = Engine.analyze ~config ~placement:pl c in
      let r2 =
        Ssta_parallel.Pool.with_pool ~jobs:4 (fun _pool ->
            Engine.analyze ~config ~placement:pl c)
      in
      Alcotest.(check string)
        (name ^ " report is byte-identical across worker counts")
        (Engine.json_report r1) (Engine.json_report r2);
      check_true
        (name ^ " report names the engine")
        (contains_substring (Engine.json_report r1) "\"engine\":\"block\""))
    [ ("clark", fast_config);
      ("grid", { fast_config with Config.block_max = Config.Grid_max }) ]

let suite =
  ( "block",
    [ case "statistical sum adds moments and covariance" test_sum_moments;
      case "Clark max of independent normals vs closed form"
        test_clark_independent_normals;
      case "Clark max of correlated operands vs closed form"
        test_clark_correlated_shared_term;
      case "grid max of uniforms vs closed form" test_grid_max_uniforms;
      case "grid max vs Monte Carlo" test_grid_max_vs_mc;
      case "merge preserves shared-term correlation"
        test_correlation_preserved_at_merge;
      slow_case "reconvergent diamond tracks Monte Carlo"
        test_diamond_vs_mc;
      test_block_within_affine_envelope;
      case "block JSON report byte-identical across jobs"
        test_json_byte_identity ] )
