(* The affine-arrival abstract domain: transfer-function algebra, the
   hulled (distribution-free) maximum vs the naive Gaussian Clark max,
   refinement of the interval domain along explicit paths, Monte-Carlo
   containment of the circuit form, byte-identity of screened
   enumeration, and the criticality ranking. *)

module Generators = Ssta_circuit.Generators
module Placement = Ssta_circuit.Placement
module Params = Ssta_tech.Params
module Rng = Ssta_prob.Rng
module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Config = Ssta_core.Config
module Monte_carlo = Ssta_core.Monte_carlo
module Interval = Ssta_check.Interval
module Arrival_bounds = Ssta_check.Arrival_bounds
module Affine = Ssta_check.Affine
open Helpers

let num_rvs = List.length Params.all_rvs

(* A hand-built form: center [c], one singleton coefficient [a] on the
   first RV, everything else zero. *)
let simple_form ?(intra = 0.0) ?(residual = Interval.zero) c a =
  let coeffs = Array.make num_rvs (Interval.singleton 0.0) in
  coeffs.(0) <- Interval.singleton a;
  Affine.Form { Affine.center = c; coeffs; intra_sigma = intra; residual }

let range_exn = function
  | Interval.Range { lo; hi } -> (lo, hi)
  | Interval.Bottom -> Alcotest.fail "unexpected bottom interval"

(* --- transfer-function algebra --------------------------------------- *)

let test_const_add_scale () =
  let trunc = 3.0 in
  let lo, hi = range_exn (Affine.concretize ~trunc (Affine.const 5.0)) in
  check_close "const concretizes to a point (lo)" 5.0 lo;
  check_close "const concretizes to a point (hi)" 5.0 hi;
  check_close "const has no variance" 0.0
    (Affine.sigma_upper (Affine.const 5.0));
  let f = simple_form 2.0 0.5 in
  let g = simple_form 1.0 (-0.25) in
  let lo, hi = range_exn (Affine.concretize ~trunc (Affine.add f g)) in
  (* Coefficients add before taking magnitudes: 0.5 - 0.25 = 0.25. *)
  check_close "add cancels opposite coefficients (lo)"
    (3.0 -. (trunc *. 0.25)) lo;
  check_close "add cancels opposite coefficients (hi)"
    (3.0 +. (trunc *. 0.25)) hi;
  check_true "add absorbs bottom"
    (Affine.add f Affine.Bottom = Affine.Bottom);
  (* Negative scaling flips the coefficient but not the envelope width. *)
  let s = Affine.scale (-2.0) f in
  let lo, hi = range_exn (Affine.concretize ~trunc s) in
  check_close "scale -2 (lo)" (-4.0 -. (trunc *. 1.0)) lo;
  check_close "scale -2 (hi)" (-4.0 +. (trunc *. 1.0)) hi;
  check_close "scale doubles sigma" (2.0 *. Affine.sigma_upper f)
    (Affine.sigma_upper s)

let test_join_is_hull () =
  let trunc = 3.0 in
  let f = simple_form 2.0 0.5 in
  let g = simple_form 1.0 (-0.25) in
  let j = Affine.join f g in
  let cj = Affine.concretize ~trunc j in
  (* The join abstracts the pointwise maximum: max(f(x), g(x)) must land
     inside the joined envelope for every x in the truncation box (the
     low side of g alone need not — max(f,g) >= f pointwise). *)
  let eval c a x = c +. (a *. x) in
  for i = -6 to 6 do
    let x = float_of_int i /. 6.0 *. trunc in
    let m = Float.max (eval 2.0 0.5 x) (eval 1.0 (-0.25) x) in
    check_true "pointwise max inside joined envelope"
      (Interval.contains ~slack:1e-12 cj m)
  done;
  let hi iv = snd (range_exn iv) in
  check_true "joined upper envelope dominates both"
    (hi cj >= hi (Affine.concretize ~trunc f) -. 1e-12
    && hi cj >= hi (Affine.concretize ~trunc g) -. 1e-12);
  check_true "bottom is join identity" (Affine.join Affine.Bottom f = f);
  check_true "join is max" (Affine.equal (Affine.max f g) j)

let test_widen () =
  let f = simple_form 2.0 0.5 in
  check_true "stable form not widened"
    (Affine.equal (Affine.widen ~prev:f ~next:f) f);
  let grown = simple_form 3.0 0.5 in
  match Affine.widen ~prev:f ~next:grown with
  | Affine.Form w ->
      check_true "grown center escapes to infinity"
        (w.Affine.center = Float.infinity)
  | Affine.Bottom -> Alcotest.fail "widen returned bottom"

(* --- the hulled max is sound where the Gaussian Clark max is not ------ *)

(* A = a*X and B = -a*X with X standard normal are perfectly
   anti-correlated: max(A, B) = a*|X|, whose supremum over the
   truncation box |X| <= 6 is 6a.  Clark's formulas under the
   independence (rho = 0) assumption give mean 2a*phi(0) ~ 0.798a and
   std ~ 0.603a, so even the mean + 6 sigma quantile (~4.41a) is below
   the true supremum — a naive Gaussian max would certify an envelope
   that MC samples escape.  The hulled max keeps the full 6a. *)
let test_hulled_max_vs_clark () =
  let a = 1.0 and trunc = 6.0 in
  let f = simple_form 0.0 a in
  let g = simple_form 0.0 (-.a) in
  let true_sup = trunc *. a in
  let clark_mean = 2.0 *. a *. 0.3989422804014327 in
  let clark_std = sqrt (Float.max 0.0 ((a *. a) -. (clark_mean *. clark_mean))) in
  let clark_envelope = clark_mean +. (trunc *. clark_std) in
  check_true "naive Clark 6-sigma quantile is below the true supremum"
    (clark_envelope < true_sup -. 1.0);
  let _, hi = range_exn (Affine.concretize ~trunc (Affine.max f g)) in
  check_true "hulled max keeps the true supremum"
    (hi >= true_sup -. 1e-12)

(* --- whole-circuit analysis fixture ----------------------------------- *)

let affine_fixture =
  lazy
    (let c = small_adder () in
     let placement = Placement.place c in
     let sta = Sta.analyze c in
     let aff =
       match Affine.compute fast_config sta.Sta.graph with
       | Ok a -> a
       | Error e -> Alcotest.failf "affine analysis failed: %s" e
     in
     let bounds =
       match Arrival_bounds.compute fast_config sta.Sta.graph with
       | Ok b -> b
       | Error e -> Alcotest.failf "interval bounds failed: %s" e
     in
     (c, placement, sta, aff, bounds))

let test_arrival_centers_match_labels () =
  let _, _, sta, aff, _ = Lazy.force affine_fixture in
  (* The forward center arithmetic mirrors Bellman-Ford exactly. *)
  Array.iteri
    (fun id label ->
      match aff.Affine.arrival.(id) with
      | Affine.Bottom -> Alcotest.failf "node %d unreachable" id
      | Affine.Form f ->
          check_close "arrival center = nominal label" label f.Affine.center)
    sta.Sta.labels;
  match aff.Affine.circuit with
  | Affine.Bottom -> Alcotest.fail "circuit form is bottom"
  | Affine.Form f ->
      check_close "circuit center = critical delay" sta.Sta.critical_delay
        f.Affine.center

let test_path_form_vs_intervals () =
  let _, _, sta, aff, bounds = Lazy.force affine_fixture in
  let e = Sta.near_critical ~max_paths:50 sta ~slack:(0.2 *. sta.Sta.critical_delay) in
  check_true "fixture enumerates some paths" (e.Paths.paths <> []);
  List.iter
    (fun p ->
      let iv = Arrival_bounds.path_total bounds p in
      let cf = Affine.concretize ~trunc:aff.Affine.trunc (Affine.path_form aff p) in
      let slack = 1e-9 *. Interval.magnitude cf in
      (* Each gate residual is hulled around the certified corner bound,
         so the affine path envelope contains the interval one — the
         refinement is in the sensitivity split (the coefficients and
         intra bound the interval domain does not have), not in raw
         width. *)
      check_true "certified interval bound inside the affine path envelope"
        (Interval.subset ~slack iv ~of_:cf);
      check_true "nominal path delay inside the affine envelope"
        (Interval.contains ~slack cf p.Paths.delay);
      (* The sensitivity split exists and is non-trivial on every path. *)
      check_true "path form has positive variance bound"
        (Affine.sigma_upper (Affine.path_form aff p) > 0.0))
    e.Paths.paths

let test_mc_inside_circuit_envelope =
  qcheck ~count:10 "MC circuit-delay samples fall inside the affine envelope"
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let _, placement, sta, aff, _ = Lazy.force affine_fixture in
      let s = Monte_carlo.sampler fast_config sta.Sta.graph placement in
      let rng = Rng.create seed in
      let samples = Monte_carlo.circuit_delay_samples s ~n:50 rng in
      let env = Affine.concretize ~trunc:aff.Affine.trunc aff.Affine.circuit in
      let slack = 1e-9 *. Interval.magnitude env in
      Array.for_all (fun d -> Interval.contains ~slack env d) samples)

(* --- static screening -------------------------------------------------- *)

let render (e : Paths.enumeration) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (p : Paths.path) ->
      Buffer.add_string b (Printf.sprintf "%.17g|" p.Paths.delay);
      Array.iter (fun id -> Buffer.add_string b (string_of_int id ^ ","))
        p.Paths.nodes;
      Buffer.add_char b '\n')
    e.Paths.paths;
  Buffer.add_string b
    (Printf.sprintf "explored=%d truncated=%b deadline=%b" e.Paths.explored
       e.Paths.truncated e.Paths.deadline_hit);
  Buffer.contents b

let test_screen_counters () =
  let _, _, sta, aff, _ = Lazy.force affine_fixture in
  let sc = Affine.screen aff sta ~slack:(0.05 *. sta.Sta.critical_delay) in
  check_int "visited = graph size" (Array.length sc.Affine.pruned)
    sc.Affine.nodes_visited;
  check_true "pruned <= visited" (sc.Affine.nodes_pruned <= sc.Affine.nodes_visited);
  match Affine.screen_counters sc with
  | [ (p, pv); (v, vv) ] ->
      Alcotest.(check string) "counter order" "affine-screen-nodes-pruned" p;
      Alcotest.(check string) "counter order" "affine-screen-nodes-visited" v;
      check_int "pruned counter" sc.Affine.nodes_pruned pv;
      check_int "visited counter" sc.Affine.nodes_visited vv
  | other -> Alcotest.failf "expected 2 counters, got %d" (List.length other)

let test_screened_enumeration_identical =
  qcheck ~count:8 "screened enumeration is byte-identical on random circuits"
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 2))
    (fun (seed, slack_idx) ->
      let c =
        Generators.random_layered ~name:"screen" ~inputs:6 ~outputs:3
          ~gates:40 ~depth:6 ~seed ()
      in
      let sta = Sta.analyze c in
      match Affine.compute fast_config sta.Sta.graph with
      | Error _ -> false
      | Ok aff ->
          let slack =
            [| 0.01; 0.05; 0.15 |].(slack_idx) *. sta.Sta.critical_delay
          in
          let sc = Affine.screen aff sta ~slack in
          let base = Sta.near_critical ~max_paths:500 sta ~slack in
          let pruned =
            Sta.near_critical ~max_paths:500
              ~prune:(Affine.prune_hook sc) sta ~slack
          in
          String.equal (render base) (render pruned))

(* --- criticality ------------------------------------------------------- *)

let test_criticality_ranking () =
  let _, _, sta, aff, _ = Lazy.force affine_fixture in
  let crits = Affine.criticality aff sta in
  check_true "non-empty" (crits <> []);
  let top = List.hd crits in
  check_close "most critical node has zero slack" 0.0 top.Affine.slack;
  check_close "most critical node has z = 0" 0.0 top.Affine.z;
  check_close "critical probability bound is one half" 0.5 top.Affine.prob
    ~tol:1e-6;
  check_close "top through-center = critical delay" sta.Sta.critical_delay
    top.Affine.through_center;
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        (a.Affine.z < b.Affine.z
        || (a.Affine.z = b.Affine.z && a.Affine.node < b.Affine.node))
        && sorted rest
    | _ -> true
  in
  check_true "sorted by ascending z, node tiebreak" (sorted crits);
  List.iter
    (fun (cr : Affine.crit) ->
      check_true "slack is non-negative" (cr.Affine.slack >= 0.0);
      check_true "probability bound in (0, 0.5 + eps]"
        (cr.Affine.prob > 0.0 && cr.Affine.prob <= 0.5 +. 1e-6))
    crits;
  let json = Affine.criticality_json sta.Sta.graph crits in
  let prefix = "{\n  \"criticality\": [" in
  check_true "json document shape"
    (String.length json > String.length prefix
    && String.equal (String.sub json 0 (String.length prefix)) prefix)

let suite =
  ( "affine",
    [ case "const/add/scale algebra" test_const_add_scale;
      case "join is the componentwise hull" test_join_is_hull;
      case "widen escapes grown components" test_widen;
      case "hulled max sound where Gaussian Clark max is not"
        test_hulled_max_vs_clark;
      case "arrival centers match Bellman-Ford labels"
        test_arrival_centers_match_labels;
      case "path forms vs the interval domain" test_path_form_vs_intervals;
      test_mc_inside_circuit_envelope;
      case "screen counters" test_screen_counters;
      test_screened_enumeration_identical;
      case "criticality ranking" test_criticality_ranking ] )
