(* Command-line driver for the statistical timing analyzer.

   Mirrors the paper's program: read a circuit (a built-in ISCAS85
   substitute, or a .bench file with an optional DEF placement), run the
   statistical methodology, and report delay PDFs, rankings and tables. *)

open Cmdliner
module Iscas85 = Ssta_circuit.Iscas85
module Bench_format = Ssta_circuit.Bench_format
module Def_format = Ssta_circuit.Def_format
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist
module Verilog = Ssta_circuit.Verilog
module Spef = Ssta_circuit.Spef
module Sensitivity = Ssta_tech.Sensitivity
module Convexity = Ssta_tech.Convexity
module Elmore = Ssta_tech.Elmore
module Config = Ssta_core.Config
module Methodology = Ssta_core.Methodology
module Report = Ssta_core.Report
module Ranking = Ssta_core.Ranking
module Path_analysis = Ssta_core.Path_analysis
module Monte_carlo = Ssta_core.Monte_carlo
module Block_based = Ssta_core.Block_based
module Block_engine = Ssta_block.Engine
module Quality_sweep = Ssta_core.Quality_sweep
module Yield = Ssta_core.Yield
module Lint = Ssta_lint.Engine
module Lint_reporter = Ssta_lint.Reporter
module Diagnostic = Ssta_lint.Diagnostic
module Checker = Ssta_check.Checker
module Affine = Ssta_check.Affine
module Impact = Ssta_check.Impact
module Edit = Ssta_circuit.Edit
module Rules_edit = Ssta_lint.Rules_edit
module Json = Ssta_server.Json
module Err = Ssta_runtime.Ssta_error
module Rbudget = Ssta_runtime.Budget
module Fault = Ssta_runtime.Fault
module Health = Ssta_runtime.Health
module Cancel = Ssta_runtime.Cancel
module Backoff = Ssta_runtime.Backoff
module Pool = Ssta_parallel.Pool
module Server = Ssta_server.Server
module Sproto = Ssta_server.Protocol

(* Exit-code convention (documented in the README):
     0  success
     1  analysis or lint errors (parse, structural, numeric, budget)
     2  command-line usage errors
     3  budget degradation under --strict-budget
     4  internal errors (bugs)                                        *)

let ok_or_raise = function Ok v -> v | Error e -> Err.raise_error e

(* Every command body runs under this wrapper: typed errors (and stray
   exceptions, classified by [Err.of_exn]) are printed to stderr and
   mapped to the convention above instead of escaping. *)
let guarded f =
  try f () with
  | exn ->
      let e = Err.of_exn ~context:"ssta-cli" exn in
      Fmt.epr "ssta: error: %a@." Err.pp e;
      Err.exit_code e

let load_circuit ?verilog ~bench ~def name =
  let from_file c =
    let pl =
      match def with
      | Some def_path ->
          let d = ok_or_raise (Def_format.parse_file_res def_path) in
          ok_or_raise (Def_format.placement_of_res d c)
      | None -> Placement.place c
    in
    (c, pl)
  in
  match bench, verilog with
  | Some path, _ -> from_file (ok_or_raise (Bench_format.parse_file_res path))
  | None, Some path -> from_file (ok_or_raise (Verilog.parse_file_res path))
  | None, None -> (
      match Iscas85.by_name name with
      | Some spec -> Iscas85.build_placed spec
      | None ->
          Err.raise_error
            (Err.structural ~subject:"circuit"
               (Printf.sprintf
                  "unknown circuit %S (expected one of %s, or use \
                   --bench/--verilog FILE)"
                  name
                  (String.concat ", " Iscas85.names))))

let config_of ~quality_intra ~quality_inter ~confidence ~corner_k ~max_paths
    ~inter_fraction ~shape ~inter_cache =
  let c = Config.default in
  let c = Config.with_quality c ~intra:quality_intra ~inter:quality_inter in
  let c = Config.with_confidence c confidence in
  let c = Config.with_inter_shape c shape in
  let c = { c with Config.corner_k; max_paths; inter_cache } in
  match inter_fraction with
  | None -> c
  | Some f -> Config.with_budget_split c ~inter_fraction:f

(* Shared options *)
let circuit_arg =
  Arg.(value & pos 0 string "c432" & info [] ~docv:"CIRCUIT"
         ~doc:"Built-in benchmark name (c432 .. c7552).")

let bench_opt =
  Arg.(value & opt (some file) None & info [ "bench" ] ~docv:"FILE"
         ~doc:"Read the circuit from an ISCAS85 .bench file instead.")

let verilog_opt =
  Arg.(value & opt (some file) None & info [ "verilog" ] ~docv:"FILE"
         ~doc:"Read the circuit from a structural Verilog file instead.")

let def_opt =
  Arg.(value & opt (some file) None & info [ "def" ] ~docv:"FILE"
         ~doc:"Read gate (x,y) coordinates from a DEF file.")

let quality_intra_opt =
  Arg.(value & opt int 100 & info [ "quality-intra" ] ~docv:"N"
         ~doc:"Intra-PDF discretization (paper: 100).")

let quality_inter_opt =
  Arg.(value & opt int 50 & info [ "quality-inter" ] ~docv:"N"
         ~doc:"Inter-PDF discretization (paper: 50).")

let confidence_opt =
  Arg.(value & opt float 0.05 & info [ "c"; "confidence" ] ~docv:"C"
         ~doc:"Confidence constant: analyze paths within C*sigma_C.")

let corner_k_opt =
  Arg.(value & opt float Ssta_tech.Corner.default_k
       & info [ "corner-sigma" ] ~docv:"K"
           ~doc:"Worst-case corner multiplier (sigmas).")

let max_paths_opt =
  Arg.(value & opt int 20_000 & info [ "max-paths" ] ~docv:"N"
         ~doc:"Safety cap on near-critical path enumeration.")

let inter_fraction_opt =
  Arg.(value & opt (some float) None & info [ "inter-fraction" ] ~docv:"F"
         ~doc:"Give layer 0 (inter-die) this fraction of the variance; \
               the rest splits equally over the intra layers.")

let no_inter_cache_opt =
  Arg.(value & flag
       & info [ "no-inter-cache" ]
           ~doc:"Disable the scale-covariant inter-kernel cache and \
                 recompute every path's inter PDF from scratch (A/B \
                 escape hatch; statistics agree with the cached run \
                 within 1e-9 relative).")

let shape_opt =
  let shape_conv =
    Arg.enum
      (List.map
         (fun sh -> (Ssta_prob.Shape.name sh, sh))
         Ssta_prob.Shape.all)
  in
  Arg.(value & opt shape_conv Ssta_prob.Shape.Gaussian
       & info [ "shape" ] ~docv:"SHAPE"
           ~doc:"Distribution shape of the inter-die RVs (gaussian, \
                 uniform, triangular).")

let engine_opt =
  let engine_conv =
    Arg.enum (List.map (fun e -> (Config.engine_name e, e)) Config.engines)
  in
  Arg.(value & opt engine_conv Config.Path
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Analysis engine: 'path' (the paper's path-based flow) \
                 or 'block' (one-pass topological propagation with \
                 statistical sum/max; faster on large circuits, \
                 approximate at reconvergent fan-out).")

let max_policy_opt =
  let policy_conv =
    Arg.enum
      (List.map (fun p -> (Config.max_policy_name p, p)) Config.max_policies)
  in
  Arg.(value & opt policy_conv Config.Clark_max
       & info [ "max-policy" ] ~docv:"POLICY"
           ~doc:"Statistical max policy of the block engine: 'clark' \
                 (moment-matched max of correlated Gaussians, sound \
                 under correlation) or 'grid' (grid-exact max assuming \
                 independent operands).")

let wire_opt =
  Arg.(value & flag & info [ "wires" ]
         ~doc:"Use the placement-aware interconnect loading model.")

let spef_opt =
  Arg.(value & opt (some file) None & info [ "spef" ] ~docv:"FILE"
         ~doc:"Annotate net capacitances from a SPEF file.")

let seed_opt =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
         ~doc:"Random seed, threaded into circuit generators, \
               Monte-Carlo sampling and fault injection.")

let jobs_opt =
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for the parallel phases (0 = all \
               available cores).  Results are bit-identical at any \
               value; only wall-clock time changes.")

(* [--jobs 0] means "all cores"; a pool is created either way so the
   parallel code path is always the one exercised.  An explicit worker
   count beyond the host's cores is honored (results are jobs-
   independent) but flagged: the extra domains only time-share. *)
let with_jobs jobs f =
  let cores = Pool.default_jobs () in
  if jobs > cores then
    Fmt.epr
      "warning: --jobs %d on a host with %d core%s; extra domains only \
       time-share the cores (results are unchanged)@."
      jobs cores (if cores = 1 then "" else "s");
  let jobs = if jobs <= 0 then cores else jobs in
  Pool.with_pool ~jobs f

(* Budget options (run command): wall-clock deadline, enumeration cap
   (shared with --max-paths) and PDF cell cap. *)
let deadline_conv =
  let parse s =
    match Rbudget.parse_duration s with
    | Ok v -> Ok v
    | Error e -> Error (`Msg (Err.to_string e))
  in
  Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%gs" v)

let deadline_opt =
  Arg.(value & opt (some deadline_conv) None
       & info [ "deadline" ] ~docv:"DURATION"
           ~doc:"Wall-clock budget for the whole run (e.g. 10s, 500ms, \
                 2m).  On breach the run stops early and returns the \
                 already-analyzed subset, marked degraded.")

let max_cells_opt =
  Arg.(value & opt (some int) None & info [ "max-cells" ] ~docv:"N"
         ~doc:"Cap on PDF discretization cells; tighter QUALITY settings \
               are used (and reported) when the configured ones exceed \
               it.")

let strict_budget_opt =
  Arg.(value & flag & info [ "strict-budget" ]
         ~doc:"Exit with code 3 when the run had to degrade to fit its \
               budget (default: degraded runs exit 0).")

(* lint *)
let lint_cmd =
  let action name bench verilog def spef edits format min_severity budget
      deadline jobs list_rules no_deep =
    guarded @@ fun () ->
    if list_rules then begin
      Lint_reporter.rule_table Fmt.stdout Lint.all_rules;
      0
    end
    else begin
      let parse_diags = ref [] in
      let parse_diag path (pos, msg) =
        parse_diags :=
          Diagnostic.make ~rule:"parse-error" ~severity:Diagnostic.Error
            ~location:
              (Diagnostic.File
                 { path; line = pos.Err.line; col = pos.Err.col })
            msg
          :: !parse_diags
      in
      let circuit =
        try
          Some
            (match (bench, verilog) with
            | Some path, _ -> Bench_format.parse_file path
            | None, Some path -> Verilog.parse_file path
            | None, None -> (
                match Iscas85.by_name name with
                | Some spec -> Iscas85.build spec
                | None ->
                    Fmt.failwith
                      "unknown circuit %S (expected one of %s, or use \
                       --bench/--verilog FILE)"
                      name
                      (String.concat ", " Iscas85.names)))
        with
        | Bench_format.Parse_error (pos, msg) ->
            parse_diag (Option.get bench) (pos, msg);
            None
        | Verilog.Parse_error (pos, msg) ->
            parse_diag (Option.get verilog) (pos, msg);
            None
      in
      let def_t =
        match def with
        | None -> None
        | Some path -> (
            try Some (Def_format.parse_file path)
            with Def_format.Parse_error (pos, msg) ->
              parse_diag path (pos, msg);
              None)
      in
      let spef_t =
        match spef with
        | None -> None
        | Some path -> (
            try Some (Spef.parse_file path)
            with Spef.Parse_error (pos, msg) ->
              parse_diag path (pos, msg);
              None)
      in
      let edits_t =
        match edits with
        | None -> None
        | Some path -> (
            match Ssta_circuit.Edit.parse_file_res path with
            | Ok es -> Some es
            | Error (Err.Parse { pos; message; _ }) ->
                parse_diag path (pos, message);
                None
            | Error e ->
                parse_diag path (Err.no_position, Err.to_string e);
                None)
      in
      let circuit_name =
        match circuit with
        | Some c -> c.Ssta_circuit.Netlist.name
        | None -> name
      in
      let diags =
        match circuit with
        | None -> !parse_diags
        | Some c ->
            let placement =
              match def_t with
              | Some d -> (
                  (* A DEF that fails to convert still gets its own
                     cross-check diagnostics; fall back to no placement. *)
                  try Some (Def_format.placement_of d c)
                  with Invalid_argument _ -> None)
              | None -> Some (Placement.place c)
            in
            let input =
              Lint.input ?placement ?spef:spef_t ?def:def_t ?edits:edits_t
                ?budget_weights:(Option.map Array.of_list budget)
                ?deadline_s:deadline
                ?jobs:(if jobs > 0 then Some jobs else None)
                ~deep:(not no_deep) c
            in
            !parse_diags @ Lint.run input
      in
      let shown = Lint.filter ~min_severity diags in
      (match format with
      | `Text -> Lint_reporter.text ~circuit_name Fmt.stdout shown
      | `Json -> Lint_reporter.json ~circuit_name Fmt.stdout shown
      | `Sarif ->
          Lint_reporter.sarif ~tool:"ssta-lint" ~rules:Lint.all_rules
            ~circuit_name Fmt.stdout shown);
      if Lint.exit_code diags <> 0 then 1 else 0
    end
  in
  let format =
    Arg.(value
         & opt
             (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
             `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: text, json or sarif.")
  in
  let min_severity =
    Arg.(value
         & opt
             (enum
                [ ("error", Diagnostic.Error);
                  ("warning", Diagnostic.Warning);
                  ("info", Diagnostic.Info) ])
             Diagnostic.Info
         & info [ "severity" ] ~docv:"SEV"
             ~doc:"Only report diagnostics at least this severe (the exit \
                   code still reflects all errors).")
  in
  let budget =
    Arg.(value
         & opt (some (list float)) None
         & info [ "budget" ] ~docv:"W0,W1,..."
             ~doc:"Validate raw per-layer variance shares (layer 0 is \
                   inter-die); they must be non-negative and sum to 1.")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ] ~doc:"Print the rule catalogue and exit.")
  in
  let no_deep =
    Arg.(value & flag
         & info [ "no-deep" ]
             ~doc:"Skip the timing-graph / PDF sanity checks.")
  in
  let edits =
    Arg.(value & opt (some file) None
         & info [ "edits" ] ~docv:"FILE"
             ~doc:"Validate an edit script against the circuit and \
                   placement (unknown gates, off-die moves, bad drives, \
                   unknown parameters, no-ops).")
  in
  let lint_jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Validate a planned worker count against the host's \
                   cores (config-jobs warns on oversubscription, e.g. \
                   --jobs 4 on a single-core machine).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis of circuit, placement, SPEF/DEF, edit-script \
             and config inputs; exits 1 when any error-severity \
             diagnostic fires.")
    Term.(const action $ circuit_arg $ bench_opt $ verilog_opt $ def_opt
          $ spef_opt $ edits $ format $ min_severity $ budget $ deadline_opt
          $ lint_jobs $ list_rules $ no_deep)

(* check *)
let check_cmd =
  let action name bench verilog def qi qj c k mp inter_fraction shape
      no_inter_cache format min_severity no_pdfsan path_limit jobs inject
      only impact_edits impact_seed list_checks =
    guarded @@ fun () ->
    if list_checks then begin
      Lint_reporter.rule_table Fmt.stdout Checker.all_checks;
      0
    end
    else begin
      let circuit, placement = load_circuit ?verilog ~bench ~def name in
      let config =
        config_of ~quality_intra:qi ~quality_inter:qj ~confidence:c
          ~corner_k:k ~max_paths:mp ~inter_fraction ~shape
          ~inter_cache:(not no_inter_cache)
      in
      let par_jobs =
        if jobs = 0 then Some (Pool.default_jobs ())
        else if jobs > 1 then Some jobs
        else None
      in
      (* SIGINT/SIGTERM stop the verifier between checks: the completed
         certifications are reported plus a check-interrupted warning. *)
      let signal_latch = Cancel.create () in
      Cancel.on_signals signal_latch;
      let input =
        Checker.input ~config ~placement ~pdfsan:(not no_pdfsan) ~path_limit
          ?par_jobs ?inject ~only ~impact_edits ~impact_seed
          ~should_stop:(fun () -> Cancel.cancelled signal_latch)
          circuit
      in
      let report =
        Fun.protect
          ~finally:(fun () -> Cancel.restore_default_signals ())
          (fun () -> Checker.run input)
      in
      let circuit_name = circuit.Ssta_circuit.Netlist.name in
      let shown = Lint.filter ~min_severity report.Checker.diagnostics in
      (match format with
      | `Text ->
          Lint_reporter.text ~circuit_name Fmt.stdout shown;
          Fmt.pr
            "certified: %d node label(s), %d path(s); %d PDF op(s) audited@."
            report.Checker.nodes_certified report.Checker.paths_certified
            report.Checker.ops_audited
      | `Json -> Lint_reporter.json ~circuit_name Fmt.stdout shown
      | `Sarif ->
          Lint_reporter.sarif ~tool:"ssta-check" ~rules:Checker.all_checks
            ~circuit_name Fmt.stdout shown);
      if Lint.exit_code report.Checker.diagnostics <> 0 then 1 else 0
    end
  in
  let format =
    Arg.(value
         & opt
             (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
             `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: text, json or sarif.")
  in
  let min_severity =
    Arg.(value
         & opt
             (enum
                [ ("error", Diagnostic.Error);
                  ("warning", Diagnostic.Warning);
                  ("info", Diagnostic.Info) ])
             Diagnostic.Info
         & info [ "severity" ] ~docv:"SEV"
             ~doc:"Only report diagnostics at least this severe (the exit \
                   code still reflects all errors).")
  in
  let no_pdfsan =
    Arg.(value & flag
         & info [ "no-pdfsan" ]
             ~doc:"Skip the PDF sanitizer (per-operation shadow-interval \
                   audits of the probabilistic kernel).")
  in
  let path_limit =
    Arg.(value & opt int 64
         & info [ "path-limit" ] ~docv:"N"
             ~doc:"Certify at most N ranked paths against the static \
                   bounds (0 = all); capping is reported as an info \
                   diagnostic.")
  in
  let inject =
    Arg.(value
         & opt
             (some
                (enum
                   [ ("budget", Checker.Bad_budget);
                     ("placement", Checker.Bad_placement);
                     ("pdf", Checker.Corrupt_pdf) ]))
             None
         & info [ "inject" ] ~docv:"FAULT"
             ~doc:"Seed a violation (budget, placement or pdf) before \
                   checking; the verifier must catch it (for tests and \
                   CI).")
  in
  let only =
    let ids_conv =
      let parse s =
        let ids =
          String.split_on_char ',' s
          |> List.map String.trim
          |> List.filter (fun id -> id <> "")
        in
        let known = List.map fst Checker.all_checks in
        match List.find_opt (fun id -> not (List.mem id known)) ids with
        | Some bad ->
            Error
              (`Msg
                 (Printf.sprintf
                    "unknown check id %S (see ssta check --list-checks)" bad))
        | None -> Ok ids
      in
      let print fmt ids = Format.pp_print_string fmt (String.concat "," ids) in
      Arg.conv (parse, print)
    in
    Arg.(value & opt ids_conv []
         & info [ "only" ] ~docv:"ID,..."
             ~doc:"Run only the named checks (comma-separated ids from \
                   --list-checks).  Phases no selected check needs are \
                   skipped, but error-severity diagnostics from the phases \
                   that do run are always reported.")
  in
  let list_checks =
    Arg.(value & flag
         & info [ "list-checks" ]
             ~doc:"Print the check catalogue and exit.")
  in
  let impact_edits =
    Arg.(value & opt int 1
         & info [ "impact-edits" ] ~docv:"N"
             ~doc:"Seeded random edits for the incremental-equivalence \
                   phase (check-impact-equivalence): each is applied to \
                   a warm incremental image and the spliced report is \
                   byte-compared against a from-scratch run.  0 skips \
                   the phase.")
  in
  let impact_seed =
    Arg.(value & opt int 7
         & info [ "impact-seed" ] ~docv:"SEED"
             ~doc:"Seed of the random-edit corpus.")
  in
  let check_jobs =
    Arg.(value & opt int 0
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Also certify parallel determinism: rerun the flow on \
                   an N-worker pool (0 = all cores) and require a \
                   byte-identical report.  --jobs 1 skips the rerun.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Whole-program dataflow verification: interval arrival-time \
             bounds, per-path variance accounting, placement/quad-tree \
             consistency and a PDF sanitizer; exits 1 when any \
             error-severity diagnostic fires.")
    Term.(const action $ circuit_arg $ bench_opt $ verilog_opt $ def_opt
          $ quality_intra_opt $ quality_inter_opt $ confidence_opt
          $ corner_k_opt $ max_paths_opt $ inter_fraction_opt $ shape_opt
          $ no_inter_cache_opt $ format $ min_severity $ no_pdfsan
          $ path_limit $ check_jobs $ inject $ only $ impact_edits
          $ impact_seed $ list_checks)

(* diff *)
let diff_cmd =
  let action name bench verilog def qi qj c k mp inter_fraction shape
      no_inter_cache engine max_policy edits_file edit_ops jobs json verify =
    guarded @@ fun () ->
    let circuit, placement = load_circuit ?verilog ~bench ~def name in
    let config =
      config_of ~quality_intra:qi ~quality_inter:qj ~confidence:c ~corner_k:k
        ~max_paths:mp ~inter_fraction ~shape
        ~inter_cache:(not no_inter_cache)
    in
    let config = { config with Config.engine; block_max = max_policy } in
    let edits =
      match (edits_file, edit_ops) with
      | Some path, [] -> ok_or_raise (Edit.parse_file_res path)
      | None, (_ :: _ as ops) ->
          ok_or_raise (Edit.parse_string_res (String.concat "\n" ops))
      | Some _, _ :: _ ->
          Err.raise_error
            (Err.structural ~subject:"edit"
               "use either --edits FILE or repeated --edit OP, not both")
      | None, [] ->
          Err.raise_error
            (Err.structural ~subject:"edit"
               "no edits given (use --edits FILE or --edit 'resize G1 1.2')")
    in
    (* Lint pre-validation: errors refuse the run before any analysis;
       warnings (no-op edits) are reported and the run proceeds. *)
    let ds = Rules_edit.check ~placement ~config circuit edits in
    if ds <> [] then
      Lint_reporter.text ~circuit_name:circuit.Ssta_circuit.Netlist.name
        Fmt.stderr ds;
    if Lint.has_errors ds then 1
    else if config.Config.engine = Config.Block then begin
      (* Block mode has no per-path cache to splice: every analysis is a
         single topological sweep, so the edited design is simply
         re-analyzed from scratch.  [--verify] is vacuously satisfied
         (the answer *is* the from-scratch run). *)
      ignore jobs;
      let d = Impact.design ~placement ~config circuit in
      let changes = ok_or_raise (Impact.resolve d edits) in
      let d2 = Impact.apply d changes in
      let analyze (d : Impact.design) =
        Block_engine.analyze ~config:d.Impact.config
          ~placement:d.Impact.placement
          ~sta:
            (Ssta_timing.Sta.of_graph
               (Ssta_timing.Graph.with_drives d.Impact.circuit
                  d.Impact.drives))
          d.Impact.circuit
      in
      let t0 = Unix.gettimeofday () in
      let base = analyze d in
      let edited = analyze d2 in
      let wall = Unix.gettimeofday () -. t0 in
      if json then begin
        print_string
          (Json.to_string
             (Json.Obj
                ([ ("circuit", Json.String circuit.Netlist.name);
                   ("edits", Json.String (Edit.describe edits));
                   ("engine", Json.String (Config.engine_name Config.Block));
                   ( "max_policy",
                     Json.String
                       (Config.max_policy_name config.Config.block_max) );
                   ( "base_critical_delay_s",
                     Json.Number
                       base.Block_engine.sta.Ssta_timing.Sta.critical_delay
                   );
                   ("base_mean_s", Json.Number base.Block_engine.mean);
                   ("base_std_s", Json.Number base.Block_engine.std);
                   ( "base_confidence_point_s",
                     Json.Number base.Block_engine.confidence_point );
                   ( "edited_critical_delay_s",
                     Json.Number
                       edited.Block_engine.sta.Ssta_timing.Sta.critical_delay
                   );
                   ("edited_mean_s", Json.Number edited.Block_engine.mean);
                   ("edited_std_s", Json.Number edited.Block_engine.std);
                   ( "edited_confidence_point_s",
                     Json.Number edited.Block_engine.confidence_point );
                   ( "delta_mean_s",
                     Json.Number
                       (edited.Block_engine.mean -. base.Block_engine.mean)
                   );
                   ( "delta_confidence_point_s",
                     Json.Number
                       (edited.Block_engine.confidence_point
                       -. base.Block_engine.confidence_point) );
                   ("reanalysis_s", Json.Number wall) ]
                @ if verify then [ ("verified", Json.Bool true) ] else [])));
        print_newline ()
      end
      else begin
        Fmt.pr "edit impact on %s (block engine): %s@." circuit.Netlist.name
          (Edit.describe edits);
        Fmt.pr "  base:   mean %.3f ps, sigma %.3f ps, confidence %.3f ps@."
          (Elmore.ps base.Block_engine.mean)
          (Elmore.ps base.Block_engine.std)
          (Elmore.ps base.Block_engine.confidence_point);
        Fmt.pr "  edited: mean %.3f ps, sigma %.3f ps, confidence %.3f ps@."
          (Elmore.ps edited.Block_engine.mean)
          (Elmore.ps edited.Block_engine.std)
          (Elmore.ps edited.Block_engine.confidence_point);
        Fmt.pr "  delta:  mean %+.3f ps, confidence %+.3f ps@."
          (Elmore.ps
             (edited.Block_engine.mean -. base.Block_engine.mean))
          (Elmore.ps
             (edited.Block_engine.confidence_point
             -. base.Block_engine.confidence_point));
        Fmt.pr "  edit-to-answer %.3f s (two full sweeps)@." wall;
        if verify then
          Fmt.pr "  verified: block analyses are from-scratch by design@."
      end;
      0
    end
    else
      with_jobs jobs @@ fun pool ->
      let d = Impact.design ~placement ~config circuit in
      let t0 = Unix.gettimeofday () in
      let state, _baseline = ok_or_raise (Impact.init ~pool d) in
      let full_s = Unix.gettimeofday () -. t0 in
      let t1 = Unix.gettimeofday () in
      let o = ok_or_raise (Impact.reanalyze ~pool state edits) in
      let incr_s = Unix.gettimeofday () -. t1 in
      let verified =
        if not verify then None
        else begin
          let m2 =
            ok_or_raise (Impact.scratch ~pool (Impact.design_of state))
          in
          Some (Report.json_report o.Impact.report = Report.json_report m2)
        end
      in
      let m = o.Impact.report in
      let cone = o.Impact.cone in
      let endpoints =
        List.map
          (Netlist.node_name circuit)
          cone.Impact.affected_endpoints
      in
      let critical_delay = m.Methodology.sta.Ssta_timing.Sta.critical_delay in
      let confidence_point =
        m.Methodology.prob_critical.Ranking.analysis
          .Path_analysis.confidence_point
      in
      if json then begin
        let jint i = Json.Number (float_of_int i) in
        print_string
          (Json.to_string
             (Json.Obj
                ([ ("circuit", Json.String circuit.Netlist.name);
                   ("edits", Json.String (Edit.describe edits));
                   ("dirty_nodes", jint cone.Impact.dirty_count);
                   ("cone_nodes", jint cone.Impact.cone_nodes);
                   ( "affected_endpoints",
                     Json.List (List.map (fun e -> Json.String e) endpoints)
                   );
                   ("full_invalidation", Json.Bool cone.Impact.full);
                   ("invalidated", jint o.Impact.invalidated);
                   ("reused", jint o.Impact.reused);
                   ("reanalyzed", jint o.Impact.reanalyzed);
                   ("paths", jint (Methodology.num_critical_paths m));
                   ("critical_delay_s", Json.Number critical_delay);
                   ("sigma_c_s", Json.Number m.Methodology.sigma_c);
                   ("confidence_point_s", Json.Number confidence_point);
                   ("init_s", Json.Number full_s);
                   ("incremental_s", Json.Number incr_s) ]
                @
                match verified with
                | None -> []
                | Some v -> [ ("verified", Json.Bool v) ])));
        print_newline ()
      end
      else begin
        Fmt.pr "edit impact on %s: %s@." circuit.Netlist.name
          (Edit.describe edits);
        Fmt.pr "  dirty nodes %d; dependence cone %d of %d nodes%s@."
          cone.Impact.dirty_count cone.Impact.cone_nodes
          (Netlist.num_nodes circuit)
          (if cone.Impact.full then
             " (parameter delta: full cache invalidation)"
           else "");
        let shown = List.filteri (fun i _ -> i < 8) endpoints in
        Fmt.pr "  affected endpoints (%d): %s%s@." (List.length endpoints)
          (String.concat ", " shown)
          (if List.length endpoints > 8 then ", ..." else "");
        Fmt.pr "  path cache: %d invalidated, %d reused, %d reanalyzed@."
          o.Impact.invalidated o.Impact.reused o.Impact.reanalyzed;
        Fmt.pr
          "  %d paths; critical delay %.3f ps, sigma_C %.3f ps, \
           confidence point %.3f ps@."
          (Methodology.num_critical_paths m)
          (Elmore.ps critical_delay)
          (Elmore.ps m.Methodology.sigma_c)
          (Elmore.ps confidence_point);
        Fmt.pr "  edit-to-answer %.3f s vs %.3f s full baseline (%.1fx)@."
          incr_s full_s
          (if incr_s > 0.0 then full_s /. incr_s else Float.infinity)
      end;
      match verified with
      | Some false ->
          Fmt.epr
            "ssta: error: incremental report diverges from the \
             from-scratch run@.";
          1
      | Some true ->
          if not json then
            Fmt.pr "  verified: byte-identical to a from-scratch run@.";
          0
      | None -> 0
  in
  let edits_file =
    Arg.(value & opt (some file) None
         & info [ "edits" ] ~docv:"FILE"
             ~doc:"Read the edit script from a file (one op per line: \
                   resize GATE DRIVE, retype GATE KIND, move GATE X Y, \
                   set PARAM VALUE; '#' comments).")
  in
  let edit_ops =
    Arg.(value & opt_all string []
         & info [ "e"; "edit" ] ~docv:"OP"
             ~doc:"Give one edit op inline (repeatable; ops apply in \
                   order).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the impact report as JSON.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Also run the edited design from scratch and require \
                   the incremental report to be byte-identical (exit 1 \
                   on divergence).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Change-impact analysis: apply an edit script (gate \
             resize/retype, cell move, parameter delta), compute the \
             static dependence cone of the change, and re-analyze \
             incrementally — cached per-path results outside the cone \
             are reused and the spliced report is byte-identical to a \
             from-scratch run.")
    Term.(const action $ circuit_arg $ bench_opt $ verilog_opt $ def_opt
          $ quality_intra_opt $ quality_inter_opt $ confidence_opt
          $ corner_k_opt $ max_paths_opt $ inter_fraction_opt $ shape_opt
          $ no_inter_cache_opt $ engine_opt $ max_policy_opt $ edits_file
          $ edit_ops $ jobs_opt $ json $ verify)

(* run *)
let run_cmd =
  let action name bench verilog def spef qi qj c k mp inter_fraction shape
      no_inter_cache engine max_policy wires deadline max_cells strict_budget
      jobs no_affine_prune criticality json verbose =
    guarded @@ fun () ->
    let circuit, placement = load_circuit ?verilog ~bench ~def name in
    let config =
      config_of ~quality_intra:qi ~quality_inter:qj ~confidence:c ~corner_k:k
        ~max_paths:mp ~inter_fraction ~shape
        ~inter_cache:(not no_inter_cache)
    in
    let config = { config with Config.affine_prune = not no_affine_prune } in
    let config = { config with Config.engine; block_max = max_policy } in
    if config.Config.engine = Config.Block then begin
      (* Block mode: one topological sweep, no enumeration — the budget,
         screening and wire options of the path flow do not apply. *)
      let r = Block_engine.analyze ~config ~placement circuit in
      if json then begin
        print_string (Block_engine.json_report r);
        print_newline ()
      end
      else begin
        Fmt.pr "%a" Block_engine.pp_summary r;
        if verbose then Fmt.pr "%a" Block_engine.pp_endpoints r
      end;
      0
    end
    else
    let budget =
      Rbudget.make ?deadline_s:deadline ?max_cells ~max_paths:mp ()
    in
    let wire = if wires then Some Ssta_tech.Wire.default else None in
    let spef_t =
      Option.map (fun p -> ok_or_raise (Spef.parse_file_res p)) spef
    in
    (* Automatic pre-analysis lint: report (warnings only, never fatal)
       so malformed inputs are called out before they skew the PDFs. *)
    let lint_ds =
      Lint.run
        (Lint.input ~placement ?spef:spef_t ~config ?deadline_s:deadline
           ~deep:false circuit)
    in
    let visible =
      Lint.filter ~min_severity:Diagnostic.Warning lint_ds
    in
    if visible <> [] then
      Lint_reporter.text ~circuit_name:circuit.Ssta_circuit.Netlist.name
        Fmt.stderr visible;
    let wire_caps =
      Option.map (fun s -> ok_or_raise (Spef.apply_res s circuit)) spef_t
    in
    let screen =
      if config.Config.affine_prune then
        Some (Affine.methodology_screen config)
      else None
    in
    (* SIGINT/SIGTERM land in a cooperative latch: the run finishes the
       path in flight, keeps the analyzed prefix, and the report below
       is emitted in full (marked degraded) instead of dying mid-write. *)
    let signal_latch = Cancel.create () in
    Cancel.on_signals signal_latch;
    let m =
      Fun.protect
        ~finally:(fun () -> Cancel.restore_default_signals ())
        (fun () ->
          with_jobs jobs (fun pool ->
              ok_or_raise
                (Methodology.analyze ~config ~budget
                   ~cancelled:(fun () -> Cancel.cancelled signal_latch)
                   ~placement ?wire ?wire_caps ?screen ~pool circuit)))
    in
    (match Cancel.reason signal_latch with
    | None -> ()
    | Some r ->
        Health.counter_set m.Methodology.health ("signal-" ^ r) 1;
        Fmt.epr
          "ssta: interrupted by %s; the report covers the analyzed prefix@."
          r);
    if criticality then begin
      let sta = m.Methodology.sta in
      let graph = sta.Ssta_timing.Sta.graph in
      match Affine.compute m.Methodology.config graph with
      | Error msg ->
          Err.raise_error
            (Err.structural ~subject:"affine"
               ("criticality report unavailable: " ^ msg))
      | Ok aff ->
          let crits = Affine.criticality aff sta in
          if json then begin
            print_string (Affine.criticality_json graph crits);
            print_newline ()
          end
          else begin
            Fmt.pr "%a" (Affine.pp_criticality ~top:20 graph) crits;
            if verbose then
              match crits with
              | c :: _ ->
                  Fmt.pr "most critical node %s: through-form %a@."
                    (Ssta_circuit.Netlist.node_name circuit c.Affine.node)
                    Affine.pp
                    (Affine.through aff c.Affine.node)
              | [] -> ()
          end
    end
    else if json then begin
      print_string (Report.json_report m);
      print_newline ()
    end
    else begin
      Report.pp_table2_header Fmt.stdout ();
      Report.pp_table2_row Fmt.stdout (Report.table2_row m);
      if
        Methodology.is_degraded m
        || not (Health.is_clean m.Methodology.health)
      then Report.pp_run_status Fmt.stdout m
    end;
    if verbose && not json then begin
      let d = m.Methodology.det_critical in
      Fmt.pr "deterministic critical path: delay %.3f ps, %d gates@."
        (Elmore.ps d.Path_analysis.det_delay)
        d.Path_analysis.gate_count;
      Fmt.pr "  intra sigma %.3f ps, inter sigma %.3f ps, total %.3f ps@."
        (Elmore.ps d.Path_analysis.intra_sigma)
        (Elmore.ps d.Path_analysis.inter_sigma)
        (Elmore.ps d.Path_analysis.std);
      Fmt.pr "  probabilistic mean shift %+.4f ps (nonlinearity)@."
        (Elmore.ps (d.Path_analysis.mean -. d.Path_analysis.det_delay));
      Fmt.pr "rank correlation (det vs prob): %.4f; max rank change: %d@."
        (Ranking.rank_correlation m.Methodology.ranked)
        (Ranking.max_rank_change m.Methodology.ranked);
      (match Health.counter m.Methodology.health "inter-cache-lookups" with
      | 0 -> Fmt.pr "inter-kernel cache: disabled@."
      | lookups ->
          Fmt.pr
            "inter-kernel cache: %d lookups, %d distinct directions, %d \
             hits@."
            lookups
            (Health.counter m.Methodology.health "inter-cache-distinct")
            (Health.counter m.Methodology.health "inter-cache-hits"));
      let top = Int.min 10 (Array.length m.Methodology.ranked) in
      Fmt.pr "top %d paths by 3-sigma point:@." top;
      for i = 0 to top - 1 do
        let r = m.Methodology.ranked.(i) in
        Fmt.pr "  prob#%-4d det#%-4d 3sig %.3f ps mean %.3f ps gates %d@."
          r.Ranking.prob_rank r.Ranking.det_rank
          (Elmore.ps r.Ranking.analysis.Path_analysis.confidence_point)
          (Elmore.ps r.Ranking.analysis.Path_analysis.mean)
          r.Ranking.analysis.Path_analysis.gate_count
      done
    end;
    if strict_budget && Methodology.is_degraded m then 3 else 0
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print path details.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the deterministic JSON report instead of the \
                   table: byte-identical across --jobs values for the \
                   same inputs.")
  in
  let no_affine_prune =
    Arg.(value & flag
         & info [ "no-affine-prune" ]
             ~doc:"Disable the affine path screener during near-critical \
                   enumeration (A/B escape hatch; the report is \
                   byte-identical either way, pruning only saves work).")
  in
  let criticality =
    Arg.(value & flag
         & info [ "criticality" ]
             ~doc:"Report per-node statistical criticality from the affine \
                   forward/backward pass (slack, sensitivity-bounded sigma \
                   and a criticality-probability upper bound) instead of \
                   the Table-2 row.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Run the full statistical methodology.")
    Term.(const action $ circuit_arg $ bench_opt $ verilog_opt $ def_opt
          $ spef_opt $ quality_intra_opt $ quality_inter_opt $ confidence_opt
          $ corner_k_opt $ max_paths_opt $ inter_fraction_opt $ shape_opt
          $ no_inter_cache_opt $ engine_opt $ max_policy_opt $ wire_opt
          $ deadline_opt $ max_cells_opt $ strict_budget_opt $ jobs_opt
          $ no_affine_prune $ criticality $ json $ verbose)

(* table2 *)
let table2_cmd =
  let action only mp =
    guarded @@ fun () ->
    let specs =
      match only with
      | [] -> Iscas85.all
      | names ->
          List.filter_map Iscas85.by_name names
    in
    Report.pp_table2_header Fmt.stdout ();
    List.iter
      (fun (spec : Iscas85.spec) ->
        let circuit, placement = Iscas85.build_placed spec in
        let config =
          Config.with_confidence Config.default
            spec.Iscas85.paper.Iscas85.confidence
        in
        let config = { config with Config.max_paths = mp } in
        let m = Methodology.run ~config ~placement circuit in
        Report.pp_table2_row Fmt.stdout (Report.table2_row m))
      specs;
    0
  in
  let only =
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"NAME"
           ~doc:"Restrict to the given benchmarks (repeatable).")
  in
  Cmd.v (Cmd.info "table2" ~doc:"Regenerate Table 2 over the benchmark suite.")
    Term.(const action $ only $ max_paths_opt)

(* table3 *)
let table3_cmd =
  let action name mp c =
    guarded @@ fun () ->
    let circuit, placement = load_circuit ~bench:None ~def:None name in
    Report.pp_table3_header Fmt.stdout ();
    List.iter
      (fun (scenario, inter_fraction) ->
        let config =
          Config.with_budget_split (Config.with_confidence Config.default c)
            ~inter_fraction
        in
        let config = { config with Config.max_paths = mp } in
        let m = Methodology.run ~config ~placement circuit in
        Report.pp_table3_row Fmt.stdout
          (Report.table3_row ~scenario ~inter_fraction m))
      [ ("only intra-die", 0.0); ("50% inter, 50% intra", 0.5);
        ("75% inter, 25% intra", 0.75) ];
    0
  in
  let c =
    Arg.(value & opt float 0.2 & info [ "c"; "confidence" ] ~docv:"C"
           ~doc:"Confidence constant for the path counts.")
  in
  Cmd.v (Cmd.info "table3" ~doc:"Regenerate the inter/intra split study.")
    Term.(const action $ circuit_arg $ max_paths_opt $ c)

(* sensitivity *)
let sensitivity_cmd =
  let action () =
    guarded @@ fun () ->
    Sensitivity.pp_table Fmt.stdout (Sensitivity.table1 ());
    0
  in
  Cmd.v (Cmd.info "sensitivity" ~doc:"Regenerate Table 1 (delay sensitivities).")
    Term.(const action $ const ())

(* convexity *)
let convexity_cmd =
  let action () =
    guarded @@ fun () ->
    Convexity.pp_table Fmt.stdout
      (List.map (fun g -> Convexity.analyze g) Sensitivity.table1_gates);
    0
  in
  Cmd.v (Cmd.info "convexity" ~doc:"Check the Section 2.5 convexity claim.")
    Term.(const action $ const ())

(* sweep *)
let sweep_cmd =
  let action name bench def =
    guarded @@ fun () ->
    let circuit, _ = load_circuit ~bench ~def name in
    let sweep = Quality_sweep.run circuit in
    Quality_sweep.pp Fmt.stdout sweep;
    let k = Quality_sweep.knee sweep in
    Fmt.pr "knee: Qintra=%d Qinter=%d (err %.4f%%, %.4f s)@."
      k.Quality_sweep.quality_intra k.Quality_sweep.quality_inter
      k.Quality_sweep.error_pct k.Quality_sweep.runtime_s;
    0
  in
  Cmd.v (Cmd.info "sweep" ~doc:"QUALITY accuracy/run-time trade-off study.")
    Term.(const action $ circuit_arg $ bench_opt $ def_opt)

(* mc *)
let mc_cmd =
  let action name samples seed jobs =
    guarded @@ fun () ->
    let circuit, placement = load_circuit ~bench:None ~def:None name in
    let sta = Ssta_timing.Sta.analyze circuit in
    let ctx =
      Path_analysis.context Config.default sta.Ssta_timing.Sta.graph placement
    in
    let a = Path_analysis.analyze ctx sta.Ssta_timing.Sta.critical_path in
    let sampler =
      Monte_carlo.sampler Config.default sta.Ssta_timing.Sta.graph placement
    in
    (* SIGINT/SIGTERM finish the shard in flight and summarize the
       completed prefix instead of dying mid-run. *)
    let signal_latch = Cancel.create () in
    Cancel.on_signals signal_latch;
    let v =
      Fun.protect
        ~finally:(fun () -> Cancel.restore_default_signals ())
        (fun () ->
          with_jobs jobs (fun pool ->
              Monte_carlo.validate_path_sharded ~n:samples ~pool
                ~should_stop:(fun () -> Cancel.cancelled signal_latch)
                ~seed sampler a))
    in
    let drawn = v.Monte_carlo.sampled.Ssta_prob.Stats.count in
    (match Cancel.reason signal_latch with
    | Some r when drawn < samples ->
        Fmt.epr
          "ssta: interrupted by %s after %d of %d samples; summarizing \
           the completed shards@."
          r drawn samples
    | _ -> ());
    Fmt.pr "critical path of %s, %d exact Monte-Carlo samples:@." name drawn;
    Fmt.pr "  analytic: mean %.3f ps, std %.3f ps@."
      (Elmore.ps a.Path_analysis.mean)
      (Elmore.ps a.Path_analysis.std);
    Fmt.pr "  sampled : mean %.3f ps, std %.3f ps@."
      (Elmore.ps v.Monte_carlo.sampled.Ssta_prob.Stats.mean)
      (Elmore.ps v.Monte_carlo.sampled.Ssta_prob.Stats.std);
    Fmt.pr "  |mean err| %.4f ps, |std err| %.4f ps, KS %.4f@."
      (Elmore.ps v.Monte_carlo.mean_err)
      (Elmore.ps v.Monte_carlo.std_err)
      v.Monte_carlo.ks;
    0
  in
  let samples =
    Arg.(value & opt int 20_000 & info [ "n" ] ~docv:"N"
           ~doc:"Number of Monte-Carlo samples.")
  in
  Cmd.v (Cmd.info "mc" ~doc:"Validate the analytic path PDF against exact \
                             Monte-Carlo sampling.")
    Term.(const action $ circuit_arg $ samples $ seed_opt $ jobs_opt)

(* block *)
let block_cmd =
  let action name samples seed =
    guarded @@ fun () ->
    let circuit, placement = load_circuit ~bench:None ~def:None name in
    let bb = Block_based.analyze ~placement circuit in
    Fmt.pr "block-based (Clark) circuit arrival: mean %.3f ps, std %.3f ps, \
            3-sigma %.3f ps (%.3f s)@."
      (Elmore.ps bb.Block_based.mean)
      (Elmore.ps bb.Block_based.std)
      (Elmore.ps bb.Block_based.confidence_point)
      bb.Block_based.runtime_s;
    let sta = Ssta_timing.Sta.analyze circuit in
    let sampler =
      Monte_carlo.sampler Config.default sta.Ssta_timing.Sta.graph placement
    in
    let rng = Ssta_prob.Rng.create seed in
    let mc = Monte_carlo.circuit_delay_samples sampler ~n:samples rng in
    let s = Ssta_prob.Stats.summarize mc in
    Fmt.pr "Monte-Carlo reference (%d dies): mean %.3f ps, std %.3f ps, \
            3-sigma %.3f ps@."
      samples
      (Elmore.ps s.Ssta_prob.Stats.mean)
      (Elmore.ps s.Ssta_prob.Stats.std)
      (Elmore.ps (Ssta_prob.Stats.sigma_point mc 3.0));
    0
  in
  let samples =
    Arg.(value & opt int 2_000 & info [ "n" ] ~docv:"N"
           ~doc:"Number of Monte-Carlo dies.")
  in
  Cmd.v (Cmd.info "block" ~doc:"Block-based SSTA baseline vs Monte-Carlo.")
    Term.(const action $ circuit_arg $ samples $ seed_opt)

(* report *)
let report_cmd =
  let action name bench verilog def top =
    guarded @@ fun () ->
    let circuit, placement = load_circuit ?verilog ~bench ~def name in
    let m = Methodology.run ~placement circuit in
    let shown = Int.min top (Array.length m.Methodology.ranked) in
    for i = 0 to shown - 1 do
      let r = m.Methodology.ranked.(i) in
      Fmt.pr "@.path %d of %d (prob rank %d, det rank %d):@." (i + 1) shown
        r.Ranking.prob_rank r.Ranking.det_rank;
      Report.pp_path_report Fmt.stdout
        m.Methodology.sta.Ssta_timing.Sta.graph r.Ranking.analysis
    done;
    0
  in
  let top =
    Arg.(value & opt int 3 & info [ "top" ] ~docv:"K"
           ~doc:"How many paths to report (probabilistic rank order).")
  in
  Cmd.v (Cmd.info "report" ~doc:"Per-gate timing report of the top paths.")
    Term.(const action $ circuit_arg $ bench_opt $ verilog_opt $ def_opt $ top)

(* yield *)
let yield_cmd =
  let action name samples seed target_yield =
    guarded @@ fun () ->
    let circuit, placement = load_circuit ~bench:None ~def:None name in
    let m = Methodology.run ~placement circuit in
    let d = m.Methodology.det_critical in
    let pdf =
      m.Methodology.prob_critical.Ranking.analysis.Path_analysis.total_pdf
    in
    let clock = Yield.clock_for_yield pdf ~yield:target_yield in
    Fmt.pr "clock for %.2f%% yield: %.3f ps@." (target_yield *. 100.0)
      (Elmore.ps clock);
    Fmt.pr "worst-case corner clock: %.3f ps (overdesign +%.1f%%)@."
      (Elmore.ps d.Path_analysis.worst_case)
      ((d.Path_analysis.worst_case -. clock) /. clock *. 100.0);
    let sampler =
      Monte_carlo.sampler Config.default m.Methodology.sta.Ssta_timing.Sta.graph
        placement
    in
    let mc =
      Monte_carlo.circuit_delay_samples sampler ~n:samples
        (Ssta_prob.Rng.create seed)
    in
    Fmt.pr "Monte-Carlo circuit yield at that clock: %.4f (%d dies)@."
      (Ssta_core.Yield.of_samples mc ~clock)
      samples;
    0
  in
  let samples =
    Arg.(value & opt int 2_000 & info [ "n" ] ~docv:"N"
           ~doc:"Monte-Carlo dies for the exact check.")
  in
  let target =
    Arg.(value & opt float 0.99 & info [ "yield" ] ~docv:"Y"
           ~doc:"Target timing yield in (0, 1).")
  in
  Cmd.v (Cmd.info "yield" ~doc:"Clock targets for a timing yield, vs the \
                                worst-case corner.")
    Term.(const action $ circuit_arg $ samples $ seed_opt $ target)

(* dualvt *)
let dualvt_cmd =
  let action name headroom =
    guarded @@ fun () ->
    let circuit, placement = load_circuit ~bench:None ~def:None name in
    let m = Methodology.run ~placement circuit in
    let base3 =
      m.Methodology.prob_critical.Ssta_core.Ranking.analysis
        .Path_analysis.confidence_point
    in
    let target = (1.0 +. headroom) *. base3 in
    Fmt.pr "all-low 3-sigma %.3f ps; target %.3f ps (+%.0f%%)@."
      (Elmore.ps base3) (Elmore.ps target) (headroom *. 100.0);
    let r = Ssta_core.Dual_vt.optimize ~placement ~target circuit in
    Fmt.pr "high-Vt gates %d/%d; 3-sigma %.3f ps; leakage -%.1f%%; %s@."
      r.Ssta_core.Dual_vt.high_count r.Ssta_core.Dual_vt.gate_count
      (Elmore.ps r.Ssta_core.Dual_vt.sigma3_final)
      ((r.Ssta_core.Dual_vt.leakage_all_low
       -. r.Ssta_core.Dual_vt.leakage_final)
      /. r.Ssta_core.Dual_vt.leakage_all_low *. 100.0)
      (if r.Ssta_core.Dual_vt.met then "target met" else "target NOT met");
    0
  in
  let headroom =
    Arg.(value & opt float 0.05 & info [ "headroom" ] ~docv:"H"
           ~doc:"Allowed 3-sigma degradation fraction (default 0.05).")
  in
  Cmd.v (Cmd.info "dualvt" ~doc:"Dual-Vt leakage optimization under a \
                                 statistical timing target.")
    Term.(const action $ circuit_arg $ headroom)

(* generate *)
let generate_cmd =
  let action name out random gates depth seed =
    guarded @@ fun () ->
    let circuit =
      if random then
        Ssta_circuit.Generators.random_layered ~name
          ~inputs:(Int.max 2 (gates / 20))
          ~outputs:(Int.max 1 (gates / 40))
          ~gates ~depth ~seed ()
      else
        match Iscas85.by_name name with
        | None -> Fmt.failwith "unknown benchmark %S" name
        | Some spec -> Iscas85.build spec
    in
    let placement = Placement.place circuit in
    let bench_path = Filename.concat out (name ^ ".bench") in
    let verilog_path = Filename.concat out (name ^ ".v") in
    let def_path = Filename.concat out (name ^ ".def") in
    let spef_path = Filename.concat out (name ^ ".spef") in
    Bench_format.write_file bench_path circuit;
    Verilog.write_file verilog_path circuit;
    Def_format.write_file def_path
      (Def_format.of_placement ~design:name circuit placement);
    Spef.write_file spef_path
      (Spef.of_placement ~design:name circuit placement);
    Fmt.pr "wrote %s, %s, %s and %s (%a)@." bench_path verilog_path
      def_path spef_path Netlist.pp_stats circuit;
    0
  in
  let out =
    Arg.(value & opt dir "." & info [ "o"; "out" ] ~docv:"DIR"
           ~doc:"Output directory.")
  in
  let random =
    Arg.(value & flag & info [ "random" ]
           ~doc:"Generate a random layered circuit named CIRCUIT instead \
                 of a built-in benchmark (size set by --gates/--depth, \
                 deterministic in --seed).")
  in
  let gates =
    Arg.(value & opt int 500 & info [ "gates" ] ~docv:"N"
           ~doc:"Gate count for --random.")
  in
  let depth =
    Arg.(value & opt int 12 & info [ "depth" ] ~docv:"D"
           ~doc:"Logic depth for --random.")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Write a benchmark as .bench + DEF files.")
    Term.(const action $ circuit_arg $ out $ random $ gates $ depth
          $ seed_opt)

(* figures *)
let figures_cmd =
  let action out mp =
    guarded @@ fun () ->
    let save path contents =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Fmt.pr "wrote %s@." path
    in
    (* Fig. 3: PDFs of selected ranked paths of c1355. *)
    (match Iscas85.by_name "c1355" with
    | None -> ()
    | Some spec ->
        let circuit, placement = Iscas85.build_placed spec in
        let config = { Config.default with Config.max_paths = mp } in
        let m = Methodology.run ~config ~placement circuit in
        let n = Methodology.num_critical_paths m in
        let pick rank = Methodology.find_rank m ~prob_rank:(Int.min rank n) in
        let curves =
          [ ("p1", (pick 1).Ranking.analysis.Path_analysis.total_pdf);
            ( Printf.sprintf "p%d" ((n + 1) / 2),
              (pick ((n + 1) / 2)).Ranking.analysis.Path_analysis.total_pdf );
            ( Printf.sprintf "p%d" n,
              (pick n).Ranking.analysis.Path_analysis.total_pdf ) ]
        in
        save (Filename.concat out "fig3_c1355_pdfs.csv")
          (Report.pdfs_csv curves);
        save (Filename.concat out "fig5_c1355_ranks.csv")
          (Report.rank_scatter_csv
             (Ranking.rank_pairs ~first:100 m.Methodology.ranked)));
    (* Fig. 4: intra/inter/total of c432's critical path. *)
    (match Iscas85.by_name "c432" with
    | None -> ()
    | Some spec ->
        let circuit, placement = Iscas85.build_placed spec in
        let m = Methodology.run ~placement circuit in
        let d = m.Methodology.det_critical in
        save (Filename.concat out "fig4_c432_pdfs.csv")
          (Report.pdfs_csv
             [ ("intra",
                Ssta_prob.Pdf.shift d.Path_analysis.intra_pdf
                  d.Path_analysis.det_delay);
               ("inter", d.Path_analysis.inter_pdf);
               ("total", d.Path_analysis.total_pdf) ]));
    (* Fig. 6: rank scatter of c7552. *)
    (match Iscas85.by_name "c7552" with
    | None -> ()
    | Some spec ->
        let circuit, placement = Iscas85.build_placed spec in
        let config =
          Config.with_confidence Config.default 0.05
        in
        let config = { config with Config.max_paths = mp } in
        let m = Methodology.run ~config ~placement circuit in
        save (Filename.concat out "fig6_c7552_ranks.csv")
          (Report.rank_scatter_csv
             (Ranking.rank_pairs ~first:100 m.Methodology.ranked)));
    0
  in
  let out =
    Arg.(value & opt dir "." & info [ "o"; "out" ] ~docv:"DIR"
           ~doc:"Output directory.")
  in
  let mp =
    Arg.(value & opt int 2_000 & info [ "max-paths" ] ~docv:"N"
           ~doc:"Near-critical enumeration cap.")
  in
  Cmd.v (Cmd.info "figures" ~doc:"Emit CSV data behind Figs. 3-6.")
    Term.(const action $ out $ mp)

(* fault *)
(* serve *)
let serve_cmd =
  let action name bench verilog def qi qj c k mp inter_fraction shape
      no_inter_cache jobs max_queue max_request_bytes default_deadline
      retry_degraded socket =
    guarded @@ fun () ->
    let load () = load_circuit ?verilog ~bench ~def name in
    let circuit, placement = load () in
    let config =
      config_of ~quality_intra:qi ~quality_inter:qj ~confidence:c ~corner_k:k
        ~max_paths:mp ~inter_fraction ~shape ~inter_cache:(not no_inter_cache)
    in
    (* SIGINT/SIGTERM trip the server's cancellation latch: the request
       in flight degrades cooperatively, accepted requests drain, new
       ones are refused, then the loop exits and the summary flushes. *)
    let cancel = Cancel.create () in
    Cancel.on_signals cancel;
    let reload () = Err.protect ~context:"ssta-serve.reload" load in
    let backoff = Backoff.make ~base_s:0.05 ~max_retries:1 () in
    let summary =
      Fun.protect
        ~finally:(fun () -> Cancel.restore_default_signals ())
        (fun () ->
          with_jobs jobs (fun pool ->
              let server =
                Server.create ~config ~pool
                  ?default_deadline_s:default_deadline ~retry_degraded
                  ~backoff ~cancel ~reload circuit placement
              in
              (match socket with
              | Some path ->
                  Server.serve_socket ~max_queue ~max_request_bytes server
                    ~path
              | None ->
                  ignore
                    (Server.serve ~max_queue ~max_request_bytes server stdin
                       stdout));
              Server.summary server))
    in
    Fmt.epr "%s@." summary;
    0
  in
  let max_queue =
    Arg.(value & opt int 64
         & info [ "max-queue" ] ~docv:"N"
             ~doc:"Bound on queued requests; submissions beyond it are \
                   answered immediately with a retryable overloaded \
                   status instead of buffering without limit.")
  in
  let max_request_bytes =
    Arg.(value & opt int 1_048_576
         & info [ "max-request-bytes" ] ~docv:"N"
             ~doc:"Reject request lines longer than this many bytes with \
                   a typed protocol error.")
  in
  let default_deadline =
    Arg.(value & opt (some deadline_conv) None
         & info [ "default-deadline" ] ~docv:"DURATION"
             ~doc:"Wall-clock budget applied to requests that carry no \
                   deadline field of their own.")
  in
  let retry_degraded =
    Arg.(value & flag
         & info [ "retry-degraded" ]
             ~doc:"When a request hits its deadline, re-run it once at \
                   halved PDF quality with no deadline — a complete \
                   low-resolution answer instead of a truncated \
                   high-resolution one.  Requests can override this \
                   per-call with the retry field.")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket instead of \
                   stdin/stdout (one connection served at a time).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Persistent analysis server: load the circuit once, keep the \
             inter-PDF tables and kernel cache warm, and answer \
             line-delimited JSON requests (run, query, check, \
             criticality, health, reload, shutdown) from stdin or a \
             Unix socket.  Supervised: per-request deadlines degrade \
             instead of killing the server, malformed requests get \
             typed error responses, the queue is bounded with \
             backpressure, and SIGTERM drains before exiting.")
    Term.(const action $ circuit_arg $ bench_opt $ verilog_opt $ def_opt
          $ quality_intra_opt $ quality_inter_opt $ confidence_opt
          $ corner_k_opt $ max_paths_opt $ inter_fraction_opt $ shape_opt
          $ no_inter_cache_opt $ jobs_opt $ max_queue $ max_request_bytes
          $ default_deadline $ retry_degraded $ socket)

let fault_cmd =
  let action name seed verbose =
    guarded @@ fun () ->
    let circuit =
      match Iscas85.by_name name with
      | Some spec -> Iscas85.build spec
      | None ->
          Err.raise_error
            (Err.structural ~subject:"circuit"
               (Printf.sprintf "unknown benchmark %S" name))
    in
    let placement = Placement.place circuit in
    let bench_text = Bench_format.to_string circuit in
    let verilog_text = Verilog.to_string circuit in
    let def_text =
      Def_format.to_string (Def_format.of_placement ~design:name circuit placement)
    in
    let spef_text =
      Spef.to_string (Spef.of_placement ~design:name circuit placement)
    in
    let crashes = ref 0 in
    let total = ref 0 in
    let record fmt_name (c : Fault.corruption) outcome =
      incr total;
      match outcome with
      | Fault.Crash msg ->
          incr crashes;
          Fmt.pr "CRASH  %-8s %-22s %s@." fmt_name c.Fault.label msg
      | Fault.Typed e ->
          if verbose then
            Fmt.pr "typed  %-8s %-22s %s@." fmt_name c.Fault.label
              (Err.kind_name e)
      | Fault.Value () ->
          if verbose then
            Fmt.pr "accept %-8s %-22s corrupted input still analyzable@."
              fmt_name c.Fault.label
    in
    let check fmt_name text extra parse =
      List.iter
        (fun c ->
          let corrupted = Fault.apply c text in
          record fmt_name c (Fault.run (fun () -> parse corrupted)))
        (Fault.standard ~seed () @ extra)
    in
    (* A corrupted netlist that still parses must also survive a budgeted
       end-to-end analysis — parse acceptance alone is not the contract. *)
    let analyze_netlist c =
      Result.map ignore
        (Methodology.analyze
           ~budget:(Rbudget.make ~deadline_s:10.0 ~max_paths:200 ())
           c)
    in
    check "bench" bench_text
      [ Fault.substitute ~pattern:"NAND" ~by:"FROB";
        Fault.substitute ~pattern:"INPUT" ~by:"OUTPUT" ]
      (fun t ->
        Result.bind (Bench_format.parse_string_res t) analyze_netlist);
    check "verilog" verilog_text
      [ Fault.substitute ~pattern:"endmodule" ~by:"";
        Fault.substitute ~pattern:";" ~by:"" ]
      (fun t -> Result.bind (Verilog.parse_string_res t) analyze_netlist);
    check "def" def_text
      [ Fault.substitute ~pattern:"PLACED" ~by:"FLOATING";
        Fault.substitute ~pattern:"0" ~by:"nan" ]
      (fun t ->
        Result.bind (Def_format.parse_string_res t) (fun d ->
            Result.map ignore (Def_format.placement_of_res d circuit)));
    check "spef" spef_text
      [ Fault.substitute ~pattern:"0.0" ~by:"-1.0";
        Fault.substitute ~pattern:"*D_NET" ~by:"*D_NAT" ]
      (fun t ->
        Result.bind (Spef.parse_string_res t) (fun s ->
            Result.map ignore (Spef.apply_res s circuit)));
    (* The server's request protocol is an input format like any other:
       every corruption of a request line must come back as a typed
       protocol error, never a crash.  [fixed] corruptions replace the
       line wholesale with a specific attack; the standard corpus
       (truncation, garbling, junk) applies on top. *)
    let proto_base =
      {|{"op": "run", "id": "fault-probe", "quality_intra": 24, "max_paths": 8}|}
    in
    let fixed label text =
      Fault.make_corruption ~label ~describe:label (fun _ -> text)
    in
    check "protocol" proto_base
      [ fixed "proto-unknown-op" {|{"op": "frobnicate"}|};
        fixed "proto-missing-op" {|{"id": "x", "quality_intra": 24}|};
        fixed "proto-extra-field" {|{"op": "health", "bogus": 1}|};
        fixed "proto-quality-negative" {|{"op": "run", "quality_intra": -5}|};
        fixed "proto-quality-absurd"
          {|{"op": "run", "quality_inter": 1000000}|};
        fixed "proto-deadline-negative" {|{"op": "run", "deadline": "-3s"}|};
        fixed "proto-deadline-zero" {|{"op": "run", "deadline": 0}|};
        fixed "proto-wrong-type" {|{"op": "run", "max_paths": "lots"}|};
        fixed "proto-bad-id" {|{"op": "health", "id": [1, 2]}|};
        fixed "proto-non-object" {|[1, 2, 3]|};
        fixed "proto-duplicate-key" {|{"op": "run", "op": "run"}|};
        fixed "proto-truncated-json" {|{"op": "run", "quality_int|};
        fixed "proto-lone-surrogate" {|{"op": "\ud800"}|};
        fixed "proto-control-char" "{\"op\": \"run\x01\"}";
        fixed "proto-invalid-utf8" "{\"op\": \"\xff\xfe run\"}";
        Fault.make_corruption ~label:"proto-oversized"
          ~describe:"line beyond --max-request-bytes"
          (fun s -> s ^ String.make 4096 ' ') ]
      (fun t -> Result.map ignore (Sproto.decode ~max_bytes:512 t));
    (* Edit scripts are an input format like the others: every
       corruption must come back as a typed error through
       parse -> resolve -> apply, never a crash. *)
    let gate_name = Netlist.node_name circuit circuit.Netlist.num_inputs in
    let input_name = Netlist.node_name circuit 0 in
    let multi_input_name =
      let n = Netlist.num_nodes circuit in
      let rec find i =
        if i >= n then gate_name
        else if
          (not (Netlist.is_input circuit i))
          && Array.length (Netlist.gate_of circuit i).Netlist.fanins >= 2
        then Netlist.node_name circuit i
        else find (i + 1)
      in
      find 0
    in
    let edit_base =
      Printf.sprintf "resize %s 1.2\nmove %s 10.0 10.0" gate_name gate_name
    in
    let design = Impact.design ~placement circuit in
    check "edits" edit_base
      [ fixed "edit-unknown-op"
          (Printf.sprintf "frobnicate %s 1.2" gate_name);
        fixed "edit-missing-field" (Printf.sprintf "resize %s" gate_name);
        fixed "edit-extra-field"
          (Printf.sprintf "resize %s 1.2 3.4" gate_name);
        fixed "edit-nonnumeric-drive"
          (Printf.sprintf "resize %s huge" gate_name);
        fixed "edit-negative-drive"
          (Printf.sprintf "resize %s -1.0" gate_name);
        fixed "edit-nan-coord" (Printf.sprintf "move %s nan 5.0" gate_name);
        fixed "edit-offdie-move"
          (Printf.sprintf "move %s 1e9 1e9" gate_name);
        fixed "edit-dangling-gate" "resize NO_SUCH_GATE 1.2";
        fixed "edit-input-node" (Printf.sprintf "resize %s 1.2" input_name);
        fixed "edit-unknown-kind"
          (Printf.sprintf "retype %s FROB" gate_name);
        fixed "edit-arity-mismatch"
          (Printf.sprintf "retype %s INV" multi_input_name);
        fixed "edit-unknown-param" "set frobnication 3.0" ]
      (fun t ->
        Result.bind (Edit.parse_string_res t) (fun es ->
            Result.map
              (fun ch -> ignore (Impact.apply design ch))
              (Impact.resolve design es)));
    Fmt.pr "fault injection: %d corruptions, %d crash%s@." !total !crashes
      (if !crashes = 1 then "" else "es");
    if !crashes > 0 then 1 else 0
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ]
           ~doc:"Print the outcome of every corruption, not only crashes.")
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:"Fault-injection self-test: corrupt generated .bench, \
             Verilog, DEF and SPEF inputs plus server protocol request \
             lines and edit scripts, and verify every corruption yields \
             a typed error or a successful (possibly degraded) analysis \
             — never a crash.  Exits 1 on any crash.")
    Term.(const action $ circuit_arg $ seed_opt $ verbose)

let () =
  let doc = "Path-based statistical static timing analysis (DATE'05)" in
  let info = Cmd.info "ssta" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ run_cmd; lint_cmd; check_cmd; diff_cmd; report_cmd; table2_cmd;
        table3_cmd; sensitivity_cmd; convexity_cmd; sweep_cmd; mc_cmd;
        block_cmd; yield_cmd; dualvt_cmd; generate_cmd; figures_cmd;
        serve_cmd; fault_cmd ]
  in
  (* Exit-code convention: cmdline usage problems are 2, uncaught
     exceptions (cmdliner already printed a backtrace) are internal
     errors, and command bodies return their own code via [guarded]. *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 4)
