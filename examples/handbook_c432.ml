(* The worked example of docs/HANDBOOK.md section 4, verbatim. *)

let circuit = Ssta_circuit.Iscas85.(build (Option.get (by_name "c432")))
let m = Ssta_core.Methodology.run ~config:Ssta_core.Config.default circuit

let () =
  Printf.printf "det %.3f ps, 3-sigma point %.3f ps, %d paths\n"
    (1e12 *. m.Ssta_core.Methodology.det_critical.Ssta_core.Path_analysis.det_delay)
    (1e12
    *. m.Ssta_core.Methodology.prob_critical.Ssta_core.Ranking.analysis
         .Ssta_core.Path_analysis.confidence_point)
    (Ssta_core.Methodology.num_critical_paths m)
