(* Timing yield and path criticality on a benchmark circuit — the
   "so what" of statistical timing: how fast can we clock the chip at a
   target yield, how wrong is the worst-case answer, and which paths
   actually limit the yield?

     dune exec examples/yield_analysis.exe *)

module Iscas85 = Ssta_circuit.Iscas85
module Sta = Ssta_timing.Sta
module Elmore = Ssta_tech.Elmore
module Rng = Ssta_prob.Rng
open Ssta_core

let () =
  let spec =
    match Iscas85.by_name "c432" with
    | Some s -> s
    | None -> failwith "c432 missing"
  in
  let circuit, placement = Iscas85.build_placed spec in
  let m = Methodology.run ~placement circuit in
  let d = m.Methodology.det_critical in
  let ps = Elmore.ps in

  Format.printf "circuit %s: deterministic critical delay %.3f ps@."
    m.Methodology.circuit_name (ps d.Path_analysis.det_delay);
  Format.printf "worst-case corner says the clock must be >= %.3f ps@."
    (ps d.Path_analysis.worst_case);

  (* Yield curve from the probabilistic critical path. *)
  Format.printf "@.clock (ps)   yield@.";
  List.iter
    (fun (clock, y) -> Format.printf "%9.1f   %6.4f@." (ps clock) y)
    (Yield.curve
       m.Methodology.prob_critical.Ranking.analysis.Path_analysis.total_pdf
       ~lo:(d.Path_analysis.mean -. (1.0 *. d.Path_analysis.std))
       ~hi:(d.Path_analysis.mean +. (4.0 *. d.Path_analysis.std))
       ~points:11);

  (* Clock targets for standard yields, vs. the worst-case answer. *)
  Format.printf "@.";
  List.iter
    (fun y ->
      let clock =
        Yield.clock_for_yield
          m.Methodology.prob_critical.Ranking.analysis.Path_analysis.total_pdf
          ~yield:y
      in
      Format.printf
        "clock for %.2f%% yield: %.3f ps (worst-case overdesign: +%.1f%%)@."
        (y *. 100.0) (ps clock)
        ((d.Path_analysis.worst_case -. clock) /. clock *. 100.0))
    [ 0.90; 0.99; 0.9987 ];

  (* Exact yield from correlated Monte-Carlo, at the 3-sigma clock. *)
  let sampler =
    Monte_carlo.sampler Config.default m.Methodology.sta.Sta.graph placement
  in
  let rng = Rng.create 20250704 in
  let samples = Monte_carlo.circuit_delay_samples sampler ~n:3000 rng in
  let clock = d.Path_analysis.confidence_point in
  Format.printf
    "@.at the 3-sigma clock (%.3f ps): analytic yield %.4f, Monte-Carlo \
     circuit yield %.4f, independence lower bound %.4f@."
    (ps clock)
    (Yield.of_methodology m ~clock)
    (Yield.of_samples samples ~clock)
    (Yield.pessimistic_of_methodology m ~clock);

  (* Which paths actually limit the yield? *)
  let paths =
    Array.to_list m.Methodology.ranked
    |> List.filteri (fun i _ -> i < 8)
    |> List.map (fun r -> r.Ranking.analysis.Path_analysis.path)
  in
  let crit = Criticality.estimate sampler ~n:2000 rng paths in
  Format.printf "@.criticality of the top %d probabilistic paths \
                 (entropy %.3f nats):@."
    (List.length paths) crit.Criticality.entropy;
  Array.iteri
    (fun i p -> Format.printf "  prob#%d: %.3f@." (i + 1) p)
    crit.Criticality.probabilities
