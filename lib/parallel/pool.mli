(** Fixed-size [Domain]-backed worker pool with deterministic reduction.

    The pool executes chunked work queues on OCaml 5 domains.  Its design
    contract is {e scheduling independence}: every combinator commits its
    results by {e input index}, and every reduction folds those slots in
    a fixed left-to-right order, so the value a combinator returns is a
    pure function of its inputs — never of the worker count, chunk
    interleaving or relative domain speed.  A run with [--jobs 1] and a
    run with [--jobs 8] therefore produce bit-identical results, which is
    what lets the {!Ssta_check} verifier certify parallel runs against
    sequential ones.

    Work is distributed through a single atomic chunk counter (workers
    claim the next chunk index with a fetch-and-add), so chunks are
    claimed in increasing index order; this makes cooperative
    cancellation ({!map_prefix}) naturally return a {e prefix} of the
    input.

    A pool with [jobs = 1] spawns no domains at all and runs every
    combinator inline on the caller, making the sequential path the same
    code as the parallel one. *)

type t
(** A pool of [jobs - 1] worker domains plus the calling domain, which
    always participates in the work. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the hardware parallelism
    available to this process. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults
    to {!default_jobs}; it must be at least 1 and is clamped to 128).
    The workers idle on a condition variable between work regions.
    Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int
(** The worker count the pool was created with (including the caller). *)

val idle_workers : t -> int
(** Number of worker domains currently parked on the work condition
    variable (0 for a [jobs = 1] pool, which has no workers).  Between
    work regions every worker parks, so an idle pool burns no CPU.
    Observability only; never consulted by the scheduler. *)

val park_count : t -> int
(** Total park sessions since pool creation (a worker entering the
    condition-variable wait counts once, however many spurious wakeups
    it sees before new work arrives). *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; the pool must not be used
    afterwards (except for further {!shutdown} calls).  Pools with
    [jobs = 1] need no shutdown (it is a no-op). *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and guarantees
    {!shutdown} afterwards, whether [f] returns or raises. *)

val run : t -> ?batch:int -> chunks:int -> (int -> unit) -> unit
(** [run t ~chunks f] executes [f 0 .. f (chunks - 1)], each exactly
    once, distributed over the pool through the shared chunk counter.
    The caller participates and returns only once every chunk finished.
    If any [f i] raises, the exception of the {e lowest} chunk index is
    re-raised in the caller (after all chunks completed or were
    abandoned), keeping failure reporting deterministic.

    [batch] (default 1) is the streaming claim granularity: each
    fetch-and-add claims that many consecutive chunk indices, trading
    contention on the shared counter against load-balance slack.  It
    cannot affect results — chunks still execute exactly once and
    claims stay in increasing index order. *)

val map_array : t -> ?chunk:int -> ?batch:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f a] is [Array.map f a], evaluated in parallel.
    [chunk] (default: a size that yields roughly 8 chunks per worker)
    sets how many consecutive elements one claimed chunk processes;
    [batch] is the claim granularity (see {!run}).  Result slots are
    committed by index: the output is identical for any worker count. *)

val map_reduce :
  t ->
  ?chunk:int ->
  map:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a array ->
  'acc
(** [map_reduce t ~map ~combine ~init a] maps every element in parallel,
    then folds the per-element results {e sequentially in index order}:
    [combine (... (combine init b0) ...) bn].  The reduction order is
    therefore independent of scheduling even when [combine] is not
    associative or commutative (e.g. floating-point accumulation). *)

val map_prefix :
  t ->
  ?chunk:int ->
  should_stop:(unit -> bool) ->
  ('a -> 'b) ->
  'a array ->
  'b array * bool
(** [map_prefix t ~should_stop f a] maps [a] in parallel, polling
    [should_stop] once per claimed chunk, and returns
    [(prefix, stopped)]: the longest contiguous prefix of completed
    results, and whether the stop predicate fired.  Because chunks are
    claimed in increasing index order, nearly all completed work lands
    in the prefix; with [jobs = 1] the prefix is exactly the items
    processed before the predicate fired, matching the historical
    sequential deadline semantics.  When [stopped] is [false] the prefix
    is the full map. *)

val map_prefix_weighted :
  t ->
  ?pieces:int ->
  weights:int array ->
  should_stop:(unit -> bool) ->
  ('a -> 'b) ->
  'a array ->
  'b array * bool
(** Cost-aware variant of {!map_prefix}: instead of fixed-size chunks,
    the input is pre-partitioned into [pieces] (default [8 * jobs])
    {e contiguous} pieces of approximately equal total weight
    ([weights.(i)] estimates item [i]'s cost; non-positive weights count
    as 1), and pieces are claimed in increasing index order.  One
    expensive item no longer drags a whole fixed-size chunk's worth of
    cheap neighbours into its worker's queue, which matters when per-item
    cost varies by orders of magnitude (e.g. a cache-missing O(Q^3)
    kernel build vs a cache-hitting O(Q) rescale).

    [should_stop] is polled {e per item}, matching the historical
    one-item-per-chunk deadline granularity.

    Weights influence scheduling only: results are committed by input
    index, so the returned array is bit-identical for any weights, piece
    count or worker count. *)
