(* A fixed pool of worker domains fed by chunked work regions.

   Determinism contract: workers only ever write results into
   caller-provided slots indexed by input position; every reduction over
   those slots happens on the caller in index order.  Scheduling (which
   worker runs which chunk, and in what interleaving) is thus invisible
   in the results.  See pool.mli. *)

type job = {
  chunks : int;
  batch : int;  (* chunk indices claimed per fetch-and-add *)
  run_chunk : int -> unit;
  next : int Atomic.t;  (* next chunk index to claim *)
  pending : int Atomic.t;  (* chunks not yet finished *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_cv : Condition.t;  (* a new work region was posted, or shutdown *)
  done_cv : Condition.t;  (* the last chunk of a region finished *)
  mutable current : job option;
  mutable generation : int;  (* bumped when a region is posted *)
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
  (* First failure by chunk index, re-raised deterministically. *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
  (* Idle accounting (under [mutex]): how many workers are currently
     parked on [work_cv], and how many park sessions ever happened.
     Observability only — never consulted by the scheduler. *)
  mutable idle : int;
  mutable parks : int;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Claim and execute chunks until the region's counter is exhausted.
   Called by workers and by the posting caller alike.  A claim takes
   [job.batch] consecutive chunk indices with one fetch-and-add —
   claims, and hence chunk execution starts, stay in increasing index
   order regardless of the batch size. *)
let execute t job =
  let continue_ = ref true in
  while !continue_ do
    let lo = Atomic.fetch_and_add job.next job.batch in
    if lo >= job.chunks then continue_ := false
    else begin
      let hi = Int.min job.chunks (lo + job.batch) - 1 in
      for i = lo to hi do
        try job.run_chunk i
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock t.mutex;
          (match t.failure with
          | Some (j, _, _) when j <= i -> ()
          | Some _ | None -> t.failure <- Some (i, e, bt));
          Mutex.unlock t.mutex
      done;
      let finished = hi - lo + 1 in
      if Atomic.fetch_and_add job.pending (-finished) = finished then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.done_cv;
        Mutex.unlock t.mutex
      end
    end
  done

let rec worker_loop t last_gen =
  Mutex.lock t.mutex;
  let parked = ref false in
  while
    (not t.stopping) && (t.generation = last_gen || t.current = None)
  do
    if not !parked then begin
      (* One park session per wait loop, however many spurious wakeups
         the condition variable delivers. *)
      parked := true;
      t.idle <- t.idle + 1;
      t.parks <- t.parks + 1
    end;
    Condition.wait t.work_cv t.mutex
  done;
  if !parked then t.idle <- t.idle - 1;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let gen = t.generation in
    let job = match t.current with Some j -> j | None -> assert false in
    Mutex.unlock t.mutex;
    execute t job;
    worker_loop t gen
  end

let create ?jobs () =
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let jobs = Int.min jobs 128 in
  let t =
    { jobs;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      workers = [||];
      failure = None;
      idle = 0;
      parks = 0 }
  in
  if jobs > 1 then
    t.workers <-
      Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
  t

let jobs t = t.jobs

let idle_workers t = Mutex.protect t.mutex (fun () -> t.idle)
let park_count t = Mutex.protect t.mutex (fun () -> t.parks)

let shutdown t =
  if Array.length t.workers > 0 || not t.stopping then begin
    Mutex.lock t.mutex;
    let need_join = not t.stopping in
    t.stopping <- true;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    if need_join then begin
      Array.iter Domain.join t.workers;
      t.workers <- [||]
    end
  end

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run t ?(batch = 1) ~chunks f =
  if chunks < 0 then invalid_arg "Pool.run: chunks must be >= 0";
  if batch < 1 then invalid_arg "Pool.run: batch must be >= 1";
  if chunks = 0 then ()
  else if t.jobs = 1 || chunks = 1 then
    for i = 0 to chunks - 1 do
      f i
    done
  else begin
    let job =
      { chunks; batch; run_chunk = f; next = Atomic.make 0;
        pending = Atomic.make chunks }
    in
    Mutex.lock t.mutex;
    t.failure <- None;
    t.current <- Some job;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.mutex;
    execute t job;
    Mutex.lock t.mutex;
    while Atomic.get job.pending > 0 do
      Condition.wait t.done_cv t.mutex
    done;
    t.current <- None;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let default_chunk t n = Int.max 1 (n / (t.jobs * 8))

let chunk_bounds ~chunk ~n ci =
  let lo = ci * chunk in
  (lo, Int.min n (lo + chunk) - 1)

let map_array t ?chunk ?batch f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let chunk =
      match chunk with Some c -> Int.max 1 c | None -> default_chunk t n
    in
    let out = Array.make n None in
    let chunks = (n + chunk - 1) / chunk in
    run t ?batch ~chunks (fun ci ->
        let lo, hi = chunk_bounds ~chunk ~n ci in
        for i = lo to hi do
          out.(i) <- Some (f a.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_reduce t ?chunk ~map ~combine ~init a =
  let mapped = map_array t ?chunk map a in
  Array.fold_left combine init mapped

let map_prefix t ?chunk ~should_stop f a =
  let n = Array.length a in
  if n = 0 then ([||], false)
  else begin
    let chunk =
      match chunk with Some c -> Int.max 1 c | None -> default_chunk t n
    in
    let out = Array.make n None in
    let stop_flag = Atomic.make false in
    let chunks = (n + chunk - 1) / chunk in
    run t ~chunks (fun ci ->
        if Atomic.get stop_flag || should_stop () then
          Atomic.set stop_flag true
        else begin
          let lo, hi = chunk_bounds ~chunk ~n ci in
          for i = lo to hi do
            out.(i) <- Some (f a.(i))
          done
        end);
    if not (Atomic.get stop_flag) then
      (Array.map (function Some v -> v | None -> assert false) out, false)
    else begin
      let k = ref 0 in
      while !k < n && Option.is_some out.(!k) do
        incr k
      done;
      ( Array.init !k (fun i ->
            match out.(i) with Some v -> v | None -> assert false),
        true )
    end
  end

(* Contiguous weight-balanced piece boundaries: [starts] has
   [pieces + 1] entries with [starts.(0) = 0] and [starts.(pieces) = n];
   piece [ci] covers [starts.(ci) .. starts.(ci+1) - 1].  The cut after
   item [i] happens when the accumulated weight crosses the next
   [total/pieces] boundary, except that every remaining piece is
   guaranteed at least one item.  Pieces beyond the last cut are empty
   (start = n), which the executor skips. *)
let weighted_starts ~weights ~pieces n =
  let starts = Array.make (pieces + 1) n in
  starts.(0) <- 0;
  let total = Array.fold_left (fun acc w -> acc + Int.max 1 w) 0 weights in
  let acc = ref 0 and piece = ref 1 in
  for i = 0 to n - 1 do
    acc := !acc + Int.max 1 weights.(i);
    if !piece < pieces then begin
      let boundary = !piece * total / pieces in
      let remaining_items = n - (i + 1) in
      let remaining_pieces = pieces - !piece in
      if
        remaining_items = remaining_pieces
        || (!acc >= boundary && remaining_items >= remaining_pieces)
      then begin
        starts.(!piece) <- i + 1;
        incr piece
      end
    end
  done;
  starts

let map_prefix_weighted t ?pieces ~weights ~should_stop f a =
  let n = Array.length a in
  if n = 0 then ([||], false)
  else begin
    if Array.length weights <> n then
      invalid_arg "Pool.map_prefix_weighted: weights length mismatch";
    let pieces =
      match pieces with
      | Some p -> Int.min n (Int.max 1 p)
      | None -> Int.min n (Int.max 1 (t.jobs * 8))
    in
    let starts = weighted_starts ~weights ~pieces n in
    let out = Array.make n None in
    let stop_flag = Atomic.make false in
    run t ~chunks:pieces (fun ci ->
        (* Poll per item (not per piece): deadline granularity matches
           the historical one-item-per-chunk fan-out. *)
        let lo = starts.(ci) and hi = starts.(ci + 1) - 1 in
        let i = ref lo in
        while !i <= hi && not (Atomic.get stop_flag || should_stop ()) do
          out.(!i) <- Some (f a.(!i));
          incr i
        done;
        if !i <= hi then Atomic.set stop_flag true);
    if not (Atomic.get stop_flag) then
      (Array.map (function Some v -> v | None -> assert false) out, false)
    else begin
      let k = ref 0 in
      while !k < n && Option.is_some out.(!k) do
        incr k
      done;
      ( Array.init !k (fun i ->
            match out.(i) with Some v -> v | None -> assert false),
        true )
    end
  end
