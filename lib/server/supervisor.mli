(** Bounded request queue with backpressure and drain-on-shutdown.

    The serve loop runs one reader (producer) and one dispatcher
    (consumer).  The queue between them is bounded: when [max_queue]
    requests are already waiting, {!submit} answers {!Overloaded}
    immediately instead of buffering without limit — the reader turns
    that into a retryable ["overloaded"] response, so a flooding client
    slows itself down rather than the server.

    Shutdown is graceful by construction: {!begin_shutdown} stops
    admissions (new submissions answer {!Shutting_down}) but the
    dispatcher keeps draining what was already accepted;
    {!drained} turns true only when the queue is empty again. *)

type 'a t

type submit_result = Accepted | Overloaded | Shutting_down

val create : max_queue:int -> unit -> 'a t
(** Raises [Invalid_argument] when [max_queue < 1]. *)

val submit : 'a t -> 'a -> submit_result

val try_take : 'a t -> 'a option
(** Pop the oldest accepted item (FIFO); [None] when the queue is
    momentarily empty.  Accepted items remain takeable after
    {!begin_shutdown} — that is the drain. *)

val begin_shutdown : 'a t -> unit
(** Idempotent. *)

val is_shutting_down : 'a t -> bool

val drained : 'a t -> bool
(** Shutdown was requested and every accepted item has been taken. *)

val pending : 'a t -> int

val note_completed : 'a t -> unit
(** Count one dispatched request as fully answered (statistics only). *)

type stats = {
  accepted : int;
  overloaded : int;  (** submissions refused by backpressure *)
  rejected_shutdown : int;  (** submissions refused after shutdown *)
  completed : int;
}

val stats : 'a t -> stats
