type 'a t = {
  lock : Mutex.t;
  items : 'a Queue.t;
  max_queue : int;
  mutable shutting_down : bool;
  mutable accepted : int;
  mutable overloaded : int;
  mutable rejected_shutdown : int;
  mutable completed : int;
}

type submit_result = Accepted | Overloaded | Shutting_down

let create ~max_queue () =
  if max_queue < 1 then invalid_arg "Supervisor.create: max_queue >= 1";
  { lock = Mutex.create ();
    items = Queue.create ();
    max_queue;
    shutting_down = false;
    accepted = 0;
    overloaded = 0;
    rejected_shutdown = 0;
    completed = 0 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let submit t x =
  locked t (fun () ->
      if t.shutting_down then begin
        t.rejected_shutdown <- t.rejected_shutdown + 1;
        Shutting_down
      end
      else if Queue.length t.items >= t.max_queue then begin
        t.overloaded <- t.overloaded + 1;
        Overloaded
      end
      else begin
        Queue.add x t.items;
        t.accepted <- t.accepted + 1;
        Accepted
      end)

let try_take t = locked t (fun () -> Queue.take_opt t.items)
let begin_shutdown t = locked t (fun () -> t.shutting_down <- true)
let is_shutting_down t = locked t (fun () -> t.shutting_down)

let drained t =
  locked t (fun () -> t.shutting_down && Queue.is_empty t.items)

let pending t = locked t (fun () -> Queue.length t.items)
let note_completed t = locked t (fun () -> t.completed <- t.completed + 1)

type stats = {
  accepted : int;
  overloaded : int;
  rejected_shutdown : int;
  completed : int;
}

let stats t =
  locked t (fun () ->
      { accepted = t.accepted;
        overloaded = t.overloaded;
        rejected_shutdown = t.rejected_shutdown;
        completed = t.completed })
