(** Minimal strict JSON for the analysis server's wire protocol.

    The repository deliberately carries no external JSON dependency;
    this module is the single place request lines are parsed and
    responses are rendered.  The parser is strict — it rejects exactly
    the malformed inputs the protocol fault corpus feeds it — and every
    rejection is a typed {!Ssta_runtime.Ssta_error.Parse} error with a
    1-based column, never an exception.

    The printer is deterministic: object fields print in the order the
    caller supplied, floats use round-trip ["%.17g"] (the same
    convention as [Ssta_core.Report.json_report]), and nothing about
    the process or the clock leaks in, so identical values render
    byte-identical documents. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string
      (** a pre-rendered JSON document spliced verbatim into the output
          (e.g. [Report.json_report]); never produced by {!parse} *)

val parse : string -> (t, Ssta_runtime.Ssta_error.t) result
(** Parse one complete JSON document.  Strictness guarantees, each a
    typed parse error: the input must be valid UTF-8; exactly one
    top-level value (trailing garbage rejected); object keys must be
    unique; strings reject raw control characters and malformed escape
    sequences (including lone UTF-16 surrogates); nesting is capped at
    64 levels; numbers follow the JSON grammar (no leading [+], no bare
    [.5]). *)

val to_string : t -> string
(** Render on one line, no trailing newline.  Non-finite numbers render
    as [null] (the protocol never produces them). *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val keys : t -> string list
(** Object field names in document order; [[]] for non-objects. *)

val to_int : t -> int option
(** [Number] holding an exact integer (rejects 1.5, accepts 3.0). *)

val to_float : t -> float option
val to_bool : t -> bool option
val to_str : t -> string option

val escape : string -> string
(** The string-literal escaping used by the printer (without the
    surrounding quotes). *)
