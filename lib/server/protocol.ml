module Err = Ssta_runtime.Ssta_error
module Rbudget = Ssta_runtime.Budget
module Config = Ssta_core.Config

type run_params = {
  p_quality_intra : int option;
  p_quality_inter : int option;
  p_confidence : float option;
  p_max_paths : int option;
  p_deadline_s : float option;
  p_max_cells : int option;
  p_retry : bool option;
  p_full : bool option;
  p_engine : Config.engine option;
  p_max_policy : Config.max_policy option;
}

let no_params =
  { p_quality_intra = None;
    p_quality_inter = None;
    p_confidence = None;
    p_max_paths = None;
    p_deadline_s = None;
    p_max_cells = None;
    p_retry = None;
    p_full = None;
    p_engine = None;
    p_max_policy = None }

type request =
  | Run of run_params
  | Query of { endpoint : string; params : run_params }
  | Check of { only : string list; path_limit : int option }
  | Criticality of { top : int option }
  | Edit of { script : string }
  | What_if of { script : string }
  | Health
  | Reload
  | Shutdown

type envelope = { id : Json.t option; request : request }

(* --- decoding --------------------------------------------------------- *)

exception Bad of Err.t

let bad fmt = Printf.ksprintf (fun m -> raise (Bad (Err.structural ~subject:"request" m))) fmt

let param_fields =
  [ "quality_intra"; "quality_inter"; "confidence"; "max_paths"; "deadline";
    "max_cells"; "retry"; "full"; "engine"; "max_policy" ]

let fields_of_op = function
  | "run" -> param_fields
  | "query" -> "endpoint" :: param_fields
  | "check" -> [ "only"; "path_limit" ]
  | "criticality" -> [ "top" ]
  | "edit" | "what-if" -> [ "edits" ]
  | "health" | "reload" | "shutdown" -> []
  | op -> bad "unknown op %S" op

let get_int ~lo ~hi name j =
  match Json.member name j with
  | None -> None
  | Some v -> (
      match Json.to_int v with
      | Some i when i >= lo && i <= hi -> Some i
      | Some i -> bad "field %S out of range: %d (expected %d..%d)" name i lo hi
      | None -> bad "field %S must be an integer" name)

let get_float ~lo ~hi name j =
  match Json.member name j with
  | None -> None
  | Some v -> (
      match Json.to_float v with
      | Some x when Float.is_finite x && x >= lo && x <= hi -> Some x
      | Some x -> bad "field %S out of range: %g (expected %g..%g)" name x lo hi
      | None -> bad "field %S must be a number" name)

let get_bool name j =
  match Json.member name j with
  | None -> None
  | Some v -> (
      match Json.to_bool v with
      | Some b -> Some b
      | None -> bad "field %S must be a boolean" name)

let get_string name j =
  match Json.member name j with
  | None -> None
  | Some v -> (
      match Json.to_str v with
      | Some s -> Some s
      | None -> bad "field %S must be a string" name)

(* A small closed string enumeration ("engine", "max_policy"): any value
   outside the table is a typed decode error naming the alternatives. *)
let get_enum name table j =
  match get_string name j with
  | None -> None
  | Some s -> (
      match List.assoc_opt s table with
      | Some v -> Some v
      | None ->
          bad "field %S must be one of %s" name
            (String.concat ", "
               (List.map (fun (k, _) -> Printf.sprintf "%S" k) table)))

(* A deadline is either a duration string ("500ms", "2s") or a bare
   number of seconds; either way it must be positive and finite. *)
let get_deadline j =
  let check x =
    if Float.is_finite x && x > 0.0 && x <= 86_400.0 then x
    else bad "field \"deadline\" out of range: %g s (expected 0 < d <= 86400)" x
  in
  match Json.member "deadline" j with
  | None -> None
  | Some (Json.String s) -> (
      match Rbudget.parse_duration s with
      | Ok x -> Some (check x)
      | Error e -> raise (Bad e))
  | Some v -> (
      match Json.to_float v with
      | Some x -> Some (check x)
      | None -> bad "field \"deadline\" must be a duration string or number")

let get_string_list name j =
  match Json.member name j with
  | None -> None
  | Some (Json.List items) ->
      Some
        (List.map
           (fun v ->
             match Json.to_str v with
             | Some s -> s
             | None -> bad "field %S must be a list of strings" name)
           items)
  | Some _ -> bad "field %S must be a list of strings" name

let params_of j =
  { p_quality_intra = get_int ~lo:4 ~hi:4096 "quality_intra" j;
    p_quality_inter = get_int ~lo:4 ~hi:4096 "quality_inter" j;
    p_confidence = get_float ~lo:0.0 ~hi:10.0 "confidence" j;
    p_max_paths = get_int ~lo:1 ~hi:10_000_000 "max_paths" j;
    p_deadline_s = get_deadline j;
    p_max_cells = get_int ~lo:16 ~hi:100_000_000 "max_cells" j;
    p_retry = get_bool "retry" j;
    p_full = get_bool "full" j;
    p_engine =
      get_enum "engine"
        (List.map (fun e -> (Config.engine_name e, e)) Config.engines)
        j;
    p_max_policy =
      get_enum "max_policy"
        (List.map (fun p -> (Config.max_policy_name p, p)) Config.max_policies)
        j }

let decode_obj j =
  let id =
    match Json.member "id" j with
    | None -> None
    | Some (Json.String _ | Json.Number _) as v -> v
    | Some _ -> bad "field \"id\" must be a string or a number"
  in
  let op =
    match get_string "op" j with
    | Some op -> op
    | None -> bad "missing required field \"op\""
  in
  let allowed = "op" :: "id" :: fields_of_op op in
  List.iter
    (fun k ->
      if not (List.mem k allowed) then bad "unknown field %S for op %S" k op)
    (Json.keys j);
  let request =
    match op with
    | "run" -> Run (params_of j)
    | "query" -> (
        match get_string "endpoint" j with
        | Some e when e <> "" -> Query { endpoint = e; params = params_of j }
        | Some _ -> bad "field \"endpoint\" must be a non-empty string"
        | None -> bad "op \"query\" requires field \"endpoint\"")
    | "check" ->
        Check
          { only = Option.value ~default:[] (get_string_list "only" j);
            path_limit = get_int ~lo:0 ~hi:1_000_000 "path_limit" j }
    | "criticality" -> Criticality { top = get_int ~lo:1 ~hi:1_000_000 "top" j }
    | "edit" | "what-if" -> (
        match get_string "edits" j with
        | Some s when s <> "" ->
            if op = "edit" then Edit { script = s }
            else What_if { script = s }
        | Some _ -> bad "field \"edits\" must be a non-empty string"
        | None -> bad "op %S requires field \"edits\"" op)
    | "health" -> Health
    | "reload" -> Reload
    | "shutdown" -> Shutdown
    | _ -> assert false (* fields_of_op already rejected unknown ops *)
  in
  { id; request }

let decode ~max_bytes line =
  if String.length line > max_bytes then
    Error
      (Err.budget ~resource:"request-bytes"
         (Printf.sprintf "request line is %d bytes (limit %d)"
            (String.length line) max_bytes))
  else
    match Json.parse line with
    | Error e -> Error e
    | Ok (Json.Obj _ as j) -> ( try Ok (decode_obj j) with Bad e -> Error e)
    | Ok _ ->
        Error (Err.structural ~subject:"request" "request must be a JSON object")

(* --- responses -------------------------------------------------------- *)

type status = Ok_ | Degraded | Failed | Overloaded | Shutting_down

let status_name = function
  | Ok_ -> "ok"
  | Degraded -> "degraded"
  | Failed -> "error"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting-down"

let render ?id ~status fields =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  Json.to_string
    (Json.Obj
       (id_field
       @ (("status", Json.String (status_name status)) :: fields)))

let render_error ?id e =
  render ?id ~status:Failed
    [ ("kind", Json.String (Err.kind_name e));
      ("code", Json.Number (float_of_int (Err.exit_code e)));
      ("message", Json.String (Err.to_string e)) ]
