(** Wire protocol of the persistent analysis server.

    One request per line, one response per line, both JSON objects.
    Every request carries an ["op"] field naming the operation and an
    optional ["id"] (string or number) echoed verbatim in the response,
    so clients can match answers to pipelined questions.

    Decoding is total: any malformed line — bad JSON, unknown op,
    unknown or ill-typed field, out-of-range parameter, oversized line —
    comes back as a typed {!Ssta_runtime.Ssta_error.t}, never an
    exception.  This is the surface the protocol fault corpus
    ([ssta fault --protocol]) attacks. *)

type run_params = {
  p_quality_intra : int option;  (** override the base configuration *)
  p_quality_inter : int option;
  p_confidence : float option;
  p_max_paths : int option;
  p_deadline_s : float option;  (** per-request wall-clock budget *)
  p_max_cells : int option;
  p_retry : bool option;  (** override the server retry policy *)
  p_full : bool option;  (** include the full JSON report (default) *)
  p_engine : Ssta_core.Config.engine option;
      (** ["path"] (default) or ["block"]: which analysis engine answers
          the request *)
  p_max_policy : Ssta_core.Config.max_policy option;
      (** ["clark"] or ["grid"]: statistical-max policy of the block
          engine (ignored by the path engine) *)
}

val no_params : run_params

type request =
  | Run of run_params
  | Query of { endpoint : string; params : run_params }
      (** critical path to one named output *)
  | Check of { only : string list; path_limit : int option }
  | Criticality of { top : int option }
  | Edit of { script : string }
      (** apply an edit script (the {!Ssta_circuit.Edit} text format,
          newline-separated ops in one JSON string) to the warm image
          and re-analyze incrementally *)
  | What_if of { script : string }
      (** same analysis as [Edit] on a forked image: the answer is
          computed, the server state is left untouched *)
  | Health
  | Reload
  | Shutdown

type envelope = { id : Json.t option; request : request }

val decode :
  max_bytes:int -> string -> (envelope, Ssta_runtime.Ssta_error.t) result
(** Decode one request line.  Lines longer than [max_bytes] are
    rejected without being parsed ([Budget_exceeded]). *)

type status = Ok_ | Degraded | Failed | Overloaded | Shutting_down

val status_name : status -> string
(** ["ok"], ["degraded"], ["error"], ["overloaded"],
    ["shutting-down"]. *)

val render :
  ?id:Json.t -> status:status -> (string * Json.t) list -> string
(** One response line (no trailing newline): [{"id":..,"status":..,
    ...fields}]; the id field is omitted when the request carried
    none. *)

val render_error : ?id:Json.t -> Ssta_runtime.Ssta_error.t -> string
(** An error response: status ["error"] plus ["kind"] (the error
    taxonomy name), ["code"] (the CLI exit code for the same error) and
    ["message"]. *)
