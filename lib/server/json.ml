module Err = Ssta_runtime.Ssta_error

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list
  | Raw of string

(* --- printing --------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Number x ->
      if Float.is_finite x then Buffer.add_string b (Printf.sprintf "%.17g" x)
      else Buffer.add_string b "null"
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'
  | Raw s -> Buffer.add_string b s

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- accessors -------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let keys = function Obj fields -> List.map fst fields | _ -> []

let to_int = function
  | Number x
    when Float.is_integer x
         && Float.abs x <= 9.007199254740992e15 (* 2^53 *) ->
      Some (int_of_float x)
  | _ -> None

let to_float = function Number x -> Some x | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None

(* --- UTF-8 validation ------------------------------------------------- *)

(* Returns the byte offset of the first invalid sequence, if any.
   Standard table: no overlongs, no surrogates, max U+10FFFF. *)
let utf8_error s =
  let n = String.length s in
  let err = ref None in
  let i = ref 0 in
  let byte k = Char.code s.[k] in
  let cont k = k < n && byte k land 0xC0 = 0x80 in
  while !err = None && !i < n do
    let c = byte !i in
    if c < 0x80 then incr i
    else if c < 0xC2 then err := Some !i (* continuation or overlong lead *)
    else if c < 0xE0 then
      if cont (!i + 1) then i := !i + 2 else err := Some !i
    else if c < 0xF0 then begin
      let b1_lo = if c = 0xE0 then 0xA0 else 0x80 in
      let b1_hi = if c = 0xED then 0x9F else 0xBF in
      if
        !i + 2 < n
        && byte (!i + 1) >= b1_lo
        && byte (!i + 1) <= b1_hi
        && cont (!i + 2)
      then i := !i + 3
      else err := Some !i
    end
    else if c < 0xF5 then begin
      let b1_lo = if c = 0xF0 then 0x90 else 0x80 in
      let b1_hi = if c = 0xF4 then 0x8F else 0xBF in
      if
        !i + 3 < n
        && byte (!i + 1) >= b1_lo
        && byte (!i + 1) <= b1_hi
        && cont (!i + 2)
        && cont (!i + 3)
      then i := !i + 4
      else err := Some !i
    end
    else err := Some !i
  done;
  !err

(* --- parsing ---------------------------------------------------------- *)

exception Fail of int * string (* byte offset, message *)

let max_depth = 64

let parse input =
  let n = String.length input in
  let pos = ref 0 in
  let fail off msg = raise (Fail (off, msg)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && input.[!pos] = c then incr pos
    else fail !pos (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub input !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = ref 0 in
    for k = !pos to !pos + 3 do
      let d =
        match input.[k] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail k "invalid hex digit in \\u escape"
      in
      v := (!v * 16) + d
    done;
    pos := !pos + 4;
    !v
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail !pos "unterminated string";
      match input.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents b
      | '\\' ->
          incr pos;
          if !pos >= n then fail !pos "unterminated escape";
          let c = input.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' ->
              let cp = hex4 () in
              if cp >= 0xD800 && cp <= 0xDBFF then begin
                (* high surrogate: a \uXXXX low surrogate must follow *)
                if
                  !pos + 2 <= n
                  && input.[!pos] = '\\'
                  && input.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    add_utf8 b
                      (0x10000
                      + ((cp - 0xD800) lsl 10)
                      + (lo - 0xDC00))
                  else fail (!pos - 4) "invalid low surrogate"
                end
                else fail !pos "lone high surrogate"
              end
              else if cp >= 0xDC00 && cp <= 0xDFFF then
                fail (!pos - 4) "lone low surrogate"
              else add_utf8 b cp
          | _ -> fail (!pos - 1) "invalid escape character");
          loop ()
      | c when Char.code c < 0x20 ->
          fail !pos "raw control character in string"
      | c ->
          Buffer.add_char b c;
          incr pos;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && input.[!pos] >= '0' && input.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail !pos "expected digit"
    in
    (match peek () with
    | Some '0' -> incr pos
    | Some c when c >= '1' && c <= '9' -> digits ()
    | _ -> fail !pos "expected digit");
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        incr pos;
        (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub input start (!pos - start)) with
    | Some x -> x
    | None -> fail start "unparsable number"
  in
  let rec parse_value depth =
    if depth > max_depth then fail !pos "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let key_off = !pos in
            let k = parse_string () in
            if List.mem_assoc k !fields then
              fail key_off (Printf.sprintf "duplicate key %S" k);
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields_loop ()
            | Some '}' -> incr pos
            | _ -> fail !pos "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items_loop ()
            | Some ']' -> incr pos
            | _ -> fail !pos "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Number (parse_number ())
  in
  let error off msg =
    (* Requests are single lines; report a 1-based column on line 1. *)
    Error (Err.parse ~line:1 ~col:(off + 1) ~format:"json" msg)
  in
  match utf8_error input with
  | Some off -> error off "invalid UTF-8 byte sequence"
  | None -> (
      try
        let v = parse_value 0 in
        skip_ws ();
        if !pos < n then error !pos "trailing garbage after JSON value"
        else Ok v
      with Fail (off, msg) -> error off msg)
