module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Sta = Ssta_timing.Sta
module Graph = Ssta_timing.Graph
module Paths = Ssta_timing.Paths
module Config = Ssta_core.Config
module Methodology = Ssta_core.Methodology
module Path_analysis = Ssta_core.Path_analysis
module Ranking = Ssta_core.Ranking
module Report = Ssta_core.Report
module Inter = Ssta_core.Inter
module Block_engine = Ssta_block.Engine
module Checker = Ssta_check.Checker
module Affine = Ssta_check.Affine
module Impact = Ssta_check.Impact
module Edit = Ssta_circuit.Edit
module D = Ssta_lint.Diagnostic
module Err = Ssta_runtime.Ssta_error
module Rbudget = Ssta_runtime.Budget
module Health = Ssta_runtime.Health
module Backoff = Ssta_runtime.Backoff
module Cancel = Ssta_runtime.Cancel
module Pool = Ssta_parallel.Pool
module Pdf = Ssta_prob.Pdf

type t = {
  base_config : Config.t;
  pool : Pool.t option;
  default_deadline_s : float option;
  retry_degraded : bool;
  backoff : Backoff.t;
  cancel : Cancel.t;
  reload : unit -> (Netlist.t * Placement.t, Err.t) result;
  mutable circuit : Netlist.t;
  mutable placement : Placement.t;
  mutable sta : Sta.t;
  mutable warm : Path_analysis.warm option;
  mutable impact : Impact.state option;
      (* warm incremental image for edit/what-if, built lazily on first
         use, dropped on reload *)
  lifetime : Health.t;
}

let create ?(config = Config.default) ?pool ?default_deadline_s
    ?(retry_degraded = false) ?(backoff = Backoff.none) ?cancel ~reload
    circuit placement =
  let cancel = match cancel with Some c -> c | None -> Cancel.create () in
  { base_config = config;
    pool;
    default_deadline_s;
    retry_degraded;
    backoff;
    cancel;
    reload;
    circuit;
    placement;
    sta = Sta.analyze circuit;
    warm = None;
    impact = None;
    lifetime = Health.create () }

let lifetime t = t.lifetime
let count t name = Health.counter_add t.lifetime name 1

(* The warm slot holds the table/cache pair of the most recent effective
   configuration; a request with table-compatible settings reuses it
   (the common steady state), anything else rebuilds and replaces. *)
let get_warm t cfg =
  match t.warm with
  | Some w when Path_analysis.warm_compatible w cfg -> w
  | _ ->
      let w = Path_analysis.warm cfg in
      t.warm <- Some w;
      w

let cancelled_hook t () = Cancel.cancelled t.cancel

(* --- request parameter application ----------------------------------- *)

let effective_config t (p : Protocol.run_params) =
  let c = t.base_config in
  let c =
    match p.Protocol.p_quality_intra, p.Protocol.p_quality_inter with
    | None, None -> c
    | qi, qe ->
        Config.with_quality c
          ~intra:(Option.value ~default:c.Config.quality_intra qi)
          ~inter:(Option.value ~default:c.Config.quality_inter qe)
  in
  let c =
    match p.Protocol.p_confidence with
    | None -> c
    | Some v -> Config.with_confidence c v
  in
  let c =
    match p.Protocol.p_max_paths with
    | None -> c
    | Some mp -> { c with Config.max_paths = mp }
  in
  let c =
    match p.Protocol.p_engine with
    | None -> c
    | Some e -> { c with Config.engine = e }
  in
  match p.Protocol.p_max_policy with
  | None -> c
  | Some mp -> { c with Config.block_max = mp }

let budget_of t (p : Protocol.run_params) =
  let deadline_s =
    match p.Protocol.p_deadline_s with
    | Some d -> Some d
    | None -> t.default_deadline_s
  in
  Rbudget.make ?deadline_s ?max_cells:p.Protocol.p_max_cells ()

(* --- helpers ---------------------------------------------------------- *)

let jint i = Json.Number (float_of_int i)

(* Responses are one line each, but the pre-rendered documents we embed
   (the run report, the criticality ranking) are pretty-printed.
   Re-parsing and re-printing them is a pure, deterministic compaction:
   field order is preserved and %.17g floats round-trip exactly. *)
let raw_compact doc =
  match Json.parse doc with
  | Ok v -> Json.Raw (Json.to_string v)
  | Error _ -> Json.String doc

let deadline_degraded m =
  List.exists
    (function Rbudget.Deadline_hit _ -> true | _ -> false)
    (Methodology.degradations m)

let degradation_strings m =
  Json.List
    (List.map
       (fun d ->
         Json.String (Format.asprintf "%a" Rbudget.pp_degradation d))
       (Methodology.degradations m))

let run_status m =
  if Methodology.is_degraded m then Protocol.Degraded else Protocol.Ok_

(* --- operations ------------------------------------------------------- *)

let analyze_once t cfg budget =
  Methodology.analyze ~config:cfg ~budget
    ~cancelled:(cancelled_hook t)
    ~placement:t.placement ?pool:t.pool ~sta:t.sta ~warm:(get_warm t cfg)
    t.circuit

(* Retry with degradation: a deadline-degraded run is re-run once at
   halved PDF quality with no deadline — a complete low-resolution
   answer instead of a truncated high-resolution one.  The pacing delay
   comes from the deterministic backoff schedule. *)
let maybe_retry t (p : Protocol.run_params) cfg m =
  let wanted =
    Option.value ~default:t.retry_degraded p.Protocol.p_retry
  in
  if not (wanted && deadline_degraded m) then (m, false)
  else begin
    count t "retries";
    (match Backoff.delay_s t.backoff ~attempt:1 with
    | Some d when d > 0.0 -> Unix.sleepf d
    | _ -> ());
    let cfg' =
      Config.with_quality cfg
        ~intra:(Int.max 16 (cfg.Config.quality_intra / 2))
        ~inter:(Int.max 8 (cfg.Config.quality_inter / 2))
    in
    let budget' = Rbudget.make ?max_cells:p.Protocol.p_max_cells () in
    match analyze_once t cfg' budget' with
    | Ok m' -> (m', true)
    | Error _ -> (m, false)
  end

(* Block-mode run: one topological sweep on the warm image.  The sweep
   is cheap enough (no path enumeration) that nothing is cached between
   requests; deadlines and retry do not apply. *)
let do_run_block t id (p : Protocol.run_params) cfg =
  let r = Block_engine.analyze ~config:cfg ~placement:t.placement ~sta:t.sta t.circuit in
  count t "requests-ok";
  let full = Option.value ~default:true p.Protocol.p_full in
  let summary_fields =
    if full then [ ("report", raw_compact (Block_engine.json_report r)) ]
    else
      [ ("critical_delay_s", Json.Number r.Block_engine.sta.Sta.critical_delay);
        ("mean_s", Json.Number r.Block_engine.mean);
        ("std_s", Json.Number r.Block_engine.std);
        ( "confidence_point_s",
          Json.Number r.Block_engine.confidence_point ) ]
  in
  Protocol.render ?id ~status:Protocol.Ok_
    (("circuit", Json.String r.Block_engine.circuit_name)
     :: ("engine", Json.String (Config.engine_name Config.Block))
     :: summary_fields)

let do_run t id (p : Protocol.run_params) =
  count t "requests-run";
  let cfg = effective_config t p in
  if cfg.Config.engine = Config.Block then do_run_block t id p cfg
  else
  match analyze_once t cfg (budget_of t p) with
  | Error e ->
      count t "requests-error";
      Protocol.render_error ?id e
  | Ok m ->
      let m, retried = maybe_retry t p cfg m in
      let status = run_status m in
      count t
        (match status with
        | Protocol.Degraded -> "requests-degraded"
        | _ -> "requests-ok");
      let full = Option.value ~default:true p.Protocol.p_full in
      let summary_fields =
        if full then [ ("report", raw_compact (Report.json_report m)) ]
        else
          [ ("paths", jint (Methodology.num_critical_paths m));
            ("critical_delay_s", Json.Number m.Methodology.sta.Sta.critical_delay);
            ("sigma_c_s", Json.Number m.Methodology.sigma_c);
            ( "confidence_point_s",
              Json.Number
                m.Methodology.prob_critical.Ranking.analysis
                  .Path_analysis.confidence_point ) ]
      in
      Protocol.render ?id ~status
        (("circuit", Json.String m.Methodology.circuit_name)
         :: ("degradations", degradation_strings m)
         :: ((if retried then [ ("retried", Json.Bool true) ] else [])
            @ summary_fields))

(* Greedy backward trace on the Bellman-Ford labels: from the endpoint,
   repeatedly step to the fan-in realizing the label (ties towards the
   smaller node id, matching [Longest_path.critical_path]), giving the
   endpoint's critical path. *)
let endpoint_path sta id =
  let g = sta.Sta.graph in
  let labels = sta.Sta.labels in
  let rec back id acc =
    let acc = id :: acc in
    let fam = Graph.fanins g id in
    if Array.length fam = 0 then acc
    else begin
      let best = ref fam.(0) in
      Array.iter
        (fun u ->
          if labels.(u) > labels.(!best) then best := u
          else if labels.(u) = labels.(!best) && u < !best then best := u)
        fam;
      back !best acc
    end
  in
  { Paths.nodes = Array.of_list (back id []); delay = labels.(id) }

let do_query t id endpoint (p : Protocol.run_params) =
  count t "requests-query";
  match Netlist.find_node t.circuit endpoint with
  | None ->
      count t "requests-error";
      Protocol.render_error ?id
        (Err.structural ~subject:"endpoint"
           (Printf.sprintf "unknown node %S" endpoint))
  | Some nid when Netlist.is_input t.circuit nid ->
      count t "requests-error";
      Protocol.render_error ?id
        (Err.structural ~subject:"endpoint"
           (Printf.sprintf "node %S is a primary input" endpoint))
  | Some nid when (effective_config t p).Config.engine = Config.Block -> (
      (* Block mode propagates whole arrival distributions, so the
         answer comes from the endpoint table of one sweep — but only
         primary outputs have entries (interior nodes are folded into
         downstream maxes). *)
      let cfg = effective_config t p in
      let r =
        Block_engine.analyze ~config:cfg ~placement:t.placement ~sta:t.sta
          t.circuit
      in
      match
        List.find_opt
          (fun ep -> ep.Block_engine.node = nid)
          r.Block_engine.endpoints
      with
      | None ->
          count t "requests-error";
          Protocol.render_error ?id
            (Err.structural ~subject:"endpoint"
               (Printf.sprintf
                  "node %S is not a primary output (the block engine \
                   answers endpoint queries only)"
                  endpoint))
      | Some ep ->
          count t "requests-ok";
          Protocol.render ?id ~status:Protocol.Ok_
            [ ("endpoint", Json.String endpoint);
              ("engine", Json.String (Config.engine_name Config.Block));
              ("mean_s", Json.Number ep.Block_engine.mean);
              ("std_s", Json.Number ep.Block_engine.std);
              ("inter_sigma_s", Json.Number ep.Block_engine.inter_sigma);
              ("intra_sigma_s", Json.Number ep.Block_engine.intra_sigma);
              ( "confidence_point_s",
                Json.Number ep.Block_engine.confidence_point );
              ( "q001_s",
                Json.Number (Pdf.quantile ep.Block_engine.pdf 0.001) );
              ( "median_s",
                Json.Number (Pdf.quantile ep.Block_engine.pdf 0.5) );
              ( "q999_s",
                Json.Number (Pdf.quantile ep.Block_engine.pdf 0.999) ) ])
  | Some nid ->
      let cfg = effective_config t p in
      let warm = get_warm t cfg in
      let health = Health.create () in
      let ctx =
        Path_analysis.context ~health ~warm cfg t.sta.Sta.graph t.placement
      in
      let path = endpoint_path t.sta nid in
      let pa = Path_analysis.analyze ctx path in
      Health.merge ~into:t.lifetime health;
      count t "requests-ok";
      let total = pa.Path_analysis.total_pdf in
      Protocol.render ?id ~status:Protocol.Ok_
        [ ("endpoint", Json.String endpoint);
          ("nodes", jint (Array.length path.Paths.nodes));
          ("gates", jint pa.Path_analysis.gate_count);
          ("det_delay_s", Json.Number pa.Path_analysis.det_delay);
          ("mean_s", Json.Number pa.Path_analysis.mean);
          ("std_s", Json.Number pa.Path_analysis.std);
          ("inter_sigma_s", Json.Number pa.Path_analysis.inter_sigma);
          ("intra_sigma_s", Json.Number pa.Path_analysis.intra_sigma);
          ( "confidence_point_s",
            Json.Number pa.Path_analysis.confidence_point );
          ("worst_case_s", Json.Number pa.Path_analysis.worst_case);
          ("q001_s", Json.Number (Pdf.quantile total 0.001));
          ("median_s", Json.Number (Pdf.quantile total 0.5));
          ("q999_s", Json.Number (Pdf.quantile total 0.999)) ]

let severity_counts diags =
  List.fold_left
    (fun (e, w, i) d ->
      match d.D.severity with
      | D.Error -> (e + 1, w, i)
      | D.Warning -> (e, w + 1, i)
      | D.Info -> (e, w, i + 1))
    (0, 0, 0) diags

let do_check t id only path_limit =
  count t "requests-check";
  (* Same contract as the one-shot CLI: unknown check ids are a usage
     error, not a silently empty selection. *)
  let known = List.map fst Checker.all_checks in
  (match List.find_opt (fun c -> not (List.mem c known)) only with
  | Some bad ->
      raise
        (Err.Error
           (Err.structural ~subject:"check"
              (Printf.sprintf "unknown check id %S" bad)))
  | None -> ());
  let inp =
    Checker.input ~config:t.base_config ~placement:t.placement ?path_limit
      ~only
      ~should_stop:(cancelled_hook t)
      t.circuit
  in
  let r = Checker.run inp in
  Health.merge ~into:t.lifetime r.Checker.health;
  let errors, warnings, infos = severity_counts r.Checker.diagnostics in
  count t (if errors > 0 then "requests-degraded" else "requests-ok");
  let diag d =
    Json.Obj
      [ ("rule", Json.String d.D.rule);
        ("severity", Json.String (D.severity_name d.D.severity));
        ("location", Json.String (Format.asprintf "%a" D.pp_location d.D.location));
        ("message", Json.String d.D.message) ]
  in
  Protocol.render ?id
    ~status:(if errors > 0 then Protocol.Degraded else Protocol.Ok_)
    [ ("errors", jint errors);
      ("warnings", jint warnings);
      ("infos", jint infos);
      ("nodes_certified", jint r.Checker.nodes_certified);
      ("paths_certified", jint r.Checker.paths_certified);
      ("ops_audited", jint r.Checker.ops_audited);
      ("diagnostics", Json.List (List.map diag r.Checker.diagnostics)) ]

let do_criticality t id top =
  count t "requests-criticality";
  match Affine.compute t.base_config t.sta.Sta.graph with
  | Error msg ->
      count t "requests-error";
      Protocol.render_error ?id (Err.structural ~subject:"affine" msg)
  | Ok aff ->
      let crits = Affine.criticality aff t.sta in
      let crits =
        match top with
        | None -> crits
        | Some k -> List.filteri (fun i _ -> i < k) crits
      in
      count t "requests-ok";
      Protocol.render ?id ~status:Protocol.Ok_
        [ ( "criticality",
            raw_compact (Affine.criticality_json t.sta.Sta.graph crits) ) ]

let do_health t id =
  count t "requests-health";
  count t "requests-ok";
  let cache =
    match t.warm with
    | None -> Json.Null
    | Some w -> (
        match Path_analysis.warm_cache_stats w with
        | None -> Json.Null
        | Some st ->
            Json.Obj
              [ ("lookups", jint st.Inter.cs_lookups);
                ("distinct", jint st.Inter.cs_distinct);
                ("hits", jint st.Inter.cs_hits);
                ("builds", jint st.Inter.cs_builds) ])
  in
  (* Between requests every worker domain parks on the pool's condition
     variable, so an idle server burns no CPU; the health answer exposes
     the park ledger so a smoke test can verify that from outside. *)
  let pool =
    match t.pool with
    | None -> Json.Null
    | Some p ->
        Json.Obj
          [ ("jobs", jint (Pool.jobs p));
            ("idle_workers", jint (Pool.idle_workers p));
            ("park_count", jint (Pool.park_count p)) ]
  in
  Protocol.render ?id ~status:Protocol.Ok_
    [ ("circuit", Json.String t.circuit.Netlist.name);
      ("gates", jint (Netlist.num_gates t.circuit));
      ("health_events", jint (Health.count t.lifetime));
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, jint v)) (Health.counters t.lifetime))
      );
      ("pool", pool);
      ("cache", cache) ]

(* --- incremental edit / what-if --------------------------------------- *)

(* The impact image is built lazily on the first edit/what-if: one full
   methodology run under the drive-aware load model (impact designs
   always use {!Graph.with_drives} so a resize stays a local
   perturbation), populating the per-path cache.  Note the model
   switch: [run]/[query] use the fanout-count load model, edit answers
   the drive-aware one — absolute delays differ slightly until the
   first committed edit replaces the server's timing image. *)
let impact_state t =
  match t.impact with
  | Some s -> Ok s
  | None -> (
      let d =
        Impact.design ~placement:t.placement ~config:t.base_config t.circuit
      in
      match Impact.init ?pool:t.pool ~ledger:t.lifetime d with
      | Error e -> Error e
      | Ok (s, _baseline) ->
          t.impact <- Some s;
          Ok s)

(* Pre-validation: parse the script, then run the edit lint rules
   against the current image; any lint error refuses the op before a
   single cached path is touched. *)
let parse_edits state script =
  match Edit.parse_string_res script with
  | Error e -> Error e
  | Ok edits -> (
      let d = Impact.design_of state in
      let ds =
        Ssta_lint.Rules_edit.check ~placement:d.Impact.placement
          ~drives:d.Impact.drives ~config:d.Impact.config d.Impact.circuit
          edits
      in
      match List.find_opt (fun dg -> dg.D.severity = D.Error) ds with
      | Some dg -> Error (Err.structural ~subject:"edit" dg.D.message)
      | None -> Ok edits)

let impact_fields (o : Impact.outcome) =
  let m = o.Impact.report in
  [ ("cone_nodes", jint o.Impact.cone.Impact.cone_nodes);
    ("dirty_nodes", jint o.Impact.cone.Impact.dirty_count);
    ( "affected_endpoints",
      jint (List.length o.Impact.cone.Impact.affected_endpoints) );
    ("full_invalidation", Json.Bool o.Impact.cone.Impact.full);
    ("invalidated", jint o.Impact.invalidated);
    ("reused", jint o.Impact.reused);
    ("reanalyzed", jint o.Impact.reanalyzed);
    ("paths", jint (Methodology.num_critical_paths m));
    ("critical_delay_s", Json.Number m.Methodology.sta.Sta.critical_delay);
    ("sigma_c_s", Json.Number m.Methodology.sigma_c);
    ( "confidence_point_s",
      Json.Number
        m.Methodology.prob_critical.Ranking.analysis
          .Path_analysis.confidence_point ) ]

let do_edit t id script =
  count t "requests-edit";
  let answer =
    match impact_state t with
    | Error e -> Error e
    | Ok state -> (
        match parse_edits state script with
        | Error e -> Error e
        | Ok edits -> Impact.reanalyze ?pool:t.pool state edits)
  in
  match answer with
  | Error e ->
      count t "requests-error";
      Protocol.render_error ?id e
  | Ok o ->
      (* Commit: the edited design becomes the served image.  The new
         static timing comes from the incremental run itself
         (drive-aware — [Sta.analyze] would forget the drives). *)
      let state = Option.get t.impact in
      let d = Impact.design_of state in
      t.circuit <- d.Impact.circuit;
      t.placement <- d.Impact.placement;
      t.sta <- o.Impact.report.Methodology.sta;
      count t "requests-ok";
      Protocol.render ?id ~status:Protocol.Ok_
        (("circuit", Json.String t.circuit.Netlist.name) :: impact_fields o)

let do_what_if t id script =
  count t "requests-whatif";
  let answer =
    match impact_state t with
    | Error e -> Error e
    | Ok state -> (
        match parse_edits state script with
        | Error e -> Error e
        | Ok edits -> Impact.what_if ?pool:t.pool state edits)
  in
  match answer with
  | Error e ->
      count t "requests-error";
      Protocol.render_error ?id e
  | Ok o ->
      count t "requests-ok";
      Protocol.render ?id ~status:Protocol.Ok_
        (("circuit", Json.String t.circuit.Netlist.name)
         :: ("committed", Json.Bool false)
         :: impact_fields o)

let do_reload t id =
  count t "requests-reload";
  match t.reload () with
  | Error e ->
      count t "requests-error";
      Protocol.render_error ?id e
  | Ok (circuit, placement) ->
      t.circuit <- circuit;
      t.placement <- placement;
      t.sta <- Sta.analyze circuit;
      t.warm <- None;
      t.impact <- None;
      count t "reloads";
      count t "requests-ok";
      Protocol.render ?id ~status:Protocol.Ok_
        [ ("circuit", Json.String circuit.Netlist.name);
          ("gates", jint (Netlist.num_gates circuit)) ]

let dispatch_inner t ({ Protocol.id; request } : Protocol.envelope) =
  count t "requests-total";
  match request with
  | Protocol.Run p -> do_run t id p
  | Protocol.Query { endpoint; params } -> do_query t id endpoint params
  | Protocol.Check { only; path_limit } -> do_check t id only path_limit
  | Protocol.Criticality { top } -> do_criticality t id top
  | Protocol.Edit { script } -> do_edit t id script
  | Protocol.What_if { script } -> do_what_if t id script
  | Protocol.Health -> do_health t id
  | Protocol.Reload -> do_reload t id
  | Protocol.Shutdown ->
      count t "requests-shutdown";
      count t "requests-ok";
      Protocol.render ?id ~status:Protocol.Ok_ [ ("draining", Json.Bool true) ]

let dispatch t env =
  match Err.protect ~context:"ssta-server" (fun () -> dispatch_inner t env) with
  | Ok resp -> resp
  | Error e ->
      count t "requests-error";
      Protocol.render_error ?id:env.Protocol.id e

(* --- serve loop ------------------------------------------------------- *)

let serve ?(max_queue = 64) ?(max_request_bytes = 1_048_576) t ic oc =
  let sup = Supervisor.create ~max_queue () in
  let out_lock = Mutex.create () in
  let send line =
    Mutex.lock out_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock out_lock)
      (fun () ->
        output_string oc line;
        output_char oc '\n';
        flush oc)
  in
  let malformed = Atomic.make 0 in
  (* Reader: decode and enqueue; answer protocol errors, backpressure
     and shutdown refusals immediately (they never occupy a queue
     slot).  Never touches [t] — the lifetime ledger is single-owner
     (the dispatcher thread). *)
  let reader () =
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then
           match Protocol.decode ~max_bytes:max_request_bytes line with
           | Error e ->
               Atomic.incr malformed;
               send (Protocol.render_error e)
           | Ok env -> (
               match Supervisor.submit sup env with
               | Supervisor.Accepted -> ()
               | Supervisor.Overloaded ->
                   send
                     (Protocol.render ?id:env.Protocol.id
                        ~status:Protocol.Overloaded
                        [ ("retryable", Json.Bool true) ])
               | Supervisor.Shutting_down ->
                   send
                     (Protocol.render ?id:env.Protocol.id
                        ~status:Protocol.Shutting_down []))
       done
     with End_of_file | Sys_error _ -> ());
    Supervisor.begin_shutdown sup
  in
  let reader_thread = Thread.create reader () in
  let reason = ref `Eof in
  let rec loop () =
    match Supervisor.try_take sup with
    | Some env ->
        send (dispatch t env);
        Supervisor.note_completed sup;
        (match env.Protocol.request with
        | Protocol.Shutdown ->
            reason := `Shutdown;
            Supervisor.begin_shutdown sup
        | _ -> ());
        loop ()
    | None ->
        if Supervisor.drained sup then ()
        else if Cancel.cancelled t.cancel then begin
          if !reason = `Eof then reason := `Cancelled;
          Supervisor.begin_shutdown sup;
          loop ()
        end
        else begin
          Thread.delay 0.002;
          loop ()
        end
  in
  loop ();
  (match !reason with
  | `Eof ->
      (* The reader hit end of input (it is who initiated the
         shutdown); joining it is immediate. *)
      Thread.join reader_thread
  | `Shutdown | `Cancelled ->
      (* The reader may still be blocked on input; it answers any late
         lines with shutting-down refusals and dies with the process.
         Give it a beat so in-flight refusals finish writing. *)
      Thread.delay 0.02);
  let st = Supervisor.stats sup in
  Health.counter_add t.lifetime "queue-accepted" st.Supervisor.accepted;
  Health.counter_add t.lifetime "queue-overloaded" st.Supervisor.overloaded;
  Health.counter_add t.lifetime "queue-rejected-shutdown"
    st.Supervisor.rejected_shutdown;
  Health.counter_add t.lifetime "requests-malformed" (Atomic.get malformed);
  !reason

let serve_socket ?max_queue ?max_request_bytes t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> () | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> () | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        if not (Cancel.cancelled t.cancel) then begin
          (* Poll with a timeout so the cancellation latch is honored
             even while no client is connected.  A signal (SIGTERM
             tripping the latch) interrupts select/accept with EINTR:
             re-enter the loop, which rechecks the latch. *)
          match Unix.select [ sock ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
          | [], _, _ -> accept_loop ()
          | _ :: _, _, _ -> (
              match Unix.accept sock with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
              | fd, _ ->
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              let r = serve ?max_queue ?max_request_bytes t ic oc in
              (try close_out oc with Sys_error _ -> ());
              (try close_in ic with Sys_error _ -> ());
              (match r with
              | `Eof -> accept_loop ()
              | `Shutdown | `Cancelled -> ()))
      end
      in
      accept_loop ())

let summary t =
  let c name = Health.counter t.lifetime name in
  Printf.sprintf
    "ssta serve: %d requests (%d ok, %d degraded, %d error, %d malformed); \
     queue %d accepted, %d overloaded, %d rejected; %d retries, %d reloads"
    (c "requests-total") (c "requests-ok") (c "requests-degraded")
    (c "requests-error") (c "requests-malformed") (c "queue-accepted")
    (c "queue-overloaded") (c "queue-rejected-shutdown") (c "retries")
    (c "reloads")
