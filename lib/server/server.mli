(** The resilient persistent analysis server.

    A server owns one loaded circuit (netlist, placement, static timing)
    plus a warm analysis state — the inter-PDF tables and the
    scale-covariant kernel cache — and answers line-delimited JSON
    requests ({!Protocol}) from an input channel or a Unix socket.
    Loading happens once; every request after the first reuses the warm
    state, which changes no analysis byte (cached kernels are pure
    functions of their coefficients) but skips the dominant
    table-construction cost.

    Supervision policy, in one place:

    - {e crash isolation}: every request runs under
      {!Ssta_runtime.Ssta_error.protect}; any failure — malformed
      request, impossible configuration, numerical damage, a bug —
      becomes a typed ["error"] response carrying the error taxonomy
      kind and the matching CLI exit code.  The server process never
      dies on a request.
    - {e deadlines}: a per-request wall-clock budget (request
      ["deadline"] field, falling back to the server default) is
      enforced cooperatively by the methodology's stop predicate; a
      breach returns the truthful analyzed prefix marked ["degraded"],
      never a dead request.
    - {e retry with degradation}: when a deadline was hit and retry is
      enabled, the request is re-run once at halved PDF quality with no
      deadline (paced by the deterministic {!Ssta_runtime.Backoff}
      schedule) — a complete low-resolution answer instead of a
      truncated high-resolution one.  Retries are counted in the
      lifetime ledger.
    - {e backpressure}: the request queue is bounded
      ({!Supervisor}); overflow answers ["overloaded"] immediately.
    - {e graceful shutdown}: a ["shutdown"] request, end of input, or a
      cancellation latch (SIGTERM) stops admissions, drains accepted
      requests, and flushes a statistics summary.
    - {e incremental edits}: the [edit] op applies an
      {!Ssta_circuit.Edit} script to a warm incremental image
      ({!Ssta_check.Impact}) — lint pre-validation refuses bad scripts
      with typed errors, cached per-path analyses outside the change's
      dependence cone are reused, and the edited design is committed as
      the served image; [what-if] answers the same question on a fork
      without committing.  The image is built lazily on first use and
      dropped on [reload].

    Determinism: responses for [run]/[query]/[check]/[criticality] are
    byte-identical for identical requests whatever the arrival order,
    the queue state or the worker count — per-request reports exclude
    every history-dependent statistic (warm-cache hit counters are
    surfaced only by the [health] request, whose answer is explicitly
    lifetime-dependent). *)

type t

val create :
  ?config:Ssta_core.Config.t ->
  ?pool:Ssta_parallel.Pool.t ->
  ?default_deadline_s:float ->
  ?retry_degraded:bool ->
  ?backoff:Ssta_runtime.Backoff.t ->
  ?cancel:Ssta_runtime.Cancel.t ->
  reload:
    (unit ->
     (Ssta_circuit.Netlist.t * Ssta_circuit.Placement.t,
      Ssta_runtime.Ssta_error.t)
     result) ->
  Ssta_circuit.Netlist.t ->
  Ssta_circuit.Placement.t ->
  t
(** [reload] re-reads the circuit sources (used by the [reload]
    request); [cancel] is the external shutdown latch (hook it to
    SIGTERM with {!Ssta_runtime.Cancel.on_signals}); [pool] parallelizes
    each request's path analysis without changing any response byte.
    Defaults: {!Ssta_core.Config.default}, no pool, no default deadline,
    retry off, {!Ssta_runtime.Backoff.none}, a fresh latch. *)

val dispatch : t -> Protocol.envelope -> string
(** Answer one decoded request (total: typed error responses, never an
    exception).  Exposed for tests; {!serve} drives it. *)

val serve :
  ?max_queue:int ->
  ?max_request_bytes:int ->
  t ->
  in_channel ->
  out_channel ->
  [ `Eof | `Shutdown | `Cancelled ]
(** Serve line-delimited requests until end of input, a [shutdown]
    request, or the cancellation latch trips.  A reader thread decodes
    and enqueues (bounded by [max_queue], default 64; lines over
    [max_request_bytes], default 1 MiB, are refused); the calling
    thread dispatches strictly in arrival order.  Returns after the
    accepted queue has drained.  Blank lines are ignored. *)

val serve_socket :
  ?max_queue:int ->
  ?max_request_bytes:int ->
  t ->
  path:string ->
  unit
(** Listen on a Unix-domain socket, serving one connection at a time
    (each connection is a {!serve} session; its end-of-stream ends only
    that connection).  Returns on a [shutdown] request or when the
    cancellation latch trips; the socket file is removed on exit. *)

val lifetime : t -> Ssta_runtime.Health.t
(** The server-lifetime ledger: request/queue/retry counters and every
    numerical-health event merged from per-request private ledgers. *)

val summary : t -> string
(** One-line statistics summary (flushed to stderr on shutdown by the
    CLI). *)
