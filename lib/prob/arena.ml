type t = {
  (* Free lists keyed by exact buffer length.  A run touches only a few
     distinct grid sizes (the quality settings), so an association list
     outperforms a hashtable here. *)
  mutable free : (int * float array list) list;
  sizes : (int, unit) Hashtbl.t;
  mutable borrow_bytes : int;
  mutable outstanding_bytes : int;
  mutable peak_bytes : int;
}

let create () =
  { free = [];
    sizes = Hashtbl.create 8;
    borrow_bytes = 0;
    outstanding_bytes = 0;
    peak_bytes = 0 }

let bytes_of_len n = 8 * n

let borrow a n =
  if n <= 0 then invalid_arg "Arena.borrow: n must be positive";
  let b = bytes_of_len n in
  a.borrow_bytes <- a.borrow_bytes + b;
  a.outstanding_bytes <- a.outstanding_bytes + b;
  if a.outstanding_bytes > a.peak_bytes then
    a.peak_bytes <- a.outstanding_bytes;
  match List.assoc_opt n a.free with
  | Some (buf :: rest) ->
      a.free <- (n, rest) :: List.remove_assoc n a.free;
      Array.fill buf 0 n 0.0;
      buf
  | Some [] | None ->
      if not (Hashtbl.mem a.sizes n) then Hashtbl.add a.sizes n ();
      Array.make n 0.0

let release a buf =
  let n = Array.length buf in
  a.outstanding_bytes <- a.outstanding_bytes - bytes_of_len n;
  let rest =
    match List.assoc_opt n a.free with Some l -> l | None -> []
  in
  a.free <- (n, buf :: rest) :: List.remove_assoc n a.free

type stats = {
  st_sizes : int list;
  st_borrow_bytes : int;
  st_peak_bytes : int;
}

let stats a =
  { st_sizes = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) a.sizes []);
    st_borrow_bytes = a.borrow_bytes;
    st_peak_bytes = a.peak_bytes }

let merged_stats l =
  let union = Hashtbl.create 8 in
  let borrow = ref 0 and peak = ref 0 in
  List.iter
    (fun st ->
      List.iter (fun s -> Hashtbl.replace union s ()) st.st_sizes;
      borrow := !borrow + st.st_borrow_bytes;
      if st.st_peak_bytes > !peak then peak := st.st_peak_bytes)
    l;
  { st_sizes = List.sort compare (Hashtbl.fold (fun k () l -> k :: l) union []);
    st_borrow_bytes = !borrow;
    st_peak_bytes = !peak }

let buffers_created st = List.length st.st_sizes

let bytes_reused st =
  let first_alloc =
    List.fold_left (fun acc s -> acc + bytes_of_len s) 0 st.st_sizes
  in
  Int.max 0 (st.st_borrow_bytes - first_alloc)

type pools = {
  mutable shards : (int * t) list;
  lock : Mutex.t;
}

let pools_create () = { shards = []; lock = Mutex.create () }

let pools_get p =
  let id = (Domain.self () :> int) in
  Mutex.protect p.lock (fun () ->
      match List.assoc_opt id p.shards with
      | Some a -> a
      | None ->
          let a = create () in
          p.shards <- (id, a) :: p.shards;
          a)

let pools_stats p =
  Mutex.protect p.lock (fun () ->
      merged_stats (List.map (fun (_, a) -> stats a) p.shards))
