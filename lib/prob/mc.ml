module Pool = Ssta_parallel.Pool

type result = {
  samples : float array;
  summary : Stats.summary;
  empirical : Pdf.t;
  stopped : bool;
}

let of_samples ?(stopped = false) ~bins samples =
  { samples;
    summary = Stats.summarize samples;
    empirical = Pdf.of_samples ~n:bins samples;
    stopped }

let run ?(bins = 100) ~n rng draw =
  if n < 2 then invalid_arg "Mc.run: need at least 2 samples";
  of_samples ~bins (Array.init n (fun _ -> draw rng))

let shard_size = 4096

let run_sharded ?(bins = 100) ?pool ?should_stop ~n ~seed draw =
  if n < 2 then invalid_arg "Mc.run_sharded: need at least 2 samples";
  (* The shard layout is a function of [n] alone: [shard_size] samples
     per shard, each shard drawing from its own stream split off the
     master seed.  The pool only decides which domain evaluates which
     shard, so the sample array is bit-identical at any worker count. *)
  let shards = (n + shard_size - 1) / shard_size in
  let streams = Rng.split (Rng.create seed) shards in
  let samples = Array.make n 0.0 in
  let fill si =
    let rng = streams.(si) in
    let lo = si * shard_size in
    let hi = Int.min n (lo + shard_size) - 1 in
    for i = lo to hi do
      samples.(i) <- draw rng
    done;
    si
  in
  (* Cancellation stops between shards, keeping a contiguous prefix;
     shard 0 always completes so the summary has samples to stand on. *)
  let completed, stopped =
    match pool, should_stop with
    | None, None ->
        for si = 0 to shards - 1 do
          ignore (fill si)
        done;
        (shards, false)
    | None, Some stop ->
        let si = ref 0 and stopped = ref false in
        while !si < shards && not !stopped do
          ignore (fill !si);
          incr si;
          if !si < shards && stop () then stopped := true
        done;
        (!si, !stopped)
    | Some pool, None -> Pool.run pool ~chunks:shards (fun si -> ignore (fill si));
        (shards, false)
    | Some pool, Some stop ->
        ignore (fill 0);
        if shards = 1 then (1, false)
        else
          let prefix, stopped =
            Pool.map_prefix pool ~chunk:1 ~should_stop:stop
              (fun si -> fill si)
              (Array.init (shards - 1) (fun i -> i + 1))
          in
          (1 + Array.length prefix, stopped)
  in
  if completed = shards then of_samples ~bins samples
  else
    of_samples ~stopped ~bins
      (Array.sub samples 0 (Int.min n (completed * shard_size)))

let compare_to_pdf r pdf =
  let mean_err = Float.abs (r.summary.Stats.mean -. Pdf.mean pdf) in
  let std_err = Float.abs (r.summary.Stats.std -. Pdf.std pdf) in
  let ks = Stats.ks_against_pdf r.samples pdf in
  (mean_err, std_err, ks)
