module Pool = Ssta_parallel.Pool

type result = {
  samples : float array;
  summary : Stats.summary;
  empirical : Pdf.t;
}

let of_samples ~bins samples =
  { samples;
    summary = Stats.summarize samples;
    empirical = Pdf.of_samples ~n:bins samples }

let run ?(bins = 100) ~n rng draw =
  if n < 2 then invalid_arg "Mc.run: need at least 2 samples";
  of_samples ~bins (Array.init n (fun _ -> draw rng))

let shard_size = 4096

let run_sharded ?(bins = 100) ?pool ~n ~seed draw =
  if n < 2 then invalid_arg "Mc.run_sharded: need at least 2 samples";
  (* The shard layout is a function of [n] alone: [shard_size] samples
     per shard, each shard drawing from its own stream split off the
     master seed.  The pool only decides which domain evaluates which
     shard, so the sample array is bit-identical at any worker count. *)
  let shards = (n + shard_size - 1) / shard_size in
  let streams = Rng.split (Rng.create seed) shards in
  let samples = Array.make n 0.0 in
  let fill si =
    let rng = streams.(si) in
    let lo = si * shard_size in
    let hi = Int.min n (lo + shard_size) - 1 in
    for i = lo to hi do
      samples.(i) <- draw rng
    done
  in
  (match pool with
  | None ->
      for si = 0 to shards - 1 do
        fill si
      done
  | Some pool -> Pool.run pool ~chunks:shards fill);
  of_samples ~bins samples

let compare_to_pdf r pdf =
  let mean_err = Float.abs (r.summary.Stats.mean -. Pdf.mean pdf) in
  let std_err = Float.abs (r.summary.Stats.std -. Pdf.std pdf) in
  let ks = Stats.ks_against_pdf r.samples pdf in
  (mean_err, std_err, ks)
