(** Deterministic pseudo-random number generation.

    A splitmix64 generator with explicit state.  Every stochastic component
    of the library (circuit generators, Monte-Carlo baselines) threads one
    of these so that all experiments regenerate bit-identically from a
    seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> int -> t array
(** [split t n] derives [n] statistically independent generators from the
    master stream and advances [t] by [n] draws.  Each shard starts from
    its own re-mixed draw of the master, so shard streams are pairwise
    non-overlapping for any feasible number of draws and sharded
    Monte-Carlo runs are bit-reproducible for a given master seed at any
    worker count.  [n] must be at least 1. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1]; [n] must be positive. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal deviate via Box-Muller. *)

val truncated_gaussian : t -> mu:float -> sigma:float -> bound:float -> float
(** [truncated_gaussian t ~mu ~sigma ~bound] samples a normal deviate
    conditioned on lying within [mu +- bound*sigma] (rejection sampling;
    [bound] must be positive, and should be >= 0.5 for the rejection loop
    to terminate quickly). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
