(** Discretized probability density functions on uniform grids.

    This is the numerical heart of the reproduction: the paper computes
    path-delay PDFs by discretizing each random variable's density at
    [QUALITY] points and combining grids numerically.  A value of type
    {!t} stores a density sampled at the centers of [n] equal-width cells;
    the represented measure assigns mass [density.(i) *. step] to cell
    [i].  All constructors normalize, so the total mass is always 1 (up to
    float rounding). *)

type t = private {
  lo : float;  (** left edge of the first cell *)
  step : float;  (** cell width (positive) *)
  density : float array;  (** density at cell centers *)
}

val make : lo:float -> step:float -> float array -> t
(** [make ~lo ~step density] normalizes [density] (which must be
    non-negative with positive total mass) into a PDF.  Raises
    [Invalid_argument] on empty arrays, non-positive [step], negative
    entries or zero total mass. *)

val make_owned : lo:float -> step:float -> float array -> t
(** Bit-identical to {!make}, but takes ownership of the array and
    normalizes it in place instead of copying.  The caller must not use
    the array afterwards.  This is the constructor the zero-allocation
    combinators ({!Combine.sum} and friends) normalize into. *)

val of_fun : lo:float -> hi:float -> n:int -> (float -> float) -> t
(** [of_fun ~lo ~hi ~n f] samples the unnormalized density [f] at the [n]
    cell centers of [lo, hi] and normalizes. *)

val point_mass : ?n:int -> float -> t
(** [point_mass x] is a degenerate distribution concentrated (within one
    narrow cell) at [x]. *)

val size : t -> int
(** Number of grid cells. *)

val hi : t -> float
(** Right edge of the last cell. *)

val x_at : t -> int -> float
(** [x_at p i] is the center of cell [i]. *)

val mass_at : t -> int -> float
(** [mass_at p i] is the probability mass of cell [i]. *)

val total_mass : t -> float
(** Total mass (should be 1 within rounding; exposed for tests). *)

val mean : t -> float
val variance : t -> float
val std : t -> float

type moments = { m_mean : float; m_var : float }
(** First two moments, computed together. *)

val moments : t -> moments
(** [moments p] returns the mean and (clamped non-negative) variance in a
    single call, traversing the density twice instead of the four walks
    that separate [mean]/[std] calls would cost.  Values are bit-identical
    to [mean p] and [variance p]. *)

val moment_central : t -> int -> float
(** [moment_central p k] is E[(X - mean)^k]. *)

val skewness : t -> float

val cdf : t -> float -> float
(** [cdf p x] is P(X <= x), linear within cells. *)

val quantile : t -> float -> float
(** [quantile p q] for [q] in [0, 1]: smallest [x] with [cdf p x >= q],
    interpolated within the crossing cell. *)

val sigma_point : t -> float -> float
(** [sigma_point p k] is [mean p +. k *. std p] — the paper's
    "confidence point" (e.g. the 3-sigma point used to rank paths). *)

val mode : t -> float
(** Center of the highest-density cell. *)

val density_at : t -> float -> float
(** Density evaluated at an arbitrary point (0 outside the support,
    piecewise-constant inside). *)

val shift : t -> float -> t
(** [shift p c] is the distribution of X + c. *)

val scale : t -> float -> t
(** [scale p a] is the distribution of a*X for [a <> 0]. *)

val affine : t -> mul:float -> add:float -> t
(** [affine p ~mul ~add] is the distribution of mul*X + add. *)

val resample : t -> n:int -> t
(** Re-grid to [n] cells over the same support, conserving cell mass. *)

val restrict : t -> lo:float -> hi:float -> t
(** Condition the distribution on [lo, hi] (renormalizes).  Raises
    [Invalid_argument] if the window carries no mass. *)

val of_samples : ?n:int -> float array -> t
(** Histogram estimate from empirical samples (default [n] = 100 bins).
    Raises [Invalid_argument] on fewer than 2 samples. *)

val sample : t -> Rng.t -> float
(** Draw one value by inverse-CDF sampling. *)

val ks_distance : t -> t -> float
(** Kolmogorov-Smirnov statistic sup_x |F(x) - G(x)| between two PDFs,
    evaluated on the union of both grids. *)

val pp : Format.formatter -> t -> unit
(** Short human-readable summary (support, mean, std). *)

(** {1 Operation tracing}

    A process-wide observation hook used by the PDF sanitizer
    ([Ssta_check.Pdfsan]).  Every grid operation in {!Pdf} and
    [Combine] reports its result together with a shadow interval — the
    support the output must be contained in, derived independently by
    interval arithmetic on the inputs — and bookkeeping for mass
    conservation.  When no hook is installed the instrumentation is a
    single [ref] read per operation. *)

type trace_event = {
  trace_op : string;  (** originating operation, e.g. ["combine.sum"] *)
  trace_expected : (float * float) option;
      (** shadow support interval the output must lie within, when the
          operation admits one *)
  trace_mass_in : float option;
      (** pre-normalization mass the operation accumulated; should be 1
          within rounding for mass-conserving operations *)
  trace_clamped : float;
      (** mass that landed strictly outside the target grid and was
          clamped to a boundary cell *)
  trace_output : t;  (** the operation's result *)
}

val trace_install : (trace_event -> unit) -> unit
(** Install the hook (replacing any previous one). *)

val trace_uninstall : unit -> unit
(** Remove the hook. *)

val trace_active : unit -> bool
(** Whether a hook is currently installed. *)

val trace_emit : trace_event -> unit
(** Feed one event to the installed hook (no-op without one).  Exposed
    for [Combine] and for fault-injection in tests. *)

val traced :
  op:string ->
  ?expected:float * float ->
  ?mass_in:float ->
  ?clamped:float ->
  t ->
  t
(** [traced ~op p] reports [p] to the hook and returns it. *)
