(* Splitmix64 (Steele, Lea, Flood 2014): tiny state, passes BigCrush, and
   trivially splittable -- ideal for deterministic experiment replay. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t n =
  if n < 1 then invalid_arg "Rng.split: need at least one shard";
  (* Each shard state is an independent draw from the master stream,
     re-mixed: shard i's sequence then walks its own gamma lattice from
     a point ~uniform in the 2^64 state space, so two shards revisiting
     each other's states within any feasible draw horizon would need a
     ~2^-40 state collision.  The master advances by [n], so later
     splits (or further master draws) never reuse a shard stream. *)
  Array.init n (fun _ -> { state = mix (int64 t) })

let float t =
  (* 53 high bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 random bits fit a non-negative OCaml int; modulo bias is
     negligible for n << 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod n

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t in
    if u1 <= 0.0 then draw ()
    else
      let u2 = float t in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let truncated_gaussian t ~mu ~sigma ~bound =
  if bound <= 0.0 then
    invalid_arg "Rng.truncated_gaussian: bound must be positive";
  let rec draw () =
    let x = gaussian t ~mu ~sigma in
    if Float.abs (x -. mu) <= bound *. sigma then x else draw ()
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
