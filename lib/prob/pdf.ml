type t = { lo : float; step : float; density : float array }

type trace_event = {
  trace_op : string;
  trace_expected : (float * float) option;
  trace_mass_in : float option;
  trace_clamped : float;
  trace_output : t;
}

(* The sanitizer hook lives here (rather than in a separate module)
   because the grid operations that emit events are defined in this file
   and in Combine, which already depends on Pdf. *)
let trace_hook : (trace_event -> unit) option ref = ref None

let trace_install f = trace_hook := Some f
let trace_uninstall () = trace_hook := None
let trace_active () = Option.is_some !trace_hook

let trace_emit ev = match !trace_hook with None -> () | Some f -> f ev

let traced ~op ?expected ?mass_in ?(clamped = 0.0) p =
  (match !trace_hook with
  | None -> ()
  | Some f ->
      f
        { trace_op = op;
          trace_expected = expected;
          trace_mass_in = mass_in;
          trace_clamped = clamped;
          trace_output = p });
  p

let total_unnormalized step density =
  Array.fold_left (fun acc d -> acc +. (d *. step)) 0.0 density

let validate_density ~step density =
  let n = Array.length density in
  if n = 0 then invalid_arg "Pdf.make: empty density";
  if not (step > 0.0) then invalid_arg "Pdf.make: step must be positive";
  Array.iter
    (fun d ->
      if d < 0.0 || Float.is_nan d then
        invalid_arg "Pdf.make: density entries must be non-negative")
    density;
  let mass = total_unnormalized step density in
  if not (mass > 0.0) then invalid_arg "Pdf.make: zero total mass";
  mass

let make ~lo ~step density =
  let mass = validate_density ~step density in
  { lo; step; density = Array.map (fun d -> d /. mass) density }

(* Same contract and bit-identical result as [make], but takes ownership
   of [density] and normalizes it in place instead of copying — the
   constructor the zero-allocation combinators use. *)
let make_owned ~lo ~step density =
  let mass = validate_density ~step density in
  for i = 0 to Array.length density - 1 do
    Array.unsafe_set density i (Array.unsafe_get density i /. mass)
  done;
  { lo; step; density }

let of_fun ~lo ~hi ~n f =
  if n <= 0 then invalid_arg "Pdf.of_fun: n must be positive";
  if not (hi > lo) then invalid_arg "Pdf.of_fun: hi must exceed lo";
  let step = (hi -. lo) /. float_of_int n in
  let density =
    Array.init n (fun i -> f (lo +. ((float_of_int i +. 0.5) *. step)))
  in
  make_owned ~lo ~step density

let point_mass ?(n = 3) x =
  let eps = 1e-12 *. (1.0 +. Float.abs x) in
  let density = Array.make n 0.0 in
  density.(n / 2) <- 1.0;
  make ~lo:(x -. (float_of_int n /. 2.0 *. eps)) ~step:eps density

let size p = Array.length p.density
let hi p = p.lo +. (p.step *. float_of_int (size p))
let x_at p i = p.lo +. ((float_of_int i +. 0.5) *. p.step)
let mass_at p i = p.density.(i) *. p.step
let total_mass p = total_unnormalized p.step p.density

(* The accumulation loops keep every float local (scratch slot in an
   unboxed float array, inlined cell arithmetic): without flambda, the
   historical [x_at]/[mass_at]/[ref] formulation boxed three floats per
   cell.  The expressions are the same, so the sums are bit-identical. *)
let mean p =
  let lo = p.lo and step = p.step and d = p.density in
  let acc = [| 0.0 |] in
  for i = 0 to Array.length d - 1 do
    let x = lo +. ((float_of_int i +. 0.5) *. step) in
    Array.unsafe_set acc 0
      (Array.unsafe_get acc 0 +. (x *. (Array.unsafe_get d i *. step)))
  done;
  Array.unsafe_get acc 0

let moment_central_about p ~mu k =
  let lo = p.lo and step = p.step and d = p.density in
  let fk = float_of_int k in
  let acc = [| 0.0 |] in
  for i = 0 to Array.length d - 1 do
    let x = lo +. ((float_of_int i +. 0.5) *. step) in
    Array.unsafe_set acc 0
      (Array.unsafe_get acc 0
      +. (((x -. mu) ** fk) *. (Array.unsafe_get d i *. step)))
  done;
  Array.unsafe_get acc 0

let moment_central p k = moment_central_about p ~mu:(mean p) k

type moments = { m_mean : float; m_var : float }

let moments p =
  let mu = mean p in
  { m_mean = mu; m_var = Float.max 0.0 (moment_central_about p ~mu 2) }

let variance p = (moments p).m_var

let std p = sqrt (variance p)

let skewness p =
  let mu = mean p in
  let s = sqrt (Float.max 0.0 (moment_central_about p ~mu 2)) in
  if s = 0.0 then 0.0 else moment_central_about p ~mu 3 /. (s *. s *. s)

let cdf p x =
  if x <= p.lo then 0.0
  else if x >= hi p then 1.0
  else begin
    let fi = (x -. p.lo) /. p.step in
    let i = int_of_float (Float.floor fi) in
    let i = if i >= size p then size p - 1 else i in
    let acc = ref 0.0 in
    for j = 0 to i - 1 do
      acc := !acc +. mass_at p j
    done;
    !acc +. (mass_at p i *. (fi -. float_of_int i))
  end

let quantile p q =
  if q < 0.0 || q > 1.0 then invalid_arg "Pdf.quantile: q must be in [0, 1]";
  if q <= 0.0 then p.lo
  else begin
    let acc = ref 0.0 in
    let result = ref (hi p) in
    (try
       for i = 0 to size p - 1 do
         let m = mass_at p i in
         if !acc +. m >= q then begin
           let frac = if m > 0.0 then (q -. !acc) /. m else 0.0 in
           result := p.lo +. ((float_of_int i +. frac) *. p.step);
           raise Exit
         end;
         acc := !acc +. m
       done
     with Exit -> ());
    !result
  end

let sigma_point p k =
  let m = moments p in
  m.m_mean +. (k *. sqrt m.m_var)

let mode p =
  let best = ref 0 in
  for i = 1 to size p - 1 do
    if p.density.(i) > p.density.(!best) then best := i
  done;
  x_at p !best

let density_at p x =
  if x < p.lo || x >= hi p then 0.0
  else p.density.(int_of_float ((x -. p.lo) /. p.step))

let affine p ~mul ~add =
  if mul = 0.0 then invalid_arg "Pdf.affine: mul must be non-zero";
  let expected =
    if mul > 0.0 then ((p.lo *. mul) +. add, (hi p *. mul) +. add)
    else ((hi p *. mul) +. add, (p.lo *. mul) +. add)
  in
  let mass_in = total_mass p in
  let q =
    (* Explicit loops rather than Array.map/init: the closures box every
       element without flambda, and [scale] sits on the inter-cache hit
       path (one call per cached kernel lookup). *)
    if mul > 0.0 then begin
      let n = size p in
      let src = p.density in
      let density = Array.make n 0.0 in
      for i = 0 to n - 1 do
        Array.unsafe_set density i (Array.unsafe_get src i /. mul)
      done;
      { lo = (p.lo *. mul) +. add; step = p.step *. mul; density }
    end
    else begin
      let n = size p in
      let src = p.density in
      let density = Array.make n 0.0 in
      for i = 0 to n - 1 do
        Array.unsafe_set density i (Array.unsafe_get src (n - 1 - i) /. -.mul)
      done;
      { lo = (hi p *. mul) +. add; step = p.step *. -.mul; density }
    end
  in
  traced ~op:"pdf.affine" ~expected ~mass_in q

let shift p c = affine p ~mul:1.0 ~add:c
let scale p a = affine p ~mul:a ~add:0.0

let resample p ~n =
  if n <= 0 then invalid_arg "Pdf.resample: n must be positive";
  let lo = p.lo and h = hi p in
  let step' = (h -. lo) /. float_of_int n in
  let density = Array.make n 0.0 in
  (* Deposit each source cell's mass into destination cells by overlap. *)
  for i = 0 to size p - 1 do
    let a = p.lo +. (float_of_int i *. p.step) in
    let b = a +. p.step in
    let m = mass_at p i in
    let ja = int_of_float ((a -. lo) /. step') in
    let jb = int_of_float (Float.min (float_of_int (n - 1))
                             ((b -. lo -. 1e-15) /. step')) in
    if ja = jb then density.(ja) <- density.(ja) +. m
    else
      for j = Int.max 0 ja to Int.min (n - 1) jb do
        let cell_a = lo +. (float_of_int j *. step') in
        let cell_b = cell_a +. step' in
        let overlap = Float.min b cell_b -. Float.max a cell_a in
        if overlap > 0.0 then
          density.(j) <- density.(j) +. (m *. overlap /. p.step)
      done
  done;
  let mass_in = total_unnormalized 1.0 density in
  traced ~op:"pdf.resample" ~expected:(p.lo, h) ~mass_in
    (make ~lo ~step:step' (Array.map (fun m -> m /. step') density))

let restrict p ~lo ~hi:hiv =
  if not (hiv > lo) then invalid_arg "Pdf.restrict: empty window";
  let masked =
    Array.mapi
      (fun i d ->
        let x = x_at p i in
        if x >= lo && x <= hiv then d else 0.0)
      p.density
  in
  try traced ~op:"pdf.restrict" ~expected:(p.lo, hi p)
        (make ~lo:p.lo ~step:p.step masked)
  with Invalid_argument _ ->
    invalid_arg "Pdf.restrict: window carries no probability mass"

let of_samples ?(n = 100) samples =
  let m = Array.length samples in
  if m < 2 then invalid_arg "Pdf.of_samples: need at least 2 samples";
  let lo = Array.fold_left Float.min samples.(0) samples in
  let hi = Array.fold_left Float.max samples.(0) samples in
  let span = if hi > lo then hi -. lo else 1e-9 *. (1.0 +. Float.abs lo) in
  (* Widen slightly so the max sample falls inside the last cell. *)
  let span = span *. (1.0 +. 1e-9) in
  let step = span /. float_of_int n in
  let counts = Array.make n 0.0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. lo) /. step) in
      let i = if i >= n then n - 1 else if i < 0 then 0 else i in
      counts.(i) <- counts.(i) +. 1.0)
    samples;
  make ~lo ~step counts

let sample p rng = quantile p (Rng.float rng)

let ks_distance p q =
  let points =
    Array.append
      (Array.init (size p + 1) (fun i -> p.lo +. (float_of_int i *. p.step)))
      (Array.init (size q + 1) (fun i -> q.lo +. (float_of_int i *. q.step)))
  in
  Array.fold_left
    (fun acc x -> Float.max acc (Float.abs (cdf p x -. cdf q x)))
    0.0 points

let pp fmt p =
  Format.fprintf fmt "pdf[%g..%g] n=%d mean=%g std=%g" p.lo (hi p) (size p)
    (mean p) (std p)
