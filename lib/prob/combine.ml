type accumulator = {
  acc_lo : float;
  acc_step : float;
  cells : float array;
  mutable deposited : float;
  mutable clamped : float;
}

let accumulator ~lo ~hi ~n =
  if n <= 0 then invalid_arg "Combine.accumulator: n must be positive";
  if not (hi > lo) then invalid_arg "Combine.accumulator: hi must exceed lo";
  { acc_lo = lo;
    acc_step = (hi -. lo) /. float_of_int n;
    cells = Array.make n 0.0;
    deposited = 0.0;
    clamped = 0.0 }

(* Linear mass splitting between the two nearest cell centers keeps the
   mean of each deposit exact, which matters for the paper's claim that
   the probabilistic mean differs from the nominal delay. *)
let deposit a ~x ~mass =
  if mass > 0.0 then begin
    let n = Array.length a.cells in
    (* Deposits strictly outside the grid get clamped to a boundary cell
       below; count that mass so the sanitizer can flag range-scan
       failures.  A position exactly on the right edge is in range. *)
    if x < a.acc_lo || x > a.acc_lo +. (a.acc_step *. float_of_int n) then
      a.clamped <- a.clamped +. mass;
    let u = ((x -. a.acc_lo) /. a.acc_step) -. 0.5 in
    let i = int_of_float (Float.floor u) in
    let frac = u -. float_of_int i in
    let put j m =
      if m > 0.0 then begin
        let j = if j < 0 then 0 else if j >= n then n - 1 else j in
        a.cells.(j) <- a.cells.(j) +. m
      end
    in
    put i (mass *. (1.0 -. frac));
    put (i + 1) (mass *. frac);
    a.deposited <- a.deposited +. mass
  end

(* Same semantics as [deposit] (identical arithmetic, same clamping and
   accounting), but the destination indices are clamped up front so the
   two cell updates can use unchecked array access.  This is the inner
   statement of the O(Q^3) inter-kernel loop, where the bounds checks are
   measurable. *)
let unsafe_deposit a ~x ~mass =
  if mass > 0.0 then begin
    let n = Array.length a.cells in
    if x < a.acc_lo || x > a.acc_lo +. (a.acc_step *. float_of_int n) then
      a.clamped <- a.clamped +. mass;
    let u = ((x -. a.acc_lo) /. a.acc_step) -. 0.5 in
    let i = int_of_float (Float.floor u) in
    let frac = u -. float_of_int i in
    let m0 = mass *. (1.0 -. frac) and m1 = mass *. frac in
    if m0 > 0.0 then begin
      let j = if i < 0 then 0 else if i >= n then n - 1 else i in
      Array.unsafe_set a.cells j (Array.unsafe_get a.cells j +. m0)
    end;
    if m1 > 0.0 then begin
      let i1 = i + 1 in
      let j = if i1 < 0 then 0 else if i1 >= n then n - 1 else i1 in
      Array.unsafe_set a.cells j (Array.unsafe_get a.cells j +. m1)
    end;
    a.deposited <- a.deposited +. mass
  end

let clamped_mass a = a.clamped

let to_pdf a =
  if not (a.deposited > 0.0) then
    invalid_arg "Combine.to_pdf: no mass deposited";
  (* The mapped array is fresh, so the owning constructor normalizes it
     in place instead of copying a second time — same bits. *)
  Pdf.make_owned ~lo:a.acc_lo ~step:a.acc_step
    (Array.map (fun m -> m /. a.acc_step) a.cells)

(* Normalize an accumulator into a PDF and report the operation to the
   sanitizer hook.  [mass_in] defaults to the total deposited mass, which
   for mass-conserving combinators should be 1 within rounding. *)
let finish ~op ?expected ?mass_in a =
  let mass_in = match mass_in with Some m -> m | None -> a.deposited in
  Pdf.traced ~op ?expected ~mass_in ~clamped:a.clamped (to_pdf a)

(* Scan the corners and edges of the product grid to find the output
   range; for monotone-ish smooth functions (everything the delay model
   uses) extrema lie on the boundary of the box.  A sparse interior sweep
   guards against non-monotone combinations. *)
let range2 f px py =
  let lo = ref infinity and hi = ref neg_infinity in
  let consider v =
    if v < !lo then lo := v;
    if v > !hi then hi := v
  in
  let nx = Pdf.size px and ny = Pdf.size py in
  let stride n = Int.max 1 (n / 16) in
  let sx = stride nx and sy = stride ny in
  for i = 0 to nx - 1 do
    if i = 0 || i = nx - 1 || i mod sx = 0 then
      for j = 0 to ny - 1 do
        if j = 0 || j = ny - 1 || j mod sy = 0 then
          consider (f (Pdf.x_at px i) (Pdf.x_at py j))
      done
  done;
  (!lo, !hi)

let widen (lo, hi) =
  if hi > lo then (lo, hi)
  else
    let eps = 1e-12 *. (1.0 +. Float.abs lo) in
    (lo -. eps, hi +. eps)

let binop_into ?n f px py =
  let n = match n with Some n -> n | None -> Int.max (Pdf.size px) (Pdf.size py) in
  let lo, hi = widen (range2 f px py) in
  let a = accumulator ~lo ~hi ~n in
  for i = 0 to Pdf.size px - 1 do
    let x = Pdf.x_at px i and mx = Pdf.mass_at px i in
    if mx > 0.0 then
      for j = 0 to Pdf.size py - 1 do
        let my = Pdf.mass_at py j in
        if my > 0.0 then deposit a ~x:(f x (Pdf.x_at py j)) ~mass:(mx *. my)
      done
  done;
  a

(* {2 Zero-allocation fast paths}

   The binary combinators below are the hot path of the methodology (one
   [sum] per path stage, one [binop] per inter-kernel build).  They are
   re-implementations of [finish (binop_into f px py)] with three
   changes, none of which alters a single output bit:

   - the [deposit] arithmetic is inlined on raw arrays with every
     intermediate kept in registers or an unboxed scratch slot — the
     historical [x_at]/[mass_at]/[deposit] call chain boxes several
     floats per cell pair and updates two boxed record fields, which
     dominated the per-path minor-heap traffic;
   - the accumulation grid can come from a caller-provided {!Arena.t}
     instead of a fresh allocation;
   - normalization is fused: the output density is written once and
     normalized in place by [Pdf.make_owned] instead of the two extra
     arrays that [to_pdf] + [Pdf.make] allocate.

   [test_combine] qcheck-certifies bit-identity against the
   [accumulator]/[deposit]/[to_pdf] reference on random grids. *)

let scratch_cells arena n =
  match arena with Some a -> Arena.borrow a n | None -> Array.make n 0.0

let scratch_release arena cells =
  match arena with Some a -> Arena.release a cells | None -> ()

(* Fused equivalent of [finish]: normalize accumulated cell masses into
   a fresh density array, return the borrowed grid, and emit the trace
   event.  Division order matches [to_pdf] (cells /. step, then the mass
   fold inside [make_owned], then /. mass) expression for expression. *)
let finish_cells ~op ?expected arena ~lo ~step ~deposited ~clamped cells =
  if not (deposited > 0.0) then begin
    scratch_release arena cells;
    invalid_arg "Combine.to_pdf: no mass deposited"
  end;
  let n = Array.length cells in
  let density = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set density i (Array.unsafe_get cells i /. step)
  done;
  scratch_release arena cells;
  Pdf.traced ~op ?expected ~mass_in:deposited ~clamped
    (Pdf.make_owned ~lo ~step density)

let binop_core ~op ?expected ?n ?arena f px py =
  let xd = px.Pdf.density and yd = py.Pdf.density in
  let nx = Array.length xd and ny = Array.length yd in
  let n = match n with Some n -> n | None -> Int.max nx ny in
  let lo, hi = widen (range2 f px py) in
  if n <= 0 then invalid_arg "Combine.accumulator: n must be positive";
  if not (hi > lo) then invalid_arg "Combine.accumulator: hi must exceed lo";
  let xlo = px.Pdf.lo and xstep = px.Pdf.step in
  let ylo = py.Pdf.lo and ystep = py.Pdf.step in
  let step = (hi -. lo) /. float_of_int n in
  let grid_hi = lo +. (step *. float_of_int n) in
  let cells = scratch_cells arena n in
  (* acc.(0) = deposited mass, acc.(1) = clamped mass; a local float
     array keeps both unboxed across iterations. *)
  let acc = [| 0.0; 0.0 |] in
  (try
     for i = 0 to nx - 1 do
       let mx = Array.unsafe_get xd i *. xstep in
       if mx > 0.0 then begin
         let x = xlo +. ((float_of_int i +. 0.5) *. xstep) in
         for j = 0 to ny - 1 do
           let my = Array.unsafe_get yd j *. ystep in
           if my > 0.0 then begin
             let v = f x (ylo +. ((float_of_int j +. 0.5) *. ystep)) in
             let mass = mx *. my in
             if mass > 0.0 then begin
               if v < lo || v > grid_hi then
                 Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. mass);
               let u = ((v -. lo) /. step) -. 0.5 in
               let iu = int_of_float (Float.floor u) in
               let frac = u -. float_of_int iu in
               let m0 = mass *. (1.0 -. frac) in
               if m0 > 0.0 then begin
                 let k = if iu < 0 then 0 else if iu >= n then n - 1 else iu in
                 Array.unsafe_set cells k (Array.unsafe_get cells k +. m0)
               end;
               let m1 = mass *. frac in
               if m1 > 0.0 then begin
                 let i1 = iu + 1 in
                 let k = if i1 < 0 then 0 else if i1 >= n then n - 1 else i1 in
                 Array.unsafe_set cells k (Array.unsafe_get cells k +. m1)
               end;
               Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. mass)
             end
           end
         done
       end
     done
   with e ->
     scratch_release arena cells;
     raise e);
  finish_cells ~op ?expected arena ~lo ~step
    ~deposited:(Array.unsafe_get acc 0)
    ~clamped:(Array.unsafe_get acc 1)
    cells

let binop ?n ?arena f px py = binop_core ~op:"combine.binop" ?n ?arena f px py

(* Monomorphic specialization of [binop_core] at [( +. )]: the range
   scan and the convolution both inline the addition, so the whole inner
   loop compiles to straight float code with no closure call. *)
let sum ?n ?arena px py =
  let xd = px.Pdf.density and yd = py.Pdf.density in
  let nx = Array.length xd and ny = Array.length yd in
  let n = match n with Some n -> n | None -> Int.max nx ny in
  let xlo = px.Pdf.lo and xstep = px.Pdf.step in
  let ylo = py.Pdf.lo and ystep = py.Pdf.step in
  (* [range2 ( +. )], inlined; [x] is hoisted out of the inner loop —
     the same value the reference recomputes per pair. *)
  let rlo = ref infinity and rhi = ref neg_infinity in
  let sx = Int.max 1 (nx / 16) and sy = Int.max 1 (ny / 16) in
  for i = 0 to nx - 1 do
    if i = 0 || i = nx - 1 || i mod sx = 0 then begin
      let x = xlo +. ((float_of_int i +. 0.5) *. xstep) in
      for j = 0 to ny - 1 do
        if j = 0 || j = ny - 1 || j mod sy = 0 then begin
          let v = x +. (ylo +. ((float_of_int j +. 0.5) *. ystep)) in
          if v < !rlo then rlo := v;
          if v > !rhi then rhi := v
        end
      done
    end
  done;
  let lo, hi = widen (!rlo, !rhi) in
  if n <= 0 then invalid_arg "Combine.accumulator: n must be positive";
  if not (hi > lo) then invalid_arg "Combine.accumulator: hi must exceed lo";
  let step = (hi -. lo) /. float_of_int n in
  let grid_hi = lo +. (step *. float_of_int n) in
  let cells = scratch_cells arena n in
  let acc = [| 0.0; 0.0 |] in
  for i = 0 to nx - 1 do
    let mx = Array.unsafe_get xd i *. xstep in
    if mx > 0.0 then begin
      let x = xlo +. ((float_of_int i +. 0.5) *. xstep) in
      for j = 0 to ny - 1 do
        let my = Array.unsafe_get yd j *. ystep in
        if my > 0.0 then begin
          let v = x +. (ylo +. ((float_of_int j +. 0.5) *. ystep)) in
          let mass = mx *. my in
          if mass > 0.0 then begin
            if v < lo || v > grid_hi then
              Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. mass);
            let u = ((v -. lo) /. step) -. 0.5 in
            let iu = int_of_float (Float.floor u) in
            let frac = u -. float_of_int iu in
            let m0 = mass *. (1.0 -. frac) in
            if m0 > 0.0 then begin
              let k = if iu < 0 then 0 else if iu >= n then n - 1 else iu in
              Array.unsafe_set cells k (Array.unsafe_get cells k +. m0)
            end;
            let m1 = mass *. frac in
            if m1 > 0.0 then begin
              let i1 = iu + 1 in
              let k = if i1 < 0 then 0 else if i1 >= n then n - 1 else i1 in
              Array.unsafe_set cells k (Array.unsafe_get cells k +. m1)
            end;
            Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. mass)
          end
        end
      done
    end
  done;
  (* Shadow support by interval arithmetic on the operand supports. *)
  let expected = (px.Pdf.lo +. py.Pdf.lo, Pdf.hi px +. Pdf.hi py) in
  finish_cells ~op:"combine.sum" ~expected arena ~lo ~step
    ~deposited:(Array.unsafe_get acc 0)
    ~clamped:(Array.unsafe_get acc 1)
    cells

let sum_list ?n ?arena = function
  | [] -> invalid_arg "Combine.sum_list: empty list"
  | [ p ] -> p
  | p :: rest -> List.fold_left (fun acc q -> sum ?n ?arena acc q) p rest

let product ?n ?arena px py =
  let xl = px.Pdf.lo and xh = Pdf.hi px in
  let yl = py.Pdf.lo and yh = Pdf.hi py in
  let corners = [| xl *. yl; xl *. yh; xh *. yl; xh *. yh |] in
  let expected =
    ( Array.fold_left Float.min corners.(0) corners,
      Array.fold_left Float.max corners.(0) corners )
  in
  binop_core ~op:"combine.product" ~expected ?n ?arena ( *. ) px py

let map ?n f p =
  let n = match n with Some n -> n | None -> Pdf.size p in
  let lo = ref infinity and hi = ref neg_infinity in
  for i = 0 to Pdf.size p - 1 do
    let v = f (Pdf.x_at p i) in
    if v < !lo then lo := v;
    if v > !hi then hi := v
  done;
  let lo, hi = widen (!lo, !hi) in
  let a = accumulator ~lo ~hi ~n in
  for i = 0 to Pdf.size p - 1 do
    deposit a ~x:(f (Pdf.x_at p i)) ~mass:(Pdf.mass_at p i)
  done;
  finish ~op:"combine.map" a

let push2 = binop

let push3 ?n f px py pz =
  let n =
    match n with
    | Some n -> n
    | None -> Int.max (Pdf.size px) (Int.max (Pdf.size py) (Pdf.size pz))
  in
  (* Range scan over a coarse sub-grid of the 3-D box. *)
  let lo = ref infinity and hi = ref neg_infinity in
  let consider v =
    if v < !lo then lo := v;
    if v > !hi then hi := v
  in
  let scan p = Int.max 1 (Pdf.size p / 8) in
  let sweep p k =
    let n = Pdf.size p in
    k 0;
    k (n - 1);
    let s = scan p in
    let i = ref s in
    while !i < n - 1 do
      k !i;
      i := !i + s
    done
  in
  sweep px (fun i ->
      sweep py (fun j ->
          sweep pz (fun k ->
              consider (f (Pdf.x_at px i) (Pdf.x_at py j) (Pdf.x_at pz k)))));
  let lo, hi = widen (!lo, !hi) in
  let a = accumulator ~lo ~hi ~n in
  for i = 0 to Pdf.size px - 1 do
    let x = Pdf.x_at px i and mx = Pdf.mass_at px i in
    if mx > 0.0 then
      for j = 0 to Pdf.size py - 1 do
        let y = Pdf.x_at py j and mxy = mx *. Pdf.mass_at py j in
        if mxy > 0.0 then
          for k = 0 to Pdf.size pz - 1 do
            let mz = Pdf.mass_at pz k in
            if mz > 0.0 then
              deposit a ~x:(f x y (Pdf.x_at pz k)) ~mass:(mxy *. mz)
          done
      done
  done;
  finish ~op:"combine.push3" a

let mixture weighted =
  if weighted = [] then invalid_arg "Combine.mixture: empty mixture";
  List.iter
    (fun (w, _) ->
      if not (w > 0.0) then
        invalid_arg "Combine.mixture: weights must be positive")
    weighted;
  let lo =
    List.fold_left (fun acc (_, p) -> Float.min acc (Pdf.x_at p 0 -. p.Pdf.step))
      infinity weighted
  in
  let hi =
    List.fold_left (fun acc (_, p) -> Float.max acc (Pdf.hi p)) neg_infinity
      weighted
  in
  let n = List.fold_left (fun acc (_, p) -> Int.max acc (Pdf.size p)) 1 weighted in
  let a = accumulator ~lo ~hi ~n in
  let wtotal = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  List.iter
    (fun (w, p) ->
      for i = 0 to Pdf.size p - 1 do
        deposit a ~x:(Pdf.x_at p i) ~mass:(w /. wtotal *. Pdf.mass_at p i)
      done)
    weighted;
  (* Hull of the component supports, widened by the coarsest component
     step because the mixture grid extends half a cell below the hull. *)
  let hull_lo =
    List.fold_left (fun acc (_, p) -> Float.min acc p.Pdf.lo) infinity weighted
  in
  let hull_hi =
    List.fold_left (fun acc (_, p) -> Float.max acc (Pdf.hi p)) neg_infinity
      weighted
  in
  let max_step =
    List.fold_left (fun acc (_, p) -> Float.max acc p.Pdf.step) 0.0 weighted
  in
  finish ~op:"combine.mixture"
    ~expected:(hull_lo -. max_step, hull_hi +. max_step)
    a
