(** Generic Monte-Carlo driver.

    The paper validates its analytic PDFs implicitly; this reproduction
    validates them explicitly by sampling the exact nonlinear delay model
    with correlated parameters and comparing summaries (mean error, std
    error and the Kolmogorov-Smirnov distance).

    Two entry points share the result type:

    + {!run} threads a single caller-owned {!Rng.t} through every draw —
      the historical sequential driver, reproducible for a given
      generator state.
    + {!run_sharded} partitions the draw budget into fixed-size shards,
      each fed by its own stream {!Rng.split} off a master seed, and
      optionally evaluates the shards on a
      {!Ssta_parallel.Pool.t}.  Because the shard layout depends only on
      [n] (never on the pool), the sample array — and therefore every
      downstream summary — is bit-identical whether it ran on 1 domain
      or 8.  This is the engine behind [ssta mc --jobs]. *)

type result = {
  samples : float array;  (** every draw, in shard-layout order *)
  summary : Stats.summary;  (** moments and quantiles of [samples] *)
  empirical : Pdf.t;  (** histogram estimate of the sampled distribution *)
  stopped : bool;
      (** a [should_stop] hook ended {!run_sharded} early: [samples] is
          the completed-shard prefix of the full budget *)
}

val run : ?bins:int -> n:int -> Rng.t -> (Rng.t -> float) -> result
(** [run ~n rng draw] evaluates [draw rng] [n] times ([n >= 2]) and
    summarizes.  [bins] controls the histogram resolution (default 100). *)

val shard_size : int
(** Number of samples per shard of {!run_sharded} (4096).  Part of the
    reproducibility contract: changing it changes which stream produces
    which sample. *)

val run_sharded :
  ?bins:int ->
  ?pool:Ssta_parallel.Pool.t ->
  ?should_stop:(unit -> bool) ->
  n:int ->
  seed:int ->
  (Rng.t -> float) ->
  result
(** [run_sharded ~pool ~n ~seed draw] evaluates [n] draws ([n >= 2])
    split into {!shard_size}-sample shards, shard [i] drawing from
    stream [i] of [Rng.split (Rng.create seed)].  Omitting [pool] (or
    passing a 1-job pool) runs the shards sequentially; the result is
    bit-identical either way.

    [should_stop] is polled between shards (cooperative cancellation:
    signals, deadlines).  When it fires, the completed contiguous
    shard prefix is kept — at least shard 0 always completes — and the
    result carries [stopped = true] with its summary taken over the
    kept samples only. *)

val compare_to_pdf : result -> Pdf.t -> float * float * float
(** [compare_to_pdf r pdf] is
    [(mean error, std error, KS distance)] between the sampled population
    and an analytic PDF — the validation triple used by the ablation
    benches. *)
