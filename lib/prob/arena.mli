(** Size-classed scratch pools for the zero-allocation grid kernels.

    The hot path of the methodology — [Combine.sum], [Combine.binop]
    and the O(Q^3) inter-kernel — historically allocated a fresh
    accumulation grid per call.  Under OCaml 5's shared minor heap that
    serializes worker domains on allocation and triggers a minor
    collection every few paths.  An arena keeps one free list of
    [float array] buffers per exact length; borrowing zero-fills a
    recycled buffer instead of allocating, and releasing returns it for
    the next grid operation of the same size.  A statistical run touches
    only a handful of distinct grid sizes (the intra/inter quality
    settings), so the pools reach steady state after the first path.

    Arenas are single-domain scratch: never share one [t] across
    domains.  {!pools} provides the per-domain sharding used by the
    parallel fan-out, mirroring the inter-kernel cache shards.

    Accounting is designed so the derived health counters are
    {e scheduling-independent} (see {!merged_stats}): total borrowed
    bytes is a per-path property summed over paths, the distinct size
    classes are a set union, and the peak outstanding bytes of any
    domain equals the sequential per-path peak because every borrow is
    released before the next path starts. *)

type t
(** A single-domain pool set. *)

val create : unit -> t

val borrow : t -> int -> float array
(** [borrow a n] returns a zero-filled array of length exactly [n],
    recycled from the pool when one is available.  Raises
    [Invalid_argument] when [n <= 0]. *)

val release : t -> float array -> unit
(** Return a borrowed buffer to its size-class free list.  The caller
    must not use the buffer afterwards. *)

type stats = {
  st_sizes : int list;  (** distinct buffer lengths ever borrowed, sorted *)
  st_borrow_bytes : int;  (** total bytes served over all borrows *)
  st_peak_bytes : int;  (** maximum outstanding borrowed bytes *)
}

val stats : t -> stats

val merged_stats : stats list -> stats
(** Deterministic merge across domains: size classes by set union,
    borrowed bytes by sum, peak by max.  Because each path's borrows are
    balanced by releases before the path ends, the per-domain peak is a
    max over that domain's paths, and the max over any partition of the
    paths equals the sequential maximum — the merge is independent of
    which domain analyzed which path. *)

val buffers_created : stats -> int
(** Number of distinct size classes — the buffers a steady-state
    sequential run allocates (one backing array per class). *)

val bytes_reused : stats -> int
(** [st_borrow_bytes] minus one allocation per size class: the bytes
    served by recycling rather than fresh allocation in the steady-state
    sequential model.  Scheduling-independent, unlike the raw per-domain
    allocation counts. *)

(** {1 Per-domain shards} *)

type pools
(** Lazily creates one arena per worker domain, keyed by domain id —
    the same sharding discipline as the inter-kernel cache. *)

val pools_create : unit -> pools

val pools_get : pools -> t
(** The calling domain's arena (created on first use). *)

val pools_stats : pools -> stats
(** {!merged_stats} over all shards. *)
