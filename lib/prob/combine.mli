(** Combinators over discretized PDFs of independent random variables.

    These implement the numeric machinery of the paper's Section 3.2: the
    intra/inter delay PDFs are built by convolving (sums) and multiplying
    (products) independent discretized distributions and by pushing grids
    of input RVs through the nonlinear Elmore delay function.  Mass is
    deposited with linear splitting between the two nearest destination
    cells, which keeps the first moment of each deposit exact.

    Every combinator reports its result through the {!Pdf.trace_emit}
    hook (when installed) together with a shadow support interval derived
    by interval arithmetic on its operands, the pre-normalization mass it
    accumulated, and the mass clamped at the grid boundary — the raw
    material for the PDF sanitizer. *)

type accumulator
(** A mass-accumulation grid onto which weighted samples are deposited
    before being normalized into a {!Pdf.t}. *)

val accumulator : lo:float -> hi:float -> n:int -> accumulator
(** Fresh accumulator with [n] cells spanning [lo, hi).  Mass deposited
    outside the range is clamped to the boundary cells. *)

val deposit : accumulator -> x:float -> mass:float -> unit
(** Add probability mass at position [x], split linearly between the two
    neighbouring cell centers. *)

val unsafe_deposit : accumulator -> x:float -> mass:float -> unit
(** Bit-identical to {!deposit} (same splitting, clamping and mass
    accounting) but clamps the two destination indices before the cell
    updates so the array accesses themselves are unchecked.  Intended for
    hot inner loops such as the inter-kernel triple loop. *)

val clamped_mass : accumulator -> float
(** Total mass deposited at positions strictly outside the grid (and
    therefore clamped into a boundary cell).  Nonzero values indicate a
    range-scan failure; the PDF sanitizer reports them. *)

val to_pdf : accumulator -> Pdf.t
(** Normalize the accumulated mass into a PDF.  Raises [Invalid_argument]
    if nothing was deposited. *)

val binop_into : ?n:int -> (float -> float -> float) -> Pdf.t -> Pdf.t -> accumulator
(** Reference implementation of the binary push-forward: range-scan,
    then one {!deposit} per cell pair.  {!binop}, {!sum} and {!product}
    are inlined zero-allocation rewrites of [to_pdf (binop_into f px py)];
    the qcheck suite certifies bit-identity against this path. *)

val binop :
  ?n:int ->
  ?arena:Arena.t ->
  (float -> float -> float) ->
  Pdf.t ->
  Pdf.t ->
  Pdf.t
(** [binop f px py] is the distribution of [f X Y] for independent X, Y.
    Cost O(|px| * |py|).  The output grid has [n] cells (default:
    max of the input sizes) spanning the observed range of [f].

    When [arena] is given, the O(n) accumulation grid is borrowed from
    it instead of freshly allocated (and released before returning);
    results are bit-identical either way. *)

val sum : ?n:int -> ?arena:Arena.t -> Pdf.t -> Pdf.t -> Pdf.t
(** Distribution of X + Y (independent): discrete convolution.  This is
    the paper's O(QUALITY^2) convolution of inter- and intra-PDFs, and
    the hottest grid operation of the methodology — it runs as a
    monomorphic zero-allocation loop (one output array per call, plus
    the arena-recyclable accumulation grid) that is bit-identical to
    [Combine.to_pdf] over [deposit] calls. *)

val sum_list : ?n:int -> ?arena:Arena.t -> Pdf.t list -> Pdf.t
(** Convolution of a non-empty list of independent summands. *)

val product : ?n:int -> ?arena:Arena.t -> Pdf.t -> Pdf.t -> Pdf.t
(** Distribution of X * Y (independent). *)

val map : ?n:int -> (float -> float) -> Pdf.t -> Pdf.t
(** Push-forward of a single PDF through an arbitrary function. *)

val push2 :
  ?n:int ->
  ?arena:Arena.t ->
  (float -> float -> float) ->
  Pdf.t ->
  Pdf.t ->
  Pdf.t
(** Alias of {!binop}, named for symmetry with {!push3}. *)

val push3 :
  ?n:int ->
  (float -> float -> float -> float) ->
  Pdf.t ->
  Pdf.t ->
  Pdf.t ->
  Pdf.t
(** [push3 f px py pz]: distribution of [f X Y Z] for independent inputs.
    Cost O(|px| * |py| * |pz|) — this is the 3-dimensional enumeration used
    for the voltage part of the inter-delay PDF. *)

val mixture : (float * Pdf.t) list -> Pdf.t
(** [mixture weighted] is the weighted mixture of component PDFs; weights
    must be positive and are renormalized.  The grid is the union support
    at the finest component resolution. *)
