module Err = Ssta_runtime.Ssta_error

exception Parse_error of Err.position * string

type t = { design : string; caps : (string * float) list }

let fail line msg = raise (Parse_error (Err.position ~line (), msg))

let fail_tok line line_text token msg =
  raise (Parse_error (Err.position_of_token ~line ~line_text token, msg))

let tokens_of_line line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_string text =
  let design = ref "" in
  let caps = ref [] in
  let pf = 1e-12 in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      match tokens_of_line raw with
      | [] -> ()
      | "*DESIGN" :: name :: _ -> design := name
      | "*D_NET" :: net :: cap :: _ -> (
          match float_of_string_opt cap with
          | Some c when c >= 0.0 && Float.is_finite c ->
              caps := (net, c *. pf) :: !caps
          | Some c when Float.is_nan c || not (Float.is_finite c) ->
              fail_tok lineno raw cap
                ("non-finite capacitance on net " ^ net)
          | Some _ ->
              fail_tok lineno raw cap ("negative capacitance on net " ^ net)
          | None -> fail_tok lineno raw cap ("bad capacitance value: " ^ cap))
      | "*D_NET" :: _ -> fail lineno "*D_NET needs a net name and a value"
      | tok :: _ when String.length tok > 0 && tok.[0] = '*' -> ()
      | _ -> ())
    (String.split_on_char '\n' text);
  if !design = "" then fail 0 "missing *DESIGN";
  { design = !design; caps = List.rev !caps }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try parse_string text
  with Parse_error (pos, msg) ->
    raise (Parse_error (Err.with_file pos path, msg))

let parse_string_res text =
  match parse_string text with
  | t -> Ok t
  | exception Parse_error (pos, msg) ->
      Error (Err.parse_at ~pos ~format:"spef" msg)
  | exception exn -> Error (Err.of_exn ~context:"Spef.parse" exn)

let parse_file_res path =
  match parse_file path with
  | t -> Ok t
  | exception Parse_error (pos, msg) ->
      Error (Err.parse_at ~pos ~format:"spef" msg)
  | exception Sys_error msg -> Error (Err.parse ~file:path ~format:"spef" msg)
  | exception exn -> Error (Err.of_exn ~context:"Spef.parse" exn)

let to_string t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "*SPEF \"IEEE 1481-1998\"\n";
  Buffer.add_string buf (Printf.sprintf "*DESIGN %s\n" t.design);
  Buffer.add_string buf "*C_UNIT 1 PF\n";
  List.iter
    (fun (net, cap) ->
      Buffer.add_string buf
        (Printf.sprintf "*D_NET %s %.6f\n" net (cap /. 1e-12)))
    t.caps;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let of_placement ?(wire = Ssta_tech.Wire.default) ~design (c : Netlist.t) pl =
  let fanouts = Netlist.fanouts c in
  let caps =
    Array.to_list c.Netlist.gates
    |> List.map (fun (g : Netlist.gate) ->
           let id = g.Netlist.id in
           let sinks =
             Array.to_list fanouts.(id)
             |> List.map (fun f -> Placement.coord pl f)
           in
           ( Netlist.node_name c id,
             Ssta_tech.Wire.net_cap wire (Placement.coord pl id) sinks ))
  in
  { design; caps }

let apply t (c : Netlist.t) =
  let table = Hashtbl.create 256 in
  List.iter (fun (net, cap) -> Hashtbl.replace table net cap) t.caps;
  let matched = ref 0 in
  let caps =
    Array.init (Netlist.num_nodes c) (fun id ->
        match Hashtbl.find_opt table (Netlist.node_name c id) with
        | Some cap ->
            incr matched;
            cap
        | None -> 0.0)
  in
  if !matched * 2 < Netlist.num_gates c then
    invalid_arg "Spef.apply: SPEF does not match this netlist";
  caps

let apply_res t c =
  match apply t c with
  | caps -> Ok caps
  | exception Invalid_argument msg ->
      Error (Err.structural ~subject:"spef-annotation" msg)
  | exception exn -> Error (Err.of_exn ~context:"Spef.apply" exn)
