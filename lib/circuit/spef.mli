(** Minimal SPEF-style parasitics exchange.

    Alongside DEF coordinates, a real flow feeds the timer extracted net
    capacitances.  This module reads and writes the lumped-capacitance
    subset of SPEF (IEEE 1481): a header and one [*D_NET <net> <cap>]
    record per net, capacitance in picofarads.

    {v
      *SPEF "IEEE 1481-1998"
      *DESIGN c432
      *C_UNIT 1 PF
      *D_NET n10 0.0023
      *D_NET n11 0.0017
    v}

    Net names refer to driver nodes of the netlist; {!apply} turns the
    annotation into a per-node wire-capacitance vector for
    {!Ssta_timing.Graph} construction. *)

exception Parse_error of Ssta_runtime.Ssta_error.position * string

type t = {
  design : string;
  caps : (string * float) list;  (** net name, capacitance in farads *)
}

val parse_string : string -> t
val parse_file : string -> t

val parse_string_res : string -> (t, Ssta_runtime.Ssta_error.t) result
val parse_file_res : string -> (t, Ssta_runtime.Ssta_error.t) result
(** Typed-error entry points: never raise.  NaN, infinite and negative
    capacitances are parse errors with line/column positions. *)

val to_string : t -> string
val write_file : string -> t -> unit

val of_placement :
  ?wire:Ssta_tech.Wire.params -> design:string -> Netlist.t -> Placement.t
  -> t
(** Pseudo-extraction: estimate every net's capacitance from the
    placement with the half-perimeter model — the writer's counterpart
    of {!Ssta_timing.Graph.of_placed}. *)

val apply : t -> Netlist.t -> float array
(** Per-node wire capacitances (farads), 0 for unannotated nets.
    Raises [Invalid_argument] if fewer than half the gates are
    annotated (wrong netlist/SPEF pairing). *)

val apply_res :
  t -> Netlist.t -> (float array, Ssta_runtime.Ssta_error.t) result
(** Typed-error variant of {!apply}: never raises. *)
