(** Reader/writer for the ISCAS85 [.bench] netlist format.

    The format used to distribute the benchmark circuits the paper
    evaluates on:

    {v
      # comment
      INPUT(G1)
      OUTPUT(G17)
      G10 = NAND(G1, G3)
      G11 = NOT(G5)
    v}

    Signals may be referenced before their defining line; the parser
    resolves definitions in dependency order (the file must still be
    combinational — cyclic definitions are an error). *)

exception Parse_error of Ssta_runtime.Ssta_error.position * string
(** Position (line and, where recoverable, column) plus message.
    Resolution-phase errors (cycles, undefined signals) carry line 0. *)

val parse_string : ?name:string -> string -> Netlist.t
(** Parse the contents of a .bench file.  [name] overrides the circuit
    name (default ["bench"]).  Raises {!Parse_error}. *)

val parse_file : string -> Netlist.t
(** Parse from disk; circuit name is the file's basename without
    extension.  Raises {!Parse_error} (with the file in its position)
    or [Sys_error]. *)

val parse_string_res :
  ?name:string -> string -> (Netlist.t, Ssta_runtime.Ssta_error.t) result
(** Typed-error entry point: never raises. *)

val parse_file_res : string -> (Netlist.t, Ssta_runtime.Ssta_error.t) result
(** Typed-error entry point: never raises (I/O failures included). *)

val to_string : Netlist.t -> string
(** Render a netlist back to .bench text (a parse/print round trip
    preserves structure and names). *)

val write_file : string -> Netlist.t -> unit
