module Err = Ssta_runtime.Ssta_error

type op =
  | Resize of { gate : string; drive : float }
  | Retype of { gate : string; kind : string }
  | Move of { gate : string; x : float; y : float }
  | Set of { param : string; value : float }

type edit = { op : op; line : int }
type t = edit list

exception Fail of Err.t

let fail ?file ~line fmt =
  Printf.ksprintf
    (fun m -> raise (Fail (Err.parse ?file ~line ~format:"edit" m)))
    fmt

(* All numbers in a script must be finite: NaN and infinities have no
   meaning for a drive, a coordinate or a parameter value, and catching
   them here keeps every downstream consumer total. *)
let number ?file ~line ~what s =
  match float_of_string_opt s with
  | Some x when Float.is_finite x -> x
  | Some _ -> fail ?file ~line "%s must be finite, got %S" what s
  | None -> fail ?file ~line "%s must be a number, got %S" what s

let parse_line ?file ~line tokens =
  match tokens with
  | [ "resize"; gate; d ] ->
      Resize { gate; drive = number ?file ~line ~what:"drive" d }
  | [ "retype"; gate; kind ] when kind <> "" -> Retype { gate; kind }
  | [ "move"; gate; x; y ] ->
      Move
        { gate;
          x = number ?file ~line ~what:"x coordinate" x;
          y = number ?file ~line ~what:"y coordinate" y }
  | [ "set"; param; v ] when param <> "" ->
      Set { param; value = number ?file ~line ~what:"parameter value" v }
  | ("resize" | "retype" | "move" | "set") :: _ ->
      fail ?file ~line
        "malformed %s edit: expected \"resize GATE DRIVE\", \"retype GATE \
         KIND\", \"move GATE X Y\" or \"set PARAM VALUE\""
        (List.hd tokens)
  | op :: _ ->
      fail ?file ~line
        "unknown edit op %S (expected resize, retype, move or set)" op
  | [] -> assert false (* blank lines are filtered out by the caller *)

let split_tokens s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

let parse_string_res ?file text =
  try
    let edits = ref [] in
    List.iteri
      (fun i raw ->
        let line = i + 1 in
        match split_tokens (strip_comment raw) with
        | [] -> ()
        | tokens -> edits := { op = parse_line ?file ~line tokens; line } :: !edits)
      (String.split_on_char '\n' text);
    Ok (List.rev !edits)
  with Fail e -> Error e

let parse_file_res path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string_res ~file:path text
  | exception Sys_error msg ->
      Error (Err.parse ~file:path ~format:"edit" msg)

let gate_of_op = function
  | Resize { gate; _ } | Retype { gate; _ } | Move { gate; _ } -> Some gate
  | Set _ -> None

let pp_op fmt = function
  | Resize { gate; drive } -> Format.fprintf fmt "resize %s %g" gate drive
  | Retype { gate; kind } -> Format.fprintf fmt "retype %s %s" gate kind
  | Move { gate; x; y } -> Format.fprintf fmt "move %s %g %g" gate x y
  | Set { param; value } -> Format.fprintf fmt "set %s %g" param value

let to_string es =
  String.concat ""
    (List.map (fun e -> Format.asprintf "%a\n" pp_op e.op) es)

let describe es =
  String.concat "; " (List.map (fun e -> Format.asprintf "%a" pp_op e.op) es)
