(** Combinational gate-level netlists.

    Node identifiers are dense integers: primary inputs come first
    (ids [0 .. num_inputs-1]), gates follow in construction order, which
    the {!Builder} guarantees to be topological (a gate may only use
    already-defined nodes as fan-ins).  This makes every well-formed
    netlist a DAG by construction — the property the paper's timing graph
    relies on. *)

type gate = {
  id : int;
  kind : Ssta_tech.Gate.kind;
  fanins : int array;  (** node ids, length = fan-in of [kind] *)
}

type cache
(** Memoized derived structures (fan-out lists and counts), filled in
    lazily on first use.  Opaque to clients. *)

type t = private {
  name : string;
  num_inputs : int;
  gates : gate array;  (** gate with id [num_inputs + i] at index [i] *)
  outputs : int array;  (** node ids designated as primary outputs *)
  node_names : string array;  (** one name per node id *)
  cache : cache;
}

val num_nodes : t -> int
(** Inputs plus gates. *)

val num_gates : t -> int
val is_input : t -> int -> bool

val gate_of : t -> int -> gate
(** The gate driving node [id].  Raises [Invalid_argument] for primary
    inputs. *)

val node_name : t -> int -> string
val find_node : t -> string -> int option

val fanouts : t -> int array array
(** [fanouts c].(id) lists the gate node-ids that consume node [id];
    O(nodes + edges) on the first call, then cached — repeated calls
    return the same arrays, which callers must treat as read-only. *)

val fanout_counts : t -> int array
(** Number of consumers per node (primary outputs add one sink each).
    Cached like {!fanouts}; treat the result as read-only. *)

val with_gate_kind : t -> int -> Ssta_tech.Gate.kind -> t
(** [with_gate_kind c id kind] is [c] with the gate at node [id] swapped
    to [kind] — a {e fresh} netlist value with an empty memo: the
    {!fanouts}/{!fanout_counts} memo is keyed on the netlist value, so
    an edit must never mutate in place (the stale memo would survive).
    The original is untouched and its memo stays valid.  Raises
    [Invalid_argument] for a primary input, a bad id, or a kind whose
    arity differs from the existing gate's fan-in count. *)

val levels : t -> int array
(** Topological level per node: inputs are 0, a gate is
    1 + max level of its fan-ins. *)

val depth : t -> int
(** Maximum level over all nodes (logic depth). *)

val gate_kind_histogram : t -> (Ssta_tech.Gate.kind * int) list
(** Count of gates per kind, sorted by decreasing count. *)

val simulate : t -> bool array -> bool array
(** [simulate c inputs] evaluates the circuit on an input assignment
    (length [num_inputs]) and returns the value of every node.  Used by
    tests to check that structural transformations preserve logic. *)

val output_values : t -> bool array -> bool array
(** Primary-output values for an input assignment. *)

val pp_stats : Format.formatter -> t -> unit

(** Incremental construction; the only way to create a netlist. *)
module Builder : sig
  type netlist := t
  type t

  val create : string -> t
  (** [create name] starts an empty netlist. *)

  val add_input : t -> string -> int
  (** Declare a primary input; returns its node id.  Raises
      [Invalid_argument] on duplicate names or if gates were already
      added. *)

  val add_gate : ?name:string -> t -> Ssta_tech.Gate.kind -> int list -> int
  (** [add_gate b kind fanins] appends a gate and returns its node id.
      Fan-ins must be existing node ids, and their count must match the
      gate's arity.  A default name [n<id>] is used when [name] is
      omitted. *)

  val mark_output : t -> int -> unit
  (** Declare an existing node to be a primary output (idempotent). *)

  val finish : t -> netlist
  (** Validate and freeze.  Raises [Invalid_argument] if the netlist has
      no inputs, no gates, or no outputs. *)
end
