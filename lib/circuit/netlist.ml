module Gate = Ssta_tech.Gate

type gate = { id : int; kind : Gate.kind; fanins : int array }

type cache = {
  mutable c_fanouts : int array array option;
  mutable c_fanout_counts : int array option;
}

type t = {
  name : string;
  num_inputs : int;
  gates : gate array;
  outputs : int array;
  node_names : string array;
  cache : cache;
}

let num_nodes c = c.num_inputs + Array.length c.gates
let num_gates c = Array.length c.gates
let is_input c id = id >= 0 && id < c.num_inputs

let gate_of c id =
  if is_input c id then invalid_arg "Netlist.gate_of: node is a primary input";
  if id < 0 || id >= num_nodes c then invalid_arg "Netlist.gate_of: bad id";
  c.gates.(id - c.num_inputs)

let node_name c id =
  if id < 0 || id >= num_nodes c then invalid_arg "Netlist.node_name: bad id";
  c.node_names.(id)

let find_node c name =
  let n = num_nodes c in
  let rec search i =
    if i >= n then None
    else if String.equal c.node_names.(i) name then Some i
    else search (i + 1)
  in
  search 0

let fanout_counts c =
  match c.cache.c_fanout_counts with
  | Some counts -> counts
  | None ->
      let counts = Array.make (num_nodes c) 0 in
      Array.iter
        (fun g -> Array.iter (fun f -> counts.(f) <- counts.(f) + 1) g.fanins)
        c.gates;
      Array.iter (fun o -> counts.(o) <- counts.(o) + 1) c.outputs;
      c.cache.c_fanout_counts <- Some counts;
      counts

let fanouts c =
  match c.cache.c_fanouts with
  | Some result -> result
  | None ->
      let counts = Array.make (num_nodes c) 0 in
      Array.iter
        (fun g -> Array.iter (fun f -> counts.(f) <- counts.(f) + 1) g.fanins)
        c.gates;
      let result = Array.map (fun n -> Array.make n 0) counts in
      let fill = Array.make (num_nodes c) 0 in
      Array.iter
        (fun g ->
          Array.iter
            (fun f ->
              result.(f).(fill.(f)) <- g.id;
              fill.(f) <- fill.(f) + 1)
            g.fanins)
        c.gates;
      c.cache.c_fanouts <- Some result;
      result

(* Structural edits return a *fresh* netlist with a fresh memo record:
   the fanout/fanout-count memo is keyed on the netlist value, so
   mutating a netlist in place would silently serve stale derived
   structures to every later caller.  The gates array is copied; gate
   records and fan-in arrays are shared (they are never mutated). *)
let with_gate_kind c id kind =
  if is_input c id then
    invalid_arg "Netlist.with_gate_kind: node is a primary input";
  if id < 0 || id >= num_nodes c then
    invalid_arg "Netlist.with_gate_kind: bad id";
  let gi = id - c.num_inputs in
  let old = c.gates.(gi) in
  if Gate.fan_in kind <> Array.length old.fanins then
    invalid_arg
      (Printf.sprintf
         "Netlist.with_gate_kind: %s expects %d fan-ins, gate %s has %d"
         (Gate.name kind) (Gate.fan_in kind) c.node_names.(id)
         (Array.length old.fanins));
  let gates = Array.copy c.gates in
  gates.(gi) <- { old with kind };
  { c with gates; cache = { c_fanouts = None; c_fanout_counts = None } }

let levels c =
  let lv = Array.make (num_nodes c) 0 in
  Array.iter
    (fun g ->
      let deepest =
        Array.fold_left (fun acc f -> Int.max acc lv.(f)) 0 g.fanins
      in
      lv.(g.id) <- deepest + 1)
    c.gates;
  lv

let depth c = Array.fold_left Int.max 0 (levels c)

let gate_kind_histogram c =
  let table = Hashtbl.create 16 in
  Array.iter
    (fun g ->
      let n = try Hashtbl.find table g.kind with Not_found -> 0 in
      Hashtbl.replace table g.kind (n + 1))
    c.gates;
  Hashtbl.fold (fun kind n acc -> (kind, n) :: acc) table []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let simulate c inputs =
  if Array.length inputs <> c.num_inputs then
    invalid_arg "Netlist.simulate: input width mismatch";
  let values = Array.make (num_nodes c) false in
  Array.blit inputs 0 values 0 c.num_inputs;
  Array.iter
    (fun g ->
      let ins = Array.to_list (Array.map (fun f -> values.(f)) g.fanins) in
      values.(g.id) <- Gate.eval g.kind ins)
    c.gates;
  values

let output_values c inputs =
  let values = simulate c inputs in
  Array.map (fun o -> values.(o)) c.outputs

let pp_stats fmt c =
  Format.fprintf fmt "%s: %d inputs, %d gates, %d outputs, depth %d" c.name
    c.num_inputs (num_gates c) (Array.length c.outputs) (depth c)

module Builder = struct
  type netlist = t

  let _ = fun (x : netlist) -> (x : t)

  type t = {
    bname : string;
    mutable inputs : string list;  (* reversed *)
    mutable bgates : gate list;  (* reversed *)
    mutable gate_names : string list;  (* reversed *)
    mutable next_id : int;
    mutable num_in : int;
    mutable outs : int list;  (* reversed, deduped *)
    mutable sealed_inputs : bool;
    seen_names : (string, unit) Hashtbl.t;
  }

  let create bname =
    { bname; inputs = []; bgates = []; gate_names = []; next_id = 0;
      num_in = 0; outs = []; sealed_inputs = false;
      seen_names = Hashtbl.create 64 }

  let register_name b name =
    if Hashtbl.mem b.seen_names name then
      invalid_arg ("Netlist.Builder: duplicate node name " ^ name);
    Hashtbl.add b.seen_names name ()

  let add_input b name =
    if b.sealed_inputs then
      invalid_arg "Netlist.Builder.add_input: gates already added";
    register_name b name;
    let id = b.next_id in
    b.inputs <- name :: b.inputs;
    b.next_id <- id + 1;
    b.num_in <- b.num_in + 1;
    id

  let add_gate ?name b kind fanins =
    b.sealed_inputs <- true;
    let id = b.next_id in
    let name = match name with Some n -> n | None -> "n" ^ string_of_int id in
    register_name b name;
    let arity = Gate.fan_in kind in
    if List.length fanins <> arity then
      invalid_arg
        (Printf.sprintf "Netlist.Builder.add_gate: %s expects %d fan-ins"
           (Gate.name kind) arity);
    List.iter
      (fun f ->
        if f < 0 || f >= id then
          invalid_arg "Netlist.Builder.add_gate: fan-in must be a prior node")
      fanins;
    b.bgates <- { id; kind; fanins = Array.of_list fanins } :: b.bgates;
    b.gate_names <- name :: b.gate_names;
    b.next_id <- id + 1;
    id

  let mark_output b id =
    if id < 0 || id >= b.next_id then
      invalid_arg "Netlist.Builder.mark_output: unknown node";
    if not (List.mem id b.outs) then b.outs <- id :: b.outs

  let finish b =
    if b.num_in = 0 then invalid_arg "Netlist.Builder.finish: no inputs";
    if b.bgates = [] then invalid_arg "Netlist.Builder.finish: no gates";
    if b.outs = [] then invalid_arg "Netlist.Builder.finish: no outputs";
    let node_names =
      Array.of_list (List.rev b.inputs @ List.rev b.gate_names)
    in
    { name = b.bname;
      num_inputs = b.num_in;
      gates = Array.of_list (List.rev b.bgates);
      outputs = Array.of_list (List.rev b.outs);
      node_names;
      cache = { c_fanouts = None; c_fanout_counts = None } }
end
