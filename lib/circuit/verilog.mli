(** Gate-level structural Verilog subset.

    The ISCAS85 benchmarks are also distributed as structural Verilog
    using the primitive gates; this module reads and writes that
    dialect:

    {v
      module c17 (N1, N2, N3, N6, N7, N22, N23);
        input N1, N2, N3, N6, N7;
        output N22, N23;
        wire N10, N11, N16, N19;
        nand g1 (N10, N1, N3);
        nand g2 (N11, N3, N6);
        ...
      endmodule
    v}

    Supported primitives: [and], [or], [nand], [nor], [xor], [xnor],
    [not], [buf] — output port first, as in the Verilog standard.
    Comments ([// ...] and [/* ... */]) are skipped.  One module per
    file; instances may reference wires declared later (resolved like
    the .bench parser). *)

exception Parse_error of Ssta_runtime.Ssta_error.position * string
(** Position (line and column from the lexer; resolution-phase errors
    carry line 0) plus message. *)

val parse_string : string -> Netlist.t
val parse_file : string -> Netlist.t

val parse_string_res :
  string -> (Netlist.t, Ssta_runtime.Ssta_error.t) result
val parse_file_res : string -> (Netlist.t, Ssta_runtime.Ssta_error.t) result
(** Typed-error entry points: never raise. *)

val to_string : Netlist.t -> string
(** Emit the netlist as a single structural module (named after the
    circuit; identifiers unsupported by Verilog are escaped with [\ ]).
    Multi-input AND/OR/NAND/NOR map to the variadic primitives; a
    parse/print round trip preserves structure and logic. *)

val write_file : string -> Netlist.t -> unit
