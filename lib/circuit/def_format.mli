(** Minimal Design Exchange Format (DEF) subset.

    The paper's program "reads the circuit-description as a DEF file" and
    extracts the (x, y) coordinates of the gates for the spatial
    correlation model.  This module writes and reads the subset needed
    for that: DESIGN/UNITS/DIEAREA and a COMPONENTS section with PLACED
    locations.

    {v
      DESIGN c432 ;
      UNITS DISTANCE MICRONS 1000 ;
      DIEAREA ( 0 0 ) ( 120000 120000 ) ;
      COMPONENTS 160 ;
        - G10 NAND2 + PLACED ( 20000 10000 ) N ;
        ...
      END COMPONENTS
      END DESIGN
    v}

    Coordinates are stored in DEF database units ([units] per micron). *)

exception Parse_error of Ssta_runtime.Ssta_error.position * string

type component = { comp_name : string; master : string; x : float; y : float }
(** One placed component; [x], [y] in microns. *)

type t = {
  design : string;
  units_per_micron : int;
  die_width : float;  (** microns *)
  die_height : float;  (** microns *)
  components : component list;
}

val parse_string : string -> t
val parse_file : string -> t

val parse_string_res : string -> (t, Ssta_runtime.Ssta_error.t) result
val parse_file_res : string -> (t, Ssta_runtime.Ssta_error.t) result
(** Typed-error entry points: never raise. *)

val to_string : t -> string
val write_file : string -> t -> unit

val of_placement : design:string -> Netlist.t -> Placement.t -> t
(** Export a placed netlist: one component per gate (primary inputs are
    pads, not components), master names like ["NAND2"], ["INV"]. *)

val placement_of : t -> Netlist.t -> Placement.t
(** Re-import coordinates onto a netlist by matching component names to
    gate names.  Gates without a component fall back to (0, 0); raises
    [Invalid_argument] if fewer than half the gates are matched (wrong
    netlist/DEF pairing). *)

val placement_of_res :
  t -> Netlist.t -> (Placement.t, Ssta_runtime.Ssta_error.t) result
(** Typed-error variant of {!placement_of}: never raises. *)
