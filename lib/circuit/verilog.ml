module Gate = Ssta_tech.Gate
module B = Netlist.Builder
module Err = Ssta_runtime.Ssta_error

exception Parse_error of Err.position * string

let failp pos msg = raise (Parse_error (pos, msg))
let fail0 msg = failp Err.no_position msg

(* ----- lexer ----- *)

type token =
  | Ident of string
  | LParen
  | RParen
  | Comma
  | Semicolon
  | Keyword of string

let keywords = [ "module"; "endmodule"; "input"; "output"; "wire" ]

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_' || ch = '\\'

let is_ident_char ch =
  is_ident_start ch || (ch >= '0' && ch <= '9') || ch = '[' || ch = ']'
  || ch = '.' || ch = '$'

let tokenize text =
  let tokens = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let n = String.length text in
  let i = ref 0 in
  let pos_at off = Err.position ~line:!line ~col:(off - !bol + 1) () in
  let push ?(off = !i) t = tokens := (t, pos_at off) :: !tokens in
  let lex_fail msg = failp (pos_at !i) msg in
  while !i < n do
    let ch = text.[!i] in
    if ch = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if ch = ' ' || ch = '\t' || ch = '\r' then incr i
    else if ch = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if ch = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while !i + 1 < n && not !closed do
        if text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else begin
          if text.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          incr i
        end
      done;
      if not !closed then lex_fail "unterminated block comment"
    end
    else if ch = '(' then (push LParen; incr i)
    else if ch = ')' then (push RParen; incr i)
    else if ch = ',' then (push Comma; incr i)
    else if ch = ';' then (push Semicolon; incr i)
    else if ch = '\\' then begin
      (* escaped identifier: up to whitespace *)
      let start = !i + 1 in
      let j = ref start in
      while !j < n && text.[!j] <> ' ' && text.[!j] <> '\t' && text.[!j] <> '\n'
      do
        incr j
      done;
      if !j = start then lex_fail "empty escaped identifier";
      push ~off:!i (Ident (String.sub text start (!j - start)));
      i := !j
    end
    else if is_ident_start ch then begin
      let start = !i in
      let j = ref !i in
      while !j < n && is_ident_char text.[!j] do
        incr j
      done;
      let word = String.sub text start (!j - start) in
      if List.mem (String.lowercase_ascii word) keywords then
        push ~off:start (Keyword (String.lowercase_ascii word))
      else push ~off:start (Ident word);
      i := !j
    end
    else lex_fail (Printf.sprintf "unexpected character %C" ch)
  done;
  List.rev !tokens

(* ----- parser ----- *)

let gate_primitives =
  [ "and"; "or"; "nand"; "nor"; "xor"; "xnor"; "not"; "buf" ]

let parse_string text =
  let tokens = tokenize text in
  (* module <name> ( ports ) ; *)
  let rec skip_to_module = function
    | (Keyword "module", _) :: rest -> rest
    | _ :: rest -> skip_to_module rest
    | [] -> fail0 "no module declaration"
  in
  let after_module = skip_to_module tokens in
  let module_name, rest =
    match after_module with
    | (Ident name, _) :: rest -> (name, rest)
    | (_, l) :: _ -> failp l "expected module name"
    | [] -> fail0 "truncated module header"
  in
  (* skip the port list up to the first ';' *)
  let rec skip_header = function
    | (Semicolon, _) :: rest -> rest
    | _ :: rest -> skip_header rest
    | [] -> fail0 "unterminated module header"
  in
  let body = skip_header rest in
  (* collect statements *)
  let inputs = ref [] and outputs = ref [] in
  let instances = ref [] in
  let rec idents_until_semi acc = function
    | (Ident s, _) :: rest -> idents_until_semi (s :: acc) rest
    | (Comma, _) :: rest -> idents_until_semi acc rest
    | (Semicolon, _) :: rest -> (List.rev acc, rest)
    | (_, l) :: _ -> failp l "expected identifier list"
    | [] -> fail0 "unterminated declaration"
  in
  let rec statements = function
    | [] -> fail0 "missing endmodule"
    | (Keyword "endmodule", _) :: _ -> ()
    | (Keyword "input", _) :: rest ->
        let names, rest = idents_until_semi [] rest in
        inputs := !inputs @ names;
        statements rest
    | (Keyword "output", _) :: rest ->
        let names, rest = idents_until_semi [] rest in
        outputs := !outputs @ names;
        statements rest
    | (Keyword "wire", _) :: rest ->
        let _, rest = idents_until_semi [] rest in
        statements rest
    | (Ident prim, l) :: rest
      when List.mem (String.lowercase_ascii prim) gate_primitives -> (
        (* <prim> [instance-name] ( out , in , ... ) ; *)
        let rest =
          match rest with
          | (Ident _, _) :: ((LParen, _) :: _ as r) -> r
          | (LParen, _) :: _ -> rest
          | (_, l) :: _ -> failp l "expected instance connection list"
          | [] -> failp l "truncated instance"
        in
        match rest with
        | (LParen, _) :: rest ->
            let rec connections acc = function
              | (Ident s, _) :: rest -> connections (s :: acc) rest
              | (Comma, _) :: rest -> connections acc rest
              | (RParen, _) :: (Semicolon, _) :: rest -> (List.rev acc, rest)
              | (RParen, l) :: _ -> failp l "expected ';' after instance"
              | (_, l) :: _ -> failp l "bad connection list"
              | [] -> failp l "unterminated connection list"
            in
            let conns, rest = connections [] rest in
            instances :=
              (String.lowercase_ascii prim, conns, l) :: !instances;
            statements rest
        | (_, l) :: _ -> failp l "expected '('"
        | [] -> failp l "truncated instance")
    | (_, l) :: _ -> failp l "unexpected token in module body"
  in
  statements body;
  let instances = List.rev !instances in
  (* Build the netlist, resolving definitions in dependency order. *)
  let builder = B.create module_name in
  let ids = Hashtbl.create 256 in
  let defs = Hashtbl.create 256 in
  List.iter
    (fun (prim, conns, l) ->
      match conns with
      | out :: ins ->
          if ins = [] then failp l ("instance with no inputs: " ^ out);
          if Hashtbl.mem defs out then failp l ("net driven twice: " ^ out);
          Hashtbl.add defs out (prim, ins, l)
      | [] -> failp l "instance with no connections")
    instances;
  List.iter
    (fun name ->
      if Hashtbl.mem ids name then fail0 ("duplicate input: " ^ name);
      Hashtbl.replace ids name (B.add_input builder name))
    !inputs;
  let visiting = Hashtbl.create 64 in
  let rec resolve signal =
    match Hashtbl.find_opt ids signal with
    | Some id -> id
    | None -> (
        if Hashtbl.mem visiting signal then
          fail0 ("combinational cycle through " ^ signal);
        Hashtbl.add visiting signal ();
        match Hashtbl.find_opt defs signal with
        | None -> fail0 ("undriven net: " ^ signal)
        | Some (prim, ins, l) ->
            let fanins = List.map resolve ins in
            let arity = List.length ins in
            let kind =
              let bench_name =
                match prim with
                | "not" -> "NOT"
                | "buf" -> "BUF"
                | p -> String.uppercase_ascii p
              in
              match Gate.of_name bench_name arity with
              | Some k -> k
              | None ->
                  failp l
                    (Printf.sprintf "unsupported %s with %d inputs" prim arity)
            in
            let id = B.add_gate ~name:signal builder kind fanins in
            Hashtbl.remove visiting signal;
            Hashtbl.replace ids signal id;
            id)
  in
  List.iter (fun (_, conns, _) ->
      match conns with out :: _ -> ignore (resolve out) | [] -> ())
    instances;
  List.iter
    (fun name ->
      match Hashtbl.find_opt ids name with
      | Some id -> B.mark_output builder id
      | None -> fail0 ("output is never driven: " ^ name))
    !outputs;
  (* Surface structural failures (no inputs/gates/outputs) as parse
     errors: the input text is what is malformed. *)
  try B.finish builder with Invalid_argument msg -> fail0 msg

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try parse_string text
  with Parse_error (pos, msg) ->
    raise (Parse_error (Err.with_file pos path, msg))

let parse_string_res text =
  match parse_string text with
  | c -> Ok c
  | exception Parse_error (pos, msg) ->
      Error (Err.parse_at ~pos ~format:"verilog" msg)
  | exception exn -> Error (Err.of_exn ~context:"Verilog.parse" exn)

let parse_file_res path =
  match parse_file path with
  | c -> Ok c
  | exception Parse_error (pos, msg) ->
      Error (Err.parse_at ~pos ~format:"verilog" msg)
  | exception Sys_error msg ->
      Error (Err.parse ~file:path ~format:"verilog" msg)
  | exception exn -> Error (Err.of_exn ~context:"Verilog.parse" exn)

(* ----- printer ----- *)

let plain_ident s =
  s <> ""
  && (is_ident_start s.[0] && s.[0] <> '\\')
  && String.for_all (fun ch -> is_ident_char ch && ch <> '\\') s
  && not (List.mem (String.lowercase_ascii s) keywords)
  && not (List.mem (String.lowercase_ascii s) gate_primitives)

let emit_ident s = if plain_ident s then s else "\\" ^ s ^ " "

let primitive_of_kind = function
  | Gate.Inv -> "not"
  | Gate.Buf -> "buf"
  | Gate.Nand _ -> "nand"
  | Gate.Nor _ -> "nor"
  | Gate.And _ -> "and"
  | Gate.Or _ -> "or"
  | Gate.Xor2 -> "xor"
  | Gate.Xnor2 -> "xnor"

let to_string (c : Netlist.t) =
  let buf = Buffer.create 4096 in
  let name id = emit_ident (Netlist.node_name c id) in
  let inputs = List.init c.Netlist.num_inputs (fun i -> name i) in
  let outputs =
    Array.to_list c.Netlist.outputs |> List.map name
  in
  let module_name =
    if plain_ident c.Netlist.name then c.Netlist.name else "top"
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" module_name
       (String.concat ", " (inputs @ outputs)));
  Buffer.add_string buf
    (Printf.sprintf "  input %s;\n" (String.concat ", " inputs));
  Buffer.add_string buf
    (Printf.sprintf "  output %s;\n" (String.concat ", " outputs));
  let is_output id = Array.exists (fun o -> o = id) c.Netlist.outputs in
  let wires =
    Array.to_list c.Netlist.gates
    |> List.filter_map (fun (g : Netlist.gate) ->
           if is_output g.Netlist.id then None else Some (name g.Netlist.id))
  in
  if wires <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  wire %s;\n" (String.concat ", " wires));
  Array.iteri
    (fun i (g : Netlist.gate) ->
      let ins =
        g.Netlist.fanins |> Array.to_list |> List.map name
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s g%d (%s, %s);\n"
           (primitive_of_kind g.Netlist.kind)
           i
           (name g.Netlist.id)
           ins))
    c.Netlist.gates;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
