module Gate = Ssta_tech.Gate
module Err = Ssta_runtime.Ssta_error

exception Parse_error of Err.position * string

type component = { comp_name : string; master : string; x : float; y : float }

type t = {
  design : string;
  units_per_micron : int;
  die_width : float;
  die_height : float;
  components : component list;
}

let fail line msg = raise (Parse_error (Err.position ~line (), msg))

let fail_tok line line_text token msg =
  raise (Parse_error (Err.position_of_token ~line ~line_text token, msg))

let tokens_of_line line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let float_token lineno line_text s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> f
  | Some _ -> fail_tok lineno line_text s ("non-finite coordinate: " ^ s)
  | None -> fail_tok lineno line_text s ("expected a number, got " ^ s)

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let design = ref "" in
  let units = ref 1000 in
  let die_w = ref 0.0 and die_h = ref 0.0 in
  let components = ref [] in
  let in_components = ref false in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      match tokens_of_line raw with
      | [] -> ()
      | "DESIGN" :: name :: _ -> design := name
      | "UNITS" :: "DISTANCE" :: "MICRONS" :: v :: _ ->
          (match int_of_string_opt v with
          | Some u when u > 0 -> units := u
          | Some _ | None -> fail_tok lineno raw v "bad UNITS value")
      | "DIEAREA" :: rest -> (
          (* DIEAREA ( x0 y0 ) ( x1 y1 ) ; *)
          let numbers =
            List.filter_map (fun tok -> float_of_string_opt tok) rest
          in
          match numbers with
          | [ x0; y0; x1; y1 ]
            when List.for_all Float.is_finite [ x0; y0; x1; y1 ] ->
              let u = float_of_int !units in
              die_w := (x1 -. x0) /. u;
              die_h := (y1 -. y0) /. u
          | _ -> fail lineno "DIEAREA expects two finite corner points")
      | "COMPONENTS" :: _ -> in_components := true
      | "END" :: "COMPONENTS" :: _ -> in_components := false
      | "END" :: "DESIGN" :: _ -> ()
      | "-" :: name :: master :: rest when !in_components ->
          (* - name master + PLACED ( x y ) N ; *)
          let rec find_placed = function
            | "PLACED" :: "(" :: x :: y :: _ ->
                Some (float_token lineno raw x, float_token lineno raw y)
            | _ :: tl -> find_placed tl
            | [] -> None
          in
          (match find_placed rest with
          | Some (x, y) ->
              let u = float_of_int !units in
              components :=
                { comp_name = name; master; x = x /. u; y = y /. u }
                :: !components
          | None ->
              fail_tok lineno raw name
                ("component without PLACED location: " ^ name))
      | _ -> ())
    lines;
  if !design = "" then fail 0 "missing DESIGN statement";
  { design = !design;
    units_per_micron = !units;
    die_width = !die_w;
    die_height = !die_h;
    components = List.rev !components }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  try parse_string text
  with Parse_error (pos, msg) ->
    raise (Parse_error (Err.with_file pos path, msg))

let parse_string_res text =
  match parse_string text with
  | t -> Ok t
  | exception Parse_error (pos, msg) ->
      Error (Err.parse_at ~pos ~format:"def" msg)
  | exception exn -> Error (Err.of_exn ~context:"Def_format.parse" exn)

let parse_file_res path =
  match parse_file path with
  | t -> Ok t
  | exception Parse_error (pos, msg) ->
      Error (Err.parse_at ~pos ~format:"def" msg)
  | exception Sys_error msg -> Error (Err.parse ~file:path ~format:"def" msg)
  | exception exn -> Error (Err.of_exn ~context:"Def_format.parse" exn)

let to_string t =
  let buf = Buffer.create 4096 in
  let u = float_of_int t.units_per_micron in
  let dbu f = int_of_float (Float.round (f *. u)) in
  Buffer.add_string buf (Printf.sprintf "DESIGN %s ;\n" t.design);
  Buffer.add_string buf
    (Printf.sprintf "UNITS DISTANCE MICRONS %d ;\n" t.units_per_micron);
  Buffer.add_string buf
    (Printf.sprintf "DIEAREA ( 0 0 ) ( %d %d ) ;\n" (dbu t.die_width)
       (dbu t.die_height));
  Buffer.add_string buf
    (Printf.sprintf "COMPONENTS %d ;\n" (List.length t.components));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  - %s %s + PLACED ( %d %d ) N ;\n" c.comp_name
           c.master (dbu c.x) (dbu c.y)))
    t.components;
  Buffer.add_string buf "END COMPONENTS\n";
  Buffer.add_string buf "END DESIGN\n";
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let master_of_kind = function
  | Gate.Inv -> "INV"
  | Gate.Buf -> "BUF"
  | Gate.Nand n -> Printf.sprintf "NAND%d" n
  | Gate.Nor n -> Printf.sprintf "NOR%d" n
  | Gate.And n -> Printf.sprintf "AND%d" n
  | Gate.Or n -> Printf.sprintf "OR%d" n
  | Gate.Xor2 -> "XOR2"
  | Gate.Xnor2 -> "XNOR2"

let of_placement ~design (c : Netlist.t) (pl : Placement.t) =
  let components =
    Array.to_list c.Netlist.gates
    |> List.map (fun (g : Netlist.gate) ->
           let x, y = Placement.coord pl g.Netlist.id in
           { comp_name = Netlist.node_name c g.Netlist.id;
             master = master_of_kind g.Netlist.kind;
             x;
             y })
  in
  { design;
    units_per_micron = 1000;
    die_width = pl.Placement.die_width;
    die_height = pl.Placement.die_height;
    components }

let placement_of t (c : Netlist.t) =
  let table = Hashtbl.create 256 in
  List.iter (fun comp -> Hashtbl.replace table comp.comp_name (comp.x, comp.y))
    t.components;
  let matched = ref 0 in
  let coords =
    Array.init (Netlist.num_nodes c) (fun id ->
        match Hashtbl.find_opt table (Netlist.node_name c id) with
        | Some xy ->
            incr matched;
            xy
        | None -> (0.0, 0.0))
  in
  if !matched * 2 < Netlist.num_gates c then
    invalid_arg "Def_format.placement_of: DEF does not match this netlist";
  let die_width = Float.max t.die_width 1.0 in
  let die_height = Float.max t.die_height 1.0 in
  Placement.with_coords ~die_width ~die_height
    (Array.map
       (fun (x, y) ->
         (Float.min (Float.max x 0.0) die_width,
          Float.min (Float.max y 0.0) die_height))
       coords)

let placement_of_res t c =
  match placement_of t c with
  | pl -> Ok pl
  | exception Invalid_argument msg ->
      Error (Err.structural ~subject:"def-placement" msg)
  | exception exn -> Error (Err.of_exn ~context:"Def_format.placement_of" exn)
