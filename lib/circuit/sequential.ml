module Gate = Ssta_tech.Gate
module B = Netlist.Builder

type register = { q : int; d : int; reg_name : string }

type t = {
  name : string;
  core : Netlist.t;
  registers : register array;
  real_inputs : int;
  real_output_ids : int array;
}

let num_registers t = Array.length t.registers

let is_register_q t id =
  Netlist.is_input t.core id && id >= t.real_inputs

let is_register_d t id =
  Array.exists (fun r -> r.d = id) t.registers

let of_netlist core =
  { name = core.Netlist.name;
    core;
    registers = [||];
    real_inputs = core.Netlist.num_inputs;
    real_output_ids = core.Netlist.outputs }

(* ---- ISCAS89-style parsing: extract DFF lines, transform the rest ---- *)

let strip = String.trim

(* Recognize "target = DFF(arg)" (case-insensitive head). *)
let dff_of_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match String.index_opt line '=' with
  | None -> None
  | Some eq -> (
      let target = strip (String.sub line 0 eq) in
      let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
      match String.index_opt rhs '(' with
      | Some open_paren
        when String.uppercase_ascii (strip (String.sub rhs 0 open_paren))
             = "DFF"
             && String.length rhs > 0
             && rhs.[String.length rhs - 1] = ')' ->
          let arg =
            strip
              (String.sub rhs (open_paren + 1)
                 (String.length rhs - open_paren - 2))
          in
          Some (target, arg)
      | Some _ | None -> None)

let parse_bench ?(name = "sequential") text =
  let lines = String.split_on_char '\n' text in
  let dffs = ref [] in
  let comb_lines = ref [] in
  List.iter
    (fun line ->
      match dff_of_line line with
      | Some (target, arg) -> dffs := (target, arg) :: !dffs
      | None -> comb_lines := line :: !comb_lines)
    lines;
  let dffs = List.rev !dffs in
  let comb_lines = List.rev !comb_lines in
  (* a DFF target must not also have a combinational definition *)
  List.iter
    (fun (target, _) ->
      List.iter
        (fun line ->
          match String.index_opt line '=' with
          | Some eq when strip (String.sub line 0 eq) = target ->
              raise
                (Bench_format.Parse_error
                   ( Ssta_runtime.Ssta_error.no_position,
                     "signal driven by both DFF and a gate: " ^ target ))
          | Some _ | None -> ())
        comb_lines)
    dffs;
  (* count true inputs (INPUT lines) before adding pseudo ones *)
  let buf = Buffer.create (String.length text + 256) in
  List.iter
    (fun line ->
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    comb_lines;
  List.iter
    (fun (target, _) -> Buffer.add_string buf ("INPUT(" ^ target ^ ")\n"))
    dffs;
  let core0 = Bench_format.parse_string ~name (Buffer.contents buf) in
  (* true inputs come first only if the INPUT lines did; rebuild cleanly:
     Bench_format adds inputs in file order, so the pseudo inputs we
     appended are last — exactly the layout we need. *)
  let real_inputs = core0.Netlist.num_inputs - List.length dffs in
  let real_output_ids = core0.Netlist.outputs in
  (* mark every register's D signal as a (pseudo) output *)
  let find name =
    match Netlist.find_node core0 name with
    | Some id -> id
    | None ->
        raise
          (Bench_format.Parse_error
             ( Ssta_runtime.Ssta_error.no_position,
               "DFF references unknown signal: " ^ name ))
  in
  let registers =
    List.map
      (fun (target, arg) ->
        { q = find target; d = find arg; reg_name = target })
      dffs
    |> Array.of_list
  in
  (* rebuild the core with the D pins marked as outputs *)
  let core =
    if Array.length registers = 0 then core0
    else begin
      let b = B.create name in
      let remap = Array.make (Netlist.num_nodes core0) (-1) in
      for i = 0 to core0.Netlist.num_inputs - 1 do
        remap.(i) <- B.add_input b (Netlist.node_name core0 i)
      done;
      Array.iter
        (fun (g : Netlist.gate) ->
          let ins =
            Array.to_list (Array.map (fun f -> remap.(f)) g.Netlist.fanins)
          in
          remap.(g.Netlist.id) <-
            B.add_gate ~name:(Netlist.node_name core0 g.Netlist.id) b
              g.Netlist.kind ins)
        core0.Netlist.gates;
      Array.iter (fun o -> B.mark_output b remap.(o)) core0.Netlist.outputs;
      Array.iter (fun r -> B.mark_output b remap.(r.d)) registers;
      B.finish b
    end
  in
  (* node ids are preserved by the rebuild (same order) *)
  { name; core; registers; real_inputs; real_output_ids }

let to_bench t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" t.name);
  for i = 0 to t.real_inputs - 1 do
    Buffer.add_string buf
      (Printf.sprintf "INPUT(%s)\n" (Netlist.node_name t.core i))
  done;
  Array.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Netlist.node_name t.core o)))
    t.real_output_ids;
  Array.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s = DFF(%s)\n" r.reg_name
           (Netlist.node_name t.core r.d)))
    t.registers;
  Array.iter
    (fun (g : Netlist.gate) ->
      let operands =
        g.Netlist.fanins |> Array.to_list
        |> List.map (Netlist.node_name t.core)
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n"
           (Netlist.node_name t.core g.Netlist.id)
           (Gate.name g.Netlist.kind) operands))
    t.core.Netlist.gates;
  Buffer.contents buf

let simulate t ~state ~inputs =
  if Array.length state <> num_registers t then
    invalid_arg "Sequential.simulate: state width mismatch";
  if Array.length inputs <> t.real_inputs then
    invalid_arg "Sequential.simulate: input width mismatch";
  let core_inputs = Array.append inputs state in
  let values = Netlist.simulate t.core core_inputs in
  let outputs = Array.map (fun o -> values.(o)) t.real_output_ids in
  let next_state = Array.map (fun r -> values.(r.d)) t.registers in
  (outputs, next_state)

(* ---- pipelining ---- *)

let pipeline ?(stages = 2) comb =
  if stages < 1 then invalid_arg "Sequential.pipeline: stages must be >= 1";
  if stages = 1 then of_netlist comb
  else begin
    let depth = Netlist.depth comb in
    let levels = Netlist.levels comb in
    let last = stages - 1 in
    let stage_of id =
      if Netlist.is_input comb id then 0
      else Int.min last ((levels.(id) - 1) * stages / Int.max 1 depth)
    in
    (* pass 1: which (node, stage) registered copies are needed *)
    let needs = Hashtbl.create 64 in
    let require node from_stage upto =
      for k = from_stage + 1 to upto do
        Hashtbl.replace needs (node, k) ()
      done
    in
    Array.iter
      (fun (g : Netlist.gate) ->
        let s_g = stage_of g.Netlist.id in
        Array.iter
          (fun f -> require f (stage_of f) s_g)
          g.Netlist.fanins)
      comb.Netlist.gates;
    Array.iter
      (fun o -> require o (stage_of o) last)
      comb.Netlist.outputs;
    let need_list =
      Hashtbl.fold (fun key () acc -> key :: acc) needs []
      |> List.sort compare
    in
    (* pass 2: build *)
    let b = B.create (comb.Netlist.name ^ "_p" ^ string_of_int stages) in
    let base = Array.make (Netlist.num_nodes comb) (-1) in
    for i = 0 to comb.Netlist.num_inputs - 1 do
      base.(i) <- B.add_input b (Netlist.node_name comb i)
    done;
    let pseudo = Hashtbl.create 64 in
    List.iter
      (fun (node, k) ->
        let qname =
          Printf.sprintf "%s_s%d" (Netlist.node_name comb node) k
        in
        Hashtbl.replace pseudo (node, k) (B.add_input b qname))
      need_list;
    let at node stage =
      if stage = stage_of node then base.(node)
      else
        match Hashtbl.find_opt pseudo (node, stage) with
        | Some id -> id
        | None -> invalid_arg "Sequential.pipeline: missing register copy"
    in
    Array.iter
      (fun (g : Netlist.gate) ->
        let s_g = stage_of g.Netlist.id in
        let ins =
          Array.to_list (Array.map (fun f -> at f s_g) g.Netlist.fanins)
        in
        base.(g.Netlist.id) <- B.add_gate b g.Netlist.kind ins)
      comb.Netlist.gates;
    (* true outputs: the last-stage copy *)
    let real_output_new = Array.map (fun o -> at o last) comb.Netlist.outputs in
    Array.iter (fun o -> B.mark_output b o) real_output_new;
    (* register D pins are pseudo outputs *)
    let registers =
      List.map
        (fun (node, k) ->
          let d = at node (k - 1) in
          B.mark_output b d;
          let q =
            match Hashtbl.find_opt pseudo (node, k) with
            | Some id -> id
            | None -> assert false
          in
          { q;
            d;
            reg_name = Printf.sprintf "%s_s%d" (Netlist.node_name comb node) k })
        need_list
      |> Array.of_list
    in
    let core = B.finish b in
    { name = core.Netlist.name;
      core;
      registers;
      real_inputs = comb.Netlist.num_inputs;
      real_output_ids = real_output_new }
  end
