(** Typed edit scripts: the ECO-style design deltas the change-impact
    analysis consumes.

    A script is an ordered list of edits, each referring to a gate by
    its netlist node name (or, for [set], to a methodology parameter by
    name).  The text format is line-oriented — one edit per line,
    whitespace-separated tokens, [#] starts a comment:

    {v
    # resize gate G10 to 1.5x drive strength
    resize G10 1.5
    retype G22 NOR
    move G5 120.0 80.0
    set confidence 0.1
    v}

    Parsing is purely syntactic: gate names, kind names and parameter
    names are resolved against a concrete design later (by
    [Ssta_check.Impact.resolve] and the [edit-*] lint rules), so the
    same script can be replayed against several designs.  All numeric
    literals must be finite; anything else is a typed parse error
    (format ["edit"]), never an exception. *)

type op =
  | Resize of { gate : string; drive : float }
      (** set the gate's drive-strength multiplier *)
  | Retype of { gate : string; kind : string }
      (** swap the gate kind (same arity); [kind] is a .bench-style
          name, case-insensitive *)
  | Move of { gate : string; x : float; y : float }
      (** move the cell to (x, y) microns *)
  | Set of { param : string; value : float }
      (** change one methodology parameter (see
          {!Ssta_core.Config.set_param}) *)

type edit = { op : op; line : int  (** 1-based source line *) }
type t = edit list

val parse_string_res :
  ?file:string -> string -> (t, Ssta_runtime.Ssta_error.t) result
(** Parse a script from text.  Errors are positioned
    [Parse { format = "edit"; _ }] values. *)

val parse_file_res : string -> (t, Ssta_runtime.Ssta_error.t) result
(** Parse a script file ([Parse] error if unreadable). *)

val gate_of_op : op -> string option
(** The gate name an edit refers to ([None] for [Set]). *)

val pp_op : Format.formatter -> op -> unit
(** One edit in the text format. *)

val to_string : t -> string
(** Render a script back to its text format, one edit per line. *)

val describe : t -> string
(** Compact one-line summary (ops joined with ["; "]), for labels and
    log lines. *)
