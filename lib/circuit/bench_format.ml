module Gate = Ssta_tech.Gate
module Err = Ssta_runtime.Ssta_error

exception Parse_error of Err.position * string

let fail line msg =
  raise (Parse_error (Err.position ~line (), msg))

(* Failure at a specific token: recover the column from the raw line. *)
let fail_tok line line_text token msg =
  raise (Parse_error (Err.position_of_token ~line ~line_text token, msg))

type raw_line =
  | Input of string
  | Output of string
  | Def of string * string * string list  (** target, gate name, operands *)

let strip s = String.trim s

let is_ident_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '[' || ch = ']' || ch = '.' || ch = '-'

let check_ident lineno line s =
  if s = "" then fail lineno "empty identifier";
  String.iter
    (fun ch ->
      if not (is_ident_char ch) then
        fail_tok lineno line s
          (Printf.sprintf "invalid character %C in identifier %S" ch s))
    s

(* Parse "HEAD(arg1, arg2, ...)" -> (HEAD, args). *)
let parse_call lineno line s =
  match String.index_opt s '(' with
  | None -> fail_tok lineno line s ("expected a parenthesized form: " ^ s)
  | Some open_paren ->
      if not (String.length s > 0 && s.[String.length s - 1] = ')') then
        fail_tok lineno line s ("missing closing parenthesis: " ^ s);
      let head = strip (String.sub s 0 open_paren) in
      let inner =
        String.sub s (open_paren + 1) (String.length s - open_paren - 2)
      in
      let args =
        if strip inner = "" then []
        else List.map strip (String.split_on_char ',' inner)
      in
      (head, args)

let parse_raw_line lineno line =
  let full_line = line in
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = strip line in
  if line = "" then None
  else
    match String.index_opt line '=' with
    | Some eq ->
        let target = strip (String.sub line 0 eq) in
        check_ident lineno full_line target;
        let rhs = strip (String.sub line (eq + 1) (String.length line - eq - 1)) in
        let head, args = parse_call lineno full_line rhs in
        if args = [] then fail lineno ("gate with no operands: " ^ line);
        List.iter (check_ident lineno full_line) args;
        Some (Def (target, head, args))
    | None ->
        let head, args = parse_call lineno full_line line in
        let arg =
          match args with
          | [ a ] -> a
          | _ -> fail lineno ("expected a single signal: " ^ line)
        in
        check_ident lineno full_line arg;
        (match String.uppercase_ascii head with
        | "INPUT" -> Some (Input arg)
        | "OUTPUT" -> Some (Output arg)
        | _ -> fail_tok lineno full_line head ("unknown directive: " ^ head))

let parse_string ?(name = "bench") text =
  let lines = String.split_on_char '\n' text in
  let raw = ref [] in
  List.iteri
    (fun i line ->
      match parse_raw_line (i + 1) line with
      | Some r -> raw := r :: !raw
      | None -> ())
    lines;
  let raw = List.rev !raw in
  let builder = Netlist.Builder.create name in
  let ids = Hashtbl.create 256 in
  let defs = Hashtbl.create 256 in
  let inputs = ref [] and outputs = ref [] in
  List.iter
    (function
      | Input s -> inputs := s :: !inputs
      | Output s -> outputs := s :: !outputs
      | Def (target, head, args) ->
          if Hashtbl.mem defs target then
            fail 0 ("signal defined twice: " ^ target);
          Hashtbl.add defs target (head, args))
    raw;
  List.iter
    (fun s -> Hashtbl.replace ids s (Netlist.Builder.add_input builder s))
    (List.rev !inputs);
  (* Resolve definitions in dependency order by depth-first search. *)
  let visiting = Hashtbl.create 64 in
  let rec resolve signal =
    match Hashtbl.find_opt ids signal with
    | Some id -> id
    | None -> (
        if Hashtbl.mem visiting signal then
          fail 0 ("combinational cycle through signal " ^ signal);
        Hashtbl.add visiting signal ();
        match Hashtbl.find_opt defs signal with
        | None -> fail 0 ("undefined signal: " ^ signal)
        | Some (head, args) ->
            let fanins = List.map resolve args in
            let kind =
              match Gate.of_name head (List.length args) with
              | Some k -> k
              | None ->
                  fail 0
                    (Printf.sprintf "unknown gate %s/%d defining %s" head
                       (List.length args) signal)
            in
            let id = Netlist.Builder.add_gate ~name:signal builder kind fanins in
            Hashtbl.remove visiting signal;
            Hashtbl.replace ids signal id;
            id)
  in
  (* Resolve in file order for deterministic node numbering. *)
  List.iter
    (function Def (target, _, _) -> ignore (resolve target) | Input _ | Output _ -> ())
    raw;
  List.iter
    (fun s ->
      match Hashtbl.find_opt ids s with
      | Some id -> Netlist.Builder.mark_output builder id
      | None -> fail 0 ("OUTPUT references undefined signal: " ^ s))
    (List.rev !outputs);
  try Netlist.Builder.finish builder
  with Invalid_argument msg -> fail 0 msg

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  let name = Filename.remove_extension (Filename.basename path) in
  try parse_string ~name text
  with Parse_error (pos, msg) ->
    raise (Parse_error (Err.with_file pos path, msg))

let parse_string_res ?name text =
  match parse_string ?name text with
  | c -> Ok c
  | exception Parse_error (pos, msg) ->
      Error (Err.parse_at ~pos ~format:"bench" msg)
  | exception exn -> Error (Err.of_exn ~context:"Bench_format.parse" exn)

let parse_file_res path =
  match parse_file path with
  | c -> Ok c
  | exception Parse_error (pos, msg) ->
      Error (Err.parse_at ~pos ~format:"bench" msg)
  | exception Sys_error msg ->
      Error (Err.parse ~file:path ~format:"bench" msg)
  | exception exn -> Error (Err.of_exn ~context:"Bench_format.parse" exn)

let to_string (c : Netlist.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" c.Netlist.name);
  for i = 0 to c.Netlist.num_inputs - 1 do
    Buffer.add_string buf (Printf.sprintf "INPUT(%s)\n" (Netlist.node_name c i))
  done;
  Array.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf "OUTPUT(%s)\n" (Netlist.node_name c o)))
    c.Netlist.outputs;
  Array.iter
    (fun (g : Netlist.gate) ->
      let operands =
        g.Netlist.fanins |> Array.to_list
        |> List.map (Netlist.node_name c)
        |> String.concat ", "
      in
      Buffer.add_string buf
        (Printf.sprintf "%s = %s(%s)\n"
           (Netlist.node_name c g.Netlist.id)
           (Gate.name g.Netlist.kind) operands))
    c.Netlist.gates;
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  output_string oc (to_string c);
  close_out oc
