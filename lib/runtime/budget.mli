(** Resource budgets and graceful degradation bookkeeping.

    A budget bounds a methodology run along three axes: wall-clock
    deadline, near-critical path count, and PDF grid cells.  Breaching a
    budget never kills the run — the driver tightens its parameters,
    keeps the already-analyzed subset, and marks the result degraded
    with a list of {!degradation} values saying exactly what was
    dropped. *)

type t = {
  deadline_s : float option;  (** wall-clock limit for the whole run *)
  max_paths : int option;  (** cap on near-critical enumeration *)
  max_cells : int option;  (** cap on PDF discretization (QUALITY) *)
}

val unlimited : t
val make : ?deadline_s:float -> ?max_paths:int -> ?max_cells:int -> unit -> t
val is_unlimited : t -> bool
val validate : t -> (unit, Ssta_error.t) result

val parse_duration : string -> (float, Ssta_error.t) result
(** Parse "10s", "500ms", "2m", "0.25h" or a bare number of seconds. *)

type tracker
(** A budget plus the wall-clock instant the run started, plus an
    optional external cancellation hook. *)

val start : ?cancelled:(unit -> bool) -> t -> tracker
(** [cancelled] is an external cooperative stop source — a signal latch
    ({!Cancel.cancelled}), a server shutdown flag — polled alongside the
    deadline by {!stopped} and {!stop_check}.  It must be cheap and
    monotone (once [true], always [true]). *)

val limits : tracker -> t
val elapsed_s : tracker -> float
val remaining_s : tracker -> float option

val out_of_time : tracker -> bool
(** The wall-clock deadline alone (cancellation not consulted). *)

val interrupted : tracker -> bool
(** The external cancellation hook alone (clock not consulted). *)

val stopped : tracker -> bool
(** [interrupted || out_of_time] — what budgeted drivers poll between
    work items. *)

val stop_check : ?stride:int -> tracker -> unit -> bool
(** A predicate for hot loops: consults the clock and the cancellation
    hook only every [stride] calls (a power of two, default 512) and
    latches once either trips.  Always [false] for deadline-free,
    hook-free budgets. *)

val effective_max_paths : t -> int -> int
(** The configured enumeration cap further clamped by the budget. *)

val clamp_quality : t -> intra:int -> inter:int -> (int * int) option
(** Clamp QUALITY settings to [max_cells]; [None] when unchanged. *)

type degradation =
  | Deadline_hit of { phase : string; detail : string }
  | Capped of { resource : string; kept : int; detail : string }
  | Tightened of { parameter : string; from_ : float; to_ : float }

val pp_degradation : Format.formatter -> degradation -> unit
