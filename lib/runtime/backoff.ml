type t = {
  base_s : float;
  multiplier : float;
  cap_s : float;
  max_retries : int;
}

let make ?(base_s = 0.001) ?(multiplier = 2.0) ?(cap_s = 1.0) ~max_retries ()
    =
  if max_retries < 0 then
    invalid_arg "Backoff.make: max_retries must be >= 0";
  if not (base_s > 0.0 && Float.is_finite base_s) then
    invalid_arg "Backoff.make: base_s must be positive and finite";
  if not (multiplier >= 1.0 && Float.is_finite multiplier) then
    invalid_arg "Backoff.make: multiplier must be >= 1";
  if not (cap_s >= base_s && Float.is_finite cap_s) then
    invalid_arg "Backoff.make: cap_s must be >= base_s";
  { base_s; multiplier; cap_s; max_retries }

let none = { base_s = 0.001; multiplier = 2.0; cap_s = 1.0; max_retries = 0 }

let max_retries t = t.max_retries

let delay_s t ~attempt =
  if attempt < 1 || attempt > t.max_retries then None
  else
    (* base * mult^(attempt-1), computed by repeated multiplication with
       early saturation so huge attempt counts cannot overflow. *)
    let d = ref t.base_s in
    (try
       for _ = 2 to attempt do
         if !d >= t.cap_s then raise Exit;
         d := !d *. t.multiplier
       done
     with Exit -> ());
    Some (Float.min !d t.cap_s)

let schedule t =
  List.init t.max_retries (fun i ->
      match delay_s t ~attempt:(i + 1) with
      | Some d -> d
      | None -> assert false)

let total_s t = List.fold_left ( +. ) 0.0 (schedule t)
