(** Cooperative cancellation tokens.

    A token is a domain-safe latch connecting an asynchronous event — a
    POSIX signal, a server shutdown, a watchdog — to the cooperative
    stop predicates the analysis hot loops already poll
    ({!Budget.stop_check}).  Cancellation never kills work mid-write:
    the running phase finishes its current path or shard, the driver
    keeps the completed prefix and reports a degraded result, exactly
    like a deadline breach. *)

type t

val create : unit -> t
(** A fresh, untriggered token. *)

val cancel : ?reason:string -> t -> unit
(** Trip the latch.  Idempotent: the first reason wins.  Safe to call
    from a signal handler or another domain. *)

val cancelled : t -> bool
(** Has the latch tripped?  Cheap enough for hot-loop polling. *)

val reason : t -> string option
(** Why, when tripped ("sigint", "sigterm", "shutdown", ...). *)

val on_signals : ?signals:int list -> t -> unit
(** Install handlers that {!cancel} the token (reason "sigint" /
    "sigterm" / "signal-N") on delivery.  Default signals: [Sys.sigint]
    and [Sys.sigterm].  Platforms without signal support ignore the
    failure silently — the token simply never trips. *)

val restore_default_signals : ?signals:int list -> unit -> unit
(** Put the default behaviour back (same default signal list). *)
