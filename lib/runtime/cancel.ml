(* [None] = untriggered; [Some reason] = tripped.  A single atomic makes
   the latch safe to trip from signal handlers and other domains, and
   compare-and-set keeps the first reason. *)
type t = string option Atomic.t

let create () = Atomic.make None

let cancel ?(reason = "cancelled") t =
  ignore (Atomic.compare_and_set t None (Some reason))

let cancelled t = Atomic.get t <> None
let reason t = Atomic.get t

let signal_reason s =
  if s = Sys.sigint then "sigint"
  else if s = Sys.sigterm then "sigterm"
  else Printf.sprintf "signal-%d" s

let default_signals = [ Sys.sigint; Sys.sigterm ]

let on_signals ?(signals = default_signals) t =
  List.iter
    (fun s ->
      try
        Sys.set_signal s
          (Sys.Signal_handle (fun s -> cancel ~reason:(signal_reason s) t))
      with Invalid_argument _ | Sys_error _ -> ())
    signals

let restore_default_signals ?(signals = default_signals) () =
  List.iter
    (fun s ->
      try Sys.set_signal s Sys.Signal_default
      with Invalid_argument _ | Sys_error _ -> ())
    signals
