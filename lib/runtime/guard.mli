(** Guarded PDF operations.

    Wrappers around [Ssta_prob.Pdf] / [Ssta_prob.Combine] that audit
    their result: NaN/Inf anywhere, negative density beyond float dust,
    or total mass drifting from 1 beyond a tolerance.  Repairable damage
    (dust negatives, mass drift) is fixed — clamped / renormalized — and
    recorded in the {!Health} ledger; unrepairable damage becomes a
    typed {!Ssta_error.Numeric} error.

    Each operation comes in two forms: [foo_res] returning a [result],
    and [foo] raising [Ssta_error.Error] (for use deep inside a
    computation whose boundary catches it).

    The guarded operations are closed over well-formed PDFs: whenever
    they return [Ok p] (or don't raise), [p] has finite non-negative
    density everywhere and unit mass within [tol]. *)

module Pdf = Ssta_prob.Pdf

val default_tol : float
(** Relative mass tolerance, [1e-6]. *)

val make_res :
  ?tol:float -> Health.t -> op:string -> lo:float -> step:float ->
  float array -> (Pdf.t, Ssta_error.t) result
(** Guarded constructor for a density that is {e supposed} to be
    normalized already (external data, accumulator output); a mass
    defect beyond [tol] is repaired and recorded. *)

val make :
  ?tol:float -> Health.t -> op:string -> lo:float -> step:float ->
  float array -> Pdf.t

val check_res :
  ?tol:float -> Health.t -> op:string -> Pdf.t -> (Pdf.t, Ssta_error.t) result
(** Audit an existing PDF; returns it unchanged when sound, a
    renormalized copy when the mass drifted, an error when broken.  The
    sound common case is a single read-only pass (no copy). *)

val check : ?tol:float -> Health.t -> op:string -> Pdf.t -> Pdf.t

val sum_res :
  ?tol:float -> ?n:int -> ?arena:Ssta_prob.Arena.t -> Health.t -> Pdf.t ->
  Pdf.t -> (Pdf.t, Ssta_error.t) result
(** Guarded convolution (distribution of X + Y).  [arena] is scratch for
    the accumulation grid (see {!Ssta_prob.Combine.sum}). *)

val sum :
  ?tol:float -> ?n:int -> ?arena:Ssta_prob.Arena.t -> Health.t -> Pdf.t ->
  Pdf.t -> Pdf.t

val map_res :
  ?tol:float -> ?n:int -> Health.t -> (float -> float) -> Pdf.t ->
  (Pdf.t, Ssta_error.t) result
(** Guarded 1-variable push-forward. *)

val map : ?tol:float -> ?n:int -> Health.t -> (float -> float) -> Pdf.t -> Pdf.t

val push3_res :
  ?tol:float -> ?n:int -> Health.t -> (float -> float -> float -> float) ->
  Pdf.t -> Pdf.t -> Pdf.t -> (Pdf.t, Ssta_error.t) result
(** Guarded 3-variable push-forward. *)

val push3 :
  ?tol:float -> ?n:int -> Health.t -> (float -> float -> float -> float) ->
  Pdf.t -> Pdf.t -> Pdf.t -> Pdf.t

val affine_res :
  ?tol:float -> Health.t -> mul:float -> add:float -> Pdf.t ->
  (Pdf.t, Ssta_error.t) result
(** Guarded affine transform; additionally rejects non-finite or zero
    coefficients (which the raw [Pdf.affine] lets through as Inf/NaN
    grids). *)

val affine : ?tol:float -> Health.t -> mul:float -> add:float -> Pdf.t -> Pdf.t

val resample_res :
  ?tol:float -> Health.t -> n:int -> Pdf.t -> (Pdf.t, Ssta_error.t) result

val resample : ?tol:float -> Health.t -> n:int -> Pdf.t -> Pdf.t
