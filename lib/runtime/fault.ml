module Rng = Ssta_prob.Rng

type corruption = {
  label : string;
  describe : string;
  apply : string -> string;
}

let make_corruption ~label ~describe apply = { label; describe; apply }
let apply c text = c.apply text

let truncate_frac frac =
  { label = Printf.sprintf "truncate-%.0f%%" (frac *. 100.0);
    describe =
      Printf.sprintf "keep only the first %.0f%% of the bytes"
        (frac *. 100.0);
    apply =
      (fun text ->
        let keep =
          Int.max 0
            (Int.min (String.length text)
               (int_of_float (frac *. float_of_int (String.length text))))
        in
        String.sub text 0 keep) }

let garble ~seed ~fraction =
  { label = Printf.sprintf "garble-%d" seed;
    describe =
      Printf.sprintf
        "overwrite ~%.0f%% of the bytes with random printable junk \
         (seed %d)"
        (fraction *. 100.0) seed;
    apply =
      (fun text ->
        let rng = Rng.create seed in
        String.map
          (fun ch ->
            if Rng.float rng < fraction then
              Char.chr (33 + Rng.int rng 94)
            else ch)
          text) }

let on_lines f text =
  String.split_on_char '\n' text |> f |> String.concat "\n"

let delete_lines ~seed ~fraction =
  { label = Printf.sprintf "delete-lines-%d" seed;
    describe =
      Printf.sprintf "drop ~%.0f%% of the lines (seed %d)"
        (fraction *. 100.0) seed;
    apply =
      (fun text ->
        let rng = Rng.create seed in
        on_lines
          (List.filter (fun _ -> Rng.float rng >= fraction))
          text) }

let duplicate_lines ~seed ~fraction =
  { label = Printf.sprintf "duplicate-lines-%d" seed;
    describe =
      Printf.sprintf "repeat ~%.0f%% of the lines (seed %d)"
        (fraction *. 100.0) seed;
    apply =
      (fun text ->
        let rng = Rng.create seed in
        on_lines
          (List.concat_map (fun l ->
               if Rng.float rng < fraction then [ l; l ] else [ l ]))
          text) }

let replace_line ~line replacement =
  { label = Printf.sprintf "replace-line-%d" line;
    describe = Printf.sprintf "replace line %d with %S" line replacement;
    apply =
      (fun text ->
        on_lines
          (List.mapi (fun i l -> if i + 1 = line then replacement else l))
          text) }

let append_line suffix =
  { label = "append-line";
    describe = Printf.sprintf "append the line %S" suffix;
    apply = (fun text -> text ^ "\n" ^ suffix ^ "\n") }

(* Global [pattern -> by] substitution (plain text, not regex). *)
let substitute ~pattern ~by =
  { label = Printf.sprintf "subst-%s" pattern;
    describe = Printf.sprintf "replace every %S with %S" pattern by;
    apply =
      (fun text ->
        let n = String.length text and m = String.length pattern in
        if m = 0 then text
        else begin
          let buf = Buffer.create n in
          let i = ref 0 in
          while !i < n do
            if !i + m <= n && String.sub text !i m = pattern then begin
              Buffer.add_string buf by;
              i := !i + m
            end
            else begin
              Buffer.add_char buf text.[!i];
              incr i
            end
          done;
          Buffer.contents buf
        end) }

(* The format-agnostic core corpus; format-specific substitutions are
   added by the callers that know the syntax. *)
let standard ~seed () =
  [ truncate_frac 0.33;
    truncate_frac 0.90;
    garble ~seed ~fraction:0.05;
    garble ~seed:(seed + 1) ~fraction:0.40;
    delete_lines ~seed ~fraction:0.25;
    duplicate_lines ~seed ~fraction:0.25;
    append_line "GARBAGE = UNKNOWN(net_that_does_not_exist" ]

(* ----- outcome classification ----- *)

type 'a outcome =
  | Value of 'a  (** the corrupted input was still accepted *)
  | Typed of Ssta_error.t  (** rejected through the typed channel — good *)
  | Crash of string  (** an uncaught exception escaped — a bug *)

let run f =
  match f () with
  | Ok v -> Value v
  | Error e -> Typed e
  | exception Ssta_error.Error e -> Typed e
  | exception exn -> Crash (Printexc.to_string exn)

let run_exn f =
  match f () with
  | v -> Value v
  | exception Ssta_error.Error e -> Typed e
  | exception exn -> Crash (Printexc.to_string exn)

let is_crash = function Crash _ -> true | _ -> false

let pp_outcome pp_value fmt = function
  | Value v -> Format.fprintf fmt "accepted: %a" pp_value v
  | Typed e -> Format.fprintf fmt "typed error: %a" Ssta_error.pp e
  | Crash msg -> Format.fprintf fmt "CRASH: %s" msg
