type issue =
  | Non_finite
  | Negative_density
  | Mass_defect
  | Renormalized
  | Degenerate

let issue_name = function
  | Non_finite -> "non-finite"
  | Negative_density -> "negative-density"
  | Mass_defect -> "mass-defect"
  | Renormalized -> "renormalized"
  | Degenerate -> "degenerate"

type event = { op : string; issue : issue; defect : float; detail : string }

type t = {
  mutable events : event list;  (* newest first; capped *)
  mutable total : int;
  mutable dropped : int;
  mutable worst_defect : float;
  mutable worst_defect_op : string;
  mutable renormalizations : int;
  mutable counters : (string * int) list;  (* informational tallies *)
}

let max_kept_events = 64

let create () =
  { events = [];
    total = 0;
    dropped = 0;
    worst_defect = 0.0;
    worst_defect_op = "";
    renormalizations = 0;
    counters = [] }

let record t ~op ~issue ?(defect = 0.0) detail =
  t.total <- t.total + 1;
  if issue = Renormalized then t.renormalizations <- t.renormalizations + 1;
  let defect = Float.abs defect in
  if defect > t.worst_defect then begin
    t.worst_defect <- defect;
    t.worst_defect_op <- op
  end;
  if List.length t.events >= max_kept_events then t.dropped <- t.dropped + 1
  else t.events <- { op; issue; defect; detail } :: t.events

let is_clean t = t.total = 0
let count t = t.total
let renormalizations t = t.renormalizations
let worst_defect t = (t.worst_defect, t.worst_defect_op)
let events t = List.rev t.events

let counter_add t name n =
  if n <> 0 then
    t.counters <-
      (match List.assoc_opt name t.counters with
      | Some v -> (name, v + n) :: List.remove_assoc name t.counters
      | None -> (name, n) :: t.counters)

let counter_set t name n =
  t.counters <- (name, n) :: List.remove_assoc name t.counters

let counter t name = Option.value ~default:0 (List.assoc_opt name t.counters)

let counters t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t.counters

let merge ~into src =
  List.iter
    (fun e -> record into ~op:e.op ~issue:e.issue ~defect:e.defect e.detail)
    (events src);
  List.iter (fun (k, v) -> counter_add into k v) (counters src);
  into.dropped <- into.dropped + src.dropped

let pp_event fmt e =
  Format.fprintf fmt "[%s] %s: %s" (issue_name e.issue) e.op e.detail;
  if e.defect > 0.0 then Format.fprintf fmt " (defect %.3g)" e.defect

let pp fmt t =
  if is_clean t then Format.fprintf fmt "numerics: clean"
  else begin
    Format.fprintf fmt
      "numerics: %d warning%s (%d renormalization%s, worst mass defect %.3g%s)"
      t.total
      (if t.total = 1 then "" else "s")
      t.renormalizations
      (if t.renormalizations = 1 then "" else "s")
      t.worst_defect
      (if t.worst_defect_op = "" then "" else " in " ^ t.worst_defect_op);
    List.iter (fun e -> Format.fprintf fmt "@.  %a" pp_event e) (events t);
    if t.dropped > 0 then
      Format.fprintf fmt "@.  ... and %d more (not kept)" t.dropped
  end
