module Pdf = Ssta_prob.Pdf
module Combine = Ssta_prob.Combine

let default_tol = 1e-6

let numeric ~op msg = Error (Ssta_error.numeric ~op msg)

let finite x = Float.is_finite x

(* Classify and, where sound, repair a density array in place (a copy of
   the caller's).  Returns the mass, or an error for unrepairable
   damage.  [normalized] says whether the caller promised unit mass, so
   a drift is worth a ledger entry. *)
let audit_density ~tol ~op ~normalized health ~lo ~step density =
  if not (finite lo && finite step && step > 0.0) then begin
    Health.record health ~op ~issue:Health.Non_finite
      "grid geometry is not finite/positive";
    numeric ~op
      (Printf.sprintf "invalid grid (lo=%g step=%g)" lo step)
  end
  else begin
    let n = Array.length density in
    let bad = ref None in
    let neg_mass = ref 0.0 in
    for i = 0 to n - 1 do
      let d = density.(i) in
      if not (finite d) then begin
        if !bad = None then bad := Some i
      end
      else if d < 0.0 then neg_mass := !neg_mass +. (-.d *. step)
    done;
    match !bad with
    | Some i ->
        Health.record health ~op ~issue:Health.Non_finite
          (Printf.sprintf "cell %d is %g" i density.(i));
        numeric ~op (Printf.sprintf "non-finite density in cell %d" i)
    | None ->
        if !neg_mass > tol then begin
          Health.record health ~op ~issue:Health.Negative_density
            ~defect:!neg_mass "negative density beyond tolerance";
          numeric ~op
            (Printf.sprintf "negative probability mass %.3g" !neg_mass)
        end
        else begin
          (* Dust-level negatives: clamp to zero and account for it. *)
          if !neg_mass > 0.0 then begin
            for i = 0 to n - 1 do
              if density.(i) < 0.0 then density.(i) <- 0.0
            done;
            Health.record health ~op ~issue:Health.Negative_density
              ~defect:!neg_mass "clamped negative dust to 0"
          end;
          let mass = ref 0.0 in
          Array.iter (fun d -> mass := !mass +. (d *. step)) density;
          if not (!mass > 0.0 && finite !mass) then begin
            Health.record health ~op ~issue:Health.Degenerate
              (Printf.sprintf "total mass %g" !mass);
            numeric ~op (Printf.sprintf "degenerate total mass %g" !mass)
          end
          else begin
            let defect = Float.abs (!mass -. 1.0) in
            if normalized && defect > tol then
              Health.record health ~op ~issue:Health.Renormalized ~defect
                (Printf.sprintf "mass %.9g renormalized to 1" !mass);
            Ok !mass
          end
        end
  end

let make_res ?(tol = default_tol) health ~op ~lo ~step density =
  let density = Array.copy density in
  match audit_density ~tol ~op ~normalized:true health ~lo ~step density with
  | Error _ as e -> e
  | Ok _ -> (
      (* Pdf.make normalizes; its own validation is now redundant but
         harmless. *)
      try Ok (Pdf.make ~lo ~step density)
      with Invalid_argument msg -> numeric ~op msg)

(* Scan-first audit of an existing PDF: the common case (finite,
   non-negative, mass within tolerance) touches no memory beyond one
   read-only pass, copying the density only when dust actually needs
   clamping.  The classification, repair, ledger events and returned
   values are identical to running [audit_density] on a copy — the scan
   order, the float expressions and the event sequence are the same. *)
let check_res ?(tol = default_tol) health ~op (p : Pdf.t) =
  let lo = p.Pdf.lo and step = p.Pdf.step in
  if not (finite lo && finite step && step > 0.0) then begin
    Health.record health ~op ~issue:Health.Non_finite
      "grid geometry is not finite/positive";
    numeric ~op (Printf.sprintf "invalid grid (lo=%g step=%g)" lo step)
  end
  else begin
    let density = p.Pdf.density in
    let n = Array.length density in
    let bad = ref None in
    (* Unboxed accumulator slot for the negative-dust mass. *)
    let neg = [| 0.0 |] in
    for i = 0 to n - 1 do
      let d = Array.unsafe_get density i in
      if not (finite d) then begin
        if !bad = None then bad := Some i
      end
      else if d < 0.0 then
        Array.unsafe_set neg 0 (Array.unsafe_get neg 0 +. (-.d *. step))
    done;
    let neg_mass = Array.unsafe_get neg 0 in
    match !bad with
    | Some i ->
        Health.record health ~op ~issue:Health.Non_finite
          (Printf.sprintf "cell %d is %g" i density.(i));
        numeric ~op (Printf.sprintf "non-finite density in cell %d" i)
    | None ->
        if neg_mass > tol then begin
          Health.record health ~op ~issue:Health.Negative_density
            ~defect:neg_mass "negative density beyond tolerance";
          numeric ~op
            (Printf.sprintf "negative probability mass %.3g" neg_mass)
        end
        else begin
          let audited =
            if neg_mass > 0.0 then begin
              (* Dust-level negatives: clamp a copy and account for it. *)
              let c = Array.copy density in
              for i = 0 to n - 1 do
                if c.(i) < 0.0 then c.(i) <- 0.0
              done;
              Health.record health ~op ~issue:Health.Negative_density
                ~defect:neg_mass "clamped negative dust to 0";
              c
            end
            else density
          in
          let macc = [| 0.0 |] in
          for i = 0 to n - 1 do
            Array.unsafe_set macc 0
              (Array.unsafe_get macc 0 +. (Array.unsafe_get audited i *. step))
          done;
          let mass = Array.unsafe_get macc 0 in
          if not (mass > 0.0 && finite mass) then begin
            Health.record health ~op ~issue:Health.Degenerate
              (Printf.sprintf "total mass %g" mass);
            numeric ~op (Printf.sprintf "degenerate total mass %g" mass)
          end
          else begin
            let defect = Float.abs (mass -. 1.0) in
            if defect > tol then begin
              Health.record health ~op ~issue:Health.Renormalized ~defect
                (Printf.sprintf "mass %.9g renormalized to 1" mass);
              (* Repair: Pdf.make renormalizes (copying internally, so
                 passing the original density is safe). *)
              try Ok (Pdf.make ~lo ~step audited)
              with Invalid_argument msg -> numeric ~op msg
            end
            else Ok p
          end
        end
  end

let lift1 ?(tol = default_tol) health ~op f =
  match f () with
  | p -> check_res ~tol health ~op p
  | exception Invalid_argument msg ->
      Health.record health ~op ~issue:Health.Degenerate msg;
      numeric ~op msg

let or_raise = function Ok v -> v | Error e -> Ssta_error.raise_error e

let make ?tol health ~op ~lo ~step density =
  or_raise (make_res ?tol health ~op ~lo ~step density)

let check ?tol health ~op p = or_raise (check_res ?tol health ~op p)

let sum_res ?tol ?n ?arena health px py =
  lift1 ?tol health ~op:"Combine.sum" (fun () -> Combine.sum ?n ?arena px py)

let sum ?tol ?n ?arena health px py =
  or_raise (sum_res ?tol ?n ?arena health px py)

let map_res ?tol ?n health f p =
  lift1 ?tol health ~op:"Combine.map" (fun () -> Combine.map ?n f p)

let map ?tol ?n health f p = or_raise (map_res ?tol ?n health f p)

let push3_res ?tol ?n health f px py pz =
  lift1 ?tol health ~op:"Combine.push3" (fun () -> Combine.push3 ?n f px py pz)

let push3 ?tol ?n health f px py pz =
  or_raise (push3_res ?tol ?n health f px py pz)

let affine_res ?tol health ~mul ~add p =
  if not (finite mul && finite add && mul <> 0.0) then begin
    Health.record health ~op:"Pdf.affine" ~issue:Health.Non_finite
      (Printf.sprintf "mul=%g add=%g" mul add);
    numeric ~op:"Pdf.affine"
      (Printf.sprintf "coefficients must be finite, mul non-zero \
                       (mul=%g add=%g)" mul add)
  end
  else lift1 ?tol health ~op:"Pdf.affine" (fun () -> Pdf.affine ~mul ~add p)

let affine ?tol health ~mul ~add p =
  or_raise (affine_res ?tol health ~mul ~add p)

let resample_res ?tol health ~n p =
  lift1 ?tol health ~op:"Pdf.resample" (fun () -> Pdf.resample ~n p)

let resample ?tol health ~n p = or_raise (resample_res ?tol health ~n p)
