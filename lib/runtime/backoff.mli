(** Deterministic bounded exponential backoff schedules.

    A schedule is a pure function of its parameters — no wall-clock, no
    randomness — so any retry policy built on it (the server's
    retry-with-degradation, future client reconnect loops) produces the
    same attempt sequence on every run and nothing time-dependent ever
    leaks into deterministic reports.  Delays grow geometrically from
    [base_s] by [multiplier] and saturate at [cap_s]; after
    [max_retries] attempts the schedule is exhausted. *)

type t

val make :
  ?base_s:float ->
  ?multiplier:float ->
  ?cap_s:float ->
  max_retries:int ->
  unit ->
  t
(** [make ~max_retries ()] builds a schedule of [max_retries] delays
    (default [base_s] 0.001, [multiplier] 2.0, [cap_s] 1.0).  Raises
    [Invalid_argument] when [max_retries < 0], [base_s <= 0],
    [multiplier < 1] or [cap_s < base_s]. *)

val none : t
(** The empty schedule: no retries. *)

val max_retries : t -> int

val delay_s : t -> attempt:int -> float option
(** Delay before retry number [attempt] (1-based): [base * mult^(a-1)]
    capped at [cap_s].  [None] once [attempt > max_retries] (the policy
    gives up) or when [attempt < 1]. *)

val schedule : t -> float list
(** The full delay sequence, [delay_s ~attempt:1 .. max_retries].
    Nondecreasing by construction. *)

val total_s : t -> float
(** Sum of the whole schedule — the worst-case time a caller can spend
    sleeping, useful for sizing deadlines around a retry loop. *)
