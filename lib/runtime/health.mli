(** Per-run ledger of numerical warnings.

    {!Guard} records every anomaly it repairs (and every one it cannot)
    here, so a run that silently renormalized a drifting PDF still tells
    the caller it did.  A single [t] is threaded through a whole
    methodology run and surfaced by [Report]. *)

type issue =
  | Non_finite  (** NaN or infinity appeared in a density *)
  | Negative_density  (** density entries below 0 (beyond dust) *)
  | Mass_defect  (** total mass drifted from 1 beyond tolerance *)
  | Renormalized  (** the defect above was repaired by renormalizing *)
  | Degenerate  (** zero-mass / empty / collapsed distribution *)

val issue_name : issue -> string

type event = { op : string; issue : issue; defect : float; detail : string }

type t

val create : unit -> t

val record : t -> op:string -> issue:issue -> ?defect:float -> string -> unit
(** Append an event.  Only the first 64 events are kept verbatim; the
    counters keep counting past that. *)

val is_clean : t -> bool
val count : t -> int
val renormalizations : t -> int

val worst_defect : t -> float * string
(** Largest absolute mass defect seen and the operation it occurred in
    (empty string when none). *)

val events : t -> event list
(** Kept events, oldest first. *)

val counter_add : t -> string -> int -> unit
(** Bump the named informational counter (no-op for 0).  Counters do not
    affect {!is_clean}; they record run facts such as cache traffic. *)

val counter_set : t -> string -> int -> unit
(** Overwrite the named counter with an absolute value. *)

val counter : t -> string -> int
(** Current value of a counter (0 when never touched). *)

val counters : t -> (string * int) list
(** All counters, sorted by name — a deterministic serialization order. *)

val merge : into:t -> t -> unit
(** Replays [src]'s events into [into] and sums its counters. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
