(** The typed error channel of the analysis runtime.

    Every boundary of the stack — parsers, the methodology driver, the
    CLI — reports failures as a value of {!t} instead of an untyped
    [Failure]/[Invalid_argument].  Internal invariant checks deep inside
    the libraries may still assert, but anything a malformed input or an
    exhausted budget can trigger must surface through this type. *)

type position = { file : string option; line : int; col : int }
(** [line] and [col] are 1-based; 0 means unknown. *)

val no_position : position
val position : ?file:string -> ?line:int -> ?col:int -> unit -> position
val with_file : position -> string -> position

val position_of_token :
  ?file:string -> line:int -> line_text:string -> string -> position
(** Recover a column by locating the offending token inside the raw
    source line (col 0 when it cannot be found). *)

val pp_position : Format.formatter -> position -> unit

type t =
  | Parse of { pos : position; format : string; message : string }
      (** Malformed input text ([format] names the syntax: "bench",
          "def", "spef", "verilog", "duration", ...). *)
  | Structural of { subject : string; message : string }
      (** Well-formed input describing an impossible object (cycle,
          mismatched netlist, invalid configuration). *)
  | Numeric of { op : string; message : string }
      (** A PDF operation produced NaN/Inf, negative density or lost
          probability mass beyond repair. *)
  | Budget_exceeded of { resource : string; message : string }
      (** A resource budget was exhausted in a way that prevented even a
          degraded result. *)
  | Internal of { context : string; message : string }
      (** A bug: an invariant the code itself promised was violated. *)

exception Error of t
(** Wrapper for crossing exception-based plumbing; boundaries catch it
    and return the payload. *)

val parse : ?file:string -> ?line:int -> ?col:int -> format:string -> string -> t
val parse_at : pos:position -> format:string -> string -> t
val structural : subject:string -> string -> t
val numeric : op:string -> string -> t
val budget : resource:string -> string -> t
val internal : context:string -> string -> t
val raise_error : t -> 'a

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val kind_name : t -> string
(** "parse", "structural", "numeric", "budget-exceeded" or "internal". *)

val exit_code : t -> int
(** CLI exit code for this error: 4 for [Internal], 1 otherwise. *)

val of_exn : context:string -> exn -> t
(** Classify an arbitrary exception: [Error] payloads pass through,
    [Invalid_argument]/[Failure]/[Sys_error] become [Structural],
    resource exhaustion becomes [Budget_exceeded], anything else is
    [Internal]. *)

val protect : context:string -> (unit -> 'a) -> ('a, t) result
(** Run [f], converting any exception via {!of_exn}. *)
