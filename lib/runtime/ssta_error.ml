type position = { file : string option; line : int; col : int }

let no_position = { file = None; line = 0; col = 0 }

let position ?file ?(line = 0) ?(col = 0) () = { file; line; col }

let with_file pos file = { pos with file = Some file }

(* Locate [token] inside [line_text] so parsers that only track the
   offending token can still report a column.  Column numbers are
   1-based; 0 means unknown. *)
let position_of_token ?file ~line ~line_text token =
  let col =
    if token = "" then 0
    else begin
      let n = String.length line_text and m = String.length token in
      let found = ref 0 in
      (try
         for i = 0 to n - m do
           if String.sub line_text i m = token then begin
             found := i + 1;
             raise Exit
           end
         done
       with Exit -> ());
      !found
    end
  in
  { file; line; col }

let pp_position fmt p =
  let file = match p.file with Some f -> f | None -> "<input>" in
  if p.line <= 0 then Format.fprintf fmt "%s" file
  else if p.col <= 0 then Format.fprintf fmt "%s:%d" file p.line
  else Format.fprintf fmt "%s:%d:%d" file p.line p.col

type t =
  | Parse of { pos : position; format : string; message : string }
  | Structural of { subject : string; message : string }
  | Numeric of { op : string; message : string }
  | Budget_exceeded of { resource : string; message : string }
  | Internal of { context : string; message : string }

exception Error of t

let parse ?file ?(line = 0) ?(col = 0) ~format message =
  Parse { pos = { file; line; col }; format; message }

let parse_at ~pos ~format message = Parse { pos; format; message }
let structural ~subject message = Structural { subject; message }
let numeric ~op message = Numeric { op; message }
let budget ~resource message = Budget_exceeded { resource; message }
let internal ~context message = Internal { context; message }

let raise_error e = raise (Error e)

let pp fmt = function
  | Parse { pos; format; message } ->
      Format.fprintf fmt "parse error (%s) at %a: %s" format pp_position pos
        message
  | Structural { subject; message } ->
      Format.fprintf fmt "structural error in %s: %s" subject message
  | Numeric { op; message } ->
      Format.fprintf fmt "numerical error in %s: %s" op message
  | Budget_exceeded { resource; message } ->
      Format.fprintf fmt "budget exceeded (%s): %s" resource message
  | Internal { context; message } ->
      Format.fprintf fmt "internal error in %s: %s" context message

let to_string e = Format.asprintf "%a" pp e

let kind_name = function
  | Parse _ -> "parse"
  | Structural _ -> "structural"
  | Numeric _ -> "numeric"
  | Budget_exceeded _ -> "budget-exceeded"
  | Internal _ -> "internal"

(* The CLI's documented convention: 1 analysis/lint error, 4 internal.
   (0 success, 2 usage and 3 strict-budget degradation are produced by
   the driver itself.) *)
let exit_code = function Internal _ -> 4 | _ -> 1

let of_exn ~context = function
  | Error e -> e
  | Invalid_argument msg | Failure msg ->
      Structural { subject = context; message = msg }
  | Sys_error msg -> Structural { subject = context; message = msg }
  | Out_of_memory ->
      Budget_exceeded { resource = "memory"; message = context }
  | Stack_overflow ->
      Budget_exceeded { resource = "stack"; message = context }
  | exn -> Internal { context; message = Printexc.to_string exn }

let protect ~context f =
  match f () with
  | v -> Ok v
  | exception (Error _ as e) -> Error (of_exn ~context e)
  | exception exn -> Error (of_exn ~context exn)
