(** Fault-injection harness.

    Deterministic corruptions of input text (netlists, DEF, SPEF,
    configuration) plus an outcome classifier.  The robustness contract
    under test: {e every} corruption must yield either a successful
    (possibly degraded) result or a typed {!Ssta_error.t} — never an
    uncaught exception, a hang, or silent garbage. *)

type corruption = {
  label : string;  (** short stable identifier, used in reports *)
  describe : string;  (** human description of the damage *)
  apply : string -> string;
}

val make_corruption :
  label:string -> describe:string -> (string -> string) -> corruption

val apply : corruption -> string -> string

val truncate_frac : float -> corruption
(** Keep only the first fraction of the bytes (mid-token cuts). *)

val garble : seed:int -> fraction:float -> corruption
(** Overwrite a fraction of the bytes with random printable junk;
    deterministic in [seed]. *)

val delete_lines : seed:int -> fraction:float -> corruption
val duplicate_lines : seed:int -> fraction:float -> corruption

val replace_line : line:int -> string -> corruption
(** Replace a 1-based line wholesale. *)

val append_line : string -> corruption
val substitute : pattern:string -> by:string -> corruption

val standard : seed:int -> unit -> corruption list
(** The format-agnostic core corpus: truncations, garbling, line
    deletion/duplication and a trailing junk line.  Callers add
    format-specific {!substitute} corruptions on top. *)

type 'a outcome =
  | Value of 'a  (** the corrupted input was still accepted *)
  | Typed of Ssta_error.t  (** rejected through the typed channel *)
  | Crash of string  (** an uncaught exception escaped — a bug *)

val run : (unit -> ('a, Ssta_error.t) result) -> 'a outcome
(** Evaluate a result-returning thunk, catching stray exceptions
    (including [Ssta_error.Error], which counts as typed). *)

val run_exn : (unit -> 'a) -> 'a outcome
(** Same for a raising thunk. *)

val is_crash : 'a outcome -> bool

val pp_outcome :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a outcome -> unit
