type t = {
  deadline_s : float option;
  max_paths : int option;
  max_cells : int option;
}

let unlimited = { deadline_s = None; max_paths = None; max_cells = None }

let make ?deadline_s ?max_paths ?max_cells () =
  { deadline_s; max_paths; max_cells }

let is_unlimited t =
  t.deadline_s = None && t.max_paths = None && t.max_cells = None

let validate t =
  let bad what = Error (Ssta_error.structural ~subject:"budget" what) in
  match t with
  | { deadline_s = Some d; _ } when not (d > 0.0 && Float.is_finite d) ->
      bad (Printf.sprintf "deadline must be positive and finite, got %g" d)
  | { max_paths = Some p; _ } when p < 1 ->
      bad (Printf.sprintf "max-paths must be >= 1, got %d" p)
  | { max_cells = Some c; _ } when c < 2 ->
      bad (Printf.sprintf "max-cells must be >= 2, got %d" c)
  | _ -> Ok ()

(* "10s", "500ms", "2m", "0.25h" or a plain number of seconds. *)
let parse_duration s =
  let s = String.trim s in
  let err () =
    Error
      (Ssta_error.parse ~format:"duration"
         (Printf.sprintf
            "cannot parse %S (expected e.g. 10s, 500ms, 2m, 1.5)" s))
  in
  let num_with_suffix suffix scale =
    if String.length s > String.length suffix
       && String.ends_with ~suffix s
    then
      let body = String.sub s 0 (String.length s - String.length suffix) in
      Option.map (fun v -> v *. scale) (float_of_string_opt body)
    else None
  in
  let candidates =
    [ num_with_suffix "ms" 1e-3;
      num_with_suffix "s" 1.0;
      num_with_suffix "m" 60.0;
      num_with_suffix "h" 3600.0;
      float_of_string_opt s ]
  in
  match List.find_opt Option.is_some candidates with
  | Some (Some v) when v > 0.0 && Float.is_finite v -> Ok v
  | _ -> err ()

type tracker = {
  budget : t;
  started : float;
  cancelled : unit -> bool;  (* external cooperative cancellation *)
  has_cancel : bool;
}

let start ?cancelled budget =
  { budget;
    started = Unix.gettimeofday ();
    cancelled = Option.value ~default:(fun () -> false) cancelled;
    has_cancel = Option.is_some cancelled }

let limits tr = tr.budget
let elapsed_s tr = Unix.gettimeofday () -. tr.started

let remaining_s tr =
  Option.map (fun d -> d -. elapsed_s tr) tr.budget.deadline_s

let out_of_time tr =
  match tr.budget.deadline_s with
  | None -> false
  | Some d -> elapsed_s tr >= d

let interrupted tr = tr.has_cancel && tr.cancelled ()
let stopped tr = interrupted tr || out_of_time tr

(* A cheap stop predicate for hot loops: only consults the clock (and
   the cancellation hook) every [stride] calls (gettimeofday is ~20ns
   but enumeration pops are cheaper still). Latches once tripped. *)
let stop_check ?(stride = 512) tr =
  match tr.budget.deadline_s, tr.has_cancel with
  | None, false -> fun () -> false
  | _ ->
      let calls = ref 0 in
      let tripped = ref false in
      fun () ->
        !tripped
        ||
        begin
          incr calls;
          if !calls land (stride - 1) = 0 && stopped tr then
            tripped := true;
          !tripped
        end

let effective_max_paths t config_max =
  match t.max_paths with
  | None -> config_max
  | Some m -> Int.min m config_max

let clamp_quality t ~intra ~inter =
  match t.max_cells with
  | None -> None
  | Some cells ->
      let intra' = Int.min intra cells and inter' = Int.min inter cells in
      if intra' = intra && inter' = inter then None else Some (intra', inter')

(* How a budgeted run fell short of the full analysis. *)
type degradation =
  | Deadline_hit of { phase : string; detail : string }
  | Capped of { resource : string; kept : int; detail : string }
  | Tightened of { parameter : string; from_ : float; to_ : float }

let pp_degradation fmt = function
  | Deadline_hit { phase; detail } ->
      Format.fprintf fmt "deadline hit during %s: %s" phase detail
  | Capped { resource; kept; detail } ->
      Format.fprintf fmt "%s capped at %d: %s" resource kept detail
  | Tightened { parameter; from_; to_ } ->
      Format.fprintf fmt "%s tightened from %g to %g" parameter from_ to_
