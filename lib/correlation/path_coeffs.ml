module Params = Ssta_tech.Params
module Derivatives = Ssta_tech.Derivatives
module Graph = Ssta_timing.Graph
module Paths = Ssta_timing.Paths
module Placement = Ssta_circuit.Placement

type key = { rv : Params.rv; layer : int; partition : int }

type t = {
  alpha_sum : float;
  beta_sum : float;
  gate_count : int;
  nominal_delay : float;
  grad_sum : Params.t;
  coeffs : (key, float) Hashtbl.t;
}

let of_path g pl layers (path : Paths.path) =
  let coeffs = Hashtbl.create 64 in
  let alpha_sum = ref 0.0 and beta_sum = ref 0.0 in
  let gate_count = ref 0 and nominal_delay = ref 0.0 in
  let grad_sum = ref Params.zero in
  Array.iter
    (fun id ->
      if not (Graph.is_input g id) then begin
        let e = Graph.electrical_exn g id in
        alpha_sum := !alpha_sum +. e.Ssta_tech.Gate.alpha;
        beta_sum := !beta_sum +. e.Ssta_tech.Gate.beta;
        incr gate_count;
        nominal_delay := !nominal_delay +. g.Graph.delay.(id);
        let x, y = Placement.coord pl id in
        let grad = Derivatives.gradient e Params.nominal in
        grad_sum := Params.add !grad_sum grad;
        List.iter
          (fun rv ->
            let d = Params.get grad rv in
            (* Intra layers start at 1; layer 0 is the inter part. *)
            for layer = 1 to Layers.num_layers layers - 1 do
              let partition =
                Layers.partition_of_gate layers ~level:layer ~gate_id:id ~x ~y
              in
              let key = { rv; layer; partition } in
              let prev = try Hashtbl.find coeffs key with Not_found -> 0.0 in
              Hashtbl.replace coeffs key (prev +. d)
            done)
          Params.all_rvs
      end)
    path.Paths.nodes;
  { alpha_sum = !alpha_sum;
    beta_sum = !beta_sum;
    gate_count = !gate_count;
    nominal_delay = !nominal_delay;
    grad_sum = !grad_sum;
    coeffs }

let intra_variance t budget =
  Hashtbl.fold
    (fun key c acc ->
      let sigma =
        Budget.sigma_of_layer budget ~total_sigma:(Params.sigma key.rv)
          key.layer
      in
      acc +. (c *. c *. sigma *. sigma))
    t.coeffs 0.0

let layer_variances t budget =
  let n = Budget.layers budget in
  let shares = Array.make n 0.0 in
  Hashtbl.iter
    (fun key c ->
      if key.layer >= 1 && key.layer < n then begin
        let sigma =
          Budget.sigma_of_layer budget ~total_sigma:(Params.sigma key.rv)
            key.layer
        in
        shares.(key.layer) <- shares.(key.layer) +. (c *. c *. sigma *. sigma)
      end)
    t.coeffs;
  shares

let coeff t key = try Hashtbl.find t.coeffs key with Not_found -> 0.0
let num_layer_rvs t = Hashtbl.length t.coeffs
