module Params = Ssta_tech.Params
module Derivatives = Ssta_tech.Derivatives
module Graph = Ssta_timing.Graph
module Paths = Ssta_timing.Paths
module Placement = Ssta_circuit.Placement

type key = { rv : Params.rv; layer : int; partition : int }

type t = {
  alpha_sum : float;
  beta_sum : float;
  gate_count : int;
  nominal_delay : float;
  grad_sum : Params.t;
  coeffs : (key, float) Hashtbl.t;
}

let num_rvs = List.length Params.all_rvs
let rv_array = Array.of_list Params.all_rvs

(* {2 Accumulation workspace}

   [of_path] is the per-path hot spot of the methodology after the grid
   kernels: for every gate it performs [num_rvs * (num_layers - 1)]
   hashtable find/replace pairs.  The workspace replaces the hashtable
   during accumulation with a flat dense array over the finite key space
   (rv, layer, partition) — the partition count per layer is 4^layer for
   spatial layers and [num_nodes] for the random layer — using an epoch
   stamp per slot so no clearing is needed between paths.  The public
   hashtable is rebuilt afterwards from the touched slots in first-touch
   order, which reproduces the reference hashtable's internal structure
   (hence iteration order, hence every downstream float sum) exactly. *)
type workspace = {
  mutable w_off : int array;  (* slot offset per layer; layer 0 unused *)
  mutable w_vals : float array;  (* accumulated coefficient per slot *)
  mutable w_stamp : int array;  (* epoch of the slot's last first-touch *)
  mutable w_rv : int array;  (* touched-slot key components, *)
  mutable w_layer : int array;  (* recorded in first-touch order *)
  mutable w_part : int array;
  mutable w_idx : int array;  (* touched-slot flat index *)
  mutable w_parts : int array;  (* per-gate partition, hoisted per layer *)
  mutable w_epoch : int;
  mutable w_sig : int * int;  (* (num_layers, num_nodes) sizing signature *)
}

let workspace_create () =
  { w_off = [||];
    w_vals = [||];
    w_stamp = [||];
    w_rv = [||];
    w_layer = [||];
    w_part = [||];
    w_idx = [||];
    w_parts = [||];
    w_epoch = 0;
    w_sig = (0, 0) }

let workspace_ensure ws layers ~num_nodes =
  let nl = Layers.num_layers layers in
  if ws.w_sig <> (nl, num_nodes) then begin
    let off = Array.make (Int.max nl 1) 0 in
    let total = ref 0 in
    for layer = 1 to nl - 1 do
      off.(layer) <- !total;
      let parts =
        if Layers.is_random_layer layers layer then num_nodes
        else 1 lsl (2 * layer)
      in
      total := !total + parts
    done;
    let slots = Int.max 1 (num_rvs * !total) in
    ws.w_off <- off;
    ws.w_vals <- Array.make slots 0.0;
    ws.w_stamp <- Array.make slots 0;
    ws.w_rv <- Array.make slots 0;
    ws.w_layer <- Array.make slots 0;
    ws.w_part <- Array.make slots 0;
    ws.w_idx <- Array.make slots 0;
    ws.w_parts <- Array.make (Int.max nl 1) 0;
    ws.w_epoch <- 0;
    ws.w_sig <- (nl, num_nodes)
  end

(* Gate gradients depend only on the gate's electricals, so callers that
   analyze many paths over one graph can evaluate them once per node and
   pass the table in — bit-identical to evaluating inline. *)
let gradient_of grads e id =
  match grads with
  | Some a -> Array.unsafe_get a id
  | None -> Derivatives.gradient e Params.nominal

let of_path_reference ?grads g pl layers (path : Paths.path) =
  let coeffs = Hashtbl.create 64 in
  let alpha_sum = ref 0.0 and beta_sum = ref 0.0 in
  let gate_count = ref 0 and nominal_delay = ref 0.0 in
  let grad_sum = ref Params.zero in
  Array.iter
    (fun id ->
      if not (Graph.is_input g id) then begin
        let e = Graph.electrical_exn g id in
        alpha_sum := !alpha_sum +. e.Ssta_tech.Gate.alpha;
        beta_sum := !beta_sum +. e.Ssta_tech.Gate.beta;
        incr gate_count;
        nominal_delay := !nominal_delay +. g.Graph.delay.(id);
        let x, y = Placement.coord pl id in
        let grad = gradient_of grads e id in
        grad_sum := Params.add !grad_sum grad;
        List.iter
          (fun rv ->
            let d = Params.get grad rv in
            (* Intra layers start at 1; layer 0 is the inter part. *)
            for layer = 1 to Layers.num_layers layers - 1 do
              let partition =
                Layers.partition_of_gate layers ~level:layer ~gate_id:id ~x ~y
              in
              let key = { rv; layer; partition } in
              let prev = try Hashtbl.find coeffs key with Not_found -> 0.0 in
              Hashtbl.replace coeffs key (prev +. d)
            done)
          Params.all_rvs
      end)
    path.Paths.nodes;
  { alpha_sum = !alpha_sum;
    beta_sum = !beta_sum;
    gate_count = !gate_count;
    nominal_delay = !nominal_delay;
    grad_sum = !grad_sum;
    coeffs }

let of_path_flat ?grads ws g pl layers (path : Paths.path) =
  workspace_ensure ws layers ~num_nodes:(Graph.num_nodes g);
  let nl = Layers.num_layers layers in
  let off = ws.w_off
  and vals = ws.w_vals
  and stamp = ws.w_stamp
  and parts = ws.w_parts in
  ws.w_epoch <- ws.w_epoch + 1;
  let epoch = ws.w_epoch in
  let touched = ref 0 in
  let alpha_sum = ref 0.0 and beta_sum = ref 0.0 in
  let gate_count = ref 0 and nominal_delay = ref 0.0 in
  let grad_sum = ref Params.zero in
  Array.iter
    (fun id ->
      if not (Graph.is_input g id) then begin
        let e = Graph.electrical_exn g id in
        alpha_sum := !alpha_sum +. e.Ssta_tech.Gate.alpha;
        beta_sum := !beta_sum +. e.Ssta_tech.Gate.beta;
        incr gate_count;
        nominal_delay := !nominal_delay +. g.Graph.delay.(id);
        let x, y = Placement.coord pl id in
        let grad = gradient_of grads e id in
        grad_sum := Params.add !grad_sum grad;
        (* The partition is rv-independent; hoist it out of the rv loop
           (the reference recomputes the same integers per rv). *)
        for layer = 1 to nl - 1 do
          Array.unsafe_set parts layer
            (Layers.partition_of_gate layers ~level:layer ~gate_id:id ~x ~y)
        done;
        List.iteri
          (fun rv_idx rv ->
            let d = Params.get grad rv in
            for layer = 1 to nl - 1 do
              let partition = Array.unsafe_get parts layer in
              let idx =
                ((Array.unsafe_get off layer + partition) * num_rvs) + rv_idx
              in
              if Array.unsafe_get stamp idx = epoch then
                Array.unsafe_set vals idx (Array.unsafe_get vals idx +. d)
              else begin
                Array.unsafe_set stamp idx epoch;
                (* [0.0 +. d] matches the reference's first accumulation
                   ([prev = 0.0] there), normalizing a negative zero. *)
                Array.unsafe_set vals idx (0.0 +. d);
                let c = !touched in
                Array.unsafe_set ws.w_rv c rv_idx;
                Array.unsafe_set ws.w_layer c layer;
                Array.unsafe_set ws.w_part c partition;
                Array.unsafe_set ws.w_idx c idx;
                touched := c + 1
              end
            done)
          Params.all_rvs
      end)
    path.Paths.nodes;
  (* Rebuild the public hashtable by inserting the distinct keys in
     first-touch order — the same insertion sequence the reference
     performs, so the table's bucket structure, resize history and
     iteration order are identical. *)
  let coeffs = Hashtbl.create 64 in
  for c = 0 to !touched - 1 do
    let key =
      { rv = rv_array.(ws.w_rv.(c));
        layer = ws.w_layer.(c);
        partition = ws.w_part.(c) }
    in
    Hashtbl.replace coeffs key vals.(ws.w_idx.(c))
  done;
  { alpha_sum = !alpha_sum;
    beta_sum = !beta_sum;
    gate_count = !gate_count;
    nominal_delay = !nominal_delay;
    grad_sum = !grad_sum;
    coeffs }

let of_path ?grads ?ws g pl layers path =
  match ws with
  | None -> of_path_reference ?grads g pl layers path
  | Some ws -> of_path_flat ?grads ws g pl layers path

let intra_variance t budget =
  Hashtbl.fold
    (fun key c acc ->
      let sigma =
        Budget.sigma_of_layer budget ~total_sigma:(Params.sigma key.rv)
          key.layer
      in
      acc +. (c *. c *. sigma *. sigma))
    t.coeffs 0.0

let layer_variances t budget =
  let n = Budget.layers budget in
  let shares = Array.make n 0.0 in
  Hashtbl.iter
    (fun key c ->
      if key.layer >= 1 && key.layer < n then begin
        let sigma =
          Budget.sigma_of_layer budget ~total_sigma:(Params.sigma key.rv)
            key.layer
        in
        shares.(key.layer) <- shares.(key.layer) +. (c *. c *. sigma *. sigma)
      end)
    t.coeffs;
  shares

let coeff t key = try Hashtbl.find t.coeffs key with Not_found -> 0.0
let num_layer_rvs t = Hashtbl.length t.coeffs
