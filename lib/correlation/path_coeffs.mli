(** Per-path accumulation of layer-RV coefficients — Eq. (13).

    After the Taylor linearization, a path's intra-die delay is
    [sum over (rv, layer u, partition w) of coeff * RV(rv, u, w)], where
    the coefficient is the sum of the nominal delay derivatives of the
    path's gates that fall in partition (u, w).  Gates of the same path
    that share a partition add their derivatives {e before} squaring —
    this is exactly how the layering model carries spatial correlation
    into the variance of Eq. (14).

    The inter-die part stays nonlinear; for it we accumulate the alpha
    and beta sums of Eq. (5) so the inter-delay PDF can be computed as
    [0.345 tox Leff / eps_ox * (A F(vdd,vtn) + B F(vdd,vtp))]. *)

type key = { rv : Ssta_tech.Params.rv; layer : int; partition : int }

type t = {
  alpha_sum : float;  (** A = sum of gate alphas along the path *)
  beta_sum : float;  (** B = sum of gate betas *)
  gate_count : int;
  nominal_delay : float;  (** sum of nominal gate delays, seconds *)
  grad_sum : Ssta_tech.Params.t;
      (** per-RV sum of the nominal delay derivatives over the path's
          gates — the linearized sensitivity of the whole path, used for
          analytic path-to-path covariances *)
  coeffs : (key, float) Hashtbl.t;
      (** intra layers only (layer >= 1): summed delay derivatives *)
}

type workspace
(** Reusable flat accumulation scratch for {!of_path}.  A workspace
    replaces the per-(gate, rv, layer) hashtable find/replace pairs of
    the reference path with epoch-stamped dense-array writes, then
    rebuilds the public hashtable from the touched slots in first-touch
    order — the result (including the hashtable's iteration order, and
    hence every downstream float sum) is bit-identical to running
    without one.  Single-domain scratch: never share across domains. *)

val workspace_create : unit -> workspace
(** Empty workspace; sized lazily on first use and resized when the
    graph or layering changes. *)

val of_path :
  ?grads:Ssta_tech.Params.t array ->
  ?ws:workspace ->
  Ssta_timing.Graph.t ->
  Ssta_circuit.Placement.t ->
  Layers.t ->
  Ssta_timing.Paths.path ->
  t
(** Accumulate coefficients for one path.  Derivatives are evaluated at
    nominal (the paper's zeroth-order approximation, Eq. 11).

    [grads], when given, must hold for every non-input node [id] the
    value [Derivatives.gradient (Graph.electrical_exn g id)
    Params.nominal]; callers analyzing many paths precompute it once per
    graph.  [ws] enables the flat accumulation scratch.  Both options
    leave every output bit unchanged. *)

val intra_variance : t -> Budget.t -> float
(** Eq. (14): [sum coeff^2 * sigma_layer^2] over all intra keys, with
    per-layer sigmas from the budget and {!Ssta_tech.Params.sigma}. *)

val layer_variances : t -> Budget.t -> float array
(** Per-layer decomposition of {!intra_variance}: element [u] (for
    [1 <= u < Budget.layers budget]) is the variance contributed by
    layer [u]'s RVs; element 0 is 0 (the inter part is not in the
    coefficient table).  Summing the array recovers
    [intra_variance t budget] exactly. *)

val coeff : t -> key -> float
(** 0 when the key is absent. *)

val num_layer_rvs : t -> int
(** Number of distinct (rv, layer, partition) triples on the path — the
    paper's Omega in the complexity analysis. *)
