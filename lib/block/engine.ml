module Pdf = Ssta_prob.Pdf
module Elmore = Ssta_tech.Elmore
module Graph = Ssta_timing.Graph
module Sta = Ssta_timing.Sta
module Netlist = Ssta_circuit.Netlist
module Placement = Ssta_circuit.Placement
module Config = Ssta_core.Config

type endpoint = {
  node : int;
  name : string;
  arrival : Arrival.t;
  pdf : Pdf.t;
  mean : float;
  std : float;
  inter_sigma : float;
  intra_sigma : float;
  confidence_point : float;
}

type t = {
  config : Config.t;
  circuit_name : string;
  num_gates : int;
  sta : Sta.t;
  endpoints : endpoint list;
  arrival : Arrival.t;
  pdf : Pdf.t;
  mean : float;
  std : float;
  inter_sigma : float;
  intra_sigma : float;
  confidence_point : float;
  runtime_s : float;
}

let endpoint_of config ~node ~name arrival =
  let mean = Arrival.mean arrival and std = Arrival.std config arrival in
  { node;
    name;
    arrival;
    pdf = Arrival.total_pdf config arrival;
    mean;
    std;
    inter_sigma = Arrival.inter_sigma config arrival;
    intra_sigma = Arrival.intra_sigma config arrival;
    confidence_point = mean +. (config.Config.confidence_sigma *. std) }

let propagate config layers placement graph =
  let n = Graph.num_nodes graph in
  let arrivals = Array.make n (Arrival.zero ()) in
  for id = 0 to n - 1 do
    if not (Graph.is_input graph id) then begin
      let fanins = Graph.fanins graph id in
      let merged =
        Array.fold_left
          (fun acc f ->
            match acc with
            | None -> Some arrivals.(f)
            | Some m -> Some (Arrival.max config m arrivals.(f)))
          None fanins
      in
      let input_arrival =
        match merged with Some m -> m | None -> Arrival.zero ()
      in
      arrivals.(id) <-
        Arrival.sum config input_arrival
          (Arrival.of_gate config layers placement graph id)
    end
  done;
  arrivals

let analyze ?(config = Config.default) ?placement ?sta circuit =
  let started = Unix.gettimeofday () in
  let sta = match sta with Some s -> s | None -> Sta.analyze circuit in
  let graph = sta.Sta.graph in
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  let layers = Config.layers_for config placement in
  let arrivals = propagate config layers placement graph in
  let outputs = circuit.Netlist.outputs in
  let arrival =
    Array.fold_left
      (fun acc o ->
        match acc with
        | None -> Some arrivals.(o)
        | Some m -> Some (Arrival.max config m arrivals.(o)))
      None outputs
    |> function
    | Some m -> m
    | None -> invalid_arg "Engine.analyze: circuit has no outputs"
  in
  let endpoints =
    Array.to_list outputs
    |> List.map (fun o ->
           endpoint_of config ~node:o
             ~name:(Netlist.node_name circuit o)
             arrivals.(o))
  in
  let mean = Arrival.mean arrival and std = Arrival.std config arrival in
  { config;
    circuit_name = circuit.Netlist.name;
    num_gates = Netlist.num_gates circuit;
    sta;
    endpoints;
    arrival;
    pdf = Arrival.total_pdf config arrival;
    mean;
    std;
    inter_sigma = Arrival.inter_sigma config arrival;
    intra_sigma = Arrival.intra_sigma config arrival;
    confidence_point = mean +. (config.Config.confidence_sigma *. std);
    runtime_s = Unix.gettimeofday () -. started }

(* ----- deterministic JSON report -----

   Same contract as Report.json_report: a pure function of the analysis
   results (round-trip floats, no wall-clock), so identical results are
   byte-identical — the block-mode [--jobs] determinism tests diff this
   artifact. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jfloat v = Printf.sprintf "%.17g" v

let json_of_pdf (p : Pdf.t) =
  Printf.sprintf "{\"lo\":%s,\"step\":%s,\"density\":[%s]}" (jfloat p.Pdf.lo)
    (jfloat p.Pdf.step)
    (String.concat "," (Array.to_list (Array.map jfloat p.Pdf.density)))

let json_of_endpoint ep =
  Printf.sprintf
    "{\"node\":%d,\"name\":\"%s\",\"mean_s\":%s,\"std_s\":%s,\"inter_sigma_s\":%s,\"intra_sigma_s\":%s,\"confidence_point_s\":%s,\"q001_s\":%s,\"median_s\":%s,\"q999_s\":%s}"
    ep.node (json_escape ep.name) (jfloat ep.mean) (jfloat ep.std)
    (jfloat ep.inter_sigma) (jfloat ep.intra_sigma)
    (jfloat ep.confidence_point)
    (jfloat (Pdf.quantile ep.pdf 0.001))
    (jfloat (Pdf.quantile ep.pdf 0.5))
    (jfloat (Pdf.quantile ep.pdf 0.999))

let json_report t =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let cfg = t.config in
  add "{\"circuit\":\"%s\"," (json_escape t.circuit_name);
  add "\"engine\":\"block\",";
  add "\"gates\":%d," t.num_gates;
  add
    "\"config\":{\"confidence_sigma\":%s,\"quality_intra\":%d,\"truncation\":%s,\"max_policy\":\"%s\"},"
    (jfloat cfg.Config.confidence_sigma)
    cfg.Config.quality_intra
    (jfloat cfg.Config.truncation)
    (Config.max_policy_name cfg.Config.block_max);
  add "\"critical_delay_s\":%s," (jfloat t.sta.Sta.critical_delay);
  add
    "\"mean_s\":%s,\"std_s\":%s,\"inter_sigma_s\":%s,\"intra_sigma_s\":%s,\"confidence_point_s\":%s,"
    (jfloat t.mean) (jfloat t.std) (jfloat t.inter_sigma)
    (jfloat t.intra_sigma)
    (jfloat t.confidence_point);
  add "\"q001_s\":%s,\"median_s\":%s,\"q999_s\":%s,"
    (jfloat (Pdf.quantile t.pdf 0.001))
    (jfloat (Pdf.quantile t.pdf 0.5))
    (jfloat (Pdf.quantile t.pdf 0.999));
  add "\"endpoints\":[%s],"
    (String.concat "," (List.map json_of_endpoint t.endpoints));
  add "\"circuit_pdf\":%s}" (json_of_pdf t.pdf);
  Buffer.contents buf

let pp_summary fmt t =
  Format.fprintf fmt "circuit %s: %d gates, engine block (%s max)@."
    t.circuit_name t.num_gates
    (Config.max_policy_name t.config.Config.block_max);
  Format.fprintf fmt "deterministic critical delay: %.3f ps@."
    (Elmore.ps t.sta.Sta.critical_delay);
  Format.fprintf fmt
    "circuit arrival: mean %.3f ps, sigma %.3f ps (inter %.3f / intra %.3f)@."
    (Elmore.ps t.mean) (Elmore.ps t.std)
    (Elmore.ps t.inter_sigma)
    (Elmore.ps t.intra_sigma);
  Format.fprintf fmt "%g-sigma point: %.3f ps@."
    t.config.Config.confidence_sigma
    (Elmore.ps t.confidence_point);
  Format.fprintf fmt "endpoints: %d@." (List.length t.endpoints)

let pp_endpoints fmt t =
  Format.fprintf fmt "%-16s %10s %10s %10s@." "endpoint" "mean(ps)"
    "sigma(ps)" "conf(ps)";
  List.iter
    (fun ep ->
      Format.fprintf fmt "%-16s %10.3f %10.3f %10.3f@." ep.name
        (Elmore.ps ep.mean) (Elmore.ps ep.std)
        (Elmore.ps ep.confidence_point))
    t.endpoints
