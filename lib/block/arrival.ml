module Pdf = Ssta_prob.Pdf
module Combine = Ssta_prob.Combine
module Dist = Ssta_prob.Dist
module Params = Ssta_tech.Params
module Derivatives = Ssta_tech.Derivatives
module Graph = Ssta_timing.Graph
module Layers = Ssta_correlation.Layers
module Budget = Ssta_correlation.Budget
module Path_coeffs = Ssta_correlation.Path_coeffs
module Placement = Ssta_circuit.Placement
module Config = Ssta_core.Config
module Block_based = Ssta_core.Block_based

type t = {
  canon : Block_based.canonical;
  resid : Pdf.t option;
}

let zero () =
  { canon = { Block_based.mean = 0.0; terms = Hashtbl.create 4; indep = 0.0 };
    resid = None }

(* A residual is worth carrying on a grid only when its width is visible
   at the scale of the arrival mean; grid PDFs whose support is many
   orders of magnitude below the mean would lose all cell resolution to
   float absorption once shifted. *)
let significant_sigma ~scale sigma =
  sigma > 1e-6 *. Float.max (Float.abs scale) 1e-15

let resid_gaussian (config : Config.t) ~scale var =
  let sigma = sqrt (Float.max 0.0 var) in
  if significant_sigma ~scale sigma then
    Some
      (Dist.truncated_gaussian ~n:config.Config.quality_intra
         ~bound:config.Config.truncation ~mu:0.0 ~sigma ())
  else None

(* Re-establish the invariant canon.indep = Var(resid grid) so that the
   canonical-form covariance/Clark machinery (Block_based) sees exactly
   the variance the grid carries. *)
let with_resid canon resid =
  let indep = match resid with None -> 0.0 | Some p -> Pdf.variance p in
  ({ canon with Block_based.indep }, resid)

let mean t = t.canon.Block_based.mean
let variance config t = Block_based.variance config t.canon
let std config t = Block_based.std config t.canon

let shared_variance config t =
  Block_based.variance config { t.canon with Block_based.indep = 0.0 }

let inter_variance (config : Config.t) t =
  Hashtbl.fold
    (fun (key : Path_coeffs.key) a acc ->
      if key.Path_coeffs.layer = 0 then begin
        let s =
          Budget.sigma_of_layer config.Config.budget
            ~total_sigma:(Params.sigma key.Path_coeffs.rv)
            0
        in
        acc +. (a *. a *. s *. s)
      end
      else acc)
    t.canon.Block_based.terms 0.0

let inter_sigma config t = sqrt (Float.max 0.0 (inter_variance config t))

let intra_sigma config t =
  sqrt (Float.max 0.0 (variance config t -. inter_variance config t))

let confidence_point (config : Config.t) t =
  mean t +. (config.Config.confidence_sigma *. std config t)

let total_pdf (config : Config.t) t =
  let n = config.Config.quality_intra in
  let mu = mean t in
  let shared_sigma = sqrt (Float.max 0.0 (shared_variance config t)) in
  let shared =
    if significant_sigma ~scale:mu shared_sigma then
      Some
        (Dist.truncated_gaussian ~n ~bound:config.Config.truncation ~mu:0.0
           ~sigma:shared_sigma ())
    else None
  in
  match (t.resid, shared) with
  | None, None -> Pdf.point_mass ~n mu
  | Some r, None -> Pdf.shift r mu
  | None, Some s -> Pdf.shift s mu
  | Some r, Some s -> Pdf.shift (Combine.sum ~n r s) mu

let quantile config t q = Pdf.quantile (total_pdf config t) q

let of_gate (config : Config.t) layers placement graph id =
  let e = Graph.electrical_exn graph id in
  let grad = Derivatives.gradient e Params.nominal in
  let x, y = Placement.coord placement id in
  let num_layers = Layers.num_layers layers in
  let shared_layers =
    if config.Config.random_layer then num_layers - 1 else num_layers
  in
  let terms = Hashtbl.create 16 in
  let random_var = ref 0.0 in
  List.iter
    (fun rv ->
      let d = Params.get grad rv in
      for layer = 0 to shared_layers - 1 do
        let partition =
          Layers.partition_of_gate layers ~level:layer ~gate_id:id ~x ~y
        in
        Hashtbl.replace terms { Path_coeffs.rv; layer; partition } d
      done;
      if config.Config.random_layer then begin
        let s =
          Budget.sigma_of_layer config.Config.budget
            ~total_sigma:(Params.sigma rv) (num_layers - 1)
        in
        random_var := !random_var +. (d *. d *. s *. s)
      end)
    Params.all_rvs;
  let gate_mean = graph.Graph.delay.(id) in
  let resid = resid_gaussian config ~scale:gate_mean !random_var in
  let canon, resid =
    with_resid { Block_based.mean = gate_mean; terms; indep = 0.0 } resid
  in
  { canon; resid }

let sum (config : Config.t) a b =
  let n = config.Config.quality_intra in
  let resid =
    match (a.resid, b.resid) with
    | None, r | r, None -> r
    | Some ra, Some rb -> Some (Combine.sum ~n ra rb)
  in
  let canon, resid = with_resid (Block_based.add a.canon b.canon) resid in
  { canon; resid }

let clark_max config a b =
  let canon = Block_based.clark_max config a.canon b.canon in
  (* The far-apart short circuit returns an operand's canonical form
     unchanged; keep its grid residual (shape included) too. *)
  if canon == a.canon then a
  else if canon == b.canon then b
  else begin
    let resid =
      resid_gaussian config ~scale:canon.Block_based.mean
        canon.Block_based.indep
    in
    let canon, resid = with_resid canon resid in
    { canon; resid }
  end

(* P(A >= B) for independent grid operands: sum_i m_A(i) * F_B(x_i). *)
let tightness pa pb =
  let acc = ref 0.0 in
  for i = 0 to Pdf.size pa - 1 do
    acc := !acc +. (Pdf.mass_at pa i *. Pdf.cdf pb (Pdf.x_at pa i))
  done;
  Float.min 1.0 (Float.max 0.0 !acc)

let blend_terms ~wa ~wb a b =
  let terms = Hashtbl.create (Hashtbl.length a + Hashtbl.length b) in
  Hashtbl.iter (fun key v -> Hashtbl.replace terms key (wa *. v)) a;
  Hashtbl.iter
    (fun key v ->
      let prev = try Hashtbl.find terms key with Not_found -> 0.0 in
      Hashtbl.replace terms key (prev +. (wb *. v)))
    b;
  terms

let grid_max (config : Config.t) a b =
  let n = config.Config.quality_intra in
  let ta = total_pdf config a and tb = total_pdf config b in
  let m = Combine.binop ~n Float.max ta tb in
  let mx = Pdf.moments m in
  let max_mean = mx.Pdf.m_mean and max_var = mx.Pdf.m_var in
  let phi = tightness ta tb in
  let terms =
    blend_terms ~wa:phi ~wb:(1.0 -. phi) a.canon.Block_based.terms
      b.canon.Block_based.terms
  in
  let blended = { Block_based.mean = max_mean; terms; indep = 0.0 } in
  let blended_shared = Block_based.variance config blended in
  let resid_var = Float.max 0.0 (max_var -. blended_shared) in
  let resid =
    (* Keep the exact max's shape: recenter the grid and deflate it so
       shared + residual variance reproduces the grid moments. *)
    if significant_sigma ~scale:max_mean (sqrt resid_var) && max_var > 0.0
    then
      Some (Pdf.scale (Pdf.shift m (-.max_mean)) (sqrt (resid_var /. max_var)))
    else None
  in
  let canon, resid = with_resid blended resid in
  { canon; resid }

let max (config : Config.t) a b =
  match config.Config.block_max with
  | Config.Clark_max -> clark_max config a b
  | Config.Grid_max -> grid_max config a b
