(** Arrival-time distributions for the block-based engine, and the
    statistical [sum]/[max] operator algebra over them.

    The path-based flow of the paper analyzes each near-critical path in
    isolation; the block engine instead propagates one arrival-time
    object per node through the netlist DAG.  An arrival is a hybrid of
    the two representations the codebase already has:

    {v A  =  mean  +  sum_k a_k * xi_k  +  R v}

    - the [sum_k a_k xi_k] part is the canonical first-order form over
      the shared correlation-layer RVs ({!Ssta_core.Block_based}, with
      layer 0 the inter-die layer), which preserves inter/intra
      correlation (Eq. 14's variance split) through merges: two arrivals
      that share upstream gates share terms, and their covariance is
      recovered exactly from the shared keys;
    - [R] is an independent residual carried as a discretized PDF on a
      grid ({!Ssta_prob.Pdf}), seeded by each gate's random-layer
      contribution and combined by grid convolution — the same numeric
      machinery as the paper's intra-PDF.

    The invariant [canon.indep = Var(resid)] keeps the canonical-form
    covariance machinery and the grid in agreement. *)

type t = {
  canon : Ssta_core.Block_based.canonical;
      (** mean + shared-layer sensitivities + residual variance *)
  resid : Ssta_prob.Pdf.t option;
      (** zero-mean grid residual ([None] when its width is negligible
          at the scale of the mean); its variance is mirrored in
          [canon.indep] *)
}

val zero : unit -> t
(** The arrival of a primary input: deterministic zero. *)

val of_gate :
  Ssta_core.Config.t ->
  Ssta_correlation.Layers.t ->
  Ssta_circuit.Placement.t ->
  Ssta_timing.Graph.t ->
  int ->
  t
(** [of_gate config layers placement graph id] is the delay contribution
    of gate [id]: nominal delay as the mean, first-order sensitivities
    to every shared-layer RV at the gate's spatial partitions, and the
    per-gate random-layer variance as a truncated-Gaussian grid
    residual.  Raises [Invalid_argument] on a primary input. *)

val sum : Ssta_core.Config.t -> t -> t -> t
(** Statistical sum: exact on the canonical part (means and shared
    sensitivities add), grid convolution ({!Ssta_prob.Combine.sum} at
    [quality_intra] cells) on the residuals.  Exact for independent
    residuals, which holds by construction along any path. *)

val max : Ssta_core.Config.t -> t -> t -> t
(** Statistical max at a merge point, per [config.block_max]:

    - [Clark_max] — Clark's (1961) moment-matched max of correlated
      Gaussians on the canonical forms, with the covariance taken from
      the shared layer terms; the residual is re-seeded as a Gaussian of
      the matched leftover variance.  Sound under correlation,
      Gaussian-approximate in shape.
    - [Grid_max] — the grid-exact independent max: both operands are
      concretized to total PDFs and combined with
      P(max <= x) = F(x) G(x); shared sensitivities are blended by the
      tightness probability and the recentered max grid (deflated so
      shared + residual variance matches the exact grid moments) becomes
      the residual.  Exact in shape for independent operands but
      {e unsound} when they share terms — it ignores their correlation,
      which can both over- and under-estimate the max (see the
      anti-correlated counterexample in HANDBOOK section 9). *)

val mean : t -> float

val variance : Ssta_core.Config.t -> t -> float
(** Total variance: shared layer terms plus the grid residual. *)

val std : Ssta_core.Config.t -> t -> float

val inter_sigma : Ssta_core.Config.t -> t -> float
(** Standard deviation explained by the inter-die (layer 0) terms alone
    — the block engine's version of Eq. 14's sigma_inter. *)

val intra_sigma : Ssta_core.Config.t -> t -> float
(** sqrt(total variance - inter variance): everything below the
    inter-die layer, residual included. *)

val confidence_point : Ssta_core.Config.t -> t -> float
(** [mean + confidence_sigma * std] — comparable to the path engine's
    ranking point. *)

val total_pdf : Ssta_core.Config.t -> t -> Ssta_prob.Pdf.t
(** Concretize to one delay PDF: the grid residual convolved with a
    truncated Gaussian of the shared variance, shifted by the mean.
    Degenerate arrivals concretize to a point mass. *)

val quantile : Ssta_core.Config.t -> t -> float -> float
(** Quantile of {!total_pdf} (rebuilt per call; cache the PDF when
    reading several quantiles). *)
