(** Block-based timing engine: one topological pass over the netlist
    DAG, propagating {!Arrival} distributions with statistical sum at
    gates and statistical max at merge points and endpoints.

    Where the path engine's cost is O(paths * Q^3) after enumeration,
    this engine visits every gate exactly once at O(Q^2) per visit — the
    crossover is measured per benchmark by the [blockcross] bench
    artifact.  The price is approximation at reconvergent fan-out
    (Clark's max, or the independence assumption of the grid max); the
    [check-block-vs-path] checker cross-validates the result against the
    path-based answer and Monte Carlo on every ISCAS85 circuit. *)

(** Per primary-output arrival statistics. *)
type endpoint = {
  node : int;  (** node id of the primary output *)
  name : string;  (** its netlist name *)
  arrival : Arrival.t;  (** the full arrival object *)
  pdf : Ssta_prob.Pdf.t;  (** concretized delay PDF *)
  mean : float;  (** seconds *)
  std : float;  (** seconds *)
  inter_sigma : float;  (** inter-die share of sigma (Eq. 14 split) *)
  intra_sigma : float;  (** everything below the inter-die layer *)
  confidence_point : float;  (** mean + confidence_sigma * std *)
}

(** One block-based analysis of a circuit. *)
type t = {
  config : Ssta_core.Config.t;  (** configuration used *)
  circuit_name : string;
  num_gates : int;
  sta : Ssta_timing.Sta.t;  (** deterministic STA of the same graph *)
  endpoints : endpoint list;  (** one per primary output, in output order *)
  arrival : Arrival.t;  (** circuit arrival: max over all outputs *)
  pdf : Ssta_prob.Pdf.t;  (** concretized circuit-delay PDF *)
  mean : float;  (** seconds *)
  std : float;  (** seconds *)
  inter_sigma : float;  (** inter-die share of sigma *)
  intra_sigma : float;  (** remaining share *)
  confidence_point : float;  (** mean + confidence_sigma * std *)
  runtime_s : float;  (** wall-clock of the sweep (not in the JSON) *)
}

val analyze :
  ?config:Ssta_core.Config.t ->
  ?placement:Ssta_circuit.Placement.t ->
  ?sta:Ssta_timing.Sta.t ->
  Ssta_circuit.Netlist.t ->
  t
(** [analyze circuit] runs deterministic STA plus one statistical
    topological sweep (the circuit's node order is topological by
    construction).  The default placement is
    {!Ssta_circuit.Placement.place}; the max policy and grid quality
    come from [config].  [sta] substitutes a pre-built deterministic
    analysis (e.g. on a drive-aware graph,
    {!Ssta_timing.Graph.with_drives}) — its graph must describe
    [circuit].  Raises [Invalid_argument] if the circuit has no
    outputs. *)

val json_report : t -> string
(** Machine-readable report: engine name (["block"]), max policy,
    deterministic critical delay, circuit and per-endpoint statistics
    (mean/sigma/inter/intra/confidence point and 0.1%/50%/99.9%
    quantiles) and the circuit-delay PDF.  Deterministic by
    construction — round-trip floats, no wall-clock — so identical
    results are byte-identical; the block-mode [--jobs] determinism
    tests diff this artifact. *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable run summary (engine, critical delay, circuit arrival
    statistics, endpoint count). *)

val pp_endpoints : Format.formatter -> t -> unit
(** Per-endpoint table (name, mean, sigma, confidence point). *)
