module Pdf = Ssta_prob.Pdf
module Combine = Ssta_prob.Combine
module Params = Ssta_tech.Params
module Elmore = Ssta_tech.Elmore
module Budget = Ssta_correlation.Budget
module Path_coeffs = Ssta_correlation.Path_coeffs

type table = {
  values : float array array;
  t_min : float;
  t_max : float;
}

type tables = {
  quality : int;
  u_pdf : Pdf.t;  (* K * t_ox * L_eff *)
  vdd : Pdf.t;
  vtn : Pdf.t;
  vtp : Pdf.t;
  fn : table;  (* F(vdd_i, vtn_j), low-Vt class *)
  fp : table;  (* F(vdd_i, vtp_k), low-Vt class *)
  fn_high : table;  (* same with the high-Vt threshold shift *)
  fp_high : table;
  vt_shift : float;
  (* Cell masses of the three voltage grids, hoisted out of the O(Q^3)
     kernel loop (mass_at is a multiply per call otherwise). *)
  mass_vdd : float array;
  mass_vtn : float array;
  mass_vtp : float array;
}

let inter_sigma (config : Config.t) rv =
  Budget.sigma_of_layer config.Config.budget ~total_sigma:(Params.sigma rv) 0

let rv_pdf config rv =
  let sigma = inter_sigma config rv in
  let mu = Params.get Params.nominal rv in
  if sigma > 0.0 then
    Ssta_prob.Shape.pdf config.Config.inter_shape
      ~n:config.Config.quality_inter ~bound:config.Config.truncation ~mu
      ~sigma
  else Pdf.point_mass mu

let tables ?(vt_shift = Ssta_tech.Vt_class.default_shift) config =
  let quality = config.Config.quality_inter in
  let tox = rv_pdf config Params.Tox in
  let leff = rv_pdf config Params.Leff in
  let vdd = rv_pdf config Params.Vdd in
  let vtn = rv_pdf config Params.Vtn in
  let vtp = rv_pdf config Params.Vtp in
  let k = Elmore.elmore_constant /. Elmore.eps_ox in
  let u_pdf =
    Combine.binop ~n:quality (fun t l -> k *. t *. l) tox leff
  in
  let table ~shift vt_pdf =
    let values =
      Array.init (Pdf.size vdd) (fun i ->
          let v = Pdf.x_at vdd i in
          Array.init (Pdf.size vt_pdf) (fun j ->
              Elmore.voltage_factor ~vdd:v ~vt:(Pdf.x_at vt_pdf j +. shift)))
    in
    let t_min, t_max =
      Array.fold_left
        (fun (lo, hi) row ->
          Array.fold_left
            (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
            (lo, hi) row)
        (infinity, neg_infinity) values
    in
    { values; t_min; t_max }
  in
  let masses p = Array.init (Pdf.size p) (fun i -> Pdf.mass_at p i) in
  { quality;
    u_pdf;
    vdd;
    vtn;
    vtp;
    fn = table ~shift:0.0 vtn;
    fp = table ~shift:0.0 vtp;
    fn_high = table ~shift:vt_shift vtn;
    fp_high = table ~shift:vt_shift vtp;
    vt_shift;
    mass_vdd = masses vdd;
    mass_vtn = masses vtn;
    mass_vtp = masses vtp }

let vt_shift t = t.vt_shift

(* The restructured kernel.  For each V_dd slice the j/k column
   combinations [alpha_low*fn + alpha_high*fn_high] and
   [beta_low*fp + beta_high*fp_high] are hoisted into the scratch arrays
   [acol]/[bcol] (O(Q) multiply-adds per slice instead of O(Q^2) in the
   inner loop), the grid masses come from the precomputed arrays in
   [tables], and the deposit arithmetic is inlined on a raw cell array —
   the [unsafe_deposit] accumulator updated two boxed float fields per
   deposit, which was the kernel's only remaining allocation source.
   The cell grid itself can come from a caller arena.  Bit-identical to
   the historical [accumulator]/[unsafe_deposit]/[to_pdf] formulation. *)
let compute ?arena t ~acol ~bcol ~alpha_low ~alpha_high ~beta_low ~beta_high =
  let lo =
    (alpha_low *. t.fn.t_min) +. (alpha_high *. t.fn_high.t_min)
    +. (beta_low *. t.fp.t_min) +. (beta_high *. t.fp_high.t_min)
  in
  let hi =
    (alpha_low *. t.fn.t_max) +. (alpha_high *. t.fn_high.t_max)
    +. (beta_low *. t.fp.t_max) +. (beta_high *. t.fp_high.t_max)
  in
  let hi = if hi > lo then hi else lo +. (1e-12 *. (1.0 +. Float.abs lo)) in
  let n = t.quality in
  if n <= 0 then invalid_arg "Combine.accumulator: n must be positive";
  if not (hi > lo) then invalid_arg "Combine.accumulator: hi must exceed lo";
  let step = (hi -. lo) /. float_of_int n in
  let cells =
    match arena with
    | Some a -> Ssta_prob.Arena.borrow a n
    | None -> Array.make n 0.0
  in
  (* dep.(0) holds the deposited mass unboxed across the triple loop. *)
  let dep = [| 0.0 |] in
  let nv = Pdf.size t.vdd and nn = Pdf.size t.vtn and np = Pdf.size t.vtp in
  let mass_vtn = t.mass_vtn and mass_vtp = t.mass_vtp in
  for i = 0 to nv - 1 do
    let mv = Array.unsafe_get t.mass_vdd i in
    if mv > 0.0 then begin
      let fn_i = t.fn.values.(i) and fnh_i = t.fn_high.values.(i) in
      let fp_i = t.fp.values.(i) and fph_i = t.fp_high.values.(i) in
      for j = 0 to nn - 1 do
        Array.unsafe_set acol j
          ((alpha_low *. Array.unsafe_get fn_i j)
          +. (alpha_high *. Array.unsafe_get fnh_i j))
      done;
      for k = 0 to np - 1 do
        Array.unsafe_set bcol k
          ((beta_low *. Array.unsafe_get fp_i k)
          +. (beta_high *. Array.unsafe_get fph_i k))
      done;
      for j = 0 to nn - 1 do
        let mvn = mv *. Array.unsafe_get mass_vtn j in
        if mvn > 0.0 then begin
          let base = Array.unsafe_get acol j in
          for k = 0 to np - 1 do
            let m = mvn *. Array.unsafe_get mass_vtp k in
            if m > 0.0 then begin
              let x = base +. Array.unsafe_get bcol k in
              let u = ((x -. lo) /. step) -. 0.5 in
              let iu = int_of_float (Float.floor u) in
              let frac = u -. float_of_int iu in
              let m0 = m *. (1.0 -. frac) in
              if m0 > 0.0 then begin
                let c = if iu < 0 then 0 else if iu >= n then n - 1 else iu in
                Array.unsafe_set cells c (Array.unsafe_get cells c +. m0)
              end;
              let m1 = m *. frac in
              if m1 > 0.0 then begin
                let i1 = iu + 1 in
                let c = if i1 < 0 then 0 else if i1 >= n then n - 1 else i1 in
                Array.unsafe_set cells c (Array.unsafe_get cells c +. m1)
              end;
              Array.unsafe_set dep 0 (Array.unsafe_get dep 0 +. m)
            end
          done
        end
      done
    end
  done;
  let deposited = Array.unsafe_get dep 0 in
  if not (deposited > 0.0) then begin
    (match arena with Some a -> Ssta_prob.Arena.release a cells | None -> ());
    invalid_arg "Combine.to_pdf: no mass deposited"
  end;
  let density = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set density i (Array.unsafe_get cells i /. step)
  done;
  (match arena with Some a -> Ssta_prob.Arena.release a cells | None -> ());
  let voltage_pdf = Pdf.make_owned ~lo ~step density in
  Combine.binop ~n:t.quality ?arena ( *. ) t.u_pdf voltage_pdf

(* {2 Scale-covariant kernel cache}

   [pdf_dual] is homogeneous of degree 1 in its four coefficients: on our
   grid, computing at [c*alpha, c*beta] is the affine rescale [x -> c*x]
   of the result at [alpha, beta] (same cell fractions, lo/hi/step scaled
   by [c]).  The cache exploits this by canonicalizing every call to the
   normalized direction [coeffs / sum], computing (or fetching) the
   kernel PDF there, and rescaling by the sum with the exact
   [Pdf.scale].

   Determinism: the returned PDF is a pure function of the call's
   coefficients — the canonical direction is quantized to 40 mantissa
   bits (a deterministic function of the inputs), the kernel at the
   quantized direction is deterministically computed by [compute], and a
   cache hit returns a structurally identical PDF to a rebuild.  Whether
   a given call hits or misses (which depends on scheduling when each
   domain owns a shard) therefore cannot change any numeric output, so
   parallel runs stay byte-identical to sequential ones.  For the same
   reason the only counters allowed into reports are the
   scheduling-independent ones: lookups (one per call) and the number of
   distinct directions (a set union over shards). *)

(* Bitwise image of the quantized direction (alpha_low, alpha_high,
   beta_low, beta_high) / sum — an exact, hashable cache key. *)
type key = int64 * int64 * int64 * int64

(* Round to 40 mantissa bits so directions differing only by float noise
   from coefficient summation in different orders collapse to one key.
   The relative perturbation is < 2^-40 ~ 9e-13, far inside the 1e-9
   acceptance tolerance on cached-vs-uncached statistics. *)
let quantize40 x =
  if x = 0.0 then 0.0
  else
    let m, e = Float.frexp x in
    Float.ldexp (Float.round (Float.ldexp m 40)) (e - 40)

type cache = {
  c_tables : tables;  (* kernels are only valid for the tables they were built from *)
  kernels : (key, Pdf.t) Hashtbl.t;
  seen : (key, unit) Hashtbl.t;  (* never cleared: distinct-direction set *)
  mutable lookups : int;
  mutable builds : int;
  max_entries : int;
  mutable acol : float array;  (* scratch reused across calls *)
  mutable bcol : float array;
}

let default_max_entries = 512

let cache_create ?(max_entries = default_max_entries) t =
  { c_tables = t;
    kernels = Hashtbl.create 64;
    seen = Hashtbl.create 64;
    lookups = 0;
    builds = 0;
    max_entries = Int.max 1 max_entries;
    acol = [||];
    bcol = [||] }

let scratch c ~nn ~np =
  if Array.length c.acol < nn then c.acol <- Array.make nn 0.0;
  if Array.length c.bcol < np then c.bcol <- Array.make np 0.0;
  (c.acol, c.bcol)

type cache_stats = {
  cs_lookups : int;  (* cached calls; deterministic *)
  cs_distinct : int;  (* distinct normalized directions; deterministic *)
  cs_hits : int;  (* lookups - distinct: shared-cache-equivalent hits *)
  cs_builds : int;  (* kernels actually built (scheduling-dependent) *)
  cs_entries : int;  (* currently resident kernels *)
  cs_shards : int;
}

let cache_stats c =
  let distinct = Hashtbl.length c.seen in
  { cs_lookups = c.lookups;
    cs_distinct = distinct;
    cs_hits = c.lookups - distinct;
    cs_builds = c.builds;
    cs_entries = Hashtbl.length c.kernels;
    cs_shards = 1 }

let validate_dual ~alpha_low ~alpha_high ~beta_low ~beta_high =
  if alpha_low < 0.0 || alpha_high < 0.0 || beta_low < 0.0 || beta_high < 0.0
  then invalid_arg "Inter.pdf_dual: coefficient sums must be non-negative";
  if alpha_low +. alpha_high <= 0.0 || beta_low +. beta_high <= 0.0 then
    invalid_arg "Inter.pdf_dual: need positive NMOS and PMOS coefficients"

(* The quantized direction key of a call — the identity under which the
   cache memoizes kernels.  Exposed so the scheduler's cost model can
   predict hit/miss deterministically (by simulating a shared seen-set
   over paths in index order) without consulting any shard's
   scheduling-dependent state. *)
let direction_key ~alpha_low ~alpha_high ~beta_low ~beta_high =
  let s = alpha_low +. alpha_high +. beta_low +. beta_high in
  ( Int64.bits_of_float (quantize40 (alpha_low /. s)),
    Int64.bits_of_float (quantize40 (alpha_high /. s)),
    Int64.bits_of_float (quantize40 (beta_low /. s)),
    Int64.bits_of_float (quantize40 (beta_high /. s)) )

(* NOTE: kernel builds (cache misses) deliberately do NOT use the
   caller's arena: which calls miss depends on shard layout, so arena
   borrow accounting would become scheduling-dependent and the derived
   health counters would break --jobs byte-determinism.  Builds are rare
   (one per distinct direction); their allocations are irrelevant. *)
let pdf_dual_cached c ~alpha_low ~alpha_high ~beta_low ~beta_high =
  let t = c.c_tables in
  let s = alpha_low +. alpha_high +. beta_low +. beta_high in
  let qa_low = quantize40 (alpha_low /. s)
  and qa_high = quantize40 (alpha_high /. s)
  and qb_low = quantize40 (beta_low /. s)
  and qb_high = quantize40 (beta_high /. s) in
  let key =
    ( Int64.bits_of_float qa_low,
      Int64.bits_of_float qa_high,
      Int64.bits_of_float qb_low,
      Int64.bits_of_float qb_high )
  in
  c.lookups <- c.lookups + 1;
  if not (Hashtbl.mem c.seen key) then Hashtbl.add c.seen key ();
  let kernel =
    match Hashtbl.find_opt c.kernels key with
    | Some k -> k
    | None ->
        c.builds <- c.builds + 1;
        if Hashtbl.length c.kernels >= c.max_entries then
          Hashtbl.reset c.kernels;
        let nn = Pdf.size t.vtn and np = Pdf.size t.vtp in
        let acol, bcol = scratch c ~nn ~np in
        let k =
          compute t ~acol ~bcol ~alpha_low:qa_low ~alpha_high:qa_high
            ~beta_low:qb_low ~beta_high:qb_high
        in
        Hashtbl.add c.kernels key k;
        k
  in
  Pdf.scale kernel s

let pdf_dual ?cache ?arena t ~alpha_low ~alpha_high ~beta_low ~beta_high =
  validate_dual ~alpha_low ~alpha_high ~beta_low ~beta_high;
  match cache with
  | Some c ->
      if not (c.c_tables == t) then
        invalid_arg "Inter.pdf_dual: cache was built for different tables";
      ignore arena;
      pdf_dual_cached c ~alpha_low ~alpha_high ~beta_low ~beta_high
  | None -> (
      let nn = Pdf.size t.vtn and np = Pdf.size t.vtp in
      match arena with
      | None ->
          let acol = Array.make nn 0.0 and bcol = Array.make np 0.0 in
          compute t ~acol ~bcol ~alpha_low ~alpha_high ~beta_low ~beta_high
      | Some a ->
          let acol = Ssta_prob.Arena.borrow a nn in
          let bcol = Ssta_prob.Arena.borrow a np in
          Fun.protect
            ~finally:(fun () ->
              Ssta_prob.Arena.release a bcol;
              Ssta_prob.Arena.release a acol)
            (fun () ->
              compute ~arena:a t ~acol ~bcol ~alpha_low ~alpha_high ~beta_low
                ~beta_high))

let pdf ?cache ?arena t ~alpha_sum ~beta_sum =
  if alpha_sum <= 0.0 || beta_sum <= 0.0 then
    invalid_arg "Inter.pdf: coefficient sums must be positive";
  pdf_dual ?cache ?arena t ~alpha_low:alpha_sum ~alpha_high:0.0
    ~beta_low:beta_sum ~beta_high:0.0

let of_coeffs ?cache ?arena t (c : Path_coeffs.t) =
  pdf ?cache ?arena t ~alpha_sum:c.Path_coeffs.alpha_sum
    ~beta_sum:c.Path_coeffs.beta_sum

(* {2 Per-domain cache shards}

   The methodology fan-out analyzes paths from several domains.  Sharing
   one mutable cache would need a lock around the whole kernel; instead
   each domain lazily gets its own shard, keyed by its domain id.  The
   purity argument above makes the shard layout invisible in results. *)

type caches = {
  cc_tables : tables;
  mutable shards : (int * cache) list;
  lock : Mutex.t;
  cc_max_entries : int;
}

let caches_create ?(max_entries = default_max_entries) t =
  { cc_tables = t; shards = []; lock = Mutex.create (); cc_max_entries = max_entries }

let caches_get cc =
  let id = (Domain.self () :> int) in
  Mutex.protect cc.lock (fun () ->
      match List.assoc_opt id cc.shards with
      | Some c -> c
      | None ->
          let c = cache_create ~max_entries:cc.cc_max_entries cc.cc_tables in
          cc.shards <- (id, c) :: cc.shards;
          c)

let caches_stats cc =
  Mutex.protect cc.lock (fun () ->
      let union = Hashtbl.create 64 in
      let lookups = ref 0 and builds = ref 0 and entries = ref 0 in
      List.iter
        (fun (_, c) ->
          lookups := !lookups + c.lookups;
          builds := !builds + c.builds;
          entries := !entries + Hashtbl.length c.kernels;
          Hashtbl.iter (fun k () -> Hashtbl.replace union k ()) c.seen)
        cc.shards;
      let distinct = Hashtbl.length union in
      { cs_lookups = !lookups;
        cs_distinct = distinct;
        cs_hits = !lookups - distinct;
        cs_builds = !builds;
        cs_entries = !entries;
        cs_shards = List.length cc.shards })

let mean_is_shifted p ~nominal = Pdf.mean p -. nominal
