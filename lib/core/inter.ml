module Pdf = Ssta_prob.Pdf
module Combine = Ssta_prob.Combine
module Params = Ssta_tech.Params
module Elmore = Ssta_tech.Elmore
module Budget = Ssta_correlation.Budget
module Path_coeffs = Ssta_correlation.Path_coeffs

type table = {
  values : float array array;
  t_min : float;
  t_max : float;
}

type tables = {
  quality : int;
  u_pdf : Pdf.t;  (* K * t_ox * L_eff *)
  vdd : Pdf.t;
  vtn : Pdf.t;
  vtp : Pdf.t;
  fn : table;  (* F(vdd_i, vtn_j), low-Vt class *)
  fp : table;  (* F(vdd_i, vtp_k), low-Vt class *)
  fn_high : table;  (* same with the high-Vt threshold shift *)
  fp_high : table;
  vt_shift : float;
}

let inter_sigma (config : Config.t) rv =
  Budget.sigma_of_layer config.Config.budget ~total_sigma:(Params.sigma rv) 0

let rv_pdf config rv =
  let sigma = inter_sigma config rv in
  let mu = Params.get Params.nominal rv in
  if sigma > 0.0 then
    Ssta_prob.Shape.pdf config.Config.inter_shape
      ~n:config.Config.quality_inter ~bound:config.Config.truncation ~mu
      ~sigma
  else Pdf.point_mass mu

let tables ?(vt_shift = Ssta_tech.Vt_class.default_shift) config =
  let quality = config.Config.quality_inter in
  let tox = rv_pdf config Params.Tox in
  let leff = rv_pdf config Params.Leff in
  let vdd = rv_pdf config Params.Vdd in
  let vtn = rv_pdf config Params.Vtn in
  let vtp = rv_pdf config Params.Vtp in
  let k = Elmore.elmore_constant /. Elmore.eps_ox in
  let u_pdf =
    Combine.binop ~n:quality (fun t l -> k *. t *. l) tox leff
  in
  let table ~shift vt_pdf =
    let values =
      Array.init (Pdf.size vdd) (fun i ->
          let v = Pdf.x_at vdd i in
          Array.init (Pdf.size vt_pdf) (fun j ->
              Elmore.voltage_factor ~vdd:v ~vt:(Pdf.x_at vt_pdf j +. shift)))
    in
    let t_min, t_max =
      Array.fold_left
        (fun (lo, hi) row ->
          Array.fold_left
            (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
            (lo, hi) row)
        (infinity, neg_infinity) values
    in
    { values; t_min; t_max }
  in
  { quality;
    u_pdf;
    vdd;
    vtn;
    vtp;
    fn = table ~shift:0.0 vtn;
    fp = table ~shift:0.0 vtp;
    fn_high = table ~shift:vt_shift vtn;
    fp_high = table ~shift:vt_shift vtp;
    vt_shift }

let vt_shift t = t.vt_shift

let pdf_dual t ~alpha_low ~alpha_high ~beta_low ~beta_high =
  if alpha_low < 0.0 || alpha_high < 0.0 || beta_low < 0.0 || beta_high < 0.0
  then invalid_arg "Inter.pdf_dual: coefficient sums must be non-negative";
  if alpha_low +. alpha_high <= 0.0 || beta_low +. beta_high <= 0.0 then
    invalid_arg "Inter.pdf_dual: need positive NMOS and PMOS coefficients";
  let lo =
    (alpha_low *. t.fn.t_min) +. (alpha_high *. t.fn_high.t_min)
    +. (beta_low *. t.fp.t_min) +. (beta_high *. t.fp_high.t_min)
  in
  let hi =
    (alpha_low *. t.fn.t_max) +. (alpha_high *. t.fn_high.t_max)
    +. (beta_low *. t.fp.t_max) +. (beta_high *. t.fp_high.t_max)
  in
  let hi = if hi > lo then hi else lo +. (1e-12 *. (1.0 +. Float.abs lo)) in
  let acc = Combine.accumulator ~lo ~hi ~n:t.quality in
  let nv = Pdf.size t.vdd and nn = Pdf.size t.vtn and np = Pdf.size t.vtp in
  for i = 0 to nv - 1 do
    let mv = Pdf.mass_at t.vdd i in
    if mv > 0.0 then begin
      let fn_i = t.fn.values.(i) and fnh_i = t.fn_high.values.(i) in
      let fp_i = t.fp.values.(i) and fph_i = t.fp_high.values.(i) in
      for j = 0 to nn - 1 do
        let mvn = mv *. Pdf.mass_at t.vtn j in
        if mvn > 0.0 then begin
          let base = (alpha_low *. fn_i.(j)) +. (alpha_high *. fnh_i.(j)) in
          for k = 0 to np - 1 do
            let m = mvn *. Pdf.mass_at t.vtp k in
            if m > 0.0 then
              Combine.deposit acc
                ~x:(base +. (beta_low *. fp_i.(k)) +. (beta_high *. fph_i.(k)))
                ~mass:m
          done
        end
      done
    end
  done;
  let voltage_pdf = Combine.to_pdf acc in
  Combine.binop ~n:t.quality ( *. ) t.u_pdf voltage_pdf

let pdf t ~alpha_sum ~beta_sum =
  if alpha_sum <= 0.0 || beta_sum <= 0.0 then
    invalid_arg "Inter.pdf: coefficient sums must be positive";
  pdf_dual t ~alpha_low:alpha_sum ~alpha_high:0.0 ~beta_low:beta_sum
    ~beta_high:0.0

let of_coeffs t (c : Path_coeffs.t) =
  pdf t ~alpha_sum:c.Path_coeffs.alpha_sum ~beta_sum:c.Path_coeffs.beta_sum

let mean_is_shifted p ~nominal = Pdf.mean p -. nominal
