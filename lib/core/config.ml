module Budget = Ssta_correlation.Budget
module Layers = Ssta_correlation.Layers

type t = {
  quality_intra : int;
  quality_inter : int;
  confidence : float;
  quad_levels : int;
  random_layer : bool;
  budget : Budget.t;
  truncation : float;
  corner_k : float;
  confidence_sigma : float;
  max_paths : int;
  inter_shape : Ssta_prob.Shape.t;
  inter_cache : bool;
  affine_prune : bool;
}

let num_layers t = t.quad_levels + if t.random_layer then 1 else 0

let default =
  let quad_levels = 4 and random_layer = true in
  { quality_intra = 100;
    quality_inter = 50;
    confidence = 0.05;
    quad_levels;
    random_layer;
    budget = Budget.equal ~layers:(quad_levels + 1);
    truncation = 6.0;
    corner_k = Ssta_tech.Corner.default_k;
    confidence_sigma = 3.0;
    max_paths = 20_000;
    inter_shape = Ssta_prob.Shape.Gaussian;
    inter_cache = true;
    affine_prune = true }

let with_confidence t confidence = { t with confidence }

let with_quality t ~intra ~inter =
  { t with quality_intra = intra; quality_inter = inter }

let with_inter_shape t inter_shape = { t with inter_shape }

let with_budget_split t ~inter_fraction =
  { t with
    budget = Budget.inter_intra ~inter_fraction ~layers:(num_layers t) }

let layers_for t pl =
  Layers.of_placement ~quad_levels:t.quad_levels ~random_layer:t.random_layer
    pl

let validate t =
  if t.quality_intra < 2 then Error "quality_intra must be >= 2"
  else if t.quality_inter < 2 then Error "quality_inter must be >= 2"
  else if t.confidence < 0.0 then Error "confidence must be >= 0"
  else if t.quad_levels < 1 then Error "quad_levels must be >= 1"
  else if Budget.layers t.budget <> num_layers t then
    Error "budget layer count does not match the layer structure"
  else if t.truncation <= 0.0 then Error "truncation must be positive"
  else if t.confidence_sigma < 0.0 then Error "confidence_sigma must be >= 0"
  else if t.max_paths < 1 then Error "max_paths must be >= 1"
  else Ok ()
