module Budget = Ssta_correlation.Budget
module Layers = Ssta_correlation.Layers

type engine = Path | Block

let engine_name = function Path -> "path" | Block -> "block"

let engines = [ Path; Block ]

type max_policy = Clark_max | Grid_max

let max_policy_name = function Clark_max -> "clark" | Grid_max -> "grid"

let max_policies = [ Clark_max; Grid_max ]

type t = {
  quality_intra : int;
  quality_inter : int;
  confidence : float;
  quad_levels : int;
  random_layer : bool;
  budget : Budget.t;
  truncation : float;
  corner_k : float;
  confidence_sigma : float;
  max_paths : int;
  inter_shape : Ssta_prob.Shape.t;
  inter_cache : bool;
  affine_prune : bool;
  engine : engine;
  block_max : max_policy;
}

let num_layers t = t.quad_levels + if t.random_layer then 1 else 0

let default =
  let quad_levels = 4 and random_layer = true in
  { quality_intra = 100;
    quality_inter = 50;
    confidence = 0.05;
    quad_levels;
    random_layer;
    budget = Budget.equal ~layers:(quad_levels + 1);
    truncation = 6.0;
    corner_k = Ssta_tech.Corner.default_k;
    confidence_sigma = 3.0;
    max_paths = 20_000;
    inter_shape = Ssta_prob.Shape.Gaussian;
    inter_cache = true;
    affine_prune = true;
    engine = Path;
    block_max = Clark_max }

let with_confidence t confidence = { t with confidence }

let with_quality t ~intra ~inter =
  { t with quality_intra = intra; quality_inter = inter }

let with_inter_shape t inter_shape = { t with inter_shape }

let with_budget_split t ~inter_fraction =
  { t with
    budget = Budget.inter_intra ~inter_fraction ~layers:(num_layers t) }

let layers_for t pl =
  Layers.of_placement ~quad_levels:t.quad_levels ~random_layer:t.random_layer
    pl

type param_effect = Enumeration_only | Analysis | Tables

let params =
  [ ("affine-prune", "static affine path screening (0 or 1)");
    ("confidence", "the C constant: slack = C * sigma_C");
    ("confidence-sigma", "ranking confidence point, in sigmas");
    ("corner-k", "worst-case corner multiplier");
    ("max-paths", "near-critical enumeration safety cap");
    ("quality-inter", "inter-PDF discretization (cells)");
    ("quality-intra", "intra-PDF discretization (cells)");
    ("truncation", "Gaussian truncation, in sigmas") ]

(* The effect classification drives incremental re-analysis
   (Ssta_check.Impact): [Enumeration_only] parameters never enter a
   per-path analysis — they steer slack, ranking caps or the screener —
   so cached path results stay valid; [Analysis] parameters change every
   path's statistics; [Tables] parameters additionally invalidate the
   warm inter-table/kernel-cache state (see
   Path_analysis.warm_compatible, which compares exactly the [Tables]
   fields plus the budget and inter shape, neither settable here). *)
let set_param t name v =
  let as_int ~lo what k =
    if Float.is_integer v && v >= float_of_int lo && v <= 1e9 then
      k (int_of_float v)
    else
      Error (Printf.sprintf "%s must be an integer >= %d, got %g" what lo v)
  in
  match name with
  | "confidence" ->
      if v >= 0.0 then Ok ({ t with confidence = v }, Enumeration_only)
      else Error (Printf.sprintf "confidence must be >= 0, got %g" v)
  | "max-paths" ->
      as_int ~lo:1 "max-paths" (fun i ->
          Ok ({ t with max_paths = i }, Enumeration_only))
  | "affine-prune" ->
      if v = 0.0 || v = 1.0 then
        Ok ({ t with affine_prune = v = 1.0 }, Enumeration_only)
      else Error (Printf.sprintf "affine-prune must be 0 or 1, got %g" v)
  | "quality-intra" ->
      as_int ~lo:2 "quality-intra" (fun i ->
          Ok ({ t with quality_intra = i }, Analysis))
  | "corner-k" ->
      if v >= 0.0 then Ok ({ t with corner_k = v }, Analysis)
      else Error (Printf.sprintf "corner-k must be >= 0, got %g" v)
  | "confidence-sigma" ->
      if v >= 0.0 then Ok ({ t with confidence_sigma = v }, Analysis)
      else Error (Printf.sprintf "confidence-sigma must be >= 0, got %g" v)
  | "quality-inter" ->
      as_int ~lo:2 "quality-inter" (fun i ->
          Ok ({ t with quality_inter = i }, Tables))
  | "truncation" ->
      if v > 0.0 then Ok ({ t with truncation = v }, Tables)
      else Error (Printf.sprintf "truncation must be positive, got %g" v)
  | _ ->
      Error
        (Printf.sprintf "unknown parameter %S (known: %s)" name
           (String.concat ", " (List.map fst params)))

let validate t =
  if t.quality_intra < 2 then Error "quality_intra must be >= 2"
  else if t.quality_inter < 2 then Error "quality_inter must be >= 2"
  else if t.confidence < 0.0 then Error "confidence must be >= 0"
  else if t.quad_levels < 1 then Error "quad_levels must be >= 1"
  else if Budget.layers t.budget <> num_layers t then
    Error "budget layer count does not match the layer structure"
  else if t.truncation <= 0.0 then Error "truncation must be positive"
  else if t.confidence_sigma < 0.0 then Error "confidence_sigma must be >= 0"
  else if t.max_paths < 1 then Error "max_paths must be >= 1"
  else Ok ()
