(** Monte-Carlo golden reference.

    Samples the {e exact} nonlinear delay model with the {e exact}
    correlation structure: every (RV, layer, partition) gets an
    independent truncated-Gaussian draw, each gate's parameters are the
    layer sums of Eq. (7), and delays are evaluated with the full Elmore
    formula — no Taylor expansion, no frozen derivatives, no grid.
    This validates the analytic path PDFs (the paper's approximations)
    end to end, and provides a reference distribution for the circuit
    delay (max over all outputs) used by the block-based comparison. *)

type sampler
(** Reusable sampling context for one placed circuit. *)

val sampler :
  ?nominal_of:(int -> Ssta_tech.Params.t) ->
  Config.t ->
  Ssta_timing.Graph.t ->
  Ssta_circuit.Placement.t ->
  sampler
(** [nominal_of] overrides the per-gate operating point (default
    {!Ssta_tech.Params.nominal} everywhere) — used to validate dual-Vt
    assignments. *)

val sample_gate_delays : sampler -> Ssta_prob.Rng.t -> float array
(** One process draw: the correlated delay of every node (0 for primary
    inputs).  Each call is an independent die. *)

val path_delay_samples :
  sampler -> n:int -> Ssta_prob.Rng.t -> Ssta_timing.Paths.path
  -> float array
(** [n] independent samples of one path's total delay. *)

val circuit_delay_samples :
  sampler -> n:int -> Ssta_prob.Rng.t -> float array
(** [n] independent samples of the circuit's critical delay (topological
    max over the sampled gate delays). *)

type validation = {
  mean_err : float;  (** |analytic mean - sampled mean|, seconds *)
  std_err : float;  (** |analytic std - sampled std|, seconds *)
  ks : float;  (** Kolmogorov-Smirnov distance *)
  sampled : Ssta_prob.Stats.summary;
}

val validate_path :
  ?n:int -> sampler -> Ssta_prob.Rng.t -> Path_analysis.t -> validation
(** Compare a path's analytic total PDF with [n] (default 20_000) exact
    samples. *)

val validate_path_sharded :
  ?n:int ->
  ?pool:Ssta_parallel.Pool.t ->
  ?should_stop:(unit -> bool) ->
  seed:int ->
  sampler ->
  Path_analysis.t ->
  validation
(** Like {!validate_path} but drawing the dies through
    {!Ssta_prob.Mc.run_sharded}: the sample budget splits into
    fixed-size shards with per-shard RNG streams derived from [seed],
    optionally evaluated on [pool].  The validation numbers are
    bit-identical at any worker count (this is [ssta mc --jobs]).

    [should_stop] cancels cooperatively between shards (see
    {!Ssta_prob.Mc.run_sharded}); a stopped validation summarizes the
    completed shard prefix — [validation.sampled.count] tells how many
    dies were actually drawn. *)
