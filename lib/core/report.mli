(** Rendering of the paper's tables and figure data.

    Table 2 rows, Table 3 rows, PDF curves (Figs. 3/4) and rank scatter
    data (Figs. 5/6), in both human-readable text and CSV for plotting. *)

type table2_row = {
  name : string;
  num_gates : int;
  det_delay_ps : float;
  worst_case_ps : float;
  overestimation_pct : float;
  confidence : float;
  num_critical_paths : int;
  truncated : bool;
  prob_mean_ps : float;
  prob_sigma3_ps : float;
  critical_path_gates : int;
  det_rank_of_prob_critical : int;
  runtime_s : float;
}

val table2_row : Methodology.t -> table2_row
(** Extract the Table 2 columns from a methodology run. *)

val pp_table2_header : Format.formatter -> unit -> unit
val pp_table2_row : Format.formatter -> table2_row -> unit

val pp_table2_comparison :
  Format.formatter -> paper:Ssta_circuit.Iscas85.paper_row -> table2_row -> unit
(** Side-by-side measured-vs-paper line (for EXPERIMENTS.md). *)

type table3_row = {
  scenario : string;
  inter_fraction : float;
  mean_ps : float;
  total_sigma_ps : float;
  inter_sigma_ps : float;
  intra_sigma_ps : float;
  num_paths : int;
}

val table3_row :
  scenario:string -> inter_fraction:float -> Methodology.t -> table3_row

val pp_table3_header : Format.formatter -> unit -> unit
val pp_table3_row : Format.formatter -> table3_row -> unit

val pp_path_report :
  Format.formatter -> Ssta_timing.Graph.t -> Path_analysis.t -> unit
(** Classic "report_timing"-style breakdown of one analyzed path: one
    line per node with gate type, incremental delay and cumulative
    arrival, followed by the statistical summary (mean, sigma,
    confidence point, worst-case corner). *)

val pdf_csv : Ssta_prob.Pdf.t -> string
(** Two-column CSV [delay_ps,density] of a delay PDF (Figs. 3/4). *)

val pdfs_csv : (string * Ssta_prob.Pdf.t) list -> string
(** Long-format CSV [series,delay_ps,density] for several curves. *)

val rank_scatter_csv : (int * int) array -> string
(** CSV [det_rank,prob_rank] (Figs. 5/6). *)

val pp_run_status : Format.formatter -> Methodology.t -> unit
(** Engine name, degradation events (budget breaches) and the
    numerical-health ledger of a run — the robustness footer of the run
    report.  The engine line keeps path and block run transcripts
    distinguishable (block runs print their own summary through
    [Ssta_block.Engine], which names the engine the same way). *)

val json_report : Methodology.t -> string
(** Machine-readable report of a full run: config, critical delay,
    sigma_C, degradations, health counters, the analysis of every
    ranked path and the probabilistic critical path's total PDF.

    Deterministic by construction — floats are printed with round-trip
    precision and nothing host- or time-dependent (in particular no
    wall-clock) is included — so two runs that computed the same
    results emit byte-identical strings.  The parallel determinism
    property tests diff this artifact between [--jobs 1] and
    [--jobs N] runs. *)
