module Paths = Ssta_timing.Paths

type t = {
  probabilities : float array;
  samples : int;
  entropy : float;
}

let estimate sampler ~n rng paths =
  if paths = [] then invalid_arg "Criticality.estimate: no paths";
  if n < 1 then invalid_arg "Criticality.estimate: n >= 1";
  let paths = Array.of_list paths in
  let wins = Array.make (Array.length paths) 0 in
  for _ = 1 to n do
    let delays = Monte_carlo.sample_gate_delays sampler rng in
    let best = ref 0 and best_delay = ref neg_infinity in
    Array.iteri
      (fun i (p : Paths.path) ->
        let d =
          Array.fold_left (fun acc id -> acc +. delays.(id)) 0.0 p.Paths.nodes
        in
        if d > !best_delay then begin
          best := i;
          best_delay := d
        end)
      paths;
    wins.(!best) <- wins.(!best) + 1
  done;
  let probabilities =
    Array.map (fun w -> float_of_int w /. float_of_int n) wins
  in
  let entropy =
    Array.fold_left
      (fun acc p -> if p > 0.0 then acc -. (p *. log p) else acc)
      0.0 probabilities
  in
  { probabilities; samples = n; entropy }

let dominant t =
  let best = ref 0 in
  Array.iteri
    (fun i p -> if p > t.probabilities.(!best) then best := i)
    t.probabilities;
  !best
