(** Inter-die path-delay PDF: the numeric push-forward of Section 2.5.

    The inter part of a path delay (first term of Eq. 13) keeps the full
    nonlinear form

    {v t_inter = K * t_ox * L_eff * (A F(V_dd,V_Tn) + B F(V_dd,|V_Tp|)) v}

    with K = 0.345/eps_ox and A/B the summed gate alphas/betas.  A naive
    5-dimensional enumeration would cost O(Q^5); the factorization lets
    us precompute path-independent pieces — the product PDF
    [U = K t_ox L_eff] and the voltage-factor tables F on the
    (V_dd, V_Tn) and (V_dd, V_Tp) grids — and reduces the per-path cost
    to one O(Q^3) accumulation plus one O(Q^2) product, which is what
    makes analyzing thousands of near-critical paths tractable. *)

type tables
(** Path-independent precomputation for a given configuration. *)

val tables : ?vt_shift:float -> Config.t -> tables
(** Build the inter-RV grids (truncated Gaussians with the layer-0 share
    of each parameter's variance), the U product PDF and the
    voltage-factor tables — one pair for the nominal (low-Vt) threshold
    and one for thresholds shifted by [vt_shift] (default
    {!Ssta_tech.Vt_class.default_shift}), enabling dual-Vt analysis. *)

val vt_shift : tables -> float
(** The threshold shift the high-Vt grids were built with. *)

(** {1 Scale-covariant kernel cache}

    [pdf_dual] is homogeneous of degree 1 in its four coefficients, so
    the result at [c*alpha, c*beta] is the exact affine rescale
    [x -> c*x] of the result at [alpha, beta].  A {!cache} memoizes
    kernels by the direction [coeffs / sum] (quantized to 40 mantissa
    bits) and answers every call by rescaling with [Pdf.scale]; hits turn
    the per-path O(Q^3) kernel into an O(Q) rescale.

    Cached results are a pure function of the call's coefficients —
    independent of cache state, shard layout, or hit/miss history — so
    parallel runs using per-domain shards stay byte-identical to
    sequential ones.  Cached and uncached results for the same call may
    differ by the quantization, bounded well below 1e-9 relative. *)

type cache
(** A single-domain kernel cache bound to the {!tables} it was created
    from (using it with different tables raises [Invalid_argument]). *)

val cache_create : ?max_entries:int -> tables -> cache
(** Fresh cache.  [max_entries] (default 512) bounds resident kernels;
    reaching the bound evicts everything (statistics keep counting). *)

type cache_stats = {
  cs_lookups : int;  (** cached calls; scheduling-independent *)
  cs_distinct : int;
      (** distinct normalized directions ever looked up (union over
          shards); scheduling-independent *)
  cs_hits : int;
      (** [lookups - distinct]: the hits a single shared cache would have
          served; scheduling-independent, safe for reports *)
  cs_builds : int;
      (** kernels actually built; with several shards this depends on
          scheduling — keep it out of deterministic artifacts *)
  cs_entries : int;  (** currently resident kernels across shards *)
  cs_shards : int;  (** number of per-domain shards materialized *)
}

val cache_stats : cache -> cache_stats

type caches
(** A family of per-domain cache shards for parallel fan-outs. *)

val caches_create : ?max_entries:int -> tables -> caches

val caches_get : caches -> cache
(** The calling domain's shard (created on first use). *)

val caches_stats : caches -> cache_stats
(** Aggregated statistics: lookups/builds summed, distinct as the union
    of the per-shard direction sets. *)

val direction_key :
  alpha_low:float ->
  alpha_high:float ->
  beta_low:float ->
  beta_high:float ->
  int64 * int64 * int64 * int64
(** The quantized normalized direction of a coefficient quadruple — the
    exact identity under which the cache memoizes kernels.  A pure
    function of the coefficients, exposed so the parallel scheduler's
    cost model can predict cache hits deterministically (simulating a
    shared seen-set over paths in index order) without reading any
    shard's scheduling-dependent state. *)

val pdf :
  ?cache:cache ->
  ?arena:Ssta_prob.Arena.t ->
  tables ->
  alpha_sum:float ->
  beta_sum:float ->
  Ssta_prob.Pdf.t
(** Inter-delay PDF of a path with the given coefficient sums (both must
    be positive); all gates on the low-Vt class.  With [?arena], the
    kernel's O(Q) accumulation grids and column scratch are borrowed
    from the arena instead of freshly allocated; results are
    bit-identical either way. *)

val pdf_dual :
  ?cache:cache ->
  ?arena:Ssta_prob.Arena.t ->
  tables ->
  alpha_low:float ->
  alpha_high:float ->
  beta_low:float ->
  beta_high:float ->
  Ssta_prob.Pdf.t
(** Mixed-class inter PDF: alpha/beta sums split by Vt class (the class
    shifts the threshold's mean, the deviation RV stays shared).  Sums
    must be non-negative with a positive total on each of the NMOS and
    PMOS sides.  With [?cache], the call is answered through the
    scale-covariant cache (see above). *)

val of_coeffs :
  ?cache:cache ->
  ?arena:Ssta_prob.Arena.t ->
  tables ->
  Ssta_correlation.Path_coeffs.t ->
  Ssta_prob.Pdf.t

val mean_is_shifted : Ssta_prob.Pdf.t -> nominal:float -> float
(** [mean pdf - nominal]: the systematic shift between the probabilistic
    mean and the deterministic delay caused by the nonlinearity ("the
    expected value of the delay is not the delay of the expected
    values").  Exposed for tests and reports. *)
