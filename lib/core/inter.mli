(** Inter-die path-delay PDF: the numeric push-forward of Section 2.5.

    The inter part of a path delay (first term of Eq. 13) keeps the full
    nonlinear form

    {v t_inter = K * t_ox * L_eff * (A F(V_dd,V_Tn) + B F(V_dd,|V_Tp|)) v}

    with K = 0.345/eps_ox and A/B the summed gate alphas/betas.  A naive
    5-dimensional enumeration would cost O(Q^5); the factorization lets
    us precompute path-independent pieces — the product PDF
    [U = K t_ox L_eff] and the voltage-factor tables F on the
    (V_dd, V_Tn) and (V_dd, V_Tp) grids — and reduces the per-path cost
    to one O(Q^3) accumulation plus one O(Q^2) product, which is what
    makes analyzing thousands of near-critical paths tractable. *)

type tables
(** Path-independent precomputation for a given configuration. *)

val tables : ?vt_shift:float -> Config.t -> tables
(** Build the inter-RV grids (truncated Gaussians with the layer-0 share
    of each parameter's variance), the U product PDF and the
    voltage-factor tables — one pair for the nominal (low-Vt) threshold
    and one for thresholds shifted by [vt_shift] (default
    {!Ssta_tech.Vt_class.default_shift}), enabling dual-Vt analysis. *)

val vt_shift : tables -> float
(** The threshold shift the high-Vt grids were built with. *)

val pdf : tables -> alpha_sum:float -> beta_sum:float -> Ssta_prob.Pdf.t
(** Inter-delay PDF of a path with the given coefficient sums (both must
    be positive); all gates on the low-Vt class. *)

val pdf_dual :
  tables ->
  alpha_low:float ->
  alpha_high:float ->
  beta_low:float ->
  beta_high:float ->
  Ssta_prob.Pdf.t
(** Mixed-class inter PDF: alpha/beta sums split by Vt class (the class
    shifts the threshold's mean, the deviation RV stays shared).  Sums
    must be non-negative with a positive total on each of the NMOS and
    PMOS sides. *)

val of_coeffs : tables -> Ssta_correlation.Path_coeffs.t -> Ssta_prob.Pdf.t

val mean_is_shifted : Ssta_prob.Pdf.t -> nominal:float -> float
(** [mean pdf - nominal]: the systematic shift between the probabilistic
    mean and the deterministic delay caused by the nonlinearity ("the
    expected value of the delay is not the delay of the expected
    values").  Exposed for tests and reports. *)
