module Graph = Ssta_timing.Graph
module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist

type step = { sigma3 : float; area : float; resized : int }

type result = {
  drives : float array;
  initial_sigma3 : float;
  final_sigma3 : float;
  area : float;
  initial_area : float;
  iterations : int;
  met : bool;
  history : step list;
}

let total_area circuit drives =
  let acc = ref 0.0 in
  Array.iter
    (fun (g : Netlist.gate) -> acc := !acc +. drives.(g.Netlist.id))
    circuit.Netlist.gates;
  !acc

(* Statistical analysis of the current sizing: probabilistic critical
   path's confidence point over the near-critical set (capped for
   speed), plus the path itself. *)
let evaluate config placement circuit drives =
  let graph = Graph.with_drives circuit drives in
  let sta = Sta.of_graph graph in
  let ctx = Path_analysis.context config graph placement in
  let det = Path_analysis.analyze ctx sta.Sta.critical_path in
  let slack = config.Config.confidence *. det.Path_analysis.std in
  let enum = Sta.near_critical ~max_paths:200 sta ~slack in
  let worst =
    List.fold_left
      (fun acc p ->
        let a =
          if p.Paths.nodes = det.Path_analysis.path.Paths.nodes then det
          else Path_analysis.analyze ctx p
        in
        match acc with
        | None -> Some a
        | Some best ->
            if a.Path_analysis.confidence_point
               > best.Path_analysis.confidence_point
            then Some a
            else Some best)
      None enum.Paths.paths
  in
  match worst with
  | Some a -> a
  | None -> det

let optimize ?(config = Config.default) ?placement ?(max_iterations = 50)
    ?(step_factor = 1.25) ?(max_drive = 6.0) ~target circuit =
  if target <= 0.0 then invalid_arg "Sizing.optimize: target must be positive";
  if step_factor <= 1.0 then
    invalid_arg "Sizing.optimize: step_factor must exceed 1";
  if max_drive < 1.0 then invalid_arg "Sizing.optimize: max_drive >= 1";
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  let n = Netlist.num_nodes circuit in
  let drives = Array.make n 1.0 in
  let initial = evaluate config placement circuit drives in
  let initial_area = total_area circuit drives in
  let history = ref [] in
  let rec loop iteration current =
    let sigma3 = current.Path_analysis.confidence_point in
    if sigma3 <= target then (iteration, current, true)
    else if iteration >= max_iterations then (iteration, current, false)
    else begin
      (* Upsize the gates of the probabilistic critical path. *)
      let resized = ref 0 in
      Array.iter
        (fun id ->
          if not (Netlist.is_input circuit id) && drives.(id) < max_drive
          then begin
            drives.(id) <- Float.min max_drive (drives.(id) *. step_factor);
            incr resized
          end)
        current.Path_analysis.path.Paths.nodes;
      if !resized = 0 then (iteration, current, false)
      else begin
        let next = evaluate config placement circuit drives in
        history :=
          { sigma3 = next.Path_analysis.confidence_point;
            area = total_area circuit drives;
            resized = !resized }
          :: !history;
        loop (iteration + 1) next
      end
    end
  in
  let iterations, final, met = loop 0 initial in
  { drives;
    initial_sigma3 = initial.Path_analysis.confidence_point;
    final_sigma3 = final.Path_analysis.confidence_point;
    area = total_area circuit drives;
    initial_area;
    iterations;
    met;
    history = List.rev !history }
