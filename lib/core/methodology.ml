module Sta = Ssta_timing.Sta
module Paths = Ssta_timing.Paths
module Placement = Ssta_circuit.Placement
module Netlist = Ssta_circuit.Netlist
module Rbudget = Ssta_runtime.Budget
module Health = Ssta_runtime.Health
module Err = Ssta_runtime.Ssta_error
module Pool = Ssta_parallel.Pool

type status = Complete | Degraded of Rbudget.degradation list

type t = {
  circuit_name : string;
  num_gates : int;
  config : Config.t;
  sta : Sta.t;
  sigma_c : float;
  slack : float;
  truncated : bool;
  ranked : Ranking.ranked array;
  det_critical : Path_analysis.t;
  prob_critical : Ranking.ranked;
  runtime_s : float;
  status : status;
  health : Health.t;
}

let is_degraded t = match t.status with Complete -> false | Degraded _ -> true

let degradations t =
  match t.status with Complete -> [] | Degraded ds -> ds

let run_tracked ~config ~tracker ?placement ?wire ?wire_caps ?pool ?screen
    ?sta ?warm ?reuse ?record circuit =
  let started = Unix.gettimeofday () in
  let budget = Rbudget.limits tracker in
  let degradations = ref [] in
  let degrade d = degradations := d :: !degradations in
  let placement =
    match placement with Some pl -> pl | None -> Placement.place circuit
  in
  let sta =
    match sta, wire, wire_caps with
    | Some _, Some _, _ | Some _, _, Some _ ->
        invalid_arg "Methodology.run: sta excludes wire and wire_caps"
    | Some sta, None, None -> sta
    | None, Some _, Some _ ->
        invalid_arg "Methodology.run: wire and wire_caps are exclusive"
    | None, None, None -> Sta.analyze circuit
    | None, Some wire, None -> Sta.analyze_placed ~wire circuit placement
    | None, None, Some caps ->
        Sta.of_graph (Ssta_timing.Graph.with_wire_caps circuit caps)
  in
  (* Degrade the PDF resolution first: a cell cap trades accuracy for
     memory/time without dropping any path. *)
  let config =
    match
      Rbudget.clamp_quality budget ~intra:config.Config.quality_intra
        ~inter:config.Config.quality_inter
    with
    | None -> config
    | Some (qi, qe) ->
        if qi <> config.Config.quality_intra then
          degrade
            (Rbudget.Tightened
               { parameter = "quality-intra";
                 from_ = float_of_int config.Config.quality_intra;
                 to_ = float_of_int qi });
        if qe <> config.Config.quality_inter then
          degrade
            (Rbudget.Tightened
               { parameter = "quality-inter";
                 from_ = float_of_int config.Config.quality_inter;
                 to_ = float_of_int qe });
        Config.with_quality config ~intra:qi ~inter:qe
  in
  let health = Health.create () in
  let ctx =
    Path_analysis.context ~health ?warm config sta.Sta.graph placement
  in
  (* Step 3: sigma_C from the deterministic critical path.  The path
     gets a private ledger merged back immediately — Health.merge
     replays events in order, so this is byte-identical to recording
     into the run ledger directly, and it gives the reuse/record hooks
     (incremental re-analysis, Ssta_check.Impact) a ledger that covers
     exactly this path's events. *)
  let consult_reuse p = match reuse with None -> None | Some f -> f p in
  let det_ledger = Health.create () in
  let det_critical, det_reused =
    match consult_reuse sta.Sta.critical_path with
    | Some (pa, cached) ->
        Health.merge ~into:det_ledger cached;
        (pa, true)
    | None ->
        (Path_analysis.analyze ~health:det_ledger ctx sta.Sta.critical_path,
         false)
  in
  Health.merge ~into:health det_ledger;
  (match record with
  | Some f when not det_reused -> f sta.Sta.critical_path det_critical det_ledger
  | _ -> ());
  let sigma_c = det_critical.Path_analysis.std in
  let slack = config.Config.confidence *. sigma_c in
  (* Step 4: all near-critical paths, deterministically ranked.  The
     budget clamps the enumeration cap and imposes the deadline. *)
  let max_paths = Rbudget.effective_max_paths budget config.Config.max_paths in
  let should_stop = Rbudget.stop_check tracker in
  (* Optional static screen (the affine suffix bound): the hook prunes
     only provably sub-threshold subtrees, so the enumeration record is
     byte-identical with or without it; the counters it reports are a
     pure function of graph + config + slack, keeping --jobs
     determinism. *)
  let prune, screen_counters =
    match screen with
    | None -> ((fun _ -> false), [])
    | Some f -> f ~sta ~slack
  in
  let enumeration =
    Sta.near_critical ~max_paths ~should_stop ~prune ?pool sta ~slack
  in
  let num_enumerated = List.length enumeration.Paths.paths in
  if enumeration.Paths.deadline_hit then
    degrade
      (Rbudget.Deadline_hit
         { phase = "enumeration";
           detail =
             Printf.sprintf "stopped after %d paths (%d candidates explored)"
               num_enumerated enumeration.Paths.explored });
  if enumeration.Paths.truncated && max_paths < config.Config.max_paths then
    degrade
      (Rbudget.Capped
         { resource = "paths";
           kept = num_enumerated;
           detail =
             Printf.sprintf "budget capped enumeration at %d paths" max_paths });
  (* Step 5: statistical analysis of each, then confidence ranking.
     The paths fan out across the pool one per chunk; each gets a
     private health ledger, merged back in path order, so the ledger —
     like every analysis — is identical to a sequential run's.  The
     deadline is polled per chunk: a late breach keeps the contiguous
     analyzed prefix, exactly as the historical sequential loop did. *)
  let paths_arr = Array.of_list enumeration.Paths.paths in
  let ledgers = Array.map (fun _ -> Health.create ()) paths_arr in
  let det_nodes = det_critical.Path_analysis.path.Paths.nodes in
  (* The reuse hook is consulted for every path here, on the caller's
     thread, before the fan-out: the hook (typically a cache lookup) is
     never invoked from a worker domain, so it needs no synchronization.
     A hit pre-merges the cached ledger — identical events to a fresh
     analysis, since Path_analysis.analyze is deterministic. *)
  let reused =
    match reuse with
    | None -> [||]
    | Some f ->
        Array.mapi
          (fun i p ->
            if p.Paths.nodes = det_nodes then None
            else
              match f p with
              | Some (pa, cached) ->
                  Health.merge ~into:ledgers.(i) cached;
                  Some pa
              | None -> None)
          paths_arr
  in
  let analyze_one i =
    let p = paths_arr.(i) in
    if p.Paths.nodes = det_nodes then det_critical
    else
      match if reused = [||] then None else reused.(i) with
      | Some pa -> pa
      | None -> Path_analysis.analyze ~health:ledgers.(i) ctx p
  in
  (* Per-path cost estimate for the weighted fan-out.  The dominant
     terms: the O(Q_intra^2) convolution every path pays, the per-gate
     coefficient accumulation, and — only when the path's quantized
     inter direction has not appeared before — the O(Q_inter^3) kernel
     build.  The hit/miss prediction simulates one shared seen-set over
     paths in index order (via Inter.direction_key, a pure function of
     the coefficients), so the weights are a pure function of the input
     path list: identical for every --jobs value, keeping the piece
     layout — and trivially the results — deterministic. *)
  let weights =
    let qi = config.Config.quality_intra in
    let qe = config.Config.quality_inter in
    let conv = qi * qi and build = qe * qe * qe in
    let g = sta.Sta.graph in
    let seen = Hashtbl.create 64 in
    Array.map
      (fun p ->
        if p.Paths.nodes = det_nodes then 1
        else begin
          let asum = ref 0.0 and bsum = ref 0.0 and len = ref 0 in
          Array.iter
            (fun id ->
              if not (Ssta_timing.Graph.is_input g id) then begin
                let e = Ssta_timing.Graph.electrical_exn g id in
                asum := !asum +. e.Ssta_tech.Gate.alpha;
                bsum := !bsum +. e.Ssta_tech.Gate.beta;
                incr len
              end)
            p.Paths.nodes;
          let miss =
            (not config.Config.inter_cache)
            ||
            let key =
              Inter.direction_key ~alpha_low:!asum ~alpha_high:0.0
                ~beta_low:!bsum ~beta_high:0.0
            in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end
          in
          conv + (20 * !len) + (if miss then build else qe)
        end)
      paths_arr
  in
  let prefix, stopped =
    match pool with
    | Some pool ->
        Pool.map_prefix_weighted pool ~weights
          ~should_stop:(fun () -> Rbudget.stopped tracker)
          analyze_one
          (Array.init (Array.length paths_arr) Fun.id)
    | None ->
        let out = ref [] and stopped = ref false in
        (try
           Array.iteri
             (fun i _ ->
               if Rbudget.stopped tracker then begin
                 stopped := true;
                 raise Exit
               end;
               out := analyze_one i :: !out)
             paths_arr
         with Exit -> ());
        (Array.of_list (List.rev !out), !stopped)
  in
  Array.iteri (fun i _ -> Health.merge ~into:health ledgers.(i)) prefix;
  (* Record freshly analyzed paths (again on the caller's thread).  The
     deterministic critical path was recorded above with its own
     ledger; its copies in the enumeration carry empty ledgers and are
     skipped so they never overwrite that entry. *)
  (match record with
  | None -> ()
  | Some f ->
      Array.iteri
        (fun i pa ->
          let p = paths_arr.(i) in
          let was_reused = reused <> [||] && Option.is_some reused.(i) in
          if (not was_reused) && p.Paths.nodes <> det_nodes then
            f p pa ledgers.(i))
        prefix);
  (* Surface the inter-kernel cache traffic through the ledger.  Only the
     scheduling-independent counters go in (lookups, distinct directions,
     and their difference — the hits a shared cache would serve), so the
     report stays byte-identical across --jobs.  A cache borrowed from a
     warm state is skipped entirely: its statistics span every request it
     ever served, so they belong to the warm-state owner's lifetime
     ledger, not this run's deterministic report. *)
  (if not (Path_analysis.cache_shared ctx) then
     match Path_analysis.cache_stats ctx with
     | None -> ()
     | Some st ->
         Health.counter_set health "inter-cache-lookups" st.Inter.cs_lookups;
         Health.counter_set health "inter-cache-distinct" st.Inter.cs_distinct;
         Health.counter_set health "inter-cache-hits" st.Inter.cs_hits);
  (* Scratch-arena traffic of the zero-allocation kernels.  All three
     derived counters are scheduling-independent (size classes are a set
     union, borrowed bytes a per-path sum, and the peak equals the
     sequential per-path maximum because arenas drain between paths), so
     they are safe for byte-deterministic reports.  They do depend on
     which paths this run analyzed itself, so — like the inter-cache
     counters under a shared cache — they are skipped when a warm state
     or a reuse hook lets the run splice in work done elsewhere. *)
  (let st = Path_analysis.arena_stats ctx in
   if
     st.Ssta_prob.Arena.st_borrow_bytes > 0
     && Option.is_none warm
     && Option.is_none reuse
   then begin
     Health.counter_set health "arena-buffers-created"
       (Ssta_prob.Arena.buffers_created st);
     Health.counter_set health "arena-bytes-reused"
       (Ssta_prob.Arena.bytes_reused st);
     Health.counter_set health "arena-peak-bytes"
       st.Ssta_prob.Arena.st_peak_bytes
   end);
  List.iter (fun (k, v) -> Health.counter_set health k v) screen_counters;
  if stopped then
    degrade
      (Rbudget.Deadline_hit
         { phase = "path-analysis";
           detail =
             Printf.sprintf "analyzed %d of %d enumerated paths"
               (Array.length prefix) num_enumerated });
  let analyses =
    match Array.to_list prefix with [] -> [ det_critical ] | l -> l
  in
  (* When paths were dropped, the run effectively used a smaller
     confidence C: report the value actually covered by the kept set. *)
  let dropped_paths =
    List.exists
      (function
        | Rbudget.Deadline_hit _ | Rbudget.Capped _ -> true
        | Rbudget.Tightened _ -> false)
      !degradations
  in
  if dropped_paths && sigma_c > 0.0 then begin
    let last = List.nth analyses (List.length analyses - 1) in
    let covered =
      (sta.Sta.critical_delay -. last.Path_analysis.det_delay) /. sigma_c
    in
    let c_eff = Float.max 0.0 (Float.min config.Config.confidence covered) in
    if c_eff < config.Config.confidence then
      degrade
        (Rbudget.Tightened
           { parameter = "confidence";
             from_ = config.Config.confidence;
             to_ = c_eff })
  end;
  let ranked = Ranking.rank analyses in
  let prob_critical = Ranking.probabilistic_critical ranked in
  let status =
    match List.rev !degradations with [] -> Complete | ds -> Degraded ds
  in
  { circuit_name = circuit.Netlist.name;
    num_gates = Netlist.num_gates circuit;
    config;
    sta;
    sigma_c;
    slack;
    truncated = enumeration.Paths.truncated || enumeration.Paths.deadline_hit;
    ranked;
    det_critical;
    prob_critical;
    runtime_s = Unix.gettimeofday () -. started;
    status;
    health }

let run ?(config = Config.default) ?placement ?wire ?wire_caps ?pool ?screen
    circuit =
  run_tracked ~config
    ~tracker:(Rbudget.start Rbudget.unlimited)
    ?placement ?wire ?wire_caps ?pool ?screen circuit

let analyze ?(config = Config.default) ?(budget = Rbudget.unlimited)
    ?cancelled ?placement ?wire ?wire_caps ?pool ?screen ?sta ?warm ?reuse
    ?record circuit =
  match Rbudget.validate budget with
  | Error e -> Error e
  | Ok () ->
      Err.protect ~context:"Methodology.analyze" (fun () ->
          run_tracked ~config
            ~tracker:(Rbudget.start ?cancelled budget)
            ?placement ?wire ?wire_caps ?pool ?screen ?sta ?warm ?reuse
            ?record circuit)

let num_critical_paths t = Array.length t.ranked

let overestimation_pct t =
  let worst = t.det_critical.Path_analysis.worst_case in
  let cp =
    t.prob_critical.Ranking.analysis.Path_analysis.confidence_point
  in
  if cp <= 0.0 then 0.0 else (worst -. cp) /. cp *. 100.0

let find_rank t ~prob_rank =
  if prob_rank < 1 || prob_rank > Array.length t.ranked then
    invalid_arg "Methodology.find_rank: rank out of range";
  t.ranked.(prob_rank - 1)
