(** Statistical analysis of a single path (Section 3.2).

    Combines the pieces: Eq. (13) coefficient accumulation, the Gaussian
    intra-PDF (Eq. 14), the numeric inter-PDF, and their convolution into
    the total delay PDF, from which the confidence point used for ranking
    is read. *)

type t = {
  path : Ssta_timing.Paths.path;
  gate_count : int;
  coeffs : Ssta_correlation.Path_coeffs.t;
  intra_pdf : Ssta_prob.Pdf.t;
  inter_pdf : Ssta_prob.Pdf.t;
  total_pdf : Ssta_prob.Pdf.t;  (** convolution of inter and intra *)
  det_delay : float;  (** nominal (deterministic) delay, s *)
  mean : float;  (** probabilistic mean — close to but not equal
                     to [det_delay] (nonlinearity) *)
  std : float;
  intra_sigma : float;
  inter_sigma : float;
  confidence_point : float;  (** mean + confidence_sigma * std *)
  worst_case : float;  (** corner analysis of the same path *)
}

type context
(** Shared precomputation (inter tables, layers) for analyzing many paths
    of one placed circuit, plus the numerical-health ledger the guarded
    PDF operations report into. *)

type warm
(** Request-independent precomputation a long-lived process (the
    analysis server) keeps across many {!context} creations: the inter
    tables and, when the configuration enables it, the scale-covariant
    kernel cache.  Sharing a warm state never changes any analysis
    result — cached kernels are pure functions of their coefficients —
    only the cache {e statistics} become history-dependent, which is why
    {!cache_stats} accounting moves to the warm-state owner (see
    {!cache_shared}). *)

val warm : Config.t -> warm
(** Build the tables (and cache, if [config.inter_cache]) once.
    Raises [Invalid_argument] on an invalid configuration. *)

val warm_compatible : warm -> Config.t -> bool
(** May [context ~warm] be used with this configuration?  True when the
    fields the tables depend on (quality-inter, inter shape, truncation,
    variance budget) agree with the configuration the state was built
    from. *)

val warm_cache_stats : warm -> Inter.cache_stats option
(** Lifetime cache statistics of the warm state (None when built with
    [inter_cache = false]). *)

val context :
  ?health:Ssta_runtime.Health.t ->
  ?warm:warm ->
  Config.t ->
  Ssta_timing.Graph.t ->
  Ssta_circuit.Placement.t ->
  context
(** A fresh ledger is created when [health] is omitted.  [warm] reuses a
    previously built table/cache pair instead of rebuilding them; it
    must satisfy {!warm_compatible} (raises [Invalid_argument]
    otherwise). *)

val health : context -> Ssta_runtime.Health.t
(** The ledger accumulated by every {!analyze} call through this
    context. *)

val cache_stats : context -> Inter.cache_stats option
(** Aggregated inter-kernel cache statistics, or [None] when the context
    was built with [config.inter_cache = false].  When the cache is
    shared ({!cache_shared}), the numbers span the cache's whole
    lifetime, not just this context's calls. *)

val cache_shared : context -> bool
(** The context borrows its kernel cache from a {!warm} state.  Drivers
    must then keep cache counters out of per-run reports: the statistics
    depend on every request the cache ever served, so they would break
    the byte-determinism of otherwise identical runs. *)

val arena_stats : context -> Ssta_prob.Arena.stats
(** Merged scratch-arena statistics over all per-domain shards this
    context's {!analyze} calls materialized.  The derived counters
    ({!Ssta_prob.Arena.buffers_created}, [bytes_reused], peak bytes) are
    scheduling-independent (see {!Ssta_prob.Arena.merged_stats}) and
    safe for deterministic reports. *)

val analyze :
  ?health:Ssta_runtime.Health.t -> context -> Ssta_timing.Paths.path -> t
(** Full statistical analysis of one path.  The intra/inter PDFs and
    their convolution run through {!Ssta_runtime.Guard}: repairable
    numerical damage is fixed and recorded in the context's health
    ledger; unrepairable damage raises
    [Ssta_runtime.Ssta_error.Error (Numeric _)].

    [health] redirects the guard reports away from the context ledger.
    Parallel drivers hand every path a private ledger and
    {!Ssta_runtime.Health.merge} them back in path order, so the
    context ledger ends up identical to a sequential run's. *)

val overestimation_pct : t -> float
(** [(worst_case - confidence_point) / confidence_point * 100] — the
    paper's Table 2 column 5. *)
