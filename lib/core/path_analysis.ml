module Pdf = Ssta_prob.Pdf
module Corner = Ssta_tech.Corner
module Graph = Ssta_timing.Graph
module Paths = Ssta_timing.Paths
module Layers = Ssta_correlation.Layers
module Path_coeffs = Ssta_correlation.Path_coeffs
module Guard = Ssta_runtime.Guard
module Health = Ssta_runtime.Health

type t = {
  path : Paths.path;
  gate_count : int;
  coeffs : Path_coeffs.t;
  intra_pdf : Pdf.t;
  inter_pdf : Pdf.t;
  total_pdf : Pdf.t;
  det_delay : float;
  mean : float;
  std : float;
  intra_sigma : float;
  inter_sigma : float;
  confidence_point : float;
  worst_case : float;
}

(* Per-domain mutable scratch for the zero-allocation kernels: one
   arena (grid buffers) and one coefficient workspace per worker domain,
   lazily created under a lock — the same sharding discipline as the
   inter-kernel cache.  Scratch contents never outlive one [analyze]
   call, so shard layout cannot affect results. *)
type domain_state = {
  ds_arena : Ssta_prob.Arena.t;
  ds_ws : Path_coeffs.workspace;
}

type domain_states = {
  mutable ds_shards : (int * domain_state) list;
  ds_lock : Mutex.t;
}

let domain_states_create () = { ds_shards = []; ds_lock = Mutex.create () }

let domain_states_get d =
  let id = (Domain.self () :> int) in
  Mutex.protect d.ds_lock (fun () ->
      match List.assoc_opt id d.ds_shards with
      | Some s -> s
      | None ->
          let s =
            { ds_arena = Ssta_prob.Arena.create ();
              ds_ws = Path_coeffs.workspace_create () }
          in
          d.ds_shards <- (id, s) :: d.ds_shards;
          s)

let domain_states_arena_stats d =
  Mutex.protect d.ds_lock (fun () ->
      Ssta_prob.Arena.merged_stats
        (List.map (fun (_, s) -> Ssta_prob.Arena.stats s.ds_arena) d.ds_shards))

type context = {
  config : Config.t;
  graph : Graph.t;
  placement : Ssta_circuit.Placement.t;
  layers : Layers.t;
  tables : Inter.tables;
  health : Health.t;
  caches : Inter.caches option;  (* per-domain kernel cache shards *)
  cache_shared : bool;  (* caches owned by a longer-lived warm state *)
  grads : Ssta_tech.Params.t array;
      (* per-node nominal delay gradients, evaluated once per graph *)
  domains : domain_states;  (* per-domain arena / workspace shards *)
}

type warm = {
  w_config : Config.t;
  w_tables : Inter.tables;
  w_caches : Inter.caches option;
}

(* The inter tables read exactly these configuration fields (grid
   resolution, RV shape, truncation, layer-0 variance share); two
   configs agreeing on them may share tables and kernel caches. *)
let warm_compatible w config =
  let a = w.w_config and b = config in
  a.Config.quality_inter = b.Config.quality_inter
  && a.Config.inter_shape = b.Config.inter_shape
  && a.Config.truncation = b.Config.truncation
  && a.Config.budget = b.Config.budget

let warm config =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Path_analysis.warm: " ^ msg));
  let tables = Inter.tables config in
  { w_config = config;
    w_tables = tables;
    w_caches =
      (if config.Config.inter_cache then Some (Inter.caches_create tables)
       else None) }

let warm_cache_stats w = Option.map Inter.caches_stats w.w_caches

let context ?health ?warm config graph placement =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Path_analysis.context: " ^ msg));
  let health =
    match health with Some h -> h | None -> Health.create ()
  in
  let warm =
    match warm with
    | Some w when not (warm_compatible w config) ->
        invalid_arg
          "Path_analysis.context: warm state built for an incompatible \
           configuration (quality-inter/shape/truncation/budget differ)"
    | w -> w
  in
  let tables =
    match warm with Some w -> w.w_tables | None -> Inter.tables config
  in
  let caches, cache_shared =
    if not config.Config.inter_cache then (None, false)
    else
      match warm with
      | Some { w_caches = Some c; _ } -> (Some c, true)
      | _ -> (Some (Inter.caches_create tables), false)
  in
  (* Gate gradients depend only on each node's electricals; evaluating
     them eagerly here (deterministic node order) lets every path reuse
     them instead of re-deriving ~[num_rvs] [Derivatives.first] calls
     per gate per path. *)
  let grads =
    Array.init (Graph.num_nodes graph) (fun id ->
        match graph.Graph.electrical.(id) with
        | Some e ->
            Ssta_tech.Derivatives.gradient e Ssta_tech.Params.nominal
        | None -> Ssta_tech.Params.zero)
  in
  { config;
    graph;
    placement;
    layers = Config.layers_for config placement;
    tables;
    health;
    caches;
    cache_shared;
    grads;
    domains = domain_states_create () }

let health ctx = ctx.health

let cache_stats ctx = Option.map Inter.caches_stats ctx.caches
let cache_shared ctx = ctx.cache_shared
let arena_stats ctx = domain_states_arena_stats ctx.domains

let analyze ?health ctx path =
  (* [health] overrides the context ledger so parallel callers can give
     each path a private ledger and merge them back in a fixed order. *)
  let health = match health with Some h -> h | None -> ctx.health in
  let ds = domain_states_get ctx.domains in
  let arena = ds.ds_arena in
  let coeffs =
    Path_coeffs.of_path ~grads:ctx.grads ~ws:ds.ds_ws ctx.graph ctx.placement
      ctx.layers path
  in
  let intra_pdf =
    Guard.check health ~op:"intra pdf" (Intra.pdf ctx.config coeffs)
  in
  let cache = Option.map Inter.caches_get ctx.caches in
  let inter_pdf =
    Guard.check health ~op:"inter pdf"
      (Inter.of_coeffs ?cache ~arena ctx.tables coeffs)
  in
  let total_pdf =
    Guard.sum ~n:ctx.config.Config.quality_intra ~arena health inter_pdf
      intra_pdf
  in
  let m = Pdf.moments total_pdf in
  let mean = m.Pdf.m_mean and std = sqrt m.Pdf.m_var in
  let worst_case =
    Corner.path_delay ~k:ctx.config.Config.corner_k Corner.Worst
      (Paths.path_gates ctx.graph path)
  in
  { path;
    gate_count = Paths.path_gate_count ctx.graph path;
    coeffs;
    intra_pdf;
    inter_pdf;
    total_pdf;
    det_delay = path.Paths.delay;
    mean;
    std;
    intra_sigma = Pdf.std intra_pdf;
    inter_sigma = Pdf.std inter_pdf;
    confidence_point = mean +. (ctx.config.Config.confidence_sigma *. std);
    worst_case }

let overestimation_pct t =
  if t.confidence_point <= 0.0 then 0.0
  else (t.worst_case -. t.confidence_point) /. t.confidence_point *. 100.0
