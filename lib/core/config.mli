(** Configuration of the statistical timing methodology.

    Gathers every knob of the paper's flow: PDF discretizations
    (QUALITY_intra = 100 and QUALITY_inter = 50, chosen in Section 4 as
    the accuracy/run-time sweet spot), the confidence constant C, the
    correlation-layer structure and variance budget, the worst-case
    corner multiplier and the confidence point used for ranking. *)

(** Which analysis engine answers a query: [Path] is the paper's
    path-based flow (enumerate near-critical paths, analyze each with the
    factorized inter/intra machinery, combine); [Block] is the one-pass
    topological block-based engine ([Ssta_block]) that propagates
    arrival-time distributions through the netlist DAG with statistical
    sum/max operators. *)
type engine = Path | Block

val engine_name : engine -> string
(** Stable lowercase name (["path"] / ["block"]) used by the CLI, the
    server protocol and JSON reports. *)

val engines : engine list
(** All engines, in declaration order (for CLI enumerations). *)

(** Policy for the statistical [max] at block-engine merge points:
    [Clark_max] is Clark's moment-matched max of correlated Gaussians
    (sound under correlation, Gaussian-approximate); [Grid_max] is the
    grid-exact independent max P(max <= x) = F(x)G(x) (exact shape, but
    unsound when the operands share inter-die terms — see the design
    note in DESIGN.md). *)
type max_policy = Clark_max | Grid_max

val max_policy_name : max_policy -> string
(** Stable lowercase name (["clark"] / ["grid"]). *)

val max_policies : max_policy list
(** All max policies, in declaration order (for CLI enumerations). *)

type t = {
  quality_intra : int;  (** intra-PDF discretization (paper: 100) *)
  quality_inter : int;  (** inter-PDF discretization (paper: 50) *)
  confidence : float;  (** the C constant: slack = C * sigma_C *)
  quad_levels : int;  (** spatial quad-tree layers (paper: 4) *)
  random_layer : bool;  (** extra per-gate layer (paper: yes) *)
  budget : Ssta_correlation.Budget.t;  (** variance split across layers *)
  truncation : float;  (** Gaussian truncation in sigmas (paper: 6) *)
  corner_k : float;  (** worst-case corner multiplier (see Corner) *)
  confidence_sigma : float;  (** ranking confidence point (paper: 3) *)
  max_paths : int;  (** near-critical enumeration safety cap *)
  inter_shape : Ssta_prob.Shape.t;
      (** distribution shape of the inter-die RVs (paper: Gaussian; the
          numeric inter engine accepts any shape — an extension
          demonstrating that path-based SSTA is not Gaussian-bound) *)
  inter_cache : bool;
      (** amortize the per-path inter-kernel through the scale-covariant
          cache (see {!Inter}); [false] recomputes every path from
          scratch (the [--no-inter-cache] A/B escape hatch) *)
  affine_prune : bool;
      (** statically screen near-critical enumeration through the affine
          arrival domain (see [Ssta_check.Affine]); pruning is proof-
          carrying — the reported path set is byte-identical either way —
          so [false] ([--no-affine-prune]) is purely an A/B escape
          hatch *)
  engine : engine;
      (** which engine answers queries (default [Path], the paper's
          flow); [Block] switches to the one-pass topological engine *)
  block_max : max_policy;
      (** merge-point max policy of the block engine (default
          [Clark_max]); ignored by the path engine *)
}

val default : t
(** The paper's settings: Q_intra 100, Q_inter 50, C 0.05, 4+1 layers,
    equal variance split, 6-sigma truncation, 3-sigma ranking point,
    corner multiplier {!Ssta_tech.Corner.default_k}, 20_000-path cap. *)

val num_layers : t -> int

val with_confidence : t -> float -> t
val with_quality : t -> intra:int -> inter:int -> t

val with_budget_split : t -> inter_fraction:float -> t
(** Replace the budget by an inter/intra split (Table 3 scenarios). *)

val with_inter_shape : t -> Ssta_prob.Shape.t -> t

val layers_for : t -> Ssta_circuit.Placement.t -> Ssta_correlation.Layers.t
(** Instantiate the layer structure on a placed die. *)

(** How a {!set_param} delta interacts with cached analysis state:
    [Enumeration_only] deltas never enter a per-path analysis (slack,
    ranking caps, the screener) so cached path results stay valid;
    [Analysis] deltas change every path's statistics (per-path caches
    must be invalidated, the warm table state survives); [Tables] deltas
    additionally rebuild the warm inter-table/kernel-cache state
    ({!Path_analysis.warm_compatible} fails across them). *)
type param_effect = Enumeration_only | Analysis | Tables

val params : (string * string) list
(** The parameters {!set_param} understands, with one-line
    descriptions, sorted by name. *)

val set_param : t -> string -> float -> (t * param_effect, string) result
(** [set_param t name v] applies one named parameter delta (the [set]
    op of an edit script, {!Ssta_circuit.Edit}).  Integer parameters
    demand an integral [v]; out-of-range or unknown names return
    [Error] with a human-readable reason. *)

val validate : t -> (unit, string) result
(** Check internal consistency (positive qualities, budget layer count
    matching the layer structure, C >= 0, ...). *)
