module Pdf = Ssta_prob.Pdf
module Elmore = Ssta_tech.Elmore
module Sta = Ssta_timing.Sta
module Iscas85 = Ssta_circuit.Iscas85

type table2_row = {
  name : string;
  num_gates : int;
  det_delay_ps : float;
  worst_case_ps : float;
  overestimation_pct : float;
  confidence : float;
  num_critical_paths : int;
  truncated : bool;
  prob_mean_ps : float;
  prob_sigma3_ps : float;
  critical_path_gates : int;
  det_rank_of_prob_critical : int;
  runtime_s : float;
}

let table2_row (m : Methodology.t) =
  let prob = m.Methodology.prob_critical.Ranking.analysis in
  { name = m.Methodology.circuit_name;
    num_gates = m.Methodology.num_gates;
    det_delay_ps = Elmore.ps m.Methodology.sta.Sta.critical_delay;
    worst_case_ps = Elmore.ps m.Methodology.det_critical.Path_analysis.worst_case;
    overestimation_pct = Methodology.overestimation_pct m;
    confidence = m.Methodology.config.Config.confidence;
    num_critical_paths = Methodology.num_critical_paths m;
    truncated = m.Methodology.truncated;
    prob_mean_ps = Elmore.ps prob.Path_analysis.mean;
    prob_sigma3_ps = Elmore.ps prob.Path_analysis.confidence_point;
    critical_path_gates = prob.Path_analysis.gate_count;
    det_rank_of_prob_critical =
      Ranking.det_rank_of_prob_critical m.Methodology.ranked;
    runtime_s = m.Methodology.runtime_s }

let pp_table2_header fmt () =
  Format.fprintf fmt
    "%-7s %6s %10s %10s %7s %6s %7s %10s %10s %6s %6s %8s@." "name" "gates"
    "det(ps)" "worst(ps)" "over%" "C" "paths" "mean(ps)" "3sig(ps)" "cpg"
    "drank" "time(s)"

let pp_table2_row fmt r =
  Format.fprintf fmt
    "%-7s %6d %10.3f %10.3f %7.2f %6.3f %6d%s %10.3f %10.3f %6d %6d %8.2f@."
    r.name r.num_gates r.det_delay_ps r.worst_case_ps r.overestimation_pct
    r.confidence r.num_critical_paths
    (if r.truncated then "+" else " ")
    r.prob_mean_ps r.prob_sigma3_ps r.critical_path_gates
    r.det_rank_of_prob_critical r.runtime_s

let pp_table2_comparison fmt ~(paper : Iscas85.paper_row) r =
  Format.fprintf fmt
    "%-7s over%%: %.1f (paper %.1f)  paths: %d (paper %d)  det-rank: %d (paper %d)  mean/det shift: %+.3f ps@."
    r.name r.overestimation_pct paper.Iscas85.overestimation_pct
    r.num_critical_paths paper.Iscas85.num_critical_paths
    r.det_rank_of_prob_critical paper.Iscas85.det_rank_of_prob_critical
    (r.prob_mean_ps -. r.det_delay_ps)

type table3_row = {
  scenario : string;
  inter_fraction : float;
  mean_ps : float;
  total_sigma_ps : float;
  inter_sigma_ps : float;
  intra_sigma_ps : float;
  num_paths : int;
}

let table3_row ~scenario ~inter_fraction (m : Methodology.t) =
  let d = m.Methodology.det_critical in
  { scenario;
    inter_fraction;
    mean_ps = Elmore.ps d.Path_analysis.mean;
    total_sigma_ps = Elmore.ps d.Path_analysis.std;
    inter_sigma_ps = Elmore.ps d.Path_analysis.inter_sigma;
    intra_sigma_ps = Elmore.ps d.Path_analysis.intra_sigma;
    num_paths = Methodology.num_critical_paths m }

let pp_table3_header fmt () =
  Format.fprintf fmt "%-28s %10s %10s %10s %10s %7s@." "scenario" "mean(ps)"
    "total s" "inter s" "intra s" "paths"

let pp_table3_row fmt r =
  Format.fprintf fmt "%-28s %10.3f %10.3f %10.3f %10.3f %7d@." r.scenario
    r.mean_ps r.total_sigma_ps r.inter_sigma_ps r.intra_sigma_ps r.num_paths

let pp_path_report fmt (g : Ssta_timing.Graph.t) (a : Path_analysis.t) =
  let module Graph = Ssta_timing.Graph in
  let module Netlist = Ssta_circuit.Netlist in
  let module Gate = Ssta_tech.Gate in
  Format.fprintf fmt "%-16s %-8s %10s %10s@." "node" "gate" "incr(ps)"
    "arrival(ps)";
  let arrival = ref 0.0 in
  Array.iter
    (fun id ->
      let name = Netlist.node_name g.Graph.circuit id in
      if Graph.is_input g id then
        Format.fprintf fmt "%-16s %-8s %10s %10.3f@." name "(input)" "-" 0.0
      else begin
        let incr_delay = g.Graph.delay.(id) in
        arrival := !arrival +. incr_delay;
        Format.fprintf fmt "%-16s %-8s %10.3f %10.3f@." name
          (Gate.name (Graph.electrical_exn g id).Gate.kind)
          (Elmore.ps incr_delay) (Elmore.ps !arrival)
      end)
    a.Path_analysis.path.Ssta_timing.Paths.nodes;
  Format.fprintf fmt "%-16s %-8s %10s %10.3f@." "= nominal" "" ""
    (Elmore.ps a.Path_analysis.det_delay);
  Format.fprintf fmt
    "statistical: mean %.3f ps, sigma %.3f ps (inter %.3f / intra %.3f), \
     %g-sigma point %.3f ps@."
    (Elmore.ps a.Path_analysis.mean)
    (Elmore.ps a.Path_analysis.std)
    (Elmore.ps a.Path_analysis.inter_sigma)
    (Elmore.ps a.Path_analysis.intra_sigma)
    ((a.Path_analysis.confidence_point -. a.Path_analysis.mean)
    /. a.Path_analysis.std)
    (Elmore.ps a.Path_analysis.confidence_point);
  Format.fprintf fmt "worst-case corner: %.3f ps (+%.1f%% vs confidence point)@."
    (Elmore.ps a.Path_analysis.worst_case)
    (Path_analysis.overestimation_pct a)

let pdf_csv p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "delay_ps,density\n";
  for i = 0 to Pdf.size p - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%.6f,%.9g\n"
         (Elmore.ps (Pdf.x_at p i))
         (p.Pdf.density.(i) /. 1e12))
  done;
  Buffer.contents buf

let pdfs_csv named =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "series,delay_ps,density\n";
  List.iter
    (fun (name, p) ->
      for i = 0 to Pdf.size p - 1 do
        Buffer.add_string buf
          (Printf.sprintf "%s,%.6f,%.9g\n" name
             (Elmore.ps (Pdf.x_at p i))
             (p.Pdf.density.(i) /. 1e12))
      done)
    named;
  Buffer.contents buf

let rank_scatter_csv pairs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "det_rank,prob_rank\n";
  Array.iter
    (fun (d, p) -> Buffer.add_string buf (Printf.sprintf "%d,%d\n" d p))
    pairs;
  Buffer.contents buf

(* ----- deterministic JSON report -----

   Everything here is a pure function of the analysis results: floats
   are printed with round-trip precision and no wall-clock or host
   detail is included, so two runs that computed identical results
   produce byte-identical JSON.  This is the artifact the parallel
   determinism tests diff across worker counts. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jfloat v = Printf.sprintf "%.17g" v

let json_of_path_analysis (a : Path_analysis.t) =
  let nodes =
    a.Path_analysis.path.Ssta_timing.Paths.nodes
    |> Array.to_list |> List.map string_of_int |> String.concat ","
  in
  Printf.sprintf
    "{\"nodes\":[%s],\"gate_count\":%d,\"det_delay_s\":%s,\"mean_s\":%s,\"std_s\":%s,\"intra_sigma_s\":%s,\"inter_sigma_s\":%s,\"confidence_point_s\":%s,\"worst_case_s\":%s}"
    nodes a.Path_analysis.gate_count
    (jfloat a.Path_analysis.det_delay)
    (jfloat a.Path_analysis.mean)
    (jfloat a.Path_analysis.std)
    (jfloat a.Path_analysis.intra_sigma)
    (jfloat a.Path_analysis.inter_sigma)
    (jfloat a.Path_analysis.confidence_point)
    (jfloat a.Path_analysis.worst_case)

let json_of_pdf (p : Pdf.t) =
  Printf.sprintf "{\"lo\":%s,\"step\":%s,\"density\":[%s]}" (jfloat p.Pdf.lo)
    (jfloat p.Pdf.step)
    (String.concat ","
       (Array.to_list (Array.map jfloat p.Pdf.density)))

let json_report (m : Methodology.t) =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let cfg = m.Methodology.config in
  add "{\"circuit\":\"%s\"," (json_escape m.Methodology.circuit_name);
  add "\"engine\":\"%s\"," (Config.engine_name cfg.Config.engine);
  add "\"gates\":%d," m.Methodology.num_gates;
  add
    "\"config\":{\"confidence\":%s,\"quality_intra\":%d,\"quality_inter\":%d,\"confidence_sigma\":%s,\"corner_k\":%s,\"max_paths\":%d,\"inter_cache\":%b},"
    (jfloat cfg.Config.confidence)
    cfg.Config.quality_intra cfg.Config.quality_inter
    (jfloat cfg.Config.confidence_sigma)
    (jfloat cfg.Config.corner_k) cfg.Config.max_paths cfg.Config.inter_cache;
  add "\"critical_delay_s\":%s,"
    (jfloat m.Methodology.sta.Sta.critical_delay);
  add "\"sigma_c_s\":%s," (jfloat m.Methodology.sigma_c);
  add "\"slack_s\":%s," (jfloat m.Methodology.slack);
  add "\"truncated\":%b," m.Methodology.truncated;
  add "\"degradations\":[%s],"
    (String.concat ","
       (List.map
          (fun d ->
            Printf.sprintf "\"%s\""
              (json_escape
                 (Format.asprintf "%a" Ssta_runtime.Budget.pp_degradation d)))
          (Methodology.degradations m)));
  let h = m.Methodology.health in
  let worst, worst_op = Ssta_runtime.Health.worst_defect h in
  add
    "\"health\":{\"count\":%d,\"renormalizations\":%d,\"worst_defect\":%s,\"worst_op\":\"%s\",\"counters\":{%s}},"
    (Ssta_runtime.Health.count h)
    (Ssta_runtime.Health.renormalizations h)
    (jfloat worst) (json_escape worst_op)
    (* counters are sorted by name, so this is deterministic; only
       scheduling-independent counters are ever recorded (see
       Methodology) *)
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "\"%s\":%d" (json_escape k) v)
          (Ssta_runtime.Health.counters h)));
  add "\"det_critical\":%s,"
    (json_of_path_analysis m.Methodology.det_critical);
  add "\"prob_critical_pdf\":%s,"
    (json_of_pdf
       m.Methodology.prob_critical.Ranking.analysis.Path_analysis.total_pdf);
  add "\"paths\":[%s]}"
    (String.concat ","
       (Array.to_list
          (Array.map
             (fun (r : Ranking.ranked) ->
               Printf.sprintf
                 "{\"prob_rank\":%d,\"det_rank\":%d,\"analysis\":%s}"
                 r.Ranking.prob_rank r.Ranking.det_rank
                 (json_of_path_analysis r.Ranking.analysis))
             m.Methodology.ranked)));
  Buffer.contents buf

let pp_run_status fmt (t : Methodology.t) =
  Format.fprintf fmt "engine: %s@."
    (Config.engine_name t.Methodology.config.Config.engine);
  (match t.Methodology.status with
  | Methodology.Complete -> Format.fprintf fmt "status: complete@."
  | Methodology.Degraded ds ->
      Format.fprintf fmt "status: DEGRADED (%d budget event%s)@."
        (List.length ds)
        (if List.length ds = 1 then "" else "s");
      List.iter
        (fun d ->
          Format.fprintf fmt "  - %a@." Ssta_runtime.Budget.pp_degradation d)
        ds);
  let h = t.Methodology.health in
  if Ssta_runtime.Health.is_clean h then
    Format.fprintf fmt "numerical health: clean@."
  else Format.fprintf fmt "numerical health: %a@." Ssta_runtime.Health.pp h;
  (match Ssta_runtime.Health.counter h "inter-cache-lookups" with
  | 0 -> ()
  | lookups ->
      Format.fprintf fmt
        "inter-kernel cache: %d lookups, %d distinct directions, %d hits@."
        lookups
        (Ssta_runtime.Health.counter h "inter-cache-distinct")
        (Ssta_runtime.Health.counter h "inter-cache-hits"));
  match Ssta_runtime.Health.counter h "arena-peak-bytes" with
  | 0 -> ()
  | peak ->
      Format.fprintf fmt
        "scratch arenas: %d buffers created, %d bytes reused, peak %d bytes@."
        (Ssta_runtime.Health.counter h "arena-buffers-created")
        (Ssta_runtime.Health.counter h "arena-bytes-reused")
        peak
