(** Statistical dual-threshold (dual-Vt) optimization.

    The paper's delay model originates in a dual-Vt optimization paper
    (its ref [13]): assign a high threshold to gates with timing slack,
    cutting subthreshold leakage exponentially, while the timing
    constraint is checked — here, {e statistically}, at the 3-sigma
    confidence point, with the class-aware machinery end to end:

    - deterministic delays per class ({!Ssta_timing.Graph.with_params_of}),
    - class-aware intra coefficients (derivatives at the class nominal),
    - a mixed-class inter PDF ({!Inter.pdf_dual} — the shared threshold
      deviation RVs stay shared, the class shifts only their means),
    - Monte-Carlo validation with per-gate nominals.

    The optimizer greedily marks high-slack gates High, then demotes
    gates on the statistical critical path until the 3-sigma target
    holds. *)

type assignment = Ssta_tech.Vt_class.t array
(** Per node id; primary-input entries are ignored. *)

type path_stats = {
  path : Ssta_timing.Paths.path;
  nominal_delay : float;  (** class-aware deterministic delay *)
  mean : float;
  std : float;
  confidence_point : float;
  total_pdf : Ssta_prob.Pdf.t;
  worst_case : float;  (** class-aware corner *)
}

val graph_for :
  ?shift:float -> Ssta_circuit.Netlist.t -> assignment -> Ssta_timing.Graph.t
(** Timing graph with class-aware nominal delays. *)

val analyze_path :
  ?shift:float ->
  ?cache:Inter.cache ->
  Config.t ->
  Inter.tables ->
  Ssta_timing.Graph.t ->
  Ssta_circuit.Placement.t ->
  assignment ->
  Ssta_timing.Paths.path ->
  path_stats
(** Full statistical analysis of a path under a class assignment.  The
    [tables] must have been built with the same [shift], and [cache] (if
    any) with the same [tables].  [optimize] threads one cache through
    all of its assignment sweeps. *)

val leakage : ?shift:float -> Ssta_timing.Graph.t -> assignment -> float
(** Total leakage proxy of the circuit under the assignment. *)

type result = {
  assignment : assignment;
  high_count : int;  (** gates assigned High *)
  gate_count : int;
  sigma3_all_low : float;  (** 3-sigma point before optimization *)
  sigma3_final : float;
  leakage_all_low : float;
  leakage_final : float;
  met : bool;
  iterations : int;
}

val optimize :
  ?config:Config.t ->
  ?placement:Ssta_circuit.Placement.t ->
  ?shift:float ->
  ?slack_factor:float ->
  ?max_iterations:int ->
  target:float ->
  Ssta_circuit.Netlist.t ->
  result
(** [optimize ~target circuit]: greedy assignment of High to gates whose
    deterministic slack exceeds [slack_factor] (default 2.0) times their
    high-Vt delay penalty, then iterative demotion of High gates on the
    statistical critical path until its confidence point is at most
    [target].  [target] must be positive. *)
